// Spectrum: the protocol's run-time drift between primary-backup and
// active replication (§5.1).
//
// The paper's algorithm does not fix a replication style: in nice runs the
// round-1 owner executes alone (primary-backup flavor); when the failure
// detector (falsely) suspects the owner, other replicas start new rounds
// and execute concurrently, with consensus arbitrating results (active
// flavor). This example sweeps false-suspicion aggressiveness and prints
// how many replicas ended up executing each request — while the x-ability
// checker confirms every run still looks exactly-once to the environment.
//
//	go run ./examples/spectrum
package main

import (
	"fmt"
	"log"
	"time"

	"xability"
	"xability/internal/action"
	"xability/internal/event"
)

func main() {
	fmt.Println("suspicion pulses → executions (1 = primary-backup flavor, >1 = active flavor)")
	for _, pulses := range []int{0, 1, 2, 3} {
		execs, cancels, ok := run(pulses)
		bar := ""
		for i := 0; i < execs; i++ {
			bar += "█"
		}
		fmt.Printf("  pulses=%d  executions=%d %-6s cancels=%d  x-able=%v\n", pulses, execs, bar, cancels, ok)
		if !ok {
			log.Fatal("a spectrum point failed verification")
		}
	}
	fmt.Println("\nevery point is x-able: duplication is visible in the history, not to the client")
}

func run(pulses int) (executions, cancels int, xable bool) {
	reg := xability.NewRegistry()
	reg.MustRegister("charge", xability.Undoable)

	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     int64(100 + pulses),
		Registry: reg,
		Setup: func(m *xability.Machine) {
			err := m.HandleUndoable("charge",
				func(ctx *xability.Ctx) xability.Value { return "charged" },
				nil)
			if err != nil {
				log.Fatal(err)
			}
		},
	})
	defer svc.Close()

	clk := svc.Clock()
	clk.Enter() // hold simulated time until the charge is in flight
	if pulses > 0 {
		// Slow the owner down so suspicions land mid-execution, then
		// declare the pulse schedule as a fault plan on the virtual clock.
		svc.Environment().SetFailures("charge", 1.0, 3*pulses, 0)
		plan := xability.NewPlan()
		var at time.Duration
		for i := 0; i < pulses; i++ {
			at += time.Duration(1+i) * time.Millisecond
			plan.SuspectAt(at, "replica-0")
			at += 500 * time.Microsecond
			plan.UnsuspectAt(at, "replica-0")
		}
		svc.Apply(plan)
	}

	svc.Call(xability.NewRequest("charge", "card-1"))
	clk.Exit()
	h := svc.History()
	for _, e := range h {
		if e.Type == event.Start && e.Action == "charge" {
			executions++
		}
		if e.Type == event.Complete && e.Action == action.Cancel("charge") {
			cancels++
		}
	}
	rep := svc.Verify(reg)
	return executions, cancels, rep.OK()
}
