// Quickstart: a replicated greeting-and-counter service.
//
// The example builds a three-replica x-able service with one idempotent
// action (greet) and one non-deterministic idempotent action (session —
// every execution would draw a fresh session token, so the replicas must
// agree on one), calls it a few times, and verifies the run against the
// x-ability specification.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xability"
)

func main() {
	reg := xability.NewRegistry()
	reg.MustRegister("greet", xability.Idempotent)
	reg.MustRegister("session", xability.Idempotent)

	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     42,
		Registry: reg,
		Setup: func(m *xability.Machine) {
			check(m.HandleIdempotent("greet", func(ctx *xability.Ctx) xability.Value {
				return "hello, " + ctx.Req.Input
			}))
			check(m.HandleIdempotent("session", func(ctx *xability.Ctx) xability.Value {
				// Non-deterministic: each replica would draw its own token.
				// The environment resolves the first completion and the
				// protocol's result agreement fixes the reply, so the
				// client sees exactly one token no matter who executes.
				return xability.Value(fmt.Sprintf("session-%08x", ctx.Rand.Uint32()))
			}))
		},
	})
	defer svc.Close()

	fmt.Println(svc.Call(xability.NewRequest("greet", "world")))
	fmt.Println(svc.Call(xability.NewRequest("greet", "PODC")))
	fmt.Println(svc.Call(xability.NewRequest("session", "user-1")))

	report := svc.Verify(reg)
	fmt.Printf("\nx-ability verification: R2=%v R3(strict)=%v R4=%v\n",
		report.R2, report.R3Strict, report.R4Possible && report.R4Consistent)
	fmt.Printf("events observed: %d\n", len(svc.History()))
	if !report.OK() {
		log.Fatalf("verification failed: %+v", report)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
