// Sharded multi-group replication: the composition result (§4's
// locality) taken to the scale the theory promises. A keyspace of
// accounts is partitioned by a consistent-hash ring across four
// independently replicated groups — each a full x-able service on its own
// simulated network — behind one router, all on one virtual clock.
//
// Three things are demonstrated:
//
//  1. Routing: every request goes to exactly one owning group, chosen by
//     its key alone; failover on crash stays inside the group.
//
//  2. Scaling: the same workload's virtual-time span shrinks as groups
//     serve their key ranges concurrently (aggregate ops per virtual
//     second — Table T9 measures it across shard counts).
//
//  3. Verification: the deployment verifies exactly-once end to end —
//     each group's history reduces on its own, and the routing audit
//     confirms no request surfaced in two groups — even with a group's
//     round-1 owner crashed mid-batch.
//
// Run it with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"time"

	"xability"
)

func main() {
	reg := xability.NewRegistry()
	reg.MustRegister("reserve", xability.Idempotent)

	const shards = 4
	cfg := xability.ShardedConfig{
		Shards:   shards,
		Replicas: 3,
		Seed:     7,
		Registry: reg,
		Setup: func(shard int) func(m *xability.Machine) {
			return func(m *xability.Machine) {
				check(m.HandleIdempotent("reserve", func(ctx *xability.Ctx) xability.Value {
					return xability.Value(fmt.Sprintf("reserved:%s@shard-%d", ctx.Req.Input, shard))
				}))
			}
		},
	}
	// Simulated message delays make the virtual-time span meaningful (the
	// zero default is immediate handoff).
	cfg.Net.MaxDelay = 200 * time.Microsecond
	svc := xability.NewShardedService(cfg)
	defer svc.Close()

	// A batch over 16 SKUs, routed by key across the four groups.
	var batch []xability.Request
	for i := 0; i < 16; i++ {
		batch = append(batch, xability.NewRequest("reserve", xability.Value(fmt.Sprintf("sku-%d", i))))
	}

	clk := svc.Clock()
	clk.Enter()
	// Crash the round-1 owner of sku-0's group mid-batch: its cleaner
	// takes over; the other groups never notice.
	victim := svc.ShardOf(batch[0])
	svc.Apply(xability.NewPlan().CrashShardAt(500*time.Microsecond, victim, 0))
	start := clk.Now()
	replies, ok := svc.CallAll(batch)
	elapsed := clk.Now() - start
	clk.Exit()
	if !ok {
		log.Fatal("some requests went unanswered")
	}

	perShard := make([]int, shards)
	for i, req := range batch {
		s := svc.ShardOf(req)
		perShard[s]++
		if i < 4 {
			fmt.Printf("client ← %-28s (shard %d)\n", replies[i], s)
		}
	}
	fmt.Printf("…\nrouted %d requests across %d groups %v, shard %d's owner crashed mid-batch\n",
		len(batch), shards, perShard, victim)
	fmt.Printf("batch span: %v of virtual time (streams overlap on one clock)\n", elapsed)

	rep := svc.Verify(reg)
	for s, r := range rep.Shards {
		fmt.Printf("shard %d x-able: R3=%v (%d events)\n", s, r.R3Strict || r.R3Projected, len(svc.History(s)))
	}
	fmt.Printf("routing exactly-once: %v\n", rep.RoutingExact)
	if !rep.OK() {
		log.Fatalf("merged verification failed: %+v", rep)
	}
	fmt.Println("\ncomposition holds at scale: every group exactly-once, every key exactly one owner")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
