// Three-tier composition: the paper's motivating architecture (§1,
// footnote 1) — a client invokes a replicated middle-tier application
// server, which itself invokes a replicated back-end database.
//
// The example demonstrates x-ability's locality (§1, §4): the back-end
// service is proved x-able on its own; the middle tier then treats the
// back-end's submit as an idempotent action (R1 licenses exactly that) and
// is proved x-able in turn, without reasoning about the back-end's
// internals. Both tiers are verified independently against their own
// observers.
//
// The second phase runs the same pipeline under fire, using fault plans
// from the scenario registry: the durable back-end owner crashes and later
// restarts from its write-ahead log (restart-minority's schedule), while a
// false suspicion drags the order tier into its active flavor (suspect's
// schedule) — so two order replicas execute concurrently and both drive
// the shared back-end stub at once. Composition must hold through all of
// it: each tier still verifies exactly-once on its own history.
//
//	go run ./examples/threetier
package main

import (
	"fmt"
	"log"

	"xability"
)

func main() {
	// ---- Tier 1: the replicated inventory database, on stable storage so
	// a crashed replica can restart from its log.
	dbReg := xability.NewRegistry()
	dbReg.MustRegister("reserve", xability.Idempotent)

	db := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     11,
		Registry: dbReg,
		Durable:  true,
		Setup: func(m *xability.Machine) {
			check(m.HandleIdempotent("reserve", func(ctx *xability.Ctx) xability.Value {
				// Reserving stock is naturally idempotent per order ID: the
				// database keys the reservation by its input.
				return "reserved:" + ctx.Req.Input
			}))
		},
	})
	defer db.Close()

	// ---- Tier 2: the replicated order service, calling tier 1.
	// R1 makes the nested submit idempotent and R2 makes it eventually
	// successful, so the middle tier may classify the whole nested call as
	// one idempotent action of its own state machine — that is the
	// composition (locality) principle.
	orderReg := xability.NewRegistry()
	orderReg.MustRegister("order", xability.Idempotent)

	orders := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     12,
		Registry: orderReg,
		Setup: func(m *xability.Machine) {
			check(m.HandleIdempotent("order", func(ctx *xability.Ctx) xability.Value {
				nested := db.Call(xability.NewRequest("reserve", ctx.Req.Input))
				return "order-ok(" + nested + ")"
			}))
		},
	})
	defer orders.Close()

	// ---- Phase 1: the failure-free pipeline.
	reply := orders.Call(xability.NewRequest("order", "sku-42"))
	fmt.Println("client  ←", reply)

	// ---- Phase 2: the same pipeline under the registry's fault plans.
	// The back end replays restart-minority's schedule (owner crashes, then
	// restarts from its WAL); the order tier replays suspect's false
	// suspicion, which makes a second replica execute the order
	// concurrently — both executors then submit through the shared back-end
	// stub at the same time. Injected action failures stretch the order's
	// execution so the 2ms fault ops land mid-pipeline.
	restart, ok := xability.ScenarioByName("restart-minority")
	if !ok {
		log.Fatal("restart-minority not registered")
	}
	suspect, ok := xability.ScenarioByName("suspect")
	if !ok {
		log.Fatal("suspect not registered")
	}
	orders.Environment().SetFailures("order", 1, 6, 0)

	dbClk, orderClk := db.Clock(), orders.Clock()
	dbClk.Enter()
	db.Apply(restart.Plan)
	dbClk.Exit()
	orderClk.Enter()
	orders.Apply(suspect.Plan)
	reply = orders.Call(xability.NewRequest("order", "sku-43"))
	orderClk.Exit()
	fmt.Println("client  ←", reply, " (back end crashed and restarted mid-pipeline)")

	// Verify each tier locally against its own history.
	dbReport := db.Verify(dbReg)
	orderReport := orders.Verify(orderReg)
	fmt.Printf("tier 1 (database) x-able: R3=%v  submits=%d\n", dbReport.R3Strict, db.Attempts())
	fmt.Printf("tier 2 (orders)   x-able: R3=%v  submits=%d\n", orderReport.R3Strict, orders.Attempts())
	fmt.Printf("tier-1 events: %d   tier-2 events: %d\n", len(db.History()), len(orders.History()))

	if !dbReport.OK() || !orderReport.OK() {
		log.Fatalf("composition verification failed: db=%+v orders=%+v", dbReport, orderReport)
	}
	fmt.Println("\ncomposition holds: both tiers reduce to exactly-once independently")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
