// Three-tier composition: the paper's motivating architecture (§1,
// footnote 1) — a client invokes a replicated middle-tier application
// server, which itself invokes a replicated back-end database.
//
// The example demonstrates x-ability's locality (§1, §4): the back-end
// service is proved x-able on its own; the middle tier then treats the
// back-end's submit as an idempotent action (R1 licenses exactly that) and
// is proved x-able in turn, without reasoning about the back-end's
// internals. Both tiers are verified independently against their own
// observers.
//
//	go run ./examples/threetier
package main

import (
	"fmt"
	"log"

	"xability"
)

func main() {
	// ---- Tier 1: the replicated inventory database.
	dbReg := xability.NewRegistry()
	dbReg.MustRegister("reserve", xability.Idempotent)

	db := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     11,
		Registry: dbReg,
		Setup: func(m *xability.Machine) {
			check(m.HandleIdempotent("reserve", func(ctx *xability.Ctx) xability.Value {
				// Reserving stock is naturally idempotent per order ID: the
				// database keys the reservation by its input.
				return "reserved:" + ctx.Req.Input
			}))
		},
	})
	defer db.Close()

	// ---- Tier 2: the replicated order service, calling tier 1.
	// R1 makes the nested submit idempotent and R2 makes it eventually
	// successful, so the middle tier may classify the whole nested call as
	// one idempotent action of its own state machine — that is the
	// composition (locality) principle.
	orderReg := xability.NewRegistry()
	orderReg.MustRegister("order", xability.Idempotent)

	orders := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     12,
		Registry: orderReg,
		Setup: func(m *xability.Machine) {
			check(m.HandleIdempotent("order", func(ctx *xability.Ctx) xability.Value {
				nested := db.Call(xability.NewRequest("reserve", ctx.Req.Input))
				return "order-ok(" + nested + ")"
			}))
		},
	})
	defer orders.Close()

	reply := orders.Call(xability.NewRequest("order", "sku-42"))
	fmt.Println("client  ←", reply)

	// Verify each tier locally against its own history.
	dbReport := db.Verify(dbReg)
	orderReport := orders.Verify(orderReg)
	fmt.Printf("tier 1 (database) x-able: R3=%v\n", dbReport.R3Strict)
	fmt.Printf("tier 2 (orders)   x-able: R3=%v\n", orderReport.R3Strict)
	fmt.Printf("tier-1 events: %d   tier-2 events: %d\n", len(db.History()), len(orders.History()))

	if !dbReport.OK() || !orderReport.OK() {
		log.Fatalf("composition verification failed: db=%+v orders=%+v", dbReport, orderReport)
	}
	fmt.Println("\ncomposition holds: both tiers reduce to exactly-once independently")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
