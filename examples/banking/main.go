// Banking: undoable transfers with crash recovery.
//
// The example replicates a funds-transfer service over a ledger (the
// third-party entity). Transfers are undoable actions: the ledger applies
// them tentatively, the protocol's outcome agreement decides commit or
// abort per round, and cancellations roll the tentative effect back. The
// run injects action failures and crashes the first replica mid-request;
// the ledger's audit and the x-ability checker confirm the transfer still
// happened exactly once.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"xability"
)

// ledger is the external, third-party system of record.
type ledger struct {
	mu       sync.Mutex
	balances map[string]int
}

func (l *ledger) apply(from, to string, amount int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balances[from] -= amount
	l.balances[to] += amount
}

func (l *ledger) balance(acct string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[acct]
}

func main() {
	book := &ledger{balances: map[string]int{"alice": 100, "bob": 0}}

	reg := xability.NewRegistry()
	reg.MustRegister("transfer", xability.Undoable)
	reg.MustRegister("balance", xability.Idempotent)

	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     7,
		Registry: reg,
		Setup: func(m *xability.Machine) {
			check(m.HandleUndoable("transfer",
				func(ctx *xability.Ctx) xability.Value {
					book.apply("alice", "bob", 25)
					return "transferred 25"
				},
				func(ctx *xability.Ctx) {
					book.apply("bob", "alice", 25) // rollback
				}))
			check(m.HandleIdempotent("balance", func(ctx *xability.Ctx) xability.Value {
				return xability.Value(fmt.Sprintf("%d", book.balance(string(ctx.Req.Input))))
			}))
		},
	})
	defer svc.Close()

	// Make life hard: the ledger fails intermittently (execute-until-success
	// must cancel and retry) and the first replica crashes mid-request (a
	// cleaner replica cancels its round and takes over).
	svc.Environment().SetFailures("transfer", 1.0, 6, 0.5)
	clk := svc.Clock()
	clk.Enter() // hold simulated time until the transfer is in flight
	clk.Go(func() {
		clk.Sleep(2 * time.Millisecond)
		svc.Cluster().CrashServer(0)
		svc.Cluster().ClientSuspect("replica-0", true)
	})

	transferred := svc.Call(xability.NewRequest("transfer", "alice->bob"))
	clk.Exit()
	fmt.Println("transfer:", transferred)
	fmt.Println("alice:   ", svc.Call(xability.NewRequest("balance", "alice")))
	fmt.Println("bob:     ", svc.Call(xability.NewRequest("balance", "bob")))

	inForce := svc.Environment().InForceTotal("transfer", "alice->bob")
	fmt.Printf("\nledger audit: transfer effects in force = %d (exactly-once wants 1)\n", inForce)
	report := svc.Verify(reg)
	fmt.Printf("x-ability verification: R2=%v R3=%v R4=%v\n",
		report.R2, report.R3Strict || report.R3Projected, report.R4Possible && report.R4Consistent)
	if !report.OK() || inForce != 1 || book.balance("bob") != 25 {
		log.Fatalf("exactly-once violated: report=%+v bob=%d", report, book.balance("bob"))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
