// Command xsim runs registered scenarios of the replicated service end to
// end and verifies the results against the x-ability specification (R2–R4
// of §4).
//
// Single-run mode executes one seed, prints the observed history, and
// reports the R-clause verdicts. Sweep mode (-sweep N) replays the
// scenario across N seeds in parallel workers — runs are CPU-bound on the
// virtual clock — and prints the verdict distribution: x-able rate, reply
// rate, effects-in-force histogram, and any failing seeds; add
// -shrink-failing to turn those seeds into minimal counterexample traces
// inline.
//
// Shrink mode (-shrink <seed>) is the debugging tool for a failing seed:
// it records the seed's delivery schedule, delta-debugs it (ddmin over
// deliveries, greedy removal over fault-plan ops, re-running the scenario
// under replay after every edit), and prints a locally minimal
// counterexample trace — removing any single remaining delivery or fault
// op makes the failure disappear. -shrink-out writes the rendered trace to
// a file (CI publishes it as an artifact), -shrink-budget caps the number
// of re-executions. xsim exits non-zero when the shrinker does not
// converge within the budget, or when the seed does not fail at all.
//
// Scenarios come from the registry (-list prints them): nice,
// crash-failover, partition, delay-storm, delay-storm-hb, partition-hb,
// suspect, failures, sequence, random-faults, the spectrum-N pulse
// sweeps, the throughput-plane rows (batch-nice, batch-crash-failover,
// batch-storm-hb on the batched slot protocol; open-loop-nice,
// open-loop-batch, shard-open-loop driving arrival-rate load through
// stations — open-loop runs also print a session-latency summary), the
// sharded rows (shard-nice, shard-crash-failover, shard-split-brain,
// shard-storm, shard-random — the keyspace-router deployment of
// internal/shard; -shards N redeploys any x-ability scenario across N
// groups), and the baseline contrast rows (pb-nice, pb-crash-failover,
// active-nice).
package main

import (
	"flag"
	"fmt"
	"os"

	"xability/internal/core"
	"xability/internal/scenario"
	"xability/internal/shrink"
)

func main() {
	var (
		name      = flag.String("scenario", "nice", "registered scenario name (see -list)")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		seed      = flag.Int64("seed", 1, "run seed (sweep mode: first seed of the population)")
		sweep     = flag.Int("sweep", 0, "sweep the scenario across N seeds instead of one run")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		replicas  = flag.Int("replicas", 0, "override the scenario's replication degree")
		shards    = flag.Int("shards", 0, "override the scenario's shard count (deploys the sharded runtime)")
		useCT     = flag.Bool("ct", false, "force the message-passing consensus substrate")
		showTrace = flag.Bool("history", true, "print the observed event history (single-run mode)")

		shrinkSeed   = flag.Int64("shrink", 0, "shrink the given failing seed to a minimal counterexample trace")
		shrinkOut    = flag.String("shrink-out", "", "also write the rendered minimal trace to this file")
		shrinkSteps  = flag.Int("shrink-budget", 0, "cap the shrinker's scenario re-executions (0 = default)")
		shrinkInline = flag.Bool("shrink-failing", false, "sweep mode: shrink failing seeds into counterexample traces")
	)
	flag.Parse()
	shrinkMode := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shrink" {
			shrinkMode = true
		}
	})

	if *list {
		for _, n := range scenario.Names() {
			sc, _ := scenario.Get(n)
			fmt.Printf("  %-18s %s\n", n, sc.Description)
		}
		return
	}

	sc, ok := scenario.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "xsim: unknown scenario %q (use -list)\n", *name)
		os.Exit(2)
	}
	if *replicas > 0 {
		if sc.Plan.TopologyBound() {
			fmt.Fprintf(os.Stderr,
				"xsim: scenario %q partitions/drops links between named processes; -replicas would silently change the fault's meaning\n", *name)
			os.Exit(2)
		}
		sc.Replicas = *replicas
	}
	if *shards > 0 && *shards != sc.Shards {
		if sc.Plan.ShardBound() {
			fmt.Fprintf(os.Stderr,
				"xsim: scenario %q addresses explicit shard indices; -shards would silently change the faults' meaning\n", *name)
			os.Exit(2)
		}
		if sc.Protocol != scenario.XAbility {
			fmt.Fprintf(os.Stderr, "xsim: the sharded runtime deploys the x-ability protocol only\n")
			os.Exit(2)
		}
		sc.Shards = *shards
	}
	if *useCT {
		sc.Consensus = core.ConsensusCT
	}

	if shrinkMode {
		runShrink(sc, *shrinkSeed, *shrinkSteps, *shrinkOut)
		return
	}
	if *sweep > 0 {
		runSweep(sc, *seed, *sweep, *workers, *shrinkInline, *shrinkSteps)
		return
	}
	runOne(sc, *seed, *showTrace)
}

func runOne(sc scenario.Scenario, seed int64, showTrace bool) {
	o := scenario.Execute(sc, seed)
	if showTrace {
		fmt.Println("history:")
		for _, e := range o.History {
			fmt.Printf("  %v\n", e)
		}
	}
	fmt.Printf("scenario: %s (%s)  seed: %d\n", sc.Name, sc.Protocol, seed)
	fmt.Printf("requests: %d  submit attempts: %d  messages: %d  simulated time: %v\n",
		o.Requests, o.Attempts, o.Messages, o.SimTime)
	fmt.Printf("executions: %d  cancels: %d  effects in force: %d\n",
		o.Executions, o.Cancels, o.EffectsInForce)
	if o.Latency.Count > 0 {
		fmt.Printf("sessions: %d  latency p50: %v  p95: %v  p99: %v  max: %v\n",
			o.Latency.Count, o.Latency.P50, o.Latency.P95, o.Latency.P99, o.Latency.Max)
		if o.SimTime > 0 {
			fmt.Printf("throughput: %.0f ops/vsec\n", float64(o.Requests)/o.SimTime.Seconds())
		}
	}
	if o.Shards > 0 {
		// Sharded runs report the merged verdict: per-shard R-clauses plus
		// the router's global exactly-once-routing audit.
		for s, rep := range o.ShardReports {
			fmt.Printf("shard %d: R2=%v R3(strict)=%v R3(projected)=%v\n", s, rep.R2, rep.R3Strict, rep.R3Projected)
		}
		fmt.Printf("routing exactly-once: %v\n", o.RoutingExact)
		fmt.Printf("x-able (merged): %v  replied: %v\n", o.XAble, o.Replied)
		if !o.XAble || !o.Replied {
			os.Exit(1)
		}
		return
	}
	if sc.Protocol == scenario.XAbility {
		rep := o.Report
		fmt.Printf("R2 (liveness): %v\n", rep.R2)
		fmt.Printf("R3 (x-able, strict): %v\n", rep.R3Strict)
		fmt.Printf("R3 (x-able, per-request): %v\n", rep.R3Projected)
		fmt.Printf("R4 (reply consistency): %v\n", rep.R4Possible && rep.R4Consistent)
		for _, d := range rep.Details {
			fmt.Printf("  note: %s\n", d)
		}
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}
	// Baselines are judged by the charitable checker reading and the
	// audit; duplication is the expected, reported outcome.
	fmt.Printf("x-able: %v  replied: %v\n", o.XAble, o.Replied)
}

func runSweep(sc scenario.Scenario, seed int64, n, workers int, shrinkFailing bool, budget int) {
	d := scenario.SweepWithOptions(sc, scenario.Seeds(seed, n), scenario.SweepOptions{
		Workers:       workers,
		ShrinkFailing: shrinkFailing,
		ShrinkBudget:  budget,
	})
	fmt.Println(d)
	// For the x-ability protocol any failing seed falsifies the paper's
	// claim; baselines are swept for their distributions only.
	if sc.Protocol == scenario.XAbility && (d.XAbleRate() < 1 || d.RepliedRate() < 1) {
		os.Exit(1)
	}
}

func runShrink(sc scenario.Scenario, seed int64, budget int, out string) {
	mt, err := shrink.Shrink(sc, seed, shrink.Options{MaxSteps: budget})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim: shrink %s seed %d: %v\n", sc.Name, seed, err)
		if mt.Log == nil {
			os.Exit(1)
		}
		// Budget-cut shrinks still print and write the best-so-far trace
		// before exiting non-zero.
	}
	rendered := mt.Render()
	fmt.Printf("%s", rendered)
	fmt.Printf("shrink: %d steps, %d→%d deliveries, %d→%d fault ops, 1-minimal: %v\n",
		mt.Steps, mt.BaseDeliveries, mt.Deliveries, mt.BaseOps, mt.Ops, mt.Minimal)
	if out != "" {
		if werr := os.WriteFile(out, []byte(rendered), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "xsim: write %s: %v\n", out, werr)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", out)
	}
	if err != nil {
		os.Exit(1)
	}
}
