// Command xsim runs registered scenarios of the replicated service end to
// end and verifies the results against the x-ability specification (R2–R4
// of §4).
//
// Single-run mode executes one seed, prints the observed history, and
// reports the R-clause verdicts. Sweep mode (-sweep N) replays the
// scenario across N seeds in parallel workers — runs are CPU-bound on the
// virtual clock — and prints the verdict distribution: x-able rate, reply
// rate, effects-in-force histogram, and any failing seeds; add
// -shrink-failing to turn those seeds into minimal counterexample traces
// inline.
//
// Shrink mode (-shrink <seed>) is the debugging tool for a failing seed:
// it records the seed's delivery schedule, delta-debugs it (ddmin over
// deliveries, greedy removal over fault-plan ops, re-running the scenario
// under replay after every edit), and prints a locally minimal
// counterexample trace — removing any single remaining delivery or fault
// op makes the failure disappear. -shrink-out writes the rendered trace to
// a file (CI publishes it as an artifact), -shrink-budget caps the number
// of re-executions. xsim exits non-zero when the shrinker does not
// converge within the budget, or when the seed does not fail at all.
//
// Scenarios come from the registry (-list prints them): nice,
// crash-failover, partition, delay-storm, delay-storm-hb, partition-hb,
// suspect, failures, sequence, random-faults, the spectrum-N pulse
// sweeps, the durable-state rows (restart-minority, restart-random, and
// the total-loss regimes restart-majority, power-cycle,
// restart-random-majority, restart-random-total, where a majority or
// the whole cluster power-cycles and recovery climbs out of the
// write-ahead logs alone), the throughput-plane rows (batch-nice, batch-crash-failover,
// batch-storm-hb on the batched slot protocol; open-loop-nice,
// open-loop-batch, shard-open-loop driving arrival-rate load through
// stations — open-loop runs also print a session-latency summary), the
// sharded rows (shard-nice, shard-crash-failover, shard-split-brain,
// shard-storm, shard-random, plus the group-scoped restart family
// shard-restart-minority, shard-power-cycle, shard-restart-random —
// the keyspace-router deployment of
// internal/shard; -shards N redeploys any x-ability scenario across N
// groups), and the baseline contrast rows (pb-nice, pb-crash-failover,
// active-nice).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"xability/internal/core"
	"xability/internal/obs"
	"xability/internal/scenario"
	"xability/internal/shrink"
)

func main() {
	var (
		name      = flag.String("scenario", "nice", "registered scenario name (see -list)")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		seed      = flag.Int64("seed", 1, "run seed (sweep mode: first seed of the population)")
		sweep     = flag.Int("sweep", 0, "sweep the scenario across N seeds instead of one run")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		replicas  = flag.Int("replicas", 0, "override the scenario's replication degree")
		shards    = flag.Int("shards", 0, "override the scenario's shard count (deploys the sharded runtime)")
		useCT     = flag.Bool("ct", false, "force the message-passing consensus substrate")
		showTrace = flag.Bool("history", true, "print the observed event history (single-run mode)")

		shrinkSeed   = flag.Int64("shrink", 0, "shrink the given failing seed to a minimal counterexample trace")
		shrinkOut    = flag.String("shrink-out", "", "also write the rendered minimal trace to this file")
		shrinkSteps  = flag.Int("shrink-budget", 0, "cap the shrinker's scenario re-executions (0 = default)")
		shrinkInline = flag.Bool("shrink-failing", false, "sweep mode: shrink failing seeds into counterexample traces")
		shrinkJSON   = flag.String("shrink-json", "", "shrink mode: also write the machine-readable artifact (scenario, seed, kept ops, minimal schedule) to this file")
		annotate     = flag.Bool("annotate", false, "shrink mode: append the minimal run's request timeline to the rendered trace")
		replayFile   = flag.String("replay", "", "re-run a -shrink-json artifact and report whether the failure reproduces")

		metrics     = flag.Bool("metrics", false, "run under the metrics registry (single run: print the table; sweep: fold the rollup)")
		metricsJSON = flag.String("metrics-json", "", "single-run mode: also write the metrics snapshot as JSON to this file")
		traceOut    = flag.String("trace", "", "write Chrome trace-event JSON: single run to this file; sweep mode re-runs failing seeds to <file>.seed<N>.json")
		progress    = flag.Bool("progress", false, "sweep mode: print periodic one-line progress (seeds/s, completion)")
	)
	flag.Parse()
	shrinkMode := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shrink" {
			shrinkMode = true
		}
	})

	if *list {
		for _, n := range scenario.Names() {
			sc, _ := scenario.Get(n)
			fmt.Printf("  %-18s %s\n", n, sc.Description)
		}
		return
	}
	if *replayFile != "" {
		runReplay(*replayFile)
		return
	}

	sc, ok := scenario.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "xsim: unknown scenario %q (use -list)\n", *name)
		os.Exit(2)
	}
	if *replicas > 0 {
		if sc.Plan.TopologyBound() {
			fmt.Fprintf(os.Stderr,
				"xsim: scenario %q partitions/drops links between named processes; -replicas would silently change the fault's meaning\n", *name)
			os.Exit(2)
		}
		sc.Replicas = *replicas
	}
	if *shards > 0 && *shards != sc.Shards {
		if sc.Plan.ShardBound() {
			fmt.Fprintf(os.Stderr,
				"xsim: scenario %q addresses explicit shard indices; -shards would silently change the faults' meaning\n", *name)
			os.Exit(2)
		}
		if sc.Protocol != scenario.XAbility {
			fmt.Fprintf(os.Stderr, "xsim: the sharded runtime deploys the x-ability protocol only\n")
			os.Exit(2)
		}
		sc.Shards = *shards
	}
	if *useCT {
		sc.Consensus = core.ConsensusCT
	}

	if shrinkMode {
		runShrink(sc, *shrinkSeed, *shrinkSteps, *shrinkOut, *shrinkJSON, *annotate)
		return
	}
	if *sweep > 0 {
		runSweep(sc, *seed, *sweep, *workers, *shrinkInline, *shrinkSteps, sweepObs{
			metrics:  *metrics,
			traceOut: *traceOut,
			progress: *progress,
		})
		return
	}
	runOne(sc, *seed, *showTrace, *metrics, *metricsJSON, *traceOut)
}

func runOne(sc scenario.Scenario, seed int64, showTrace, metrics bool, metricsJSON, traceOut string) {
	run := &obs.Run{}
	if metrics || metricsJSON != "" {
		run.Metrics = obs.NewMetrics()
	}
	if traceOut != "" {
		run.Trace = obs.NewTrace(0)
	}
	o := scenario.ExecuteObserved(sc, seed, run)
	if metrics {
		fmt.Println("metrics:")
		for _, line := range nonEmptyLines(o.Obs.String()) {
			fmt.Printf("  %s\n", line)
		}
	}
	if metricsJSON != "" {
		writeJSONFile(metricsJSON, func(w io.Writer) error {
			j, err := o.Obs.MarshalJSON()
			if err != nil {
				return err
			}
			_, err = w.Write(append(j, '\n'))
			return err
		})
		fmt.Printf("metrics written to %s\n", metricsJSON)
	}
	if traceOut != "" {
		writeJSONFile(traceOut, run.Trace.WriteJSON)
		fmt.Printf("trace written to %s (%d events, %d dropped)\n",
			traceOut, run.Trace.Len(), run.Trace.Dropped())
	}
	if showTrace {
		fmt.Println("history:")
		for _, e := range o.History {
			fmt.Printf("  %v\n", e)
		}
	}
	fmt.Printf("scenario: %s (%s)  seed: %d\n", sc.Name, sc.Protocol, seed)
	fmt.Printf("requests: %d  submit attempts: %d  messages: %d  simulated time: %v\n",
		o.Requests, o.Attempts, o.Messages, o.SimTime)
	fmt.Printf("executions: %d  cancels: %d  effects in force: %d\n",
		o.Executions, o.Cancels, o.EffectsInForce)
	if o.Latency.Count > 0 {
		fmt.Printf("sessions: %d  latency p50: %v  p95: %v  p99: %v  max: %v\n",
			o.Latency.Count, o.Latency.P50, o.Latency.P95, o.Latency.P99, o.Latency.Max)
		if o.SimTime > 0 {
			fmt.Printf("throughput: %.0f ops/vsec\n", float64(o.Requests)/o.SimTime.Seconds())
		}
	}
	if o.Shards > 0 {
		// Sharded runs report the merged verdict: per-shard R-clauses plus
		// the router's global exactly-once-routing audit.
		for s, rep := range o.ShardReports {
			fmt.Printf("shard %d: R2=%v R3(strict)=%v R3(projected)=%v\n", s, rep.R2, rep.R3Strict, rep.R3Projected)
		}
		fmt.Printf("routing exactly-once: %v\n", o.RoutingExact)
		fmt.Printf("x-able (merged): %v  replied: %v\n", o.XAble, o.Replied)
		if !o.XAble || !o.Replied {
			os.Exit(1)
		}
		return
	}
	if sc.Protocol == scenario.XAbility {
		rep := o.Report
		fmt.Printf("R2 (liveness): %v\n", rep.R2)
		fmt.Printf("R3 (x-able, strict): %v\n", rep.R3Strict)
		fmt.Printf("R3 (x-able, per-request): %v\n", rep.R3Projected)
		fmt.Printf("R4 (reply consistency): %v\n", rep.R4Possible && rep.R4Consistent)
		for _, d := range rep.Details {
			fmt.Printf("  note: %s\n", d)
		}
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}
	// Baselines are judged by the charitable checker reading and the
	// audit; duplication is the expected, reported outcome.
	fmt.Printf("x-able: %v  replied: %v\n", o.XAble, o.Replied)
}

// sweepObs bundles the sweep-mode observability flags.
type sweepObs struct {
	metrics  bool
	traceOut string
	progress bool
}

func runSweep(sc scenario.Scenario, seed int64, n, workers int, shrinkFailing bool, budget int, ob sweepObs) {
	opts := scenario.SweepOptions{
		Workers:       workers,
		ShrinkFailing: shrinkFailing,
		ShrinkBudget:  budget,
		Metrics:       ob.metrics,
		TraceFailing:  ob.traceOut != "",
	}
	if ob.progress {
		opts.Progress = progressPrinter(n)
	}
	start := time.Now() //xvet:ok walltime CLI-edge throughput report; the runs themselves are virtual-time
	d := scenario.SweepWithOptions(sc, scenario.Seeds(seed, n), opts)
	if ob.progress {
		elapsed := time.Since(start) //xvet:ok walltime CLI-edge throughput report
		fmt.Fprintf(os.Stderr, "sweep: %d seeds in %v (%.1f seeds/s)\n",
			n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	}
	fmt.Println(d)
	// Failing-seed traces land next to the requested prefix, one file per
	// re-run seed, in seed order.
	traced := make([]int64, 0, len(d.Traces))
	for seed := range d.Traces {
		traced = append(traced, seed)
	}
	sort.Slice(traced, func(i, j int) bool { return traced[i] < traced[j] })
	for _, seed := range traced {
		path := fmt.Sprintf("%s.seed%d.json", ob.traceOut, seed)
		if err := os.WriteFile(path, d.Traces[seed], 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xsim: write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("failing-seed trace written to %s\n", path)
	}
	// For the x-ability protocol any failing seed falsifies the paper's
	// claim; baselines are swept for their distributions only.
	if sc.Protocol == scenario.XAbility && (d.XAbleRate() < 1 || d.RepliedRate() < 1) {
		os.Exit(1)
	}
}

// progressPrinter returns a concurrency-safe sweep callback that prints a
// one-line status at most every 500ms of wall time (plus the final line).
// The wall clock stays at the CLI edge: it rate-limits printing only and
// never feeds a run.
func progressPrinter(total int) func(done, total int) {
	var mu sync.Mutex
	last := time.Time{}
	return func(done, _ int) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now() //xvet:ok walltime CLI-edge print rate limiting only
		if done < total && now.Sub(last) < 500*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "sweep: %d/%d seeds (%.0f%%)\n",
			done, total, 100*float64(done)/float64(total))
	}
}

func runReplay(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim: %v\n", err)
		os.Exit(2)
	}
	sl, err := shrink.LoadShrinkLog(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim: %v\n", err)
		os.Exit(2)
	}
	o, err := sl.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("replayed %s seed %d: x-able=%v replied=%v effects-in-force=%d executions=%d timed-out=%v\n",
		sl.Scenario, sl.Seed, o.XAble, o.Replied, o.EffectsInForce, o.Executions, o.TimedOut)
	if o.XAble && o.Replied {
		fmt.Println("replay did NOT reproduce the failure (registered scenario drifted?)")
		os.Exit(1)
	}
	fmt.Println("failure reproduced")
}

func writeJSONFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim: %v\n", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "xsim: write %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "xsim: close %s: %v\n", path, err)
		os.Exit(1)
	}
}

// nonEmptyLines splits a rendered block into its non-empty lines for
// indented reprinting.
func nonEmptyLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

func runShrink(sc scenario.Scenario, seed int64, budget int, out, jsonOut string, annotate bool) {
	mt, err := shrink.Shrink(sc, seed, shrink.Options{MaxSteps: budget, Annotate: annotate})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsim: shrink %s seed %d: %v\n", sc.Name, seed, err)
		if mt.Log == nil {
			os.Exit(1)
		}
		// Budget-cut shrinks still print and write the best-so-far trace
		// before exiting non-zero.
	}
	rendered := mt.Render()
	fmt.Printf("%s", rendered)
	fmt.Printf("shrink: %d steps, %d→%d deliveries, %d→%d fault ops, 1-minimal: %v\n",
		mt.Steps, mt.BaseDeliveries, mt.Deliveries, mt.BaseOps, mt.Ops, mt.Minimal)
	if out != "" {
		if werr := os.WriteFile(out, []byte(rendered), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "xsim: write %s: %v\n", out, werr)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", out)
	}
	if jsonOut != "" {
		writeJSONFile(jsonOut, mt.WriteJSON)
		fmt.Printf("shrink artifact written to %s (re-run with -replay %s)\n", jsonOut, jsonOut)
	}
	if err != nil {
		os.Exit(1)
	}
}
