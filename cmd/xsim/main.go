// Command xsim runs registered scenarios of the replicated service end to
// end and verifies the results against the x-ability specification (R2–R4
// of §4).
//
// Single-run mode executes one seed, prints the observed history, and
// reports the R-clause verdicts. Sweep mode (-sweep N) replays the
// scenario across N seeds in parallel workers — runs are CPU-bound on the
// virtual clock — and prints the verdict distribution: x-able rate, reply
// rate, effects-in-force histogram, and any failing seeds.
//
// Scenarios come from the registry (-list prints them): nice,
// crash-failover, partition, delay-storm, suspect, failures, sequence, the
// spectrum-N pulse sweeps, and the baseline contrast rows (pb-nice,
// pb-crash-failover, active-nice).
package main

import (
	"flag"
	"fmt"
	"os"

	"xability/internal/core"
	"xability/internal/scenario"
)

func main() {
	var (
		name      = flag.String("scenario", "nice", "registered scenario name (see -list)")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		seed      = flag.Int64("seed", 1, "run seed (sweep mode: first seed of the population)")
		sweep     = flag.Int("sweep", 0, "sweep the scenario across N seeds instead of one run")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		replicas  = flag.Int("replicas", 0, "override the scenario's replication degree")
		useCT     = flag.Bool("ct", false, "force the message-passing consensus substrate")
		showTrace = flag.Bool("history", true, "print the observed event history (single-run mode)")
	)
	flag.Parse()

	if *list {
		for _, n := range scenario.Names() {
			sc, _ := scenario.Get(n)
			fmt.Printf("  %-18s %s\n", n, sc.Description)
		}
		return
	}

	sc, ok := scenario.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "xsim: unknown scenario %q (use -list)\n", *name)
		os.Exit(2)
	}
	if *replicas > 0 {
		if sc.Plan.TopologyBound() {
			fmt.Fprintf(os.Stderr,
				"xsim: scenario %q partitions/drops links between named processes; -replicas would silently change the fault's meaning\n", *name)
			os.Exit(2)
		}
		sc.Replicas = *replicas
	}
	if *useCT {
		sc.Consensus = core.ConsensusCT
	}

	if *sweep > 0 {
		runSweep(sc, *seed, *sweep, *workers)
		return
	}
	runOne(sc, *seed, *showTrace)
}

func runOne(sc scenario.Scenario, seed int64, showTrace bool) {
	o := scenario.Execute(sc, seed)
	if showTrace {
		fmt.Println("history:")
		for _, e := range o.History {
			fmt.Printf("  %v\n", e)
		}
	}
	fmt.Printf("scenario: %s (%s)  seed: %d\n", sc.Name, sc.Protocol, seed)
	fmt.Printf("requests: %d  submit attempts: %d  messages: %d  simulated time: %v\n",
		o.Requests, o.Attempts, o.Messages, o.SimTime)
	fmt.Printf("executions: %d  cancels: %d  effects in force: %d\n",
		o.Executions, o.Cancels, o.EffectsInForce)
	if sc.Protocol == scenario.XAbility {
		rep := o.Report
		fmt.Printf("R2 (liveness): %v\n", rep.R2)
		fmt.Printf("R3 (x-able, strict): %v\n", rep.R3Strict)
		fmt.Printf("R3 (x-able, per-request): %v\n", rep.R3Projected)
		fmt.Printf("R4 (reply consistency): %v\n", rep.R4Possible && rep.R4Consistent)
		for _, d := range rep.Details {
			fmt.Printf("  note: %s\n", d)
		}
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}
	// Baselines are judged by the charitable checker reading and the
	// audit; duplication is the expected, reported outcome.
	fmt.Printf("x-able: %v  replied: %v\n", o.XAble, o.Replied)
}

func runSweep(sc scenario.Scenario, seed int64, n, workers int) {
	d := scenario.Sweep(sc, scenario.Seeds(seed, n), workers)
	fmt.Println(d)
	// For the x-ability protocol any failing seed falsifies the paper's
	// claim; baselines are swept for their distributions only.
	if sc.Protocol == scenario.XAbility && (d.XAbleRate() < 1 || d.RepliedRate() < 1) {
		os.Exit(1)
	}
}
