// Command xsim runs one scenario of the replicated service end to end and
// verifies the resulting history against the x-ability specification
// (R2–R4 of §4), printing the observed history and the verdict.
//
// Scenarios:
//
//	nice      — failure-free run (primary-backup flavor)
//	crash     — the first replica crashes mid-execution; the cleaner takes over
//	suspect   — a false suspicion makes two replicas execute (active flavor)
//	failures  — the environment injects action failures; execute-until-success retries
//	sequence  — a multi-request session mixing reads, tokens, and debits
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xability/internal/action"
	"xability/internal/core"
	"xability/internal/simnet"
	"xability/internal/verify"
	"xability/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "nice", "nice | crash | suspect | failures | sequence")
		replicas  = flag.Int("replicas", 3, "number of replicas")
		seed      = flag.Int64("seed", 1, "run seed")
		useCT     = flag.Bool("ct", false, "use the message-passing consensus substrate")
		showTrace = flag.Bool("history", true, "print the observed event history")
	)
	flag.Parse()

	mode := core.ConsensusLocal
	if *useCT {
		mode = core.ConsensusCT
	}
	bank := workload.NewBank(4, 100)
	c := core.NewCluster(core.ClusterConfig{
		Replicas:  *replicas,
		Seed:      *seed,
		Net:       simnet.Config{MaxDelay: 200 * time.Microsecond},
		Consensus: mode,
		Registry:  workload.Registry(),
		Setup:     bank.Setup(),
	})
	defer c.Stop()

	switch *scenario {
	case "nice":
		submit(c, action.NewRequest("debit", "acct-0"))
	case "crash":
		c.Env.SetFailures("debit", 1.0, 6, 0)
		clk := c.Clock()
		clk.Enter()
		clk.Go(func() {
			clk.Sleep(2 * time.Millisecond)
			c.CrashServer(0)
			c.ClientSuspect("replica-0", true)
		})
		submit(c, action.NewRequest("debit", "acct-0"))
		clk.Exit()
	case "suspect":
		c.Env.SetFailures("token", 1.0, 5, 0)
		clk := c.Clock()
		clk.Enter()
		clk.Go(func() {
			clk.Sleep(2 * time.Millisecond)
			c.SuspectEverywhere("replica-0", true)
		})
		submit(c, action.NewRequest("token", "t"))
		clk.Exit()
	case "failures":
		c.Env.SetFailures("debit", 0.7, 6, 0.5)
		submit(c, action.NewRequest("debit", "acct-0"))
	case "sequence":
		for _, r := range workload.Generate(workload.Spec{Requests: 6, Accounts: 2}, *seed) {
			submit(c, r)
		}
	default:
		fmt.Fprintf(os.Stderr, "xsim: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	c.Net.Quiesce()
	h := c.Observer.History()
	if *showTrace {
		fmt.Println("history:")
		for _, e := range h {
			fmt.Printf("  %v\n", e)
		}
	}
	reqs, replies := c.Client.Log()
	rep := verify.Check(verify.Run{
		Registry:       workload.Registry(),
		Requests:       reqs,
		Replies:        replies,
		History:        h,
		SubmitAttempts: c.Client.Attempts(),
	})
	fmt.Printf("requests: %d  submit attempts: %d  messages: %d\n",
		len(reqs), c.Client.Attempts(), c.Net.TotalSent())
	fmt.Printf("R2 (liveness): %v\n", rep.R2)
	fmt.Printf("R3 (x-able, strict): %v\n", rep.R3Strict)
	fmt.Printf("R3 (x-able, per-request): %v\n", rep.R3Projected)
	fmt.Printf("R4 (reply consistency): %v\n", rep.R4Possible && rep.R4Consistent)
	for _, d := range rep.Details {
		fmt.Printf("  note: %s\n", d)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func submit(c *core.Cluster, req action.Request) {
	v := c.Client.SubmitUntilSuccess(req)
	fmt.Printf("%v -> %s\n", req, action.Display(v))
}
