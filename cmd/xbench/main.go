// Command xbench regenerates the experiment tables of EXPERIMENTS.md
// (T1–T4, T3d, T6, T7, T9, T10, T11, T12, T13, T14; T5 is produced by
// examples/threetier). Each table validates one of the paper's claims —
// see DESIGN.md §3 for the claim-to-table map. T9 is the shard-scaling
// table; T10 is the sweep-throughput table that tracks the repo's perf
// trajectory; T11 is the saturation-curve table of the throughput plane
// (batching and pipelining under open-loop load); T12 is the
// crash-recovery table of the durable-state plane (failure density with
// restarts on/off, plus the sync-latency cost curve); T13 is the
// observability table (schedule-space coverage and metric rollups per
// scenario — see DESIGN.md §10); T14 is the total-loss table (x-able
// rate vs failure density across minority/majority/total outage regimes
// with WAL compaction armed, plus the snapshot-tariff cost curve).
//
// With -json, the requested tables are additionally written to a JSON
// file (default BENCH_6.json) with per-table wall time and allocation
// counts, plus the crash-failover sweep headline against its recorded
// pre-PR-5 baseline. CI uploads the file as an artifact so the perf
// trajectory accumulates per build; timing numbers are report-only —
// regressions gate on the deterministic alloc-budget tests, never on
// wall clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"xability/internal/exper"
)

// tableRun is one regenerated table in the JSON report. WallNs and
// TotalAllocs cover the whole table regeneration (they scale with flags
// like -sweep; divide by the workload yourself before comparing builds).
type tableRun struct {
	WallNs      int64  `json:"wall_ns"`
	TotalAllocs uint64 `json:"total_allocs"`
	Rows        any    `json:"rows"`
}

// headline is the acceptance metric of the perf PR: crash-failover sweep
// throughput against the recorded pre-PR number.
type headline struct {
	Seeds            int     `json:"seeds"`
	SeedsPerSec      float64 `json:"seeds_per_sec"`
	PrePRSeedsPerSec float64 `json:"pre_pr_seeds_per_sec"`
	Speedup          float64 `json:"speedup"`
}

type report struct {
	Schema     string              `json:"schema"`
	PR         int                 `json:"pr"`
	Go         string              `json:"go"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Tables     map[string]tableRun `json:"tables"`
	// T7CrashFailover is the headline sweep (from the T10 measurement):
	// the ratio the alloc-budget-gated perf work is accountable to.
	T7CrashFailover *headline `json:"t7_crash_failover,omitempty"`
}

// timed regenerates one table, recording wall time and heap allocations.
func timed(rep *report, name string, f func() any) any {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //xvet:ok walltime the bench stopwatch measures real regeneration cost for BENCH_N.json; timing is report-only
	rows := f()
	wall := time.Since(start) //xvet:ok walltime the bench stopwatch reports real elapsed time by design
	runtime.ReadMemStats(&after)
	if rep != nil {
		rep.Tables[name] = tableRun{
			WallNs:      wall.Nanoseconds(),
			TotalAllocs: after.Mallocs - before.Mallocs,
			Rows:        rows,
		}
	}
	return rows
}

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base seed for all experiments")
		tables    = flag.String("tables", "1,2,3,3d,4,6,7,9,10,11,12,13,14", "comma-separated table numbers to run")
		reqs      = flag.Int("requests", 200, "requests per cost measurement (T3)")
		insts     = flag.Int("instances", 500, "consensus instances (T4)")
		sweep     = flag.Int("sweep", 2000, "seeds per scenario sweep (T7)")
		t3seeds   = flag.Int("t3seeds", 100, "seeds per cost-distribution row (T3d)")
		t10seeds  = flag.Int("t10seeds", 512, "seeds per throughput row (T10; 512 matches the recorded baselines)")
		t12seeds  = flag.Int("t12seeds", 64, "seeds per failure-density cell (T12; the sync curve uses a quarter)")
		t13seeds  = flag.Int("t13seeds", 256, "seeds per observability row (T13)")
		t14seeds  = flag.Int("t14seeds", 64, "seeds per outage-regime cell (T14; the snapshot curve uses a quarter)")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		shardReqs = flag.Int("shard-requests", 0, "requests per shard-scaling row (T9; 0 = default)")
		jsonOut   = flag.Bool("json", false, "also write the requested tables as JSON")
		outPath   = flag.String("out", "BENCH_6.json", "JSON output path (with -json)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(t)] = true
	}

	var rep *report
	if *jsonOut {
		rep = &report{
			Schema:     "xbench/v1",
			PR:         6,
			Go:         runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Tables:     make(map[string]tableRun),
		}
	}

	if want["1"] {
		rows := timed(rep, "1", func() any { return exper.TableT1(*seed) }).([]exper.T1Row)
		fmt.Println("T1 — x-ability verdicts and side-effect audit (claim E7: baselines duplicate, the protocol does not)")
		fmt.Printf("  %-16s %-16s %-8s %-10s %-8s\n", "protocol", "scenario", "x-able", "in-force", "replied")
		for _, r := range rows {
			fmt.Printf("  %-16s %-16s %-8v %-10d %-8v\n", r.Protocol, r.Scenario, r.XAble, r.EffectsInForce, r.Replied)
		}
		fmt.Println()
	}

	if want["2"] {
		rows := timed(rep, "2", func() any { return exper.TableT2(*seed) }).([]exper.T2Row)
		fmt.Println("T2 — run-time spectrum under false suspicion (claim E5: primary-backup ↔ active drift)")
		fmt.Printf("  %-10s %-12s %-8s %-8s\n", "pulses", "executions", "cancels", "x-able")
		for _, r := range rows {
			fmt.Printf("  %-10d %-12d %-8d %-8v\n", r.SuspicionPulses, r.Executions, r.Cancels, r.XAble)
		}
		fmt.Println()
	}

	if want["3"] {
		rows := timed(rep, "3", func() any { return exper.TableT3(*seed, *reqs) }).([]exper.T3Row)
		fmt.Println("T3 — protocol cost, nice runs (claim E8)")
		fmt.Printf("  %-18s %-10s %-14s %-10s\n", "protocol", "replicas", "mean latency", "msgs/req")
		for _, r := range rows {
			fmt.Printf("  %-18s %-10d %-14v %-10.1f\n", r.Protocol, r.Replicas, r.MeanLatency, r.MsgsPerReq)
		}
		fmt.Println()
	}

	if want["3d"] {
		rows := timed(rep, "3d", func() any { return exper.TableT3Dist(*seed, *reqs, *t3seeds, *workers) }).([]exper.T3DistRow)
		fmt.Printf("T3d — protocol cost distributions over %d-seed sweeps (claim E8 at population scale)\n", *t3seeds)
		fmt.Printf("  %-18s %-10s %-12s %-12s %-12s %-12s %-10s %-10s\n",
			"protocol", "replicas", "lat p50", "lat p90", "lat p99", "lat max", "msgs p50", "msgs max")
		for _, r := range rows {
			fmt.Printf("  %-18s %-10d %-12v %-12v %-12v %-12v %-10.1f %-10.1f\n",
				r.Protocol, r.Replicas, r.LatP50, r.LatP90, r.LatP99, r.LatMax, r.MsgP50, r.MsgMax)
		}
		fmt.Println()
	}

	if want["4"] {
		rows := timed(rep, "4", func() any { return exper.TableT4(*seed, *insts) }).([]exper.T4Row)
		fmt.Println("T4 — consensus substrate (claim E9: assumed object vs real protocol)")
		fmt.Printf("  %-16s %-10s %-12s\n", "provider", "proposers", "per-decision")
		for _, r := range rows {
			fmt.Printf("  %-16s %-10d %-12v\n", r.Provider, r.Proposers, r.PerDecide)
		}
		fmt.Println()
	}

	if want["6"] {
		rows := timed(rep, "6", func() any { return exper.TableT6() }).([]exper.T6Row)
		fmt.Println("T6 — checker scalability (claim E10)")
		fmt.Printf("  %-10s %-6s %-8s %-12s %-8s\n", "requests", "dup", "events", "normalize", "x-able")
		for _, r := range rows {
			fmt.Printf("  %-10d %-6d %-8d %-12v %-8v\n", r.Requests, r.DupFactor, r.Events, r.Normalize, r.XAble)
		}
		fmt.Println()
	}

	if want["7"] {
		rows := timed(rep, "7", func() any { return exper.TableT7(*seed, *sweep, *workers) }).([]exper.T7Row)
		fmt.Printf("T7 — verdict distributions over %d-seed sweeps (claims E7/E11 at scale)\n", *sweep)
		for _, r := range rows {
			d := r.Dist
			fmt.Printf("  %-16s x-able %.4f  replied %.4f  effects[1] %d/%d  mean attempts %.2f  mean msgs %.1f\n",
				r.Scenario, d.XAbleRate(), d.RepliedRate(), d.Effects[1], d.Runs,
				float64(d.Attempts)/float64(d.Runs), float64(d.Messages)/float64(d.Runs))
			if len(d.Failing) > 0 {
				fmt.Printf("  %-16s failing seeds: %v\n", "", d.Failing)
			}
		}
		fmt.Println()
	}

	if want["9"] {
		rows := timed(rep, "9", func() any { return exper.TableT9(*seed, *shardReqs) }).([]exper.T9Row)
		fmt.Println("T9 — shard scaling: aggregate throughput vs shard count (composition at scale)")
		fmt.Printf("  %-8s %-10s %-14s %-14s %-10s %-8s\n", "shards", "requests", "sim time", "ops/vsec", "msgs/req", "x-able")
		for _, r := range rows {
			fmt.Printf("  %-8d %-10d %-14v %-14.0f %-10.1f %-8v\n",
				r.Shards, r.Requests, r.SimTime, r.OpsPerVSec, r.MsgsPerReq, r.XAble && r.Replied)
		}
		if len(rows) >= 3 && rows[0].OpsPerVSec > 0 {
			fmt.Printf("  1→4 shard scaling: %.2fx  (claim: ≥3x)\n", rows[2].OpsPerVSec/rows[0].OpsPerVSec)
		}
		fmt.Println()
	}

	if want["10"] {
		rows := timed(rep, "10", func() any { return exper.TableT10(*seed, *t10seeds, *workers) }).([]exper.T10Row)
		fmt.Printf("T10 — sweep throughput, %d seeds per row (the perf trajectory; wall numbers are report-only)\n", *t10seeds)
		fmt.Printf("  %-16s %-10s %-14s %-14s %-14s %-12s %-8s\n",
			"scenario", "seeds", "wall", "seeds/sec", "allocs/seed", "pre-PR s/s", "speedup")
		for _, r := range rows {
			pre, speed := "-", "-"
			if r.PrePRSeedsPerSec > 0 {
				pre = fmt.Sprintf("%.1f", r.PrePRSeedsPerSec)
				speed = fmt.Sprintf("%.2fx", r.Speedup)
			}
			fmt.Printf("  %-16s %-10d %-14v %-14.1f %-14.0f %-12s %-8s\n",
				r.Scenario, r.Seeds, r.Wall.Round(time.Millisecond), r.SeedsPerSec, r.AllocsPerSeed, pre, speed)
		}
		fmt.Println()
		if rep != nil {
			for _, r := range rows {
				if r.Scenario == "crash-failover" {
					rep.T7CrashFailover = &headline{
						Seeds:            r.Seeds,
						SeedsPerSec:      r.SeedsPerSec,
						PrePRSeedsPerSec: r.PrePRSeedsPerSec,
						Speedup:          r.Speedup,
					}
				}
			}
		}
	}

	if want["11"] {
		rows := timed(rep, "11", func() any { return exper.TableT11(*seed) }).([]exper.T11Row)
		fmt.Println("T11 — saturation curves: ops per virtual second and latency vs offered load (the throughput plane)")
		fmt.Printf("  %-18s %-8s %-10s %-10s %-12s %-12s %-10s %-10s %-10s %-10s %-8s\n",
			"config", "mode", "rate", "sessions", "sim time", "ops/vsec", "lat p50", "lat p95", "lat p99", "msgs/req", "x-able")
		for _, r := range rows {
			rate := "-"
			if r.Mode == "open" {
				rate = fmt.Sprintf("%d", r.Rate)
			}
			fmt.Printf("  %-18s %-8s %-10s %-10d %-12v %-10.0f %-10v %-10v %-10v %-10.1f %-8v\n",
				r.Config, r.Mode, rate, r.Sessions, r.SimTime, r.OpsPerVSec,
				r.LatP50, r.LatP95, r.LatP99, r.MsgsPerReq, r.XAble && r.Replied)
		}
		peaks := exper.T11Peak(rows)
		if peaks["unbatched"] > 0 {
			fmt.Printf("  batched+pipelined vs unbatched peak: %.2fx  (claim: ≥3x)\n",
				peaks["batched+pipelined"]/peaks["unbatched"])
		}
		fmt.Println()
	}

	if want["12"] {
		rows := timed(rep, "12", func() any { return exper.TableT12(*seed, *t12seeds, *workers) }).([]exper.T12Row)
		fmt.Printf("T12 — crash-recovery: x-able rate vs failure density, restarts on/off (%d seeds per cell)\n", *t12seeds)
		fmt.Printf("  %-6s %-10s %-8s %-8s %-8s %-10s %-10s %-10s\n",
			"ops", "restarts", "x-able", "replied", "dup-runs", "wal/run", "msgs/run", "seeds")
		for _, r := range rows {
			fmt.Printf("  %-6d %-10v %-8.4f %-8.4f %-8d %-10.1f %-10.1f %-10d\n",
				r.Ops, r.Restarts, r.XAbleRate, r.RepliedRate, r.DupRuns, r.MeanWALAppends, r.MeanMsgs, r.Seeds)
		}
		syncSeeds := *t12seeds / 4
		if syncSeeds < 1 {
			syncSeeds = 1
		}
		syncRows := timed(rep, "12sync", func() any { return exper.TableT12Sync(*seed, syncSeeds) }).([]exper.T12SyncRow)
		fmt.Printf("  durability price — sync tariff vs virtual-time cost (restart-minority, %d seeds per point)\n", syncSeeds)
		fmt.Printf("  %-10s %-8s %-10s %-14s %-14s\n", "sync", "x-able", "wal/run", "sync-t/run", "sim-t/run")
		for _, r := range syncRows {
			fmt.Printf("  %-10v %-8.4f %-10.1f %-14v %-14v\n",
				r.Sync, r.XAbleRate, r.MeanAppends, r.MeanSyncTime, r.MeanSimTime)
		}
		fmt.Println()
	}

	if want["13"] {
		rows := timed(rep, "13", func() any { return exper.TableT13(*seed, *t13seeds, *workers) }).([]exper.T13Row)
		fmt.Printf("T13 — observability: schedule-space coverage and metric rollups (%d seeds per row)\n", *t13seeds)
		fmt.Printf("  %-18s %-8s %-9s %-11s %-9s %-12s %-12s %-12s %-12s %-12s %-12s\n",
			"scenario", "seeds", "classes", "singletons", "tail-new", "submits p50", "announce p50", "dropped p50", "suspects p50", "lat p50", "lat max")
		for _, r := range rows {
			fmt.Printf("  %-18s %-8d %-9d %-11d %-9.2f %-12d %-12d %-12d %-12d %-12v %-12v\n",
				r.Scenario, r.Seeds, r.Classes, r.Singletons, r.TailNewRate,
				r.SubmitsP50, r.AnnounceP50, r.DroppedP50, r.SuspectP50, r.LatP50, r.LatMax)
		}
		fmt.Println()
	}

	if want["14"] {
		rows := timed(rep, "14", func() any { return exper.TableT14(*seed, *t14seeds, *workers) }).([]exper.T14Row)
		fmt.Printf("T14 — total-loss recovery: x-able rate vs failure density across outage regimes, compaction armed (%d seeds per cell)\n", *t14seeds)
		fmt.Printf("  %-10s %-6s %-8s %-8s %-8s %-10s %-10s %-10s %-10s\n",
			"regime", "ops", "x-able", "replied", "dup-runs", "wal/run", "compact", "live/run", "seeds")
		for _, r := range rows {
			fmt.Printf("  %-10s %-6d %-8.4f %-8.4f %-8d %-10.1f %-10.1f %-10.1f %-10d\n",
				r.Regime, r.Ops, r.XAbleRate, r.RepliedRate, r.DupRuns,
				r.MeanWALAppends, r.MeanCompactions, r.MeanLiveRecords, r.Seeds)
		}
		snapSeeds := *t14seeds / 4
		if snapSeeds < 1 {
			snapSeeds = 1
		}
		snapRows := timed(rep, "14snap", func() any { return exper.TableT14Snap(*seed, snapSeeds) }).([]exper.T14SnapRow)
		fmt.Printf("  bounded-log price — snapshot tariff vs virtual-time cost (power-cycle, compact threshold 8, %d seeds per point)\n", snapSeeds)
		fmt.Printf("  %-10s %-8s %-10s %-14s %-14s\n", "snap", "x-able", "compact", "sync-t/run", "sim-t/run")
		for _, r := range snapRows {
			fmt.Printf("  %-10v %-8.4f %-10.1f %-14v %-14v\n",
				r.Snap, r.XAbleRate, r.MeanCompactions, r.MeanSyncTime, r.MeanSimTime)
		}
		fmt.Println()
	}

	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no tables selected")
		os.Exit(2)
	}

	if rep != nil {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}
