// Command xbench regenerates the experiment tables of EXPERIMENTS.md
// (T1–T4, T6, T7, T9; T5 is produced by examples/threetier). Each table
// validates one of the paper's claims — see DESIGN.md §3 for the
// claim-to-table map. T9 is the shard-scaling table: aggregate ops per
// virtual second of the sharded runtime (internal/shard) at 1, 2, 4, and
// 8 replica groups, with the merged exactly-once verdict per row.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xability/internal/exper"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base seed for all experiments")
		tables    = flag.String("tables", "1,2,3,4,6,7,9", "comma-separated table numbers to run")
		reqs      = flag.Int("requests", 20, "requests per cost measurement (T3)")
		insts     = flag.Int("instances", 50, "consensus instances (T4)")
		sweep     = flag.Int("sweep", 200, "seeds per scenario sweep (T7)")
		workers   = flag.Int("workers", 0, "parallel sweep workers (T7; 0 = GOMAXPROCS)")
		shardReqs = flag.Int("shard-requests", 0, "requests per shard-scaling row (T9; 0 = default)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(t)] = true
	}

	if want["1"] {
		fmt.Println("T1 — x-ability verdicts and side-effect audit (claim E7: baselines duplicate, the protocol does not)")
		fmt.Printf("  %-16s %-16s %-8s %-10s %-8s\n", "protocol", "scenario", "x-able", "in-force", "replied")
		for _, r := range exper.TableT1(*seed) {
			fmt.Printf("  %-16s %-16s %-8v %-10d %-8v\n", r.Protocol, r.Scenario, r.XAble, r.EffectsInForce, r.Replied)
		}
		fmt.Println()
	}

	if want["2"] {
		fmt.Println("T2 — run-time spectrum under false suspicion (claim E5: primary-backup ↔ active drift)")
		fmt.Printf("  %-10s %-12s %-8s %-8s\n", "pulses", "executions", "cancels", "x-able")
		for _, r := range exper.TableT2(*seed) {
			fmt.Printf("  %-10d %-12d %-8d %-8v\n", r.SuspicionPulses, r.Executions, r.Cancels, r.XAble)
		}
		fmt.Println()
	}

	if want["3"] {
		fmt.Println("T3 — protocol cost, nice runs (claim E8)")
		fmt.Printf("  %-18s %-10s %-14s %-10s\n", "protocol", "replicas", "mean latency", "msgs/req")
		for _, r := range exper.TableT3(*seed, *reqs) {
			fmt.Printf("  %-18s %-10d %-14v %-10.1f\n", r.Protocol, r.Replicas, r.MeanLatency, r.MsgsPerReq)
		}
		fmt.Println()
	}

	if want["4"] {
		fmt.Println("T4 — consensus substrate (claim E9: assumed object vs real protocol)")
		fmt.Printf("  %-16s %-10s %-12s\n", "provider", "proposers", "per-decision")
		for _, r := range exper.TableT4(*seed, *insts) {
			fmt.Printf("  %-16s %-10d %-12v\n", r.Provider, r.Proposers, r.PerDecide)
		}
		fmt.Println()
	}

	if want["6"] {
		fmt.Println("T6 — checker scalability (claim E10)")
		fmt.Printf("  %-10s %-6s %-8s %-12s %-8s\n", "requests", "dup", "events", "normalize", "x-able")
		for _, r := range exper.TableT6() {
			fmt.Printf("  %-10d %-6d %-8d %-12v %-8v\n", r.Requests, r.DupFactor, r.Events, r.Normalize, r.XAble)
		}
		fmt.Println()
	}

	if want["7"] {
		fmt.Printf("T7 — verdict distributions over %d-seed sweeps (claims E7/E11 at scale)\n", *sweep)
		for _, r := range exper.TableT7(*seed, *sweep, *workers) {
			d := r.Dist
			fmt.Printf("  %-16s x-able %.4f  replied %.4f  effects[1] %d/%d  mean attempts %.2f  mean msgs %.1f\n",
				r.Scenario, d.XAbleRate(), d.RepliedRate(), d.Effects[1], d.Runs,
				float64(d.Attempts)/float64(d.Runs), float64(d.Messages)/float64(d.Runs))
			if len(d.Failing) > 0 {
				fmt.Printf("  %-16s failing seeds: %v\n", "", d.Failing)
			}
		}
		fmt.Println()
	}

	if want["9"] {
		fmt.Println("T9 — shard scaling: aggregate throughput vs shard count (composition at scale)")
		fmt.Printf("  %-8s %-10s %-14s %-14s %-10s %-8s\n", "shards", "requests", "sim time", "ops/vsec", "msgs/req", "x-able")
		rows := exper.TableT9(*seed, *shardReqs)
		for _, r := range rows {
			fmt.Printf("  %-8d %-10d %-14v %-14.0f %-10.1f %-8v\n",
				r.Shards, r.Requests, r.SimTime, r.OpsPerVSec, r.MsgsPerReq, r.XAble && r.Replied)
		}
		if len(rows) >= 3 && rows[0].OpsPerVSec > 0 {
			fmt.Printf("  1→4 shard scaling: %.2fx  (claim: ≥3x)\n", rows[2].OpsPerVSec/rows[0].OpsPerVSec)
		}
		fmt.Println()
	}

	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no tables selected")
		os.Exit(2)
	}
}
