// Command xvet machine-checks the repo's determinism discipline: the
// invariants that make runs virtual-time, seed-deterministic, and
// byte-replayable. It is the compile-time counterpart of the replay
// regressions — a violation is reported where it is written, not three
// PRs later as a flaky sweep.
//
// Usage:
//
//	xvet [-json] [packages]   lint (default ./...); exit 1 on findings
//	xvet -rules               list rules with one-line docs
//	xvet -selfcheck           assert each analyzer fires on its fixture
//
// Escapes: annotate the flagged line (or the line above) with
// `//xvet:ok <rule> <reason>` — the reason is mandatory and checked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xability/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (file/line/col/rule/message)")
	rules := flag.Bool("rules", false, "list rules with one-line docs and exit")
	selfcheck := flag.Bool("selfcheck", false, "assert each analyzer still fires on its testdata fixture")
	flag.Parse()

	if *rules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modpath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	if *selfcheck {
		os.Exit(runSelfcheck(root))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(root, modpath, patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Check(pkgs, lint.Analyzers())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		rel := make([]lint.Diagnostic, len(diags))
		for i, d := range diags {
			d.File = relPath(root, d.File)
			rel[i] = d
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rel); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			d.File = relPath(root, d.File)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "xvet: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// runSelfcheck runs every analyzer against its own fixture package and
// fails unless each produces at least one diagnostic. A driver or loader
// regression that silently blinds an analyzer turns the CI gate into a
// rubber stamp; this step guards the guard.
func runSelfcheck(root string) int {
	status := 0
	for _, a := range lint.Analyzers() {
		dir := filepath.Join(root, "internal", "lint", "testdata", "src", a.Name)
		pkg, err := lint.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selfcheck %s: %v\n", a.Name, err)
			status = 1
			continue
		}
		diags, err := lint.Check([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			fmt.Fprintf(os.Stderr, "selfcheck %s: %v\n", a.Name, err)
			status = 1
			continue
		}
		fired := 0
		for _, d := range diags {
			if d.Rule == a.Name {
				fired++
			}
		}
		if fired == 0 {
			fmt.Fprintf(os.Stderr, "selfcheck %s: analyzer produced no diagnostics on its fixture\n", a.Name)
			status = 1
			continue
		}
		fmt.Printf("selfcheck %-14s ok (%d diagnostic(s) on fixture)\n", a.Name, fired)
	}
	return status
}

func relPath(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(r) {
		return filepath.ToSlash(r)
	}
	return file
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvet:", err)
	os.Exit(2)
}
