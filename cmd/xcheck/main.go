// Command xcheck is the mechanical x-ability checker: it reads an event
// history, reduces it under the rules of Figure 4, and reports whether it
// is x-able for a given request — printing the reduction trace on demand.
//
// History files are text, one event per line:
//
//	S <action> <value>
//	C <action> <value>
//
// with "nil" for the distinguished nil value and '#' comments. Undoable
// actions' derived cancel/commit events use the "<action>!cancel" /
// "<action>!commit" names.
//
// Example — a retried idempotent action:
//
//	$ cat h.txt
//	S read k
//	S read k
//	C read v
//	$ xcheck -idempotent read -action read -input k -trace h.txt
//	x-able: true (output v)
//	rule 18 (idempotent): absorb dangling start of (read, k)
//	  before: S(read, k) S(read, k) C(read, v)
//	  after:  S(read, k) C(read, v)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/reduce"
)

func main() {
	var (
		idem    = flag.String("idempotent", "", "comma-separated idempotent action names")
		undo    = flag.String("undoable", "", "comma-separated undoable action names")
		act     = flag.String("action", "", "request action to check x-ability against")
		input   = flag.String("input", "", "request input value")
		reqID   = flag.String("id", "", "request ID tag (optional)")
		showSig = flag.Bool("signature", false, "print the history's signature set (eqs. 24–25)")
		doTrace = flag.Bool("trace", false, "print the reduction trace")
		normal  = flag.Bool("normalize", false, "print the normal form and exit")
	)
	flag.Parse()

	reg := action.NewRegistry()
	for _, a := range splitNames(*idem) {
		reg.MustRegister(a, action.KindIdempotent)
	}
	for _, a := range splitNames(*undo) {
		reg.MustRegister(a, action.KindUndoable)
	}

	var h event.History
	var err error
	if flag.NArg() == 0 || flag.Arg(0) == "-" {
		h, err = event.Unmarshal(os.Stdin)
	} else {
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fatal(ferr)
		}
		defer f.Close()
		h, err = event.Unmarshal(f)
	}
	if err != nil {
		fatal(err)
	}

	n := reduce.New(reg)
	var trace []reduce.TraceStep
	if *doTrace {
		n.Trace = &trace
	}

	if *normal {
		fmt.Println(n.Normalize(h))
		printTrace(trace)
		return
	}
	if *act == "" {
		fatal(fmt.Errorf("missing -action (or use -normalize)"))
	}
	req := action.NewRequest(action.Name(*act), action.Value(*input)).WithID(*reqID)
	ok, ov := n.XAble(h, req)
	if ok {
		fmt.Printf("x-able: true (output %s)\n", action.Display(ov))
	} else {
		fmt.Println("x-able: false")
	}
	if *showSig {
		n.Trace = nil // the signature scan re-normalizes; avoid duplicate trace
		sigs := n.Signature(h, req)
		out := make([]string, len(sigs))
		for i, s := range sigs {
			out[i] = string(s)
		}
		fmt.Printf("signature: {%s}\n", strings.Join(out, ", "))
	}
	printTrace(trace)
	if !ok {
		os.Exit(1)
	}
}

func printTrace(trace []reduce.TraceStep) {
	for _, s := range trace {
		fmt.Printf("%v: %s\n  before: %v\n  after:  %v\n", s.Rule, s.Desc, s.Before, s.After)
	}
}

func splitNames(s string) []action.Name {
	var out []action.Name
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, action.Name(part))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xcheck:", err)
	os.Exit(2)
}
