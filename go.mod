module xability

go 1.24
