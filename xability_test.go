package xability_test

import (
	"strings"
	"testing"

	"xability"
)

func TestFacadeQuickstart(t *testing.T) {
	reg := xability.NewRegistry()
	reg.MustRegister("greet", xability.Idempotent)

	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     1,
		Registry: reg,
		Setup: func(m *xability.Machine) {
			if err := m.HandleIdempotent("greet", func(ctx *xability.Ctx) xability.Value {
				return "hello, " + ctx.Req.Input
			}); err != nil {
				t.Error(err)
			}
		},
	})
	defer svc.Close()

	reply := svc.Call(xability.NewRequest("greet", "world"))
	if reply != "hello, world" {
		t.Errorf("reply = %q", reply)
	}
	rep := svc.Verify(reg)
	if !rep.OK() || !rep.R3Strict {
		t.Errorf("verification failed: %+v", rep)
	}
	if len(svc.History()) == 0 {
		t.Error("no events observed")
	}
}

func TestFacadeCheckerRoundTrip(t *testing.T) {
	reg := xability.NewRegistry()
	reg.MustRegister("ship", xability.Undoable)
	req := xability.NewRequest("ship", "order-1").WithID("q").WithRound(1)

	ff, err := xability.EventsOf(reg, req, "shipped")
	if err != nil {
		t.Fatal(err)
	}
	if len(ff) != 4 {
		t.Fatalf("undoable eventsof = %v", ff)
	}
	chk := xability.NewChecker(reg)
	spec, err := xability.SpecFor(reg, xability.NewRequest("ship", "order-1").WithID("q"))
	if err != nil {
		t.Fatal(err)
	}
	ok, outs := chk.XAbleTo(ff, []xability.TargetSpec{spec})
	if !ok || outs[0] != "shipped" {
		t.Errorf("XAbleTo = (%v, %v)", ok, outs)
	}
}

func TestFacadeDerivedNames(t *testing.T) {
	if !strings.HasPrefix(string(xability.Cancel("a")), "a") {
		t.Error("cancel name should derive from the base name")
	}
	if xability.Cancel("a") == xability.Commit("a") {
		t.Error("cancel and commit must differ")
	}
	if xability.Nil == "" {
		t.Error("Nil must be distinguishable from the empty value")
	}
}

func TestFacadeEventConstructors(t *testing.T) {
	h := xability.History{xability.S("a", "1"), xability.C("a", "2")}
	if err := h.WellFormed(); err != nil {
		t.Error(err)
	}
}
