package xability_test

import (
	"strings"
	"testing"
	"time"

	"xability"
)

func TestFacadeQuickstart(t *testing.T) {
	reg := xability.NewRegistry()
	reg.MustRegister("greet", xability.Idempotent)

	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     1,
		Registry: reg,
		Setup: func(m *xability.Machine) {
			if err := m.HandleIdempotent("greet", func(ctx *xability.Ctx) xability.Value {
				return "hello, " + ctx.Req.Input
			}); err != nil {
				t.Error(err)
			}
		},
	})
	defer svc.Close()

	reply := svc.Call(xability.NewRequest("greet", "world"))
	if reply != "hello, world" {
		t.Errorf("reply = %q", reply)
	}
	rep := svc.Verify(reg)
	if !rep.OK() || !rep.R3Strict {
		t.Errorf("verification failed: %+v", rep)
	}
	if len(svc.History()) == 0 {
		t.Error("no events observed")
	}
}

func TestFacadeCheckerRoundTrip(t *testing.T) {
	reg := xability.NewRegistry()
	reg.MustRegister("ship", xability.Undoable)
	req := xability.NewRequest("ship", "order-1").WithID("q").WithRound(1)

	ff, err := xability.EventsOf(reg, req, "shipped")
	if err != nil {
		t.Fatal(err)
	}
	if len(ff) != 4 {
		t.Fatalf("undoable eventsof = %v", ff)
	}
	chk := xability.NewChecker(reg)
	spec, err := xability.SpecFor(reg, xability.NewRequest("ship", "order-1").WithID("q"))
	if err != nil {
		t.Fatal(err)
	}
	ok, outs := chk.XAbleTo(ff, []xability.TargetSpec{spec})
	if !ok || outs[0] != "shipped" {
		t.Errorf("XAbleTo = (%v, %v)", ok, outs)
	}
}

func TestFacadeDerivedNames(t *testing.T) {
	if !strings.HasPrefix(string(xability.Cancel("a")), "a") {
		t.Error("cancel name should derive from the base name")
	}
	if xability.Cancel("a") == xability.Commit("a") {
		t.Error("cancel and commit must differ")
	}
	if xability.Nil == "" {
		t.Error("Nil must be distinguishable from the empty value")
	}
}

func TestFacadeEventConstructors(t *testing.T) {
	h := xability.History{xability.S("a", "1"), xability.C("a", "2")}
	if err := h.WellFormed(); err != nil {
		t.Error(err)
	}
}

// TestFacadeApplyPlan drives a service through a declarative fault plan:
// the round-1 owner crashes mid-execution and the service must still
// answer exactly once.
func TestFacadeApplyPlan(t *testing.T) {
	reg := xability.NewRegistry()
	reg.MustRegister("charge", xability.Undoable)

	svc := xability.NewService(xability.ServiceConfig{
		Replicas: 3,
		Seed:     11,
		Registry: reg,
		Setup: func(m *xability.Machine) {
			if err := m.HandleUndoable("charge",
				func(ctx *xability.Ctx) xability.Value { return "charged" },
				nil); err != nil {
				t.Error(err)
			}
		},
	})
	defer svc.Close()

	// Stretch the execution so the crash lands mid-run.
	svc.Environment().SetFailures("charge", 1.0, 6, 0)
	clk := svc.Clock()
	clk.Enter()
	svc.Apply(xability.NewPlan().CrashAt(2*time.Millisecond, 0))
	reply := svc.Call(xability.NewRequest("charge", "card-1"))
	clk.Exit()

	if reply != "charged" {
		t.Errorf("reply = %q", reply)
	}
	rep := svc.Verify(reg)
	if !rep.OK() {
		t.Errorf("crash-failover run failed verification: %+v", rep)
	}
	if got := svc.Environment().InForceTotal("charge", "card-1"); got != 1 {
		t.Errorf("effects in force = %d, want exactly 1", got)
	}
}

// TestFacadeScenarioRegistryAndSweep exercises the public scenario surface:
// named lookup, single runs, and a small parallel sweep.
func TestFacadeScenarioRegistryAndSweep(t *testing.T) {
	names := xability.ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no builtin scenarios registered")
	}
	sc, ok := xability.ScenarioByName("crash-failover")
	if !ok {
		t.Fatal("crash-failover not registered")
	}
	if o := xability.RunScenario(sc, 42); !o.XAble || !o.Replied {
		t.Errorf("crash-failover run: %+v", o)
	}
	d := xability.Sweep(sc, xability.SweepSeeds(1, 16), 4)
	if d.Runs != 16 || d.XAbleRate() != 1.0 {
		t.Errorf("sweep distribution: %+v", d)
	}
	if err := xability.RegisterScenario(sc); err == nil {
		t.Error("duplicate scenario registration succeeded")
	}
}

// TestFacadeRecordReplayShrink exercises the debugging layer end to end
// through the public API: record a failing baseline seed, replay it
// verbatim to the same verdict, and shrink it to a minimal counterexample.
func TestFacadeRecordReplayShrink(t *testing.T) {
	sc, ok := xability.ScenarioByName("pb-crash-failover")
	if !ok {
		t.Fatal("pb-crash-failover not registered")
	}
	log := xability.NewScheduleLog()
	rec := xability.RunScenarioTraced(sc, 1, log, nil)
	if rec.XAble {
		t.Fatalf("pb-crash-failover should fail: %+v", rec)
	}
	if log.Len() == 0 {
		t.Fatal("no schedule recorded")
	}
	rep := xability.RunScenarioTraced(sc, 1, nil, &xability.Replay{Log: log})
	if rep.XAble != rec.XAble || rep.EffectsInForce != rec.EffectsInForce {
		t.Errorf("verbatim replay diverged: %+v vs %+v", rep, rec)
	}

	mt, err := xability.Shrink(sc, 1, xability.ShrinkOptions{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if !mt.Minimal || mt.Deliveries >= mt.BaseDeliveries {
		t.Errorf("shrink did not minimize: %+v", mt)
	}
	if o := xability.RunScenarioTraced(sc, 1, nil, mt.Replay()); o.XAble {
		t.Errorf("minimal trace no longer fails: %+v", o)
	}
	if !strings.Contains(mt.Outcome.Counterexample, "minimal counterexample") {
		t.Errorf("missing rendering:\n%s", mt.Outcome.Counterexample)
	}

	// The sweep knob attaches counterexamples (the root package links the
	// shrinker).
	d := xability.SweepWithOptions(sc, xability.SweepSeeds(1, 4), xability.SweepOptions{
		ShrinkFailing:      true,
		MaxCounterexamples: 1,
	})
	if len(d.Counterexamples) != 1 {
		t.Errorf("sweep counterexamples = %d, want 1", len(d.Counterexamples))
	}
}

// TestFacadeShardedService drives the sharding plane through the public
// facade: a 4-group deployment, routed calls (single and batched), a
// correlated fault via Apply, and the merged verification.
func TestFacadeShardedService(t *testing.T) {
	reg := xability.NewRegistry()
	reg.MustRegister("put", xability.Idempotent)

	svc := xability.NewShardedService(xability.ShardedConfig{
		Shards:   4,
		Replicas: 3,
		Seed:     5,
		Registry: reg,
		Setup: func(shard int) func(m *xability.Machine) {
			return func(m *xability.Machine) {
				if err := m.HandleIdempotent("put", func(ctx *xability.Ctx) xability.Value {
					return "ok:" + ctx.Req.Input
				}); err != nil {
					t.Error(err)
				}
			}
		},
	})
	defer svc.Close()

	if svc.Shards() != 4 {
		t.Fatalf("Shards = %d", svc.Shards())
	}
	if v := svc.Call(xability.NewRequest("put", "k1")); v != "ok:k1" {
		t.Fatalf("Call = %q", v)
	}

	var batch []xability.Request
	for _, k := range []string{"k2", "k3", "k4", "k5", "k6", "k7"} {
		batch = append(batch, xability.NewRequest("put", xability.Value(k)))
	}
	clk := svc.Clock()
	clk.Enter()
	// A correlated crash of every group's replica 2 mid-batch: the
	// remaining majorities keep every shard serving.
	svc.Apply(xability.NewPlan().CrashAt(time.Millisecond, 2))
	replies, ok := svc.CallAll(batch)
	clk.Exit()
	if !ok {
		t.Fatalf("CallAll left requests unanswered: %v", replies)
	}
	for i, v := range replies {
		if v != xability.Value("ok:"+batch[i].Input) {
			t.Errorf("reply %d = %q", i, v)
		}
	}

	rep := svc.Verify(reg)
	if !rep.OK() || !rep.XAble() {
		t.Fatalf("merged verification failed: %+v", rep)
	}
	if len(rep.Shards) != 4 {
		t.Errorf("per-shard reports = %d", len(rep.Shards))
	}
	// Routing is a pure function of the key: ShardOf agrees with where
	// history shows up.
	owner := svc.ShardOf(xability.NewRequest("put", "k1"))
	if h := svc.History(owner); len(h) == 0 {
		t.Errorf("owner shard %d has an empty history", owner)
	}
}
