package reduce

import (
	"fmt"

	"xability/internal/action"
	"xability/internal/event"
)

// TraceStep records one rewrite in a normalization trace, for human
// consumption (cmd/xcheck --trace).
type TraceStep struct {
	Rule   Rule
	Desc   string
	Before event.History
	After  event.History
}

// Normalizer applies the reduction rules of Figure 4 with a deterministic
// greedy strategy. The zero value is not usable; construct with New.
type Normalizer struct {
	reg *action.Registry

	// Trace, when non-nil, accumulates the rewrites performed.
	Trace *[]TraceStep

	// expected maps a start-event key to the number of executions of that
	// (action, input) pair the reduction target contains. dedupOnce stops
	// absorbing duplicates at this count, so that a request sequence that
	// legitimately invokes the same idempotent action on the same input
	// twice is not over-reduced. Keys default to 1.
	expected map[string]int
}

// New returns a Normalizer over the given action vocabulary.
func New(reg *action.Registry) *Normalizer {
	return &Normalizer{reg: reg}
}

// Toward declares the reduction target: duplicate absorption preserves as
// many executions of each (action, input) pair as specs contain.
func (n *Normalizer) Toward(specs []TargetSpec) *Normalizer {
	n.expected = make(map[string]int)
	for _, t := range specs {
		if t.Undoable {
			continue // tagged per request/round, never collides
		}
		k := event.S(t.Action, t.Input).Key()
		n.expected[k]++
	}
	return n
}

func (n *Normalizer) expectedCount(s event.Event) int {
	if n.expected == nil {
		return 1
	}
	if c, ok := n.expected[s.Key()]; ok {
		return c
	}
	return 1
}

func (n *Normalizer) record(rule Rule, desc string, before, after event.History) {
	if n.Trace != nil {
		*n.Trace = append(*n.Trace, TraceStep{Rule: rule, Desc: desc, Before: before, After: after})
	}
}

// Normalize reduces h to a canonical normal form by applying, until global
// fixpoint:
//
//  1. rules 18/20 with a non-empty ?-part — absorb duplicate attempts of
//     idempotent, cancel, and commit actions (pair absorption into the
//     nearest surviving pair, dangler absorption for attempts that never
//     completed);
//  2. rule 19 — remove cancelled attempts and gratuitous cancel pairs,
//     leftmost first;
//  3. rules 18/20 in their Λ form — compact every surviving
//     idempotent/cancel/commit pair to be adjacent at its completion
//     position, pulling interleaved junk in front of the pair.
//
// Step 3 gives the normal form its canonical shape: each reducible pair sits
// contiguously, ordered by completion; events of undoable actions (which no
// rule may reorder) stay where the observer saw them. A history is x-able
// w.r.t. a target exactly when its normal form *is* a failure-free history
// of the target — which MatchTarget then decides structurally.
//
// The strategy is sound by construction (every rewrite is a legal rule
// instance); completeness against the exhaustive engine is established by
// TestGreedyAgreesWithSearch on randomized histories.
func (n *Normalizer) Normalize(h event.History) event.History {
	h = h.Clone()
	// The loop terminates: steps 1–2 strictly remove events; step 3
	// strictly decreases the total pair spread and is itself a fixpoint
	// computation; an outer bound guards against pathological interaction.
	for iter := 0; iter <= len(h)+2; iter++ {
		changed := false
		// Duplicates first: dangling retry starts must be absorbed into a
		// surviving pair before rule 19 consumes the cancel pairs they
		// depend on.
		for {
			h2, ok := n.dedupOnce(h)
			if !ok {
				break
			}
			h, changed = h2, true
		}
		for {
			h2, ok := n.cancelOnce(h)
			if !ok {
				break
			}
			h, changed = h2, true
		}
		h = n.compact(h)
		if !changed {
			break
		}
	}
	return h
}

// cancelOnce applies rule 19 once, choosing the leftmost cancelled attempt;
// failing that, the leftmost gratuitous cancel pair. Reports whether a
// rewrite happened.
func (n *Normalizer) cancelOnce(h event.History) (event.History, bool) {
	// Pass 1: attempts with a matching cancel pair.
	for i, e := range h {
		if e.Type != event.Start || !n.reg.IsUndoable(e.Action) {
			continue
		}
		au, iv := e.Action, e.Value
		if h[:i].Contains(au, iv) {
			continue // rule 19 requires (aᵘ,iv) ∉ h1: only the first attempt
		}
		cancelName, commitName := action.Cancel(au), action.Commit(au)
		// Find the first cancel pair after the attempt.
		m := -1
		for x := i + 1; x < len(h); x++ {
			if h[x].Equal(event.S(cancelName, iv)) {
				m = x
				break
			}
		}
		if m < 0 {
			continue
		}
		l := -1
		for x := m + 1; x < len(h); x++ {
			if h[x].Equal(event.C(cancelName, action.Nil)) {
				l = x
				break
			}
		}
		if l < 0 {
			continue
		}
		remove := rm(i, m, l)
		// Absorb the attempt's completion, if it completed (free ov).
		for j := i + 1; j < l; j++ {
			if h[j].Type == event.Complete && h[j].Action == au {
				remove = rm(i, m, l, j)
				break
			}
		}
		// (aᶜ,iv) ∉ h′: the junk must not contain the commit's start.
		clean := true
		for x := i; x <= l; x++ {
			if !remove.has(x) && h[x].Type == event.Start && h[x].Action == commitName && h[x].Value == iv {
				clean = false
				break
			}
		}
		if !clean {
			continue
		}
		out := splice(h, i, l, remove)
		n.record(Rule19, fmt.Sprintf("cancel attempt of (%s, %s)", au, action.Display(iv)), h, out)
		return out, true
	}
	// Pass 2: gratuitous cancel pairs (no prior attempt anywhere).
	for m, e := range h {
		if e.Type != event.Start {
			continue
		}
		au, kind := action.Base(e.Action)
		if kind != action.KindCancel || !n.reg.IsUndoable(au) {
			continue
		}
		iv := e.Value
		if h[:m].Contains(au, iv) {
			continue
		}
		// The window may not contain an attempt either: with a minimal
		// window [m..l] an attempt between the pair would be junk, which
		// rule 19 permits — but removing the only cancel of a live attempt
		// is a reduction dead end, so the greedy strategy declines.
		l := -1
		cancelName := e.Action
		for x := m + 1; x < len(h); x++ {
			if h[x].Equal(event.C(cancelName, action.Nil)) {
				l = x
				break
			}
			if h[x].Type == event.Start && h[x].Action == au && h[x].Value == iv {
				break
			}
		}
		if l < 0 {
			continue
		}
		commitName := action.Commit(au)
		remove := rm(m, l)
		clean := true
		for x := m; x <= l; x++ {
			if !remove.has(x) && h[x].Type == event.Start && h[x].Action == commitName && h[x].Value == iv {
				clean = false
				break
			}
		}
		if !clean {
			continue
		}
		out := splice(h, m, l, remove)
		n.record(Rule19, fmt.Sprintf("remove gratuitous cancel of (%s, %s)", au, action.Display(iv)), h, out)
		return out, true
	}
	return h, false
}

// dedupOnce applies rule 18 (idempotent/cancel actions) or rule 20 (commit
// actions) once with a non-empty ?-part, absorbing one duplicate execution
// of the leftmost over-represented (action, input) group. Two absorption
// shapes, tried in order:
//
//   - pair absorption: the attempt completed; absorb its start and a
//     completion with the success pair's output into the *nearest* later
//     pair. Using the nearest pair (not the last completion) keeps the
//     remaining pairs intact — pairing with the last completion would
//     orphan the completions in between, a reduction dead end.
//   - dangler absorption: the attempt never completed (more starts than
//     completions in the group); absorb the start alone into the next
//     available pair. Only legal when starts exceed completions, otherwise
//     it manufactures an orphan completion.
//
// Cancel-action groups only ever use dangler absorption: their complete
// pairs are left for rule 19 to consume (one pair per cancelled attempt);
// surplus pairs fall to the gratuitous-cancel pass afterwards.
//
// Round-tagged executions of undoable actions join rule 18 through the §5.2
// idempotence lifting (replayApplies): a recovered replica that resumes its
// round re-invokes the same tagged transaction, so its duplicate execution
// pair absorbs like any idempotent retry. Their completions bind by
// attribution annotation (replayBinds), never across tags.
func (n *Normalizer) dedupOnce(h event.History) (event.History, bool) {
	for i, e := range h {
		if e.Type != event.Start {
			continue
		}
		a, iv := e.Action, e.Value
		base, kind := action.Base(a)
		isCommit := kind == action.KindCommit && n.reg.IsUndoable(base)
		isReplay := !isCommit && !rule18Applies(n.reg, a) && replayApplies(n.reg, a, iv)
		if !rule18Applies(n.reg, a) && !isCommit && !isReplay {
			continue
		}
		if i > 0 && h[:i].Contains(a, iv) {
			continue // only the group's first start anchors absorption
		}
		starts := h.Starts(a, iv)
		if starts <= n.expectedCount(e) {
			continue
		}
		// Completions of the group. Tagged undoable executions (the §5.2
		// replay lifting) only count completions attributable to their own
		// tag, so a sibling round's completion neither inflates the dangler
		// guard nor gets stolen as an absorption target.
		completions := 0
		for _, x := range h {
			if x.Type == event.Complete && x.Action == a && (!isReplay || replayBinds(x, iv)) {
				completions++
			}
		}

		rule := Rule18
		if isCommit {
			rule = Rule20
		}
		commitClean := func(ws, we int, remove removeSet) bool {
			if !isCommit {
				return true
			}
			for x := ws; x <= we; x++ {
				if !remove.has(x) && h[x].Type == event.Start && h[x].Action == base && h[x].Value == iv {
					return false
				}
			}
			return true
		}

		// Pair absorption: attempt (i, j) into the nearest pair (k, l).
		if kind != action.KindCancel && completions >= 2 {
			for j := i + 1; j < len(h); j++ {
				if h[j].Type != event.Complete || h[j].Action != a {
					continue
				}
				if isReplay && !replayBinds(h[j], iv) {
					continue
				}
				ov := h[j].Value
				for l := j + 1; l < len(h); l++ {
					if h[l].Type != event.Complete || h[l].Action != a || h[l].Value != ov {
						continue
					}
					if isReplay && !replayBinds(h[l], iv) {
						continue
					}
					for k := i + 1; k < l; k++ {
						if k == j || !h[k].Equal(event.S(a, iv)) {
							continue
						}
						remove := rm(i, j, k, l)
						if !commitClean(i, l, remove) {
							continue
						}
						out := spliceAbsorb(h, i, l, remove, a, iv, ov, h[l].Annotation)
						n.record(rule, fmt.Sprintf("absorb duplicate pair of (%s, %s)", a, action.Display(iv)), h, out)
						return out, true
					}
				}
			}
		}

		// Dangler absorption: the start at i alone, into the next pair.
		if starts > completions {
			for k := i + 1; k < len(h); k++ {
				if !h[k].Equal(event.S(a, iv)) {
					continue
				}
				for l := k + 1; l < len(h); l++ {
					if h[l].Type != event.Complete || h[l].Action != a {
						continue
					}
					if isReplay && !replayBinds(h[l], iv) {
						continue
					}
					remove := rm(i, k, l)
					if !commitClean(i, l, remove) {
						break
					}
					out := spliceAbsorb(h, i, l, remove, a, iv, h[l].Value, h[l].Annotation)
					n.record(rule, fmt.Sprintf("absorb dangling start of (%s, %s)", a, action.Display(iv)), h, out)
					return out, true
				}
				break // nearest following start only
			}
		}
	}
	return h, false
}

// compact applies the Λ form of rules 18/20 until fixpoint: every
// idempotent, cancel, or commit pair becomes adjacent at the position of
// its completion event, with the junk that separated the pair moved in
// front of it. Pairs of undoable actions are never moved (no rule permits
// it). The result is the canonical interleaving-free shape that MatchTarget
// inspects.
func (n *Normalizer) compact(h event.History) event.History {
	for {
		changed := false
		for l := 0; l < len(h); l++ {
			c := h[l]
			if c.Type != event.Complete {
				continue
			}
			a := c.Action
			base, kind := action.Base(a)
			isCommit := kind == action.KindCommit && n.reg.IsUndoable(base)
			if !rule18Applies(n.reg, a) && !isCommit {
				continue
			}
			// Nearest preceding start of a.
			k := -1
			for x := l - 1; x >= 0; x-- {
				if h[x].Type == event.Start && h[x].Action == a {
					k = x
					break
				}
			}
			if k < 0 || k == l-1 {
				continue // no pair, or already adjacent
			}
			iv, ov := h[k].Value, c.Value
			if isCommit {
				clean := true
				for x := k + 1; x < l; x++ {
					if h[x].Type == event.Start && h[x].Action == base && h[x].Value == iv {
						clean = false
						break
					}
				}
				if !clean {
					continue
				}
			}
			remove := rm(k, l)
			out := spliceAbsorb(h, k, l, remove, a, iv, ov, c.Annotation)
			rule := Rule18
			if isCommit {
				rule = Rule20
			}
			n.record(rule, fmt.Sprintf("compact pair of (%s, %s)", a, action.Display(iv)), h, out)
			h = out
			changed = true
		}
		if !changed {
			return h
		}
	}
}

// splice removes the events marked in remove from the window [ws..we],
// keeping everything else in place.
func splice(h event.History, ws, we int, remove removeSet) event.History {
	out := make(event.History, 0, len(h)-len(remove))
	out = append(out, h[:ws]...)
	ri := 0
	for x := ws; x <= we; x++ {
		if ri < len(remove) && remove[ri] == x {
			ri++
			continue
		}
		out = append(out, h[x])
	}
	out = append(out, h[we+1:]...)
	return out
}
