package reduce

import (
	"fmt"
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

// Ablation benchmarks for the design choices DESIGN.md §2 records: the
// greedy engine vs the exhaustive search, and strict whole-history
// reduction vs the per-request projection.

// BenchmarkAblationGreedyVsSearch compares the two engines on the same
// small history (the largest class where the exhaustive engine is usable).
func BenchmarkAblationGreedyVsSearch(b *testing.B) {
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	hist := event.History{
		event.S("read", "k"), event.S("read", "k"), event.S("read", "k"),
		event.C("read", "v"), event.C("read", "v"), event.C("read", "v"),
	}
	spec, _ := SpecFor(reg, action.NewRequest("read", "k"))
	specs := []TargetSpec{spec}
	accept := func(c event.History) bool {
		_, ok := MatchTarget(c, specs)
		return ok
	}

	b.Run("greedy", func(b *testing.B) {
		n := New(reg)
		for i := 0; i < b.N; i++ {
			saved := n.expected
			n.Toward(specs)
			if _, ok := MatchTarget(n.Normalize(hist), specs); !ok {
				b.Fatal("greedy failed")
			}
			n.expected = saved
		}
	})
	b.Run("search", func(b *testing.B) {
		n := New(reg)
		for i := 0; i < b.N; i++ {
			if res := n.Search(hist, accept, 0); !res.Found {
				b.Fatal("search failed")
			}
		}
	})
}

// BenchmarkAblationStrictVsProjected compares R3's two forms on a clean
// multi-request history where both succeed.
func BenchmarkAblationStrictVsProjected(b *testing.B) {
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	var hist event.History
	var reqs []action.Request
	var specs []TargetSpec
	for i := 0; i < 32; i++ {
		req := action.NewRequest("read", action.Value(fmt.Sprintf("k%d", i))).WithID(fmt.Sprintf("q%d", i))
		reqs = append(reqs, req)
		spec, _ := SpecFor(reg, req)
		specs = append(specs, spec)
		iv := req.EffectiveInput()
		hist = append(hist, event.S("read", iv), event.S("read", iv), event.C("read", "v"), event.C("read", "v"))
	}

	b.Run("strict", func(b *testing.B) {
		n := New(reg)
		for i := 0; i < b.N; i++ {
			if ok, _ := n.XAbleTo(hist, specs); !ok {
				b.Fatal("strict failed")
			}
		}
	})
	b.Run("projected", func(b *testing.B) {
		n := New(reg)
		for i := 0; i < b.N; i++ {
			if ok, _ := n.XAbleProjected(hist, reqs); !ok {
				b.Fatal("projected failed")
			}
		}
	})
}

// TestAblationSearchStateGrowth quantifies why the exhaustive engine is
// the oracle and not the default: reachable states explode with history
// length.
func TestAblationSearchStateGrowth(t *testing.T) {
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	n := New(reg)
	prev := 0
	for _, pairs := range []int{1, 2, 3} {
		var hist event.History
		for i := 0; i < pairs; i++ {
			hist = append(hist, event.S("read", "k"), event.C("read", "v"))
		}
		res := n.Search(hist, func(event.History) bool { return false }, 0)
		if !res.Exhausted {
			t.Fatalf("budget hit at %d pairs", pairs)
		}
		if res.States < prev {
			t.Errorf("state count shrank: %d pairs -> %d states (prev %d)", pairs, res.States, prev)
		}
		prev = res.States
		t.Logf("%d duplicate pairs: %d reachable states", pairs, res.States)
	}
}
