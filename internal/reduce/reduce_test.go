package reduce

import (
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

// testRegistry builds the vocabulary used across the reduce tests:
// idempotent "read" and "notify", undoable "debit" and "credit".
func testRegistry(t testing.TB) *action.Registry {
	t.Helper()
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	reg.MustRegister("notify", action.KindIdempotent)
	reg.MustRegister("debit", action.KindUndoable)
	reg.MustRegister("credit", action.KindUndoable)
	return reg
}

func h(events ...event.Event) event.History { return event.History(events) }

func TestEventsOfIdempotent(t *testing.T) {
	reg := testRegistry(t)
	got, err := EventsOf(reg, action.NewRequest("read", "k"), "v")
	if err != nil {
		t.Fatal(err)
	}
	want := h(event.S("read", "k"), event.C("read", "v"))
	if !got.Equal(want) {
		t.Errorf("EventsOf = %v, want %v", got, want)
	}
}

func TestEventsOfUndoable(t *testing.T) {
	reg := testRegistry(t)
	req := action.NewRequest("debit", "a=1").WithID("q").WithRound(2)
	got, err := EventsOf(reg, req, "ok")
	if err != nil {
		t.Fatal(err)
	}
	iv := req.EffectiveInput()
	com := req.Commit()
	want := h(
		event.S("debit", iv),
		event.C("debit", "ok"),
		event.S(com.Action, com.EffectiveInput()),
		event.C(com.Action, action.Nil),
	)
	if !got.Equal(want) {
		t.Errorf("EventsOf = %v, want %v", got, want)
	}
}

func TestEventsOfUnknownAction(t *testing.T) {
	reg := testRegistry(t)
	if _, err := EventsOf(reg, action.NewRequest("nope", "x"), "v"); err == nil {
		t.Error("expected error for unregistered action")
	}
}

func TestMatchTargetIdempotent(t *testing.T) {
	reg := testRegistry(t)
	spec, err := SpecFor(reg, action.NewRequest("read", "k"))
	if err != nil {
		t.Fatal(err)
	}
	outs, ok := MatchTarget(h(event.S("read", "k"), event.C("read", "v")), []TargetSpec{spec})
	if !ok || len(outs) != 1 || outs[0] != "v" {
		t.Errorf("MatchTarget = (%v, %v)", outs, ok)
	}
	// Excess events fail.
	if _, ok := MatchTarget(h(event.S("read", "k"), event.C("read", "v"), event.S("read", "k")), []TargetSpec{spec}); ok {
		t.Error("trailing events must fail the match")
	}
	// Pinned output.
	pin := spec.WithOutput("w")
	if _, ok := MatchTarget(h(event.S("read", "k"), event.C("read", "v")), []TargetSpec{pin}); ok {
		t.Error("pinned output w must reject v")
	}
}

func TestMatchTargetUndoableAnyRound(t *testing.T) {
	reg := testRegistry(t)
	req := action.NewRequest("debit", "a=1").WithID("q")
	spec, err := SpecFor(reg, req)
	if err != nil {
		t.Fatal(err)
	}
	// The protocol may commit in any round; round 3 of request q matches.
	r3 := req.WithRound(3)
	ff, _ := EventsOf(reg, r3, "ok")
	outs, ok := MatchTarget(ff, []TargetSpec{spec})
	if !ok || outs[0] != "ok" {
		t.Errorf("round-3 commit should match AnyRound spec; got (%v, %v)", outs, ok)
	}
	// A different request ID must not match.
	other := action.NewRequest("debit", "a=1").WithID("other").WithRound(1)
	ff2, _ := EventsOf(reg, other, "ok")
	if _, ok := MatchTarget(ff2, []TargetSpec{spec}); ok {
		t.Error("different request ID must not match")
	}
	// Base and commit rounds must agree.
	mixed := h(ff[0], ff[1], event.S(action.Commit("debit"), req.WithRound(4).Commit().EffectiveInput()), event.C(action.Commit("debit"), action.Nil))
	if _, ok := MatchTarget(mixed, []TargetSpec{spec}); ok {
		t.Error("commit of a different round must not match")
	}
}

func TestMatchTargetSequence(t *testing.T) {
	reg := testRegistry(t)
	r1 := action.NewRequest("read", "k")
	r2 := action.NewRequest("debit", "a").WithID("q").WithRound(1)
	s1, _ := SpecFor(reg, action.NewRequest("read", "k"))
	s2, _ := SpecFor(reg, action.NewRequest("debit", "a").WithID("q"))
	ff1, _ := EventsOf(reg, r1, "v1")
	ff2, _ := EventsOf(reg, r2, "v2")
	outs, ok := MatchTarget(ff1.Concat(ff2), []TargetSpec{s1, s2})
	if !ok || outs[0] != "v1" || outs[1] != "v2" {
		t.Errorf("sequence match = (%v, %v)", outs, ok)
	}
	// Order matters.
	if _, ok := MatchTarget(ff2.Concat(ff1), []TargetSpec{s1, s2}); ok {
		t.Error("reordered sequence must not match")
	}
}

// --- Rule 18: idempotent absorption ---------------------------------------

func TestRule18AbsorbsFailedAttempt(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// Attempt started, crashed; retried successfully.
	hist := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"))
	ok, ov := n.XAble(hist, action.NewRequest("read", "k"))
	if !ok || ov != "v" {
		t.Errorf("XAble = (%v, %q), want (true, v)", ok, ov)
	}
}

func TestRule18AbsorbsCompletedAttempt(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// Two complete executions with the same output (idempotent actions
	// resolve their non-determinism at first completion).
	hist := h(event.S("read", "k"), event.C("read", "v"), event.S("read", "k"), event.C("read", "v"))
	ok, ov := n.XAble(hist, action.NewRequest("read", "k"))
	if !ok || ov != "v" {
		t.Errorf("XAble = (%v, %q), want (true, v)", ok, ov)
	}
}

func TestRule18OverlappingAttempts(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// S S C C: the attempts overlap (rule 11 interleaving).
	hist := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"), event.C("read", "v"))
	ok, _ := n.XAble(hist, action.NewRequest("read", "k"))
	if !ok {
		t.Error("overlapping duplicate executions should be x-able")
	}
}

func TestRule18ManyAttempts(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	var hist event.History
	for i := 0; i < 5; i++ {
		hist = append(hist, event.S("read", "k"))
	}
	for i := 0; i < 5; i++ {
		hist = append(hist, event.C("read", "v"))
	}
	ok, _ := n.XAble(hist, action.NewRequest("read", "k"))
	if !ok {
		t.Error("five overlapping executions should reduce to one")
	}
}

func TestRule18MismatchedOutputsNotXAble(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// Two completed executions with different outputs: rule 18 shares ov
	// between the attempt and the success, so this cannot reduce.
	hist := h(event.S("read", "k"), event.C("read", "v1"), event.S("read", "k"), event.C("read", "v2"))
	ok, _ := n.XAble(hist, action.NewRequest("read", "k"))
	if ok {
		t.Error("diverging completion values must not be x-able")
	}
}

func TestStartOnlyNotXAble(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(event.S("read", "k"))
	if ok, _ := n.XAble(hist, action.NewRequest("read", "k")); ok {
		t.Error("an execution that never completed is not x-able")
	}
	if ok, _ := n.XAble(event.Lambda, action.NewRequest("read", "k")); ok {
		t.Error("the empty history is not x-able for a request")
	}
}

func TestRule18DoesNotCrossInputs(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(event.S("read", "k1"), event.S("read", "k2"), event.C("read", "v"))
	if ok, _ := n.XAble(hist, action.NewRequest("read", "k2")); ok {
		t.Error("the dangling start on k1 must survive reduction")
	}
}

// --- Rule 19: cancellation -------------------------------------------------

func undoableEvents(req action.Request, ov action.Value) (s, c event.Event) {
	return event.S(req.Action, req.EffectiveInput()), event.C(req.Action, ov)
}

func cancelPair(req action.Request) (s, c event.Event) {
	can := req.Cancel()
	return event.S(can.Action, can.EffectiveInput()), event.C(can.Action, action.Nil)
}

func commitPair(req action.Request) (s, c event.Event) {
	com := req.Commit()
	return event.S(com.Action, com.EffectiveInput()), event.C(com.Action, action.Nil)
}

func TestRule19CancelledAttemptDisappears(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "ok1")
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "ok2")

	// Round 1 executed, was cancelled; round 2 executed and committed.
	hist := h(s1, c1, cs1, cc1).Concat(ff2)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "ok2" {
		t.Errorf("XAbleTo = (%v, %v), want (true, [ok2])", ok, outs)
	}
}

func TestRule19CrashedAttemptDisappears(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, _ := undoableEvents(r1, "")
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "ok2")

	// Round 1 started but never completed; the cleaner cancelled it.
	hist := h(s1, cs1, cc1).Concat(ff2)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Error("crashed-then-cancelled attempt should reduce away")
	}
}

func TestRule19GratuitousCancel(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	// The cleaner cancelled round 1 before the owner ever started it.
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "ok2")
	hist := h(cs1, cc1).Concat(ff2)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Error("gratuitous cancel pair should reduce away")
	}
}

func TestRule19RepeatedCancelAndRetry(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")

	var hist event.History
	// Rounds 1..3 each execute and get cancelled; round 4 commits.
	for round := 1; round <= 3; round++ {
		r := base.WithRound(round)
		s, c := undoableEvents(r, action.Value('a'+rune(round)))
		cs, cc := cancelPair(r)
		hist = hist.Concat(h(s, c, cs, cc))
	}
	ff, _ := EventsOf(reg, base.WithRound(4), "final")
	hist = hist.Concat(ff)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "final" {
		t.Errorf("alternating execute/cancel must reduce; got (%v, %v)", ok, outs)
	}
}

func TestRule19DuplicateCancelsCollapse(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "ok1")
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "ok2")
	// Owner and cleaner both cancel round 1 (cancel actions are idempotent;
	// the duplicate pair collapses under rule 18 before rule 19 fires).
	hist := h(s1, c1, cs1, cc1, cs1, cc1).Concat(ff2)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Error("duplicate cancel pairs should collapse and then cancel the attempt")
	}
}

func TestRule19DoesNotCancelCommittedAction(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "ok")
	ms1, mc1 := commitPair(r1)
	cs1, cc1 := cancelPair(r1)
	// Commit interleaved between the action and a (bogus) cancel: the
	// (aᶜ,iv) ∉ h′ constraint forbids removing the attempt, so the bogus
	// cancel pair keeps the history from reducing to the committed form.
	hist := h(s1, c1, ms1, mc1, cs1, cc1)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); ok {
		t.Error("a cancel after commit must not erase the committed action")
	}
}

func TestRule19CancelDoesNotCrossRounds(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	// Round 2 executed and committed; a round-1 cancel pair floats around.
	// §5.4: a cancellation for round n cannot cancel round n+1.
	s2, c2 := undoableEvents(r2, "ok")
	ms2, mc2 := commitPair(r2)
	cs1, cc1 := cancelPair(r1)
	hist := h(s2, cs1, cc1, c2, ms2, mc2)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "ok" {
		t.Errorf("round-1 cancel must not cancel round 2; got (%v, %v)", ok, outs)
	}
}

// --- Rule 20: commit idempotence --------------------------------------------

func TestRule20DuplicateCommitsCollapse(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "ok")
	ms1, mc1 := commitPair(r1)
	// Owner and cleaner both commit.
	hist := h(s1, c1, ms1, mc1, ms1, mc1)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "ok" {
		t.Errorf("duplicate commits should collapse; got (%v, %v)", ok, outs)
	}
}

func TestRule20OverlappingCommits(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "ok")
	ms1, mc1 := commitPair(r1)
	// S C Sc Sc Cc Cc — overlapped commit executions.
	hist := h(s1, c1, ms1, ms1, mc1, mc1)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Error("overlapping duplicate commits should collapse")
	}
}

func TestUncommittedUndoableNotXAble(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a=1").WithID("q")
	r1 := base.WithRound(1)
	s1, c1 := undoableEvents(r1, "ok")
	hist := h(s1, c1)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); ok {
		t.Error("an undoable action without its commit is not x-able")
	}
}

// --- Interleaving across actions --------------------------------------------

func TestInterleavedActionsSequentialize(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// S(read,k1) S(notify,m) C(read,v) C(notify,done) with targets read
	// then notify: the Λ-form of rule 18 untangles the interleaving.
	hist := h(
		event.S("read", "k1"),
		event.S("notify", "m"),
		event.C("read", "v"),
		event.C("notify", "done"),
	)
	sp1, _ := SpecFor(reg, action.NewRequest("read", "k1"))
	sp2, _ := SpecFor(reg, action.NewRequest("notify", "m"))
	ok, outs := n.XAbleTo(hist, []TargetSpec{sp1, sp2})
	if !ok || outs[0] != "v" || outs[1] != "done" {
		t.Errorf("interleaved pairs should sequentialize; got (%v, %v)", ok, outs)
	}
	// The opposite target order is also reachable: completion order is
	// notify-last, but the reduction can compact read at its completion
	// too. Only one of the two orders exists per reduction path; the
	// notify-then-read target requires moving read's pair past notify's
	// completion, which the rules cannot do.
	if ok, _ := n.XAbleTo(hist, []TargetSpec{sp2, sp1}); ok {
		t.Error("reduction cannot reorder pairs against completion order")
	}
}

func TestDuplicatesWithJunkInsideWindow(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// A failed attempt of read, then interleaved junk from notify inside
	// the success span.
	hist := h(
		event.S("read", "k"),
		event.S("read", "k"),
		event.S("notify", "m"),
		event.C("read", "v"),
		event.C("notify", "done"),
	)
	sp1, _ := SpecFor(reg, action.NewRequest("read", "k"))
	sp2, _ := SpecFor(reg, action.NewRequest("notify", "m"))
	ok, _ := n.XAbleTo(hist, []TargetSpec{sp1, sp2})
	if !ok {
		t.Error("junk inside the success window should not block reduction")
	}
}

func TestSequenceRepeatsSameIdempotentAction(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	// The sequence legitimately reads k twice; reduction must keep both.
	hist := h(
		event.S("read", "k"), event.C("read", "v"),
		event.S("read", "k"), event.C("read", "v"),
	)
	sp, _ := SpecFor(reg, action.NewRequest("read", "k"))
	ok, outs := n.XAbleTo(hist, []TargetSpec{sp, sp})
	if !ok || len(outs) != 2 {
		t.Errorf("two expected executions must both survive; got (%v, %v)", ok, outs)
	}
	// And with a retry of the second read.
	hist2 := h(
		event.S("read", "k"), event.C("read", "v"),
		event.S("read", "k"), event.S("read", "k"), event.C("read", "v"),
	)
	if ok, _ := n.XAbleTo(hist2, []TargetSpec{sp, sp}); !ok {
		t.Error("retry of the second execution should absorb, keeping two")
	}
}

// --- Signatures --------------------------------------------------------------

func TestSignatureSingleValue(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"))
	sigs := n.Signature(hist, action.NewRequest("read", "k"))
	if len(sigs) != 1 || sigs[0] != "v" {
		t.Errorf("Signature = %v, want [v]", sigs)
	}
}

func TestSignatureEmptyForIrreducible(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(event.S("read", "k"), event.C("read", "v1"), event.S("read", "k"), event.C("read", "v2"))
	sigs := n.Signature(hist, action.NewRequest("read", "k"))
	if len(sigs) != 0 {
		t.Errorf("diverging outputs admit no signature; got %v", sigs)
	}
}

func TestSignatureUndoable(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	ff, _ := EventsOf(reg, base.WithRound(1), "ok")
	sigs := n.Signature(ff, base)
	if len(sigs) != 1 || sigs[0] != "ok" {
		t.Errorf("Signature = %v, want [ok]", sigs)
	}
	// Without the commit there is no signature (eq. 24 requires the full
	// failure-free history including the commit pair).
	sigs = n.Signature(ff[:2], base)
	if len(sigs) != 0 {
		t.Errorf("uncommitted action has no signature; got %v", sigs)
	}
}

// --- Normal form shape -------------------------------------------------------

func TestNormalizeIsIdempotentOperation(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(
		event.S("read", "k"), event.S("read", "k"),
		event.S("notify", "m"), event.C("read", "v"),
		event.C("notify", "done"),
	)
	once := n.Normalize(hist)
	twice := n.Normalize(once)
	if !once.Equal(twice) {
		t.Errorf("Normalize not idempotent:\n once=%v\ntwice=%v", once, twice)
	}
}

func TestNormalizeNeverGrowsHistory(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(
		event.S("read", "k"), event.C("read", "v"),
		event.S("read", "k"), event.C("read", "v"),
		event.S("notify", "m"), event.C("notify", "x"),
	)
	norm := n.Normalize(hist)
	if len(norm) > len(hist) {
		t.Errorf("normal form longer than input: %d > %d", len(norm), len(hist))
	}
}

func TestNormalizeTraceRecords(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	var trace []TraceStep
	n.Trace = &trace
	hist := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"))
	n.Normalize(hist)
	if len(trace) == 0 {
		t.Fatal("expected trace steps")
	}
	if trace[0].Rule != Rule18 {
		t.Errorf("first step rule = %v, want rule 18", trace[0].Rule)
	}
	if len(trace[0].After) >= len(trace[0].Before) {
		t.Error("dedup step should shrink the history")
	}
}

func TestRuleString(t *testing.T) {
	if Rule18.String() != "rule 18 (idempotent)" {
		t.Error(Rule18.String())
	}
	if Rule19.String() != "rule 19 (cancellation)" {
		t.Error(Rule19.String())
	}
	if Rule20.String() != "rule 20 (commit)" {
		t.Error(Rule20.String())
	}
	if Rule(7).String() != "rule 7" {
		t.Error(Rule(7).String())
	}
}
