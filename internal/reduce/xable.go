package reduce

import (
	"sort"

	"xability/internal/action"
	"xability/internal/event"
)

// XAbleTo implements the sequence form of the x-able predicate used by
// requirement R3 (§4): it reports whether h reduces under ⇒ to a
// failure-free history of the request sequence described by specs. On
// success it also returns the output value of each request's surviving
// execution.
//
// The decision uses the greedy Normalizer; for small histories where greedy
// normalization fails, the exhaustive engine is consulted before declaring
// the history not x-able, so the combined answer is exact whenever the
// search completes within budget.
func (n *Normalizer) XAbleTo(h event.History, specs []TargetSpec) (bool, []action.Value) {
	saved := n.expected
	n.Toward(specs)
	norm := n.Normalize(h)
	n.expected = saved
	if outs, ok := MatchTarget(norm, specs); ok {
		return true, outs
	}
	// Greedy is incomplete in principle; fall back to the oracle on
	// histories small enough to search.
	if len(h) <= 14 {
		var outs []action.Value
		res := n.Search(h, func(c event.History) bool {
			o, ok := MatchTarget(c, specs)
			if ok {
				outs = o
			}
			return ok
		}, 0)
		if res.Found {
			return true, outs
		}
	}
	return false, nil
}

// XAble implements the single-action x-able predicate of eq. 23:
// x-able(a,iv)(h) holds iff h reduces to some member of FailureFree(a,iv).
// On success it returns the output value of the surviving execution.
func (n *Normalizer) XAble(h event.History, req action.Request) (bool, action.Value) {
	spec, err := SpecFor(n.reg, req)
	if err != nil {
		return false, ""
	}
	ok, outs := n.XAbleTo(h, []TargetSpec{spec})
	if !ok {
		return false, ""
	}
	return true, outs[0]
}

// Signature implements the history signature of §3.3 (eqs. 24–25): the set
// of output values ov such that (a, iv, ov) ∈ signature(h), i.e. such that h
// reduces to the complete failure-free history of the request with output
// ov. Because of non-determinism and retry, a history can have several
// signatures; the result is sorted for determinism.
func (n *Normalizer) Signature(h event.History, req action.Request) []action.Value {
	spec, err := SpecFor(n.reg, req)
	if err != nil {
		return nil
	}
	// Candidate outputs are the completion values of the action in h.
	seen := make(map[action.Value]bool)
	var out []action.Value
	for _, e := range h {
		if e.Type != event.Complete || e.Action != req.Action || seen[e.Value] {
			continue
		}
		seen[e.Value] = true
		if ok, _ := n.XAbleTo(h, []TargetSpec{spec.WithOutput(e.Value)}); ok {
			out = append(out, e.Value)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// XAbleProjected is the per-request relaxation of R3 used for multi-request
// runs (see DESIGN.md): it projects h onto each request's action events
// (base action plus its cancel and commit actions) and requires every
// projection to reduce to that request's failure-free history. Cross-request
// interleavings — in particular completion events of duplicate executions
// that straggle past the next request's events, which no rule of Figure 4
// can reorder across an interleaved pair — are thereby treated as benign.
// Reduction steps on a projection lift to reduction steps on the full
// history (window anchors and junk constraints only mention same-action
// events), so each projection's verdict is a sound per-request exactly-once
// statement.
//
// It also checks sequencing: the surviving execution of request i must
// start only after the surviving execution of request i-1 completed, which
// is the observable residue of "the state resulting from R1 is used as a
// context for executing R2" (§4).
func (n *Normalizer) XAbleProjected(h event.History, reqs []action.Request) (bool, []action.Value) {
	return n.xableProjected(h, reqs, true)
}

// XAbleConcurrent is the projection relaxation for concurrently submitted
// requests: each request's projected events must still reduce to its
// sequential failure-free form (exactly-once per request), but no
// inter-request sequencing is required. This is the right obligation for
// open-loop load, where every request is its own single-request client
// session — §4's composition across clients leaves concurrent sessions
// unordered, so "R1's state is the context of R2" never applies between
// them. Requests must carry IDs (open-loop stations always tag), since
// identity is what attributes events when inputs collide across clients.
func (n *Normalizer) XAbleConcurrent(h event.History, reqs []action.Request) (bool, []action.Value) {
	return n.xableProjected(h, reqs, false)
}

func (n *Normalizer) xableProjected(h event.History, reqs []action.Request, sequenced bool) (bool, []action.Value) {
	outs := make([]action.Value, 0, len(reqs))
	prevEnd := -1
	for _, req := range reqs {
		spec, err := SpecFor(n.reg, req)
		if err != nil {
			return false, nil
		}
		names := map[action.Name]bool{
			req.Action:                true,
			action.Cancel(req.Action): true,
			action.Commit(req.Action): true,
		}
		// Project on the request's actions. A completion's value is the
		// output, which does not identify the invocation, so attribution
		// uses the environment's annotation when present (the env stamps
		// every completion with the tagged input it resolved — exact
		// attribution even when executors on different replicas
		// interleave). Unannotated completions — synthetic histories —
		// fall back to the nearest preceding unmatched start of the same
		// action, and are kept iff that start is kept.
		keepValue := func(name action.Name, v action.Value) bool {
			if !names[name] {
				return false
			}
			base, id, _ := action.SplitTag(v)
			if id != "" {
				return id == req.ID
			}
			return base == req.Input
		}
		kept := make([]bool, len(h))
		firstKeptCompletion := -1
		openByAction := make(map[action.Name][]int) // unmatched start indexes
		for i, e := range h {
			switch e.Type {
			case event.Start:
				kept[i] = keepValue(e.Action, e.Value)
				openByAction[e.Action] = append(openByAction[e.Action], i)
			case event.Complete:
				open := openByAction[e.Action]
				if e.Annotation != "" {
					kept[i] = keepValue(e.Action, action.Value(e.Annotation))
					// Unwind the matching start so heuristic attribution
					// of any unannotated completions stays coherent.
					for j := len(open) - 1; j >= 0; j-- {
						if h[open[j]].Value == action.Value(e.Annotation) {
							openByAction[e.Action] = append(open[:j], open[j+1:]...)
							break
						}
					}
				} else if len(open) > 0 {
					s := open[len(open)-1]
					openByAction[e.Action] = open[:len(open)-1]
					kept[i] = kept[s]
				}
				if kept[i] && e.Action == req.Action && firstKeptCompletion < 0 {
					firstKeptCompletion = i
				}
			}
		}
		var proj event.History
		for i, e := range h {
			if kept[i] {
				proj = append(proj, e)
			}
		}
		ok, o := n.XAbleTo(proj, []TargetSpec{spec})
		if !ok {
			return false, nil
		}
		outs = append(outs, o[0])
		// Sequencing: this request's first completion must come after the
		// previous request's first completion — the observable residue of
		// R1's state being the execution context of R2 (§4). Concurrent
		// sessions (XAbleConcurrent) skip this: they are unordered.
		if sequenced && firstKeptCompletion >= 0 && firstKeptCompletion < prevEnd {
			return false, nil
		}
		if firstKeptCompletion >= 0 {
			prevEnd = firstKeptCompletion
		}
	}
	return true, outs
}
