package reduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xability/internal/action"
	"xability/internal/event"
)

// TestGreedyStepsAreLegalRuleInstances is the soundness proof-by-testing
// for the greedy engine: every rewrite Normalize performs must be
// reachable as a single step of the faithful rule enumeration (Steps),
// i.e. greedy ⊆ ⇒. Together with TestGreedyAgreesWithSearch
// (completeness on the target class) this pins the greedy engine to the
// formal relation.
func TestGreedyStepsAreLegalRuleInstances(t *testing.T) {
	reg := testRegistry(t)
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		hist, _ := randomProtocolishHistory(rng, reg)
		if len(hist) > 12 {
			continue
		}
		n := New(reg)
		var trace []TraceStep
		n.Trace = &trace
		n.Normalize(hist)
		for _, step := range trace {
			legal := Steps(reg, step.Before)
			found := false
			want := step.After.Key()
			for _, s := range legal {
				if s.Result.Key() == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("greedy performed an illegal rewrite (%v: %s)\nbefore: %v\nafter:  %v",
					step.Rule, step.Desc, step.Before, step.After)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no rewrites exercised")
	}
	t.Logf("validated %d greedy rewrites against the rule enumeration", checked)
}

// TestNormalizePropertyNeverGrows: reduction shrinks or preserves history
// length on arbitrary protocol-ish inputs.
func TestNormalizePropertyNeverGrows(t *testing.T) {
	reg := testRegistry(t)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		_ = seed
		hist, _ := randomProtocolishHistory(rng, reg)
		n := New(reg)
		return len(n.Normalize(hist)) <= len(hist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNormalizePropertyIdempotent: Normalize is a closure operator on the
// generated class.
func TestNormalizePropertyIdempotent(t *testing.T) {
	reg := testRegistry(t)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		hist, _ := randomProtocolishHistory(rng, reg)
		n := New(reg)
		once := n.Normalize(hist)
		twice := n.Normalize(once)
		if !once.Equal(twice) {
			t.Fatalf("not idempotent:\n h    =%v\n once =%v\n twice=%v", hist, once, twice)
		}
	}
}

// TestNormalizePreservesUndoableEventOrder: no rule moves events of
// undoable actions, so their relative order must survive normalization.
func TestNormalizePreservesUndoableEventOrder(t *testing.T) {
	reg := testRegistry(t)
	base := action.NewRequest("debit", "a").WithID("q").WithRound(1)
	s, c := undoableEvents(base, "v")
	hist := h(
		s,
		event.S("read", "k"),
		c,
		event.C("read", "rv"),
	)
	n := New(reg)
	norm := n.Normalize(hist)
	// The undoable pair must still be in order S…C; the read pair has been
	// compacted somewhere, but cannot have crossed outside its legal
	// window.
	si, ci := -1, -1
	for i, e := range norm {
		if e.Action == "debit" {
			if e.Type == event.Start {
				si = i
			} else {
				ci = i
			}
		}
	}
	if si < 0 || ci < 0 || si > ci {
		t.Fatalf("undoable pair disturbed: %v", norm)
	}
}

// TestStepsEnumerationShapes sanity-checks the step enumerator itself on
// hand-built histories with known step counts.
func TestStepsEnumerationShapes(t *testing.T) {
	reg := testRegistry(t)

	// A single pair admits only Λ-form rewrites (compaction no-ops are
	// deduped by result, and the adjacent pair compacts to itself — which
	// re-emits the same history and is filtered by the result dedup only
	// if identical; window start 0 gives the identical result).
	single := h(event.S("read", "k"), event.C("read", "v"))
	for _, s := range Steps(reg, single) {
		if len(s.Result) != len(single) {
			t.Errorf("single pair should not shrink: %v -> %v", single, s.Result)
		}
	}

	// A dangling start plus a pair: at least one step must remove the
	// dangler.
	dangler := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"))
	found := false
	for _, s := range Steps(reg, dangler) {
		if len(s.Result) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no step absorbs the dangling start: %v", Steps(reg, dangler))
	}

	// Cancelled attempt: rule 19 must appear.
	base := action.NewRequest("debit", "a").WithID("q").WithRound(1)
	s1, c1 := undoableEvents(base, "v")
	cs, cc := cancelPair(base)
	cancelled := h(s1, c1, cs, cc)
	foundR19 := false
	for _, s := range Steps(reg, cancelled) {
		if s.Rule == Rule19 && len(s.Result) == 0 {
			foundR19 = true
		}
	}
	if !foundR19 {
		t.Error("rule 19 step missing for a cancelled attempt")
	}

	// Commit overlap constraint: a commit whose junk contains the
	// committed action's start must not collapse (rule 20 side condition).
	ms, mc := commitPair(base)
	overlapped := h(ms, s1, mc, mc) // S(commit) S(debit) C(commit) C(commit)
	for _, s := range Steps(reg, overlapped) {
		if s.Rule != Rule20 {
			continue
		}
		// Any rule-20 result must not have silently dropped S(debit).
		if !s.Result.Contains(base.Action, base.EffectiveInput()) {
			t.Errorf("rule 20 dropped the committed action's start: %v", s.Result)
		}
	}
}

// TestStepsEmptyAndTrivial covers enumeration edges.
func TestStepsEmptyAndTrivial(t *testing.T) {
	reg := testRegistry(t)
	if steps := Steps(reg, event.Lambda); len(steps) != 0 {
		t.Errorf("Λ admits %d steps, want 0", len(steps))
	}
	if steps := Steps(reg, h(event.S("read", "k"))); len(steps) != 0 {
		t.Errorf("bare start admits %d steps, want 0", len(steps))
	}
	// Unregistered action: no rules apply.
	if steps := Steps(reg, h(event.S("ghost", "x"), event.C("ghost", "y"), event.S("ghost", "x"), event.C("ghost", "y"))); len(steps) != 0 {
		t.Errorf("unregistered action admits %d steps, want 0", len(steps))
	}
}
