package reduce

import (
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

// Regression tests for the §5.2 replay lifting: a replica that crashes after
// completing a round's tagged execution and recovers re-invokes the same
// transaction; the environment replays the recorded result, emitting a
// second identical execution pair. These histories are what the restart
// plane emits; they must reduce — and the shapes the lifting must NOT cover
// (untagged duplicates, cross-tag theft) must stay irreducible.

// annotate stamps a completion with its attribution annotation the way the
// environment does (the tagged input the completion resolved).
func annotate(c event.Event, req action.Request) event.Event {
	return c.WithAnnotation(string(req.EffectiveInput()))
}

func TestReplayDuplicatePairCollapses(t *testing.T) {
	// Crash between execute and coordinate; recovery re-executes the same
	// tag, the env replays, then the round commits.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "v")
	ms1, mc1 := commitPair(r1)
	hist := h(s1, annotate(c1, r1), s1, annotate(c1, r1), ms1, mc1)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "v" {
		t.Fatalf("replayed execution pair must collapse; got (%v, %v)\nnormal form: %v",
			ok, outs, n.Normalize(hist))
	}
}

func TestReplayDanglingStartAbsorbs(t *testing.T) {
	// Crash mid-execution (start only), recovery completes the same tag.
	// The env applied the effect at most once across both invocations.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "v")
	ms1, mc1 := commitPair(r1)
	hist := h(s1, s1, annotate(c1, r1), ms1, mc1)
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Fatalf("dangling start before a same-tag replay must absorb; normal form: %v",
			n.Normalize(hist))
	}
}

func TestReplayUntaggedDuplicateStaysIrreducible(t *testing.T) {
	// Baseline executors run undoable actions raw, outside any transaction:
	// no tag, no at-most-once guarantee. A duplicated execution is a real
	// exactly-once violation and no step may collapse it.
	reg := testRegistry(t)
	hist := h(
		event.S("debit", "a"), event.C("debit", "v"),
		event.S("debit", "a"), event.C("debit", "v"),
	)
	for _, s := range Steps(reg, hist) {
		if len(s.Result) < len(hist) {
			t.Fatalf("untagged undoable duplicate must not reduce: %v -> %v", hist, s.Result)
		}
	}
	n := New(reg)
	if norm := n.Normalize(hist); !norm.Equal(hist) {
		t.Fatalf("greedy collapsed an untagged undoable duplicate: %v -> %v", hist, norm)
	}
}

func TestReplayDoesNotStealSiblingRoundCompletion(t *testing.T) {
	// Round 1: dangling start, cleaner cancel, recovered owner re-executes
	// and completes, abort decided, cancelled. Round 2 commits with the SAME
	// output value. The round-1 duplicate must reduce via rule 19 — the
	// replay lifting must not bind round 2's completion (annotated with
	// round 2's tag) to round 1's starts, which would strand round 2's
	// start event and dead-end the greedy reduction.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "v")
	cs1, cc1 := cancelPair(r1)
	s2, c2 := undoableEvents(r2, "v")
	ms2, mc2 := commitPair(r2)

	hist := h(
		s1, cs1, cc1, // crashed attempt, cleaner cancels
		s1, annotate(c1, r1), cs1, cc1, // recovery replays, abort, cancel
		s2, annotate(c2, r2), ms2, mc2, // round 2 commits
	)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "v" {
		t.Fatalf("round-1 replay plus committed round 2 must reduce to round 2; got (%v, %v)\nnormal form: %v",
			ok, outs, n.Normalize(hist))
	}
}

func TestReplayCrossTagPairDoesNotCollapse(t *testing.T) {
	// Two different rounds each complete once with the same output; no round
	// is duplicated. The lifting must not treat them as one attempt/success
	// pair: their tags differ, so neither start anchors a duplicate group.
	reg := testRegistry(t)
	base := action.NewRequest("debit", "a").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "v")
	s2, c2 := undoableEvents(r2, "v")
	ms2, mc2 := commitPair(r2)
	hist := h(s1, annotate(c1, r1), s2, annotate(c2, r2), ms2, mc2)
	for _, s := range Steps(reg, hist) {
		if !s.Result.Contains("debit", r1.EffectiveInput()) || !s.Result.Contains("debit", r2.EffectiveInput()) {
			t.Fatalf("a step dropped a distinct round's execution: %v -> %v", hist, s.Result)
		}
	}
}
