package reduce

import (
	"fmt"
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

// BenchmarkReduceIdempotentRetry measures greedy normalization of the
// canonical retry history (experiment E2's performance leg).
func BenchmarkReduceIdempotentRetry(b *testing.B) {
	reg := testRegistry(b)
	n := New(reg)
	hist := h(
		event.S("read", "k"), event.S("read", "k"), event.S("read", "k"),
		event.C("read", "v"), event.C("read", "v"),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Normalize(hist)
	}
}

// BenchmarkReduceCancelChain measures rule-19-heavy histories: rounds of
// execute/cancel before a final commit.
func BenchmarkReduceCancelChain(b *testing.B) {
	reg := testRegistry(b)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	var hist event.History
	for round := 1; round <= 5; round++ {
		r := base.WithRound(round)
		s, c := undoableEvents(r, "v")
		cs, cc := cancelPair(r)
		hist = hist.Concat(h(s, c, cs, cc))
	}
	ff, _ := EventsOf(reg, base.WithRound(6), "final")
	hist = hist.Concat(ff)
	spec, _ := SpecFor(reg, base)
	specs := []TargetSpec{spec}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := n.XAbleTo(hist, specs); !ok {
			b.Fatal("not x-able")
		}
	}
}

// BenchmarkXAbleSweep measures end-to-end sequence checking at several
// sizes (feeds table T6).
func BenchmarkXAbleSweep(b *testing.B) {
	reg := testRegistry(b)
	for _, requests := range []int{8, 64} {
		var hist event.History
		var specs []TargetSpec
		for i := 0; i < requests; i++ {
			req := action.NewRequest("read", action.Value(fmt.Sprintf("k%d", i))).WithID(fmt.Sprintf("q%d", i))
			spec, _ := SpecFor(reg, req)
			specs = append(specs, spec)
			iv := req.EffectiveInput()
			hist = append(hist,
				event.S("read", iv), event.S("read", iv), event.C("read", "v"), event.C("read", "v"))
		}
		b.Run(fmt.Sprintf("requests=%d", requests), func(b *testing.B) {
			n := New(reg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ok, _ := n.XAbleTo(hist, specs); !ok {
					b.Fatal("not x-able")
				}
			}
		})
	}
}

// BenchmarkSearchSmall measures the exhaustive oracle on an 8-event
// history, the size class the greedy/exhaustive agreement tests use.
func BenchmarkSearchSmall(b *testing.B) {
	reg := testRegistry(b)
	n := New(reg)
	hist := h(
		event.S("read", "k"), event.S("read", "k"),
		event.C("read", "v"), event.C("read", "v"),
	)
	spec, _ := SpecFor(reg, action.NewRequest("read", "k"))
	accept := func(c event.History) bool {
		_, ok := MatchTarget(c, []TargetSpec{spec})
		return ok
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := n.Search(hist, accept, 0); !res.Found {
			b.Fatal("not found")
		}
	}
}

// BenchmarkSignature measures signature extraction (eqs. 24–25).
func BenchmarkSignature(b *testing.B) {
	reg := testRegistry(b)
	n := New(reg)
	hist := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"))
	req := action.NewRequest("read", "k")
	for i := 0; i < b.N; i++ {
		if sigs := n.Signature(hist, req); len(sigs) != 1 {
			b.Fatal("signature broken")
		}
	}
}
