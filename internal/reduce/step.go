package reduce

import (
	"fmt"

	"xability/internal/action"
	"xability/internal/event"
)

// Rule identifies which inference rule of Figure 4 a reduction step used.
type Rule int

const (
	// Rule18 is the idempotent-absorption rule: a successfully executed
	// idempotent action absorbs the events of a previous attempt.
	Rule18 Rule = 18
	// Rule19 is the cancellation rule: a successfully cancelled undoable
	// action disappears from the history together with its cancel pair.
	Rule19 Rule = 19
	// Rule20 is the commit-idempotence rule: duplicate commit executions
	// collapse, provided the committed action does not overlap the commit.
	Rule20 Rule = 20
)

// String renders the rule in paper terms.
func (r Rule) String() string {
	switch r {
	case Rule18:
		return "rule 18 (idempotent)"
	case Rule19:
		return "rule 19 (cancellation)"
	case Rule20:
		return "rule 20 (commit)"
	default:
		return fmt.Sprintf("rule %d", int(r))
	}
}

// Step is one application of a reduction rule: h ⇒ Result.
type Step struct {
	Rule   Rule
	Desc   string
	Result event.History
}

// rule18Applies reports whether rule 18's action-class test holds: the rule
// covers registered idempotent actions and cancellation actions. Commit
// actions, although idempotent, are handled exclusively by rule 20, whose
// extra (aᵘ,iv) ∉ h′ constraint would otherwise be bypassed.
func rule18Applies(reg *action.Registry, a action.Name) bool {
	k, ok := reg.Kind(a)
	return ok && (k == action.KindIdempotent || k == action.KindCancel)
}

// replayApplies reports whether the §5.2 idempotence lifting extends rule 18
// to an execution of an undoable action: the action is registered undoable
// and the input carries a request/round tag. A tagged invocation runs inside
// the environment's transaction for that tag, which applies the effect at
// most once — re-invoking a completed transaction (a recovered replica
// resuming its round) replays the recorded result without a second effect.
// Two executions with the same tagged input are therefore one effect
// observed twice, exactly the attempt/success shape of rule 18.
//
// The lifting is deliberately narrower than rule 18 proper:
//
//   - untagged inputs (baseline executors run actions raw, outside any
//     transaction) get no at-most-once guarantee and stay irreducible;
//   - only the absorption forms anchored at a duplicate of the same tag are
//     admitted — never the Λ/compaction form, so events of undoable actions
//     are still never reordered relative to other actions' events;
//   - a completion stamped with an attribution annotation (the environment
//     stamps every completion with the tagged input it resolved) only binds
//     when the annotation matches the tag, so a duplicate of round r cannot
//     absorb by stealing round r′'s completion and stranding its start.
func replayApplies(reg *action.Registry, a action.Name, iv action.Value) bool {
	if k, ok := reg.Kind(a); !ok || k != action.KindUndoable {
		return false
	}
	_, id, _ := action.SplitTag(iv)
	return id != ""
}

// replayBinds reports whether a completion event may serve as an execution
// completion of the tagged input iv under the replay lifting: unannotated
// completions (synthetic histories) bind freely, annotated ones only to
// their own tag.
func replayBinds(c event.Event, iv action.Value) bool {
	return c.Annotation == "" || c.Annotation == string(iv)
}

// Steps enumerates every single-step reduction of h under rules 18–20,
// deduplicated by the formal content of the result. The enumeration is
// deterministic. Intended for the exhaustive engine and for tests; the
// greedy engine uses targeted finders instead.
func Steps(reg *action.Registry, h event.History) []Step {
	var out []Step
	seen := make(map[string]bool)
	add := func(s Step) {
		k := s.Result.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	stepsRule18and20(reg, h, add)
	stepsRule19(reg, h, add)
	return out
}

// removeSet is a small ascending set of history indices slated for removal
// by one rewrite. Every rule instance removes at most four events, so a
// sorted slice replaces the map the rewriting loops would otherwise
// allocate per candidate — the checker's hottest allocation site.
type removeSet []int

// rm builds a removeSet from at most a handful of indices (sorted here; the
// callers' index variables carry no order guarantee).
func rm(idx ...int) removeSet {
	for i := 1; i < len(idx); i++ { // insertion sort: len ≤ 4
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return removeSet(idx)
}

// has reports membership.
func (r removeSet) has(i int) bool {
	for _, x := range r {
		if x >= i {
			return x == i
		}
	}
	return false
}

// spliceAbsorb builds the result of an absorption rewrite (rules 18/20):
// the window h[ws:we+1] is replaced by junk • S(a,iv) C(a,ov), where junk is
// the window minus the events at the removed and success indices. The
// re-emitted completion keeps the surviving completion's attribution
// annotation (ann): the replay lifting binds completions by tag, and
// stripping the stamp mid-normalization would let a later rewrite of a
// sibling tag bind the survivor through the unannotated fallback.
func spliceAbsorb(h event.History, ws, we int, remove removeSet, a action.Name, iv, ov action.Value, ann string) event.History {
	out := make(event.History, 0, len(h)-len(remove)+2)
	out = append(out, h[:ws]...)
	ri := 0
	for i := ws; i <= we; i++ {
		if ri < len(remove) && remove[ri] == i {
			ri++
			continue
		}
		out = append(out, h[i])
	}
	out = append(out, event.S(a, iv), event.C(a, ov).WithAnnotation(ann))
	out = append(out, h[we+1:]...)
	return out
}

// stepsRule18and20 enumerates applications of rule 18 (idempotent actions
// and cancels) and rule 20 (commits). The two rules share their shape:
//
//	h ⊨ (?[a,iv,ov] ‖h′ [a,iv,ov])
//	h1 • h • h2 ⇒ h1 • h′ • S(a,iv) C(a,ov) • h2
//
// Rule 20 adds the constraint (aᵘ,iv) ∉ h′ — the commit must not overlap
// the action it commits.
//
// Executions of undoable actions with round-tagged inputs participate in
// rule 18 through the §5.2 idempotence lifting (see replayApplies), in the
// absorption forms only.
func stepsRule18and20(reg *action.Registry, h event.History, add func(Step)) {
	n := len(h)
	for l := 0; l < n; l++ {
		c := h[l]
		if c.Type != event.Complete {
			continue
		}
		a, ov := c.Action, c.Value
		base, kind := action.Base(a)
		var rule Rule
		replay := false
		switch {
		case rule18Applies(reg, a):
			rule = Rule18
		case kind == action.KindCommit && reg.IsUndoable(base):
			rule = Rule20
		case reg.IsUndoable(a):
			// Candidate for the §5.2 replay lifting; the per-start tag
			// check happens below once iv is known.
			rule = Rule18
			replay = true
		default:
			continue
		}

		// Success start positions k < l with a start event of a. The input
		// value of the pattern is fixed by the start event itself.
		for k := 0; k < l; k++ {
			s := h[k]
			if s.Type != event.Start || s.Action != a {
				continue
			}
			iv := s.Value
			if replay && (!replayApplies(reg, a, iv) || !replayBinds(c, iv)) {
				continue
			}

			commitConflict := func(junkHas func(int) bool) bool {
				if rule != Rule20 {
					return false
				}
				// (aᵘ, iv) ∉ h′: no start of the committed action with this
				// input among the junk.
				for i := 0; i < n; i++ {
					if junkHas(i) && h[i].Type == event.Start && h[i].Action == base && h[i].Value == iv {
						return true
					}
				}
				return false
			}

			// Case Λ: the ?-part matches the empty history. Window [ws..l]
			// for any ws ≤ k; the rewrite reorders junk before the pair.
			// The replay lifting excludes this form: it has no duplicate
			// anchor and would move undoable events.
			for ws := 0; !replay && ws <= k; ws++ {
				remove := rm(k, l)
				junkHas := func(i int) bool { return i >= ws && i <= l && !remove.has(i) }
				if commitConflict(junkHas) {
					continue
				}
				add(Step{
					Rule:   rule,
					Desc:   fmt.Sprintf("%v: compact [%s,%s,%s] at %d..%d", rule, a, action.Display(iv), action.Display(ov), ws, l),
					Result: spliceAbsorb(h, ws, l, remove, a, iv, ov, c.Annotation),
				})
			}

			// Case attempt present: the ?-part is a previous attempt whose
			// start anchors the window. i = attempt start < k.
			for i := 0; i < k; i++ {
				if !h[i].Equal(event.S(a, iv)) {
					continue
				}
				// Attempt start only.
				remove := rm(i, k, l)
				junkHas := func(x int) bool { return x >= i && x <= l && !remove.has(x) }
				if !commitConflict(junkHas) {
					add(Step{
						Rule:   rule,
						Desc:   fmt.Sprintf("%v: absorb attempt S@%d into success %d..%d", rule, i, k, l),
						Result: spliceAbsorb(h, i, l, remove, a, iv, ov, c.Annotation),
					})
				}
				// Attempt start and completion; the pattern shares ov
				// between the ?-part and the success part, so the attempt's
				// completion value must equal ov.
				for j := i + 1; j < l; j++ {
					if j == k || !h[j].Equal(event.C(a, ov)) {
						continue
					}
					if replay && !replayBinds(h[j], iv) {
						continue
					}
					remove := rm(i, j, k, l)
					junkHas := func(x int) bool { return x >= i && x <= l && !remove.has(x) }
					if commitConflict(junkHas) {
						continue
					}
					add(Step{
						Rule:   rule,
						Desc:   fmt.Sprintf("%v: absorb attempt S@%d,C@%d into success %d..%d", rule, i, j, k, l),
						Result: spliceAbsorb(h, i, l, remove, a, iv, ov, c.Annotation),
					})
				}
			}
		}
	}
}

// stepsRule19 enumerates applications of rule 19:
//
//	h ⊨ (?[aᵘ,iv,ov] ‖h′ [a⁻¹,iv,nil])   (aᵘ,iv) ∉ h1   (aᶜ,iv) ∉ h′
//	h1 • h • h2 ⇒ h1 • h′ • h2
//
// The window's attempt events (if any) and the cancel pair vanish; the
// interleaved junk h′ remains. The first constraint forces the attempt to be
// the earliest occurrence of (aᵘ,iv) in the whole history; the second keeps
// a concurrent commit from being silently discarded.
func stepsRule19(reg *action.Registry, h event.History, add func(Step)) {
	n := len(h)
	for l := 0; l < n; l++ {
		cc := h[l]
		if cc.Type != event.Complete || cc.Value != action.Nil {
			continue
		}
		au, kind := action.Base(cc.Action)
		if kind != action.KindCancel || !reg.IsUndoable(au) {
			continue
		}
		cancelName := cc.Action
		commitName := action.Commit(au)
		for m := 0; m < l; m++ {
			cs := h[m]
			if cs.Type != event.Start || cs.Action != cancelName {
				continue
			}
			iv := cs.Value

			noPriorAttempt := func(before int) bool {
				for x := 0; x < before; x++ {
					if h[x].Type == event.Start && h[x].Action == au && h[x].Value == iv {
						return false
					}
				}
				return true
			}
			junkClean := func(ws int, remove removeSet) bool {
				for x := ws; x <= l; x++ {
					if remove.has(x) {
						continue
					}
					if h[x].Type == event.Start && h[x].Action == commitName && h[x].Value == iv {
						return false
					}
				}
				return true
			}
			splice := func(ws int, remove removeSet) event.History {
				out := make(event.History, 0, len(h)-len(remove))
				out = append(out, h[:ws]...)
				ri := 0
				for x := ws; x <= l; x++ {
					if ri < len(remove) && remove[ri] == x {
						ri++
						continue
					}
					out = append(out, h[x])
				}
				out = append(out, h[l+1:]...)
				return out
			}

			// Case Λ: gratuitous cancel — no attempt inside the window.
			// Window [ws..l] for any ws ≤ m with no prior (aᵘ,iv) before ws.
			for ws := 0; ws <= m; ws++ {
				if !noPriorAttempt(ws) {
					continue
				}
				remove := rm(m, l)
				if !junkClean(ws, remove) {
					continue
				}
				add(Step{
					Rule:   Rule19,
					Desc:   fmt.Sprintf("rule 19: remove gratuitous cancel pair %d,%d (window from %d)", m, l, ws),
					Result: splice(ws, remove),
				})
			}

			// Case attempt present: attempt start i anchors the window.
			for i := 0; i < m; i++ {
				if !(h[i].Type == event.Start && h[i].Action == au && h[i].Value == iv) {
					continue
				}
				if !noPriorAttempt(i) {
					continue
				}
				// Attempt start only.
				remove := rm(i, m, l)
				if junkClean(i, remove) {
					add(Step{
						Rule:   Rule19,
						Desc:   fmt.Sprintf("rule 19: cancel attempt S@%d via pair %d,%d", i, m, l),
						Result: splice(i, remove),
					})
				}
				// Attempt start and completion (any output value: ov is
				// free in the ?-part of rule 19).
				for j := i + 1; j < l; j++ {
					if j == m || !(h[j].Type == event.Complete && h[j].Action == au) {
						continue
					}
					remove := rm(i, j, m, l)
					if !junkClean(i, remove) {
						continue
					}
					add(Step{
						Rule:   Rule19,
						Desc:   fmt.Sprintf("rule 19: cancel attempt S@%d,C@%d via pair %d,%d", i, j, m, l),
						Result: splice(i, remove),
					})
				}
			}
		}
	}
}
