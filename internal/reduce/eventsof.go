// Package reduce implements the history-reduction relation ⇒ of §3
// (Figure 4), the failure-free histories and eventsof function of §3.2
// (eqs. 21–22), the x-able predicate (eq. 23), and history signatures
// (eqs. 24–25).
//
// The relation is implemented twice, as two engines that are
// property-tested against each other:
//
//   - Normalize (greedy.go): a deterministic rewriting strategy that applies
//     the rules of Figure 4 left-to-right until fixpoint. It is fast and is
//     what the run verifier uses on long protocol traces.
//   - Search (exhaustive.go): a complete breadth-first exploration of every
//     rule application, memoized on history keys. It is exponential in the
//     worst case and is used on small histories as the ground-truth oracle.
//
// Rule-to-code map (Figure 4):
//
//	rule 17 (transitivity)  — iteration in Normalize / path in Search
//	rule 18 (idempotent)    — stepsRule18; applies to registered idempotent
//	                          actions and to cancellation actions ("commit
//	                          and cancellation actions are idempotent")
//	rule 19 (cancellation)  — stepsRule19
//	rule 20 (commit)        — stepsRule20; like rule 18 for commit actions
//	                          but with the (aᵘ,iv) ∉ h′ overlap constraint
//
// Interpretive decisions (see DESIGN.md §2 for rationale):
//
//   - Round tagging. Protocol events of undoable actions and their derived
//     cancel/commit actions carry the execution round in their input value
//     (§5.4: round numbers scope cancellation). Events of idempotent
//     actions do not, so duplicate executions in different rounds collapse
//     under rule 18.
//   - Failure-free histories of undoable requests quantify over the
//     committing round as well as the output value: the request happened
//     exactly once, in some round r, and was committed in that same round.
package reduce

import (
	"fmt"

	"xability/internal/action"
	"xability/internal/event"
)

// EventsOf implements eventsof (eqs. 21–22): the failure-free history of
// executing the request with output value ov. For an undoable action the
// history includes the commit pair; for an idempotent action it is the bare
// start/completion pair. The request's round, if any, is folded into the
// event values exactly as the protocol does.
func EventsOf(reg *action.Registry, req action.Request, ov action.Value) (event.History, error) {
	k, ok := reg.Kind(req.Action)
	if !ok {
		return nil, fmt.Errorf("reduce: action %q not registered", req.Action)
	}
	switch k {
	case action.KindUndoable:
		iv := req.EffectiveInput()
		com := req.Commit()
		return event.History{
			event.S(req.Action, iv),
			event.C(req.Action, ov),
			event.S(com.Action, com.EffectiveInput()),
			event.C(com.Action, action.Nil),
		}, nil
	case action.KindIdempotent, action.KindCancel, action.KindCommit:
		return event.History{
			event.S(req.Action, req.EffectiveInput()),
			event.C(req.Action, ov),
		}, nil
	default:
		return nil, fmt.Errorf("reduce: unknown kind %v for %q", k, req.Action)
	}
}

// TargetSpec describes the set of failure-free histories of one request —
// the paper's FailureFree(a,iv) (§3.2) — as a matchable shape rather than an
// (infinite) enumeration. Output nil quantifies over the output value
// (∃ ov ∈ Value); AnyRound additionally quantifies over the round tag on the
// request's events, which is how the protocol's round-scoped execution of
// undoable actions is accommodated (see the package comment).
type TargetSpec struct {
	Action   action.Name
	Input    action.Value // raw input, without request/round tag
	ID       string       // request ID the events must carry; "" = any
	Output   *action.Value
	Undoable bool
	AnyRound bool
}

// SpecFor builds the TargetSpec of a request against the registry.
func SpecFor(reg *action.Registry, req action.Request) (TargetSpec, error) {
	k, ok := reg.Kind(req.Action)
	if !ok {
		return TargetSpec{}, fmt.Errorf("reduce: action %q not registered", req.Action)
	}
	return TargetSpec{
		Action:   req.Action,
		Input:    req.Input,
		ID:       req.ID,
		Undoable: k == action.KindUndoable,
		AnyRound: k == action.KindUndoable, // protocol may commit in any round
	}, nil
}

// WithOutput pins the output value of the spec.
func (t TargetSpec) WithOutput(ov action.Value) TargetSpec {
	t.Output = &ov
	return t
}

// matchInput reports whether an event input value matches the spec's input,
// honoring round quantification, and returns the tag it carried.
func (t TargetSpec) matchInput(v action.Value) (string, int, bool) {
	base, id, round := action.SplitTag(v)
	if base != t.Input {
		return "", 0, false
	}
	if round != 0 && !t.AnyRound {
		return "", 0, false
	}
	if t.ID != "" && id != t.ID {
		return "", 0, false
	}
	return id, round, true
}

// len reports how many events a matching history segment has.
func (t TargetSpec) len() int {
	if t.Undoable {
		return 4
	}
	return 2
}

// MatchPrefix matches the spec against a prefix of h. On success it returns
// the remaining history and the output value the matched execution
// produced.
func (t TargetSpec) MatchPrefix(h event.History) (rest event.History, ov action.Value, ok bool) {
	n := t.len()
	if len(h) < n {
		return nil, "", false
	}
	s, c := h[0], h[1]
	if s.Type != event.Start || s.Action != t.Action {
		return nil, "", false
	}
	id, round, ok2 := t.matchInput(s.Value)
	if !ok2 {
		return nil, "", false
	}
	if c.Type != event.Complete || c.Action != t.Action {
		return nil, "", false
	}
	if t.Output != nil && c.Value != *t.Output {
		return nil, "", false
	}
	if !t.Undoable {
		return h[2:], c.Value, true
	}
	// Undoable: the commit pair must follow, with the same request/round tag.
	cs, cc := h[2], h[3]
	com := action.Commit(t.Action)
	if cs.Type != event.Start || cs.Action != com {
		return nil, "", false
	}
	csBase, csID, csRound := action.SplitTag(cs.Value)
	if csBase != t.Input || csID != id || csRound != round {
		return nil, "", false
	}
	if cc.Type != event.Complete || cc.Action != com || cc.Value != action.Nil {
		return nil, "", false
	}
	return h[4:], c.Value, true
}

// MatchTarget reports whether h is exactly a failure-free history for the
// request sequence described by specs (the concatenation of eventsof
// segments, one per spec, in order). On success it returns the output
// values of each segment.
func MatchTarget(h event.History, specs []TargetSpec) ([]action.Value, bool) {
	outs := make([]action.Value, 0, len(specs))
	rest := h
	for _, t := range specs {
		var ov action.Value
		var ok bool
		rest, ov, ok = t.MatchPrefix(rest)
		if !ok {
			return nil, false
		}
		outs = append(outs, ov)
	}
	if len(rest) != 0 {
		return nil, false
	}
	return outs, true
}
