package reduce

import (
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

// Regression tests for the zombie-retry interleavings that shaped the
// environment's epoch-guard design (DESIGN.md §2, decision 5): a falsely
// suspected owner that keeps executing a round after the cleaner cancelled
// it. These histories are exactly what the protocol can emit; they must
// reduce — and the one interleaving the environment forbids must not.

func TestZombieRetryAfterCleanerCancel(t *testing.T) {
	// Owner starts round 1 and stalls; cleaner cancels round 1; the owner's
	// retry re-activates the round, completes, learns the abort decision,
	// and cancels again; the cleaner meanwhile committed round 2.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "v1")
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "v2")

	hist := h(
		s1,       // owner's first invocation (never completes)
		cs1, cc1, // cleaner cancels round 1
		s1, c1, // owner's zombie retry re-activates and completes
	).Concat(ff2). // cleaner's round 2 executes and commits
			Concat(h(cs1, cc1)) // owner learns abort, cancels its zombie effect

	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "v2" {
		t.Fatalf("zombie retry history must reduce to round 2's commit; got (%v, %v)\nnormal form: %v",
			ok, outs, n.Normalize(hist))
	}
}

func TestZombieCompletionAfterCancelIsIrreducible(t *testing.T) {
	// The interleaving the environment's epoch guard forbids: a single
	// invocation whose completion lands after the round's cancel pair.
	// Formally irreducible — rule 19's window must end at the cancel
	// completion, stranding the late C.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "v1")
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "v2")

	hist := h(s1, cs1, cc1, c1).Concat(ff2) // C(au) after the cancel pair
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); ok {
		t.Fatal("completion after the round's cancellation must not be x-able")
	}
}

func TestZombieDoubleRetryCycles(t *testing.T) {
	// Two full cancel/re-execute cycles within one round before the round
	// finally aborts, then a committed round 2.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1, r2 := base.WithRound(1), base.WithRound(2)

	s1, c1 := undoableEvents(r1, "v1")
	cs1, cc1 := cancelPair(r1)
	ff2, _ := EventsOf(reg, r2, "v2")

	hist := h(
		s1, cs1, cc1, // attempt 1 fails, owner cancels
		s1, c1, cs1, cc1, // attempt 2 completes, abort decided, cancelled
	).Concat(ff2)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "v2" {
		t.Fatalf("double retry cycle must reduce; got (%v, %v)", ok, outs)
	}
}

func TestZombieIdempotentStragglerWithinRequest(t *testing.T) {
	// Idempotent action, false suspicion: the suspected owner's completion
	// arrives after the cleaner's round already completed — inside the
	// same request this reduces (the straggler is absorbed as the
	// surviving execution; the earlier pair becomes the attempt).
	reg := testRegistry(t)
	n := New(reg)
	req := action.NewRequest("read", "t").WithID("q")
	iv := req.EffectiveInput()
	hist := h(
		event.S("read", iv),  // owner starts
		event.S("read", iv),  // cleaner's round starts
		event.C("read", "v"), // cleaner completes (resolve-once fixes v)
		event.C("read", "v"), // owner's straggler completes with the same v
	)
	spec, _ := SpecFor(reg, req)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Fatal("same-request straggler must reduce")
	}
}

func TestCleanerCommitsForCrashedOwner(t *testing.T) {
	// Owner executed and proposed commit, then crashed; the cleaner
	// executes the decided commit itself. Duplicate commit pairs collapse
	// under rule 20.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "v")
	ms1, mc1 := commitPair(r1)
	hist := h(s1, c1, ms1, mc1, ms1, mc1)
	spec, _ := SpecFor(reg, base)
	ok, outs := n.XAbleTo(hist, []TargetSpec{spec})
	if !ok || outs[0] != "v" {
		t.Fatalf("cleaner-duplicated commit must reduce; got (%v, %v)", ok, outs)
	}
}

func TestCrashedOwnerCommitStartOnly(t *testing.T) {
	// Owner crashed mid-commit (start event only); the cleaner's commit
	// succeeds. The dangling commit start is absorbed by rule 20.
	reg := testRegistry(t)
	n := New(reg)
	base := action.NewRequest("debit", "a").WithID("q")
	r1 := base.WithRound(1)

	s1, c1 := undoableEvents(r1, "v")
	ms1, mc1 := commitPair(r1)
	hist := h(s1, c1, ms1, ms1, mc1) // first commit never completed
	spec, _ := SpecFor(reg, base)
	if ok, _ := n.XAbleTo(hist, []TargetSpec{spec}); !ok {
		t.Fatalf("dangling commit start must absorb; normal form: %v", n.Normalize(hist))
	}
}
