package reduce

import (
	"math/rand"
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

func TestSearchFindsTargetDirectly(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	ff, _ := EventsOf(reg, action.NewRequest("read", "k"), "v")
	res := n.Search(ff, func(c event.History) bool { return c.Equal(ff) }, 0)
	if !res.Found || res.States != 1 {
		t.Errorf("Search on target = %+v", res)
	}
}

func TestSearchReducesDuplicate(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(event.S("read", "k"), event.S("read", "k"), event.C("read", "v"))
	spec, _ := SpecFor(reg, action.NewRequest("read", "k"))
	res := n.Search(hist, func(c event.History) bool {
		_, ok := MatchTarget(c, []TargetSpec{spec})
		return ok
	}, 0)
	if !res.Found {
		t.Error("search should find the reduction")
	}
}

func TestSearchExhaustsNegative(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(event.S("read", "k"))
	spec, _ := SpecFor(reg, action.NewRequest("read", "k"))
	res := n.Search(hist, func(c event.History) bool {
		_, ok := MatchTarget(c, []TargetSpec{spec})
		return ok
	}, 0)
	if res.Found {
		t.Error("dangling start must not be x-able")
	}
	if !res.Exhausted {
		t.Error("tiny state space should be exhausted")
	}
}

func TestSearchBudget(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	var hist event.History
	for i := 0; i < 6; i++ {
		hist = append(hist, event.S("read", "k"), event.C("read", "v"))
	}
	res := n.Search(hist, func(event.History) bool { return false }, 5)
	if res.Exhausted {
		t.Error("budget of 5 states cannot exhaust this space")
	}
	if res.States < 5 {
		t.Errorf("expected to hit the budget, visited %d", res.States)
	}
}

// randomProtocolishHistory generates a small history shaped like protocol
// traces: duplicate idempotent executions, cancelled undoable rounds,
// committed rounds, interleaved junk — with occasional corruption (dangling
// starts, diverging outputs) so that both verdicts occur.
func randomProtocolishHistory(rng *rand.Rand, reg *action.Registry) (event.History, []TargetSpec) {
	var hist event.History
	var specs []TargetSpec

	if rng.Intn(2) == 0 {
		// Idempotent request with 1–3 incarnations.
		req := action.NewRequest("read", "k")
		spec, _ := SpecFor(reg, req)
		specs = append(specs, spec)
		incarnations := 1 + rng.Intn(2)
		var starts, completes event.History
		for i := 0; i <= incarnations; i++ {
			starts = append(starts, event.S("read", "k"))
		}
		ov := action.Value("v")
		if rng.Intn(6) == 0 {
			ov = "corrupt" // diverging output for one incarnation
		}
		completes = append(completes, event.C("read", ov))
		completes = append(completes, event.C("read", "v"))
		if rng.Intn(5) == 0 {
			completes = completes[1:] // drop one completion
		}
		hist = hist.Concat(shuffleRespectingPairs(rng, starts, completes))
	} else {
		// Undoable request: zero or more cancelled rounds then a commit.
		base := action.NewRequest("debit", "a").WithID("q")
		spec, _ := SpecFor(reg, base)
		specs = append(specs, spec)
		rounds := 1 + rng.Intn(2)
		for r := 1; r < rounds; r++ {
			rr := base.WithRound(r)
			s, c := event.S(rr.Action, rr.EffectiveInput()), event.C(rr.Action, "v")
			can := rr.Cancel()
			cs, cc := event.S(can.Action, can.EffectiveInput()), event.C(can.Action, action.Nil)
			if rng.Intn(2) == 0 {
				hist = hist.Concat(h(s, c, cs, cc))
			} else {
				hist = hist.Concat(h(s, cs, cc)) // crashed before completing
			}
		}
		final := base.WithRound(rounds)
		ff, _ := EventsOf(reg, final, "v")
		if rng.Intn(6) == 0 {
			ff = ff[:2] // forget the commit
		}
		hist = hist.Concat(ff)
	}
	return hist, specs
}

// shuffleRespectingPairs interleaves starts (kept in front) and completions
// randomly while keeping at least one start before the first completion.
func shuffleRespectingPairs(rng *rand.Rand, starts, completes event.History) event.History {
	out := starts.Clone()
	for _, c := range completes {
		pos := 1 + rng.Intn(len(out))
		out = append(out[:pos], append(event.History{c}, out[pos:]...)...)
	}
	return out
}

func TestGreedyAgreesWithSearch(t *testing.T) {
	reg := testRegistry(t)
	rng := rand.New(rand.NewSource(7))
	agreePositive, agreeNegative := 0, 0
	for trial := 0; trial < 400; trial++ {
		hist, specs := randomProtocolishHistory(rng, reg)
		if len(hist) > 12 {
			continue
		}
		n := New(reg)

		greedyOK := func() bool {
			saved := n.expected
			n.Toward(specs)
			defer func() { n.expected = saved }()
			_, ok := MatchTarget(n.Normalize(hist), specs)
			return ok
		}()

		res := n.Search(hist, func(c event.History) bool {
			_, ok := MatchTarget(c, specs)
			return ok
		}, 0)
		if !res.Found && !res.Exhausted {
			continue // inconclusive oracle; skip
		}

		if greedyOK && !res.Found {
			t.Fatalf("greedy claims x-able but exhaustive search disproves it\nhistory: %v", hist)
		}
		if !greedyOK && res.Found {
			t.Fatalf("greedy missed a reduction the search found\nhistory: %v\nwitness: %v", hist, res.Witness)
		}
		if greedyOK {
			agreePositive++
		} else {
			agreeNegative++
		}
	}
	if agreePositive == 0 || agreeNegative == 0 {
		t.Fatalf("test generator degenerate: %d positive, %d negative agreements", agreePositive, agreeNegative)
	}
	t.Logf("greedy and search agreed on %d x-able and %d non-x-able histories", agreePositive, agreeNegative)
}

func TestSearchStatesBoundedByVisited(t *testing.T) {
	reg := testRegistry(t)
	n := New(reg)
	hist := h(
		event.S("read", "k"), event.S("read", "k"),
		event.C("read", "v"), event.C("read", "v"),
	)
	res := n.Search(hist, func(event.History) bool { return false }, 0)
	if !res.Exhausted {
		t.Error("four-event space should be exhaustible")
	}
	if res.States <= 1 {
		t.Error("expected several reachable states")
	}
}
