package reduce

import (
	"xability/internal/event"
)

// SearchResult reports the outcome of an exhaustive reduction search.
type SearchResult struct {
	// Found is true when a history accepted by the predicate was reached.
	Found bool
	// Exhausted is true when the whole reachable state space was explored
	// (so Found == false is a definitive "not x-able"). When false, the
	// search hit its state budget and is inconclusive.
	Exhausted bool
	// States is the number of distinct histories visited.
	States int
	// Witness, when Found, is the accepted history.
	Witness event.History
}

// DefaultMaxStates bounds the exhaustive search. Reduction preserves or
// shrinks history length, so the state space is finite, but it can be
// factorial in the history length; the budget keeps the oracle usable in
// tests without hanging on adversarial inputs.
const DefaultMaxStates = 200_000

// Search explores the reflexive-transitive closure of ⇒ (rule 17) from h,
// breadth-first with memoization on formal history keys, and reports whether
// any reachable history satisfies accept. maxStates ≤ 0 uses
// DefaultMaxStates.
//
// This is the ground-truth engine: it enumerates every legal application of
// rules 18–20 at every step. Use it on small histories (≲ 16 events) to
// validate the greedy Normalizer.
func (n *Normalizer) Search(h event.History, accept func(event.History) bool, maxStates int) SearchResult {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	start := h.Clone()
	if accept(start) {
		return SearchResult{Found: true, Exhausted: true, States: 1, Witness: start}
	}
	visited := map[string]bool{start.Key(): true}
	queue := []event.History{start}
	states := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range Steps(n.reg, cur) {
			k := s.Result.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			states++
			if accept(s.Result) {
				return SearchResult{Found: true, Exhausted: false, States: states, Witness: s.Result}
			}
			if states >= maxStates {
				return SearchResult{Found: false, Exhausted: false, States: states}
			}
			queue = append(queue, s.Result)
		}
	}
	return SearchResult{Found: false, Exhausted: true, States: states}
}
