package shrink

import (
	"errors"

	"xability/internal/scenario"
)

// The shrinker registers itself as scenario.Sweep's ShrinkFailing
// implementation. The indirection breaks the import cycle (shrinking
// re-runs scenarios); any binary that links this package — the root
// xability package and cmd/xsim do — arms the knob. A budget-cut shrink
// still yields its best-so-far trace (Render marks it unverified); only a
// seed that does not fail at all yields nothing.
func init() {
	scenario.RegisterShrinker(func(sc scenario.Scenario, seed int64, budget int) (string, bool) {
		mt, err := Shrink(sc, seed, Options{MaxSteps: budget})
		if err != nil && !(errors.Is(err, ErrBudget) && mt.Log != nil) {
			return "", false
		}
		return mt.Render(), true
	})
}
