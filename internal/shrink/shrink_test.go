package shrink

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"xability/internal/core"
	"xability/internal/scenario"
	"xability/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestShrinkPBCrashFailover is the shrinker's acceptance test on the
// repository's planted bug: primary-backup duplication under a
// crash-failover schedule. The minimal trace must still fail, be locally
// minimal, and be small — the schedule that explains the duplication is
// two submits, one reply, and the crash op.
func TestShrinkPBCrashFailover(t *testing.T) {
	sc, ok := scenario.Get("pb-crash-failover")
	if !ok {
		t.Fatal("pb-crash-failover not registered")
	}
	mt, err := Shrink(sc, 1, Options{})
	if err != nil {
		t.Fatalf("Shrink: %v (steps=%d)", err, mt.Steps)
	}
	if !mt.Minimal {
		t.Error("trace not verified 1-minimal")
	}
	if mt.Deliveries > 4 {
		t.Errorf("minimal trace keeps %d deliveries, want ≤ 4:\n%s", mt.Deliveries, mt.Render())
	}
	if mt.Deliveries >= mt.BaseDeliveries {
		t.Errorf("no deliveries removed: %d of %d", mt.Deliveries, mt.BaseDeliveries)
	}
	if mt.Ops != 1 {
		t.Errorf("ops kept = %d, want exactly the crash op", mt.Ops)
	}

	// (a) The trace still fails when replayed.
	o := scenario.ExecuteTraced(sc, 1, nil, mt.Replay())
	if o.XAble || !o.Replied {
		t.Errorf("replayed minimal trace no longer fails: %+v", o)
	}

	// (b) Local minimality is Shrink-verified (mt.Minimal above); spot-check
	// that the duplication is the reported failure.
	if mt.Outcome.EffectsInForce < 2 {
		t.Errorf("minimal outcome lost the duplication: %+v", mt.Outcome)
	}
	if mt.Outcome.Counterexample == "" {
		t.Error("outcome carries no rendered counterexample")
	}
}

// TestShrinkDeterministic pins acceptance criterion (c): equal inputs
// shrink to byte-equal rendered traces, run to run.
func TestShrinkDeterministic(t *testing.T) {
	sc, _ := scenario.Get("pb-crash-failover")
	a, errA := Shrink(sc, 1, Options{})
	b, errB := Shrink(sc, 1, Options{})
	if errA != nil || errB != nil {
		t.Fatalf("Shrink errors: %v, %v", errA, errB)
	}
	if a.Render() != b.Render() {
		t.Errorf("renders differ:\n--- first\n%s\n--- second\n%s", a.Render(), b.Render())
	}
	if a.Steps != b.Steps {
		t.Errorf("step counts differ: %d vs %d", a.Steps, b.Steps)
	}
}

// TestShrinkGolden diffs the rendered counterexample against the checked-in
// golden trace (regenerate with -update). The golden file is the
// human-readable artifact the whole pipeline exists to produce; any change
// to the scheduler, the recorder, or the shrinker that moves it is visible
// in review.
func TestShrinkGolden(t *testing.T) {
	sc, _ := scenario.Get("pb-crash-failover")
	mt, err := Shrink(sc, 1, Options{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	got := mt.Render()
	path := filepath.Join("testdata", "pb_crash_failover_seed1.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("rendered trace drifted from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestShrinkNotFailing pins the guard: shrinking a passing (scenario,
// seed) reports ErrNotFailing instead of minimizing nothing.
func TestShrinkNotFailing(t *testing.T) {
	sc, _ := scenario.Get("nice")
	if _, err := Shrink(sc, 1, Options{}); err != ErrNotFailing {
		t.Errorf("err = %v, want ErrNotFailing", err)
	}
}

// TestShrinkBudget pins the cap: a one-step budget returns the best-so-far
// trace with ErrBudget rather than running away.
func TestShrinkBudget(t *testing.T) {
	sc, _ := scenario.Get("pb-crash-failover")
	mt, err := Shrink(sc, 1, Options{MaxSteps: 2})
	if err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if mt.Steps > 2+1 { // baseline + at most one trial overshoot
		t.Errorf("spent %d steps on a 2-step budget", mt.Steps)
	}
	if mt.Minimal {
		t.Error("budget-cut shrink claims minimality")
	}
}

// TestSweepShrinkFailing pins the end-to-end knob: a sweep over a failing
// scenario with ShrinkFailing set attaches rendered counterexamples to the
// distribution (this package's init registers the shrinker hook).
func TestSweepShrinkFailing(t *testing.T) {
	sc, _ := scenario.Get("pb-crash-failover")
	d := scenario.SweepWithOptions(sc, scenario.Seeds(1, 8), scenario.SweepOptions{
		ShrinkFailing:      true,
		MaxCounterexamples: 2,
	})
	if len(d.Failing) != 8 {
		t.Fatalf("failing = %v, want all 8", d.Failing)
	}
	if len(d.Counterexamples) != 2 {
		t.Fatalf("counterexamples = %d, want 2 (bounded)", len(d.Counterexamples))
	}
	for seed, cx := range d.Counterexamples {
		if cx == "" {
			t.Errorf("seed %d: empty counterexample", seed)
		}
	}
	// The rendered distribution carries the traces.
	if s := d.String(); !strings.Contains(s, "minimal counterexample") {
		t.Errorf("distribution render misses counterexamples:\n%s", s)
	}

	// Acceptance criterion (c): the traces are deterministic across worker
	// counts — shrinking is a sequential post-pass over the seed-ordered
	// fold, so parallelism must not be observable.
	serial := scenario.SweepWithOptions(sc, scenario.Seeds(1, 8), scenario.SweepOptions{
		Workers:            1,
		ShrinkFailing:      true,
		MaxCounterexamples: 2,
	})
	if !reflect.DeepEqual(d.Counterexamples, serial.Counterexamples) {
		t.Errorf("counterexamples differ across worker counts:\n%v\nvs\n%v",
			d.Counterexamples, serial.Counterexamples)
	}
}

// TestShrinkBatchedDeadline pins the shrink pipeline on the throughput
// plane: a batched, pipelined run that fails by not answering (slot-owner
// crash under injected failures and a tight deadline) must shrink like
// any per-request run — batched single-cluster runs live inside the
// record/replay plane, so a failing sweep seed from the batch sweeps has
// the same counterexample path as the rest of the repo. The failure-class
// predicate holds: the minimal trace still times out without answering.
func TestShrinkBatchedDeadline(t *testing.T) {
	sc := scenario.Scenario{
		Name:        "batch-deadline",
		Description: "slot owner crash + injected failures under a tight deadline",
		Batch:       core.BatchConfig{Enabled: true, MaxSize: 8, Window: 100 * time.Microsecond, Pipeline: 4},
		Accounts:    2,
		Workload:    &workload.Spec{Requests: 4, Accounts: 2},
		Failures:    []scenario.Failure{{Action: "debit", Prob: 1, Budget: 4}},
		Plan:        scenario.NewPlan().CrashAt(1*time.Millisecond, 0),
		Deadline:    3 * time.Millisecond,
	}
	base := scenario.Execute(sc, 2)
	if base.Replied || !base.TimedOut {
		t.Fatalf("scenario does not fail by deadline on seed 2: %+v", base)
	}
	mt, err := Shrink(sc, 2, Options{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if !mt.Minimal {
		t.Error("trace not verified 1-minimal")
	}
	if mt.Outcome.Counterexample == "" {
		t.Error("outcome carries no rendered counterexample")
	}
	o := scenario.ExecuteTraced(sc, 2, nil, mt.Replay())
	if o.Replied || !o.TimedOut {
		t.Errorf("replayed minimal trace no longer fails by deadline: %+v", o)
	}
	// Determinism: equal inputs shrink to byte-equal traces.
	again, err := Shrink(sc, 2, Options{})
	if err != nil {
		t.Fatalf("second Shrink: %v", err)
	}
	if mt.Render() != again.Render() {
		t.Errorf("renders differ:\n--- first\n%s\n--- second\n%s", mt.Render(), again.Render())
	}
}

// TestShrinkPowerCycleGolden runs the shrink pipeline over a failing
// total-loss run: the registered power-cycle scenario under a deadline
// that strikes mid-blackout fails by not answering. The honest minimum
// for a starvation failure is message suppression, not the crash ops —
// with the reply path suppressed and no suspicion, the client starves no
// matter what the replicas do — so the golden pins exactly that: a
// near-empty schedule explaining the timeout, byte-stable run to run.
func TestShrinkPowerCycleGolden(t *testing.T) {
	sc, ok := scenario.Get("power-cycle")
	if !ok {
		t.Fatal("power-cycle not registered")
	}
	sc.Deadline = 4 * time.Millisecond
	base := scenario.Execute(sc, 1)
	if base.Replied || !base.TimedOut {
		t.Fatalf("power-cycle under a 4ms deadline does not fail on seed 1: %+v", base)
	}
	// The failure under investigation is "the client starves
	// mid-protocol": stable storage must have been written, so the submit
	// reaching a replica survives the shrink.
	mt, err := Shrink(sc, 1, Options{Failing: func(o scenario.Outcome) bool {
		return !o.Replied && o.TimedOut && o.WALAppends > 0
	}})
	if err != nil {
		t.Fatalf("Shrink: %v (steps=%d)", err, mt.Steps)
	}
	if !mt.Minimal {
		t.Error("trace not verified 1-minimal")
	}
	if mt.Deliveries == 0 {
		t.Errorf("empty minimal schedule; the predicate should keep the submit delivery")
	}
	// The minimal trace still reproduces the deadline failure.
	o := scenario.ExecuteTraced(sc, 1, nil, mt.Replay())
	if o.Replied || !o.TimedOut {
		t.Errorf("replayed minimal trace no longer fails by deadline: %+v", o)
	}

	got := mt.Render()
	path := filepath.Join("testdata", "power_cycle_deadline_seed1.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("rendered trace drifted from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
}

// TestShrinkKeepsCrashRestartPairs pins the atomic edit unit. The planted
// primary-backup duplication needs its crash op; a restart paired onto
// that crash (inert on the baseline runtime — no restart surface) must
// survive the shrink anyway, because removal is by pair: stripping the
// restart alone would present a crash→restart schedule as a permanent
// crash, a different schedule class than the one that failed. The
// un-paired shrinker removed exactly that restart.
func TestShrinkKeepsCrashRestartPairs(t *testing.T) {
	sc, ok := scenario.Get("pb-crash-failover")
	if !ok {
		t.Fatal("pb-crash-failover not registered")
	}
	base := sc.Plan.Ops()
	if len(base) != 1 || base[0].Kind != scenario.OpCrash {
		t.Fatalf("pb-crash-failover plan changed shape: %+v", base)
	}
	sc.Plan = sc.Plan.Clone().RestartAt(base[0].At+2*time.Millisecond, base[0].Replica)
	mt, err := Shrink(sc, 1, Options{})
	if err != nil {
		t.Fatalf("Shrink: %v (steps=%d)", err, mt.Steps)
	}
	if mt.Ops != 2 {
		t.Fatalf("minimal plan keeps %d ops, want the crash/restart pair:\n%s", mt.Ops, mt.Plan.String())
	}
	ops := mt.Plan.Ops()
	if ops[0].Kind != scenario.OpCrash || ops[1].Kind != scenario.OpRestart || !ops[0].Paired(ops[1]) {
		t.Errorf("minimal plan is not a crash/restart pair: %+v", ops)
	}
	// The pair-shrunk trace still reproduces the duplication.
	o := scenario.ExecuteTraced(sc, 1, nil, mt.Replay())
	if o.XAble || !o.Replied {
		t.Errorf("replayed minimal trace no longer fails: %+v", o)
	}
}

// TestPairSet pins the pairing rule on a hand-built plan, shard scopes
// included: a crash pairs forward to the nearest restart of the same
// replica under the same shard scope, a restart pairs backward, and ops
// of other kinds (or with no partner) shrink alone.
func TestPairSet(t *testing.T) {
	p := scenario.NewPlan().
		CrashAt(1*time.Millisecond, 0).             // 0: pairs with 3
		CrashShardAt(1*time.Millisecond, 2, 0).     // 1: same replica, shard scope — pairs with 4
		SuspectAt(2*time.Millisecond, "replica-1"). // 2: alone
		RestartAt(5*time.Millisecond, 0).           // 3
		RestartShardAt(6*time.Millisecond, 2, 0).   // 4
		CrashAt(7*time.Millisecond, 1)              // 5: no restart — alone
	ops := p.Ops()
	want := map[int][]int{
		0: {0, 3}, 1: {1, 4}, 2: {2}, 3: {0, 3}, 4: {1, 4}, 5: {5},
	}
	for i, idxs := range want {
		set := pairSet(ops, i)
		if len(set) != len(idxs) {
			t.Errorf("pairSet(%d) = %v, want %v", i, set, idxs)
			continue
		}
		for _, j := range idxs {
			if !set[j] {
				t.Errorf("pairSet(%d) = %v, want %v", i, set, idxs)
			}
		}
	}
}
