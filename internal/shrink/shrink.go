// Package shrink turns a failing sweep seed into a minimal counterexample
// trace. A failing seed from scenario.Sweep is an opaque integer: it says
// the protocol broke, not why. Shrink records the failing run's delivery
// schedule (internal/schedule), then delta-debugs it — ddmin over the
// delivered messages, greedy removal over the fault plan's ops — re-running
// scenario.Execute under replay after every edit and keeping any edit that
// preserves the failure. The result is a locally minimal trace: removing
// any single remaining delivery or fault step makes the failure disappear.
// That trace, rendered, is the reproducible account of the failure that a
// bare seed never was.
//
// Shrinking is deterministic: runs are virtual-time executions of
// (scenario, seed, log) and every edit decision is a pure function of the
// previous run's outcome, so equal inputs shrink to equal traces on any
// host and any worker count.
package shrink

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"xability/internal/obs"
	"xability/internal/scenario"
	"xability/internal/schedule"
)

// Options tunes a shrink.
type Options struct {
	// MaxSteps caps the number of scenario executions spent (0 selects
	// 600). Shrink returns its best-so-far trace with ErrBudget when the
	// cap strikes before convergence.
	MaxSteps int
	// Failing decides whether an outcome reproduces the failure under
	// investigation. Nil selects the failure class of the baseline run:
	// a run that failed verification while answering the client must
	// keep answering (a starved, timed-out run is a different bug than a
	// duplicated effect); a run that failed by not answering must keep
	// not answering.
	Failing func(scenario.Outcome) bool
	// Annotate re-runs the minimal replay once more under request tracing
	// (internal/obs) and attaches the rendered span timeline to the trace
	// (MinTrace.Spans; Render appends it). Off by default so golden
	// renders are unchanged.
	Annotate bool
}

// ErrBudget reports that MaxSteps ran out before the trace was verified
// locally minimal; the returned MinTrace is the best trace found.
var ErrBudget = errors.New("shrink: step budget exhausted before convergence")

// ErrSharded reports that the scenario deploys the sharded runtime, which
// is outside the record/replay plane (the groups' private networks would
// interleave one schedule log nondeterministically): the shrinker's
// delivery edits would be silent no-ops, producing a misleading
// "minimal" trace. Refusing is the honest answer until sharded runs get
// per-group logs.
var ErrSharded = errors.New("shrink: sharded scenarios are outside the record/replay plane (no delivery schedule to minimize)")

// ErrNotFailing reports that the scenario does not fail on the given seed,
// so there is nothing to shrink.
var ErrNotFailing = errors.New("shrink: scenario does not fail on this seed")

// MinTrace is a minimized counterexample: the fault plan and delivery
// schedule of a locally minimal failing run.
type MinTrace struct {
	// Scenario and Seed identify the shrunk run.
	Scenario string
	Seed     int64

	// Plan is the minimal fault plan (nil when the scenario had none or
	// every op shrank away).
	Plan *scenario.Plan
	// Log is the effective schedule of the minimal run: kept deliveries
	// plus the suppressed/dropped placeholders that replay needs for
	// stream alignment. Replaying (scenario, seed, Log) verbatim
	// reproduces the failure.
	Log *schedule.Log

	// Deliveries and Ops count the kept deliveries and fault ops;
	// BaseDeliveries and BaseOps are the unshrunken counts.
	Deliveries, BaseDeliveries int
	Ops, BaseOps               int
	// Steps is the number of scenario executions spent.
	Steps int
	// Minimal reports that 1-minimality was verified: suppressing any
	// single kept delivery, or removing any single kept edit unit (an op,
	// or a crash together with its paired restart), makes the failure
	// disappear (within the run deadline).
	Minimal bool
	// Deadline is the virtual-time cap edited runs executed under (the
	// scenario's own, or the one derived from the baseline's span). A
	// cross-process re-run of the artifact needs it: without the cap, an
	// edit-stalled await would hang instead of reporting TimedOut.
	Deadline time.Duration
	// Spans is the minimal run's rendered request timeline (one line per
	// span event, virtual-time ordered). Filled only by Options.Annotate.
	Spans []string

	// Outcome is the minimal run's outcome, with Counterexample set to
	// the rendered trace.
	Outcome scenario.Outcome
}

// Replay returns the replay spec that reproduces the minimal failing run:
// the effective log replayed verbatim (recorded suppressions included).
func (m MinTrace) Replay() *schedule.Replay {
	return &schedule.Replay{Log: m.Log}
}

// Render writes the trace for humans: the failure, the minimal fault plan,
// and the kept schedule. The rendering is deterministic (virtual times
// only), so it can be diffed against golden files.
func (m MinTrace) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "minimal counterexample — scenario %s, seed %d\n", m.Scenario, m.Seed)
	o := m.Outcome
	fmt.Fprintf(&b, "failure: x-able=%v replied=%v effects-in-force=%d executions=%d\n",
		o.XAble, o.Replied, o.EffectsInForce, o.Executions)
	fmt.Fprintf(&b, "fault plan (%d of %d ops kept):\n", m.Ops, m.BaseOps)
	if m.Plan == nil || len(m.Plan.Ops()) == 0 {
		b.WriteString("  (none)\n")
	} else {
		for _, line := range strings.Split(m.Plan.String(), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	suppressed := 0
	var kept []schedule.Entry
	for _, e := range m.Log.Entries() {
		if e.Verdict == schedule.Suppressed {
			suppressed++
			continue
		}
		kept = append(kept, e)
	}
	fmt.Fprintf(&b, "schedule (%d of %d deliveries kept, %d suppressed):\n",
		m.Deliveries, m.BaseDeliveries, suppressed)
	for _, e := range kept {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	if len(m.Spans) > 0 {
		fmt.Fprintf(&b, "request timeline (%d events):\n", len(m.Spans))
		for _, s := range m.Spans {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if !m.Minimal {
		b.WriteString("note: step budget exhausted; trace still fails but is not verified 1-minimal\n")
	}
	return b.String()
}

// Shrink minimizes the failing run of sc on seed. It alternates two
// passes until neither makes progress: greedy removal of fault-plan ops,
// and ddmin over the delivered messages of the recorded schedule. Every
// trial edit re-executes the scenario under replay; a trial is kept only
// when the failure (per Options.Failing) persists. A final verification
// pass re-tests every surviving delivery and op individually, so the
// returned trace is 1-minimal, not just ddmin-converged.
func Shrink(sc scenario.Scenario, seed int64, opt Options) (MinTrace, error) {
	if sc.Shards > 0 {
		return MinTrace{Scenario: sc.Name, Seed: seed}, ErrSharded
	}
	// Resolve seed-derived faults into the plan first: the shrinker edits
	// sc.Plan op by op, which only converges when the plan it edits is the
	// whole schedule (a RandomFaults scenario would otherwise re-draw its
	// ops on every trial, resurrecting whatever was removed).
	sc = sc.Materialize(seed)
	budget := opt.MaxSteps
	if budget <= 0 {
		budget = 600
	}
	steps := 0
	left := func() int { return budget - steps }

	exec := func(plan *scenario.Plan, rec *schedule.Log, replay *schedule.Replay) scenario.Outcome {
		steps++
		s := sc
		s.Plan = plan
		return scenario.ExecuteTraced(s, seed, rec, replay)
	}

	// Baseline: the uncapped recorded run. It came out of a sweep, so it
	// terminates on its own; edited runs can stall a client await forever,
	// so they get a virtual-time deadline derived from the baseline's span.
	baseLog := schedule.NewLog()
	base := exec(sc.Plan, baseLog, nil)
	failing := opt.Failing
	if failing == nil {
		failing = sameFailure(base)
	}
	plan := sc.Plan.Clone()
	mt := MinTrace{
		Scenario:       sc.Name,
		Seed:           seed,
		BaseDeliveries: baseLog.DeliveredCount(),
		BaseOps:        len(plan.Ops()),
	}
	if !failing(base) {
		mt.Steps = steps
		return mt, ErrNotFailing
	}
	if sc.Deadline <= 0 {
		sc.Deadline = runDeadline(base, sc)
	}

	log := baseLog
	outcome := base

	// try executes one trial edit — a candidate plan replayed against the
	// current log with extra deliveries suppressed — recording as it
	// goes. When the failure persists the recorded run IS the new state
	// (runs are deterministic, so adopting the trial's log equals
	// re-running the committed edit), and the suppressions are folded
	// into the adopted log's verdicts, so rounds compose; a failed trial
	// discards its recording. One scenario execution per trial either
	// way. Callers whose drop indices reference the current log must
	// recompute them after a successful try: the adopted log renumbers.
	try := func(p *scenario.Plan, drop map[int]bool) bool {
		rec := schedule.NewLog()
		o := exec(p, rec, &schedule.Replay{Log: log, Edit: schedule.SuppressSet(drop)})
		if !failing(o) {
			return false
		}
		plan, log, outcome = p, rec, o
		return true
	}
	// check is the pure variant for ddmin, whose whole run must test
	// subsets of one pinned candidate universe: no recording, no
	// adoption.
	check := func(drop map[int]bool) bool {
		if left() <= 0 {
			return false
		}
		o := exec(plan, nil, &schedule.Replay{Log: log, Edit: schedule.SuppressSet(drop)})
		return failing(o)
	}

	// Alternate plan-op removal and delivery ddmin until a full round
	// removes nothing (or the budget strikes).
	for left() > 0 {
		removed := false

		// Fault-plan ops: greedy removal to fixpoint, one edit unit at a
		// time — an op plus its crash/restart partner (see pairSet). Plans
		// are short; greedy is 1-minimal by construction. Deliveries stay
		// pinned to the recorded schedule while ops are tested, so a
		// removed unit means the unit itself was unnecessary, not that the
		// timing shifted.
		for i := 0; i < len(plan.Ops()) && left() > 0; {
			if try(plan.Without(pairSet(plan.Ops(), i)), nil) {
				removed = true
				continue // the next op slid into slot i
			}
			i++
		}

		// Deliveries: ddmin over the delivered entries of the current log.
		// Trials are pure (the candidate indices reference this round's
		// pinned log); the converged keep-set is then adopted with one
		// recording run.
		cands := deliveredIndices(log)
		kept := ddmin(cands, func(keep []int) bool {
			return check(dropSet(cands, keep))
		}, left)
		if len(kept) < len(cands) && left() > 0 {
			if !try(plan, dropSet(cands, kept)) {
				// Cannot happen: ddmin only returns keep-sets it saw fail.
				// Guard anyway so a logic slip degrades to no progress
				// instead of a corrupted state.
				break
			}
			removed = true
		}

		if !removed {
			break
		}
	}

	// Verification pass: 1-minimality of every survivor, individually.
	// ddmin guarantees minimality only at its final granularity; anything
	// it missed is removed here, and what remains is certified.
	verified := left() > 0
	for pass := true; pass && left() > 0; {
		pass = false
		for _, i := range deliveredIndices(log) {
			if left() <= 0 {
				verified = false
				break
			}
			if try(plan, map[int]bool{i: true}) {
				pass = true
				break
			}
		}
		if pass {
			continue
		}
		for i := 0; i < len(plan.Ops()); i++ {
			if left() <= 0 {
				verified = false
				break
			}
			if try(plan.Without(pairSet(plan.Ops(), i)), nil) {
				pass = true
				break
			}
		}
	}
	if left() <= 0 {
		verified = false
	}

	mt.Plan = plan
	mt.Log = log
	mt.Deliveries = log.DeliveredCount()
	mt.Ops = len(plan.Ops())
	mt.Steps = steps
	mt.Minimal = verified
	mt.Deadline = sc.Deadline
	mt.Outcome = outcome
	if opt.Annotate {
		// One more replay of the adopted log, this time under tracing: runs
		// are deterministic, so the timeline depicts exactly the minimal
		// run already committed (the annotated outcome is discarded —
		// observation does not perturb the schedule).
		tr := obs.NewTrace(0)
		s := sc
		s.Plan = plan
		scenario.ExecuteReplayObserved(s, seed, mt.Replay(), &obs.Run{Trace: tr})
		mt.Spans = tr.RenderText()
	}
	mt.Outcome.Counterexample = mt.Render()
	if !verified {
		return mt, ErrBudget
	}
	return mt, nil
}

// pairSet returns the removal unit for op i: the op itself plus its
// crash/restart partner, when it has one. A crash and its restart are one
// atomic edit — removing the restart alone would turn a
// crash→restart schedule into a permanent crash (a different failure
// class the schedule's liveness guard forbids), and removing the crash
// alone would leave a restart of a never-crashed replica. A crash pairs
// forward to the nearest restart of the same replica under the same
// shard scope; a restart pairs backward. Ops without crash/restart
// identity (scenario.OpOther) shrink alone, as before.
func pairSet(ops []scenario.Op, i int) map[int]bool {
	set := map[int]bool{i: true}
	switch ops[i].Kind {
	case scenario.OpCrash:
		for j := i + 1; j < len(ops); j++ {
			if ops[j].Paired(ops[i]) {
				set[j] = true
				return set
			}
		}
	case scenario.OpRestart:
		for j := i - 1; j >= 0; j-- {
			if ops[j].Paired(ops[i]) {
				set[j] = true
				return set
			}
		}
	}
	return set
}

// deliveredIndices lists the log entries that resolved to Delivered — the
// ddmin candidate universe.
func deliveredIndices(l *schedule.Log) []int {
	var out []int
	for _, e := range l.Entries() {
		if e.Verdict == schedule.Delivered {
			out = append(out, e.Index)
		}
	}
	return out
}

// dropSet converts a ddmin keep-subset into the suppression set for the
// replay edit: every candidate not kept is dropped.
func dropSet(cands, keep []int) map[int]bool {
	in := make(map[int]bool, len(keep))
	for _, i := range keep {
		in[i] = true
	}
	drop := make(map[int]bool)
	for _, i := range cands {
		if !in[i] {
			drop[i] = true
		}
	}
	return drop
}

// sameFailure derives the default failure predicate from the baseline
// outcome: preserve the failure class, and never accept a watchdog-killed
// run as a reproduction of a failure that answered the client.
func sameFailure(base scenario.Outcome) func(scenario.Outcome) bool {
	switch {
	case !base.XAble && base.Replied:
		return func(o scenario.Outcome) bool { return !o.XAble && o.Replied && !o.TimedOut }
	case !base.XAble:
		return func(o scenario.Outcome) bool { return !o.XAble }
	default:
		return func(o scenario.Outcome) bool { return !o.Replied }
	}
}

// runDeadline derives the edited runs' virtual-time cap from the
// baseline's simulated span: generous enough for any legitimately slower
// variant (retries after a suppressed reply), tight enough that a stalled
// await costs bounded virtual time.
func runDeadline(base scenario.Outcome, sc scenario.Scenario) time.Duration {
	d := 4*base.SimTime + 4*sc.Settle + 10*time.Millisecond
	if sc.Plan != nil {
		d += sc.Plan.Horizon()
	}
	return d
}
