package shrink

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"xability/internal/scenario"
	"xability/internal/schedule"
)

// ShrinkLog is the machine-readable form of a MinTrace: everything a
// separate process needs to re-run the minimal counterexample exactly.
// Fault-plan ops carry closures and cannot serialize, so the artifact
// records the kept ops as (time, name) references into the scenario's
// materialized plan; Rebuild re-derives the plan by matching them against
// scenario.Get(Scenario).Materialize(Seed) — the same resolution Shrink
// itself started from, so the reconstruction is exact.
type ShrinkLog struct {
	// Scenario and Seed identify the run; Rebuild resolves Scenario
	// through the registry, so the artifact is portable to any process
	// that links the same scenarios (xsim always does).
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// DeadlineNS is the virtual-time cap (nanoseconds) the shrunk runs
	// executed under; replays reuse it so an edit-stalled await reports
	// TimedOut instead of hanging.
	DeadlineNS int64 `json:"deadline_ns"`
	// Ops lists the kept fault ops in plan order; BaseOps is the
	// materialized plan's full count.
	Ops     []OpRef `json:"ops"`
	BaseOps int     `json:"base_ops"`
	// Entries is the effective minimal schedule, verbatim — kept
	// deliveries plus the suppressed/dropped placeholders stream
	// alignment needs.
	Entries []EntryRef `json:"entries"`
	// Steps and Minimal echo the shrink's cost and certification.
	Steps   int  `json:"steps"`
	Minimal bool `json:"minimal"`
}

// OpRef names one kept fault op by firing time and name — enough to match
// it against the materialized plan, which is the only source of its
// closure.
type OpRef struct {
	AtNS int64  `json:"at_ns"`
	Name string `json:"name"`
}

// EntryRef mirrors schedule.Entry with stable JSON field names.
type EntryRef struct {
	From       string `json:"from"`
	To         string `json:"to"`
	Type       string `json:"type"`
	SendAtNS   int64  `json:"send_at_ns"`
	DeadlineNS int64  `json:"deadline_ns"`
	Verdict    int    `json:"verdict"`
}

// Artifact converts the minimized trace into its serializable form.
func (m MinTrace) Artifact() ShrinkLog {
	s := ShrinkLog{
		Scenario:   m.Scenario,
		Seed:       m.Seed,
		DeadlineNS: int64(m.Deadline),
		BaseOps:    m.BaseOps,
		Steps:      m.Steps,
		Minimal:    m.Minimal,
	}
	for _, op := range m.Plan.Ops() {
		s.Ops = append(s.Ops, OpRef{AtNS: int64(op.At), Name: op.Name})
	}
	for _, e := range m.Log.Entries() {
		s.Entries = append(s.Entries, EntryRef{
			From: e.From, To: e.To, Type: e.Type,
			SendAtNS: int64(e.SendAt), DeadlineNS: int64(e.Deadline),
			Verdict: int(e.Verdict),
		})
	}
	return s
}

// WriteJSON writes the artifact as indented JSON. The encoding is
// deterministic (struct field order, no maps), so equal shrinks produce
// byte-equal artifacts.
func (m MinTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Artifact())
}

// LoadShrinkLog parses an artifact written by WriteJSON.
func LoadShrinkLog(r io.Reader) (*ShrinkLog, error) {
	var s ShrinkLog
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("shrink: parse artifact: %w", err)
	}
	if s.Scenario == "" {
		return nil, fmt.Errorf("shrink: artifact names no scenario")
	}
	return &s, nil
}

// Rebuild reconstructs the runnable (scenario, replay) pair from the
// artifact: the registered scenario materialized on the recorded seed, its
// plan cut down to the kept ops, the recorded deadline re-armed, and the
// entry list rebuilt into a verbatim replay log. The kept ops must match a
// subsequence of the materialized plan — a mismatch means the registered
// scenario drifted since the artifact was written, and re-running it would
// silently reproduce something else.
func (s *ShrinkLog) Rebuild() (scenario.Scenario, *schedule.Replay, error) {
	sc, ok := scenario.Get(s.Scenario)
	if !ok {
		return scenario.Scenario{}, nil, fmt.Errorf("shrink: scenario %q not registered", s.Scenario)
	}
	sc = sc.Materialize(s.Seed)
	ops := sc.Plan.Ops()
	drop := make(map[int]bool)
	j := 0
	for i, op := range ops {
		if j < len(s.Ops) && int64(op.At) == s.Ops[j].AtNS && op.Name == s.Ops[j].Name {
			j++
			continue
		}
		drop[i] = true
	}
	if j != len(s.Ops) {
		return scenario.Scenario{}, nil, fmt.Errorf(
			"shrink: artifact keeps %d ops but only %d match the registered plan (scenario drifted?)",
			len(s.Ops), j)
	}
	sc.Plan = sc.Plan.Without(drop)
	if s.DeadlineNS > 0 {
		sc.Deadline = time.Duration(s.DeadlineNS)
	}
	log := schedule.NewLog()
	for _, e := range s.Entries {
		log.Append(schedule.Entry{
			From: e.From, To: e.To, Type: e.Type,
			SendAt:   time.Duration(e.SendAtNS),
			Deadline: time.Duration(e.DeadlineNS),
			Verdict:  schedule.Verdict(e.Verdict),
		})
	}
	return sc, &schedule.Replay{Log: log}, nil
}

// Run rebuilds the artifact and executes it once, returning the replayed
// outcome — the cross-process "does it still fail" check in one call.
func (s *ShrinkLog) Run() (scenario.Outcome, error) {
	sc, replay, err := s.Rebuild()
	if err != nil {
		return scenario.Outcome{}, err
	}
	return scenario.ExecuteTraced(sc, s.Seed, nil, replay), nil
}
