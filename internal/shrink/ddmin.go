package shrink

// ddmin is Zeller–Hildebrandt delta debugging, specialized to minimizing a
// failing subset: keep starts as the full candidate set, test(keep)
// reports whether the failure persists when only the kept elements remain,
// and the result is a subset that still fails and that ddmin could not
// reduce further (1-minimal up to the chunk granularity reached). left
// reports the remaining test budget; ddmin returns its best-so-far result
// the moment the budget runs dry.
//
// The classic n-chunk schedule applies: try each chunk alone ("reduce to
// subset"), then each complement ("reduce to complement"), then double the
// granularity. Complements are skipped at n == 2, where each complement is
// the other chunk and was just tested.
func ddmin(keep []int, test func(keep []int) bool, left func() int) []int {
	n := 2
	for len(keep) >= 2 {
		if n > len(keep) {
			n = len(keep)
		}
		chunks := split(keep, n)
		reduced := false
		for _, c := range chunks {
			if left() <= 0 {
				return keep
			}
			if test(c) {
				keep, n, reduced = c, 2, true
				break
			}
		}
		if !reduced && n > 2 {
			for i := range chunks {
				if left() <= 0 {
					return keep
				}
				comp := complement(keep, chunks[i])
				if test(comp) {
					keep, reduced = comp, true
					if n = n - 1; n < 2 {
						n = 2
					}
					break
				}
			}
		}
		if reduced {
			continue
		}
		if n < len(keep) {
			n *= 2
			continue
		}
		break
	}
	// The schedule above never tests the empty set; a failure that needs
	// no delivery at all (the fault plan alone breaks the run) should
	// shrink all the way.
	if len(keep) == 1 && left() > 0 && test(nil) {
		keep = nil
	}
	return keep
}

// split partitions s into n contiguous chunks of near-equal length.
func split(s []int, n int) [][]int {
	if n > len(s) {
		n = len(s)
	}
	chunks := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(s)/n, (i+1)*len(s)/n
		chunks = append(chunks, s[lo:hi])
	}
	return chunks
}

// complement returns the elements of s not present in drop (both are
// subsets of an index universe; order of s is preserved).
func complement(s, drop []int) []int {
	in := make(map[int]bool, len(drop))
	for _, x := range drop {
		in[x] = true
	}
	out := make([]int, 0, len(s)-len(drop))
	for _, x := range s {
		if !in[x] {
			out = append(out, x)
		}
	}
	return out
}
