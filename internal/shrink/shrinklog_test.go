package shrink

import (
	"bytes"
	"strings"
	"testing"

	"xability/internal/scenario"
)

// TestShrinkLogRoundTrip pins the machine-readable artifact: a shrink
// serialized to JSON, parsed back, and rebuilt must replay to the same
// failure — the exact cross-process re-run the artifact exists for.
func TestShrinkLogRoundTrip(t *testing.T) {
	sc, ok := scenario.Get("pb-crash-failover")
	if !ok {
		t.Fatal("pb-crash-failover not registered")
	}
	mt, err := Shrink(sc, 1, Options{})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}

	var buf bytes.Buffer
	if err := mt.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	// Determinism: equal shrinks produce byte-equal artifacts.
	var again bytes.Buffer
	if err := mt.WriteJSON(&again); err != nil {
		t.Fatalf("second WriteJSON: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("artifact encoding is not deterministic")
	}

	loaded, err := LoadShrinkLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadShrinkLog: %v", err)
	}
	if loaded.Scenario != mt.Scenario || loaded.Seed != mt.Seed {
		t.Errorf("identity drifted: %s/%d vs %s/%d", loaded.Scenario, loaded.Seed, mt.Scenario, mt.Seed)
	}
	if len(loaded.Ops) != mt.Ops || loaded.BaseOps != mt.BaseOps {
		t.Errorf("ops drifted: %d/%d vs %d/%d", len(loaded.Ops), loaded.BaseOps, mt.Ops, mt.BaseOps)
	}
	if len(loaded.Entries) != mt.Log.Len() {
		t.Errorf("entries drifted: %d vs %d", len(loaded.Entries), mt.Log.Len())
	}

	o, err := loaded.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o.XAble || !o.Replied {
		t.Errorf("rebuilt replay no longer fails: %+v", o)
	}
	if o.EffectsInForce != mt.Outcome.EffectsInForce || o.Executions != mt.Outcome.Executions {
		t.Errorf("rebuilt replay diverged from the minimal run:\nrebuilt: %+v\noriginal: %+v",
			o, mt.Outcome)
	}
}

// TestShrinkLogUnknownScenario pins the loader's drift guard.
func TestShrinkLogUnknownScenario(t *testing.T) {
	if _, err := LoadShrinkLog(strings.NewReader(`{"scenario":""}`)); err == nil {
		t.Error("empty scenario name accepted")
	}
	s := &ShrinkLog{Scenario: "no-such-scenario"}
	if _, _, err := s.Rebuild(); err == nil {
		t.Error("unregistered scenario rebuilt")
	}
}

// TestShrinkAnnotate pins the span annotation: with Annotate set the
// minimal trace carries a request timeline and Render shows it; without,
// renders are unchanged (the golden test pins that side).
func TestShrinkAnnotate(t *testing.T) {
	sc, _ := scenario.Get("pb-crash-failover")
	mt, err := Shrink(sc, 1, Options{Annotate: true})
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if len(mt.Spans) == 0 {
		t.Fatal("Annotate produced no spans")
	}
	r := mt.Render()
	if !strings.Contains(r, "request timeline") {
		t.Errorf("render misses the timeline:\n%s", r)
	}
	// The annotation replays the committed minimal schedule, so it is
	// deterministic too.
	again, err := Shrink(sc, 1, Options{Annotate: true})
	if err != nil {
		t.Fatalf("second Shrink: %v", err)
	}
	if r != again.Render() {
		t.Errorf("annotated renders differ:\n--- first\n%s\n--- second\n%s", r, again.Render())
	}
}
