package shrink

import (
	"reflect"
	"sort"
	"testing"
)

// testOracle builds a ddmin test function that fails iff every element of
// need is kept, counting invocations.
func testOracle(need []int, calls *int) func([]int) bool {
	return func(keep []int) bool {
		*calls++
		in := make(map[int]bool, len(keep))
		for _, x := range keep {
			in[x] = true
		}
		for _, n := range need {
			if !in[n] {
				return false
			}
		}
		return true
	}
}

func noBudget() int { return 1 << 20 }

func TestDDMinFindsExactCulpritSet(t *testing.T) {
	universe := make([]int, 64)
	for i := range universe {
		universe[i] = i
	}
	for _, need := range [][]int{{7}, {3, 41}, {0, 31, 63}, {}} {
		calls := 0
		got := ddmin(universe, testOracle(need, &calls), noBudget)
		sort.Ints(got)
		want := append([]int(nil), need...)
		sort.Ints(want)
		if want == nil {
			want = []int{}
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Errorf("need %v: ddmin kept %v (%d calls)", need, got, calls)
		}
	}
}

func TestDDMinRespectsBudget(t *testing.T) {
	universe := make([]int, 32)
	for i := range universe {
		universe[i] = i
	}
	budget := 3
	calls := 0
	got := ddmin(universe, func(keep []int) bool {
		calls++
		return len(keep) >= 16 // any half fails: endless reduction potential
	}, func() int { return budget - calls })
	if calls > budget {
		t.Errorf("ddmin spent %d calls over budget %d", calls, budget)
	}
	if len(got) == 0 {
		t.Error("budget-cut ddmin lost the failing set")
	}
}

func TestSplitAndComplement(t *testing.T) {
	s := []int{1, 2, 3, 4, 5}
	chunks := split(s, 2)
	if len(chunks) != 2 || len(chunks[0])+len(chunks[1]) != 5 {
		t.Errorf("split = %v", chunks)
	}
	if got := complement(s, []int{2, 4}); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Errorf("complement = %v", got)
	}
	if got := split(s, 9); len(got) != 5 {
		t.Errorf("oversplit = %v", got)
	}
}
