package consensus

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"xability/internal/vclock"
	"xability/internal/wal"
)

// ctRecoveredState runs the real recovery path over a log and extracts
// the acceptor state a restarted node acts on. The estimate of a decided
// instance is normalized away: the fold keeps just the decision (a
// decided instance answers every later message with it and never
// consults its estimate again), so the pre-decision estimate is exactly
// the state a node cannot distinguish — the equivalence claim is over
// the distinguishable rest.
type ctInstState struct {
	HasEst   bool
	Estimate any
	TS       int
	Decided  bool
	Decision any
}

func ctRecoveredState(l *wal.Log) map[Key]ctInstState {
	n := &Node{instances: make(map[Key]*ctInstance), stop: make(chan struct{}), clk: vclock.NewVirtual()}
	n.log = l
	n.Recover()
	out := make(map[Key]ctInstState, len(n.instances))
	for k, inst := range n.instances {
		st := ctInstState{
			HasEst:   inst.hasEst,
			Estimate: inst.estimate,
			TS:       inst.ts,
			Decided:  inst.decided,
			Decision: inst.decision,
		}
		if st.Decided {
			st.HasEst, st.Estimate, st.TS = false, nil, 0
		}
		out[k] = st
	}
	return out
}

// randomCTStream draws a plausible acceptor record stream: estimates with
// monotone-ish timestamps and occasional decisions, over a bounded pool
// of instances. Replay semantics are last-writer-wins, so arbitrary
// interleavings are legal input for the fold.
func randomCTStream(rng *rand.Rand, n int) []wal.Record {
	recs := make([]wal.Record, 0, n)
	for i := 0; i < n; i++ {
		space := uint8(rng.Intn(3))
		key := fmt.Sprintf("req-%d", rng.Intn(4))
		round := int32(rng.Intn(3))
		if rng.Intn(4) == 0 {
			recs = append(recs, wal.Record{
				Kind: recDecision, Key: key, Space: space, Round: round,
				Val: fmt.Sprintf("dec-%d", rng.Intn(8)),
			})
			continue
		}
		recs = append(recs, wal.Record{
			Kind: recEstimate, Key: key, Space: space, Round: round,
			Aux: int32(rng.Intn(6)), Val: fmt.Sprintf("est-%d", rng.Intn(8)),
		})
	}
	return recs
}

// TestCTCompactReplayEquivalence is the fold's contract as a property
// test: for random acceptor streams and random compaction points,
// recovering from a log that compacted mid-stream (snapshot + suffix,
// through the real Log.Compact machinery, snapshot marker included) must
// rebuild exactly the state of recovering from the uncompacted log.
func TestCTCompactReplayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stream := randomCTStream(rng, 30+rng.Intn(120))
		cuts := map[int]bool{}
		for c := 0; c < 1+rng.Intn(3); c++ {
			cuts[rng.Intn(len(stream))] = true
		}

		store := wal.NewStore(vclock.NewVirtual(), wal.Config{})
		full := store.Log("full")
		fold := store.Log("fold")
		fold.SetCompactor(ctCompact)
		for i, r := range stream {
			full.Append(r)
			fold.Append(r)
			if cuts[i] {
				fold.Compact()
			}
		}

		want := ctRecoveredState(full)
		got := ctRecoveredState(fold)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: compacted recovery diverges from full-log recovery\nfull: %+v\nfold: %+v",
				seed, want, got)
		}
	}
}

// TestCTCompactBoundsLiveLog pins the size claim: with automatic
// compaction armed, a log fed an unbounded stream over a bounded
// instance pool stays O(live state) — at most one record per instance
// plus the threshold's worth of fresh appends — instead of O(history).
func TestCTCompactBoundsLiveLog(t *testing.T) {
	const (
		appends   = 2000
		threshold = 16
	)
	rng := rand.New(rand.NewSource(7))
	store := wal.NewStore(vclock.NewVirtual(), wal.Config{CompactThreshold: threshold})
	l := store.Log("acceptor")
	l.SetCompactor(ctCompact)

	instances := map[Key]bool{}
	stream := randomCTStream(rng, appends)
	for _, r := range stream {
		l.Append(r)
		instances[Key{Space: Space(r.Space), ID: r.Key, Round: r.Round}] = true
		if bound := len(instances) + threshold + 2; l.Len() > bound {
			t.Fatalf("live log grew to %d records over %d instances (bound %d): compaction is not holding",
				l.Len(), len(instances), bound)
		}
	}
	if l.Installs() == 0 {
		t.Fatal("no snapshot installed across the stream; the threshold never triggered")
	}
	l.Compact()
	if l.Len() > len(instances)+1 {
		t.Errorf("fully compacted log holds %d records over %d instances, want at most one per instance plus the marker",
			l.Len(), len(instances))
	}
	if st := store.Stats(); st.CompactedRecords == 0 || st.LiveRecords != l.Len() {
		t.Errorf("stats disagree with the log: %+v vs len %d", st, l.Len())
	}
}
