package consensus

import (
	"fmt"
	"testing"
	"time"

	"xability/internal/fd"
	"xability/internal/simnet"
)

// BenchmarkLocalPropose measures the assumed wait-free object.
func BenchmarkLocalPropose(b *testing.B) {
	p := NewLocalProvider()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Object(At(fmt.Sprintf("k%d", i))).Propose(i)
	}
}

// BenchmarkLocalContention measures first-proposal-wins under contention.
func BenchmarkLocalContention(b *testing.B) {
	var o Local
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o.Propose(1)
		}
	})
}

// BenchmarkCTDecision measures one full message-passing consensus
// instance (three nodes, one proposer) — the per-agreement price the
// protocol pays when the assumed objects are realized over the network.
func BenchmarkCTDecision(b *testing.B) {
	net := simnet.New(simnet.Config{Seed: 1, MaxDelay: 50 * time.Microsecond})
	ids := []simnet.ProcessID{"n0", "n1", "n2"}
	var nodes []*Node
	for _, id := range ids {
		ep := net.Register(ConsEndpoint(id))
		node := NewNode(id, ep, ids, fd.NewScripted(net))
		node.Start()
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		net.Close()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := nodes[0].Propose(At(fmt.Sprintf("k%d", i)), i); got != i {
			b.Fatalf("decision = %v", got)
		}
	}
}
