package consensus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"xability/internal/fd"
	"xability/internal/simnet"
)

func TestLocalFirstProposalWins(t *testing.T) {
	var o Local
	if _, ok := o.Read(); ok {
		t.Error("fresh object has a decision")
	}
	if got := o.Propose("a"); got != "a" {
		t.Errorf("first propose = %v", got)
	}
	if got := o.Propose("b"); got != "a" {
		t.Errorf("second propose = %v, want a", got)
	}
	v, ok := o.Read()
	if !ok || v != "a" {
		t.Errorf("Read = (%v, %v)", v, ok)
	}
}

func TestLocalConcurrentAgreement(t *testing.T) {
	var o Local
	const n = 32
	results := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = o.Propose(i)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("agreement violated: %v vs %v", results[i], results[0])
		}
	}
	// Validity: the decision is one of the proposals.
	if d := results[0].(int); d < 0 || d >= n {
		t.Errorf("decided value %v was never proposed", d)
	}
}

func TestLocalProviderKeying(t *testing.T) {
	p := NewLocalProvider()
	a := p.Object(At("k1"))
	b := p.Object(At("k1"))
	c := p.Object(At("k2"))
	a.Propose("x")
	if v, ok := b.Read(); !ok || v != "x" {
		t.Error("same key must return the same instance")
	}
	if _, ok := c.Read(); ok {
		t.Error("different key leaked a decision")
	}
	if len(p.Keys()) != 2 {
		t.Errorf("Keys = %v", p.Keys())
	}
}

// ctHarness assembles n CT nodes over a simulated network.
type ctHarness struct {
	net   *simnet.Network
	nodes []*Node
	dets  []*fd.Scripted
	ids   []simnet.ProcessID
}

func newCTHarness(t *testing.T, n int, seed int64) *ctHarness {
	t.Helper()
	h := &ctHarness{net: simnet.New(simnet.Config{Seed: seed, MaxDelay: 200 * time.Microsecond})}
	for i := 0; i < n; i++ {
		h.ids = append(h.ids, simnet.ProcessID(fmt.Sprintf("n%d", i)))
	}
	for i := 0; i < n; i++ {
		ep := h.net.Register(ConsEndpoint(h.ids[i]))
		det := fd.NewScripted(h.net)
		h.dets = append(h.dets, det)
		node := NewNode(h.ids[i], ep, h.ids, det)
		node.Start()
		h.nodes = append(h.nodes, node)
	}
	t.Cleanup(func() {
		for _, nd := range h.nodes {
			nd.Stop()
		}
		h.net.Close()
	})
	return h
}

func TestCTSingleProposer(t *testing.T) {
	h := newCTHarness(t, 3, 1)
	got := h.nodes[0].Propose(At("k"), "v0")
	if got != "v0" {
		t.Errorf("decision = %v, want v0", got)
	}
	// Other nodes learn the decision.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := h.nodes[2].Read(At("k")); ok {
			if v != "v0" {
				t.Fatalf("node 2 decided %v", v)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("decision never propagated")
}

func TestCTConcurrentProposersAgree(t *testing.T) {
	h := newCTHarness(t, 3, 2)
	results := make([]any, 3)
	var wg sync.WaitGroup
	for i := range h.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = h.nodes[i].Propose(At("k"), fmt.Sprintf("v%d", i))
		}(i)
	}
	wg.Wait()
	for i := 1; i < 3; i++ {
		if results[i] != results[0] {
			t.Fatalf("agreement violated: %v", results)
		}
	}
	valid := false
	for i := range h.nodes {
		if results[0] == fmt.Sprintf("v%d", i) {
			valid = true
		}
	}
	if !valid {
		t.Errorf("decided value %v was never proposed", results[0])
	}
}

func TestCTIndependentInstances(t *testing.T) {
	h := newCTHarness(t, 3, 3)
	var wg sync.WaitGroup
	decisions := make([]any, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			decisions[k] = h.nodes[k%3].Propose(At(fmt.Sprintf("key-%d", k)), fmt.Sprintf("val-%d", k))
		}(k)
	}
	wg.Wait()
	for k := 0; k < 4; k++ {
		if decisions[k] != fmt.Sprintf("val-%d", k) {
			t.Errorf("instance %d decided %v (single proposer must win its own instance)", k, decisions[k])
		}
	}
}

func TestCTToleratesMinorityCrash(t *testing.T) {
	h := newCTHarness(t, 3, 4)
	h.net.Crash(ConsEndpoint(h.ids[2]))
	h.nodes[2].Stop()

	done := make(chan any, 1)
	go func() { done <- h.nodes[0].Propose(At("k"), "v") }()
	select {
	case v := <-done:
		if v != "v" {
			t.Errorf("decision = %v", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("consensus did not terminate with f=1 crash, n=3")
	}
}

func TestCTCrashedCoordinatorRotation(t *testing.T) {
	h := newCTHarness(t, 3, 5)
	// Round 1's coordinator is ids[1%3] = n1; crash it so the instance
	// must rotate to another coordinator. The harness only registers the
	// consensus endpoints, so completeness is injected explicitly (the
	// full-protocol Crash in internal/core crashes the base process too,
	// which the scripted detector picks up automatically).
	h.net.Crash(ConsEndpoint(h.ids[1]))
	h.nodes[1].Stop()
	h.dets[0].SetSuspected(h.ids[1], true)
	h.dets[2].SetSuspected(h.ids[1], true)

	done := make(chan any, 1)
	go func() { done <- h.nodes[0].Propose(At("k"), "v") }()
	select {
	case v := <-done:
		if v != "v" {
			t.Errorf("decision = %v", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("consensus stuck on crashed coordinator")
	}
}

func TestCTFalseSuspicionStillAgrees(t *testing.T) {
	h := newCTHarness(t, 3, 6)
	// n2 permanently (falsely) suspects everyone: it nacks every proposal
	// it is asked about, but a majority of accurate nodes still decides.
	h.dets[2].SetSuspected(h.ids[0], true)
	h.dets[2].SetSuspected(h.ids[1], true)

	results := make([]any, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = h.nodes[i].Propose(At("k"), fmt.Sprintf("v%d", i))
		}(i)
	}
	wg.Wait()
	if results[0] != results[1] {
		t.Fatalf("agreement violated under false suspicion: %v", results)
	}
}

// TestCTPartitionStallsAndHealResumes pins the loss-recovery machinery: a
// proposer isolated by a partition decides nothing while the cut is in
// force (its detector does not suspect the live, merely unreachable
// coordinator), and the stalled instance resumes and decides once the
// network heals — driven by the participant's periodic estimate
// retransmission.
func TestCTPartitionStallsAndHealResumes(t *testing.T) {
	h := newCTHarness(t, 3, 7)
	clk := h.net.Clock()
	clk.Enter()
	h.net.Partition([]simnet.ProcessID{"n0"}, []simnet.ProcessID{"n1", "n2"})
	done := make(chan any, 1)
	clk.Go(func() { done <- h.nodes[0].Propose(At("k"), "v0") })

	// 50ms of simulated time: round 1's coordinator (n1) is on the other
	// side of the cut and never suspected, so the instance must stall.
	clk.Sleep(50 * time.Millisecond)
	select {
	case v := <-done:
		t.Fatalf("decision %v during partition", v)
	default:
	}
	for i := 1; i < 3; i++ {
		if _, ok := h.nodes[i].Read(At("k")); ok {
			t.Fatalf("node %d decided during partition", i)
		}
	}

	h.net.Heal()
	clk.Exit()
	if v := <-done; v != "v0" {
		t.Fatalf("post-heal decision = %v, want v0", v)
	}
	h.net.Quiesce()
	for i := 0; i < 3; i++ {
		if v, ok := h.nodes[i].Read(At("k")); !ok || v != "v0" {
			t.Errorf("node %d post-heal state = (%v, %v), want v0", i, v, ok)
		}
	}
}

// TestCTPartitionedMinorityCatchesUpAfterHeal pins the decided-reply path:
// the majority side decides while a node is cut off; after Heal, the
// latecomer's first contact with any decided node returns the decision.
func TestCTPartitionedMinorityCatchesUpAfterHeal(t *testing.T) {
	h := newCTHarness(t, 3, 8)
	clk := h.net.Clock()
	clk.Enter()
	h.net.Partition([]simnet.ProcessID{"n0", "n1"}, []simnet.ProcessID{"n2"})
	if v := h.nodes[0].Propose(At("k"), "v0"); v != "v0" {
		t.Fatalf("majority-side decision = %v, want v0", v)
	}
	h.net.Quiesce()
	if _, ok := h.nodes[2].Read(At("k")); ok {
		t.Fatal("isolated node learned the decision through the partition")
	}
	h.net.Heal()
	// The latecomer proposes its own value; agreement forces the earlier
	// decision.
	if v := h.nodes[2].Propose(At("k"), "v2"); v != "v0" {
		t.Fatalf("latecomer decision = %v, want v0", v)
	}
	clk.Exit()
}

func TestCTObjectAdapter(t *testing.T) {
	h := newCTHarness(t, 3, 7)
	obj := h.nodes[0].Object(At("adapter-key"))
	if _, ok := obj.Read(); ok {
		t.Error("fresh instance decided")
	}
	if got := obj.Propose("x"); got != "x" {
		t.Errorf("Propose = %v", got)
	}
	if v, ok := obj.Read(); !ok || v != "x" {
		t.Errorf("Read = (%v, %v)", v, ok)
	}
}

func TestCTProposeAfterDecision(t *testing.T) {
	h := newCTHarness(t, 3, 8)
	first := h.nodes[0].Propose(At("k"), "v0")
	second := h.nodes[1].Propose(At("k"), "v1")
	if first != second {
		t.Errorf("late proposal got %v, first got %v", second, first)
	}
}

// TestCatchUpAfterPartitionDesync pins the round catch-up rule against the
// wedge the seeded random fault generator found: n2 is crashed, and n1 is
// cut off (and suspected) while n0 runs the instance alone — n0 burns
// through round 1 (coordinator n1, suspected), round 2 (coordinator n2,
// crashed) and stalls as round 3's coordinator, its earlier round-1
// estimate black-holed by the cut. After the heal, n1 discovers the
// instance from n0's round-3 re-announcements but starts at round 1 — as
// round 1's own coordinator, waiting for a round-1 estimate quorum that
// can never assemble, since n0 only retransmits round-3 traffic. Without
// the catch-up rule both nodes wait on each other forever; with it, n1
// abandons the stale round and joins round 3, and the instance decides.
func TestCatchUpAfterPartitionDesync(t *testing.T) {
	h := newCTHarness(t, 3, 23)
	clk := h.net.Clock()

	// Crash n2 outright.
	h.net.Crash(h.ids[2])
	h.net.Crash(ConsEndpoint(h.ids[2]))
	h.nodes[2].Stop()

	clk.Enter()
	// Cut n1 off and make n0 suspect it, so n0 leaves round 1 behind while
	// round 1's traffic is black-holed.
	h.net.Partition([]simnet.ProcessID{"n1"}, []simnet.ProcessID{"n0", "n2"})
	h.dets[0].SetSuspected(h.ids[1], true)

	done := make(chan any, 1)
	clk.Go(func() { done <- h.nodes[0].Propose(At("k"), "v0") })

	// Let n0 rotate through the dead rounds and stall as round 3's
	// coordinator behind the cut.
	clk.Sleep(20 * time.Millisecond)
	select {
	case v := <-done:
		t.Fatalf("decision %v during partition (quorum was unreachable)", v)
	default:
	}

	h.net.Heal()
	h.dets[0].SetSuspected(h.ids[1], false)
	clk.Exit()

	select {
	case v := <-done:
		if v != "v0" {
			t.Fatalf("post-heal decision = %v, want v0", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("instance stayed wedged after heal: round catch-up did not fire")
	}
	h.net.Quiesce()
}
