// Package consensus provides the consensus objects of §5.2 [Her91]: a
// propose() primitive that takes a proposed value and returns the single
// decided value, and a read() primitive that returns the decided value, if
// any, or ⊥.
//
// The paper assumes these objects exist and does not discuss their
// implementation. This package provides both the assumed abstraction and a
// real implementation:
//
//   - Local: a linearizable, wait-free, first-proposal-wins object in shared
//     memory — the abstraction exactly as assumed. A LocalProvider hands out
//     Local objects keyed by instance name; the protocol's consensus arrays
//     (owner-agreement, result-agreement, outcome-agreement) are key spaces
//     over one provider.
//   - Protocol (ct.go): an asynchronous message-passing consensus in the
//     style of Chandra–Toueg's ◇S rotating-coordinator algorithm [CT96],
//     running over simnet with majority quorums, tolerating f < n/2 crashes
//     and arbitrary false suspicion. Each replica owns a Node; Nodes expose
//     the same Object interface per instance key.
//
// Values flowing through consensus are ordinary Go values (the network is
// in-memory); they must be treated as immutable once proposed.
package consensus

import (
	"fmt"
	"sort"
	"sync"
)

// Space partitions the instance key space. The protocol's three consensus
// arrays are spaces over one provider; SpaceApp is free-form (tests,
// benchmarks, applications embedding the substrate directly).
type Space uint8

const (
	// SpaceApp holds free-form instances keyed by ID alone.
	SpaceApp Space = iota
	// SpaceOwner is the protocol's owner-agreement array.
	SpaceOwner
	// SpaceResult is the protocol's result-agreement array.
	SpaceResult
	// SpaceOutcome is the protocol's outcome-agreement array.
	SpaceOutcome
)

func (s Space) String() string {
	switch s {
	case SpaceOwner:
		return "owner"
	case SpaceResult:
		return "result"
	case SpaceOutcome:
		return "outcome"
	default:
		return "app"
	}
}

// Key identifies one consensus instance. It is a comparable value — the
// protocol's hot paths build keys by struct literal ({space, request,
// round}) instead of formatting strings, so keying an instance costs no
// allocation and map lookups hash a fixed shape. At returns the key for a
// free-form ID.
type Key struct {
	Space Space
	ID    string
	Round int32
}

// At returns a free-form (SpaceApp) key, the idiom for tests and embedders.
func At(id string) Key { return Key{ID: id} }

// String renders the key for logs and debug output.
func (k Key) String() string {
	if k.Space == SpaceApp && k.Round == 0 {
		return k.ID
	}
	return fmt.Sprintf("%s/%s/%d", k.Space, k.ID, k.Round)
}

// Object is one consensus instance.
type Object interface {
	// Propose submits v and returns the decided value: v itself if this
	// proposal was first, the earlier decision otherwise. Propose blocks
	// until a decision is available.
	Propose(v any) any
	// Read returns the decided value, or ok=false if no value has been
	// decided yet (the paper's ⊥).
	Read() (any, bool)
}

// Provider hands out consensus objects by instance key. Calling Object with
// the same key returns (a handle on) the same instance.
type Provider interface {
	Object(key Key) Object
}

// Local is a linearizable first-proposal-wins consensus object. The zero
// value is ready to use.
type Local struct {
	mu      sync.Mutex
	decided bool //xvet:durable
	value   any  //xvet:durable
}

// Propose implements Object. It is wait-free: one critical section.
func (l *Local) Propose(v any) any {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.decided {
		l.decided = true //xvet:ok durablewrite Local is the paper's assumed shared-memory object: linearizable, crash-free, nothing to persist
		l.value = v      //xvet:ok durablewrite Local is the paper's assumed shared-memory object: linearizable, crash-free, nothing to persist
	}
	return l.value
}

// Read implements Object.
func (l *Local) Read() (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.value, l.decided
}

// LocalProvider is a concurrency-safe registry of Local objects. The zero
// value is ready to use.
type LocalProvider struct {
	mu      sync.Mutex
	objects map[Key]*Local
}

// NewLocalProvider returns an empty provider.
func NewLocalProvider() *LocalProvider { return &LocalProvider{} }

// Object implements Provider.
func (p *LocalProvider) Object(key Key) Object {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.objects == nil {
		p.objects = make(map[Key]*Local)
	}
	o, ok := p.objects[key]
	if !ok {
		o = &Local{}
		p.objects[key] = o
	}
	return o
}

// Keys returns the instance keys created so far in key order, for
// introspection (the cleaner's "largest defined index" scan uses Read on
// candidate keys instead, but tests want visibility). The sort keeps the
// returned order independent of Go's randomized map iteration.
func (p *LocalProvider) Keys() []Key {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Key, 0, len(p.objects))
	for k := range p.objects {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// less orders keys by (space, id, round) — a total order for deterministic
// renders of key sets.
func (k Key) less(o Key) bool {
	if k.Space != o.Space {
		return k.Space < o.Space
	}
	if k.ID != o.ID {
		return k.ID < o.ID
	}
	return k.Round < o.Round
}
