package consensus

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"xability/internal/fd"
	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/vclock"
	"xability/internal/wal"
)

// Node is one replica's participant in a message-passing consensus service
// in the style of Chandra–Toueg's ◇S rotating-coordinator algorithm [CT96].
// A set of n Nodes (one per replica, all listing the same peers in the same
// order) runs any number of independent consensus instances, multiplexed by
// instance key, tolerating f < n/2 crashes and arbitrary false suspicions
// from the supplied failure detector.
//
// Per instance and round r, the coordinator is peers[r mod n]:
//
//  1. every participant sends its (estimate, ts) to the coordinator;
//  2. the coordinator gathers a majority of estimates, adopts a non-⊥
//     estimate with maximal ts, and broadcasts it as the round's proposal;
//  3. each participant waits for the proposal or for its detector to
//     suspect the coordinator; it acks and adopts the proposal (ts := r),
//     or nacks and moves to the next round;
//  4. a coordinator that gathers a majority of acks decides and reliably
//     broadcasts the decision; receivers re-broadcast once and decide.
//
// Agreement follows from quorum intersection on (estimate, ts) as in
// [CT96]; termination follows from eventual accuracy of the detector
// (◇P implies ◇S) plus reliable channels.
//
// Processes that never propose still participate: they answer with a ⊥
// estimate that the coordinator ignores when choosing a value, so a single
// proposer suffices for a decision.
type Node struct {
	self  simnet.ProcessID
	peers []simnet.ProcessID
	ep    *simnet.Endpoint
	det   fd.Detector
	clk   vclock.Clock
	log   *wal.Log     // nil: in-memory acceptor (no crash-recovery)
	m     *obs.Metrics // nil-safe run metrics, pulled from the endpoint

	mu        sync.Mutex
	instances map[Key]*ctInstance
	stopped   bool
	stop      chan struct{}
}

// ConsEndpoint returns the conventional process ID of p's consensus
// endpoint.
func ConsEndpoint(p simnet.ProcessID) simnet.ProcessID { return p + "/cons" }

// NewNode builds a consensus participant. ep must be registered as
// ConsEndpoint(self); peers lists all replicas (including self) in an order
// common to every node.
func NewNode(self simnet.ProcessID, ep *simnet.Endpoint, peers []simnet.ProcessID, det fd.Detector) *Node {
	return &Node{
		self:      self,
		peers:     append([]simnet.ProcessID(nil), peers...),
		ep:        ep,
		det:       det,
		clk:       ep.Clock(),
		m:         ep.Metrics(),
		instances: make(map[Key]*ctInstance),
		stop:      make(chan struct{}),
	}
}

// Start launches the receive loop on the network clock.
func (n *Node) Start() { n.clk.Go(n.recvLoop) }

// WAL record kinds (see DESIGN.md §9): an acceptor's promise is exactly
// the (estimate, ts) pairs it acked and the decisions it learned.
const (
	recEstimate = "est" // Key/Space/Round: instance; Aux: adoption ts; Val: estimate
	recDecision = "dec" // Key/Space/Round: instance; Val: decision
)

// SetLog makes the node durable: acceptor state — the (estimate, ts) pair
// adopted before each ack, and every learned decision — is forced to l
// before the message that reveals it is sent. Quorum intersection on
// acked estimates is what carries agreement across a crash; an acceptor
// that acked in memory only and restarted amnesiac could let two rounds
// decide differently. Call before Start. The log's compactor is
// installed here too: the acceptor's snapshot is its promise set, one
// record per instance.
func (n *Node) SetLog(l *wal.Log) {
	n.log = l
	if l != nil {
		l.SetCompactor(ctCompact)
	}
}

// ctCompact is the acceptor's snapshot fold (wal.Compactor): the durable
// state an acceptor must carry is, per instance, the last adopted
// (estimate, ts) pair — or just the decision once one is learned, since
// a decided instance answers every later message with the decision and
// never consults its estimate again. Replaying the fold's output yields
// exactly the state of replaying the full prefix: est/dec records are
// last-writer-wins per instance.
func ctCompact(prefix []wal.Record) []wal.Record {
	type ik struct {
		space uint8
		id    string
		round int32
	}
	type lastIdx struct{ est, dec int }
	last := make(map[ik]lastIdx, len(prefix))
	for i, r := range prefix {
		k := ik{r.Space, r.Key, r.Round}
		s, ok := last[k]
		if !ok {
			s = lastIdx{est: -1, dec: -1}
		}
		switch r.Kind {
		case recEstimate:
			s.est = i
		case recDecision:
			s.dec = i
		default:
			continue // snapshot markers and foreign kinds fold away
		}
		last[k] = s
	}
	keep := make([]bool, len(prefix))
	// Map-order walk is safe here: it only sets order-independent keep
	// flags; output order comes from the prefix scan below.
	for _, s := range last {
		if s.dec >= 0 {
			keep[s.dec] = true
		} else if s.est >= 0 {
			keep[s.est] = true
		}
	}
	out := make([]wal.Record, 0, len(last))
	for i, r := range prefix {
		if keep[i] {
			out = append(out, r)
		}
	}
	return out
}

// Recover rebuilds acceptor state from the node's log: the instance map
// is repopulated with each instance's last adopted (estimate, ts) and any
// learned decision. Call after SetLog and before Start. A recovered node
// participates passively — it answers estimates and relays decisions —
// until a Propose or an incoming message restarts its round loops.
func (n *Node) Recover() {
	if n.log == nil {
		return
	}
	replayed := int64(0)
	n.log.Replay(func(r wal.Record) {
		if r.Kind != recEstimate && r.Kind != recDecision {
			return // snapshot markers carry no acceptor state
		}
		replayed++
		key := Key{Space: Space(r.Space), ID: r.Key, Round: r.Round}
		inst := n.instance(key)
		inst.mu.Lock()
		switch r.Kind {
		case recEstimate:
			// Replay, not new state: the pair was persisted before its ack
			// went out, and later records overwrite earlier ones just as
			// later adoptions did in the crashed incarnation.
			inst.estimate, inst.hasEst, inst.ts = r.Val, true, int(r.Aux) //xvet:ok durablewrite recovery replays the log; re-persisting here would double every record
		case recDecision:
			inst.decided, inst.decision = true, r.Val //xvet:ok durablewrite recovery replays the log; re-persisting here would double every record
		}
		inst.mu.Unlock()
	})
	n.m.Add(obs.WALReplayed, replayed)
}

// persistEstimate forces an adopted (estimate, ts) pair to the log before
// the caller acks it. Callers must not hold inst.mu: the sync wait is a
// scheduled event, and goroutines blocked on a held mutex count as
// runnable to the clock.
func (n *Node) persistEstimate(key Key, v any, ts int) {
	if n.log == nil {
		return
	}
	n.log.Append(wal.Record{Kind: recEstimate, Key: key.ID, Space: uint8(key.Space), Round: key.Round, Aux: int32(ts), Val: v})
}

// persistDecision forces a learned decision to the log before it is
// relayed or acted on. Same locking rule as persistEstimate.
func (n *Node) persistDecision(key Key, v any) {
	if n.log == nil {
		return
	}
	n.log.Append(wal.Record{Kind: recDecision, Key: key.ID, Space: uint8(key.Space), Round: key.Round, Val: v})
}

// Stop terminates the node's goroutines. In-flight Propose calls unblock
// with the zero value.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stop)
	insts := make([]*ctInstance, 0, len(n.instances))
	for _, inst := range n.instances {
		insts = append(insts, inst)
	}
	n.mu.Unlock()
	// Waits on instance conditions are event-driven; wake them so blocked
	// Propose calls and round loops observe the stop promptly. Wake in key
	// order: broadcast order decides which goroutines become runnable
	// first at teardown, and map order would leak Go's per-run iteration
	// randomization into the schedule.
	sort.Slice(insts, func(i, j int) bool { return insts[i].key.less(insts[j].key) })
	for _, inst := range insts {
		inst.mu.Lock()
		inst.cond.Broadcast()
		inst.mu.Unlock()
	}
}

type ctKind int

const (
	ctEstimate ctKind = iota
	ctProposal
	ctAck
	ctNack
	ctDecide
)

type ctMsg struct {
	Key      Key
	Round    int
	Kind     ctKind
	Value    any
	TS       int
	HasValue bool
	From     simnet.ProcessID
}

type ctInstance struct {
	mu   sync.Mutex
	cond vclock.Cond
	key  Key
	// The acceptor's durable state (xvet:durable): writes must be paired
	// with a WAL persist — the durablewrite analyzer flags any assignment
	// in a function that never persists.
	estimate any  //xvet:durable
	hasEst   bool //xvet:durable
	ts       int  //xvet:durable
	decided  bool //xvet:durable
	decision any  //xvet:durable
	running  bool
	// inbox buffers messages per (round, kind); the round loop consumes
	// them as its phases come due.
	inbox []ctMsg
}

func (n *Node) instance(key Key) *ctInstance {
	n.mu.Lock()
	defer n.mu.Unlock()
	inst, ok := n.instances[key]
	if !ok {
		inst = &ctInstance{key: key, ts: -1}
		inst.cond = n.clk.NewCond(&inst.mu)
		n.instances[key] = inst
	}
	return inst
}

// Object returns a handle implementing the Object interface for one
// instance key on this node.
func (n *Node) Object(key Key) Object { return &ctObject{n: n, key: key} }

type ctObject struct {
	n   *Node
	key Key
}

func (o *ctObject) Propose(v any) any { return o.n.Propose(o.key, v) }
func (o *ctObject) Read() (any, bool) { return o.n.Read(o.key) }
func (o *ctObject) String() string    { return fmt.Sprintf("ct:%s@%s", o.key, o.n.self) }

// Propose submits a value for the instance and blocks until a decision is
// known locally (or the node stops, returning nil). It attaches the calling
// goroutine to the network clock for the duration, so it is safe from any
// goroutine — protocol servers and test drivers alike.
func (n *Node) Propose(key Key, v any) any {
	n.clk.Enter()
	defer n.clk.Exit()
	inst := n.instance(key)
	inst.mu.Lock()
	if inst.decided {
		d := inst.decision
		inst.mu.Unlock()
		return d
	}
	if !inst.hasEst {
		// The proposer's own initial estimate (ts 0) constrains nothing —
		// no ack has gone out for it — so it needs no persistence: a
		// restarted proposer simply re-proposes.
		inst.estimate, inst.hasEst, inst.ts = v, true, 0 //xvet:ok durablewrite ts-0 initial estimate: never acked, constrains no quorum, safe to lose
	}
	n.ensureRunning(inst)
	for !inst.decided {
		select {
		case <-n.stop:
			inst.mu.Unlock()
			return nil
		default:
		}
		inst.cond.Wait()
	}
	d := inst.decision
	inst.mu.Unlock()
	return d
}

// Read returns the locally known decision.
func (n *Node) Read(key Key) (any, bool) {
	inst := n.instance(key)
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.decision, inst.decided
}

// ensureRunning launches the round loop once; callers hold inst.mu.
func (n *Node) ensureRunning(inst *ctInstance) {
	if inst.running {
		return
	}
	inst.running = true
	n.clk.Go(func() { n.roundLoop(inst) })
}

func (n *Node) recvLoop() {
	for {
		msg, ok := n.ep.Recv()
		if !ok {
			return
		}
		cm, ok := msg.Payload.(ctMsg)
		if !ok {
			continue
		}
		cm.From = msg.From
		inst := n.instance(cm.Key)
		inst.mu.Lock()
		if cm.Kind == ctDecide {
			first := !inst.decided
			if first {
				inst.decided, inst.decision = true, cm.Value
				inst.cond.Broadcast()
			}
			inst.mu.Unlock()
			if first {
				n.m.Inc(obs.ConsDecisions)
				// Persist before relaying (a decision, once forwarded, must
				// survive this node's crash), then reliable-broadcast: relay
				// the decision once.
				n.persistDecision(cm.Key, cm.Value)
				for _, p := range n.peers {
					if p != n.self {
						n.ep.Send(ConsEndpoint(p), "cons", ctMsg{Key: cm.Key, Kind: ctDecide, Value: cm.Value})
					}
				}
			}
			continue
		}
		if inst.decided {
			// Any late message (an estimate resent across a healed
			// partition, a straggling ack) is answered with the decision,
			// so a node that missed the decide relay recovers as soon as a
			// link to any decided node comes back.
			d := inst.decision
			inst.mu.Unlock()
			n.ep.Send(msg.From, "cons", ctMsg{Key: cm.Key, Kind: ctDecide, Value: d})
			continue
		}
		inst.inbox = append(inst.inbox, cm)
		n.ensureRunning(inst) // participate passively when contacted
		inst.cond.Broadcast()
		inst.mu.Unlock()
	}
}

// catchUp reports whether the inbox holds a message of a later round —
// evidence that a quorum already moved past this one (a peer only reaches
// round r+1 after round r's coordinator phase resolved or was given up
// on). A node stalled in an old round can never assemble that round's
// quorum once its peers have moved on, because peers retransmit only
// their current phase's messages: without a catch-up rule, a partition
// window that eats one round's traffic wedges the instance forever even
// after the heal (found by the seeded random fault generator; pinned by
// TestCatchUpAfterPartitionDesync). Callers hold inst.mu.
func (inst *ctInstance) catchUp(round int) bool {
	for _, m := range inst.inbox {
		if m.Round > round {
			return true
		}
	}
	return false
}

// take removes and returns buffered messages matching round and kind;
// callers hold inst.mu.
func (inst *ctInstance) take(round int, kind ctKind) []ctMsg {
	var got []ctMsg
	rest := inst.inbox[:0]
	for _, m := range inst.inbox {
		if m.Round == round && m.Kind == kind {
			got = append(got, m)
		} else {
			rest = append(rest, m)
		}
	}
	inst.inbox = rest
	return got
}

// ctPoll bounds how stale a coordinator-suspicion check may get while a
// participant waits for a proposal. The wait itself is event-driven (new
// messages broadcast the instance condition); the timeout only re-arms the
// detector probe, and on the virtual clock it costs no wall time.
const ctPoll = 500 * time.Microsecond

// ctResendAfter is how long a phase may stall before retransmitting the
// message that drives it. Channels between correct connected processes are
// reliable, so in fault-free runs nothing is ever resent; retransmission
// only matters when the link plane black-holes traffic (partitions, dropped
// links) — it is what lets a stalled instance resume once the network
// heals.
const ctResendAfter = 4 * time.Millisecond

// ctCatchUpAfter is how long a phase must have stalled before later-round
// inbox evidence makes it give up (see catchUp). The grace period matters
// because the network is not FIFO: a participant acks round r and
// immediately broadcasts its round r+1 estimate, and the estimate can
// overtake the ack in delivery order. A coordinator that treated the early
// r+1 estimate as "the quorum moved on" would abandon a round it was about
// to win — on channels the fault plane has not touched, the ack is still
// en route and arrives within the network's delay bound, far inside this
// window. Only when the phase has genuinely stalled (the driving message
// was black-holed, retransmission has had a chance) is the later-round
// evidence trusted.
const ctCatchUpAfter = 2 * ctResendAfter

func (n *Node) roundLoop(inst *ctInstance) {
	majority := len(n.peers)/2 + 1
	for round := 1; ; round++ {
		select {
		case <-n.stop:
			return
		default:
		}
		coord := n.peers[round%len(n.peers)]
		n.m.Inc(obs.ConsRounds)

		// Phase 1: send the estimate to every peer, not only the
		// coordinator. The coordinator is the only consumer, but the
		// broadcast doubles as instance discovery: a node that has never
		// heard of this instance starts participating when the first
		// estimate reaches it — otherwise a proposer that coordinates the
		// round alone could never assemble a majority.
		inst.mu.Lock()
		if inst.decided {
			inst.mu.Unlock()
			return
		}
		est := ctMsg{Key: inst.key, Round: round, Kind: ctEstimate, Value: inst.estimate, TS: inst.ts, HasValue: inst.hasEst}
		inst.mu.Unlock()
		for _, p := range n.peers {
			n.sendCons(p, est)
		}

		// Phase 2 (coordinator): gather a majority of estimates including
		// at least one real value, then broadcast a proposal. Estimates are
		// deduplicated by sender — retransmission across a lossy link plane
		// may deliver the same peer's estimate more than once, and a quorum
		// must count distinct processes.
		if coord == n.self {
			var got []ctMsg
			seen := make(map[simnet.ProcessID]int)
			ok, stale := n.waitCond(inst, round, func() bool {
				for _, m := range inst.take(round, ctEstimate) {
					if j, dup := seen[m.From]; dup {
						// A retransmitted estimate can carry newer state
						// than the first: a proposer crash can orphan an
						// instance every survivor discovered passively
						// (all-⊥ estimates), and the survivors' cleaners
						// then Propose real values mid-round. Upgrading a
						// sender's entry is what lets that late real
						// estimate un-wedge the gather; keeping the stale ⊥
						// would block this phase forever.
						if (m.HasValue && !got[j].HasValue) || (m.HasValue == got[j].HasValue && m.TS > got[j].TS) {
							got[j] = m
						}
						continue
					}
					seen[m.From] = len(got)
					got = append(got, m)
				}
				real := 0
				for _, m := range got {
					if m.HasValue {
						real++
					}
				}
				return len(got) >= majority && real > 0
			}, nil, func() {
				// Stalled gathering: re-announce the round so peers cut off
				// when the original estimates went out rediscover the
				// instance once links heal. Rebuilt from the live instance
				// state, not phase 1's snapshot: a Propose that landed
				// after the round started must reach peers (and this
				// node's own gather, via the self-send) as a real value.
				for _, p := range n.peers {
					n.sendCons(p, n.currentEstimate(inst, round))
				}
			})
			if !ok {
				return
			}
			if stale {
				continue // the instance moved past this round; catch up
			}
			best := got[0]
			for _, m := range got {
				if m.HasValue && (!best.HasValue || m.TS > best.TS) {
					best = m
				}
			}
			prop := ctMsg{Key: inst.key, Round: round, Kind: ctProposal, Value: best.Value}
			for _, p := range n.peers {
				n.sendCons(p, prop)
			}
		}

		// Phase 3: adopt the coordinator's proposal or give up on it. A
		// participant whose wait stalls re-sends its estimate to the
		// coordinator: if the estimate was black-holed, the retransmission
		// is what un-wedges the coordinator's phase 2 after a heal.
		var proposal *ctMsg
		suspected := false
		ok, stale := n.waitCond(inst, round, func() bool {
			if ms := inst.take(round, ctProposal); len(ms) > 0 {
				proposal = &ms[0]
				return true
			}
			return false
		}, func() bool {
			suspected = n.det.Suspect(coord)
			return suspected
		}, func() {
			// Rebuild rather than resend phase 1's snapshot: see the
			// coordinator's resend above for why the live estimate matters.
			n.sendCons(coord, n.currentEstimate(inst, round))
		})
		if !ok {
			return
		}
		if stale {
			// Give up on this round's proposal like a nack would (the nack
			// still goes out: the coordinator's reply quorum may need it).
			n.sendCons(coord, ctMsg{Key: inst.key, Round: round, Kind: ctNack})
			continue
		}
		if proposal != nil {
			inst.mu.Lock()
			inst.estimate, inst.hasEst, inst.ts = proposal.Value, true, round
			inst.mu.Unlock()
			// Persist the adoption before acking: the ack is a promise that
			// this (estimate, ts) constrains every later round's choice, and
			// quorum intersection only holds across a restart if the promise
			// survives it.
			n.persistEstimate(inst.key, proposal.Value, round)
			n.sendCons(coord, ctMsg{Key: inst.key, Round: round, Kind: ctAck})
		} else {
			n.sendCons(coord, ctMsg{Key: inst.key, Round: round, Kind: ctNack})
		}

		// Phase 4 (coordinator): wait for a majority of replies; decide when
		// all of them are acks ([CT96]). Waiting for more than a majority
		// could block forever on crashed participants. Replies are
		// deduplicated by sender for the same reason estimates are; a stall
		// re-broadcasts the proposal in case it was black-holed.
		if coord == n.self {
			acks, nacks := 0, 0
			replied := make(map[simnet.ProcessID]bool)
			var value any
			inst.mu.Lock()
			value = inst.estimate
			prop := ctMsg{Key: inst.key, Round: round, Kind: ctProposal, Value: value}
			inst.mu.Unlock()
			ok, stale := n.waitCond(inst, round, func() bool {
				for _, m := range inst.take(round, ctAck) {
					if !replied[m.From] {
						replied[m.From] = true
						acks++
					}
				}
				for _, m := range inst.take(round, ctNack) {
					if !replied[m.From] {
						replied[m.From] = true
						nacks++
					}
				}
				return acks+nacks >= majority
			}, nil, func() {
				for _, p := range n.peers {
					n.sendCons(p, prop)
				}
			})
			if !ok {
				return
			}
			if stale {
				continue // reply quorum unreachable; the instance moved on
			}
			if nacks == 0 && acks >= majority {
				n.decide(inst, value)
				return
			}
		}

		inst.mu.Lock()
		done := inst.decided
		inst.mu.Unlock()
		if done {
			return
		}
	}
}

// waitCond blocks until ready() (checked under inst.mu) or abort() (checked
// outside the lock, re-armed every ctPoll of clock time, may be nil)
// returns true, or until the inbox shows a later-round message, returning
// with stale set: the phase cannot complete any more (see catchUp) and the
// round loop must advance. It returns ok=false when the node is stopping
// or the instance decided while waiting with abort semantics still
// pending. Waiting is event-driven: the receive loop broadcasts the
// instance condition whenever messages arrive, and Stop broadcasts it on
// shutdown. resend (may be nil) runs outside the lock after every
// ctResendAfter of clock time without progress, retransmitting the
// phase's driving message across a link plane that may have black-holed
// it.
func (n *Node) waitCond(inst *ctInstance, round int, ready func() bool, abort func() bool, resend func()) (ok, stale bool) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	start := n.clk.Now()
	last := start
	for {
		select {
		case <-n.stop:
			return false, false
		default:
		}
		if inst.decided {
			return false, false
		}
		if ready() {
			return true, false
		}
		// Later-round evidence is honored only once the phase has stalled
		// past ctCatchUpAfter: before that, an early next-round message is
		// expected reordering (the network is not FIFO), not proof that
		// this phase can no longer complete.
		if n.clk.Now()-start >= ctCatchUpAfter && inst.catchUp(round) {
			n.m.Inc(obs.ConsCatchUps)
			return true, true
		}
		if abort != nil {
			inst.mu.Unlock()
			aborted := abort()
			inst.mu.Lock()
			if aborted {
				return true, false
			}
		}
		switch {
		case abort != nil:
			inst.cond.WaitTimeout(ctPoll)
		case resend != nil:
			inst.cond.WaitTimeout(ctResendAfter)
		default:
			// A pending-but-gated catch-up needs a timed wait to re-check
			// the gate; otherwise an untimed wait is fine.
			inst.cond.WaitTimeout(ctResendAfter)
		}
		if resend != nil {
			if now := n.clk.Now(); now-last >= ctResendAfter {
				last = now
				n.m.Inc(obs.ConsRetransmits)
				inst.mu.Unlock()
				resend()
				inst.mu.Lock()
			}
		}
	}
}

func (n *Node) decide(inst *ctInstance, v any) {
	inst.mu.Lock()
	first := !inst.decided
	if first {
		inst.decided, inst.decision = true, v
		inst.cond.Broadcast()
	}
	inst.mu.Unlock()
	if first {
		n.m.Inc(obs.ConsDecisions)
		// Persist before announcing: a coordinator that told anyone and
		// then forgot could coordinate a later round to a different value.
		n.persistDecision(inst.key, v)
	}
	for _, p := range n.peers {
		if p != n.self {
			n.sendCons(p, ctMsg{Key: inst.key, Kind: ctDecide, Value: v})
		}
	}
}

// currentEstimate builds a round-r estimate message from the instance's
// live state. Retransmissions must use this, not the message snapshotted
// when the round began: a Propose can seed a real estimate after a round
// loop that started passively (⊥) is already mid-round, and only a rebuilt
// message carries it. Callers must not hold inst.mu.
func (n *Node) currentEstimate(inst *ctInstance, round int) ctMsg {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return ctMsg{Key: inst.key, Round: round, Kind: ctEstimate, Value: inst.estimate, TS: inst.ts, HasValue: inst.hasEst}
}

func (n *Node) sendCons(to simnet.ProcessID, m ctMsg) {
	if to == n.self {
		// Local delivery without the network: enqueue directly.
		inst := n.instance(m.Key)
		m.From = n.self
		inst.mu.Lock()
		if m.Kind == ctDecide {
			if !inst.decided {
				// Unreachable today — decide() and the relay both skip self —
				// but kept for sendCons totality.
				inst.decided, inst.decision = true, m.Value //xvet:ok durablewrite dead branch: no caller self-sends a decide; the live decide paths persist
				inst.cond.Broadcast()
			}
		} else {
			inst.inbox = append(inst.inbox, m)
			inst.cond.Broadcast()
		}
		inst.mu.Unlock()
		return
	}
	n.ep.Send(ConsEndpoint(to), "cons", m)
}
