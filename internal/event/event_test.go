package event

import (
	"testing"
	"testing/quick"

	"xability/internal/action"
)

func TestEventEqualityIgnoresAnnotation(t *testing.T) {
	e1 := S("a", "x").WithAnnotation("replica-1")
	e2 := S("a", "x").WithAnnotation("replica-2")
	if !e1.Equal(e2) {
		t.Error("annotations must not affect formal equality")
	}
	if e1.Equal(C("a", "x")) {
		t.Error("start and completion must differ")
	}
	if e1.Equal(S("b", "x")) || e1.Equal(S("a", "y")) {
		t.Error("action and value participate in equality")
	}
}

func TestEventString(t *testing.T) {
	if got := S("debit", "7").String(); got != "S(debit, 7)" {
		t.Errorf("String() = %q", got)
	}
	if got := C("debit", action.Nil).String(); got != "C(debit, nil)" {
		t.Errorf("String() = %q", got)
	}
	if got := S("a", "x").WithAnnotation("p1").String(); got != "S(a, x){p1}" {
		t.Errorf("String() with annotation = %q", got)
	}
}

func TestConcat(t *testing.T) {
	h1 := History{S("a", "1"), C("a", "2")}
	h2 := History{S("b", "3")}
	got := h1.Concat(h2, Lambda, History{C("b", "4")})
	want := History{S("a", "1"), C("a", "2"), S("b", "3"), C("b", "4")}
	if !got.Equal(want) {
		t.Errorf("Concat = %v, want %v", got, want)
	}
	// Receiver must be unchanged.
	if len(h1) != 2 {
		t.Error("Concat mutated receiver")
	}
	if !Lambda.Concat().Equal(Lambda) {
		t.Error("Λ • ε should be Λ")
	}
}

func TestContains(t *testing.T) {
	h := History{S("a", "1"), C("a", "2"), S("b", "1")}
	if !h.Contains("a", "1") {
		t.Error("(a,1) ∈ h should hold")
	}
	// Membership is defined via start events only (§2.3).
	if h.Contains("a", "2") {
		t.Error("(a,2) ∈ h should not hold: completion events do not count")
	}
	if h.Contains("c", "1") {
		t.Error("(c,1) ∈ h should not hold")
	}
	if Lambda.Contains("a", "1") {
		t.Error("nothing is in Λ")
	}
}

func TestFirstSecond(t *testing.T) {
	e1, e2 := S("a", "1"), C("a", "2")
	tests := []struct {
		h             History
		first, second History
	}{
		{Lambda, Lambda, Lambda},
		{History{e1}, History{e1}, History{e1}},
		{History{e1, e2}, History{e1}, History{e2}},
		{History{e1, e2, e1}, History{e1}, Lambda}, // length > 2: "Λ otherwise"
	}
	for i, tt := range tests {
		if got := tt.h.First(); !got.Equal(tt.first) {
			t.Errorf("case %d: First() = %v, want %v", i, got, tt.first)
		}
		if got := tt.h.Second(); !got.Equal(tt.second) {
			t.Errorf("case %d: Second() = %v, want %v", i, got, tt.second)
		}
	}
}

func TestHistoryEqual(t *testing.T) {
	h := History{S("a", "1"), C("a", "2")}
	if !h.Equal(h.Clone()) {
		t.Error("clone should be equal")
	}
	if h.Equal(h[:1]) {
		t.Error("different lengths should differ")
	}
	other := History{S("a", "1"), C("a", "3")}
	if h.Equal(other) {
		t.Error("different values should differ")
	}
}

func TestCloneIndependence(t *testing.T) {
	h := History{S("a", "1")}
	c := h.Clone()
	c[0] = C("b", "2")
	if h[0].Type != Start {
		t.Error("mutating clone affected original")
	}
	if Lambda.Clone() != nil {
		t.Error("clone of Λ should stay nil")
	}
}

func TestKeyCanonical(t *testing.T) {
	h1 := History{S("a", "1").WithAnnotation("x"), C("a", "2")}
	h2 := History{S("a", "1"), C("a", "2").WithAnnotation("y")}
	if h1.Key() != h2.Key() {
		t.Error("keys must ignore annotations")
	}
	if Lambda.Key() != "Λ" {
		t.Errorf("Λ key = %q", Lambda.Key())
	}
	if h1.Key() == (History{S("a", "1"), C("a", "3")}).Key() {
		t.Error("different histories must have different keys")
	}
}

func TestStringRendering(t *testing.T) {
	if Lambda.String() != "Λ" {
		t.Errorf("Λ renders as %q", Lambda.String())
	}
	h := History{S("a", "1"), C("a", "2")}
	if got := h.String(); got != "S(a, 1) C(a, 2)" {
		t.Errorf("String() = %q", got)
	}
}

func TestFilterProjectCounts(t *testing.T) {
	h := History{S("a", "1"), C("a", "2"), S("b", "1"), S("a", "1"), C("b", "9")}
	onlyA := h.Project(func(n action.Name) bool { return n == "a" })
	if len(onlyA) != 3 {
		t.Errorf("Project(a) has %d events, want 3", len(onlyA))
	}
	if got := h.Starts("a", "1"); got != 2 {
		t.Errorf("Starts(a,1) = %d, want 2", got)
	}
	if got := h.Completions("b"); got != 1 {
		t.Errorf("Completions(b) = %d, want 1", got)
	}
	starts := h.Filter(func(e Event) bool { return e.Type == Start })
	if len(starts) != 3 {
		t.Errorf("Filter(starts) = %d, want 3", len(starts))
	}
}

func TestWellFormed(t *testing.T) {
	good := History{S("a", "1"), S("b", "1"), C("b", "2"), C("a", "2")}
	if err := good.WellFormed(); err != nil {
		t.Errorf("well-formed history rejected: %v", err)
	}
	// Start without completion is fine (failures, §2.2).
	partial := History{S("a", "1")}
	if err := partial.WellFormed(); err != nil {
		t.Errorf("partial history rejected: %v", err)
	}
	bad := History{C("a", "2")}
	if err := bad.WellFormed(); err == nil {
		t.Error("completion without start accepted")
	}
	bad2 := History{S("a", "1"), C("a", "2"), C("a", "3")}
	if err := bad2.WellFormed(); err == nil {
		t.Error("double completion of single start accepted")
	}
}

func TestConcatAssociativityProperty(t *testing.T) {
	gen := func(n byte) History {
		var h History
		for i := byte(0); i < n%5; i++ {
			h = append(h, S("a", action.Value(rune('0'+i))))
		}
		return h
	}
	f := func(a, b, c byte) bool {
		h1, h2, h3 := gen(a), gen(b), gen(c)
		left := h1.Concat(h2).Concat(h3)
		right := h1.Concat(h2.Concat(h3))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	h := History{
		S("debit", "acct=7 amount=3"),
		C("debit", "ok"),
		S("debit!commit", "acct=7 amount=3"),
		C("debit!commit", action.Nil),
	}
	text := MarshalString(h)
	got, err := UnmarshalString(text)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(h) {
		t.Errorf("round trip = %v, want %v", got, h)
	}
}

func TestUnmarshalSkipsCommentsAndBlanks(t *testing.T) {
	text := "# a comment\n\nS a 1\n  C a 2  \n"
	got, err := UnmarshalString(text)
	if err != nil {
		t.Fatal(err)
	}
	want := History{S("a", "1"), C("a", "2")}
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, bad := range []string{"X a 1", "S"} {
		if _, err := UnmarshalString(bad); err == nil {
			t.Errorf("Unmarshal(%q) succeeded, want error", bad)
		}
	}
}

func TestUnmarshalValuelessEvent(t *testing.T) {
	got, err := UnmarshalString("S ping")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value != "" {
		t.Errorf("got %v, want single empty-valued event", got)
	}
}

func TestTypeString(t *testing.T) {
	if Start.String() != "S" || Complete.String() != "C" {
		t.Error("type rendering broken")
	}
	if Type(7).String() != "Type(7)" {
		t.Error("unknown type rendering broken")
	}
}
