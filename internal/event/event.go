// Package event implements the event and history calculus of the x-ability
// theory (§2.2–§2.3): start events S(a,iv), completion events C(a,ov),
// histories as totally-ordered event sequences, concatenation •, membership
// (a,iv) ∈ h, and the first()/second() operators of Figure 3.
//
// Formal identity of an event is exactly its (type, action, value) triple,
// as in the paper. Events additionally carry annotations — which replica
// produced them, which attempt, at what observer time — that are ignored by
// equality, pattern matching, and reduction, but invaluable when debugging a
// run or pretty-printing a reduction trace.
package event

import (
	"fmt"
	"strings"

	"xability/internal/action"
)

// Type distinguishes start from completion events.
type Type int

const (
	// Start is the paper's S(a, iv): the side effect of a may happen.
	Start Type = iota
	// Complete is the paper's C(a, ov): the side effect of a has happened.
	Complete
)

// String returns "S" or "C".
func (t Type) String() string {
	switch t {
	case Start:
		return "S"
	case Complete:
		return "C"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Event is an element of the paper's Event set:
//
//	e ::= S(a, iv) | C(a, ov)
//
// For Start events Value is the input value; for Complete events it is the
// output value.
type Event struct {
	Type   Type
	Action action.Name
	Value  action.Value

	// Annotation carries non-semantic metadata (replica id, attempt number,
	// wall-clock of observation). It does not participate in Equal, pattern
	// matching, or reduction.
	Annotation string
}

// S constructs a start event S(a, iv).
func S(a action.Name, iv action.Value) Event {
	return Event{Type: Start, Action: a, Value: iv}
}

// C constructs a completion event C(a, ov).
func C(a action.Name, ov action.Value) Event {
	return Event{Type: Complete, Action: a, Value: ov}
}

// WithAnnotation returns a copy of e carrying the annotation.
func (e Event) WithAnnotation(note string) Event {
	e.Annotation = note
	return e
}

// Equal reports formal event equality: type, action, and value. Annotations
// are ignored.
func (e Event) Equal(o Event) bool {
	return e.Type == o.Type && e.Action == o.Action && e.Value == o.Value
}

// Key returns a canonical comparable key for the event's formal identity,
// suitable for memoization maps.
func (e Event) Key() string {
	return string(e.appendKey(make([]byte, 0, len(e.Action)+len(e.Value)+4)))
}

// appendKey appends the event's Key to b. The checker builds keys on every
// memo probe; appending into a caller-sized buffer keeps that off the
// fmt/alloc path.
func (e Event) appendKey(b []byte) []byte {
	switch e.Type {
	case Start:
		b = append(b, 'S')
	case Complete:
		b = append(b, 'C')
	default:
		b = append(b, e.Type.String()...)
	}
	b = append(b, '(')
	b = append(b, e.Action...)
	b = append(b, ',')
	b = append(b, e.Value...)
	b = append(b, ')')
	return b
}

// String renders the event in paper notation, e.g. "S(debit, acct=7)".
func (e Event) String() string {
	s := fmt.Sprintf("%s(%s, %s)", e.Type, e.Action, action.Display(e.Value))
	if e.Annotation != "" {
		s += "{" + e.Annotation + "}"
	}
	return s
}

// History is the paper's History: a finite sequence of events whose order
// is the total order in which the hypothetical observer saw them. The nil
// slice is Λ, the empty history.
type History []Event

// Lambda is Λ, the empty history.
var Lambda = History(nil)

// Concat implements the • operator (eq. 3): the events of h followed by the
// events of each hs in order. The receiver is not modified.
func (h History) Concat(hs ...History) History {
	n := len(h)
	for _, x := range hs {
		n += len(x)
	}
	out := make(History, 0, n)
	out = append(out, h...)
	for _, x := range hs {
		out = append(out, x...)
	}
	return out
}

// Contains implements the paper's membership relation (a, iv) ∈ h: true iff
// h contains the start event S(a, iv).
func (h History) Contains(a action.Name, iv action.Value) bool {
	for _, e := range h {
		if e.Type == Start && e.Action == a && e.Value == iv {
			return true
		}
	}
	return false
}

// ContainsEvent reports whether h contains an event formally equal to e.
func (h History) ContainsEvent(e Event) bool {
	for _, x := range h {
		if x.Equal(e) {
			return true
		}
	}
	return false
}

// First implements first() of Figure 3: the first event of h as a
// single-event history, or Λ when h is empty.
func (h History) First() History {
	if len(h) == 0 {
		return Lambda
	}
	return History{h[0]}
}

// Second implements second() of Figure 3: for a two-event history the
// second event, for a one-event history that event, and Λ otherwise.
// (The paper defines it on histories of length ≤ 2; we extend it to longer
// histories by returning Λ, matching "the empty history otherwise".)
func (h History) Second() History {
	switch len(h) {
	case 1:
		return History{h[0]}
	case 2:
		return History{h[1]}
	default:
		return Lambda
	}
}

// Equal reports element-wise formal equality of two histories.
func (h History) Equal(o History) bool {
	if len(h) != len(o) {
		return false
	}
	for i := range h {
		if !h[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of h.
func (h History) Clone() History {
	if h == nil {
		return nil
	}
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Key returns a canonical string for the formal content of h, suitable for
// memoization. Λ has key "Λ". The key is assembled with one allocation:
// history keys are the checker's memoization currency, built once per
// explored rewrite.
func (h History) Key() string {
	if len(h) == 0 {
		return "Λ"
	}
	n := 0
	for _, e := range h {
		n += len(e.Action) + len(e.Value) + 6 // type marker + punctuation + separator
	}
	b := make([]byte, 0, n)
	for i, e := range h {
		if i > 0 {
			b = append(b, "·"...)
		}
		b = e.appendKey(b)
	}
	return string(b)
}

// String renders h in paper notation: events separated by spaces, Λ for the
// empty history.
func (h History) String() string {
	if len(h) == 0 {
		return "Λ"
	}
	parts := make([]string, len(h))
	for i, e := range h {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Filter returns the subsequence of h whose events satisfy keep, preserving
// order.
func (h History) Filter(keep func(Event) bool) History {
	var out History
	for _, e := range h {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Project returns the subsequence of events whose action name satisfies
// keep; a common filter when examining one action's incarnations.
func (h History) Project(keep func(action.Name) bool) History {
	return h.Filter(func(e Event) bool { return keep(e.Action) })
}

// Starts returns the number of start events for (a, iv) in h: the number of
// incarnations of the action visible in the history.
func (h History) Starts(a action.Name, iv action.Value) int {
	n := 0
	for _, e := range h {
		if e.Type == Start && e.Action == a && e.Value == iv {
			n++
		}
	}
	return n
}

// Completions returns the number of completion events for action a
// (regardless of output value) in h.
func (h History) Completions(a action.Name) int {
	n := 0
	for _, e := range h {
		if e.Type == Complete && e.Action == a {
			n++
		}
	}
	return n
}

// WellFormed checks the observation axioms of §2.2 on a per-action-name
// basis: a completion event of action a must be preceded by an unmatched
// start event of a. It returns an error naming the first offending event.
// (The axioms relate events to executions; on a bare history this prefix
// discipline is the checkable residue.)
func (h History) WellFormed() error {
	open := make(map[action.Name]int)
	for i, e := range h {
		switch e.Type {
		case Start:
			open[e.Action]++
		case Complete:
			if open[e.Action] == 0 {
				return fmt.Errorf("event %d: completion %s has no preceding unmatched start", i, e)
			}
			open[e.Action]--
		default:
			return fmt.Errorf("event %d: unknown event type %v", i, e.Type)
		}
	}
	return nil
}
