package event

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"xability/internal/action"
)

// The textual history format used by cmd/xcheck and test fixtures. One event
// per line:
//
//	S <action> <value>
//	C <action> <value>
//
// Blank lines and lines starting with '#' are ignored. The literal token
// "nil" denotes action.Nil. Values may contain spaces (everything after the
// second field is the value).

// Marshal writes h in the textual format.
func Marshal(w io.Writer, h History) error {
	for _, e := range h {
		v := string(e.Value)
		if e.Value == action.Nil {
			v = "nil"
		}
		if _, err := fmt.Fprintf(w, "%s %s %s\n", e.Type, e.Action, v); err != nil {
			return err
		}
	}
	return nil
}

// MarshalString renders h in the textual format.
func MarshalString(h History) string {
	var b strings.Builder
	_ = Marshal(&b, h) // strings.Builder never errors
	return b.String()
}

// Unmarshal parses the textual format into a history.
func Unmarshal(r io.Reader) (History, error) {
	var h History
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("line %d: want 'S|C <action> [<value>]', got %q", lineno, line)
		}
		var typ Type
		switch parts[0] {
		case "S":
			typ = Start
		case "C":
			typ = Complete
		default:
			return nil, fmt.Errorf("line %d: unknown event type %q (want S or C)", lineno, parts[0])
		}
		val := ""
		if len(parts) == 3 {
			val = parts[2]
		}
		v := action.Value(val)
		if val == "nil" {
			v = action.Nil
		}
		h = append(h, Event{Type: typ, Action: action.Name(parts[1]), Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// UnmarshalString parses the textual format from a string.
func UnmarshalString(s string) (History, error) {
	return Unmarshal(strings.NewReader(s))
}
