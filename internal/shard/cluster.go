package shard

import (
	"time"

	"xability/internal/action"
	"xability/internal/core"
	"xability/internal/event"
	"xability/internal/simnet"
	"xability/internal/sm"
	"xability/internal/vclock"
	"xability/internal/wal"
)

// Config describes a sharded deployment: N replica groups, each an
// independent core.Cluster, behind one keyspace router.
type Config struct {
	// Shards is the number of replica groups (default 1).
	Shards int
	// Replicas is the replication degree of each group (default 3).
	Replicas int
	// Seed drives the whole deployment; each group derives its own seed
	// from it, so equal (Config, Seed) pairs reproduce equal runs.
	Seed int64
	// Net is the per-group network template. Net.Clock, when set, becomes
	// the deployment's shared clock; nil selects a fresh virtual clock.
	// Every group gets its own network (its own delay stream, link fault
	// plane, and counters) on that one clock.
	Net simnet.Config
	// Consensus and Detector select each group's substrates.
	Consensus core.ConsensusMode
	Detector  core.DetectorMode
	// HeartbeatInterval tunes DetectorHeartbeat; CleanInterval the cleaner.
	HeartbeatInterval time.Duration
	CleanInterval     time.Duration
	// Registry is the shared action vocabulary.
	Registry *action.Registry
	// Setup returns the machine-setup function for one group, so each
	// shard can own its slice of the application state (its own bank).
	Setup func(shard int) func(m *sm.Machine)
	// Key extracts the routing key from a request; nil selects InputKey.
	Key KeyFunc
	// VNodes is the ring's virtual-node count per shard (0 selects
	// DefaultVNodes).
	VNodes int
	// Networks, when non-nil (one per shard), deploys each group onto an
	// existing recycled network instead of building fresh ones — the
	// sharded analogue of core.ClusterConfig.Network. Each must already
	// have been ResetShared with the group's config and the deployment's
	// new shared clock (which the caller then also passes as Net.Clock).
	Networks []*simnet.Network
	// Batch and Costs configure every group's replicas (see core).
	Batch core.BatchConfig
	Costs core.CostModel
	// Durable gives every group its own stable storage (one wal.Store per
	// group, recycled with the group across restarts): group replicas can
	// then crash and restart — including a whole-shard power cycle — and
	// recover from their logs. WALSync, WALSnapshotSync, and WALCompact
	// tune each group's store exactly as in core.ClusterConfig.
	Durable         bool
	WALSync         time.Duration
	WALSnapshotSync time.Duration
	WALCompact      int
}

// Cluster is the cluster-of-clusters runtime: the groups, the ring, and
// the router, on one shared virtual clock.
type Cluster struct {
	clk    vclock.Clock
	ring   *Ring
	groups []*core.Cluster

	// Router is the deployment's client: it owns request routing and the
	// per-shard submission streams.
	Router *Router
}

// GroupSeed derives group s's seed from the deployment seed. Groups must
// see distinct delay and failure-injection streams (a correlated-fault
// scenario should be correlated by the plan, not by accidental seed
// reuse), and the derivation must be pure so runs replay.
func GroupSeed(seed int64, s int64) int64 {
	return seed + (s+1)*0x9E3779B9 // golden-ratio stride keeps groups apart
}

// New assembles and starts a sharded deployment.
func New(cfg Config) *Cluster {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	clk := cfg.Net.Clock
	if clk == nil {
		clk = vclock.NewVirtual()
	}
	key := cfg.Key
	if key == nil {
		key = InputKey
	}
	c := &Cluster{clk: clk, ring: NewRing(cfg.Shards, cfg.VNodes)}
	for s := 0; s < cfg.Shards; s++ {
		netCfg := cfg.Net
		netCfg.Clock = clk
		netCfg.Seed = GroupSeed(cfg.Seed, int64(s))
		var setup func(m *sm.Machine)
		if cfg.Setup != nil {
			setup = cfg.Setup(s)
		}
		var reuse *simnet.Network
		if len(cfg.Networks) == cfg.Shards {
			reuse = cfg.Networks[s]
		}
		c.groups = append(c.groups, core.NewCluster(core.ClusterConfig{
			Replicas:          cfg.Replicas,
			Seed:              GroupSeed(cfg.Seed, int64(s)),
			Net:               netCfg,
			Network:           reuse,
			Consensus:         cfg.Consensus,
			Detector:          cfg.Detector,
			Registry:          cfg.Registry,
			Setup:             setup,
			CleanInterval:     cfg.CleanInterval,
			HeartbeatInterval: cfg.HeartbeatInterval,
			Batch:             cfg.Batch,
			Costs:             cfg.Costs,
			Durable:           cfg.Durable,
			WALSync:           cfg.WALSync,
			WALSnapshotSync:   cfg.WALSnapshotSync,
			WALCompact:        cfg.WALCompact,
		}))
	}
	c.Router = newRouter(c.ring, key, c.groups, clk)
	return c
}

// Clock returns the deployment's shared clock.
func (c *Cluster) Clock() vclock.Clock { return c.clk }

// Shards returns the number of replica groups.
func (c *Cluster) Shards() int { return len(c.groups) }

// Ring returns the deployment's keyspace partitioner.
func (c *Cluster) Ring() *Ring { return c.ring }

// Group returns replica group s — the per-shard fault surface (its own
// network, detectors, and environment).
func (c *Cluster) Group(s int) *core.Cluster { return c.groups[s] }

// History returns group s's observed event history, after quiescing its
// network.
func (c *Cluster) History(s int) event.History {
	g := c.groups[s]
	g.Net.Quiesce()
	return g.Observer.History()
}

// Histories snapshots every group's history in shard order, quiescing
// each group once — the shared input for per-shard verification and the
// merged trace (fetch once, use for both).
func (c *Cluster) Histories() []event.History {
	out := make([]event.History, len(c.groups))
	for s := range c.groups {
		out[s] = c.History(s)
	}
	return out
}

// MergedHistory concatenates the groups' histories in shard order — the
// deployment-wide event trace for counters and listings. Per-shard
// verification uses the per-shard histories; the concatenation is not
// itself a total order across groups (groups share no events, so none is
// needed).
func (c *Cluster) MergedHistory() event.History {
	var h event.History
	for _, gh := range c.Histories() {
		h = append(h, gh...)
	}
	return h
}

// Quiesce blocks until every group's in-flight deliveries have settled.
func (c *Cluster) Quiesce() {
	for _, g := range c.groups {
		g.Net.Quiesce()
	}
}

// CloseNets closes every group's network — the deployment-wide watchdog
// action (unblocks all clients; the run is over).
func (c *Cluster) CloseNets() {
	for _, g := range c.groups {
		g.Net.Close()
	}
}

// TotalSent sums message counts across the groups' networks.
func (c *Cluster) TotalSent() int {
	total := 0
	for _, g := range c.groups {
		total += g.Net.TotalSent()
	}
	return total
}

// Attempts sums client submit attempts across the groups.
func (c *Cluster) Attempts() int {
	total := 0
	for _, g := range c.groups {
		total += g.Client.Attempts()
	}
	return total
}

// EffectsInForce sums the groups' environment audits for one raw
// (action, input) pair. The owner group should account for every effect;
// summing over all groups means a mis-routed duplicate executed by a
// non-owner is counted, not hidden.
func (c *Cluster) EffectsInForce(a action.Name, iv action.Value) int {
	total := 0
	for _, g := range c.groups {
		total += g.Env.InForceTotal(a, iv)
	}
	return total
}

// WALStats sums stable-storage activity across the groups' stores (zero
// when the deployment is not durable).
func (c *Cluster) WALStats() wal.Stats {
	var st wal.Stats
	for _, g := range c.groups {
		st = st.Plus(g.WALStats())
	}
	return st
}

// Stop shuts every group down.
func (c *Cluster) Stop() {
	for _, g := range c.groups {
		g.Stop()
	}
}
