// Package shard is the sharding plane: a keyspace partitioned across many
// independently replicated x-able groups, served behind one facade.
//
// The paper's composition result (§1, §4 — locality) is what makes the
// plane sound: each group is a replicated service proved x-able on its own
// terms, and a deployment that routes every request to exactly one owning
// group is a composition of x-able services, so it is x-able end to end.
// The subsystem makes that argument mechanical:
//
//   - Ring is a consistent-hash keyspace partitioner: a deterministic map
//     from routing keys to shard indices, stable under reshards (adding a
//     shard moves keys only onto the new shard).
//   - Router maps each request to its owning group via a registered key
//     extractor and submits it there; within the group the client stub
//     retries and fails over across replicas on crash or suspicion (R1/R2
//     license exactly that), so the router never re-routes a request to a
//     non-owner — which is the global exactly-once-routing invariant the
//     merged checker verifies.
//   - Cluster is the cluster-of-clusters runtime: N replica groups, each a
//     core.Cluster with its own simulated network, all sharing one virtual
//     clock so the deployment lives on a single discrete-event timeline
//     (aggregate throughput is measured in one simulated time base, and
//     fault plans address groups at common virtual instants).
//
// Groups deliberately do not share a network: the protocol's announce
// broadcast is network-wide, so co-registering two groups would leak
// protocol traffic across shard boundaries, and a shared delay generator
// would make concurrent per-shard streams racy. One network per group
// keeps every group exactly as deterministic as a standalone cluster and
// gives fault plans a group-scoped link plane for free.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the default number of virtual nodes per shard on the
// ring. More virtual nodes smooth the key distribution at the cost of a
// larger (still tiny) lookup table.
const DefaultVNodes = 64

// Ring is a consistent-hash partitioner over a fixed shard count. It is an
// immutable value: build one with NewRing and share it freely.
//
// Each shard owns VNodes points on a 64-bit hash circle; a key belongs to
// the shard owning the first point at or clockwise of the key's hash.
// Ownership is deterministic (pure FNV-1a, no per-process state) and
// minimally disruptive: the points of existing shards do not move when a
// ring is rebuilt with one more shard, so only keys landing on the new
// shard's points change owner — the classic consistent-hashing property,
// pinned by TestRingReshardMovesKeysOnlyToNewShard.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the given shard count; vnodes of 0 selects
// DefaultVNodes. Shard counts below 1 panic: an empty ring owns nothing.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		panic(fmt.Sprintf("shard: ring needs at least 1 shard, got %d", shards))
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the ring is
		// a deterministic value on every host.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a routing key to its owning shard index.
func (r *Ring) Owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].shard
}

// hash64 positions a string on the circle: FNV-1a folded through a 64-bit
// finalizer. Raw FNV of short, near-identical keys ("acct-1", "acct-2", …)
// differs mostly in the low bits, so whole keyspaces cluster on one arc
// and a few vnodes own everything; the avalanche mix (murmur3's fmix64)
// spreads exactly such families uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
