package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("acct-%d", i)
	}
	return out
}

func TestRingDeterministicAndTotal(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	owned := make(map[int]int)
	for _, k := range keys(1000) {
		s := a.Owner(k)
		if s < 0 || s >= 4 {
			t.Fatalf("Owner(%q) = %d, out of range", k, s)
		}
		if bs := b.Owner(k); bs != s {
			t.Fatalf("two rings disagree on %q: %d vs %d", k, s, bs)
		}
		owned[s]++
	}
	for s := 0; s < 4; s++ {
		if owned[s] == 0 {
			t.Errorf("shard %d owns no keys out of 1000", s)
		}
	}
}

// TestRingBalance pins the consistent-hash distribution quality the
// shard-scaling table depends on: with the default virtual-node count no
// shard may own more than twice its fair share of a large keyspace.
func TestRingBalance(t *testing.T) {
	const n, shards = 4096, 4
	r := NewRing(shards, 0)
	owned := make(map[int]int)
	for _, k := range keys(n) {
		owned[r.Owner(k)]++
	}
	fair := n / shards
	for s := 0; s < shards; s++ {
		if owned[s] > 2*fair {
			t.Errorf("shard %d owns %d of %d keys (fair share %d): distribution too skewed", s, owned[s], n, fair)
		}
	}
}

// TestRingReshardMovesKeysOnlyToNewShard pins the consistent-hashing
// property: growing the ring by one shard never moves a key between two
// existing shards — ownership changes only toward the new shard.
func TestRingReshardMovesKeysOnlyToNewShard(t *testing.T) {
	for grow := 1; grow <= 7; grow++ {
		old := NewRing(grow, 0)
		grown := NewRing(grow+1, 0)
		moved := 0
		for _, k := range keys(2000) {
			before, after := old.Owner(k), grown.Owner(k)
			if before != after {
				moved++
				if after != grow {
					t.Fatalf("%d→%d shards: key %q moved %d→%d, not to the new shard %d",
						grow, grow+1, k, before, after, grow)
				}
			}
		}
		if moved == 0 {
			t.Errorf("%d→%d shards: no key moved to the new shard", grow, grow+1)
		}
	}
}

func TestRingRejectsEmptyRing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0, 0) did not panic")
		}
	}()
	NewRing(0, 0)
}
