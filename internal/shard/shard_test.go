package shard

import (
	"fmt"
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/simnet"
	"xability/internal/sm"
	"xability/internal/workload"
)

// newDeployment assembles a sharded bank: each group owns its own Bank
// (its slice of the keyspace), all accounts opened at 100.
func newDeployment(t *testing.T, shards int, seed int64) (*Cluster, []*workload.Bank) {
	t.Helper()
	banks := make([]*workload.Bank, shards)
	for s := range banks {
		banks[s] = workload.NewBank(64, 100)
	}
	c := New(Config{
		Shards:   shards,
		Replicas: 3,
		Seed:     seed,
		Net:      simnet.Config{MaxDelay: 200 * time.Microsecond},
		Registry: workload.Registry(),
		Setup:    func(s int) func(m *sm.Machine) { return banks[s].Setup() },
	})
	t.Cleanup(c.Stop)
	return c, banks
}

func debits(n, accounts int) []action.Request {
	out := make([]action.Request, n)
	for i := range out {
		out[i] = action.NewRequest("debit", action.Value(fmt.Sprintf("acct-%d", i%accounts)))
	}
	return out
}

// TestRoutedCallsLandOnOwners runs a request batch through the router and
// checks the merged report plus the per-group state: every debit landed on
// its key's ring owner and nowhere else.
func TestRoutedCallsLandOnOwners(t *testing.T) {
	c, banks := newDeployment(t, 4, 1)
	reqs := debits(16, 16)

	clk := c.Clock()
	clk.Enter()
	replies, ok := c.Router.CallAll(reqs)
	clk.Exit()
	c.Quiesce()

	if !ok {
		t.Fatalf("not every request was answered: %v", replies)
	}
	rep := c.Verify(workload.Registry())
	if !rep.OK() {
		t.Fatalf("merged verify failed: %+v", rep)
	}
	// Each account was debited exactly once, on its owner's bank.
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("acct-%d", i)
		owner := c.Ring().Owner(key)
		for s, b := range banks {
			want := 100
			if s == owner {
				want = 90
			}
			if got := b.Balance(key); got != want {
				t.Errorf("%s on shard %d: balance %d, want %d (owner %d)", key, s, got, want, owner)
			}
		}
	}
	if got := c.Router.Routed(); got != 16 {
		t.Errorf("router logged %d routes, want 16", got)
	}
}

// TestShardStreamsOverlapVirtualTime pins the scaling mechanism: the same
// workload takes far less virtual time on 4 groups than on 1, because the
// per-shard streams overlap their message delays on the shared clock.
func TestShardStreamsOverlapVirtualTime(t *testing.T) {
	elapsed := func(shards int) time.Duration {
		c, _ := newDeployment(t, shards, 7)
		reqs := debits(48, 48)
		clk := c.Clock()
		clk.Enter()
		start := clk.Now()
		if _, ok := c.Router.CallAll(reqs); !ok {
			t.Fatalf("%d shards: unanswered requests", shards)
		}
		d := clk.Now() - start
		clk.Exit()
		c.Quiesce()
		return d
	}
	one, four := elapsed(1), elapsed(4)
	if four*2 >= one {
		t.Errorf("48 debits: 1 shard took %v, 4 shards took %v — want at least 2× overlap", one, four)
	}
}

// TestRouterFailoverExactlyOnce crashes a group's round-1 owner mid-call
// (environment failures stretch the execution across the crash) and
// asserts, through the merged checker and the environment audit, that the
// deployment still looks exactly-once: the group's cleaner takes over, the
// router never re-routes across groups.
func TestRouterFailoverExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c, _ := newDeployment(t, 4, seed)
		// Stretch every group's debits so the crash lands mid-execution.
		for s := 0; s < c.Shards(); s++ {
			c.Group(s).Env.SetFailures("debit", 1, 6, 0)
		}
		reqs := debits(8, 8)
		clk := c.Clock()
		clk.Enter()
		// Crash the owner of the group serving acct-0 while its stream is
		// in flight.
		victim := c.Ring().Owner("acct-0")
		clk.GoAfter(2*time.Millisecond, func() { c.Group(victim).CrashServer(0) })
		replies, ok := c.Router.CallAll(reqs)
		clk.Sleep(5 * time.Millisecond) // let cleaners settle
		clk.Exit()
		c.Quiesce()

		if !ok {
			t.Fatalf("seed %d: unanswered requests: %v", seed, replies)
		}
		rep := c.Verify(workload.Registry())
		if !rep.OK() {
			t.Fatalf("seed %d: merged verify failed after owner crash: %+v", seed, rep)
		}
		for i := 0; i < 8; i++ {
			key := action.Value(fmt.Sprintf("acct-%d", i))
			if got := c.EffectsInForce("debit", key); got != 1 {
				t.Errorf("seed %d: %s has %d debit effects in force, want exactly 1", seed, key, got)
			}
		}
	}
}

// TestRoutingAuditCatchesBypass submits a request directly to a non-owner
// group, behind the router's back: the merged report must refuse to call
// the run exactly-once-routed.
func TestRoutingAuditCatchesBypass(t *testing.T) {
	c, _ := newDeployment(t, 2, 3)
	req := action.NewRequest("debit", "acct-0")
	owner := c.Ring().Owner("acct-0")
	rogue := (owner + 1) % 2

	clk := c.Clock()
	clk.Enter()
	c.Router.Call(req)                            // the legitimate routed call
	c.Group(rogue).Client.SubmitUntilSuccess(req) // the bypass
	clk.Exit()
	c.Quiesce()

	rep := c.Verify(workload.Registry())
	if rep.RoutingExact {
		t.Fatalf("routing audit accepted a bypassed submission: %+v", rep)
	}
	if rep.OK() {
		t.Error("merged report OK despite routing violation")
	}
}

// TestGroupSeedsDiffer guards the seed derivation: groups of one run and
// equal shards of different runs all see distinct streams.
func TestGroupSeedsDiffer(t *testing.T) {
	seen := make(map[int64]string)
	for seed := int64(1); seed <= 3; seed++ {
		for s := int64(0); s < 4; s++ {
			g := GroupSeed(seed, s)
			at := fmt.Sprintf("seed %d shard %d", seed, s)
			if prev, dup := seen[g]; dup {
				t.Errorf("GroupSeed collision: %s and %s both derive %d", prev, at, g)
			}
			seen[g] = at
		}
	}
}
