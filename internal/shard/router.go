package shard

import (
	"sync"

	"xability/internal/action"
	"xability/internal/core"
	"xability/internal/vclock"
)

// KeyFunc extracts the routing key from a request. The key, not the whole
// request, is what the ring partitions: two requests with the same key
// always land on the same group, which is what lets a group own its slice
// of the application state outright.
type KeyFunc func(req action.Request) string

// InputKey is the default key extractor: the request's raw input value
// (the bank workload's account name).
func InputKey(req action.Request) string { return string(req.Input) }

// Route records one routing decision for the merged checker's global
// exactly-once-routing audit.
type Route struct {
	// Req is the request as submitted to the owner group's client (still
	// untagged; the group's client assigns the request ID).
	Req action.Request
	// Key and Shard are the routing decision.
	Key   string
	Shard int
	// Reply is the value the owner group returned; Replied is false when
	// the call aborted (network closed mid-run by a watchdog).
	Reply   action.Value
	Replied bool
}

// Router is the deployment's client stub: it maps each request to its
// owning group via the key extractor and the ring, submits it on that
// group's client, and records the decision for the routing audit.
//
// Failover on crash or suspicion happens *inside* the owner group: the
// group's client retries across the group's replicas (R1 makes the retry
// idempotent, R2 makes it eventually successful). The router deliberately
// never fails over across groups — a request's owner is a pure function
// of its key, and re-routing to a non-owner would both violate state
// ownership and break the exactly-once-routing invariant the merged
// checker enforces.
type Router struct {
	ring   *Ring
	key    KeyFunc
	groups []*core.Cluster
	clk    vclock.Clock

	mu sync.Mutex
	// routed holds each shard's routing log in submission order. Logs are
	// per shard so concurrent streams never interleave their appends —
	// the audit stays deterministic under any worker schedule.
	routed [][]Route
}

func newRouter(ring *Ring, key KeyFunc, groups []*core.Cluster, clk vclock.Clock) *Router {
	return &Router{ring: ring, key: key, groups: groups, clk: clk, routed: make([][]Route, len(groups))}
}

// Owner returns the shard index owning a request's key.
func (r *Router) Owner(req action.Request) int { return r.ring.Owner(r.key(req)) }

// Call routes one request to its owning group and submits it until it
// succeeds. It returns the group's reply ("" when the run was closed
// before a reply arrived).
func (r *Router) Call(req action.Request) action.Value {
	return r.callOn(r.Owner(req), req)
}

func (r *Router) callOn(s int, req action.Request) action.Value {
	v := r.groups[s].Client.SubmitUntilSuccess(req)
	r.mu.Lock()
	r.routed[s] = append(r.routed[s], Route{Req: req, Key: r.key(req), Shard: s, Reply: v, Replied: v != ""})
	r.mu.Unlock()
	return v
}

// CallAll routes a request sequence and drives each group's subsequence
// concurrently — one goroutine per owning shard on the shared virtual
// clock, preserving per-shard submission order. Replies come back in
// input order; ok reports whether every request was answered.
//
// Concurrency is what makes the deployment scale in *virtual* time: each
// group has one client, so a group's stream is sequential, but streams of
// different groups overlap their message delays on the one clock —
// aggregate ops per virtual second grows with the shard count (Table T9).
func (r *Router) CallAll(reqs []action.Request) (replies []action.Value, ok bool) {
	replies = make([]action.Value, len(reqs))
	perShard := make([][]int, len(r.groups))
	for i, req := range reqs {
		s := r.Owner(req)
		perShard[s] = append(perShard[s], i)
	}
	// The streams join on a clock-integrated condition, not a bare
	// WaitGroup: a vclock Cond re-marks the waiting caller runnable at the
	// instant of the final Broadcast, so no zero-runnable window opens
	// between the last stream finishing and the caller resuming. Waiting
	// detached on plain sync leaves exactly such a window, and in it the
	// clock pumps whatever background deadlines are pending (cleaner
	// periods, heartbeats) until the Go runtime happens to reschedule the
	// caller — burning an unbounded, wall-clock-dependent amount of
	// virtual time into the run and destroying SimTime determinism.
	var mu sync.Mutex
	cond := r.clk.NewCond(&mu)
	pending := 0
	r.clk.Enter()
	defer r.clk.Exit()
	for s, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		pending++
		s, idxs := s, idxs
		r.clk.Go(func() {
			for _, i := range idxs {
				replies[i] = r.callOn(s, reqs[i])
			}
			mu.Lock()
			pending--
			mu.Unlock()
			cond.Broadcast()
		})
	}
	mu.Lock()
	for pending > 0 {
		cond.Wait()
	}
	mu.Unlock()
	ok = true
	for _, v := range replies {
		if v == "" {
			ok = false
		}
	}
	return replies, ok
}

// Routes returns shard s's routing log in submission order.
func (r *Router) Routes(s int) []Route {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Route(nil), r.routed[s]...)
}

// Routed counts routing decisions across all shards.
func (r *Router) Routed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rs := range r.routed {
		n += len(rs)
	}
	return n
}
