package shard

import (
	"fmt"

	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/verify"
)

// Report is the merged verdict of a sharded run: the per-shard R2–R4
// reports plus the global routing audit. X-ability composes (§4's
// locality), so the deployment's verdict is exactly "every group verified
// on its own history" ∧ "every request was routed to its ring owner,
// exactly once, globally".
type Report struct {
	// Shards holds each group's R2–R4 report against its own history and
	// client log.
	Shards []verify.Report
	// RoutingExact holds when the routing audit passed: each route went to
	// the key's ring owner, each owner's submission log matches its routing
	// log exactly (same requests, same order, nothing extra), and no
	// request appears in more than one group's log.
	RoutingExact bool
	// Details carries diagnostics for failed clauses.
	Details []string
}

// OK reports whether every shard verified (per verify.Report.OK) and the
// routing audit passed.
func (r Report) OK() bool {
	for _, s := range r.Shards {
		if !s.OK() {
			return false
		}
	}
	return r.RoutingExact
}

// XAble reports the checker's x-ability verdict for the whole deployment:
// every shard's history reduces (strictly or per-request) and routing was
// exactly once.
func (r Report) XAble() bool {
	for _, s := range r.Shards {
		if !s.R3Strict && !s.R3Projected {
			return false
		}
	}
	return r.RoutingExact
}

// Verify checks the deployment's run so far: each group's history against
// its own submitted requests (the composition argument's per-service
// obligations), then the router's global exactly-once-routing invariant.
func (c *Cluster) Verify(reg *action.Registry) Report {
	return c.VerifyHistories(reg, c.Histories())
}

// VerifyHistories is Verify against pre-fetched per-shard histories
// (from Histories), letting callers that also need the merged trace
// snapshot each group once.
func (c *Cluster) VerifyHistories(reg *action.Registry, hs []event.History) Report {
	rep := Report{RoutingExact: true}

	// Per-shard R2–R4.
	for s, g := range c.groups {
		h := hs[s]
		reqs, replies := g.Client.Log()
		rep.Shards = append(rep.Shards, verify.Check(verify.Run{
			Registry:       reg,
			Requests:       reqs,
			Replies:        replies,
			History:        h,
			SubmitAttempts: g.Client.Attempts(),
		}))
	}

	// Global routing audit.
	type sig struct {
		a  action.Name
		iv action.Value
		n  int // per-pair occurrence index, so repeats stay distinct
	}
	seen := make(map[sig]int) // signature → owning shard (first sighting)
	for s := range c.groups {
		routes := c.Router.Routes(s)
		logged, _ := c.groups[s].Client.Log()

		// Every route must target the key's ring owner.
		counts := make(map[sig]int)
		var answered []Route
		for _, rt := range routes {
			if want := c.ring.Owner(rt.Key); want != rt.Shard || rt.Shard != s {
				rep.RoutingExact = false
				rep.Details = append(rep.Details,
					fmt.Sprintf("routing: %v keyed %q went to shard %d, ring owner is %d", rt.Req, rt.Key, rt.Shard, want))
			}
			if rt.Replied {
				answered = append(answered, rt)
			}
		}
		// The group's submission log must be exactly the answered routes,
		// in order: nothing dropped, nothing injected behind the router's
		// back, nothing re-routed mid-retry.
		if len(logged) != len(answered) {
			rep.RoutingExact = false
			rep.Details = append(rep.Details,
				fmt.Sprintf("routing: shard %d logged %d submissions but the router routed %d answered requests there", s, len(logged), len(answered)))
		}
		for i := 0; i < len(logged) && i < len(answered); i++ {
			if logged[i].Action != answered[i].Req.Action || logged[i].Input != answered[i].Req.Input {
				rep.RoutingExact = false
				rep.Details = append(rep.Details,
					fmt.Sprintf("routing: shard %d submission %d is %v, router routed %v", s, i, logged[i], answered[i].Req))
			}
		}
		// No request signature may surface in two groups' logs.
		for _, req := range logged {
			k := sig{a: req.Action, iv: req.Input, n: counts[sig{a: req.Action, iv: req.Input}]}
			counts[sig{a: req.Action, iv: req.Input}]++
			if prev, dup := seen[k]; dup {
				rep.RoutingExact = false
				rep.Details = append(rep.Details,
					fmt.Sprintf("routing: request (%s, %s) #%d surfaced in shards %d and %d", req.Action, action.Display(req.Input), k.n, prev, s))
			} else {
				seen[k] = s
			}
		}
	}
	return rep
}
