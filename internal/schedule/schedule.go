// Package schedule makes a simulated run's delivery schedule a first-class
// value. simnet's scheduler is deterministic given a seed, but the seed is
// an opaque integer: it explains nothing about *which* deliveries produced
// a failure. This package records every delivery decision the network makes
// into an ordered Log — message index, link, virtual-time deadline,
// drop/delay verdict — keyed so that a run is fully determined by
// (scenario, seed, log). A recorded log can then be replayed: the network
// re-derives each message's delay from the log instead of the seeded
// generator, and an Edit function may suppress, delay, or reorder
// individual deliveries. Record and replay compose (a replayed run can be
// re-recorded), which is what lets the shrinker (internal/shrink) iterate
// ddmin edits toward a minimal counterexample trace.
//
// The package deliberately knows nothing about simnet: links are plain
// strings, times are virtual-clock durations. simnet imports schedule, not
// the reverse.
package schedule

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Verdict is the fate of one logged send.
type Verdict int

const (
	// Scheduled is the transient verdict between send and delivery; a
	// well-formed finished run contains none (every entry resolves to one
	// of the verdicts below).
	Scheduled Verdict = iota
	// Delivered means the message reached its destination mailbox at the
	// deadline.
	Delivered
	// DroppedSend means the link fault plane black-holed the message at
	// send time (partition or dropped link in force).
	DroppedSend
	// DroppedDeliver means the message was black-holed at its delivery
	// instant (link severed, destination crashed, or network closed while
	// the message was in flight).
	DroppedDeliver
	// Suppressed means a replay Edit removed the delivery (the shrinker's
	// primitive operation). Recording a replayed run preserves the
	// suppression, so iterated shrink rounds compose.
	Suppressed
)

// String renders the verdict for trace listings.
func (v Verdict) String() string {
	switch v {
	case Scheduled:
		return "scheduled"
	case Delivered:
		return "delivered"
	case DroppedSend:
		return "dropped@send"
	case DroppedDeliver:
		return "dropped@deliver"
	case Suppressed:
		return "suppressed"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Entry is one delivery decision: the Index-th send of the run. From, To,
// and Type identify the message stream; SendAt and Deadline are virtual
// times (the deadline is the delivery instant the scheduler fixed at send
// time).
type Entry struct {
	Index    int
	From, To string
	Type     string
	SendAt   time.Duration
	Deadline time.Duration
	Verdict  Verdict
}

// Delay is the entry's scheduled delivery delay.
func (e Entry) Delay() time.Duration { return e.Deadline - e.SendAt }

// String renders the entry as one trace line.
func (e Entry) String() string {
	return fmt.Sprintf("#%-4d %10v → %-10v  %s → %s  %s  %s",
		e.Index, e.SendAt, e.Deadline, e.From, e.To, e.Type, e.Verdict)
}

// Log is the ordered schedule of one run. The network appends one entry per
// send and resolves its verdict at the delivery instant. A Log is safe for
// concurrent use (the virtual clock serializes sends, but the real clock
// does not).
type Log struct {
	mu      sync.Mutex
	entries []Entry
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append records a new entry and returns its index. The caller fills every
// field except Index, which Append assigns from the append order.
func (l *Log) Append(e Entry) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Index = len(l.entries)
	l.entries = append(l.entries, e)
	return e.Index
}

// Resolve sets the final verdict of entry i (delivery or in-flight drop).
func (l *Log) Resolve(i int, v Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i >= 0 && i < len(l.entries) {
		l.entries[i].Verdict = v
	}
}

// Entries returns a copy of the log in send order.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// Len reports the number of logged sends.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// DeliveredCount reports how many entries resolved to Delivered — the size
// of the effective trace.
func (l *Log) DeliveredCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.Verdict == Delivered {
			n++
		}
	}
	return n
}

// String renders the whole log, one entry per line.
func (l *Log) String() string {
	var b strings.Builder
	for i, e := range l.Entries() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Decision is what replay does with one matched send: deliver after Delay,
// or suppress it entirely.
type Decision struct {
	// Suppress drops the message at send time (it is logged as Suppressed
	// when the replayed run records).
	Suppress bool
	// Delay is the delivery delay to use instead of the seeded draw.
	// Ignored when Suppress is set.
	Delay time.Duration
}

// Edit rewrites the verbatim decision for one log entry. The verbatim
// decision carries the recorded delay and preserves recorded suppressions
// (Verdict == Suppressed arrives with Suppress already true). A nil Edit
// replays the log exactly as recorded.
type Edit func(e Entry, verbatim Decision) Decision

// SuppressSet is an Edit that additionally suppresses the entries whose
// index is in drop and replays everything else verbatim — the shrinker's
// workhorse.
func SuppressSet(drop map[int]bool) Edit {
	return func(e Entry, d Decision) Decision {
		if drop[e.Index] {
			d.Suppress = true
		}
		return d
	}
}

// Replay is the immutable specification of a replayed run: the log to
// follow and an optional edit. A Replay value can be shared across runs;
// the per-run cursor state lives in the network (see NewCursor).
type Replay struct {
	Log  *Log
	Edit Edit
}

// streamKey matches sends to log entries. Matching is per message stream —
// the k-th send from A to B of type T matches the k-th logged entry of the
// same stream — so a replayed run that diverges on one stream (an extra
// retransmission, a message that no longer happens) stays aligned on every
// other stream.
type streamKey struct{ from, to, typ string }

// Cursor is the per-run consumption state of a Replay: each matched send
// consumes the next entry of its stream. Sends beyond the log (the
// replayed run diverged and produced traffic the recording never saw) fall
// back to the seeded draw, which keeps divergent runs deterministic too.
type Cursor struct {
	mu      sync.Mutex
	streams map[streamKey][]decided
	pos     map[streamKey]int
}

// decided is a log entry with its edit applied once, at cursor build time.
type decided struct {
	entry    Entry
	decision Decision
}

// NewCursor builds the per-run cursor for a replay spec. Returns nil for a
// nil spec or nil log.
func NewCursor(r *Replay) *Cursor {
	if r == nil || r.Log == nil {
		return nil
	}
	c := &Cursor{
		streams: make(map[streamKey][]decided),
		pos:     make(map[streamKey]int),
	}
	for _, e := range r.Log.Entries() {
		// The verbatim decision honors the recorded verdict: an entry a
		// previous replay suppressed stays suppressed, so a log
		// round-trips through replay without an edit.
		d := Decision{Delay: e.Delay(), Suppress: e.Verdict == Suppressed}
		if r.Edit != nil {
			d = r.Edit(e, d)
		}
		k := streamKey{e.From, e.To, e.Type}
		c.streams[k] = append(c.streams[k], decided{entry: e, decision: d})
	}
	return c
}

// Next consumes the next log entry of the (from, to, typ) stream. ok is
// false when the stream is exhausted (or never recorded): the caller falls
// back to its seeded draw.
func (c *Cursor) Next(from, to, typ string) (Decision, bool) {
	if c == nil {
		return Decision{}, false
	}
	k := streamKey{from, to, typ}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.pos[k]
	s := c.streams[k]
	if i >= len(s) {
		return Decision{}, false
	}
	c.pos[k] = i + 1
	return s[i].decision, true
}
