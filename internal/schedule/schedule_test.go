package schedule

import (
	"strings"
	"testing"
	"time"
)

func entry(from, to, typ string, send, deadline time.Duration) Entry {
	return Entry{From: from, To: to, Type: typ, SendAt: send, Deadline: deadline}
}

func TestLogAppendResolve(t *testing.T) {
	l := NewLog()
	i := l.Append(entry("a", "b", "m", 0, time.Millisecond))
	j := l.Append(entry("b", "a", "m", time.Millisecond, 3*time.Millisecond))
	if i != 0 || j != 1 || l.Len() != 2 {
		t.Fatalf("indices %d %d, len %d", i, j, l.Len())
	}
	l.Resolve(i, Delivered)
	l.Resolve(j, DroppedDeliver)
	es := l.Entries()
	if es[0].Verdict != Delivered || es[1].Verdict != DroppedDeliver {
		t.Errorf("verdicts = %v %v", es[0].Verdict, es[1].Verdict)
	}
	if es[1].Delay() != 2*time.Millisecond {
		t.Errorf("delay = %v, want 2ms", es[1].Delay())
	}
	if l.DeliveredCount() != 1 {
		t.Errorf("delivered = %d, want 1", l.DeliveredCount())
	}
	if s := l.String(); !strings.Contains(s, "dropped@deliver") || !strings.Contains(s, "a → b") {
		t.Errorf("render:\n%s", s)
	}
}

// TestCursorStreamMatching pins the per-stream alignment: sends match the
// k-th logged entry of their own (from, to, type) stream, so divergence on
// one stream does not shift every other stream.
func TestCursorStreamMatching(t *testing.T) {
	l := NewLog()
	l.Append(entry("a", "b", "x", 0, 1*time.Millisecond))
	l.Append(entry("a", "c", "x", 0, 2*time.Millisecond))
	l.Append(entry("a", "b", "x", 0, 3*time.Millisecond))
	c := NewCursor(&Replay{Log: l})

	if d, ok := c.Next("a", "b", "x"); !ok || d.Delay != 1*time.Millisecond {
		t.Errorf("a→b #1: %v %v", d, ok)
	}
	if d, ok := c.Next("a", "b", "x"); !ok || d.Delay != 3*time.Millisecond {
		t.Errorf("a→b #2: %v %v", d, ok)
	}
	if _, ok := c.Next("a", "b", "x"); ok {
		t.Error("a→b stream should be exhausted")
	}
	// The a→c stream is untouched by a→b's consumption.
	if d, ok := c.Next("a", "c", "x"); !ok || d.Delay != 2*time.Millisecond {
		t.Errorf("a→c: %v %v", d, ok)
	}
	// Unrecorded streams report no match (fallback to the seeded draw).
	if _, ok := c.Next("b", "a", "x"); ok {
		t.Error("unrecorded stream matched")
	}
}

func TestNilCursorAndNilSpec(t *testing.T) {
	if c := NewCursor(nil); c != nil {
		t.Error("NewCursor(nil) != nil")
	}
	var c *Cursor
	if _, ok := c.Next("a", "b", "x"); ok {
		t.Error("nil cursor matched")
	}
	if c := NewCursor(&Replay{}); c != nil {
		t.Error("NewCursor with nil log != nil")
	}
}

// TestVerbatimHonorsRecordedSuppressions pins the nil-Edit contract: a
// log that contains Suppressed entries round-trips through an edit-free
// replay with those entries still suppressed — which is what makes
// MinTrace.Log a self-contained reproduction.
func TestVerbatimHonorsRecordedSuppressions(t *testing.T) {
	l := NewLog()
	l.Append(entry("a", "b", "x", 0, 1*time.Millisecond))
	i := l.Append(entry("a", "b", "x", 0, 2*time.Millisecond))
	l.Resolve(i, Suppressed)
	c := NewCursor(&Replay{Log: l})
	if d, _ := c.Next("a", "b", "x"); d.Suppress {
		t.Error("delivered entry suppressed under verbatim replay")
	}
	if d, _ := c.Next("a", "b", "x"); !d.Suppress {
		t.Error("recorded suppression lost under verbatim replay")
	}
}

// TestSuppressSet pins the shrinker's edit: new drops are suppressed,
// prior-round suppressions recorded in the log stay suppressed, everything
// else replays verbatim.
func TestSuppressSet(t *testing.T) {
	l := NewLog()
	l.Append(entry("a", "b", "x", 0, 1*time.Millisecond))                // kept
	l.Append(entry("a", "b", "x", 0, 2*time.Millisecond))                // newly dropped
	i := l.Append(entry("a", "b", "x", 0, 3*time.Millisecond))           // prior round
	l.Resolve(i, Suppressed)                                             //
	c := NewCursor(&Replay{Log: l, Edit: SuppressSet(map[int]bool{1: true})})

	if d, _ := c.Next("a", "b", "x"); d.Suppress {
		t.Error("entry 0 suppressed")
	}
	if d, _ := c.Next("a", "b", "x"); !d.Suppress {
		t.Error("entry 1 not suppressed")
	}
	if d, _ := c.Next("a", "b", "x"); !d.Suppress {
		t.Error("prior-round suppression not preserved")
	}
}
