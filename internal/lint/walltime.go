package lint

import (
	"go/ast"
	"go/types"
)

// Walltime flags wall-clock reads and sleeps. Virtual-time determinism
// means *all* time flows through vclock.Clock; a single time.Now or
// time.Sleep smuggles the host's scheduler into the run. This is the rule
// that would have caught PR 5's wall-races (free-running cleaner loops and
// late events timed against the wall) at review time instead of in a
// flaky sweep. Legitimate real-time boundaries — vclock's Real
// implementation, exper's throughput stopwatches — carry //xvet:ok
// annotations; nothing is exempted by path.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now/Sleep/After/Tick/... outside the vclock Real boundary; time must flow through vclock.Clock",
	Run:  runWalltime,
}

// wallclockFuncs are the package-level time functions that read or wait on
// the wall clock. Pure data constructors (time.Duration arithmetic,
// time.Unix, Parse, Date) are fine — they don't observe the host clock.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on Timer/Ticker values, not clock reads
			}
			if !wallclockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock and breaks virtual-time determinism; route time through vclock.Clock", fn.Name())
			return true
		})
	}
	return nil
}
