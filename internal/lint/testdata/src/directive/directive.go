// Package directive exercises the //xvet:ok machinery itself: a directive
// missing its reason (or naming an unknown rule, or missing everything) is
// a diagnostic and does not suppress; a complete directive that suppresses
// nothing is flagged as unused; complete directives suppress exactly their
// target line, and consecutive standalone directives chain.
package directive

import "time"

func missingReason() time.Time {
	//xvet:ok walltime // want `directive missing reason: say why this escape is sound`
	return time.Now() // want `time\.Now reads the wall clock`
}

func unknownRule() time.Time {
	//xvet:ok wallclock the rule name has a typo // want `unknown rule "wallclock"`
	return time.Now() // want `time\.Now reads the wall clock`
}

func missingEverything() {
	//xvet:ok // want `missing rule and reason`
}

func unused() time.Duration {
	d := 3 * time.Second //xvet:ok walltime duration arithmetic never reads the clock // want `unused //xvet:ok walltime directive`
	return d
}

func suppressed() time.Time {
	return time.Now() //xvet:ok walltime fixture: a complete trailing directive suppresses its own line
}

// Consecutive standalone directives chain to the first code line, so one
// statement can carry several rule escapes.
func chained(ch chan int) int64 {
	//xvet:ok walltime fixture: chained escape covering the wall read
	//xvet:ok detachedwait fixture: chained escape covering the receive
	return time.Now().UnixNano() + int64(<-ch)
}
