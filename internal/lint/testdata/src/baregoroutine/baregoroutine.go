// Package baregoroutine exercises the baregoroutine analyzer: every raw go
// statement is flagged; sanctioned wall-side workers carry an annotation.
package baregoroutine

func bad(done chan struct{}) {
	go func() { // want `bare go statement spawns a goroutine the virtual clock cannot track`
		close(done)
	}()
}

func badNamed(f func()) {
	go f() // want `bare go statement`
}

func annotatedEscape(done chan struct{}) {
	go func() { //xvet:ok baregoroutine fixture: models a wall-side sweep worker outside every clock
		close(done)
	}()
}
