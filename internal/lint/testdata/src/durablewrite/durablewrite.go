// Package durablewrite exercises the durablewrite rule: writes to fields
// marked //xvet:durable must sit in a function that also persists
// (persist*/Append), or carry a reasoned escape.
package durablewrite

type wal struct{ recs []int }

func (w *wal) Append(r int) { w.recs = append(w.recs, r) }

type acceptor struct {
	log      *wal
	estimate int          //xvet:durable
	decided  bool         //xvet:durable
	rounds   map[int]bool //xvet:durable
	inbox    []int        // not durable: free to mutate anywhere
}

// Bare write: the function never persists — flagged.
func (a *acceptor) adopt(v int) {
	a.estimate = v // want `write to durable field "estimate" in a function that never persists`
}

// Map writes through a marked field are writes to it.
func (a *acceptor) mark(r int) {
	a.rounds[r] = true // want `write to durable field "rounds" in a function that never persists`
}

// Multi-assign reports once per statement.
func (a *acceptor) learn(v int) {
	a.decided, a.estimate = true, v // want `write to durable field "decided" in a function that never persists`
}

// Paired with a direct WAL append: clean.
func (a *acceptor) adoptPersisted(v int) {
	a.estimate = v
	a.log.Append(v)
}

// Paired through a persist* helper: clean.
func (a *acceptor) decidePersisted(v int) {
	a.estimate = v
	a.persistEstimate(v)
}

func (a *acceptor) persistEstimate(v int) { a.log.Append(v) }

// The innermost function is what counts: a closure that writes without
// persisting is flagged even when the enclosing function persists.
func (a *acceptor) viaClosure(v int) {
	f := func() {
		a.estimate = v // want `write to durable field "estimate" in a function that never persists`
	}
	f()
	a.log.Append(v)
}

// Non-durable fields are free.
func (a *acceptor) buffer(v int) {
	a.inbox = append(a.inbox, v)
}

// Recovery replay is the blessed escape: the state is rebuilt *from* the
// log, so re-persisting would double every record.
func (a *acceptor) recover(vals []int) {
	for _, v := range vals {
		a.estimate = v //xvet:ok durablewrite replaying the log rebuilds state that is already durable
	}
}
