// Package globalrand exercises the globalrand analyzer: draws from the
// shared package-level source are flagged; seeded *rand.Rand streams (and
// the constructors that build them) are the blessed pattern.
package globalrand

import "math/rand"

func bad() int {
	return rand.Intn(10) // want `rand\.Intn draws from the shared global source`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the shared global source`
}

func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors build explicit streams
	return r.Intn(10)
}

func annotatedEscape() float64 {
	return rand.Float64() //xvet:ok globalrand fixture: models a sanctioned wall-side jitter draw
}
