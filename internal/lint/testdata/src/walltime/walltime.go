// Package walltime exercises the walltime analyzer: wall-clock reads and
// sleeps are flagged; pure duration arithmetic and annotated Real-boundary
// escapes are not.
package walltime

import "time"

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func badTimer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
}

func okArithmetic(d time.Duration) time.Duration {
	// Duration math and data constructors never observe the host clock.
	return 3*time.Second + d
}

func okConstructor() time.Time {
	return time.Unix(0, 42)
}

func annotatedEscape() time.Time {
	return time.Now() //xvet:ok walltime fixture: models a Real-boundary stopwatch
}
