// Package detachedwait exercises the detachedwait analyzer: sync waits and
// bare channel receives block outside the virtual clock's view; select
// communication ops and annotated clock internals do not count.
package detachedwait

import "sync"

func badWaitGroup(wg *sync.WaitGroup) {
	wg.Wait() // want `sync\.WaitGroup\.Wait blocks outside the virtual clock`
}

func badCond(c *sync.Cond) {
	c.Wait() // want `sync\.Cond\.Wait blocks outside the virtual clock`
}

func badReceive(ch chan int) int {
	return <-ch // want `bare channel receive blocks outside the virtual clock`
}

func okSelect(ch chan int) int {
	select {
	case v := <-ch: // a select comm op is the select's business
		return v
	default:
		return 0
	}
}

func okSelectExpr(ch chan int, sink func(int)) {
	select {
	case <-ch:
		sink(1)
	default:
	}
}

func annotatedEscape(ch chan int) {
	<-ch //xvet:ok detachedwait fixture: models the clock-internal wake channel handoff
}
