// Package mapiter exercises the mapiter analyzer: map iteration order
// escaping into printed output or an outer slice is flagged unless a sort
// stands between the map and the reader.
package mapiter

import (
	"fmt"
	"sort"
	"strings"
)

func badPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to "out", which escapes the loop unsorted`
		out = append(out, k)
	}
	return out
}

func badBuilder(m map[string]int, b *strings.Builder) {
	for k := range m { // want `map iteration order reaches Builder\.WriteString`
		b.WriteString(k)
	}
}

func okSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // sorted before anything reads it
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okOrderFreeFold(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative fold: order cannot escape
		total += v
	}
	return total
}

func annotatedEscape(m map[string]int) []string {
	var out []string
	for k := range m { //xvet:ok mapiter fixture: models a fold whose order is normalized downstream
		out = append(out, k)
	}
	return out
}
