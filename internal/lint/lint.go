// Package lint implements xvet, the repo's determinism-discipline static
// analyzer suite. The whole value of this reproduction rests on runs being
// virtual-time, seed-deterministic, and byte-replayable; every rule here
// encodes an invariant the tree has already been burned by (detached waits,
// wall-time escapes, untracked goroutines, unordered map folds). The shapes
// deliberately mirror golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — so analyzers stay portable if the module ever takes that
// dependency, but the implementation is pure stdlib (go/parser, go/ast,
// go/types): the module stays zero-dependency.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named rule: a documented invariant plus the function that
// checks it over a type-checked package.
type Analyzer struct {
	// Name identifies the rule in diagnostics and //xvet:ok directives.
	Name string
	// Doc is the one-line description shown by `xvet -rules`.
	Doc string
	// Run reports violations on pass via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package: the syntax, the type
// information, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: where, which rule, and why. The JSON field
// names are the `xvet -json` output contract.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// Analyzers returns the full rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Walltime, Globalrand, Baregoroutine, Detachedwait, Mapiter, Durablewrite}
}

// AnalyzerNames returns the set of valid rule names (for directive
// validation).
func AnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Check runs every analyzer over every package, applies the //xvet:ok
// directive filter, and returns the surviving diagnostics sorted by
// position. Directive misuse (missing reason, unknown rule, a directive
// that suppresses nothing) is itself reported under the "directive" rule.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := checkPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

func checkPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	dirs, dirDiags := parseDirectives(pkg)
	kept := raw[:0]
	for _, d := range raw {
		if !suppress(dirs, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, dirDiags...)
	for _, dir := range dirs {
		if dir.complete() && !dir.used {
			kept = append(kept, Diagnostic{
				File: dir.file, Line: dir.line, Col: dir.col,
				Rule:    DirectiveRule,
				Message: fmt.Sprintf("unused //xvet:ok %s directive: nothing to suppress on line %d", dir.rule, dir.target),
			})
		}
	}
	return kept, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}
