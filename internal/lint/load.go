package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	Path    string // import path
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sources map[string][]byte // filename → raw source (directive placement)
}

// FindModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModuleRoot(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks the packages matched by patterns ("./...",
// "dir/...", or plain directories, resolved against the module root) and
// returns them sorted by import path. It is pure stdlib: module-internal
// imports are resolved against the packages loaded here, standard-library
// imports through the source importer.
func Load(root, modpath string, patterns []string) ([]*Package, error) {
	l := newLoader(root, modpath)
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.check(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single standalone package (a test fixture): no
// module-internal imports, stdlib only.
func LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(dir, "fixture/"+filepath.Base(dir))
	pkg, err := l.check(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	return pkg, nil
}

type loader struct {
	fset    *token.FileSet
	ctx     build.Context
	root    string
	modpath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path → checked package
	loading map[string]bool     // cycle guard
}

func newLoader(root, modpath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		ctx:     build.Default,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// expand resolves patterns to package directories (absolute, sorted).
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.root, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.root, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPath maps a directory under the module root to its import path.
func (l *loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modpath, nil
	}
	return l.modpath + "/" + filepath.ToSlash(rel), nil
}

// check type-checks the package in dir (and, recursively, its
// module-internal dependencies). It returns nil for directories with no
// buildable non-test Go files.
func (l *loader) check(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, sources, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Ensure module-internal dependencies are checked first, so the
	// importer below can hand out their *types.Package.
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if l.internal(ipath) {
				idir := l.root
				if ipath != l.modpath {
					idir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(ipath, l.modpath+"/")))
				}
				if _, err := l.check(idir); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			return l.importPkg(ipath, dir)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:    path,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sources: sources,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *loader) internal(path string) bool {
	return path == l.modpath || strings.HasPrefix(path, l.modpath+"/")
}

func (l *loader) importPkg(path, srcDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.internal(path) {
		if pkg, ok := l.pkgs[path]; ok {
			return pkg.Types, nil
		}
		return nil, fmt.Errorf("internal package %s not loaded", path)
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// parseDir parses the buildable, non-test Go files of dir. Build
// constraints (//go:build lines and GOOS/GOARCH file suffixes) are
// honored for the host platform, so per-arch variants (vclock's gid
// implementations) don't collide.
func (l *loader) parseDir(dir string) ([]*ast.File, map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	sources := make(map[string][]byte)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := l.ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		sources[full] = src
	}
	return files, sources, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
