package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests: each analyzer runs alone over testdata/src/<name>, and the
// diagnostics must line up one-for-one with the backtick-quoted `// want`
// expectations embedded in the fixture source. Every fixture carries at
// least one true positive and one //xvet:ok-annotated escape, so these
// tests pin both halves of the contract: the rule fires, and a complete
// directive silences it.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			diags := checkFixture(t, a.Name, []*Analyzer{a})
			fired := false
			for _, d := range diags {
				if d.Rule == a.Name {
					fired = true
				}
			}
			if !fired {
				t.Errorf("analyzer %s produced no %s diagnostics on its own fixture", a.Name, a.Name)
			}
		})
	}
}

// The directive fixture runs under the full suite: its chained standalone
// escapes span two rules, and directive misuse (missing reason, unknown
// rule, unused) must be reported without suppressing the underlying
// diagnostics.
func TestDirectiveFixture(t *testing.T) {
	diags := checkFixture(t, "directive", Analyzers())
	misuse := 0
	for _, d := range diags {
		if d.Rule == DirectiveRule {
			misuse++
		}
	}
	// Missing reason, unknown rule, missing everything, unused.
	if misuse != 4 {
		t.Errorf("directive fixture produced %d directive diagnostics, want 4", misuse)
	}
}

// checkFixture loads testdata/src/<name>, runs the given analyzers through
// Check (directive filtering included), and fails the test on any
// mismatch between diagnostics and want-expectations. It returns the
// diagnostics for extra assertions.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags, err := Check([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	wants := parseWants(pkg)
	for _, d := range diags {
		if !consumeWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("no diagnostic at %s matched want %q", key, w.pattern)
			}
		}
	}
	return diags
}

// want is one expectation: a regex that some diagnostic on its line must
// match.
type want struct {
	pattern string
	re      *regexp.Regexp
	used    bool
}

// wantRe extracts backtick-quoted regexes from the text after a `// want`
// marker. Backticks keep regex metacharacters (\., ") out of Go string
// escaping entirely.
var wantRe = regexp.MustCompile("`([^`]*)`")

// parseWants scans the fixture sources for `// want` expectations, keyed by
// file:line.
func parseWants(pkg *Package) map[string][]*want {
	wants := make(map[string][]*want)
	for file, src := range pkg.Sources {
		for i, line := range strings.Split(string(src), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", file, i+1)
			for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
				wants[key] = append(wants[key], &want{pattern: m[1], re: regexp.MustCompile(m[1])})
			}
		}
	}
	return wants
}

// consumeWant marks the first unused want on the diagnostic's line whose
// regex matches the message, reporting whether one existed.
func consumeWant(wants map[string][]*want, d Diagnostic) bool {
	for _, w := range wants[fmt.Sprintf("%s:%d", d.File, d.Line)] {
		if !w.used && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// The live tree must lint clean: every historical violation is either fixed
// or carries a reasoned //xvet:ok annotation. This is the same gate CI
// applies via `go run ./cmd/xvet ./...`, pinned here so plain `go test`
// catches a new violation without the separate tool run.
func TestTreeLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, modpath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	pkgs, err := Load(root, modpath, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := Check(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
