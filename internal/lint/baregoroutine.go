package lint

import "go/ast"

// Baregoroutine flags raw go statements. A goroutine spawned outside
// vclock.Go/GoAfter/GoAfterRunner is invisible to the attachment ledger:
// the clock may advance while it still has work in flight, which is the
// untracked-goroutine class behind PR 5's wall-races (a free-running
// cleaner loop starving verdict computation). Wall-side workers — sweep
// fan-out in exper and scenario, the vclock implementation itself — are
// annotated escapes, not path exemptions.
var Baregoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc:  "no raw go statements in simulation code; goroutines must attach via vclock Go/GoAfter/GoAfterRunner",
	Run:  runBaregoroutine,
}

func runBaregoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare go statement spawns a goroutine the virtual clock cannot track; use vclock Go/GoAfter/GoAfterRunner")
			}
			return true
		})
	}
	return nil
}
