package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detachedwait flags blocking waits the virtual clock cannot see:
// sync.WaitGroup.Wait, sync.Cond.Wait, and bare channel receives. A
// clock-attached goroutine parked in one of these is still counted
// runnable (or, if wrapped in Detached, re-attaches at an instant the
// schedule doesn't order), so the clock either deadlocks or pumps
// background deadlines and burns nondeterministic virtual time — PR 4's
// router bug, where a detached WaitGroup.Wait let heartbeat deadlines
// fire during the join, as a lint rule. The sanctioned primitive is a
// vclock Cond (or vclock.Sleep); the clock's own implementation of those
// primitives is the annotated escape.
var Detachedwait = &Analyzer{
	Name: "detachedwait",
	Doc:  "no sync.WaitGroup.Wait/sync.Cond.Wait/bare channel receive on simulation paths; block on a vclock Cond",
	Run:  runDetachedwait,
}

func runDetachedwait(pass *Pass) error {
	for _, f := range pass.Files {
		// Receives serving as a select communication op are the select's
		// business, not a bare blocking receive; skip them.
		selectComm := make(map[*ast.UnaryExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, cl := range sel.Body.List {
				comm := cl.(*ast.CommClause).Comm
				switch s := comm.(type) {
				case *ast.ExprStmt:
					if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						selectComm[u] = true
					}
				case *ast.AssignStmt:
					if len(s.Rhs) == 1 {
						if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							selectComm[u] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !selectComm[n] {
					pass.Reportf(n.Pos(), "bare channel receive blocks outside the virtual clock's view; wait on a vclock Cond")
				}
			case *ast.CallExpr:
				if recv, ok := syncWait(pass, n); ok {
					pass.Reportf(n.Pos(), "sync.%s.Wait blocks outside the virtual clock's view; join on a vclock Cond", recv)
				}
			}
			return true
		})
	}
	return nil
}

// syncWait reports whether call is a Wait method call on sync.WaitGroup or
// sync.Cond, returning the receiver type name.
func syncWait(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := pass.Info.Selections[sel]
	if s == nil || s.Obj().Name() != "Wait" {
		return "", false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	if name := obj.Name(); name == "WaitGroup" || name == "Cond" {
		return name, true
	}
	return "", false
}
