package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// DirectiveRule is the pseudo-rule under which directive misuse is
// reported: an //xvet:ok with no reason, an unknown rule name, or a
// directive that suppresses nothing. Directives are the escape hatch of
// the suite; a sloppy escape hatch is how disciplines rot, so the hatch
// itself is checked.
const DirectiveRule = "directive"

// directivePrefix introduces a suppression: `//xvet:ok <rule> <reason>`.
// The reason is mandatory — an annotation that doesn't say *why* the
// escape is legitimate documents nothing for the next reader.
const directivePrefix = "//xvet:ok"

// directive is one parsed //xvet:ok comment.
type directive struct {
	file   string
	line   int // line the comment starts on
	col    int
	rule   string
	reason string
	known  bool // rule names a registered analyzer
	target int  // line whose diagnostics this directive suppresses
	used   bool
}

// complete reports whether the directive is well-formed enough to
// suppress: a known rule and a non-empty reason.
func (d *directive) complete() bool { return d.known && d.reason != "" }

// parseDirectives extracts every //xvet:ok directive in the package and
// returns them together with diagnostics for malformed ones.
//
// Placement: a directive trailing code on a line suppresses that line; a
// directive on a line of its own suppresses the next line (consecutive
// standalone directives chain, all targeting the first non-directive
// line, so one statement can carry several rule escapes).
func parseDirectives(pkg *Package) ([]*directive, []Diagnostic) {
	names := AnalyzerNames()
	var dirs []*directive
	var diags []Diagnostic
	for _, f := range pkg.Files {
		standalone := make(map[int]*directive)
		var fileDirs []*directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := text[len(directivePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //xvet:okay — not ours
				}
				// Fixture files append `// want "..."` expectations to
				// the same comment token; they are not part of the reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{file: pos.Filename, line: pos.Line, col: pos.Column}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.rule = fields[0]
					d.known = names[d.rule]
					d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), d.rule))
				}
				switch {
				case d.rule == "":
					diags = append(diags, Diagnostic{
						File: d.file, Line: d.line, Col: d.col, Rule: DirectiveRule,
						Message: "//xvet:ok directive missing rule and reason (want //xvet:ok <rule> <reason>)",
					})
				case !d.known:
					diags = append(diags, Diagnostic{
						File: d.file, Line: d.line, Col: d.col, Rule: DirectiveRule,
						Message: fmt.Sprintf("//xvet:ok names unknown rule %q (see xvet -rules)", d.rule),
					})
				case d.reason == "":
					diags = append(diags, Diagnostic{
						File: d.file, Line: d.line, Col: d.col, Rule: DirectiveRule,
						Message: fmt.Sprintf("//xvet:ok %s directive missing reason: say why this escape is sound", d.rule),
					})
				}
				fileDirs = append(fileDirs, d)
				if !trailsCode(pkg, f, d) {
					standalone[d.line] = d
				}
			}
		}
		// A trailing directive targets its own line; a standalone one
		// targets the first following non-directive line.
		for _, d := range fileDirs {
			if standalone[d.line] != d {
				d.target = d.line
				continue
			}
			t := d.line + 1
			for standalone[t] != nil {
				t++
			}
			d.target = t
		}
		dirs = append(dirs, fileDirs...)
	}
	return dirs, diags
}

// trailsCode reports whether the directive shares its line with source
// text (code before the comment), as opposed to sitting on a line of its
// own.
func trailsCode(pkg *Package, f *ast.File, d *directive) bool {
	src := pkg.Sources[d.file]
	if src == nil {
		return false
	}
	// Walk back from the comment's byte offset to the preceding newline;
	// any non-whitespace on the way means the directive trails code.
	off := d.col - 1 // column is 1-based; find the line start via offsets
	lineStart := 0
	line := 1
	for i := 0; i < len(src) && line < d.line; i++ {
		if src[i] == '\n' {
			line++
			lineStart = i + 1
		}
	}
	for i := lineStart; i < lineStart+off && i < len(src); i++ {
		if src[i] != ' ' && src[i] != '\t' {
			return true
		}
	}
	return false
}

// suppress consumes the first complete directive matching the diagnostic,
// if any.
func suppress(dirs []*directive, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.complete() && dir.rule == d.Rule && dir.file == d.File && dir.target == d.Line {
			dir.used = true
			return true
		}
	}
	return false
}
