package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mapiter flags range-over-map loops whose iteration order can escape into
// results: bodies that print/write output or append to a slice that
// outlives the loop, with no sort between the map and the reader. Go
// randomizes map iteration order per run *by design*, so any verdict fold,
// render, or verifier input assembled this way differs between identical
// seeds — the misattribution/ordering class that PR 6's completion
// accounting and every deterministic-fold fix had to hunt down by hand.
// The blessed idiom stays cheap: collect keys, sort, range the slice.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "no range over a map that emits ordered output or fills an outer slice without a subsequent sort",
	Run:  runMapiter,
}

func runMapiter(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass, rs.X) {
				return true
			}
			if body := enclosingFuncBody(stack); body != nil {
				checkMapRange(pass, rs, body)
			}
			return true
		})
	}
	return nil
}

func isMapType(pass *Pass, x ast.Expr) bool {
	t := pass.Info.TypeOf(x)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the ancestor stack (excluding the node itself).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// checkMapRange inspects one map-range loop for order-sensitive sinks.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	appendSinks := make(map[types.Object]string)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(pass, n); ok {
				pass.Reportf(rs.Pos(), "map iteration order reaches %s; iterate a sorted key slice instead", name)
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if obj, name := appendTarget(pass, n.Lhs[i], rhs); obj != nil && obj.Pos() < rs.Pos() {
					appendSinks[obj] = name
				}
			}
		}
		return true
	})
	for obj, name := range appendSinks {
		if !sortedAfter(pass, fnBody, rs.End(), obj) {
			pass.Reportf(rs.Pos(), "map iteration appends to %q, which escapes the loop unsorted; sort it (or the map's keys) before it is read", name)
			return
		}
	}
}

// appendTarget matches `x = append(x, ...)`-shaped assignments and returns
// the destination object (identifier or selector field) and its name.
func appendTarget(pass *Pass, lhs, rhs ast.Expr) (types.Object, string) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, ""
	}
	switch dst := lhs.(type) {
	case *ast.Ident:
		return pass.Info.ObjectOf(dst), dst.Name
	case *ast.SelectorExpr:
		return pass.Info.ObjectOf(dst.Sel), dst.Sel.Name
	}
	return nil, ""
}

// orderedOutputCall reports whether call emits ordered output: the fmt
// print family, or a Write* method on strings.Builder, bytes.Buffer, or an
// io.Writer.
func orderedOutputCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	s := pass.Info.Selections[sel]
	if s == nil || len(s.Obj().Name()) < 5 || s.Obj().Name()[:5] != "Write" {
		return "", false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "io.Writer":
		return named.Obj().Name() + "." + s.Obj().Name(), true
	}
	return "", false
}

// sortedAfter reports whether obj is passed to a sort (package sort or
// slices) lexically after pos within body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
