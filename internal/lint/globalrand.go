package lint

import (
	"go/ast"
	"go/types"
)

// Globalrand flags package-level math/rand functions. The global source is
// process-wide shared state: two goroutines drawing from it race for
// position in one stream, so equal seeds stop implying equal draws the
// moment scheduling varies. PR 5's byte-determinism work moved every draw
// onto per-sender seeded *rand.Rand streams for exactly this reason;
// methods on an explicit *rand.Rand (and the New/NewSource/NewZipf
// constructors that build one) stay legal.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "no package-level math/rand functions; randomness must flow through seeded *rand.Rand streams",
	Run:  runGlobalrand,
}

// randConstructors build explicit seeded streams — the blessed pattern.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // *rand.Rand / *rand.Zipf methods: seeded streams
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "rand.%s draws from the shared global source; draw from a seeded *rand.Rand stream instead", fn.Name())
			return true
		})
	}
	return nil
}
