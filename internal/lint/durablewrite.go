package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Durablewrite flags writes to durable state that bypass the write-ahead
// log. A struct field whose declaration carries a trailing //xvet:durable
// marker is a promise: its value must survive a crash, so every assignment
// to it (or through it, for marked maps) has to be paired with a persist.
// The check is function-granular — the innermost function containing the
// write must also call a persisting function (a name starting with
// "persist", or a WAL Append) — because the pairing discipline in this
// tree is exactly that shape: mutate under the lock, release, persist
// before the message that reveals the state goes out (internal/wal,
// DESIGN.md §9). In-memory baselines (the paper's assumed crash-free
// shared objects, the batched plane) escape with a reasoned //xvet:ok.
// Markers are package-scoped: the fields are unexported, so marker and
// write always share a package.
var Durablewrite = &Analyzer{
	Name: "durablewrite",
	Doc:  "no write to an //xvet:durable field in a function that never persists (persist*/Append)",
	Run:  runDurablewrite,
}

func runDurablewrite(pass *Pass) error {
	marked := markedDurableFields(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		persists := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				name, hit := durableTarget(pass, marked, lhs)
				if !hit {
					continue
				}
				fn := enclosingFunc(stack)
				if fn == nil {
					break
				}
				if done, ok := persists[fn]; !ok {
					done = containsPersistCall(fn)
					persists[fn] = done
					if done {
						break
					}
				} else if done {
					break
				}
				pass.Reportf(lhs.Pos(), "write to durable field %q in a function that never persists; append to the WAL (persist*) before the state escapes, or annotate the in-memory baseline", name)
				break // one report per statement; the directive is line-keyed
			}
			return true
		})
	}
	return nil
}

// markedDurableFields collects the field objects whose declarations carry a
// trailing //xvet:durable comment.
func markedDurableFields(pass *Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Comment == nil {
					continue
				}
				durable := false
				for _, c := range field.Comment.List {
					if strings.HasPrefix(c.Text, "//xvet:durable") {
						durable = true
					}
				}
				if !durable {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						marked[obj] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

// durableTarget reports whether an assignment destination resolves to a
// marked field: a selector of the field itself, or an index expression over
// a marked map/slice field.
func durableTarget(pass *Pass, marked map[types.Object]bool, lhs ast.Expr) (string, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if obj := pass.Info.ObjectOf(e.Sel); obj != nil && marked[obj] {
				return e.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// enclosingFunc returns the innermost function declaration or literal on
// the ancestor stack (excluding the node itself).
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// containsPersistCall reports whether fn's body calls a persisting
// function: any callee named persist* (the tree's pairing helpers) or
// Append (a direct WAL write).
func containsPersistCall(fn ast.Node) bool {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.HasPrefix(name, "persist") || name == "Append" {
			found = true
		}
		return !found
	})
	return found
}
