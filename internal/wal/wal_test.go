package wal

import (
	"testing"
	"time"

	"xability/internal/vclock"
)

func TestLogSurvivesReacquisition(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{})
	l := s.Log("replica-0")
	l.Append(Record{Kind: "est", Key: "req-1", Round: 2})
	l.Append(Record{Kind: "dec", Key: "req-1", Val: "commit"})

	// A crash tears down the process, not the disk: asking for the log by
	// name again returns the same records.
	l2 := s.Log("replica-0")
	if l2 != l {
		t.Fatalf("Log(%q) returned a different log after reacquisition", "replica-0")
	}
	var got []Record
	l2.Replay(func(r Record) { got = append(got, r) })
	if len(got) != 2 || got[0].Kind != "est" || got[1].Val != "commit" {
		t.Fatalf("replay = %+v, want the two appended records in order", got)
	}
	if s.Log("replica-1").Len() != 0 {
		t.Fatal("a different process's log is not empty")
	}
}

func TestSyncTariffChargesClock(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{SyncLatency: 50 * time.Microsecond})
	l := s.Log("replica-0")
	done := make(chan time.Duration, 1)
	clk.Go(func() {
		start := clk.Now()
		l.Append(Record{Kind: "est"})
		l.Append(Record{Kind: "est"})
		done <- clk.Now() - start
	})
	if d := <-done; d != 100*time.Microsecond {
		t.Fatalf("two appends took %v of virtual time, want 100µs", d)
	}
	if st := s.Stats(); st.Appends != 2 || st.SyncTime != 100*time.Microsecond {
		t.Fatalf("stats = %+v, want 2 appends / 100µs synced", st)
	}
}

func TestZeroTariffIsScheduleInvisible(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{})
	l := s.Log("replica-0")
	done := make(chan time.Duration, 1)
	clk.Go(func() {
		start := clk.Now()
		for i := 0; i < 100; i++ {
			l.Append(Record{Kind: "est"})
		}
		done <- clk.Now() - start
	})
	if d := <-done; d != 0 {
		t.Fatalf("zero-tariff appends advanced the clock by %v, want 0", d)
	}
}

// The append path must stay inside the PR-5 zero-alloc budgets: one
// amortized slice growth is all it may cost. Flat Record fields exist
// exactly so appending does not box.
func TestAppendAllocBudget(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{})
	l := s.Log("replica-0")
	// Pre-grow so the measured runs never resize the slice.
	for i := 0; i < 4096; i++ {
		l.Append(Record{Kind: "warm"})
	}
	rec := Record{Kind: "est", Key: "req-1", Space: 1, Round: 3, Aux: 2, Str: "client-1"}
	avg := testing.AllocsPerRun(1000, func() { l.Append(rec) })
	if avg > 0 {
		t.Fatalf("Append allocates %.2f objects/op, want 0", avg)
	}
}
