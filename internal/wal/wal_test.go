package wal

import (
	"testing"
	"time"

	"xability/internal/vclock"
)

func TestLogSurvivesReacquisition(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{})
	l := s.Log("replica-0")
	l.Append(Record{Kind: "est", Key: "req-1", Round: 2})
	l.Append(Record{Kind: "dec", Key: "req-1", Val: "commit"})

	// A crash tears down the process, not the disk: asking for the log by
	// name again returns the same records.
	l2 := s.Log("replica-0")
	if l2 != l {
		t.Fatalf("Log(%q) returned a different log after reacquisition", "replica-0")
	}
	var got []Record
	l2.Replay(func(r Record) { got = append(got, r) })
	if len(got) != 2 || got[0].Kind != "est" || got[1].Val != "commit" {
		t.Fatalf("replay = %+v, want the two appended records in order", got)
	}
	if s.Log("replica-1").Len() != 0 {
		t.Fatal("a different process's log is not empty")
	}
}

func TestSyncTariffChargesClock(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{SyncLatency: 50 * time.Microsecond})
	l := s.Log("replica-0")
	done := make(chan time.Duration, 1)
	clk.Go(func() {
		start := clk.Now()
		l.Append(Record{Kind: "est"})
		l.Append(Record{Kind: "est"})
		done <- clk.Now() - start
	})
	if d := <-done; d != 100*time.Microsecond {
		t.Fatalf("two appends took %v of virtual time, want 100µs", d)
	}
	if st := s.Stats(); st.Appends != 2 || st.SyncTime != 100*time.Microsecond {
		t.Fatalf("stats = %+v, want 2 appends / 100µs synced", st)
	}
}

func TestZeroTariffIsScheduleInvisible(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{})
	l := s.Log("replica-0")
	done := make(chan time.Duration, 1)
	clk.Go(func() {
		start := clk.Now()
		for i := 0; i < 100; i++ {
			l.Append(Record{Kind: "est"})
		}
		done <- clk.Now() - start
	})
	if d := <-done; d != 0 {
		t.Fatalf("zero-tariff appends advanced the clock by %v, want 0", d)
	}
}

// The append path must stay inside the PR-5 zero-alloc budgets: one
// amortized slice growth is all it may cost. Flat Record fields exist
// exactly so appending does not box.
func TestAppendAllocBudget(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{})
	l := s.Log("replica-0")
	// Pre-grow so the measured runs never resize the slice.
	for i := 0; i < 4096; i++ {
		l.Append(Record{Kind: "warm"})
	}
	rec := Record{Kind: "est", Key: "req-1", Space: 1, Round: 3, Aux: 2, Str: "client-1"}
	avg := testing.AllocsPerRun(1000, func() { l.Append(rec) })
	if avg > 0 {
		t.Fatalf("Append allocates %.2f objects/op, want 0", avg)
	}
}

// A crash between Append and the end of the sync wait durably drops the
// unsynced suffix: the torn record must not be visible to recovery.
func TestCrashMidSyncTearsUnsyncedTail(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{SyncLatency: 100 * time.Microsecond})
	l := s.Log("replica-0")

	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		l.Append(Record{Kind: "est", Key: "durable"}) // synced at t=100µs
		l.Append(Record{Kind: "est", Key: "torn"})    // sync in flight at crash
	})
	// Crash at t=150µs: the first append's sync has completed, the
	// second's is mid-flight and must tear.
	crashed := make(chan int, 1)
	clk.GoAfter(150*time.Microsecond, func() {
		crashed <- s.Crash("replica-0")
	})
	<-done
	if n := <-crashed; n != 1 {
		t.Fatalf("Crash tore %d records, want 1", n)
	}
	var got []Record
	l.Replay(func(r Record) { got = append(got, r) })
	if len(got) != 1 || got[0].Key != "durable" {
		t.Fatalf("post-crash replay = %+v, want only the synced record", got)
	}
	if st := s.Stats(); st.TornRecords != 1 {
		t.Fatalf("stats.TornRecords = %d, want 1", st.TornRecords)
	}
	// The new incarnation's appends land after the torn tail, durably.
	done2 := make(chan struct{})
	clk.Go(func() {
		defer close(done2)
		l.Append(Record{Kind: "est", Key: "after"})
	})
	<-done2
	if n := l.Len(); n != 2 {
		t.Fatalf("log has %d records after restart append, want 2", n)
	}
}

// Crash exactly at the sync boundary is deterministic: the crash op and
// the sync completion are both clock events, ordered by the schedule.
func TestCrashWithNothingInFlightTearsNothing(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{SyncLatency: 50 * time.Microsecond})
	l := s.Log("replica-0")
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		l.Append(Record{Kind: "est", Key: "a"})
	})
	<-done
	if n := s.Crash("replica-0"); n != 0 {
		t.Fatalf("Crash tore %d records with nothing in flight, want 0", n)
	}
	if l.Len() != 1 {
		t.Fatalf("log length = %d, want 1", l.Len())
	}
}

// lastPerKey is the test compactor: keep only the latest record per
// (Kind, Key) — the shape of every writer's real fold (records are
// last-writer-wins overwrites).
func lastPerKey(prefix []Record) []Record {
	type k struct{ kind, key string }
	last := make(map[k]int, len(prefix))
	for i, r := range prefix {
		if r.Kind == KindSnapshot {
			continue
		}
		last[k{r.Kind, r.Key}] = i
	}
	out := make([]Record, 0, len(last))
	for i, r := range prefix {
		if r.Kind == KindSnapshot {
			continue
		}
		if last[k{r.Kind, r.Key}] == i {
			out = append(out, r)
		}
	}
	return out
}

func TestCompactionFoldsPrefixAndKeepsSuffix(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{CompactThreshold: 8})
	l := s.Log("replica-0")
	l.SetCompactor(lastPerKey)
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		// 20 overwrites of one key: auto-compaction should keep the log
		// from reaching 20 records.
		for i := 0; i < 20; i++ {
			l.Append(Record{Kind: "est", Key: "k", Aux: int32(i)})
		}
	})
	<-done
	if n := l.Len(); n >= 20 {
		t.Fatalf("log grew to %d records, want compaction to bound it", n)
	}
	// Replay must see the latest overwrite regardless of folding.
	var lastAux int32 = -1
	l.Replay(func(r Record) {
		if r.Kind == "est" && r.Key == "k" {
			lastAux = r.Aux
		}
	})
	if lastAux != 19 {
		t.Fatalf("replayed latest Aux = %d, want 19", lastAux)
	}
	st := s.Stats()
	if st.Compactions == 0 || st.CompactedRecords == 0 {
		t.Fatalf("stats = %+v, want compactions recorded", st)
	}
	if st.LiveRecords != l.Len() {
		t.Fatalf("stats.LiveRecords = %d, want %d", st.LiveRecords, l.Len())
	}
}

// The snapshot write charges its size tariff on the clock, and a crash
// during that write discards the torn snapshot: the old prefix stands.
func TestCrashDuringSnapshotDiscardsIt(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{
		SyncLatency:  10 * time.Microsecond,
		SnapshotSync: 100 * time.Microsecond,
	})
	l := s.Log("replica-0")
	l.SetCompactor(lastPerKey)
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		// 6 appends at 10µs each end at t=60µs; Compact then writes a
		// 1-record snapshot, a (1+1)×100µs = 200µs write.
		for i := 0; i < 6; i++ {
			l.Append(Record{Kind: "est", Key: "k", Aux: int32(i)})
		}
		l.Compact()
	})
	// Crash at t=100µs, inside the snapshot write.
	clk.GoAfter(100*time.Microsecond, func() {
		s.Crash("replica-0")
	})
	<-done
	if got := l.Installs(); got != 0 {
		t.Fatalf("snapshot installed despite mid-write crash (installs=%d)", got)
	}
	if n := l.Len(); n != 6 {
		t.Fatalf("log has %d records, want the uncompacted 6", n)
	}
	if st := s.Stats(); st.Compactions != 0 {
		t.Fatalf("stats.Compactions = %d, want 0", st.Compactions)
	}
}

// Zero sync latency keeps the whole plane schedule-invisible even with
// compaction on: the derived snapshot tariff is zero too.
func TestZeroTariffCompactionIsScheduleInvisible(t *testing.T) {
	clk := vclock.NewVirtual()
	defer clk.Stop()
	s := NewStore(clk, Config{CompactThreshold: 4})
	l := s.Log("replica-0")
	l.SetCompactor(lastPerKey)
	done := make(chan time.Duration, 1)
	clk.Go(func() {
		start := clk.Now()
		for i := 0; i < 64; i++ {
			l.Append(Record{Kind: "est", Key: "k", Aux: int32(i)})
		}
		done <- clk.Now() - start
	})
	if d := <-done; d != 0 {
		t.Fatalf("zero-tariff compaction advanced the clock by %v, want 0", d)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("no compaction ran")
	}
}
