// Package wal simulates stable storage: per-process write-ahead logs whose
// sync latency is charged on the virtual clock.
//
// The paper's failure model (§2) lets processes crash and recover, and its
// hardest demands — replay effects idempotently, never twice — only bite
// when a replica comes back with its memory gone. This package is the
// "disk" that survives the crash: a Store models the deployment's stable
// storage, one Log per process, and a crash (which tears down the
// process's goroutines and in-memory state) leaves the Log untouched. A
// restarted process replays its Log to rebuild exactly the state it had
// promised to remember.
//
// Durability has a price, and the price is the point: every Append charges
// a configurable sync latency on the clock (a CostModel-style tariff, the
// fsync of the simulation), so experiments can plot what exactly-once
// recovery costs against how often it is needed (EXPERIMENTS.md T12). A
// zero tariff appends without touching the schedule at all, so deployments
// that never restart are byte-identical with the WAL on or off.
//
// Appends are deliberately generic — flat Record fields, no imports from
// the protocol layers — so consensus acceptors and protocol servers share
// one log format and one replay discipline (DESIGN.md §9).
package wal

import (
	"sync"
	"time"

	"xability/internal/obs"
	"xability/internal/vclock"
)

// Record is one durable log entry. The fields are a flat superset of what
// the protocol layers persist; each layer uses the subset it needs and
// tags entries with its own Kind. Flat fields (instead of a boxed
// per-layer payload) keep Append allocation-free on the hot path: strings
// slot into Key/Str without boxing, and Val is reserved for values that
// are interfaces already upstream (consensus estimates and decisions).
type Record struct {
	// Kind tags the record type; namespacing is by convention per writer
	// ("est", "dec" for consensus; "req", "round", "fin" for the server).
	Kind string
	// Key is the primary key: a request ID or a consensus instance ID.
	Key string
	// Space subdivides Key (the consensus key space: owner/result/outcome).
	Space uint8
	// Round is the instance round of the keyed entry.
	Round int32
	// Aux is a secondary round — e.g. the adoption timestamp an acceptor
	// must remember alongside its estimate.
	Aux int32
	// Str is a string payload (a result value, a client process ID).
	Str string
	// Val is a boxed payload for values that already travel as interfaces.
	Val any
}

// Config tunes the store's tariff.
type Config struct {
	// SyncLatency is charged on the clock for every Append — the cost of
	// forcing the entry to stable storage before acting on it. Zero (the
	// default) makes appends free and schedule-invisible: runs with and
	// without an idle WAL stay byte-identical.
	SyncLatency time.Duration
	// Metrics, when non-nil, receives per-append counters (wal.appends,
	// wal.sync_ns) in the run's registry. Nil costs nothing.
	Metrics *obs.Metrics
}

// Stats aggregates the store's activity for cost-curve experiments.
type Stats struct {
	// Appends counts records forced to stable storage, over all logs.
	Appends int
	// SyncTime is the total virtual time spent in sync waits.
	SyncTime time.Duration
}

// Store models one deployment's stable storage: a set of per-process logs
// that survive process crashes. Logs are keyed by process ID string; a
// restarted process asks for its log by the same name and finds its
// pre-crash records.
type Store struct {
	clk vclock.Clock
	cfg Config

	mu      sync.Mutex
	logs    map[string]*Log
	appends int
	synced  time.Duration
}

// NewStore builds the deployment's stable storage on the given clock.
func NewStore(clk vclock.Clock, cfg Config) *Store {
	return &Store{clk: clk, cfg: cfg, logs: make(map[string]*Log)}
}

// Log returns the named process's log, creating it empty on first use.
// Calling Log again with the same name — before or after a crash —
// returns the same log: the disk outlives the process.
func (s *Store) Log(proc string) *Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[proc]
	if !ok {
		l = &Log{store: s, proc: proc}
		s.logs[proc] = l
	}
	return l
}

// SyncLatency reports the configured per-append tariff.
func (s *Store) SyncLatency() time.Duration { return s.cfg.SyncLatency }

// Stats returns the store's aggregate activity.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Appends: s.appends, SyncTime: s.synced}
}

// Log is one process's write-ahead log.
type Log struct {
	store *Store
	proc  string

	mu   sync.Mutex
	recs []Record
}

// Append forces one record to stable storage, charging the store's sync
// latency on the clock. The caller must not hold any lock that other
// clock-attached goroutines block on: the sync wait is a scheduled event,
// and a goroutine blocked on a caller-held mutex counts as runnable to the
// clock, which would stall virtual time forever. Append itself takes only
// the log's internal lock, and releases it before sleeping.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
	s := l.store
	d := s.cfg.SyncLatency
	s.mu.Lock()
	s.appends++
	s.synced += d
	s.mu.Unlock()
	s.cfg.Metrics.Inc(obs.WALAppends)
	s.cfg.Metrics.Add(obs.WALSyncNS, int64(d))
	if d > 0 {
		s.clk.Sleep(d)
	}
}

// Len reports the number of records in the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Replay calls fn for every record in append order. It snapshots under the
// log lock and replays outside it, so fn may append (recovery code that
// re-persists is safe, if unusual).
func (l *Log) Replay(fn func(Record)) {
	l.mu.Lock()
	recs := append([]Record(nil), l.recs...)
	l.mu.Unlock()
	for _, r := range recs {
		fn(r)
	}
}
