// Package wal simulates stable storage: per-process write-ahead logs whose
// sync latency is charged on the virtual clock.
//
// The paper's failure model (§2) lets processes crash and recover, and its
// hardest demands — replay effects idempotently, never twice — only bite
// when a replica comes back with its memory gone. This package is the
// "disk" that survives the crash: a Store models the deployment's stable
// storage, one Log per process, and a crash (which tears down the
// process's goroutines and in-memory state) leaves the Log untouched. A
// restarted process replays its Log to rebuild exactly the state it had
// promised to remember.
//
// Durability has a price, and the price is the point: every Append charges
// a configurable sync latency on the clock (a CostModel-style tariff, the
// fsync of the simulation), so experiments can plot what exactly-once
// recovery costs against how often it is needed (EXPERIMENTS.md T12, T14).
// A zero tariff appends without touching the schedule at all, so
// deployments that never restart are byte-identical with the WAL on or
// off.
//
// Two refinements keep the disk honest over long histories:
//
//   - Torn tails. A record is durable only once its sync completes. A
//     crash that lands between Append and the end of the sync wait tears
//     the unsynced suffix off the log — deterministically, at the crash's
//     virtual instant — so recovery never sees a write the process was
//     still paying for. (Store.Crash is the crash plane's hook.)
//
//   - Snapshots and compaction. Without truncation the log is O(history).
//     A writer registers a Compactor — a pure fold over its own records
//     that produces an equivalent, smaller prefix (its durable state as
//     records) — and the log replaces the synced prefix with that
//     snapshot when the threshold is reached, charging a snapshot-size
//     tariff on the clock. Recovery then replays snapshot-then-suffix
//     through the same Replay path; the fold's contract is precisely
//     replay(snapshot+suffix) ≡ replay(full log). Like a real
//     implementation's side-file swap, an installation is atomic: a crash
//     during the snapshot write discards the torn snapshot and leaves the
//     old log intact.
//
// Appends are deliberately generic — flat Record fields, no imports from
// the protocol layers — so consensus acceptors and protocol servers share
// one log format and one replay discipline (DESIGN.md §9).
package wal

import (
	"sync"
	"time"

	"xability/internal/obs"
	"xability/internal/vclock"
)

// Record is one durable log entry. The fields are a flat superset of what
// the protocol layers persist; each layer uses the subset it needs and
// tags entries with its own Kind. Flat fields (instead of a boxed
// per-layer payload) keep Append allocation-free on the hot path: strings
// slot into Key/Str without boxing, and Val is reserved for values that
// are interfaces already upstream (consensus estimates and decisions).
type Record struct {
	// Kind tags the record type; namespacing is by convention per writer
	// ("est", "dec" for consensus; "req", "round", "fin" for the server;
	// "snap" marks a compaction snapshot's head).
	Kind string
	// Key is the primary key: a request ID or a consensus instance ID.
	Key string
	// Space subdivides Key (the consensus key space: owner/result/outcome).
	Space uint8
	// Round is the instance round of the keyed entry.
	Round int32
	// Aux is a secondary round — e.g. the adoption timestamp an acceptor
	// must remember alongside its estimate.
	Aux int32
	// Str is a string payload (a result value, a client process ID).
	Str string
	// Val is a boxed payload for values that already travel as interfaces.
	Val any
}

// KindSnapshot is the Kind of the marker record a compaction installs at
// the head of the snapshot it wrote. Round carries the snapshot's record
// count and Aux the compaction's ordinal; replayers ignore the marker
// (their replay switches skip kinds they don't own), it exists so a log
// dump shows where history was folded.
const KindSnapshot = "snap"

// Compactor is a writer's snapshot function: a pure fold over its own
// synced records that returns an equivalent, smaller sequence — the
// writer's durable state re-expressed as records. The contract is
// replay(Compactor(prefix) ++ suffix) ≡ replay(prefix ++ suffix) for any
// suffix the writer may append later. It must not take locks or touch the
// clock: it runs on the compacting goroutine with no log lock held, on a
// private copy of the prefix.
type Compactor func(prefix []Record) []Record

// Config tunes the store's tariffs and compaction policy.
type Config struct {
	// SyncLatency is charged on the clock for every Append — the cost of
	// forcing the entry to stable storage before acting on it. Zero (the
	// default) makes appends free and schedule-invisible: runs with and
	// without an idle WAL stay byte-identical.
	SyncLatency time.Duration
	// SnapshotSync is the per-record tariff for writing a compaction
	// snapshot. Snapshots are bulk sequential writes, so zero (the
	// default) derives SyncLatency/4; a negative value makes snapshots
	// explicitly free. The whole snapshot charges (records+1) times this
	// tariff (the +1 is the marker) in one sleep.
	SnapshotSync time.Duration
	// CompactThreshold triggers compaction: a log whose synced record
	// count has grown by at least this much since its last compaction
	// attempt folds its prefix through the writer's Compactor. Zero
	// disables automatic compaction (Compact can still be called
	// explicitly).
	CompactThreshold int
	// Metrics, when non-nil, receives per-append counters (wal.appends,
	// wal.sync_ns, wal.compactions, ...) in the run's registry. Nil
	// costs nothing.
	Metrics *obs.Metrics
}

// Stats aggregates the store's activity for cost-curve experiments.
type Stats struct {
	// Appends counts records forced to stable storage, over all logs.
	Appends int
	// SyncTime is the total virtual time spent in sync waits.
	SyncTime time.Duration
	// Compactions counts installed snapshots over all logs.
	Compactions int
	// SnapshotRecords counts records written into installed snapshots.
	SnapshotRecords int
	// CompactedRecords counts prefix records folded away by compaction.
	CompactedRecords int
	// CompactedBytes is the (modeled) byte volume compaction reclaimed:
	// prefix bytes minus snapshot bytes, accumulated over all installs.
	CompactedBytes int
	// TornRecords counts unsynced records dropped by crashes (the torn
	// tail: appended, but the process died before the sync completed).
	TornRecords int
	// LiveRecords and LiveBytes are the store's current footprint over
	// all logs — what a recovery would replay. With compaction on, live
	// size is O(state); without it, O(history).
	LiveRecords int
	LiveBytes   int
}

// Plus returns the field-wise sum of two Stats — the aggregation a
// multi-store deployment (one wal.Store per replica group) uses to
// report storage activity for the whole fleet.
func (s Stats) Plus(t Stats) Stats {
	s.Appends += t.Appends
	s.SyncTime += t.SyncTime
	s.Compactions += t.Compactions
	s.SnapshotRecords += t.SnapshotRecords
	s.CompactedRecords += t.CompactedRecords
	s.CompactedBytes += t.CompactedBytes
	s.TornRecords += t.TornRecords
	s.LiveRecords += t.LiveRecords
	s.LiveBytes += t.LiveBytes
	return s
}

// recordBytes models a record's on-disk size: a fixed header plus its
// string payloads (Val is boxed upstream; charge a pointer-pair).
func recordBytes(r Record) int {
	n := 32 + len(r.Kind) + len(r.Key) + len(r.Str)
	if r.Val != nil {
		n += 16
	}
	return n
}

func recordsBytes(recs []Record) int {
	n := 0
	for _, r := range recs {
		n += recordBytes(r)
	}
	return n
}

// Store models one deployment's stable storage: a set of per-process logs
// that survive process crashes. Logs are keyed by process ID string; a
// restarted process asks for its log by the same name and finds its
// pre-crash records.
type Store struct {
	clk vclock.Clock
	cfg Config

	mu             sync.Mutex
	logs           map[string]*Log
	names          []string // insertion-ordered log names, for deterministic iteration
	appends        int
	synced         time.Duration
	compactions    int
	snapRecs       int
	compactedRecs  int
	compactedBytes int
	torn           int
}

// NewStore builds the deployment's stable storage on the given clock.
func NewStore(clk vclock.Clock, cfg Config) *Store {
	return &Store{clk: clk, cfg: cfg, logs: make(map[string]*Log)}
}

// Log returns the named process's log, creating it empty on first use.
// Calling Log again with the same name — before or after a crash —
// returns the same log: the disk outlives the process.
func (s *Store) Log(proc string) *Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.logs[proc]
	if !ok {
		l = &Log{store: s, proc: proc}
		s.logs[proc] = l
		s.names = append(s.names, proc)
	}
	return l
}

// SyncLatency reports the configured per-append tariff.
func (s *Store) SyncLatency() time.Duration { return s.cfg.SyncLatency }

// snapshotSync resolves the per-record snapshot tariff.
func (s *Store) snapshotSync() time.Duration {
	d := s.cfg.SnapshotSync
	if d == 0 {
		return s.cfg.SyncLatency / 4
	}
	if d < 0 {
		return 0
	}
	return d
}

// Crash records a process crash at the current virtual instant: every
// named log's unsynced suffix is torn off, and in-flight snapshot
// installations are aborted (the side file is discarded, the old prefix
// stands). Deterministic: whether a record survives depends only on the
// schedule order of the crash event versus its sync-completion event.
// Returns the number of torn records.
func (s *Store) Crash(procs ...string) int {
	total := 0
	for _, p := range procs {
		s.mu.Lock()
		l := s.logs[p]
		s.mu.Unlock()
		if l == nil {
			continue
		}
		total += l.tear()
	}
	if total > 0 {
		s.mu.Lock()
		s.torn += total
		s.mu.Unlock()
		s.cfg.Metrics.Add(obs.WALTorn, int64(total))
	}
	return total
}

// Stats returns the store's aggregate activity. Live sizes are computed
// at call time over every log (order-independent sums, so the map walk
// cannot leak schedule nondeterminism).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Appends:          s.appends,
		SyncTime:         s.synced,
		Compactions:      s.compactions,
		SnapshotRecords:  s.snapRecs,
		CompactedRecords: s.compactedRecs,
		CompactedBytes:   s.compactedBytes,
		TornRecords:      s.torn,
	}
	names := append([]string(nil), s.names...)
	s.mu.Unlock()
	for _, name := range names {
		l := s.Log(name)
		l.mu.Lock()
		st.LiveRecords += len(l.recs)
		st.LiveBytes += recordsBytes(l.recs)
		l.mu.Unlock()
	}
	return st
}

// Log is one process's write-ahead log.
type Log struct {
	store   *Store
	proc    string
	compact Compactor

	mu          sync.Mutex
	recs        []Record
	synced      int    // recs[:synced] are durable; the rest are paying their sync
	gen         uint64 // bumped by tear(): invalidates in-flight syncs and installs
	compacting  bool
	compactedAt int // synced watermark at the last compaction attempt
	installs    int32
}

// SetCompactor registers the writer's snapshot fold. Call it before the
// log sees traffic (at process construction or recovery); the log never
// compacts without one.
func (l *Log) SetCompactor(fn Compactor) {
	l.mu.Lock()
	l.compact = fn
	l.mu.Unlock()
}

// Append forces one record to stable storage, charging the store's sync
// latency on the clock. The record is durable only once Append returns:
// a crash during the sync wait tears it (and any later unsynced records)
// off the log. The caller must not hold any lock that other
// clock-attached goroutines block on: the sync wait is a scheduled event,
// and a goroutine blocked on a caller-held mutex counts as runnable to the
// clock, which would stall virtual time forever. Append itself takes only
// the log's internal lock, and releases it before sleeping.
func (l *Log) Append(r Record) {
	s := l.store
	d := s.cfg.SyncLatency
	l.mu.Lock()
	l.recs = append(l.recs, r)
	gen := l.gen
	if d <= 0 {
		l.synced++
	}
	l.mu.Unlock()
	s.mu.Lock()
	s.appends++
	s.synced += d
	s.mu.Unlock()
	s.cfg.Metrics.Inc(obs.WALAppends)
	s.cfg.Metrics.Add(obs.WALSyncNS, int64(d))
	if d > 0 {
		s.clk.Sleep(d)
		l.mu.Lock()
		torn := l.gen != gen
		if !torn {
			// Sync waits complete in append order (equal tariffs, FIFO
			// deadlines), so the durable watermark advances one commit at
			// a time.
			l.synced++
		}
		l.mu.Unlock()
		if torn {
			// The process died mid-sync; the record is gone and so is the
			// process — nothing further to do on its behalf.
			return
		}
	}
	l.maybeCompact()
}

// maybeCompact folds the synced prefix through the writer's Compactor
// once it has grown CompactThreshold records past the last attempt.
func (l *Log) maybeCompact() {
	th := l.store.cfg.CompactThreshold
	if th <= 0 {
		return
	}
	l.mu.Lock()
	run := l.compact != nil && !l.compacting && l.synced >= l.compactedAt+th
	if run {
		l.compacting = true
	}
	l.mu.Unlock()
	if run {
		l.runCompaction()
	}
}

// Compact folds the synced prefix through the registered Compactor now,
// regardless of threshold, and reports whether a snapshot was installed.
// Safe to call from any clock-attached goroutine.
func (l *Log) Compact() bool {
	l.mu.Lock()
	run := l.compact != nil && !l.compacting
	if run {
		l.compacting = true
	}
	l.mu.Unlock()
	if !run {
		return false
	}
	before := l.Installs()
	l.runCompaction()
	return l.Installs() > before
}

// runCompaction snapshots the synced prefix, charges the snapshot-size
// tariff, and atomically swaps the snapshot in — unless a crash landed
// during the write, in which case the torn snapshot is discarded and the
// log is left exactly as it was. Caller must have set l.compacting.
func (l *Log) runCompaction() {
	s := l.store
	l.mu.Lock()
	cut := l.synced
	gen := l.gen
	prefix := append([]Record(nil), l.recs[:cut]...)
	l.mu.Unlock()

	snap := l.compact(prefix)
	if len(snap)+1 >= cut {
		// The fold cannot shrink this prefix; skip the write and move the
		// watermark so the next attempt waits for a full threshold of
		// fresh records.
		l.mu.Lock()
		l.compacting = false
		if l.gen == gen {
			l.compactedAt = l.synced
		}
		l.mu.Unlock()
		return
	}
	if d := s.snapshotSync() * time.Duration(len(snap)+1); d > 0 {
		// The install is a stable-storage write like any other: its
		// virtual-time price lands in SyncTime so the cost curves see the
		// whole durability bill, not just the append tariff.
		s.mu.Lock()
		s.synced += d
		s.mu.Unlock()
		s.cfg.Metrics.Add(obs.WALSyncNS, int64(d))
		s.clk.Sleep(d)
	}

	l.mu.Lock()
	l.compacting = false
	if l.gen != gen {
		// Crashed while the snapshot was being written: the side file is
		// torn, the old log stands.
		l.mu.Unlock()
		return
	}
	l.installs++
	head := Record{Kind: KindSnapshot, Round: int32(len(snap)), Aux: l.installs}
	tail := l.recs[cut:]
	nr := make([]Record, 0, 1+len(snap)+len(tail))
	nr = append(nr, head)
	nr = append(nr, snap...)
	nr = append(nr, tail...)
	l.recs = nr
	l.synced = 1 + len(snap) + (l.synced - cut)
	l.compactedAt = l.synced
	l.mu.Unlock()

	prefixBytes := recordsBytes(prefix)
	snapBytes := recordBytes(head) + recordsBytes(snap)
	s.mu.Lock()
	s.compactions++
	s.snapRecs += len(snap)
	s.compactedRecs += cut - len(snap) - 1
	s.compactedBytes += prefixBytes - snapBytes
	s.mu.Unlock()
	s.cfg.Metrics.Inc(obs.WALCompactions)
	s.cfg.Metrics.Add(obs.WALSnapshotBytes, int64(snapBytes))
	s.cfg.Metrics.Add(obs.WALCompactedBytes, int64(prefixBytes-snapBytes))
}

// tear drops the unsynced suffix at a crash and invalidates in-flight
// syncs and snapshot installs.
func (l *Log) tear() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.recs) - l.synced
	if n > 0 {
		l.recs = l.recs[:l.synced:l.synced]
	}
	l.gen++
	if l.compactedAt > l.synced {
		l.compactedAt = l.synced
	}
	return n
}

// Len reports the number of records in the log.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Synced reports the durable record count: the prefix a crash at this
// instant would preserve.
func (l *Log) Synced() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Installs reports how many snapshots compaction has installed.
func (l *Log) Installs() int32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.installs
}

// Replay calls fn for every record in append order. It snapshots under the
// log lock and replays outside it, so fn may append (recovery code that
// re-persists is safe, if unusual).
func (l *Log) Replay(fn func(Record)) {
	l.mu.Lock()
	recs := append([]Record(nil), l.recs...)
	l.mu.Unlock()
	for _, r := range recs {
		fn(r)
	}
}
