// Package sm implements the state machines of §2.1: a dispatcher that
// exports named actions, executes them against the environment, and emits
// the start/completion events of §2.2.
//
// In contrast to classical state-machine replication [Sch93], actions may
// be non-deterministic (each machine carries a seeded random source exposed
// to action bodies) and may have side effects on third-party entities
// (applied through the internal/env environment, which couples each effect
// with its completion event atomically).
//
// The machine implements the paper's execute dispatch (§5.4): a request
// names an action; derived cancellation and commit actions (for undoable
// actions) are dispatched to the environment's transaction machinery
// automatically, with optional application hooks.
package sm

import (
	"fmt"
	"math/rand"
	"sync"

	"xability/internal/action"
	"xability/internal/env"
	"xability/internal/event"
)

// Ctx is passed to action bodies.
type Ctx struct {
	// Req is the request being executed, including its protocol tags
	// (request ID and round).
	Req action.Request
	// Rand is the machine's seeded random source: the sanctioned origin of
	// action non-determinism.
	Rand *rand.Rand
	// Replica names the executing replica.
	Replica string
}

// Body computes an action's side effect and output value. It runs under the
// environment lock and must not block.
type Body func(ctx *Ctx) action.Value

// Hook observes a transaction rollback. It runs under the environment lock.
type Hook func(ctx *Ctx)

type undoSpec struct {
	exec       Body
	onRollback Hook
}

// Machine is one replica's copy of the service's state machine.
type Machine struct {
	replica string
	reg     *action.Registry
	env     *env.Env

	mu       sync.Mutex
	rng      *rand.Rand
	idem     map[action.Name]Body
	undo     map[action.Name]undoSpec
	possible map[action.Name]func(iv, ov action.Value) bool
	apply    map[action.Name]func(ctx *Ctx, decided action.Value)
}

// New builds a machine for a replica over a shared environment. Each
// replica's machine gets its own seed so replicas are independently
// non-deterministic.
func New(replica string, reg *action.Registry, e *env.Env, seed int64) *Machine {
	return &Machine{
		replica:  replica,
		reg:      reg,
		env:      e,
		rng:      rand.New(rand.NewSource(seed)),
		idem:     make(map[action.Name]Body),
		undo:     make(map[action.Name]undoSpec),
		possible: make(map[action.Name]func(iv, ov action.Value) bool),
		apply:    make(map[action.Name]func(ctx *Ctx, decided action.Value)),
	}
}

// Registry returns the machine's action vocabulary.
func (m *Machine) Registry() *action.Registry { return m.reg }

// Env returns the machine's environment.
func (m *Machine) Env() *env.Env { return m.env }

// Replica returns the replica name.
func (m *Machine) Replica() string { return m.replica }

// HandleIdempotent registers the body of an idempotent action. The action
// must already be registered as idempotent in the registry.
func (m *Machine) HandleIdempotent(a action.Name, body Body) error {
	if !m.reg.IsIdempotent(a) {
		return fmt.Errorf("sm: %q is not a registered idempotent action", a)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idem[a] = body
	return nil
}

// HandleUndoable registers the body of an undoable action together with an
// optional rollback hook invoked when a cancellation rolls back an applied
// effect.
func (m *Machine) HandleUndoable(a action.Name, body Body, onRollback Hook) error {
	if !m.reg.IsUndoable(a) {
		return fmt.Errorf("sm: %q is not a registered undoable action", a)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.undo[a] = undoSpec{exec: body, onRollback: onRollback}
	return nil
}

// SetPossibleReply registers the PossibleReply predicate of §3.4 for an
// action: which output values are legal replies for a given input. Without
// a predicate every value is considered possible.
func (m *Machine) SetPossibleReply(a action.Name, pred func(iv, ov action.Value) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.possible[a] = pred
}

// PossibleReply implements the §3.4 check for requirement R4.
func (m *Machine) PossibleReply(req action.Request, ov action.Value) bool {
	m.mu.Lock()
	pred := m.possible[req.Action]
	m.mu.Unlock()
	if pred == nil {
		return true
	}
	return pred(req.Input, ov)
}

// SetApply registers the deterministic replay hook for an action: how a
// replica that did not execute a request folds the agreed result into its
// local state (the multi-request state extension, DESIGN.md §2).
func (m *Machine) SetApply(a action.Name, fn func(ctx *Ctx, decided action.Value)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.apply[a] = fn
}

// Apply replays an agreed result through the replica's apply hook, if any.
func (m *Machine) Apply(req action.Request, decided action.Value) {
	m.mu.Lock()
	fn := m.apply[req.Action]
	m.mu.Unlock()
	if fn != nil {
		fn(&Ctx{Req: req, Rand: m.rng, Replica: m.replica}, decided)
	}
}

// IsIdempotent and IsUndoable expose the registry classification with the
// paper's method names (Figure 7 uses S.is-idempotent / S.is-undoable).
func (m *Machine) IsIdempotent(req action.Request) bool { return m.reg.IsIdempotent(req.Action) }

// IsUndoable reports whether the request's action is undoable.
func (m *Machine) IsUndoable(req action.Request) bool { return m.reg.IsUndoable(req.Action) }

// Execute dispatches a request (the paper's S.execute, §5.4): it emits the
// start event, applies the action through the environment, and returns the
// output value. A failure (injected, or an interleaved cancellation) leaves
// the start event dangling and returns the error, exactly as §2.2
// prescribes for failed executions.
func (m *Machine) Execute(req action.Request) (action.Value, error) {
	base, kind := action.Base(req.Action)
	if kind == action.KindIdempotent { // plain name: classify via registry
		k, ok := m.reg.Kind(req.Action)
		if !ok {
			return "", fmt.Errorf("sm: unknown action %q", req.Action)
		}
		kind = k
	}
	ctx := &Ctx{Req: req, Rand: m.rng, Replica: m.replica}
	iv := req.EffectiveInput()
	obs := m.env.Observer()

	switch kind {
	case action.KindIdempotent:
		m.mu.Lock()
		body := m.idem[req.Action]
		m.mu.Unlock()
		if body == nil {
			return "", fmt.Errorf("sm: no body for idempotent action %q", req.Action)
		}
		obs.Observe(event.S(req.Action, iv).WithAnnotation(m.replica))
		return m.env.ExecIdempotent(req.Action, iv, func() action.Value { return body(ctx) })

	case action.KindUndoable:
		m.mu.Lock()
		spec, ok := m.undo[req.Action]
		m.mu.Unlock()
		if !ok {
			return "", fmt.Errorf("sm: no body for undoable action %q", req.Action)
		}
		epoch := m.env.ReactivateUndoable(req.Action, iv)
		obs.Observe(event.S(req.Action, iv).WithAnnotation(m.replica))
		return m.env.ExecUndoable(req.Action, iv, epoch, func() action.Value { return spec.exec(ctx) })

	case action.KindCancel:
		m.mu.Lock()
		spec := m.undo[base]
		m.mu.Unlock()
		obs.Observe(event.S(req.Action, iv).WithAnnotation(m.replica))
		var hook func()
		if spec.onRollback != nil {
			hook = func() { spec.onRollback(ctx) }
		}
		if err := m.env.CancelUndoable(base, iv, hook); err != nil {
			return "", err
		}
		return action.Nil, nil

	case action.KindCommit:
		obs.Observe(event.S(req.Action, iv).WithAnnotation(m.replica))
		if err := m.env.CommitUndoable(base, iv); err != nil {
			return "", err
		}
		return action.Nil, nil

	default:
		return "", fmt.Errorf("sm: cannot execute %q (kind %v)", req.Action, kind)
	}
}
