package sm

import (
	"testing"

	"xability/internal/action"
	"xability/internal/env"
	"xability/internal/event"
	"xability/internal/trace"
)

func machine(t *testing.T) (*Machine, *trace.Observer) {
	t.Helper()
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	reg.MustRegister("debit", action.KindUndoable)
	obs := trace.New()
	world := env.New(obs, 1)
	m := New("r0", reg, world, 42)
	if err := m.HandleIdempotent("read", func(ctx *Ctx) action.Value { return "v" }); err != nil {
		t.Fatal(err)
	}
	if err := m.HandleUndoable("debit",
		func(ctx *Ctx) action.Value { return "done" },
		func(ctx *Ctx) {},
	); err != nil {
		t.Fatal(err)
	}
	return m, obs
}

func TestExecuteIdempotentEmitsPair(t *testing.T) {
	m, obs := machine(t)
	req := action.NewRequest("read", "k").WithID("q")
	v, err := m.Execute(req)
	if err != nil || v != "v" {
		t.Fatalf("Execute = (%q, %v)", v, err)
	}
	h := obs.History()
	iv := req.EffectiveInput()
	if len(h) != 2 || !h[0].Equal(event.S("read", iv)) || !h[1].Equal(event.C("read", "v")) {
		t.Errorf("history = %v", h)
	}
	if h[0].Annotation != "r0" {
		t.Errorf("annotation = %q", h[0].Annotation)
	}
}

func TestExecuteUndoableFullCycle(t *testing.T) {
	m, obs := machine(t)
	req := action.NewRequest("debit", "a").WithID("q").WithRound(1)
	v, err := m.Execute(req)
	if err != nil || v != "done" {
		t.Fatalf("Execute = (%q, %v)", v, err)
	}
	if v, err := m.Execute(req.Commit()); err != nil || v != action.Nil {
		t.Fatalf("commit = (%q, %v)", v, err)
	}
	h := obs.History()
	if len(h) != 4 {
		t.Fatalf("history = %v", h)
	}
	com := req.Commit()
	want := event.History{
		event.S("debit", req.EffectiveInput()),
		event.C("debit", "done"),
		event.S(com.Action, com.EffectiveInput()),
		event.C(com.Action, action.Nil),
	}
	if !h.Equal(want) {
		t.Errorf("history = %v\nwant %v", h, want)
	}
}

func TestExecuteCancelCycle(t *testing.T) {
	m, obs := machine(t)
	req := action.NewRequest("debit", "a").WithID("q").WithRound(1)
	if _, err := m.Execute(req); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Execute(req.Cancel()); err != nil || v != action.Nil {
		t.Fatalf("cancel = (%q, %v)", v, err)
	}
	h := obs.History()
	can := req.Cancel()
	if !h[len(h)-1].Equal(event.C(can.Action, action.Nil)) {
		t.Errorf("last event = %v", h[len(h)-1])
	}
	if m.Env().InForceTotal("debit", "a") != 0 {
		t.Error("cancel left the effect in force")
	}
}

func TestExecuteFailureLeavesDanglingStart(t *testing.T) {
	m, obs := machine(t)
	m.Env().SetFailures("read", 1.0, 1, 0)
	req := action.NewRequest("read", "k").WithID("q")
	if _, err := m.Execute(req); err == nil {
		t.Fatal("expected injected failure")
	}
	h := obs.History()
	if len(h) != 1 || h[0].Type != event.Start {
		t.Errorf("failed execution should leave only the start event; got %v", h)
	}
	// Retry succeeds; the pair completes.
	if _, err := m.Execute(req); err != nil {
		t.Fatal(err)
	}
	if obs.Len() != 3 {
		t.Errorf("history length = %d, want 3 (S S C)", obs.Len())
	}
}

func TestExecuteUnknownAction(t *testing.T) {
	m, _ := machine(t)
	if _, err := m.Execute(action.NewRequest("ghost", "x")); err == nil {
		t.Error("unknown action should error")
	}
}

func TestExecuteUnregisteredBody(t *testing.T) {
	reg := action.NewRegistry()
	reg.MustRegister("noop", action.KindIdempotent)
	reg.MustRegister("tx", action.KindUndoable)
	m := New("r0", reg, env.New(trace.New(), 1), 1)
	if _, err := m.Execute(action.NewRequest("noop", "x")); err == nil {
		t.Error("idempotent action without body should error")
	}
	if _, err := m.Execute(action.NewRequest("tx", "x")); err == nil {
		t.Error("undoable action without body should error")
	}
}

func TestHandlerRegistrationValidation(t *testing.T) {
	m, _ := machine(t)
	if err := m.HandleIdempotent("debit", func(*Ctx) action.Value { return "" }); err == nil {
		t.Error("registering undoable name as idempotent body should fail")
	}
	if err := m.HandleUndoable("read", func(*Ctx) action.Value { return "" }, nil); err == nil {
		t.Error("registering idempotent name as undoable body should fail")
	}
}

func TestPossibleReply(t *testing.T) {
	m, _ := machine(t)
	req := action.NewRequest("read", "k")
	if !m.PossibleReply(req, "anything") {
		t.Error("default PossibleReply should accept")
	}
	m.SetPossibleReply("read", func(iv, ov action.Value) bool { return ov == "v" })
	if m.PossibleReply(req, "other") {
		t.Error("predicate should reject")
	}
	if !m.PossibleReply(req, "v") {
		t.Error("predicate should accept v")
	}
}

func TestApplyHook(t *testing.T) {
	m, _ := machine(t)
	var applied action.Value
	m.SetApply("debit", func(ctx *Ctx, decided action.Value) { applied = decided })
	m.Apply(action.NewRequest("debit", "a"), "decided-value")
	if applied != "decided-value" {
		t.Errorf("apply hook saw %q", applied)
	}
	// No hook registered: no-op.
	m.Apply(action.NewRequest("read", "k"), "x")
}

func TestClassificationHelpers(t *testing.T) {
	m, _ := machine(t)
	if !m.IsIdempotent(action.NewRequest("read", "k")) {
		t.Error("read should be idempotent")
	}
	if !m.IsUndoable(action.NewRequest("debit", "a")) {
		t.Error("debit should be undoable")
	}
	if m.Replica() != "r0" {
		t.Error(m.Replica())
	}
	if m.Registry() == nil || m.Env() == nil {
		t.Error("accessors broken")
	}
}

func TestNonDeterminismIsSeeded(t *testing.T) {
	reg := action.NewRegistry()
	reg.MustRegister("rand", action.KindIdempotent)
	mk := func(seed int64, key string) action.Value {
		obs := trace.New()
		m := New("r", reg, env.New(obs, 1), seed)
		_ = m.HandleIdempotent("rand", func(ctx *Ctx) action.Value {
			return action.Value(rune('a' + ctx.Rand.Intn(26)))
		})
		v, _ := m.Execute(action.NewRequest("rand", action.Value(key)))
		return v
	}
	if mk(1, "k") != mk(1, "k") {
		t.Error("same seed must reproduce the same non-determinism")
	}
}
