// Package env simulates the external environment — the "third-party
// entities" of §1 — that replicated services have side effects on.
//
// The environment is the serialization point of the model: every side
// effect is applied under one lock, atomically with the emission of the
// action's completion event to the trace observer (§2.2: "a completion
// event means that the side effect has happened"). The observed total order
// is therefore consistent with the order effects actually took place.
//
// Semantics enforced per action class (§3.1):
//
//   - Idempotent actions resolve their non-determinism at first completion:
//     the first successful execution of (a, iv) fixes the result and applies
//     the effect; later executions return the same result without
//     re-applying it. This is what makes every completion event of an
//     idempotent action carry the same output value, which rule 18 of the
//     reduction calculus requires ("the trick is to coordinate the execution
//     logic with the retry logic so that there is agreement on the result of
//     a nondeterministic idempotent action", §1).
//
//   - Undoable actions are transactions scoped by their round-tagged input.
//     Execution is epoch-guarded: an invocation captures the transaction's
//     epoch when it starts; a cancellation bumps the epoch; an invocation
//     whose effect would land after an interleaved cancellation fails
//     instead (no completion event, no effect) — otherwise a completion
//     event could appear after the cancel pair that supposedly erased it,
//     which no rule of Figure 4 can reduce. A fresh invocation after a
//     cancellation re-activates the transaction.
//
//   - Raw effects (ExecRaw) apply unconditionally on every call. They model
//     an uncoordinated service and are what the baseline protocols use; the
//     exactly-once audit exposes their duplication.
//
// Failure injection implements §5.2's "every action is eventually
// successful": each action can be given a failure budget; failures strike
// before or after the effect (both happen in real systems) and the budget
// guarantees eventual success.
package env

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/trace"
)

// ErrInjected is the failure returned by injected action failures.
var ErrInjected = errors.New("env: injected action failure")

// ErrCancelled is returned when an invocation's effect would land after an
// interleaved cancellation of its transaction epoch.
var ErrCancelled = errors.New("env: transaction cancelled during execution")

// ErrFenced is returned when an invocation targets a fenced transaction:
// an abort decision neutralized the round, and per the paper's testcancel
// semantics (§5.3) the tagged action must never take effect afterwards.
// Unlike ErrCancelled this is terminal — retrying cannot succeed.
var ErrFenced = errors.New("env: transaction fenced by an abort decision")

// Effect computes an action's side effect and output value. It runs under
// the environment lock and must not block.
type Effect func() action.Value

// Epoch identifies an undoable invocation's view of its transaction.
type Epoch int

type txStatus int

const (
	txActive txStatus = iota
	txCompleted
	txCancelled
	txCommitted
)

type tx struct {
	status txStatus
	epoch  Epoch
	result action.Value
	// fenced marks a transaction whose round's outcome was decided abort:
	// re-execution (including reactivation) is forbidden forever. This is
	// the prohibitive arm of the paper's testcancel — cancellation alone
	// only rolls back, it does not prevent a later retry from re-applying
	// the effect.
	fenced bool
}

type failurePlan struct {
	prob      float64
	remaining int
	afterProb float64 // among failures, fraction striking after the effect
}

// Env is one environment instance (one verification scope). Create with
// New.
type Env struct {
	mu  sync.Mutex
	obs *trace.Observer
	rng *rand.Rand

	resolved map[string]action.Value // idempotent resolve-once results
	txs      map[string]*tx          // undoable transactions by tagged input

	// audit counters
	applied   map[string]int // effect applications (incl. rolled back)
	committed map[string]int // effects currently in force
	failures  map[action.Name]*failurePlan
}

// New builds an environment reporting events to obs, with seeded
// non-determinism for failure injection.
func New(obs *trace.Observer, seed int64) *Env {
	return &Env{
		obs:       obs,
		rng:       rand.New(rand.NewSource(seed)),
		resolved:  make(map[string]action.Value),
		txs:       make(map[string]*tx),
		applied:   make(map[string]int),
		committed: make(map[string]int),
		failures:  make(map[action.Name]*failurePlan),
	}
}

// Observer returns the trace observer the environment reports to.
func (e *Env) Observer() *trace.Observer { return e.obs }

// SetFailures arms failure injection for an action name: each invocation
// fails with probability prob until budget failures have struck (so the
// action eventually succeeds, per §5.2). afterProb is the fraction of
// failures that strike after the effect applied.
func (e *Env) SetFailures(a action.Name, prob float64, budget int, afterProb float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failures[a] = &failurePlan{prob: prob, remaining: budget, afterProb: afterProb}
}

// shouldFail consumes one failure from the plan; callers hold e.mu.
func (e *Env) shouldFail(a action.Name) (fail, after bool) {
	p := e.failures[a]
	if p == nil || p.remaining <= 0 || e.rng.Float64() >= p.prob {
		return false, false
	}
	p.remaining--
	return true, e.rng.Float64() < p.afterProb
}

func key(a action.Name, iv action.Value) string { return string(a) + "\x00" + string(iv) }

// ExecIdempotent executes an idempotent action: resolve-once result, effect
// applied at most once, completion event atomic with resolution.
func (e *Env) ExecIdempotent(a action.Name, iv action.Value, eff Effect) (action.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key(a, iv)
	if v, done := e.resolved[k]; done {
		// Already resolved: re-execution has no further side effect; it
		// completes with the resolved value.
		if fail, _ := e.shouldFail(a); fail {
			return "", ErrInjected
		}
		e.obs.Observe(event.C(a, v).WithAnnotation(string(iv)))
		return v, nil
	}
	fail, after := e.shouldFail(a)
	if fail && !after {
		return "", ErrInjected
	}
	v := eff()
	e.resolved[k] = v
	e.applied[k]++
	e.committed[k]++
	if fail {
		// Effect landed but the invoker sees a failure (e.g. the reply was
		// lost). No completion event: the side effect "may have happened".
		return "", ErrInjected
	}
	e.obs.Observe(event.C(a, v).WithAnnotation(string(iv)))
	return v, nil
}

// BeginUndoable opens (or re-activates) the transaction for a round-tagged
// input and returns the epoch the invocation runs under. Call it before
// emitting the start event.
func (e *Env) BeginUndoable(a action.Name, taggedIV action.Value) Epoch {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.txs[key(a, taggedIV)]
	if t == nil {
		t = &tx{}
		e.txs[key(a, taggedIV)] = t
	}
	return t.epoch
}

// ExecUndoable applies the undoable action's effect under the epoch
// captured by BeginUndoable. If the transaction was cancelled in the
// meantime the invocation fails with ErrCancelled and has no effect. A
// completed transaction re-executes idempotently (returns its result).
func (e *Env) ExecUndoable(a action.Name, taggedIV action.Value, ep Epoch, eff Effect) (action.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key(a, taggedIV)
	t := e.txs[k]
	if t == nil {
		return "", fmt.Errorf("env: ExecUndoable without BeginUndoable for %s", a)
	}
	if t.fenced {
		return "", ErrFenced
	}
	if t.epoch != ep {
		return "", ErrCancelled
	}
	switch t.status {
	case txCommitted, txCompleted:
		if fail, _ := e.shouldFail(a); fail {
			return "", ErrInjected
		}
		e.obs.Observe(event.C(a, t.result).WithAnnotation(string(taggedIV)))
		return t.result, nil
	case txCancelled:
		// The epoch check above fails for stale invocations; reaching here
		// with a current epoch means re-activation happened in Begin.
		return "", ErrCancelled
	}
	fail, after := e.shouldFail(a)
	if fail && !after {
		return "", ErrInjected
	}
	v := eff()
	t.status = txCompleted
	t.result = v
	e.applied[k]++
	e.committed[k]++
	if fail {
		return "", ErrInjected
	}
	e.obs.Observe(event.C(a, v).WithAnnotation(string(taggedIV)))
	return v, nil
}

// CancelUndoable executes the cancellation action a⁻¹ for the transaction:
// the effect (if any) is rolled back, the epoch advances so in-flight
// invocations fail, and the cancel's completion event is emitted
// atomically. Cancellation is idempotent. onRollback, if non-nil, runs
// under the lock when an applied effect is actually rolled back.
func (e *Env) CancelUndoable(a action.Name, taggedIV action.Value, onRollback func()) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cancelName := action.Cancel(a)
	if fail, _ := e.shouldFail(cancelName); fail {
		return ErrInjected
	}
	k := key(a, taggedIV)
	t := e.txs[k]
	if t == nil {
		t = &tx{}
		e.txs[k] = t
	}
	if t.status == txCommitted {
		return fmt.Errorf("env: cancel after commit of (%s, %s)", a, taggedIV)
	}
	if t.status == txCompleted {
		e.committed[k]--
		if onRollback != nil {
			onRollback()
		}
	}
	t.status = txCancelled
	t.epoch++
	e.obs.Observe(event.C(cancelName, action.Nil).WithAnnotation(string(taggedIV)))
	return nil
}

// ReactivateUndoable transitions a cancelled transaction back to active for
// a fresh invocation (retry after cancellation) and returns the new epoch.
// A fenced transaction stays cancelled: the abort decision is final, and
// reviving it here is exactly how a late owner retry would re-apply an
// effect the cleaners already neutralized.
func (e *Env) ReactivateUndoable(a action.Name, taggedIV action.Value) Epoch {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.txs[key(a, taggedIV)]
	if t == nil {
		t = &tx{}
		e.txs[key(a, taggedIV)] = t
	}
	if t.status == txCancelled && !t.fenced {
		t.status = txActive
		t.epoch++
	}
	return t.epoch
}

// FenceUndoable forbids the transaction's action from ever taking effect
// again — the prohibitive arm of the paper's testcancel (§5.3). The
// protocol fences a round's tagged transaction the moment its outcome is
// decided abort, *before* executing the cancellation, so there is no
// window in which a retrying owner can reactivate the rolled-back
// transaction and re-apply the effect. Fencing is a property of the
// environment (the external world), so it survives the fencing replica's
// crash. It rolls nothing back itself; the cancel action does that.
func (e *Env) FenceUndoable(a action.Name, taggedIV action.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := e.txs[key(a, taggedIV)]
	if t == nil {
		t = &tx{}
		e.txs[key(a, taggedIV)] = t
	}
	t.fenced = true
}

// CommitUndoable executes the commit action aᶜ: the transaction's effect
// becomes permanent. Committing is idempotent; committing a cancelled
// transaction is a protocol error.
func (e *Env) CommitUndoable(a action.Name, taggedIV action.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	commitName := action.Commit(a)
	if fail, _ := e.shouldFail(commitName); fail {
		return ErrInjected
	}
	k := key(a, taggedIV)
	t := e.txs[k]
	if t == nil || t.status == txCancelled || t.status == txActive {
		return fmt.Errorf("env: commit of non-completed transaction (%s, %s)", a, taggedIV)
	}
	t.status = txCommitted
	e.obs.Observe(event.C(commitName, action.Nil).WithAnnotation(string(taggedIV)))
	return nil
}

// ExecRaw applies an uncoordinated effect: every call applies it again.
// Baseline protocols use this; the audit exposes the duplication.
func (e *Env) ExecRaw(a action.Name, iv action.Value, eff Effect) (action.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fail, after := e.shouldFail(a)
	if fail && !after {
		return "", ErrInjected
	}
	v := eff()
	k := key(a, iv)
	e.applied[k]++
	e.committed[k]++
	if fail {
		return "", ErrInjected
	}
	e.obs.Observe(event.C(a, v).WithAnnotation(string(iv)))
	return v, nil
}

// PendingOutcome reports how many undoable transactions have completed
// their effect but not yet executed their decided commit (or cancel).
// The protocol may answer a client as soon as the outcome decision is
// *fixed* — the owner's (or cleaner's) commit execution can still be
// queued behind a loaded executor — so a history snapshot taken while
// this count is nonzero would miss commit pairs the run will still
// produce. Run disciplines extend their settle window until it drains.
func (e *Env) PendingOutcome() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, t := range e.txs {
		if t.status == txCompleted {
			n++
		}
	}
	return n
}

// Applied reports how many times the effect of (a, iv) was applied,
// including applications later rolled back.
func (e *Env) Applied(a action.Name, iv action.Value) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applied[key(a, iv)]
}

// InForce reports how many applications of (a, iv) are currently in force
// (applied and not rolled back). Exactly-once means 1.
func (e *Env) InForce(a action.Name, iv action.Value) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.committed[key(a, iv)]
}

// InForceTotal sums InForce across all tagged inputs whose raw input
// matches iv — the per-request exactly-once audit for round-tagged
// undoable actions.
func (e *Env) InForceTotal(a action.Name, iv action.Value) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	prefix := string(a) + "\x00"
	for k, c := range e.committed {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			continue
		}
		base, _, _ := action.SplitTag(action.Value(k[len(prefix):]))
		if base == iv {
			total += c
		}
	}
	return total
}
