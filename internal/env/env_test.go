package env

import (
	"errors"
	"testing"

	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/trace"
)

func newEnv() (*Env, *trace.Observer) {
	obs := trace.New()
	return New(obs, 1), obs
}

func TestIdempotentResolveOnce(t *testing.T) {
	e, obs := newEnv()
	calls := 0
	eff := func() action.Value { calls++; return action.Value(rune('a' + calls)) }
	v1, err := e.ExecIdempotent("tok", "k", eff)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.ExecIdempotent("tok", "k", eff)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("resolve-once violated: %q vs %q", v1, v2)
	}
	if calls != 1 {
		t.Errorf("effect ran %d times, want 1", calls)
	}
	if e.Applied("tok", "k") != 1 || e.InForce("tok", "k") != 1 {
		t.Errorf("audit: applied=%d inforce=%d", e.Applied("tok", "k"), e.InForce("tok", "k"))
	}
	// Both executions emitted completion events with the same value.
	h := obs.History()
	if len(h) != 2 || !h[0].Equal(event.C("tok", v1)) || !h[1].Equal(event.C("tok", v1)) {
		t.Errorf("history = %v", h)
	}
}

func TestIdempotentDistinctInputs(t *testing.T) {
	e, _ := newEnv()
	v1, _ := e.ExecIdempotent("tok", "k1", func() action.Value { return "a" })
	v2, _ := e.ExecIdempotent("tok", "k2", func() action.Value { return "b" })
	if v1 == v2 {
		t.Error("different inputs must resolve independently")
	}
}

func TestUndoableLifecycle(t *testing.T) {
	e, obs := newEnv()
	ep := e.BeginUndoable("debit", "iv")
	v, err := e.ExecUndoable("debit", "iv", ep, func() action.Value { return "done" })
	if err != nil || v != "done" {
		t.Fatalf("exec = (%q, %v)", v, err)
	}
	if err := e.CommitUndoable("debit", "iv"); err != nil {
		t.Fatal(err)
	}
	if e.InForce("debit", "iv") != 1 {
		t.Errorf("in force = %d", e.InForce("debit", "iv"))
	}
	// Commit is idempotent.
	if err := e.CommitUndoable("debit", "iv"); err != nil {
		t.Errorf("second commit: %v", err)
	}
	h := obs.History()
	if len(h) != 3 { // C(debit), C(commit), C(commit)
		t.Errorf("history = %v", h)
	}
}

func TestUndoableCancelRollsBack(t *testing.T) {
	e, _ := newEnv()
	rolledBack := false
	ep := e.BeginUndoable("debit", "iv")
	if _, err := e.ExecUndoable("debit", "iv", ep, func() action.Value { return "x" }); err != nil {
		t.Fatal(err)
	}
	if err := e.CancelUndoable("debit", "iv", func() { rolledBack = true }); err != nil {
		t.Fatal(err)
	}
	if !rolledBack {
		t.Error("rollback hook not invoked")
	}
	if e.InForce("debit", "iv") != 0 {
		t.Errorf("in force after cancel = %d", e.InForce("debit", "iv"))
	}
	// Cancel is idempotent; the second cancel must not roll back again.
	rolledBack = false
	if err := e.CancelUndoable("debit", "iv", func() { rolledBack = true }); err != nil {
		t.Fatal(err)
	}
	if rolledBack {
		t.Error("idempotent cancel rolled back twice")
	}
}

func TestUndoableEpochGuard(t *testing.T) {
	e, _ := newEnv()
	ep := e.BeginUndoable("debit", "iv")
	// A cancellation lands between Begin and Exec: the stale invocation
	// must fail without effect, otherwise its completion event would
	// appear after the cancel pair — irreducible under Figure 4.
	if err := e.CancelUndoable("debit", "iv", nil); err != nil {
		t.Fatal(err)
	}
	_, err := e.ExecUndoable("debit", "iv", ep, func() action.Value { return "x" })
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("stale exec error = %v, want ErrCancelled", err)
	}
	if e.Applied("debit", "iv") != 0 {
		t.Error("stale exec applied its effect")
	}
	// A fresh invocation re-activates.
	ep2 := e.ReactivateUndoable("debit", "iv")
	if ep2 == ep {
		t.Error("re-activation must advance the epoch")
	}
	if _, err := e.ExecUndoable("debit", "iv", ep2, func() action.Value { return "y" }); err != nil {
		t.Fatal(err)
	}
}

func TestCancelAfterCommitIsError(t *testing.T) {
	e, _ := newEnv()
	ep := e.BeginUndoable("debit", "iv")
	_, _ = e.ExecUndoable("debit", "iv", ep, func() action.Value { return "x" })
	if err := e.CommitUndoable("debit", "iv"); err != nil {
		t.Fatal(err)
	}
	if err := e.CancelUndoable("debit", "iv", nil); err == nil {
		t.Error("cancel after commit should error (protocol invariant)")
	}
}

func TestCommitWithoutCompletionIsError(t *testing.T) {
	e, _ := newEnv()
	if err := e.CommitUndoable("debit", "iv"); err == nil {
		t.Error("commit of unknown transaction should error")
	}
	e.BeginUndoable("debit", "iv2")
	if err := e.CommitUndoable("debit", "iv2"); err == nil {
		t.Error("commit of active (uncompleted) transaction should error")
	}
}

func TestExecWithoutBeginIsError(t *testing.T) {
	e, _ := newEnv()
	if _, err := e.ExecUndoable("debit", "iv", 0, func() action.Value { return "x" }); err == nil {
		t.Error("exec without begin should error")
	}
}

func TestRawDuplication(t *testing.T) {
	e, _ := newEnv()
	for i := 0; i < 3; i++ {
		if _, err := e.ExecRaw("raw", "iv", func() action.Value { return "v" }); err != nil {
			t.Fatal(err)
		}
	}
	if e.Applied("raw", "iv") != 3 || e.InForce("raw", "iv") != 3 {
		t.Errorf("raw audit: applied=%d inforce=%d, want 3/3", e.Applied("raw", "iv"), e.InForce("raw", "iv"))
	}
}

func TestFailureInjectionBudget(t *testing.T) {
	e, _ := newEnv()
	e.SetFailures("read", 1.0, 3, 0)
	fails := 0
	for i := 0; i < 10; i++ {
		if _, err := e.ExecIdempotent("read", "k", func() action.Value { return "v" }); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("failures = %d, want exactly the budget 3", fails)
	}
}

func TestFailureAfterEffect(t *testing.T) {
	e, obs := newEnv()
	e.SetFailures("read", 1.0, 1, 1.0) // one failure, striking after the effect
	_, err := e.ExecIdempotent("read", "k", func() action.Value { return "v" })
	if err == nil {
		t.Fatal("expected injected failure")
	}
	// The effect landed (resolve-once fixed "v") but no completion event.
	if obs.Len() != 0 {
		t.Error("failed invocation emitted a completion event")
	}
	v, err := e.ExecIdempotent("read", "k", func() action.Value { return "other" })
	if err != nil || v != "v" {
		t.Errorf("retry = (%q, %v), want the resolved v", v, err)
	}
}

func TestInForceTotalAcrossRounds(t *testing.T) {
	e, _ := newEnv()
	r1 := action.NewRequest("debit", "acct").WithID("q").WithRound(1)
	r2 := action.NewRequest("debit", "acct").WithID("q").WithRound(2)
	ep1 := e.BeginUndoable("debit", r1.EffectiveInput())
	_, _ = e.ExecUndoable("debit", r1.EffectiveInput(), ep1, func() action.Value { return "a" })
	_ = e.CancelUndoable("debit", r1.EffectiveInput(), nil)
	ep2 := e.BeginUndoable("debit", r2.EffectiveInput())
	_, _ = e.ExecUndoable("debit", r2.EffectiveInput(), ep2, func() action.Value { return "b" })
	_ = e.CommitUndoable("debit", r2.EffectiveInput())
	if got := e.InForceTotal("debit", "acct"); got != 1 {
		t.Errorf("InForceTotal = %d, want 1 (round 1 rolled back, round 2 committed)", got)
	}
}

func TestUndoableReexecutionAfterCompletion(t *testing.T) {
	e, _ := newEnv()
	ep := e.BeginUndoable("debit", "iv")
	v1, _ := e.ExecUndoable("debit", "iv", ep, func() action.Value { return "first" })
	// Retry of the same round after completion: idempotent, same result,
	// no duplicate effect.
	ep2 := e.BeginUndoable("debit", "iv")
	v2, err := e.ExecUndoable("debit", "iv", ep2, func() action.Value { return "second" })
	if err != nil || v1 != v2 {
		t.Errorf("re-exec = (%q, %v), want (%q, nil)", v2, err, v1)
	}
	if e.Applied("debit", "iv") != 1 {
		t.Errorf("applied = %d, want 1", e.Applied("debit", "iv"))
	}
}
