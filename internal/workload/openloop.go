package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"xability/internal/action"
)

// ArrivalKind selects the interarrival process of an open-loop workload.
type ArrivalKind int

const (
	// Poisson draws exponential interarrival times with mean 1/Rate.
	Poisson ArrivalKind = iota
	// Fixed spaces arrivals exactly 1/Rate apart.
	Fixed
)

// OpenLoopSpec describes an open-loop workload: a population of simulated
// clients submitting requests at a target arrival rate, independent of
// service completions — the load shape that exposes a saturation point.
// All generation happens up front on the virtual clock's timeline, so a
// (spec, seed) pair always produces the same arrival schedule.
type OpenLoopSpec struct {
	// Clients is the simulated client population (identity space for
	// request IDs; default 10_000). Arrivals are assigned to clients
	// uniformly at random — each request is its own single-request
	// session, so the population size shapes identity, not rate.
	Clients int
	// Rate is the offered load in arrivals per virtual second.
	Rate float64
	// Duration is the arrival horizon: requests arrive in [0, Duration).
	Duration time.Duration
	// Arrival selects the interarrival process.
	Arrival ArrivalKind
	// Mix is the action mix (default DefaultMix).
	Mix Mix
	// Accounts is the key space size (default 4).
	Accounts int
	// ZipfS, when > 1, skews key popularity with a Zipf(s) distribution —
	// the hot-key shape sharded runs care about. 0 keeps keys uniform.
	ZipfS float64
}

// Arrival is one scheduled open-loop request.
type Arrival struct {
	// At is the arrival instant on the virtual clock.
	At time.Duration
	// Client is the submitting client's index in [0, Clients).
	Client int
	// Req is the request, already tagged with a unique ID
	// ("ol<client>#<n>", disjoint from closed-loop IDs and slot IDs).
	Req action.Request
}

func (s OpenLoopSpec) withDefaults() OpenLoopSpec {
	if s.Clients <= 0 {
		s.Clients = 10_000
	}
	if s.Rate <= 0 {
		s.Rate = 10_000
	}
	if s.Duration <= 0 {
		s.Duration = 10 * time.Millisecond
	}
	if s.Accounts <= 0 {
		s.Accounts = 4
	}
	if s.Mix.Reads+s.Mix.Tokens+s.Mix.Debits == 0 {
		s.Mix = DefaultMix
	}
	return s
}

// GenerateOpenLoop produces the deterministic arrival schedule for a spec:
// arrival instants from the interarrival process, keys from the uniform or
// Zipf popularity law, actions from the mix, in nondecreasing time order.
func GenerateOpenLoop(spec OpenLoopSpec, seed int64) []Arrival {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if spec.ZipfS > 1 {
		zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Accounts-1))
	}
	mean := float64(time.Second) / spec.Rate // ns between arrivals
	total := spec.Mix.Reads + spec.Mix.Tokens + spec.Mix.Debits

	var out []Arrival
	t := 0.0
	for n := 0; ; n++ {
		switch spec.Arrival {
		case Fixed:
			t += mean
		default:
			t += rng.ExpFloat64() * mean
		}
		at := time.Duration(math.Round(t))
		if at >= spec.Duration {
			break
		}
		var acct int
		if zipf != nil {
			acct = int(zipf.Uint64())
		} else {
			acct = rng.Intn(spec.Accounts)
		}
		client := rng.Intn(spec.Clients)
		input := action.Value(fmt.Sprintf("acct-%d", acct))
		var req action.Request
		pick := rng.Intn(total)
		switch {
		case pick < spec.Mix.Reads:
			req = action.NewRequest("read", input)
		case pick < spec.Mix.Reads+spec.Mix.Tokens:
			req = action.NewRequest("token", input)
		default:
			req = action.NewRequest("debit", input)
		}
		out = append(out, Arrival{
			At:     at,
			Client: client,
			Req:    req.WithID(fmt.Sprintf("ol%d#%d", client, n)),
		})
	}
	return out
}

// LatencySummary condenses a latency sample into the percentiles T11
// reports.
type LatencySummary struct {
	Count         int
	P50, P95, P99 time.Duration
	Max           time.Duration
	MeanMicros    float64
}

// SummarizeLatencies computes the summary (the sample is not modified).
func SummarizeLatencies(sample []time.Duration) LatencySummary {
	if len(sample) == 0 {
		return LatencySummary{}
	}
	s := append([]time.Duration(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return LatencySummary{
		Count:      len(s),
		P50:        pct(0.50),
		P95:        pct(0.95),
		P99:        pct(0.99),
		Max:        s[len(s)-1],
		MeanMicros: float64(sum.Microseconds()) / float64(len(s)),
	}
}
