package workload

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Requests: 50, Mix: DefaultMix, Accounts: 3}
	a := Generate(spec, 42)
	b := Generate(spec, 42)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Generate(spec, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateRespectsMix(t *testing.T) {
	onlyReads := Generate(Spec{Requests: 30, Mix: Mix{Reads: 1}}, 1)
	for _, r := range onlyReads {
		if r.Action != "read" {
			t.Fatalf("pure-read mix produced %v", r)
		}
	}
	onlyDebits := Generate(Spec{Requests: 30, Mix: Mix{Debits: 1}}, 1)
	for _, r := range onlyDebits {
		if r.Action != "debit" {
			t.Fatalf("pure-debit mix produced %v", r)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	reqs := Generate(Spec{}, 7)
	if len(reqs) != 10 {
		t.Errorf("default request count = %d, want 10", len(reqs))
	}
	kinds := map[string]bool{}
	for _, r := range reqs {
		kinds[string(r.Action)] = true
	}
	if len(kinds) < 2 {
		t.Errorf("default mix too uniform: %v", kinds)
	}
}

func TestSchedules(t *testing.T) {
	cs := CrashSchedule(2, 5*time.Millisecond)
	if len(cs) != 1 || cs[0].Crash != 2 || cs[0].After != 5*time.Millisecond {
		t.Errorf("CrashSchedule = %+v", cs)
	}
	fs := FlappingSchedule(3, 2, time.Millisecond)
	if len(fs) != 8 { // 2 pulses × 2 observers × (set + clear)
		t.Errorf("FlappingSchedule has %d events, want 8", len(fs))
	}
	clears := 0
	for _, e := range fs {
		if e.Clear {
			clears++
		}
	}
	if clears != 4 {
		t.Errorf("clears = %d, want 4", clears)
	}
}

func TestBankInvariants(t *testing.T) {
	b := NewBank(4, 100)
	if b.Total() != 400 {
		t.Errorf("opening total = %d", b.Total())
	}
	if b.Balance("acct-2") != 100 {
		t.Errorf("balance = %d", b.Balance("acct-2"))
	}
	if b.Balance("missing") != 0 {
		t.Errorf("missing account should read 0")
	}
}

func TestRegistryVocabulary(t *testing.T) {
	reg := Registry()
	if !reg.IsIdempotent("read") || !reg.IsIdempotent("token") {
		t.Error("read/token must be idempotent")
	}
	if !reg.IsUndoable("debit") {
		t.Error("debit must be undoable")
	}
}
