package workload

import (
	"fmt"
	"sync"

	"xability/internal/action"
	"xability/internal/sm"
)

// Bank is the standard benchmark application state: a set of accounts,
// mutated by the vocabulary of Registry. It is shared by all replicas of a
// cluster (it plays the third-party entity).
type Bank struct {
	mu      sync.Mutex
	balance map[string]int
}

// NewBank creates a bank whose accounts all start at the given balance.
func NewBank(accounts, opening int) *Bank {
	b := &Bank{balance: make(map[string]int, accounts)}
	for i := 0; i < accounts; i++ {
		b.balance[fmt.Sprintf("acct-%d", i)] = opening
	}
	return b
}

// Balance reads an account.
func (b *Bank) Balance(acct string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance[acct]
}

// Total sums all accounts — the conservation invariant used by property
// checks (debits of 10 must decrease it by exactly 10 per request).
func (b *Bank) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := 0
	for _, v := range b.balance {
		t += v
	}
	return t
}

// Setup returns the machine setup function registering the standard action
// bodies over this bank.
func (b *Bank) Setup() func(m *sm.Machine) {
	return func(m *sm.Machine) {
		must(m.HandleIdempotent("read", func(ctx *sm.Ctx) action.Value {
			b.mu.Lock()
			defer b.mu.Unlock()
			return action.Value(fmt.Sprintf("%d", b.balance[string(ctx.Req.Input)]))
		}))
		must(m.HandleIdempotent("token", func(ctx *sm.Ctx) action.Value {
			return action.Value(fmt.Sprintf("tok-%x", ctx.Rand.Int63()))
		}))
		must(m.HandleUndoable("debit",
			func(ctx *sm.Ctx) action.Value {
				b.mu.Lock()
				defer b.mu.Unlock()
				b.balance[string(ctx.Req.Input)] -= 10
				return "debited"
			},
			func(ctx *sm.Ctx) {
				b.mu.Lock()
				defer b.mu.Unlock()
				b.balance[string(ctx.Req.Input)] += 10
			}))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
