// Package workload generates the request sequences, action mixes, and
// fault schedules the experiment harness (cmd/xbench, bench_test.go) drives
// the protocols with.
//
// All generation is seeded: a (Spec, seed) pair always produces the same
// workload, so experiment rows are reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"xability/internal/action"
)

// Mix describes the action mix of a workload as weights; weights need not
// sum to anything in particular.
type Mix struct {
	// Reads weights the idempotent deterministic action ("read").
	Reads int
	// Tokens weights the idempotent non-deterministic action ("token").
	Tokens int
	// Debits weights the undoable action ("debit").
	Debits int
}

// DefaultMix is a balanced three-way mix.
var DefaultMix = Mix{Reads: 1, Tokens: 1, Debits: 1}

// Spec describes a workload.
type Spec struct {
	// Requests is the number of requests in the sequence.
	Requests int
	// Mix is the action mix.
	Mix Mix
	// Accounts is the key space size for inputs.
	Accounts int
	// FailProb arms environment failure injection for the base actions.
	FailProb float64
	// FailBudget bounds injected failures per action (eventual success).
	FailBudget int
}

// Request is one generated request.
type Request struct {
	Req action.Request
}

// Generate produces the request sequence for a spec.
func Generate(spec Spec, seed int64) []action.Request {
	rng := rand.New(rand.NewSource(seed))
	if spec.Requests <= 0 {
		spec.Requests = 10
	}
	if spec.Accounts <= 0 {
		spec.Accounts = 4
	}
	total := spec.Mix.Reads + spec.Mix.Tokens + spec.Mix.Debits
	if total == 0 {
		spec.Mix = DefaultMix
		total = 3
	}
	out := make([]action.Request, 0, spec.Requests)
	for i := 0; i < spec.Requests; i++ {
		acct := action.Value(fmt.Sprintf("acct-%d", rng.Intn(spec.Accounts)))
		pick := rng.Intn(total)
		switch {
		case pick < spec.Mix.Reads:
			out = append(out, action.NewRequest("read", acct))
		case pick < spec.Mix.Reads+spec.Mix.Tokens:
			out = append(out, action.NewRequest("token", acct))
		default:
			out = append(out, action.NewRequest("debit", acct))
		}
	}
	return out
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	// After is the delay from workload start.
	After time.Duration
	// Crash names a replica index to crash; -1 means no crash.
	Crash int
	// Suspect injects a false suspicion: observer replica index and target
	// replica index; both -1 means none.
	SuspectObserver, SuspectTarget int
	// Clear reverses a previously injected suspicion.
	Clear bool
}

// FaultSchedule is an ordered fault script.
type FaultSchedule []FaultEvent

// CrashSchedule builds a schedule that crashes the given replica once.
func CrashSchedule(replica int, after time.Duration) FaultSchedule {
	return FaultSchedule{{After: after, Crash: replica, SuspectObserver: -1, SuspectTarget: -1}}
}

// FlappingSchedule builds a schedule of transient false suspicions of
// replica 0 by every other replica, n pulses of the given width.
func FlappingSchedule(replicas, pulses int, width time.Duration) FaultSchedule {
	var out FaultSchedule
	t := width
	for p := 0; p < pulses; p++ {
		for obs := 1; obs < replicas; obs++ {
			out = append(out, FaultEvent{After: t, Crash: -1, SuspectObserver: obs, SuspectTarget: 0})
			out = append(out, FaultEvent{After: t + width, Crash: -1, SuspectObserver: obs, SuspectTarget: 0, Clear: true})
		}
		t += 2 * width
	}
	return out
}

// Registry returns the standard benchmark vocabulary: idempotent read and
// token, undoable debit.
func Registry() *action.Registry {
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	reg.MustRegister("token", action.KindIdempotent)
	reg.MustRegister("debit", action.KindUndoable)
	return reg
}
