// Package verify checks the x-able service specification of §4 against a
// concrete run: requirements R1–R4 for a single client submitting requests
// one at a time.
//
//	R1 — submit is idempotent: re-submissions of the same request must not
//	     duplicate side effects. Verified through R3 (the server-side
//	     history of a run with retries must still reduce to exactly-once)
//	     plus the environment's in-force effect audit.
//	R2 — submit eventually succeeds: the run log must show every submitted
//	     request eventually returning a value (the run terminated).
//	R3 — the server-side history is x-able w.r.t. the successfully
//	     submitted request sequence. Checked strictly (whole-history
//	     reduction to the sequential failure-free form) and per-request
//	     (the projection relaxation of DESIGN.md §2, which tolerates
//	     duplicate completions straggling across request boundaries).
//	R4 — every reply is a possible reply (§3.4) and is the output value of
//	     the surviving execution in the reduced history.
package verify

import (
	"fmt"

	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/reduce"
)

// Run captures everything the checker needs about one execution of a
// replicated service.
type Run struct {
	// Registry is the service's action vocabulary.
	Registry *action.Registry
	// Requests are the successfully submitted requests, in submission
	// order, with their IDs.
	Requests []action.Request
	// Replies are the values submit returned, parallel to Requests.
	Replies []action.Value
	// History is the observer's total-ordered event history.
	History event.History
	// PossibleReply implements §3.4; nil accepts every value.
	PossibleReply func(req action.Request, ov action.Value) bool
	// SubmitAttempts is the total number of submit attempts (≥ len(Requests)).
	SubmitAttempts int
	// Concurrent marks a run whose requests were submitted concurrently
	// (open-loop load): R3 then checks the per-request projection without
	// the inter-request sequencing clause — concurrent sessions are
	// unordered (§4's composition across clients) — and strict
	// whole-history reduction is not attempted (no sequential form
	// exists to reduce to).
	Concurrent bool
}

// Report is the verdict, with one flag per checkable clause.
type Report struct {
	// R2 holds when every request got a reply.
	R2 bool
	// R3Strict holds when the whole history reduces to the sequential
	// failure-free history of the request sequence.
	R3Strict bool
	// R3Projected holds under the per-request relaxation.
	R3Projected bool
	// Outputs are the surviving execution outputs per request (from the
	// projected check when strict fails).
	Outputs []action.Value
	// R4Possible holds when every reply satisfies PossibleReply.
	R4Possible bool
	// R4Consistent holds when every reply equals the surviving execution's
	// output value in the reduced history.
	R4Consistent bool
	// Details carries human-readable diagnostics for failed clauses.
	Details []string
}

// OK reports whether every checked clause holds (strict R3 excepted when
// the projected form holds — see Report.R3Strict for the strong verdict).
func (r Report) OK() bool {
	return r.R2 && r.R3Projected && r.R4Possible && r.R4Consistent
}

// Check verifies a run.
func Check(run Run) Report {
	var rep Report
	rep.R2 = len(run.Replies) == len(run.Requests)
	if !rep.R2 {
		rep.Details = append(rep.Details, fmt.Sprintf("R2: %d requests but %d replies", len(run.Requests), len(run.Replies)))
	}

	n := reduce.New(run.Registry)

	specs := make([]reduce.TargetSpec, 0, len(run.Requests))
	specsOK := true
	for _, req := range run.Requests {
		spec, err := reduce.SpecFor(run.Registry, req)
		if err != nil {
			rep.Details = append(rep.Details, fmt.Sprintf("R3: %v", err))
			specsOK = false
			break
		}
		specs = append(specs, spec)
	}

	if specsOK {
		var strictOuts []action.Value
		if !run.Concurrent {
			rep.R3Strict, strictOuts = n.XAbleTo(run.History, specs)
		}
		var projOuts []action.Value
		if run.Concurrent {
			rep.R3Projected, projOuts = n.XAbleConcurrent(run.History, run.Requests)
		} else {
			rep.R3Projected, projOuts = n.XAbleProjected(run.History, run.Requests)
		}
		switch {
		case rep.R3Strict:
			rep.Outputs = strictOuts
		case rep.R3Projected:
			rep.Outputs = projOuts
			if run.Concurrent {
				rep.Details = append(rep.Details, "R3: concurrent per-request projection holds (open-loop run; no sequential form)")
			} else {
				rep.Details = append(rep.Details, "R3: strict whole-history reduction failed; per-request projection holds (straggling duplicate completions)")
			}
		default:
			rep.Details = append(rep.Details, "R3: history is not x-able for the submitted sequence")
		}
	}

	rep.R4Possible = true
	rep.R4Consistent = rep.R3Projected || rep.R3Strict
	for i, req := range run.Requests {
		if i >= len(run.Replies) {
			break
		}
		if run.PossibleReply != nil && !run.PossibleReply(req, run.Replies[i]) {
			rep.R4Possible = false
			rep.Details = append(rep.Details, fmt.Sprintf("R4: reply %q to %v is not a possible reply", action.Display(run.Replies[i]), req))
		}
		if i < len(rep.Outputs) && rep.Outputs[i] != run.Replies[i] {
			rep.R4Consistent = false
			rep.Details = append(rep.Details, fmt.Sprintf("R4: reply %q to %v differs from surviving output %q", action.Display(run.Replies[i]), req, action.Display(rep.Outputs[i])))
		}
	}
	return rep
}
