package verify

import (
	"testing"

	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/reduce"
)

func reg() *action.Registry {
	r := action.NewRegistry()
	r.MustRegister("read", action.KindIdempotent)
	r.MustRegister("debit", action.KindUndoable)
	return r
}

func TestCheckCleanRun(t *testing.T) {
	r := reg()
	req := action.NewRequest("read", "k").WithID("q1")
	ff, err := reduce.EventsOf(r, req, "v")
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{req},
		Replies:  []action.Value{"v"},
		History:  ff,
	})
	if !rep.OK() || !rep.R3Strict || !rep.R2 || !rep.R4Consistent {
		t.Errorf("report = %+v", rep)
	}
}

func TestCheckRetriedRun(t *testing.T) {
	r := reg()
	req := action.NewRequest("read", "k").WithID("q1")
	iv := req.EffectiveInput()
	h := event.History{
		event.S("read", iv),
		event.S("read", iv),
		event.C("read", "v"),
	}
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{req},
		Replies:  []action.Value{"v"},
		History:  h,
	})
	if !rep.OK() || !rep.R3Strict {
		t.Errorf("retried run should verify: %+v", rep)
	}
}

func TestCheckMissingReplyFailsR2(t *testing.T) {
	r := reg()
	req := action.NewRequest("read", "k").WithID("q1")
	ff, _ := reduce.EventsOf(r, req, "v")
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{req},
		Replies:  nil,
		History:  ff,
	})
	if rep.R2 || rep.OK() {
		t.Errorf("missing reply must fail R2: %+v", rep)
	}
}

func TestCheckDuplicatedEffectFailsR3(t *testing.T) {
	r := reg()
	req := action.NewRequest("read", "k").WithID("q1")
	iv := req.EffectiveInput()
	// Two completed executions with diverging values: irreducible.
	h := event.History{
		event.S("read", iv), event.C("read", "v1"),
		event.S("read", iv), event.C("read", "v2"),
	}
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{req},
		Replies:  []action.Value{"v1"},
		History:  h,
	})
	if rep.R3Strict || rep.R3Projected || rep.OK() {
		t.Errorf("diverging duplicate must fail R3: %+v", rep)
	}
}

func TestCheckWrongReplyFailsR4(t *testing.T) {
	r := reg()
	req := action.NewRequest("read", "k").WithID("q1")
	ff, _ := reduce.EventsOf(r, req, "v")
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{req},
		Replies:  []action.Value{"not-v"},
		History:  ff,
	})
	if rep.R4Consistent {
		t.Errorf("reply differing from surviving output must fail R4 consistency: %+v", rep)
	}
}

func TestCheckPossibleReplyPredicate(t *testing.T) {
	r := reg()
	req := action.NewRequest("read", "k").WithID("q1")
	ff, _ := reduce.EventsOf(r, req, "v")
	rep := Check(Run{
		Registry:      r,
		Requests:      []action.Request{req},
		Replies:       []action.Value{"v"},
		History:       ff,
		PossibleReply: func(req action.Request, ov action.Value) bool { return false },
	})
	if rep.R4Possible {
		t.Errorf("rejecting predicate must fail R4Possible: %+v", rep)
	}
}

func TestCheckStragglerFallsBackToProjected(t *testing.T) {
	r := reg()
	// Request 1 has a duplicate completion that straggles past request 2's
	// events: strict R3 fails (no rule reorders across the pair), but the
	// per-request projection holds.
	q1 := action.NewRequest("read", "k1").WithID("q1")
	q2 := action.NewRequest("read", "k2").WithID("q2")
	iv1, iv2 := q1.EffectiveInput(), q2.EffectiveInput()
	h := event.History{
		event.S("read", iv1),
		event.S("read", iv1),
		event.C("read", "v1"),
		event.S("read", iv2),
		event.C("read", "v2"),
		event.C("read", "v1"), // straggler of q1's duplicate execution
	}
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{q1, q2},
		Replies:  []action.Value{"v1", "v2"},
		History:  h,
	})
	if rep.R3Strict {
		t.Error("straggler across requests should fail strict R3")
	}
	if !rep.R3Projected {
		t.Errorf("projection should tolerate the straggler: %+v", rep)
	}
	if !rep.OK() {
		t.Errorf("report should be OK overall: %+v", rep)
	}
}

func TestCheckUnknownActionReported(t *testing.T) {
	r := reg()
	req := action.NewRequest("ghost", "k").WithID("q1")
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{req},
		Replies:  []action.Value{"v"},
		History:  event.Lambda,
	})
	if rep.R3Strict || rep.R3Projected {
		t.Errorf("unknown action must not verify: %+v", rep)
	}
	if len(rep.Details) == 0 {
		t.Error("expected diagnostic details")
	}
}

func TestCheckSequenceOutputs(t *testing.T) {
	r := reg()
	q1 := action.NewRequest("debit", "a").WithID("q1")
	q2 := action.NewRequest("read", "a").WithID("q2")
	ff1, _ := reduce.EventsOf(r, q1.WithRound(1), "debited")
	ff2, _ := reduce.EventsOf(r, q2, "90")
	rep := Check(Run{
		Registry: r,
		Requests: []action.Request{q1, q2},
		Replies:  []action.Value{"debited", "90"},
		History:  ff1.Concat(ff2),
	})
	if !rep.OK() || !rep.R3Strict {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Outputs) != 2 || rep.Outputs[0] != "debited" || rep.Outputs[1] != "90" {
		t.Errorf("outputs = %v", rep.Outputs)
	}
}
