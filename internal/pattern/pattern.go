// Package pattern implements the history patterns of §2.4 (Figures 1–2):
//
//	sp ::= [a, iv, ov] | ?[a, iv, ov]
//	p  ::= sp | sp1 ‖h sp2
//
// A simple pattern matches single-action histories: [a,iv,ov] matches the
// two events of a failure-free execution; ?[a,iv,ov] matches a possibly
// failed execution (Λ, the start event alone, or both events). The composite
// pattern sp1 ‖h sp2 matches a history h′ that interleaves three
// sub-histories h1 ⊨ sp1, h2 ⊨ sp2 and an arbitrary junk history h, with two
// anchoring constraints (§2.4): the first event of h1 must be the first
// event of h′, and the last event of h2 must be the last event of h′.
//
// Interleaving semantics. Rules 9–11 of Figure 2 enumerate the legal
// interleavings via the first()/second() operators of Figure 3. Read
// literally, rules 10–11 duplicate the event of a one-event h1 (because
// first(e) = second(e) = e). We implement the evident intent instead: h′ is
// an order-preserving shuffle of h1, h2 and h in which every event of h′
// belongs to exactly one part, subject to the two anchors above. On
// histories where the literal rules are unambiguous (h1 with zero or two
// events) the two readings coincide; TestDecomposeAgreesWithLiteralRules
// verifies this against a transcription of rules 9–11.
//
// The output position of a simple pattern may be a wildcard (any ov): the
// reduction rules of Figure 4 use ?[aᵘ, iv, ov] with ov free in rule 19.
package pattern

import (
	"fmt"

	"xability/internal/action"
	"xability/internal/event"
)

// Simple is a simple pattern sp.
type Simple struct {
	Action action.Name
	Input  action.Value
	Output action.Value

	// Maybe distinguishes ?[a,iv,ov] (true) from [a,iv,ov] (false).
	Maybe bool
	// AnyOutput makes the output position a wildcard: the pattern matches
	// any completion value. Used where the paper leaves ov existentially
	// quantified (e.g. the ?-part of reduction rule 19).
	AnyOutput bool
}

// Exact returns the pattern [a, iv, ov].
func Exact(a action.Name, iv, ov action.Value) Simple {
	return Simple{Action: a, Input: iv, Output: ov}
}

// Maybe returns the pattern ?[a, iv, ov].
func Maybe(a action.Name, iv, ov action.Value) Simple {
	return Simple{Action: a, Input: iv, Output: ov, Maybe: true}
}

// MaybeAny returns the pattern ?[a, iv, ov] with ov a wildcard.
func MaybeAny(a action.Name, iv action.Value) Simple {
	return Simple{Action: a, Input: iv, Maybe: true, AnyOutput: true}
}

// String renders the pattern in paper notation.
func (sp Simple) String() string {
	ov := action.Display(sp.Output)
	if sp.AnyOutput {
		ov = "∃ov"
	}
	s := fmt.Sprintf("[%s, %s, %s]", sp.Action, action.Display(sp.Input), ov)
	if sp.Maybe {
		s = "?" + s
	}
	return s
}

// startEvent returns the start event the pattern's action produces.
func (sp Simple) startEvent() event.Event { return event.S(sp.Action, sp.Input) }

// matchesStart reports whether e can be the start event of this pattern.
func (sp Simple) matchesStart(e event.Event) bool {
	return e.Type == event.Start && e.Action == sp.Action && e.Value == sp.Input
}

// matchesCompletion reports whether e can be the completion event of this
// pattern (honoring the output wildcard).
func (sp Simple) matchesCompletion(e event.Event) bool {
	if e.Type != event.Complete || e.Action != sp.Action {
		return false
	}
	return sp.AnyOutput || e.Value == sp.Output
}

// Matches implements ⊨ for simple patterns (rules 5–8 of Figure 2).
func (sp Simple) Matches(h event.History) bool {
	switch len(h) {
	case 0:
		return sp.Maybe // rule 6: Λ ⊨ ?[a,iv,ov]
	case 1:
		return sp.Maybe && sp.matchesStart(h[0]) // rule 7
	case 2:
		// rule 5 and rule 8: S(a,iv) C(a,ov).
		return sp.matchesStart(h[0]) && sp.matchesCompletion(h[1])
	default:
		return false
	}
}

// Part labels which sub-history an event of the matched history belongs to.
type Part int8

const (
	// PartJunk marks an event of the arbitrary interleaved history h.
	PartJunk Part = iota
	// PartFirst marks an event of h1 (the sp1 match).
	PartFirst
	// PartSecond marks an event of h2 (the sp2 match).
	PartSecond
)

// Decomposition is one way a history matches sp1 ‖h sp2. Assign labels each
// event of the matched history with its part; H1, H2 and Junk are the
// projected sub-histories (Junk is the paper's h, preserved verbatim by the
// reduction rules).
type Decomposition struct {
	Assign []Part
	H1     event.History
	H2     event.History
	Junk   event.History
}

// Compose matches h against the composite pattern sp1 ‖h sp2 and reports
// whether any decomposition exists.
func Compose(h event.History, sp1, sp2 Simple) bool {
	return len(Decompose(h, sp1, sp2, 1)) > 0
}

// Decompose enumerates decompositions of h matching sp1 ‖junk sp2, up to
// limit (limit ≤ 0 means all). The enumeration order is deterministic.
//
// Because simple patterns match at most two events, the search space per
// history is O(len(h)²) candidate index pairs for each part.
func Decompose(h event.History, sp1, sp2 Simple, limit int) []Decomposition {
	n := len(h)
	var out []Decomposition

	// Enumerate candidate index sets for h1. The anchoring constraint: if
	// h1 is non-empty its first event must be h[0].
	type idxPair struct{ s, c int } // -1 means absent
	var h1cands []idxPair
	if sp1.Maybe {
		h1cands = append(h1cands, idxPair{-1, -1}) // h1 = Λ
	}
	if n > 0 && sp1.matchesStart(h[0]) {
		if sp1.Maybe {
			h1cands = append(h1cands, idxPair{0, -1}) // start only
		}
		for c := 1; c < n; c++ {
			if sp1.matchesCompletion(h[c]) {
				h1cands = append(h1cands, idxPair{0, c})
			}
		}
	}

	// Candidate index sets for h2: its last event must be h[n-1].
	var h2cands []idxPair
	if sp2.Maybe {
		h2cands = append(h2cands, idxPair{-1, -1})
		if n > 0 && sp2.matchesStart(h[n-1]) {
			h2cands = append(h2cands, idxPair{n - 1, -1})
		}
	}
	if n > 0 && sp2.matchesCompletion(h[n-1]) {
		for s := 0; s < n-1; s++ {
			if sp2.matchesStart(h[s]) {
				h2cands = append(h2cands, idxPair{s, n - 1})
			}
		}
	}

	for _, p1 := range h1cands {
		for _, p2 := range h2cands {
			// Parts must be disjoint.
			if overlap(p1.s, p1.c, p2.s, p2.c) {
				continue
			}
			d := buildDecomposition(h, p1.s, p1.c, p2.s, p2.c)
			out = append(out, d)
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

func overlap(a1, a2, b1, b2 int) bool {
	for _, a := range []int{a1, a2} {
		if a < 0 {
			continue
		}
		if a == b1 || a == b2 {
			return true
		}
	}
	return false
}

func buildDecomposition(h event.History, s1, c1, s2, c2 int) Decomposition {
	assign := make([]Part, len(h))
	set := func(i int, p Part) {
		if i >= 0 {
			assign[i] = p
		}
	}
	set(s1, PartFirst)
	set(c1, PartFirst)
	set(s2, PartSecond)
	set(c2, PartSecond)
	d := Decomposition{Assign: assign}
	for i, e := range h {
		switch assign[i] {
		case PartFirst:
			d.H1 = append(d.H1, e)
		case PartSecond:
			d.H2 = append(d.H2, e)
		default:
			d.Junk = append(d.Junk, e)
		}
	}
	return d
}
