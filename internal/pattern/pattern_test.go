package pattern

import (
	"math/rand"
	"testing"

	"xability/internal/action"
	"xability/internal/event"
)

func TestSimpleMatchesExact(t *testing.T) {
	sp := Exact("a", "iv", "ov")
	tests := []struct {
		h    event.History
		want bool
	}{
		{event.History{event.S("a", "iv"), event.C("a", "ov")}, true}, // rule 5
		{event.Lambda, false},
		{event.History{event.S("a", "iv")}, false},
		{event.History{event.S("a", "x"), event.C("a", "ov")}, false},
		{event.History{event.S("a", "iv"), event.C("a", "x")}, false},
		{event.History{event.S("b", "iv"), event.C("b", "ov")}, false},
		{event.History{event.C("a", "ov"), event.S("a", "iv")}, false},
		{event.History{event.S("a", "iv"), event.C("a", "ov"), event.S("a", "iv")}, false},
	}
	for i, tt := range tests {
		if got := sp.Matches(tt.h); got != tt.want {
			t.Errorf("case %d: %v ⊨ %v = %v, want %v", i, tt.h, sp, got, tt.want)
		}
	}
}

func TestSimpleMatchesMaybe(t *testing.T) {
	sp := Maybe("a", "iv", "ov")
	tests := []struct {
		h    event.History
		want bool
	}{
		{event.Lambda, true},                                          // rule 6
		{event.History{event.S("a", "iv")}, true},                     // rule 7
		{event.History{event.S("a", "iv"), event.C("a", "ov")}, true}, // rule 8
		{event.History{event.S("a", "x")}, false},
		{event.History{event.C("a", "ov")}, false},
		{event.History{event.S("a", "iv"), event.C("a", "x")}, false},
	}
	for i, tt := range tests {
		if got := sp.Matches(tt.h); got != tt.want {
			t.Errorf("case %d: %v ⊨ %v = %v, want %v", i, tt.h, sp, got, tt.want)
		}
	}
}

func TestSimpleMatchesAnyOutput(t *testing.T) {
	sp := MaybeAny("a", "iv")
	for _, ov := range []action.Value{"x", "y", action.Nil} {
		h := event.History{event.S("a", "iv"), event.C("a", ov)}
		if !sp.Matches(h) {
			t.Errorf("wildcard output should match %v", h)
		}
	}
	if sp.Matches(event.History{event.S("a", "other")}) {
		t.Error("wildcard output does not relax the input position")
	}
}

func TestPatternString(t *testing.T) {
	if got := Exact("a", "i", "o").String(); got != "[a, i, o]" {
		t.Errorf("String() = %q", got)
	}
	if got := Maybe("a", "i", "o").String(); got != "?[a, i, o]" {
		t.Errorf("String() = %q", got)
	}
	if got := MaybeAny("a", "i").String(); got != "?[a, i, ∃ov]" {
		t.Errorf("String() = %q", got)
	}
}

// Shorthands for building histories in composite tests.
var (
	s1 = event.S("a", "iv")
	c1 = event.C("a", "ov")
	s2 = event.S("a", "iv")
	c2 = event.C("a", "ov")
	jx = event.S("z", "junk")
	jy = event.C("z", "junkdone")
)

func TestComposeRule9Shapes(t *testing.T) {
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	tests := []struct {
		name string
		h    event.History
		want bool
	}{
		{"h1 empty, no junk", event.History{s2, c2}, true},
		{"h1 empty, junk before h2", event.History{jx, s2, c2}, true},
		{"h1 start-only then h2", event.History{s1, s2, c2}, true},
		{"full h1 then h2", event.History{s1, c1, s2, c2}, true},
		{"junk between", event.History{s1, c1, jx, jy, s2, c2}, true},
		{"empty history", event.Lambda, false}, // sp2 is exact: needs events
		{"only failed attempt", event.History{s1}, false},
		{"junk after h2", event.History{s1, c1, s2, c2, jx}, false}, // last event must be h2's completion
		{"junk first with h1 present is junk-anchored", event.History{jx, s1, c1, s2, c2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Compose(tt.h, sp1, sp2); got != tt.want {
				t.Errorf("Compose(%v) = %v, want %v", tt.h, got, tt.want)
			}
		})
	}
}

func TestComposeJunkFirstRequiresEmptyH1(t *testing.T) {
	// When the first event of the history is junk, h1 must match Λ: the
	// anchoring constraint says a non-empty h1 starts at the first event.
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	h := event.History{jx, s1, c1, s2, c2}
	ds := Decompose(h, sp1, sp2, 0)
	if len(ds) == 0 {
		t.Fatal("expected at least one decomposition")
	}
	for _, d := range ds {
		if len(d.H1) != 0 {
			t.Errorf("decomposition with junk-first assigned h1=%v; h1 must be Λ", d.H1)
		}
	}
}

func TestComposeOverlappingShapes(t *testing.T) {
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	tests := []struct {
		name string
		h    event.History
		want bool
	}{
		{"rule 10: S1 junk C1 junk S2 junk C2", event.History{s1, jx, c1, jy, s2, c2}, true},
		{"rule 11: S1 S2 C1 C2", event.History{s1, s2, c1, c2}, true},
		{"rule 11 with junk", event.History{s1, jx, s2, jy, c1, c2}, true},
		{"failed start inside success span", event.History{s2, s1, c2}, true}, // h1=Λ + junk reading also exists
		// A stray completion before the success is junk under rule 9 with
		// h1 = Λ: junk is arbitrary, so this matches.
		{"completion before any start is junk", event.History{c1, s2, c2}, true},
		{"success events out of order", event.History{c2, s2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Compose(tt.h, sp1, sp2); got != tt.want {
				t.Errorf("Compose(%v) = %v, want %v", tt.h, got, tt.want)
			}
		})
	}
}

func TestComposeSingletonH1WithInterleavedSuccess(t *testing.T) {
	// The motivating case for the shuffle semantics: a replica starts the
	// action and crashes (start event only); another replica executes it
	// successfully, with unrelated events interleaved inside the success
	// span. Read literally, rules 10–11 cannot match this without
	// duplicating the singleton h1 event; the evident intent is that it
	// matches.
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	h := event.History{s1, s2, jx, c2}
	ds := Decompose(h, sp1, sp2, 0)
	found := false
	for _, d := range ds {
		if len(d.H1) == 1 && len(d.H2) == 2 && len(d.Junk) == 1 {
			found = true
			if !d.Junk.Equal(event.History{jx}) {
				t.Errorf("junk = %v, want [%v]", d.Junk, jx)
			}
		}
	}
	if !found {
		t.Errorf("no decomposition with singleton h1 for %v; got %d decompositions", h, len(ds))
	}
}

func TestDecompositionPartsPartitionHistory(t *testing.T) {
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	h := event.History{s1, jx, s2, jy, c1, c2}
	for _, d := range Decompose(h, sp1, sp2, 0) {
		if len(d.Assign) != len(h) {
			t.Fatalf("assign length %d, want %d", len(d.Assign), len(h))
		}
		if got := len(d.H1) + len(d.H2) + len(d.Junk); got != len(h) {
			t.Errorf("parts cover %d events, want %d", got, len(h))
		}
		if !sp1.Matches(d.H1) {
			t.Errorf("h1 = %v does not match %v", d.H1, sp1)
		}
		if !sp2.Matches(d.H2) {
			t.Errorf("h2 = %v does not match %v", d.H2, sp2)
		}
		// Anchors.
		if len(d.H1) > 0 && !d.H1[0].Equal(h[0]) {
			t.Errorf("h1 first event %v is not the history's first event", d.H1[0])
		}
		if len(d.H2) > 0 && !d.H2[len(d.H2)-1].Equal(h[len(h)-1]) {
			t.Errorf("h2 last event is not the history's last event")
		}
	}
}

func TestDecomposeLimit(t *testing.T) {
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	h := event.History{s1, c1, s2, c2}
	all := Decompose(h, sp1, sp2, 0)
	if len(all) < 2 {
		t.Fatalf("expected multiple decompositions, got %d", len(all))
	}
	one := Decompose(h, sp1, sp2, 1)
	if len(one) != 1 {
		t.Errorf("limit 1 returned %d", len(one))
	}
}

// literalRule9 checks the rule-9 shape: h = h1 • junk • h2 with h1 a
// contiguous prefix matching sp1 and h2 a contiguous suffix matching sp2.
func literalRule9(h event.History, sp1, sp2 Simple) bool {
	n := len(h)
	for l1 := 0; l1 <= min(2, n); l1++ {
		if !sp1.Matches(h[:l1]) {
			continue
		}
		for l2 := 0; l2 <= min(2, n-l1); l2++ {
			if sp2.Matches(h[n-l2:]) && l1+l2 <= n {
				return true
			}
		}
	}
	return false
}

// literalRule10And11 checks the shapes of rules 10 and 11 for two-event h1
// and h2 (the unambiguous cases): S1 …junk… C1 …junk… S2 …junk… C2 and
// S1 …junk… S2 …junk… C1 …junk… C2.
func literalRule10And11(h event.History, sp1, sp2 Simple) bool {
	n := len(h)
	if n < 4 {
		return false
	}
	if !sp1.matchesStart(h[0]) || !sp2.matchesCompletion(h[n-1]) {
		return false
	}
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			if i == j {
				continue
			}
			// i = position of C1, j = position of S2. Rule 10: i < j;
			// rule 11: j < i. Both demand S1 first and C2 last.
			if sp1.matchesCompletion(h[i]) && sp2.matchesStart(h[j]) {
				return true
			}
		}
	}
	return false
}

func TestDecomposeAgreesWithLiteralRules(t *testing.T) {
	// On randomized histories, the shuffle semantics must accept everything
	// the literal rules accept (it is a completion of them), and on
	// histories where h1 is unambiguous (empty or two events) they must
	// agree exactly. We verify the first direction here.
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	pool := event.History{s1, c1, s2, c2, jx, jy}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(7)
		h := make(event.History, 0, n)
		for i := 0; i < n; i++ {
			h = append(h, pool[rng.Intn(len(pool))])
		}
		literal := literalRule9(h, sp1, sp2) || literalRule10And11(h, sp1, sp2)
		ours := Compose(h, sp1, sp2)
		if literal && !ours {
			t.Fatalf("history %v: literal rules match but Decompose rejects", h)
		}
	}
}

func TestDecomposeExactRequiresCompletion(t *testing.T) {
	sp1 := Exact("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	// Two full executions back to back.
	h := event.History{s1, c1, s2, c2}
	if !Compose(h, sp1, sp2) {
		t.Error("two sequential executions should match [.]‖[.]")
	}
	// A single execution cannot satisfy both exact parts.
	if Compose(event.History{s1, c1}, sp1, sp2) {
		t.Error("one execution must not match two exact parts")
	}
}

func TestComposeEmptyHistoryDoubleMaybe(t *testing.T) {
	sp := Maybe("a", "iv", "ov")
	if !Compose(event.Lambda, sp, sp) {
		t.Error("Λ should match ?[…] ‖ ?[…] (both parts match Λ)")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
