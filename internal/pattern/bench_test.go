package pattern

import (
	"testing"

	"xability/internal/event"
)

// BenchmarkPatternMatch measures the decomposition matcher on the rule-18
// window shape (experiment E1's performance leg).
func BenchmarkPatternMatch(b *testing.B) {
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	h := event.History{
		event.S("a", "iv"), event.S("z", "junk"), event.S("a", "iv"),
		event.C("z", "junk"), event.C("a", "ov"), event.C("a", "ov"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Compose(h, sp1, sp2) {
			b.Fatal("should match")
		}
	}
}

// BenchmarkDecomposeAll measures full decomposition enumeration.
func BenchmarkDecomposeAll(b *testing.B) {
	sp1 := Maybe("a", "iv", "ov")
	sp2 := Exact("a", "iv", "ov")
	h := event.History{
		event.S("a", "iv"), event.C("a", "ov"),
		event.S("a", "iv"), event.C("a", "ov"),
		event.S("a", "iv"), event.C("a", "ov"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ds := Decompose(h, sp1, sp2, 0); len(ds) == 0 {
			b.Fatal("no decompositions")
		}
	}
}

// BenchmarkSimpleMatch measures single-pattern matching (rules 5–8).
func BenchmarkSimpleMatch(b *testing.B) {
	sp := Maybe("a", "iv", "ov")
	h := event.History{event.S("a", "iv"), event.C("a", "ov")}
	for i := 0; i < b.N; i++ {
		if !sp.Matches(h) {
			b.Fatal("should match")
		}
	}
}
