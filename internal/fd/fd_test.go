package fd

import (
	"testing"
	"time"

	"xability/internal/simnet"
)

func TestScriptedBasics(t *testing.T) {
	d := NewScripted(nil)
	if d.Suspect("a") {
		t.Error("zero detector suspects")
	}
	d.SetSuspected("a", true)
	if !d.Suspect("a") {
		t.Error("explicit suspicion ignored")
	}
	d.SetSuspected("a", false)
	if d.Suspect("a") {
		t.Error("cleared suspicion persists")
	}
}

func TestScriptedStrongCompleteness(t *testing.T) {
	n := simnet.New(simnet.Config{})
	defer n.Close()
	n.Register("a")
	d := NewScripted(n)
	if d.Suspect("a") {
		t.Error("live process suspected")
	}
	n.Crash("a")
	if !d.Suspect("a") {
		t.Error("crashed process not suspected (strong completeness)")
	}
}

func TestHeartbeatDetectsCrash(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 1})
	defer n.Close()
	ids := []simnet.ProcessID{"p1", "p2"}
	var hbs []*Heartbeat
	for _, id := range ids {
		ep := n.Register(FDEndpoint(id))
		hb := NewHeartbeat(id, ep, ids, HeartbeatConfig{Interval: time.Millisecond})
		hb.Start()
		hbs = append(hbs, hb)
	}
	defer func() {
		for _, hb := range hbs {
			hb.Stop()
		}
	}()

	// Warm up: p1 should trust p2 while heartbeats flow.
	time.Sleep(10 * time.Millisecond)
	if hbs[0].Suspect("p2") {
		t.Error("p2 suspected while alive")
	}

	n.Crash(FDEndpoint("p2"))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if hbs[0].Suspect("p2") {
			return // strong completeness
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("crashed peer never suspected")
}

func TestHeartbeatSelfUnknownPeer(t *testing.T) {
	n := simnet.New(simnet.Config{})
	defer n.Close()
	ep := n.Register(FDEndpoint("solo"))
	hb := NewHeartbeat("solo", ep, []simnet.ProcessID{"solo"}, HeartbeatConfig{Interval: time.Millisecond})
	hb.Start()
	defer hb.Stop()
	if hb.Suspect("stranger") {
		t.Error("unknown peer suspected")
	}
}

func TestHeartbeatAdaptiveTimeout(t *testing.T) {
	// After a false suspicion (late heartbeat), the timeout must grow so
	// the same delay no longer triggers suspicion (eventual accuracy).
	n := simnet.New(simnet.Config{Seed: 2})
	defer n.Close()
	ids := []simnet.ProcessID{"a", "b"}
	epA := n.Register(FDEndpoint("a"))
	hbA := NewHeartbeat("a", epA, ids, HeartbeatConfig{Interval: time.Millisecond})
	hbA.Start()
	defer hbA.Stop()
	epB := n.Register(FDEndpoint("b"))

	// Manually send one late heartbeat from b after a has begun suspecting.
	time.Sleep(6 * time.Millisecond)
	if !hbA.Suspect("b") {
		t.Fatal("expected suspicion after missing heartbeats")
	}
	before := func() time.Duration {
		hbA.mu.Lock()
		defer hbA.mu.Unlock()
		return hbA.timeout["b"]
	}()
	epB.Send(FDEndpoint("a"), "heartbeat", simnet.ProcessID("b"))
	n.Quiesce()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		hbA.mu.Lock()
		after := hbA.timeout["b"]
		last := hbA.lastSeen["b"]
		hbA.mu.Unlock()
		if after > before {
			// The late heartbeat proved the suspicion false: the timeout
			// doubled and b's freshness was re-established. b stays silent
			// afterwards, so the suspicion legitimately returns once the
			// doubled timeout elapses — on the virtual clock that can be
			// almost immediately in wall terms, so instead of asserting
			// "not suspected" at a racing instant, pin the predicate: a
			// suspicion may only be reported once the doubled timeout has
			// actually elapsed past the refreshed lastSeen.
			if hbA.Suspect("b") && hbA.clk.Now()-last <= after {
				t.Error("suspected b while its refreshed heartbeat was still within the adapted timeout")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout did not adapt after false suspicion")
}

func TestFDEndpointNaming(t *testing.T) {
	if FDEndpoint("x") != "x/fd" {
		t.Errorf("FDEndpoint = %q", FDEndpoint("x"))
	}
}
