// Package fd implements the failure-detector abstractions of §5.2 [CT96].
//
// The protocol needs two detector qualities:
//
//   - The client's detector must satisfy strong completeness: eventually,
//     every crashed replica is suspected.
//   - The replicas' detector must be eventually perfect (◇P): strong
//     completeness plus eventual strong accuracy — eventually, no replica
//     is suspected unless it has crashed.
//
// Two implementations are provided. Scripted is an oracle whose suspicions
// are injected by the test or scenario driver; it makes false-suspicion
// schedules deterministic and is how the experiments drive the protocol
// across its primary-backup ↔ active-replication spectrum. Heartbeat is a
// real detector over simnet: processes gossip heartbeats, a peer is
// suspected when its heartbeat is overdue, and the timeout doubles after
// each false suspicion, giving eventual accuracy once the timeout exceeds
// the network's maximum delay. All heartbeat timing runs on the network's
// clock, so under the default virtual clock detection latency costs no
// wall time.
package fd

import (
	"sync"
	"time"

	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/vclock"
)

// Detector is the suspect() predicate of §5.3: Suspect(p) reports whether
// the owning process currently suspects p to have crashed.
type Detector interface {
	Suspect(p simnet.ProcessID) bool
}

// Scripted is a detector whose suspicions are set explicitly. It is safe
// for concurrent use. The zero value suspects nobody.
type Scripted struct {
	mu        sync.RWMutex
	suspected map[simnet.ProcessID]bool
	net       *simnet.Network
	m         *obs.Metrics
}

// NewScripted returns an empty scripted detector. If net is non-nil,
// crashed processes are always suspected (strong completeness comes for
// free in tests).
func NewScripted(net *simnet.Network) *Scripted {
	s := &Scripted{suspected: make(map[simnet.ProcessID]bool), net: net}
	if net != nil {
		s.m = net.Metrics()
	}
	return s
}

// SetSuspected marks p as suspected (true) or trusted (false).
func (s *Scripted) SetSuspected(p simnet.ProcessID, v bool) {
	s.mu.Lock()
	was := s.suspected[p]
	s.suspected[p] = v
	s.mu.Unlock()
	if v && !was {
		s.m.Inc(obs.FDSuspicions)
	} else if !v && was {
		s.m.Inc(obs.FDUnsuspicions)
	}
}

// Suspect implements Detector.
func (s *Scripted) Suspect(p simnet.ProcessID) bool {
	if s.net != nil && s.net.Crashed(p) {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.suspected[p]
}

// Heartbeat is a ◇P-style detector driven by heartbeat messages over
// simnet. Each process runs one Heartbeat instance; Start launches the
// sender and monitor goroutines, Stop terminates them.
type Heartbeat struct {
	self     simnet.ProcessID
	peers    []simnet.ProcessID
	ep       *simnet.Endpoint
	clk      vclock.Clock
	interval time.Duration

	mu       sync.Mutex
	lastSeen map[simnet.ProcessID]time.Duration
	timeout  map[simnet.ProcessID]time.Duration
	overdue  map[simnet.ProcessID]bool // last Suspect verdict, for transition counting
	stop     chan struct{}
	stopOnce sync.Once

	m *obs.Metrics
}

// HeartbeatConfig tunes the detector.
type HeartbeatConfig struct {
	// Interval between heartbeats. The initial suspicion timeout is
	// 3×Interval and doubles on each false suspicion (adaptive accuracy).
	Interval time.Duration
}

// FDEndpoint returns the conventional process ID of p's failure-detector
// endpoint. Each monitored process registers this extra endpoint so that
// heartbeat traffic does not interleave with protocol messages, and crashes
// it together with its main endpoint.
func FDEndpoint(p simnet.ProcessID) simnet.ProcessID { return p + "/fd" }

// NewHeartbeat builds a heartbeat detector for self, monitoring peers
// (protocol process IDs; heartbeats travel between their FDEndpoint
// endpoints). ep must be the endpoint registered as FDEndpoint(self).
func NewHeartbeat(self simnet.ProcessID, ep *simnet.Endpoint, peers []simnet.ProcessID, cfg HeartbeatConfig) *Heartbeat {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	h := &Heartbeat{
		self:     self,
		peers:    peers,
		ep:       ep,
		clk:      ep.Clock(),
		interval: cfg.Interval,
		lastSeen: make(map[simnet.ProcessID]time.Duration),
		timeout:  make(map[simnet.ProcessID]time.Duration),
		overdue:  make(map[simnet.ProcessID]bool),
		stop:     make(chan struct{}),
		m:        ep.Metrics(),
	}
	now := h.clk.Now()
	for _, p := range peers {
		h.lastSeen[p] = now
		h.timeout[p] = 3 * cfg.Interval
	}
	return h
}

// Start launches the heartbeat sender and receiver on the network clock.
func (h *Heartbeat) Start() {
	h.clk.Go(h.sendLoop)
	h.clk.Go(h.recvLoop)
}

// Stop terminates the background goroutines.
func (h *Heartbeat) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
}

func (h *Heartbeat) stopped() bool {
	select {
	case <-h.stop:
		return true
	default:
		return false
	}
}

func (h *Heartbeat) sendLoop() {
	// The first beat lands after interval plus a per-process phase offset;
	// later beats follow every interval, like the ticker they replace.
	h.clk.Sleep(h.interval + vclock.Stagger(string(h.self), h.interval/4+1))
	for {
		if h.stopped() {
			return
		}
		for _, p := range h.peers {
			h.ep.Send(FDEndpoint(p), "heartbeat", h.self)
		}
		h.clk.Sleep(h.interval)
	}
}

func (h *Heartbeat) recvLoop() {
	for {
		if h.stopped() {
			return
		}
		msg, ok := h.ep.Recv()
		if !ok {
			return
		}
		if msg.Type != "heartbeat" {
			continue
		}
		from, _ := msg.Payload.(simnet.ProcessID)
		now := h.clk.Now()
		h.mu.Lock()
		// A heartbeat from a previously suspected process proves the
		// suspicion false: double its timeout (eventual strong accuracy).
		unsuspected := false
		if now-h.lastSeen[from] > h.timeout[from] {
			h.timeout[from] *= 2
			unsuspected = h.overdue[from]
		}
		h.lastSeen[from] = now
		h.overdue[from] = false
		h.mu.Unlock()
		if unsuspected {
			h.m.Inc(obs.FDUnsuspicions)
		}
	}
}

// Suspect implements Detector: true when the peer's heartbeat is overdue.
// The trusted→suspected transition is counted once per episode (the
// overdue flag resets when a heartbeat arrives), not per query.
func (h *Heartbeat) Suspect(p simnet.ProcessID) bool {
	now := h.clk.Now()
	h.mu.Lock()
	last, ok := h.lastSeen[p]
	if !ok {
		h.mu.Unlock()
		return false
	}
	over := now-last > h.timeout[p]
	fresh := over && !h.overdue[p]
	if over {
		h.overdue[p] = true
	}
	h.mu.Unlock()
	if fresh {
		h.m.Inc(obs.FDSuspicions)
	}
	return over
}
