package action

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCancelCommitDerivation(t *testing.T) {
	tests := []struct {
		name     Name
		derive   func(Name) Name
		wantBase Name
		wantKind Kind
	}{
		{"debit", Cancel, "debit", KindCancel},
		{"debit", Commit, "debit", KindCommit},
		{"a", Cancel, "a", KindCancel},
		{"a", Commit, "a", KindCommit},
	}
	for _, tt := range tests {
		derived := tt.derive(tt.name)
		base, kind := Base(derived)
		if base != tt.wantBase || kind != tt.wantKind {
			t.Errorf("Base(%q) = (%q, %v), want (%q, %v)", derived, base, kind, tt.wantBase, tt.wantKind)
		}
		if !IsDerived(derived) {
			t.Errorf("IsDerived(%q) = false, want true", derived)
		}
	}
}

func TestBasePlainName(t *testing.T) {
	base, kind := Base("transfer")
	if base != "transfer" || kind != KindIdempotent {
		t.Errorf("Base(transfer) = (%q, %v), want (transfer, idempotent-by-default)", base, kind)
	}
	if IsDerived("transfer") {
		t.Error("IsDerived(transfer) = true, want false")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(""); err == nil {
		t.Error("Validate(\"\") = nil, want error")
	}
	if err := Validate("a!cancel"); err == nil {
		t.Error("Validate with reserved '!' = nil, want error")
	}
	if err := Validate("withdraw"); err != nil {
		t.Errorf("Validate(withdraw) = %v, want nil", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindIdempotent: "idempotent",
		KindUndoable:   "undoable",
		KindCancel:     "cancel",
		KindCommit:     "commit",
		Kind(99):       "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestRequestDerivation(t *testing.T) {
	r := NewRequest("debit", "acct=7").WithRound(3)
	c := r.Cancel()
	if c.Action != Cancel("debit") || c.Input != r.Input || c.Round != 3 {
		t.Errorf("Cancel() = %+v, want same input/round with derived name", c)
	}
	m := r.Commit()
	if m.Action != Commit("debit") || m.Input != r.Input || m.Round != 3 {
		t.Errorf("Commit() = %+v, want same input/round with derived name", m)
	}
}

func TestEffectiveInputDistinguishesRounds(t *testing.T) {
	r1 := NewRequest("a", "x").WithRound(1)
	r2 := NewRequest("a", "x").WithRound(2)
	if r1.EffectiveInput() == r2.EffectiveInput() {
		t.Error("EffectiveInput must distinguish rounds (§5.4: a cancellation for round n cannot cancel round n+1)")
	}
	r0 := NewRequest("a", "x")
	if r0.EffectiveInput() != "x" {
		t.Errorf("round-0 EffectiveInput = %q, want raw input", r0.EffectiveInput())
	}
}

func TestSplitTagRoundTrip(t *testing.T) {
	r := NewRequest("a", "x=1").WithID("req-7").WithRound(3)
	base, id, round := SplitTag(r.EffectiveInput())
	if base != "x=1" || id != "req-7" || round != 3 {
		t.Errorf("SplitTag = (%q, %q, %d), want (x=1, req-7, 3)", base, id, round)
	}
	base, id, round = SplitTag("plain")
	if base != "plain" || id != "" || round != 0 {
		t.Errorf("SplitTag(plain) = (%q, %q, %d)", base, id, round)
	}
	// Requests tagged with an ID but no round still round-trip.
	r2 := NewRequest("a", "x").WithID("q")
	base, id, round = SplitTag(r2.EffectiveInput())
	if base != "x" || id != "q" || round != 0 {
		t.Errorf("SplitTag(id-only) = (%q, %q, %d)", base, id, round)
	}
}

func TestRequestString(t *testing.T) {
	r := NewRequest("debit", "acct=7")
	if got := r.String(); got != "(debit, acct=7)" {
		t.Errorf("String() = %q", got)
	}
	if got := r.WithRound(2).WithID("q1").String(); got != "(debit, acct=7@q1/r2)" {
		t.Errorf("String() with round = %q", got)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	fields := []string{"a", "", "c=d", "round=2"}
	v := EncodeTuple(fields...)
	got := DecodeTuple(v)
	if len(got) != len(fields) {
		t.Fatalf("DecodeTuple returned %d fields, want %d", len(got), len(fields))
	}
	for i := range fields {
		if got[i] != fields[i] {
			t.Errorf("field %d = %q, want %q", i, got[i], fields[i])
		}
	}
}

func TestTupleRoundTripProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		// The separator cannot appear in field text; strip it if quick
		// generates it.
		clean := func(s string) string { return strings.ReplaceAll(s, tupleSep, "_") }
		fields := []string{clean(a), clean(b), clean(c)}
		got := DecodeTuple(EncodeTuple(fields...))
		return len(got) == 3 && got[0] == fields[0] && got[1] == fields[1] && got[2] == fields[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisplayNil(t *testing.T) {
	if Display(Nil) != "nil" {
		t.Errorf("Display(Nil) = %q, want nil", Display(Nil))
	}
	if Display("v") != "v" {
		t.Errorf("Display(v) = %q", Display("v"))
	}
	if Nil == "" {
		t.Error("Nil must be distinguishable from the empty value")
	}
}

func TestRegistryClassification(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterIdempotent("read"); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterUndoable("debit"); err != nil {
		t.Fatal(err)
	}

	if !r.IsIdempotent("read") {
		t.Error("read should be idempotent")
	}
	if r.IsUndoable("read") {
		t.Error("read should not be undoable")
	}
	if !r.IsUndoable("debit") {
		t.Error("debit should be undoable")
	}
	if r.IsIdempotent("debit") {
		t.Error("debit itself is not idempotent")
	}
	// §3.1: cancellation and commit actions are idempotent.
	if !r.IsIdempotent(Cancel("debit")) {
		t.Error("debit!cancel should be idempotent")
	}
	if !r.IsIdempotent(Commit("debit")) {
		t.Error("debit!commit should be idempotent")
	}

	if k, ok := r.Kind(Cancel("debit")); !ok || k != KindCancel {
		t.Errorf("Kind(debit!cancel) = (%v, %v), want (cancel, true)", k, ok)
	}
	if _, ok := r.Kind("unknown"); ok {
		t.Error("Kind(unknown) should report not found")
	}
	if _, ok := r.Kind(Cancel("unknown")); ok {
		t.Error("Kind of cancel of unregistered base should report not found")
	}
}

func TestRegistryRejectsConflicts(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterUndoable("debit"); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterIdempotent("debit"); err == nil {
		t.Error("re-registering debit with different kind should fail")
	}
	if err := r.RegisterUndoable("debit"); err != nil {
		t.Errorf("idempotent re-registration with same kind should succeed, got %v", err)
	}
	if err := r.Register("x", KindCancel); err == nil {
		t.Error("registering a derived kind directly should fail")
	}
	if err := r.Register("a!cancel", KindIdempotent); err == nil {
		t.Error("registering a derived name should fail")
	}
}

func TestRegistryNamesAndClone(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("b", KindUndoable)
	r.MustRegister("a", KindIdempotent)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v, want [a b]", names)
	}

	c := r.Clone()
	c.MustRegister("z", KindIdempotent)
	if len(r.Names()) != 2 {
		t.Error("mutating clone affected original")
	}
	if !c.IsUndoable("b") {
		t.Error("clone lost classification")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.IsIdempotent("read")
			r.Kind("debit")
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = r.Register("read", KindIdempotent)
		_ = r.Register("debit", KindUndoable)
	}
	<-done
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister on invalid name should panic")
		}
	}()
	NewRegistry().MustRegister("", KindIdempotent)
}
