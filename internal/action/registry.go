package action

import (
	"fmt"
	"sort"
	"sync"
)

// Registry records the fault-tolerance classification of a vocabulary of
// actions: which names belong to the paper's Idempotent set and which to the
// Undoable set (§3.1). Derived cancel/commit names are classified
// automatically (they are idempotent by definition) and must not be
// registered directly.
//
// A Registry is safe for concurrent use. The zero value is ready to use.
type Registry struct {
	mu   sync.RWMutex
	kind map[Name]Kind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register classifies a user-defined action name. It returns an error for
// invalid names, derived names, or re-registration under a different kind.
func (r *Registry) Register(a Name, k Kind) error {
	if err := Validate(a); err != nil {
		return err
	}
	if k != KindIdempotent && k != KindUndoable {
		return fmt.Errorf("action: cannot register %q as %v; only idempotent and undoable actions are registered directly", a, k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.kind == nil {
		r.kind = make(map[Name]Kind)
	}
	if prev, ok := r.kind[a]; ok && prev != k {
		return fmt.Errorf("action: %q already registered as %v, cannot re-register as %v", a, prev, k)
	}
	r.kind[a] = k
	return nil
}

// MustRegister is Register that panics on error; intended for package-level
// vocabulary construction in examples and tests.
func (r *Registry) MustRegister(a Name, k Kind) {
	if err := r.Register(a, k); err != nil {
		panic(err)
	}
}

// RegisterIdempotent registers a as an idempotent action.
func (r *Registry) RegisterIdempotent(a Name) error { return r.Register(a, KindIdempotent) }

// RegisterUndoable registers a as an undoable action; its cancel and commit
// actions become implicitly available.
func (r *Registry) RegisterUndoable(a Name) error { return r.Register(a, KindUndoable) }

// Kind classifies any name, including derived cancel/commit names. The
// boolean reports whether the (base) name is known to the registry.
func (r *Registry) Kind(a Name) (Kind, bool) {
	base, derived := Base(a)
	if derived == KindCancel || derived == KindCommit {
		r.mu.RLock()
		_, ok := r.kind[base]
		r.mu.RUnlock()
		return derived, ok
	}
	r.mu.RLock()
	k, ok := r.kind[a]
	r.mu.RUnlock()
	return k, ok
}

// IsIdempotent reports whether a behaves idempotently under retry: true for
// registered idempotent actions and for all cancel/commit actions of
// registered undoable actions ("Cancellation and commit actions are
// idempotent", §3.1).
func (r *Registry) IsIdempotent(a Name) bool {
	k, ok := r.Kind(a)
	return ok && (k == KindIdempotent || k == KindCancel || k == KindCommit)
}

// IsUndoable reports whether a is a registered undoable action.
func (r *Registry) IsUndoable(a Name) bool {
	k, ok := r.Kind(a)
	return ok && k == KindUndoable
}

// Names returns the registered (base) names in sorted order.
func (r *Registry) Names() []Name {
	r.mu.RLock()
	names := make([]Name, 0, len(r.kind))
	for a := range r.kind {
		names = append(names, a)
	}
	r.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Clone returns an independent copy of the registry.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Registry{kind: make(map[Name]Kind, len(r.kind))}
	for a, k := range r.kind {
		c.kind[a] = k
	}
	return c
}
