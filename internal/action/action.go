// Package action models the action vocabulary of the x-ability theory
// (Frølund & Guerraoui, PODC 2000, §2.1 and §3.1).
//
// An action is a named operation exported by a state machine. Actions take
// an input Value and produce an output Value; they may mutate state local to
// the machine and they may have side effects on external, third-party
// entities. The theory distinguishes two fault-tolerance classes:
//
//   - Idempotent actions: n executions have the same side effect as one.
//   - Undoable actions: like a transaction, an execution can be cancelled
//     (rolled back) by the derived cancellation action a⁻¹ up until the
//     derived commit action aᶜ makes it permanent.
//
// Cancellation and commit actions are themselves idempotent, take the same
// input as the action they derive from, and return the distinguished value
// Nil (§3.1).
package action

import (
	"fmt"
	"strconv"
	"strings"
)

// Name identifies an action. Derived cancel/commit actions use a reserved
// "!" suffix on the base name; user-defined action names must not contain
// the '!' character (enforced by Validate).
type Name string

// Value is an element of the paper's Value set: the inputs and outputs of
// actions. Values are opaque strings with decidable equality, which is all
// the pattern-matching relation ⊨ and the reduction relation ⇒ require.
// Structured inputs are encoded with EncodeTuple / DecodeTuple.
type Value string

// Nil is the distinguished return value of cancellation and commit actions
// (the paper's "nil"). It is deliberately not the empty string so that an
// action legitimately returning "" is distinguishable from nil.
const Nil Value = "\x00nil"

// Kind classifies an action per §3.1.
type Kind int

const (
	// KindIdempotent marks an action whose repeated execution has the same
	// side effect as a single execution (members of the paper's Idempotent
	// set, written aⁱ).
	KindIdempotent Kind = iota
	// KindUndoable marks an action that can be rolled back until committed
	// (members of the paper's Undoable set, written aᵘ).
	KindUndoable
	// KindCancel marks a derived cancellation action a⁻¹ of an undoable
	// action. Cancel actions are idempotent.
	KindCancel
	// KindCommit marks a derived commit action aᶜ of an undoable action.
	// Commit actions are idempotent.
	KindCommit
)

// String returns the paper notation for the kind.
func (k Kind) String() string {
	switch k {
	case KindIdempotent:
		return "idempotent"
	case KindUndoable:
		return "undoable"
	case KindCancel:
		return "cancel"
	case KindCommit:
		return "commit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

const (
	cancelSuffix = "!cancel"
	commitSuffix = "!commit"
)

// Cancel returns the name of the cancellation action a⁻¹ for the undoable
// action a (the paper's cancel primitive, §5.4).
func Cancel(a Name) Name { return a + cancelSuffix }

// Commit returns the name of the commit action aᶜ for the undoable action a
// (the paper's commit primitive, §5.4).
func Commit(a Name) Name { return a + commitSuffix }

// Base returns the undoable action a derived-from name refers to, together
// with the kind of the name. For a plain (non-derived) name it returns the
// name itself and KindIdempotent; classification of plain names between
// idempotent and undoable is the registry's job (see Registry.Kind).
func Base(a Name) (Name, Kind) {
	s := string(a)
	switch {
	case strings.HasSuffix(s, cancelSuffix):
		return Name(strings.TrimSuffix(s, cancelSuffix)), KindCancel
	case strings.HasSuffix(s, commitSuffix):
		return Name(strings.TrimSuffix(s, commitSuffix)), KindCommit
	default:
		return a, KindIdempotent
	}
}

// IsDerived reports whether a is a cancel or commit action name.
func IsDerived(a Name) bool {
	_, k := Base(a)
	return k == KindCancel || k == KindCommit
}

// Validate reports whether a is a legal user-defined action name: non-empty
// and free of the reserved '!' character.
func Validate(a Name) error {
	if a == "" {
		return fmt.Errorf("action: empty name")
	}
	if strings.ContainsRune(string(a), '!') {
		return fmt.Errorf("action: name %q contains reserved character '!'", a)
	}
	return nil
}

// Request is the paper's Request ⊆ Action × Value (eq. 1) extended with the
// round number that §5.4 folds into an action's parameters ("a cancellation
// action issued for round number n cannot cancel the action of round number
// n+1") and with a request identifier that scopes rounds to one submitted
// request, so that two requests invoking the same action on the same input
// cannot confuse each other's rounds. Round 0 / empty ID mean "untagged",
// used for histories outside the protocol.
type Request struct {
	Action Name
	Input  Value
	ID     string
	Round  int
}

// NewRequest builds an untagged request.
func NewRequest(a Name, iv Value) Request { return Request{Action: a, Input: iv} }

// WithRound returns a copy of r with the round number set.
func (r Request) WithRound(round int) Request {
	r.Round = round
	return r
}

// WithID returns a copy of r with the request identifier set.
func (r Request) WithID(id string) Request {
	r.ID = id
	return r
}

// Cancel returns the request that invokes the cancellation action of r,
// carrying the same input, ID, and round (the paper's cancel(r)).
func (r Request) Cancel() Request {
	return Request{Action: Cancel(r.Action), Input: r.Input, ID: r.ID, Round: r.Round}
}

// Commit returns the request that invokes the commit action of r, carrying
// the same input, ID, and round (the paper's commit(r)).
func (r Request) Commit() Request {
	return Request{Action: Commit(r.Action), Input: r.Input, ID: r.ID, Round: r.Round}
}

// EffectiveInput is the input value as it appears in events: the request ID
// and round number, when set, are folded into the value so that event
// identity — and therefore pattern matching and reduction — distinguishes
// rounds of distinct requests. The encoding is built in one sized append
// chain (equivalent to EncodeTuple(input, "x:"+ID+":"+round)): it runs once
// per execution attempt, which makes it a protocol hot path.
func (r Request) EffectiveInput() Value {
	if r.Round == 0 && r.ID == "" {
		return r.Input
	}
	b := make([]byte, 0, len(r.Input)+len(r.ID)+8)
	b = append(b, r.Input...)
	b = append(b, tupleSep...)
	b = append(b, "x:"...)
	b = append(b, r.ID...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(r.Round), 10)
	return Value(b)
}

// String renders the request in paper notation, e.g. "(debit, acct=7@r2)".
func (r Request) String() string {
	if r.Round == 0 && r.ID == "" {
		return fmt.Sprintf("(%s, %s)", r.Action, Display(r.Input))
	}
	return fmt.Sprintf("(%s, %s@%s/r%d)", r.Action, Display(r.Input), r.ID, r.Round)
}

// Result is the paper's Result ⊆ Value (eq. 2): the values a service
// returns to its client.
type Result = Value

// Display renders a Value for humans, making Nil legible.
func Display(v Value) string {
	if v == Nil {
		return "nil"
	}
	return string(v)
}

// SplitTag decomposes an effective input value produced by
// Request.EffectiveInput back into the raw input, request ID, and round.
// An untagged value decodes to (v, "", 0). The parse is allocation-free
// (substrings share the input's storage): the checker calls it per event.
func SplitTag(v Value) (base Value, id string, round int) {
	s := string(v)
	i := strings.IndexByte(s, tupleSep[0])
	if i < 0 {
		return v, "", 0
	}
	tag := s[i+1:]
	// The tag must be exactly "x:<id>:<round>" with no further tuple
	// field and no ':' inside the ID (the shape EffectiveInput emits).
	if strings.IndexByte(tag, tupleSep[0]) >= 0 || !strings.HasPrefix(tag, "x:") {
		return v, "", 0
	}
	rest := tag[2:]
	j := strings.IndexByte(rest, ':')
	if j < 0 || strings.IndexByte(rest[j+1:], ':') >= 0 {
		return v, "", 0
	}
	n, err := strconv.Atoi(rest[j+1:])
	if err != nil {
		return v, "", 0
	}
	return Value(s[:i]), rest[:j], n
}

const tupleSep = "\x1f" // ASCII unit separator: cannot occur in normal text.

// EncodeTuple packs fields into a single Value with decidable equality.
func EncodeTuple(fields ...string) Value {
	return Value(strings.Join(fields, tupleSep))
}

// DecodeTuple unpacks a Value packed by EncodeTuple. A value that was never
// packed decodes to a single field containing the whole value.
func DecodeTuple(v Value) []string {
	return strings.Split(string(v), tupleSep)
}
