#include "textflag.h"

// func gid() uintptr
//
// On amd64 the runtime keeps the current g in thread-local storage; the
// assembler's TLS pseudo-address resolves to it (see the Go asm manual,
// "runtime coordination").
TEXT ·gid(SB), NOSPLIT, $0-8
	MOVQ (TLS), AX
	MOVQ AX, ret+0(FP)
	RET
