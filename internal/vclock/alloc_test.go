package vclock

import (
	"sync"
	"testing"
	"time"
)

// Alloc-budget guards: the virtual clock's primitives are the innermost
// loop of every simulated run, and PR 5's pooling (vevents, waiters with
// reusable wake channels, ledger entries) made their steady state
// allocation-free. These tests fail loudly if that erodes. Budgets are
// averages over warmed-up pools; they hold under -race too (the race
// runtime does not add per-op mallocs on these paths).

// TestSleepAllocBudget pins Sleep at zero steady-state allocations: the
// waiter, its wake channel, the heap event, and the ledger entry are all
// pooled.
func TestSleepAllocBudget(t *testing.T) {
	v := NewVirtual()
	for i := 0; i < 100; i++ {
		v.Sleep(time.Microsecond) // warm the pools
	}
	avg := testing.AllocsPerRun(500, func() { v.Sleep(time.Microsecond) })
	if avg > 0.1 {
		t.Fatalf("Sleep allocates %.2f objects/op in steady state, budget 0", avg)
	}
}

// TestGoAfterAllocBudget pins the scheduled-spawn path: the event comes
// from the pool, so the only remaining allocation is the goroutine spawn
// itself.
func TestGoAfterAllocBudget(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{}, 1)
	fn := func() { done <- struct{}{} }
	run := func() {
		v.GoAfter(time.Microsecond, fn)
		<-done
	}
	for i := 0; i < 100; i++ {
		run()
	}
	avg := testing.AllocsPerRun(500, run)
	if avg > 1.5 {
		t.Fatalf("GoAfter+run allocates %.2f objects/op in steady state, budget 1.5 (one goroutine spawn)", avg)
	}
}

// TestCondWaitAllocBudget pins the cond broadcast/wait cycle — the shape
// every endpoint receive and consensus phase wait takes.
func TestCondWaitAllocBudget(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	c := v.NewCond(&mu)
	wake := func() { c.Broadcast() }
	run := func() {
		v.GoAfter(0, wake)
		v.Enter()
		mu.Lock()
		c.Wait()
		mu.Unlock()
		v.Exit()
	}
	for i := 0; i < 100; i++ {
		run()
	}
	avg := testing.AllocsPerRun(500, run)
	if avg > 1.5 {
		t.Fatalf("cond wait cycle allocates %.2f objects/op in steady state, budget 1.5", avg)
	}
}
