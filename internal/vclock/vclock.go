package vclock

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock abstracts time for the simulation. Two implementations exist:
//
//   - Virtual (the default): a discrete-event scheduler. Time is a counter
//     that jumps to the next scheduled deadline whenever every attached
//     goroutine is blocked in a clock primitive. Sleeping costs no wall
//     time; a run is limited by CPU, not by the durations it simulates.
//   - Real: delegates to package time. Durations mean wall-clock time.
//
// The virtual clock tracks a set of *attached* goroutines — those whose
// runnability it may rely on. Attachment is reference-counted per goroutine,
// so nested Enter/Exit pairs and re-entrant public APIs compose. The clock
// advances only when the number of attached, runnable goroutines reaches
// zero; it then fires exactly one pending event (ordered by deadline, then
// by scheduling sequence), wakes its owner, and waits for quiescence again.
// Event execution is therefore serialized, which is what makes runs with
// equal seeds reproduce equal schedules.
type Clock interface {
	// Now returns the time elapsed since the clock started.
	Now() time.Duration
	// Sleep blocks for d. It attaches the calling goroutine for the
	// duration of the call, so it is safe from any goroutine.
	Sleep(d time.Duration)
	// Go runs fn on a new goroutine attached to the clock. The goroutine
	// counts as runnable from before Go returns until fn returns, except
	// while it is blocked in a clock primitive.
	Go(fn func())
	// GoAfter schedules fn to run on a new attached goroutine after d.
	// The event's position in the schedule is fixed at call time.
	GoAfter(d time.Duration, fn func())
	// Enter attaches the calling goroutine (reference-counted); Exit
	// undoes one Enter. Public blocking APIs built on the clock wrap
	// themselves in Enter/Exit so that any caller composes correctly.
	Enter()
	Exit()
	// Detached runs fn with the calling goroutine's attachment (if any)
	// released: use it around waits on synchronization that the clock
	// does not manage, so virtual time can advance meanwhile.
	Detached(fn func())
	// Drain blocks until no events remain scheduled at the current
	// instant: broadcast wakes already pushed have been delivered and
	// their owners have run to their next blocking point. Settle-style
	// barriers ("everything that was going to happen now has happened")
	// call it after their own condition holds. The caller must be
	// attached; the Real clock, whose wakes are immediate, treats it as
	// a no-op.
	Drain()
	// NewCond returns a condition variable integrated with the clock:
	// waiting releases the caller's runnability so virtual time can
	// advance, and timed waits use clock time.
	NewCond(l sync.Locker) Cond
	// Stop audits the clock at teardown: it reports goroutines still
	// attached (count plus creation sites), excluding the caller. A clean
	// shutdown reports zero — anything else is an attachment leak, the
	// runtime counterpart of xvet's baregoroutine rule, surfaced as a
	// loud test failure instead of a hang. Stop is purely diagnostic and
	// idempotent; the Real clock, which tracks no attachments, always
	// reports zero.
	Stop() LeakReport
}

// LeakReport is Stop's audit result: how many goroutines were still
// attached to the clock, and where they were created.
type LeakReport struct {
	// Leaked counts attached goroutines other than the caller.
	Leaked int
	// Sites are the distinct creation sites ("file:line (func)", with a
	// ×N multiplicity suffix), sorted for deterministic assertions.
	Sites []string
}

func (r LeakReport) String() string {
	if r.Leaked == 0 {
		return "vclock: no leaked goroutines"
	}
	return fmt.Sprintf("vclock: %d leaked goroutine(s) still attached; created at %s",
		r.Leaked, strings.Join(r.Sites, "; "))
}

// Cond is a sync.Cond-shaped condition variable whose waits the clock
// understands. Wait and WaitTimeout must be called with l held, as with
// sync.Cond; both are restricted to goroutines attached to the clock.
type Cond interface {
	// Wait releases l, blocks until Broadcast, and re-acquires l.
	Wait()
	// WaitTimeout is Wait with a deadline d from now. It reports whether
	// the caller was woken by Broadcast (false: the timeout elapsed).
	WaitTimeout(d time.Duration) bool
	// Broadcast wakes all current waiters. The caller may hold l or not.
	Broadcast()
}

// Runner is a pre-allocated schedulable callback: GoAfterRunner spawns
// Run on an attached goroutine exactly like GoAfter spawns fn, but the
// caller supplies a reusable object instead of a fresh closure. Hot paths
// that schedule one event per message (the network's delivery plane) pool
// their Runners so the per-event heap footprint is zero.
type Runner interface{ Run() }

// Stagger derives a deterministic phase offset in [0, span) from a name.
// Symmetric periodic loops (heartbeat senders, server cleaners) offset
// their first deadline by it so equal-period peers never share a virtual
// deadline — the deterministic schedule then never has to tie-break
// between them.
func Stagger(name string, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return time.Duration(h.Sum32()) % span
}

// vevent is one pending entry in the virtual schedule: a waiter to wake
// (w), a callback to spawn (fn), or a pooled Runner to spawn (r). Events
// are pooled on the owning clock (evfree): pushLocked recycles them and
// pumpLocked returns them the moment they are popped, so steady-state
// scheduling allocates nothing.
type vevent struct {
	at   time.Duration
	seq  uint64
	w    *waiter
	wgen uint32 // waiter generation at arming time (see waiter.gen)
	bw   bool   // broadcast wake: w was fired by Broadcast, not a timer
	fn   func()
	r    Runner
	pc   uintptr // creation site of fn's spawner, for Stop's leak audit
}

// waiter is one blocked goroutine (or timed cond wait). Waiters are pooled
// on the clock and their wake channel (capacity 1) is reused across arms:
// a waiter fires at most once per arming (fired guards the broadcast/timer
// double wake), so the send can never block. gen increments on every
// release; a timer event left in the heap by a broadcast-woken waiter
// carries the old generation and is recognized as stale when popped.
type waiter struct {
	ch       chan struct{}
	gen      uint32
	fired    bool
	timedOut bool
	cond     *vcond // set for cond waiters, for list cleanup on timeout
}

// gent is one ledger entry: a goroutine's attachment depth plus the
// program counter of whatever created the attachment, so Stop can name the
// origin of a leak. site is zero for pooled-Runner spawns (GoAfterRunner
// is the per-message hot path; a runtime.Caller there would tax every
// delivery).
type gent struct {
	depth int
	site  uintptr
}

// Virtual is the discrete-event clock. Create with NewVirtual.
type Virtual struct {
	mu     sync.Mutex
	now    time.Duration
	seq    uint64
	busy   int // attached goroutines not blocked in a clock primitive
	pq     []*vevent
	ledger map[uint64]*gent // goroutine identity → attachment depth

	// Free lists. All are guarded by mu; entries are fully reset before
	// reuse.
	evfree []*vevent
	wfree  []*waiter
	gfree  []*gent
}

// NewVirtual returns a virtual clock at time zero.
func NewVirtual() *Virtual {
	return &Virtual{ledger: make(map[uint64]*gent)}
}

// Now implements Clock.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// --- event heap (hand-rolled: container/heap's interface indirection and
// boxing showed up in sweep profiles). Ordered by (at, seq). ---

func (v *Virtual) heapPush(ev *vevent) {
	v.pq = append(v.pq, ev)
	pq := v.pq
	i := len(pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(pq[i], pq[p]) {
			break
		}
		pq[i], pq[p] = pq[p], pq[i]
		i = p
	}
}

func (v *Virtual) heapPop() *vevent {
	pq := v.pq
	n := len(pq) - 1
	top := pq[0]
	pq[0] = pq[n]
	pq[n] = nil
	v.pq = pq[:n]
	pq = v.pq
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		m := l
		if r < n && eventLess(pq[r], pq[l]) {
			m = r
		}
		if !eventLess(pq[m], pq[i]) {
			break
		}
		pq[i], pq[m] = pq[m], pq[i]
		i = m
	}
	return top
}

func eventLess(a, b *vevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (v *Virtual) pushLocked(at time.Duration, w *waiter, fn func(), r Runner, pc uintptr) {
	v.seq++
	var ev *vevent
	if n := len(v.evfree); n > 0 {
		ev = v.evfree[n-1]
		v.evfree[n-1] = nil
		v.evfree = v.evfree[:n-1]
	} else {
		ev = new(vevent)
	}
	ev.at, ev.seq, ev.w, ev.fn, ev.r, ev.pc = at, v.seq, w, fn, r, pc
	ev.bw = false
	if w != nil {
		ev.wgen = w.gen
	}
	v.heapPush(ev)
}

// pushBroadcastLocked schedules a broadcast wake for w at the current
// instant. Broadcast pushes one per waiter, in arming order, instead of
// making every waiter runnable at once: the pump then delivers the wakes
// one at a time, so sibling goroutines woken by one broadcast run in a
// deterministic order rather than racing under the OS scheduler (whose
// interleaving varies with worker count). Events come from the same pool
// as timers, so a broadcast allocates nothing in steady state.
func (v *Virtual) pushBroadcastLocked(w *waiter) {
	v.seq++
	var ev *vevent
	if n := len(v.evfree); n > 0 {
		ev = v.evfree[n-1]
		v.evfree[n-1] = nil
		v.evfree = v.evfree[:n-1]
	} else {
		ev = new(vevent)
	}
	ev.at, ev.seq, ev.w, ev.fn, ev.r, ev.pc = v.now, v.seq, w, nil, nil, 0
	ev.wgen = w.gen
	ev.bw = true
	v.heapPush(ev)
}

// newWaiterLocked hands out a pooled waiter, armed (gen fixed) and clean.
func (v *Virtual) newWaiterLocked() *waiter {
	if n := len(v.wfree); n > 0 {
		w := v.wfree[n-1]
		v.wfree[n-1] = nil
		v.wfree = v.wfree[:n-1]
		return w
	}
	return &waiter{ch: make(chan struct{}, 1)}
}

// releaseWaiterLocked returns a consumed waiter to the pool. Bumping gen
// invalidates any timer event still in the heap that references it.
func (v *Virtual) releaseWaiterLocked(w *waiter) {
	w.gen++
	w.fired = false
	w.timedOut = false
	w.cond = nil
	v.wfree = append(v.wfree, w)
}

// addBusyLocked adjusts the runnable count; on quiescence it advances time.
func (v *Virtual) addBusyLocked(d int) {
	v.busy += d
	if v.busy < 0 {
		panic("vclock: blocking call from a goroutine not attached to the clock (missing Enter or Go)")
	}
	if v.busy == 0 {
		v.pumpLocked()
	}
}

// pumpLocked fires the next pending event: it advances now to the event's
// deadline, marks its owner runnable, and wakes it. Exactly one runnable
// goroutine results, so event execution is serialized and deterministic.
// Popped events return to the pool immediately — nothing references a
// vevent once it leaves the heap — keeping the critical section short and
// the heap churn-free.
func (v *Virtual) pumpLocked() {
	for v.busy == 0 && len(v.pq) > 0 {
		ev := v.heapPop()
		at, w, wgen, bw, fn, r, pc := ev.at, ev.w, ev.wgen, ev.bw, ev.fn, ev.r, ev.pc
		ev.w, ev.fn, ev.r, ev.pc, ev.bw = nil, nil, nil, 0, false
		v.evfree = append(v.evfree, ev)
		if w != nil && w.gen != wgen {
			continue // the waiter was recycled; the event is stale
		}
		if w != nil && !bw && w.fired {
			continue // timer for a waiter already woken by a broadcast
		}
		if at > v.now {
			v.now = at
		}
		v.busy++
		if fn != nil {
			go v.runAdopted(fn, pc) //xvet:ok baregoroutine the clock's own spawn: the runnability unit was added above and the goroutine adopts into the ledger
			return
		}
		if r != nil {
			go v.runAdoptedRunner(r) //xvet:ok baregoroutine pooled-Runner spawn, adopted into the ledger like runAdopted
			return
		}
		if !bw {
			// Timer expiry: mark and detach from the cond's list. Broadcast
			// wakes (bw) did both at broadcast time; timedOut stays false.
			w.fired = true
			w.timedOut = true
			if w.cond != nil {
				w.cond.removeLocked(w)
			}
		}
		w.ch <- struct{}{}
		return
	}
}

// adopt registers the calling (fresh) goroutine in the ledger; the
// runnability unit was already added by the spawner. site names the
// spawner's call site for Stop's leak audit (zero when untracked).
func (v *Virtual) adopt(site uintptr) uint64 {
	id := gid()
	v.mu.Lock()
	v.ledger[id] = v.newGentLocked(1, site)
	v.mu.Unlock()
	return id
}

func (v *Virtual) disown(id uint64) {
	v.mu.Lock()
	g := v.ledger[id]
	g.depth--
	if g.depth == 0 {
		delete(v.ledger, id)
		v.gfree = append(v.gfree, g)
		v.addBusyLocked(-1)
	}
	v.mu.Unlock()
}

func (v *Virtual) newGentLocked(depth int, site uintptr) *gent {
	if n := len(v.gfree); n > 0 {
		g := v.gfree[n-1]
		v.gfree[n-1] = nil
		v.gfree = v.gfree[:n-1]
		g.depth = depth
		g.site = site
		return g
	}
	return &gent{depth: depth, site: site}
}

// runAdopted runs fn on the calling (fresh) goroutine with a ledger entry.
func (v *Virtual) runAdopted(fn func(), site uintptr) {
	id := v.adopt(site)
	defer v.disown(id)
	fn()
}

func (v *Virtual) runAdoptedRunner(r Runner) {
	id := v.adopt(0) // pooled hot path: no site capture (see gent)
	defer v.disown(id)
	r.Run()
}

// Enter implements Clock.
func (v *Virtual) Enter() {
	id := gid()
	v.mu.Lock()
	g := v.ledger[id]
	if g == nil {
		// First attach of an external goroutine: record where. The
		// capture is creation-only so re-entrant Enters (every Sleep,
		// every cond wait) stay alloc- and caller-walk-free.
		g = v.newGentLocked(0, callerPC())
		v.ledger[id] = g
	}
	g.depth++
	if g.depth == 1 {
		v.busy++
	}
	v.mu.Unlock()
}

// Exit implements Clock.
func (v *Virtual) Exit() {
	id := gid()
	v.mu.Lock()
	g := v.ledger[id]
	if g == nil || g.depth == 0 {
		v.mu.Unlock()
		panic("vclock: Exit without matching Enter")
	}
	g.depth--
	if g.depth == 0 {
		delete(v.ledger, id)
		v.gfree = append(v.gfree, g)
		v.addBusyLocked(-1)
	}
	v.mu.Unlock()
}

// Detached implements Clock.
func (v *Virtual) Detached(fn func()) {
	id := gid()
	v.mu.Lock()
	g := v.ledger[id]
	attached := g != nil && g.depth > 0
	if attached {
		v.addBusyLocked(-1)
	}
	v.mu.Unlock()
	defer func() {
		if attached {
			v.mu.Lock()
			v.busy++
			v.mu.Unlock()
		}
	}()
	fn()
}

// Sleep implements Clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.Enter()
	v.mu.Lock()
	w := v.newWaiterLocked()
	v.pushLocked(v.now+d, w, nil, nil, 0)
	v.addBusyLocked(-1)
	v.mu.Unlock()
	<-w.ch //xvet:ok detachedwait the clock's own sleep: runnability was released above and the wake is a scheduled event
	v.mu.Lock()
	v.releaseWaiterLocked(w)
	v.mu.Unlock()
	v.Exit()
}

// Go implements Clock. The runnability unit is added before Go returns, so
// the schedule cannot advance past the spawn.
func (v *Virtual) Go(fn func()) {
	pc := callerPC()
	v.mu.Lock()
	v.busy++
	v.mu.Unlock()
	go v.runAdopted(fn, pc) //xvet:ok baregoroutine this IS vclock.Go: the spawn is counted busy above and adopted into the ledger
}

// GoAfter implements Clock.
func (v *Virtual) GoAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	pc := callerPC()
	v.mu.Lock()
	v.pushLocked(v.now+d, nil, fn, nil, pc)
	if v.busy == 0 {
		v.pumpLocked()
	}
	v.mu.Unlock()
}

// GoAfterRunner is GoAfter for a pooled Runner: no closure is allocated and
// the event object comes from the clock's pool, so scheduling is free of
// per-call heap traffic. The Runner must not be reused until Run has been
// entered.
func (v *Virtual) GoAfterRunner(d time.Duration, r Runner) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.pushLocked(v.now+d, nil, nil, r, 0)
	if v.busy == 0 {
		v.pumpLocked()
	}
	v.mu.Unlock()
}

// callerPC returns the program counter two frames up: the caller of the
// exported clock API that invoked it. Stop resolves it to file:line when
// reporting attachment leaks. runtime.Callers into a stack array (rather
// than runtime.Caller, which materializes the file string) keeps the
// capture allocation-free — the alloc budgets on Go/GoAfter gate this.
func callerPC() uintptr {
	var pcs [1]uintptr
	if runtime.Callers(3, pcs[:]) == 0 {
		return 0
	}
	return pcs[0]
}

// Stop implements Clock: the teardown audit of still-attached goroutines.
func (v *Virtual) Stop() LeakReport {
	self := gid()
	v.mu.Lock()
	leaked := 0
	counts := make(map[uintptr]int)
	for id, g := range v.ledger {
		if id == self {
			continue // the caller's own attachment is not a leak
		}
		leaked++
		counts[g.site]++
	}
	v.mu.Unlock()
	sites := make([]string, 0, len(counts))
	for pc, c := range counts {
		s := siteLabel(pc)
		if c > 1 {
			s = fmt.Sprintf("%s ×%d", s, c)
		}
		sites = append(sites, s)
	}
	sort.Strings(sites)
	return LeakReport{Leaked: leaked, Sites: sites}
}

// siteLabel renders a creation-site pc as "file:line (func)", keeping the
// last two path elements of the file for readable test output.
func siteLabel(pc uintptr) string {
	if pc == 0 {
		return "untracked site (pooled runner)"
	}
	fn := runtime.FuncForPC(pc)
	if fn == nil {
		return "unknown site"
	}
	file, line := fn.FileLine(pc)
	if i := strings.LastIndex(file, "/"); i >= 0 {
		if j := strings.LastIndex(file[:i], "/"); j >= 0 {
			file = file[j+1:]
		}
	}
	return fmt.Sprintf("%s:%d (%s)", file, line, fn.Name())
}

// Drain implements Clock. Each round sleeps zero duration — the timer
// lands behind every event already scheduled at the current instant, so
// by the time the caller wakes, those events have fired and their owners
// have run until they blocked again. Rounds repeat until a scan finds
// nothing left at ≤ now (events those owners pushed at the same instant
// drain in the next round); stale timers left by broadcasts are popped
// and discarded along the way.
func (v *Virtual) Drain() {
	for {
		v.mu.Lock()
		pending := false
		for _, ev := range v.pq {
			if ev.at <= v.now {
				pending = true
				break
			}
		}
		v.mu.Unlock()
		if !pending {
			return
		}
		v.Sleep(0)
	}
}

// Quiesced reports whether the clock has fully wound down: no attached
// goroutines, none runnable, and no pending events. A deployment that has
// been stopped reaches this state once its goroutines observe the stop and
// unwind (pending timers fire and their owners exit); Network.Reset waits
// on it before recycling a network for the next seed of a sweep.
func (v *Virtual) Quiesced() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.busy == 0 && len(v.pq) == 0 && len(v.ledger) == 0
}

// NewCond implements Clock.
func (v *Virtual) NewCond(l sync.Locker) Cond {
	return &vcond{v: v, l: l}
}

// vcond is the virtual-clock condition variable. The waiter list is guarded
// by the clock mutex, which is always acquired after the user lock l —
// never the reverse — so the pair cannot deadlock.
type vcond struct {
	v       *Virtual
	l       sync.Locker
	waiters []*waiter
}

func (c *vcond) Wait() { c.wait(-1) }

func (c *vcond) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return c.wait(d)
}

func (c *vcond) wait(d time.Duration) bool {
	v := c.v
	v.mu.Lock()
	w := v.newWaiterLocked()
	w.cond = c
	c.waiters = append(c.waiters, w)
	if d >= 0 {
		v.pushLocked(v.now+d, w, nil, nil, 0)
	}
	v.addBusyLocked(-1)
	v.mu.Unlock()
	c.l.Unlock()
	<-w.ch //xvet:ok detachedwait the clock's own cond wait: runnability was released above; the wake is a broadcast or scheduled timeout
	// The wake (fired=true) happens before the channel send, so reading
	// timedOut here is ordered; after the read nothing references w and it
	// can be recycled. A timer event for a broadcast-woken w may still sit
	// in the heap — the generation bump in release marks it stale.
	timedOut := w.timedOut
	v.mu.Lock()
	v.releaseWaiterLocked(w)
	v.mu.Unlock()
	c.l.Lock()
	return !timedOut
}

// Broadcast wakes all current waiters — as scheduled events at the current
// instant, one per waiter in arming order, not all at once. Marking fired
// here (rather than at delivery) keeps the at-most-one-wake-per-arming
// invariant: a pending timer for a broadcast waiter is recognized as dead
// the moment it pops. The wakes drain through the pump, so the waiters run
// serialized in arm order; a broadcast can never make two goroutines
// simultaneously runnable.
func (c *vcond) Broadcast() {
	v := c.v
	v.mu.Lock()
	for _, w := range c.waiters {
		if !w.fired {
			w.fired = true
			v.pushBroadcastLocked(w)
		}
	}
	c.waiters = c.waiters[:0]
	if v.busy == 0 {
		v.pumpLocked()
	}
	v.mu.Unlock()
}

// removeLocked drops a timed-out waiter from the list; callers hold v.mu.
func (c *vcond) removeLocked(w *waiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Real is the wall-clock implementation. Create with NewReal.
type Real struct {
	epoch time.Time
}

// NewReal returns a clock backed by package time.
func NewReal() *Real { return &Real{epoch: time.Now()} } //xvet:ok walltime the Real clock IS the wall-time boundary: durations mean wall time here by contract

// Now implements Clock.
func (r *Real) Now() time.Duration { return time.Since(r.epoch) } //xvet:ok walltime the Real clock delegates to package time by contract

// Sleep implements Clock.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d) //xvet:ok walltime the Real clock delegates to package time by contract
	}
}

// Go implements Clock.
func (r *Real) Go(fn func()) { go fn() } //xvet:ok baregoroutine the Real clock tracks no attachments; its Go is a plain spawn by contract

// GoAfter implements Clock.
func (r *Real) GoAfter(d time.Duration, fn func()) {
	go func() { //xvet:ok baregoroutine the Real clock tracks no attachments; its GoAfter is a plain spawn by contract
		if d > 0 {
			time.Sleep(d) //xvet:ok walltime the Real clock delegates to package time by contract
		}
		fn()
	}()
}

// Stop implements Clock. The Real clock tracks no attachments, so there is
// nothing to leak.
func (r *Real) Stop() LeakReport { return LeakReport{} }

// Drain implements Clock (no-op: real-time wakes are immediate, there is
// no pending-event heap to let pass).
func (r *Real) Drain() {}

// Enter implements Clock (no-op: real time advances on its own).
func (r *Real) Enter() {}

// Exit implements Clock.
func (r *Real) Exit() {}

// Detached implements Clock.
func (r *Real) Detached(fn func()) { fn() }

// NewCond implements Clock.
func (r *Real) NewCond(l sync.Locker) Cond {
	return &rcond{l: l, ch: make(chan struct{})}
}

// rcond implements Cond over real time with the closed-channel broadcast
// idiom (sync.Cond has no timed wait).
type rcond struct {
	l  sync.Locker
	mu sync.Mutex
	ch chan struct{}
}

func (c *rcond) current() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch
}

func (c *rcond) Wait() {
	ch := c.current()
	c.l.Unlock()
	<-ch //xvet:ok detachedwait the Real clock's cond wait: real time advances on its own, nothing to detach from
	c.l.Lock()
}

func (c *rcond) WaitTimeout(d time.Duration) bool {
	ch := c.current()
	c.l.Unlock()
	defer c.l.Lock()
	t := time.NewTimer(d) //xvet:ok walltime the Real clock's timed cond wait delegates to package time by contract
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

func (c *rcond) Broadcast() {
	c.mu.Lock()
	close(c.ch)
	c.ch = make(chan struct{})
	c.mu.Unlock()
}
