package vclock

import (
	"container/heap"
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Clock abstracts time for the simulation. Two implementations exist:
//
//   - Virtual (the default): a discrete-event scheduler. Time is a counter
//     that jumps to the next scheduled deadline whenever every attached
//     goroutine is blocked in a clock primitive. Sleeping costs no wall
//     time; a run is limited by CPU, not by the durations it simulates.
//   - Real: delegates to package time. Durations mean wall-clock time.
//
// The virtual clock tracks a set of *attached* goroutines — those whose
// runnability it may rely on. Attachment is reference-counted per goroutine,
// so nested Enter/Exit pairs and re-entrant public APIs compose. The clock
// advances only when the number of attached, runnable goroutines reaches
// zero; it then fires exactly one pending event (ordered by deadline, then
// by scheduling sequence), wakes its owner, and waits for quiescence again.
// Event execution is therefore serialized, which is what makes runs with
// equal seeds reproduce equal schedules.
type Clock interface {
	// Now returns the time elapsed since the clock started.
	Now() time.Duration
	// Sleep blocks for d. It attaches the calling goroutine for the
	// duration of the call, so it is safe from any goroutine.
	Sleep(d time.Duration)
	// Go runs fn on a new goroutine attached to the clock. The goroutine
	// counts as runnable from before Go returns until fn returns, except
	// while it is blocked in a clock primitive.
	Go(fn func())
	// GoAfter schedules fn to run on a new attached goroutine after d.
	// The event's position in the schedule is fixed at call time.
	GoAfter(d time.Duration, fn func())
	// Enter attaches the calling goroutine (reference-counted); Exit
	// undoes one Enter. Public blocking APIs built on the clock wrap
	// themselves in Enter/Exit so that any caller composes correctly.
	Enter()
	Exit()
	// Detached runs fn with the calling goroutine's attachment (if any)
	// released: use it around waits on synchronization that the clock
	// does not manage, so virtual time can advance meanwhile.
	Detached(fn func())
	// NewCond returns a condition variable integrated with the clock:
	// waiting releases the caller's runnability so virtual time can
	// advance, and timed waits use clock time.
	NewCond(l sync.Locker) Cond
}

// Cond is a sync.Cond-shaped condition variable whose waits the clock
// understands. Wait and WaitTimeout must be called with l held, as with
// sync.Cond; both are restricted to goroutines attached to the clock.
type Cond interface {
	// Wait releases l, blocks until Broadcast, and re-acquires l.
	Wait()
	// WaitTimeout is Wait with a deadline d from now. It reports whether
	// the caller was woken by Broadcast (false: the timeout elapsed).
	WaitTimeout(d time.Duration) bool
	// Broadcast wakes all current waiters. The caller may hold l or not.
	Broadcast()
}

// Stagger derives a deterministic phase offset in [0, span) from a name.
// Symmetric periodic loops (heartbeat senders, server cleaners) offset
// their first deadline by it so equal-period peers never share a virtual
// deadline — the deterministic schedule then never has to tie-break
// between them.
func Stagger(name string, span time.Duration) time.Duration {
	if span <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return time.Duration(h.Sum32()) % span
}

// goid returns the current goroutine's ID, parsed from the runtime stack
// header ("goroutine N [running]:"). The Go runtime never reuses IDs.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// vevent is one pending entry in the virtual schedule: either a waiter to
// wake (w) or a callback to spawn (fn).
type vevent struct {
	at  time.Duration
	seq uint64
	w   *waiter
	fn  func()
}

type eventHeap []*vevent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*vevent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return x }

// waiter is one blocked goroutine (or timed cond wait). fired guards
// against double wake-up when a waiter has both a broadcast and a timer.
type waiter struct {
	ch       chan struct{}
	fired    bool
	timedOut bool
	cond     *vcond // set for cond waiters, for list cleanup on timeout
}

type gent struct{ depth int }

// Virtual is the discrete-event clock. Create with NewVirtual.
type Virtual struct {
	mu     sync.Mutex
	now    time.Duration
	seq    uint64
	busy   int // attached goroutines not blocked in a clock primitive
	pq     eventHeap
	ledger map[uint64]*gent // goroutine ID → attachment depth
}

// NewVirtual returns a virtual clock at time zero.
func NewVirtual() *Virtual {
	return &Virtual{ledger: make(map[uint64]*gent)}
}

// Now implements Clock.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *Virtual) pushLocked(at time.Duration, w *waiter, fn func()) {
	v.seq++
	heap.Push(&v.pq, &vevent{at: at, seq: v.seq, w: w, fn: fn})
}

// addBusyLocked adjusts the runnable count; on quiescence it advances time.
func (v *Virtual) addBusyLocked(d int) {
	v.busy += d
	if v.busy < 0 {
		panic("vclock: blocking call from a goroutine not attached to the clock (missing Enter or Go)")
	}
	if v.busy == 0 {
		v.pumpLocked()
	}
}

// pumpLocked fires the next pending event: it advances now to the event's
// deadline, marks its owner runnable, and wakes it. Exactly one runnable
// goroutine results, so event execution is serialized and deterministic.
func (v *Virtual) pumpLocked() {
	for v.busy == 0 && len(v.pq) > 0 {
		ev := heap.Pop(&v.pq).(*vevent)
		if ev.w != nil && ev.w.fired {
			continue // already woken by a broadcast
		}
		if ev.at > v.now {
			v.now = ev.at
		}
		v.busy++
		if ev.fn != nil {
			go v.runAdopted(ev.fn)
			return
		}
		ev.w.fired = true
		ev.w.timedOut = true
		if ev.w.cond != nil {
			ev.w.cond.removeLocked(ev.w)
		}
		close(ev.w.ch)
		return
	}
}

// runAdopted runs fn on the calling (fresh) goroutine with a ledger entry;
// the runnability unit was already added by the spawner.
func (v *Virtual) runAdopted(fn func()) {
	id := goid()
	v.mu.Lock()
	v.ledger[id] = &gent{depth: 1}
	v.mu.Unlock()
	defer func() {
		v.mu.Lock()
		g := v.ledger[id]
		g.depth--
		if g.depth == 0 {
			delete(v.ledger, id)
			v.addBusyLocked(-1)
		}
		v.mu.Unlock()
	}()
	fn()
}

// Enter implements Clock.
func (v *Virtual) Enter() {
	id := goid()
	v.mu.Lock()
	g := v.ledger[id]
	if g == nil {
		g = &gent{}
		v.ledger[id] = g
	}
	g.depth++
	if g.depth == 1 {
		v.busy++
	}
	v.mu.Unlock()
}

// Exit implements Clock.
func (v *Virtual) Exit() {
	id := goid()
	v.mu.Lock()
	g := v.ledger[id]
	if g == nil || g.depth == 0 {
		v.mu.Unlock()
		panic("vclock: Exit without matching Enter")
	}
	g.depth--
	if g.depth == 0 {
		delete(v.ledger, id)
		v.addBusyLocked(-1)
	}
	v.mu.Unlock()
}

// Detached implements Clock.
func (v *Virtual) Detached(fn func()) {
	id := goid()
	v.mu.Lock()
	g := v.ledger[id]
	attached := g != nil && g.depth > 0
	if attached {
		v.addBusyLocked(-1)
	}
	v.mu.Unlock()
	defer func() {
		if attached {
			v.mu.Lock()
			v.busy++
			v.mu.Unlock()
		}
	}()
	fn()
}

// Sleep implements Clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.Enter()
	w := &waiter{ch: make(chan struct{})}
	v.mu.Lock()
	v.pushLocked(v.now+d, w, nil)
	v.addBusyLocked(-1)
	v.mu.Unlock()
	<-w.ch
	v.Exit()
}

// Go implements Clock. The runnability unit is added before Go returns, so
// the schedule cannot advance past the spawn.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.busy++
	v.mu.Unlock()
	go v.runAdopted(fn)
}

// GoAfter implements Clock.
func (v *Virtual) GoAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	v.pushLocked(v.now+d, nil, fn)
	if v.busy == 0 {
		v.pumpLocked()
	}
	v.mu.Unlock()
}

// NewCond implements Clock.
func (v *Virtual) NewCond(l sync.Locker) Cond {
	return &vcond{v: v, l: l}
}

// vcond is the virtual-clock condition variable. The waiter list is guarded
// by the clock mutex, which is always acquired after the user lock l —
// never the reverse — so the pair cannot deadlock.
type vcond struct {
	v       *Virtual
	l       sync.Locker
	waiters []*waiter
}

func (c *vcond) Wait() { c.wait(-1) }

func (c *vcond) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	return c.wait(d)
}

func (c *vcond) wait(d time.Duration) bool {
	v := c.v
	w := &waiter{ch: make(chan struct{}), cond: c}
	v.mu.Lock()
	c.waiters = append(c.waiters, w)
	if d >= 0 {
		v.pushLocked(v.now+d, w, nil)
	}
	v.addBusyLocked(-1)
	v.mu.Unlock()
	c.l.Unlock()
	<-w.ch
	c.l.Lock()
	return !w.timedOut
}

func (c *vcond) Broadcast() {
	v := c.v
	v.mu.Lock()
	for _, w := range c.waiters {
		if !w.fired {
			w.fired = true
			v.busy++
			close(w.ch)
		}
	}
	c.waiters = c.waiters[:0]
	v.mu.Unlock()
}

// removeLocked drops a timed-out waiter from the list; callers hold v.mu.
func (c *vcond) removeLocked(w *waiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Real is the wall-clock implementation. Create with NewReal.
type Real struct {
	epoch time.Time
}

// NewReal returns a clock backed by package time.
func NewReal() *Real { return &Real{epoch: time.Now()} }

// Now implements Clock.
func (r *Real) Now() time.Duration { return time.Since(r.epoch) }

// Sleep implements Clock.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go implements Clock.
func (r *Real) Go(fn func()) { go fn() }

// GoAfter implements Clock.
func (r *Real) GoAfter(d time.Duration, fn func()) {
	go func() {
		if d > 0 {
			time.Sleep(d)
		}
		fn()
	}()
}

// Enter implements Clock (no-op: real time advances on its own).
func (r *Real) Enter() {}

// Exit implements Clock.
func (r *Real) Exit() {}

// Detached implements Clock.
func (r *Real) Detached(fn func()) { fn() }

// NewCond implements Clock.
func (r *Real) NewCond(l sync.Locker) Cond {
	return &rcond{l: l, ch: make(chan struct{})}
}

// rcond implements Cond over real time with the closed-channel broadcast
// idiom (sync.Cond has no timed wait).
type rcond struct {
	l  sync.Locker
	mu sync.Mutex
	ch chan struct{}
}

func (c *rcond) current() chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch
}

func (c *rcond) Wait() {
	ch := c.current()
	c.l.Unlock()
	<-ch
	c.l.Lock()
}

func (c *rcond) WaitTimeout(d time.Duration) bool {
	ch := c.current()
	c.l.Unlock()
	defer c.l.Lock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

func (c *rcond) Broadcast() {
	c.mu.Lock()
	close(c.ch)
	c.ch = make(chan struct{})
	c.mu.Unlock()
}
