//go:build amd64 || arm64

package vclock

// gid returns a cheap identity for the calling goroutine: the runtime's g
// pointer, read in one instruction (from thread-local storage on amd64, from
// the dedicated g register on arm64), zero-extended to uint64 (these are
// 64-bit platforms; the return slot is written in full by the asm). The
// pointer is unique among live goroutines, which is all the attachment
// ledger needs — entries are removed when a goroutine's attachment depth
// returns to zero, so a g struct recycled by the runtime for a later
// goroutine can never alias a live entry.
//
// The previous implementation parsed the "goroutine N" header out of
// runtime.Stack, which walks and formats the whole call stack: profiles of
// seed sweeps showed it costing ~80% of total CPU. This read costs ~1ns.
func gid() uint64
