//go:build !amd64 && !arm64

package vclock

import "runtime"

// gid returns the current goroutine's ID parsed from the runtime stack
// header ("goroutine N [running]:") — the portable fallback for
// architectures without an assembly g-pointer read (gid_amd64.s,
// gid_arm64.s). The Go runtime never reuses goroutine IDs, so the value is
// unique among live goroutines, which is all the attachment ledger needs;
// the full 64-bit ID is kept so 32-bit platforms cannot alias after 2^32
// spawned goroutines.
func gid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
