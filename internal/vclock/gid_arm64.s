#include "textflag.h"

// func gid() uintptr
//
// On arm64 the current g lives in the dedicated g register.
TEXT ·gid(SB), NOSPLIT, $0-8
	MOVD	g, R0
	MOVD	R0, ret+0(FP)
	RET
