package vclock

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// A goroutine attached via Go that never unwinds must show up in Stop's
// audit with the spawn site — the attachment-leak failure mode that
// otherwise presents as a hung sweep.
func TestStopReportsLeakedGoroutine(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	v.Go(func() { // leaked: nobody ever broadcasts
		mu.Lock()
		cond.Wait()
		mu.Unlock()
	})
	// Virtual time can only advance once the leaked goroutine has parked
	// in its cond wait, so after this Sleep the ledger state is settled.
	v.Sleep(time.Millisecond)
	rep := v.Stop()
	if rep.Leaked != 1 {
		t.Fatalf("Leaked = %d, want 1 (%s)", rep.Leaked, rep)
	}
	if len(rep.Sites) != 1 || !strings.Contains(rep.Sites[0], "stop_test.go") {
		t.Fatalf("Sites = %v, want the v.Go call site in stop_test.go", rep.Sites)
	}
	if s := rep.String(); !strings.Contains(s, "1 leaked goroutine") {
		t.Fatalf("String() = %q", s)
	}
	cond.Broadcast() // unwind the goroutine so the test exits clean
}

// GoAfter-scheduled goroutines carry their scheduling site through the
// event into the ledger.
func TestStopReportsGoAfterSite(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	v.GoAfter(time.Millisecond, func() {
		mu.Lock()
		cond.Wait()
		mu.Unlock()
	})
	v.Sleep(2 * time.Millisecond)
	rep := v.Stop()
	if rep.Leaked != 1 || len(rep.Sites) != 1 || !strings.Contains(rep.Sites[0], "stop_test.go") {
		t.Fatalf("report = %+v, want 1 leak sited in stop_test.go", rep)
	}
	cond.Broadcast()
}

// A clock whose goroutines all unwound reports a clean shutdown.
func TestStopCleanReportsZero(t *testing.T) {
	v := NewVirtual()
	v.Go(func() { v.Sleep(time.Millisecond) })
	v.Sleep(5 * time.Millisecond)
	if rep := v.Stop(); rep.Leaked != 0 || len(rep.Sites) != 0 {
		t.Fatalf("report = %+v, want clean", rep)
	}
	if s := (LeakReport{}).String(); !strings.Contains(s, "no leaked") {
		t.Fatalf("String() = %q", s)
	}
}

// The caller's own attachment is teardown business, not a leak: clusters
// Stop while attached.
func TestStopExcludesCaller(t *testing.T) {
	v := NewVirtual()
	v.Enter()
	defer v.Exit()
	if rep := v.Stop(); rep.Leaked != 0 {
		t.Fatalf("report = %+v, want the caller's attachment excluded", rep)
	}
}

// The Real clock tracks no attachments; Stop is always clean.
func TestRealStopReportsZero(t *testing.T) {
	if rep := NewReal().Stop(); rep.Leaked != 0 {
		t.Fatalf("report = %+v", rep)
	}
}
