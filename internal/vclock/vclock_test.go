package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	v := NewVirtual()
	start := time.Now()
	v.Sleep(10 * time.Second) // virtual: must not take wall time
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
	if now := v.Now(); now != 10*time.Second {
		t.Errorf("Now = %v, want 10s", now)
	}
}

func TestVirtualSleepOrdering(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	// Spawn in an order unrelated to the deadlines; wake order must follow
	// the deadlines.
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		i, d := i, d
		v.Go(func() {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
	if v.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", v.Now())
	}
}

func TestVirtualEqualDeadlinesFIFO(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	// GoAfter fixes the sequence at call time: equal deadlines fire in
	// scheduling order.
	for i := 0; i < 5; i++ {
		i := i
		v.GoAfter(time.Millisecond, func() {
			mu.Lock()
			order = append(order, i)
			if len(order) == 5 {
				close(done)
			}
			mu.Unlock()
		})
	}
	<-done
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("fire order = %v, want FIFO", order)
		}
	}
}

func TestVirtualCondBroadcast(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	ready := false
	got := make(chan bool, 1)
	v.Go(func() {
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		mu.Unlock()
		got <- true
	})
	v.Go(func() {
		v.Sleep(time.Millisecond)
		mu.Lock()
		ready = true
		mu.Unlock()
		cond.Broadcast()
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("cond waiter never woke")
	}
}

func TestVirtualCondWaitTimeout(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	res := make(chan bool, 1)
	v.Go(func() {
		mu.Lock()
		woken := cond.WaitTimeout(3 * time.Millisecond)
		mu.Unlock()
		res <- woken
	})
	if woken := <-res; woken {
		t.Error("WaitTimeout with no broadcast reported a wake-up")
	}
	if v.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms (timeout advanced the clock)", v.Now())
	}

	// A broadcast before the deadline wins over the timer.
	res2 := make(chan bool, 1)
	v.Go(func() {
		mu.Lock()
		woken := cond.WaitTimeout(time.Hour)
		mu.Unlock()
		res2 <- woken
	})
	v.Go(func() {
		v.Sleep(time.Millisecond)
		cond.Broadcast()
	})
	if woken := <-res2; !woken {
		t.Error("broadcast before deadline reported as timeout")
	}
	if v.Now() >= time.Hour {
		t.Errorf("Now = %v: stale timer advanced the clock", v.Now())
	}
}

func TestEnterExitNesting(t *testing.T) {
	v := NewVirtual()
	v.Enter()
	v.Enter() // nested: public APIs wrap themselves, callers may too
	v.Sleep(time.Millisecond)
	v.Exit()
	v.Exit()
	if v.Now() != time.Millisecond {
		t.Errorf("Now = %v", v.Now())
	}
}

func TestDetachedAllowsAdvance(t *testing.T) {
	v := NewVirtual()
	fired := make(chan struct{})
	v.GoAfter(time.Millisecond, func() { close(fired) })
	v.Enter()
	defer v.Exit()
	// While attached and runnable, the event must not fire; Detached
	// releases the unit so the clock can advance.
	v.Detached(func() {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Error("event did not fire during Detached wait")
		}
	})
}

func TestDetachedUnattachedCaller(t *testing.T) {
	v := NewVirtual()
	ran := false
	v.Detached(func() { ran = true }) // must be a no-op wrapper when unattached
	if !ran {
		t.Error("Detached skipped fn")
	}
}

func TestRealClockSmoke(t *testing.T) {
	r := NewReal()
	r.Enter()
	r.Exit()
	r.Sleep(time.Millisecond)
	if r.Now() < time.Millisecond {
		t.Errorf("Now = %v", r.Now())
	}
	var mu sync.Mutex
	cond := r.NewCond(&mu)
	mu.Lock()
	if woken := cond.WaitTimeout(time.Millisecond); woken {
		t.Error("real WaitTimeout reported spurious wake")
	}
	mu.Unlock()

	done := make(chan struct{})
	go func() {
		mu.Lock()
		cond.Wait()
		mu.Unlock()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	cond.Broadcast()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real cond waiter never woke")
	}
}

func TestGoAfterFromIdleClock(t *testing.T) {
	// GoAfter while nothing is attached must still fire (the push pumps).
	v := NewVirtual()
	done := make(chan struct{})
	v.GoAfter(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle-clock GoAfter never fired")
	}
}

// A broadcast with several waiters must wake them one at a time, in the
// order they armed — never make siblings simultaneously runnable and let
// the OS scheduler pick. This is the within-process send-order pin: two
// goroutines of one node woken by the same broadcast used to race their
// subsequent sends, so schedules could differ across worker counts. Run
// under -race -count=5 in CI.
func TestBroadcastWakesInArmOrder(t *testing.T) {
	const n = 8
	for iter := 0; iter < 25; iter++ {
		v := NewVirtual()
		var mu sync.Mutex
		cond := v.NewCond(&mu)
		var order []int
		ready := false
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			i := i
			v.Go(func() {
				defer wg.Done()
				// Distinct arm instants fix the arming order; the
				// broadcast later wakes everyone at one instant.
				v.Sleep(time.Duration(i+1) * time.Microsecond)
				mu.Lock()
				for !ready {
					cond.Wait()
				}
				order = append(order, i)
				mu.Unlock()
			})
		}
		v.Go(func() {
			v.Sleep(time.Duration(n+2) * time.Microsecond)
			mu.Lock()
			ready = true
			mu.Unlock()
			cond.Broadcast()
		})
		wg.Wait()
		for i := range order {
			if order[i] != i {
				t.Fatalf("iter %d: wake order = %v, want arm order 0..%d", iter, order, n-1)
			}
		}
	}
}

// Timed waiters broadcast at one instant must also wake in arm order, and
// their abandoned timers must neither wake them twice nor advance the
// clock.
func TestBroadcastTimedWaitersArmOrder(t *testing.T) {
	const n = 6
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	var order []int
	ready := false
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		v.Go(func() {
			defer wg.Done()
			v.Sleep(time.Duration(i+1) * time.Microsecond)
			mu.Lock()
			for !ready {
				if !cond.WaitTimeout(time.Hour) {
					t.Errorf("waiter %d timed out", i)
					break
				}
			}
			order = append(order, i)
			mu.Unlock()
		})
	}
	v.Go(func() {
		v.Sleep(time.Duration(n+2) * time.Microsecond)
		mu.Lock()
		ready = true
		mu.Unlock()
		cond.Broadcast()
	})
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want arm order 0..%d", order, n-1)
		}
	}
	if v.Now() >= time.Hour {
		t.Errorf("Now = %v: an abandoned timer advanced the clock", v.Now())
	}
}

// Drain must let every same-instant wake already in the heap run to its
// next blocking point before returning, and must not wait for events at
// future instants.
func TestDrainDeliversPendingWakes(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	woken := 0
	ready := false
	const n = 4
	var armed sync.WaitGroup
	for i := 0; i < n; i++ {
		armed.Add(1)
		v.Go(func() {
			v.Enter()
			mu.Lock()
			armed.Done()
			for !ready {
				cond.Wait()
			}
			woken++
			mu.Unlock()
			v.Exit()
		})
	}
	armed.Wait()
	done := make(chan struct{})
	v.Go(func() {
		v.Sleep(time.Millisecond)
		// A future timer must not block Drain.
		v.GoAfter(time.Hour, func() {})
		mu.Lock()
		ready = true
		mu.Unlock()
		cond.Broadcast()
		v.Drain()
		mu.Lock()
		got := woken
		mu.Unlock()
		if got != n {
			t.Errorf("after Drain, %d of %d waiters had run", got, n)
		}
		// Checked here, before the teardown quiescence fires the hour
		// timer: Drain itself must not have waited for it.
		if now := v.Now(); now >= time.Hour {
			t.Errorf("Now = %v: Drain waited for a future event", now)
		}
		close(done)
	})
	<-done
}
