package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	v := NewVirtual()
	start := time.Now()
	v.Sleep(10 * time.Second) // virtual: must not take wall time
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
	if now := v.Now(); now != 10*time.Second {
		t.Errorf("Now = %v, want 10s", now)
	}
}

func TestVirtualSleepOrdering(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	// Spawn in an order unrelated to the deadlines; wake order must follow
	// the deadlines.
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		wg.Add(1)
		i, d := i, d
		v.Go(func() {
			defer wg.Done()
			v.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
	if v.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", v.Now())
	}
}

func TestVirtualEqualDeadlinesFIFO(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	// GoAfter fixes the sequence at call time: equal deadlines fire in
	// scheduling order.
	for i := 0; i < 5; i++ {
		i := i
		v.GoAfter(time.Millisecond, func() {
			mu.Lock()
			order = append(order, i)
			if len(order) == 5 {
				close(done)
			}
			mu.Unlock()
		})
	}
	<-done
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("fire order = %v, want FIFO", order)
		}
	}
}

func TestVirtualCondBroadcast(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	ready := false
	got := make(chan bool, 1)
	v.Go(func() {
		mu.Lock()
		for !ready {
			cond.Wait()
		}
		mu.Unlock()
		got <- true
	})
	v.Go(func() {
		v.Sleep(time.Millisecond)
		mu.Lock()
		ready = true
		mu.Unlock()
		cond.Broadcast()
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("cond waiter never woke")
	}
}

func TestVirtualCondWaitTimeout(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	cond := v.NewCond(&mu)
	res := make(chan bool, 1)
	v.Go(func() {
		mu.Lock()
		woken := cond.WaitTimeout(3 * time.Millisecond)
		mu.Unlock()
		res <- woken
	})
	if woken := <-res; woken {
		t.Error("WaitTimeout with no broadcast reported a wake-up")
	}
	if v.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms (timeout advanced the clock)", v.Now())
	}

	// A broadcast before the deadline wins over the timer.
	res2 := make(chan bool, 1)
	v.Go(func() {
		mu.Lock()
		woken := cond.WaitTimeout(time.Hour)
		mu.Unlock()
		res2 <- woken
	})
	v.Go(func() {
		v.Sleep(time.Millisecond)
		cond.Broadcast()
	})
	if woken := <-res2; !woken {
		t.Error("broadcast before deadline reported as timeout")
	}
	if v.Now() >= time.Hour {
		t.Errorf("Now = %v: stale timer advanced the clock", v.Now())
	}
}

func TestEnterExitNesting(t *testing.T) {
	v := NewVirtual()
	v.Enter()
	v.Enter() // nested: public APIs wrap themselves, callers may too
	v.Sleep(time.Millisecond)
	v.Exit()
	v.Exit()
	if v.Now() != time.Millisecond {
		t.Errorf("Now = %v", v.Now())
	}
}

func TestDetachedAllowsAdvance(t *testing.T) {
	v := NewVirtual()
	fired := make(chan struct{})
	v.GoAfter(time.Millisecond, func() { close(fired) })
	v.Enter()
	defer v.Exit()
	// While attached and runnable, the event must not fire; Detached
	// releases the unit so the clock can advance.
	v.Detached(func() {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Error("event did not fire during Detached wait")
		}
	})
}

func TestDetachedUnattachedCaller(t *testing.T) {
	v := NewVirtual()
	ran := false
	v.Detached(func() { ran = true }) // must be a no-op wrapper when unattached
	if !ran {
		t.Error("Detached skipped fn")
	}
}

func TestRealClockSmoke(t *testing.T) {
	r := NewReal()
	r.Enter()
	r.Exit()
	r.Sleep(time.Millisecond)
	if r.Now() < time.Millisecond {
		t.Errorf("Now = %v", r.Now())
	}
	var mu sync.Mutex
	cond := r.NewCond(&mu)
	mu.Lock()
	if woken := cond.WaitTimeout(time.Millisecond); woken {
		t.Error("real WaitTimeout reported spurious wake")
	}
	mu.Unlock()

	done := make(chan struct{})
	go func() {
		mu.Lock()
		cond.Wait()
		mu.Unlock()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	cond.Broadcast()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real cond waiter never woke")
	}
}

func TestGoAfterFromIdleClock(t *testing.T) {
	// GoAfter while nothing is attached must still fire (the push pumps).
	v := NewVirtual()
	done := make(chan struct{})
	v.GoAfter(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("idle-clock GoAfter never fired")
	}
}
