// Package vclock provides the simulation's notion of time: a virtual
// discrete-event clock (the default everywhere) and a real-time clock with
// the same interface.
//
// # Virtual vs real time
//
// The system model of the paper (§5.2) is an asynchronous network: message
// delays are unbounded but finite, and nothing in the protocol may depend
// on actual durations. Simulating such a system with real sleeps makes a
// run's speed proportional to the delays it simulates; simulating it with a
// virtual clock makes a run's speed proportional to the work it performs.
// Under the virtual clock a scenario that "waits" 2 ms for a crash to land
// or 50 µs for a message to arrive performs a heap operation instead of a
// sleep, so experiment sweeps run as fast as the hardware allows.
//
// The virtual clock is a discrete-event scheduler: pending wake-ups (sleep
// deadlines, message deliveries, poll timeouts) form a priority queue keyed
// by virtual deadline, tie-broken by scheduling sequence number. Goroutines
// participating in the simulation are attached to the clock (Clock.Go,
// Clock.Enter); whenever every attached goroutine is blocked in a clock
// primitive, the clock pops the earliest event, advances virtual time to
// its deadline, and wakes exactly one goroutine. Execution of events is
// thereby serialized.
//
// # How seeds map to schedules
//
// Message delays are drawn from simnet's seeded generator in send order,
// and the event queue's (deadline, sequence) order is a pure function of
// those draws and of the order in which timers are created. Because the
// clock runs one event at a time, the interleaving of protocol steps — and
// with it the delivery order, the observed event history, and the message
// counters — reproduces exactly for equal seeds. Periodic activities
// (failure-detector heartbeats, the server cleaner) stagger their first
// deadline by a hash of their process ID so that symmetric loops do not
// race on equal deadlines.
//
// Real time remains available by passing vclock.NewReal() as the network
// clock (simnet.Config.Clock); everything then behaves as a conventional
// concurrent simulation.
package vclock
