package scenario

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu     sync.RWMutex
	scenarios = make(map[string]Scenario)
)

// Register adds a scenario to the registry, with its documented zero-value
// defaults resolved so callers reading fields (protocol, replication
// degree) see the effective configuration. Names are unique; registering
// an empty or duplicate name is an error.
func Register(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	sc = sc.withDefaults()
	sc.Plan = sc.Plan.Clone() // detach from the caller's builder handle
	if sc.RandomFaults != nil {
		opt := *sc.RandomFaults
		sc.RandomFaults = &opt
	}
	if sc.Workload != nil {
		spec := *sc.Workload
		sc.Workload = &spec
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := scenarios[sc.Name]; dup {
		return fmt.Errorf("scenario: duplicate name %q", sc.Name)
	}
	scenarios[sc.Name] = sc
	return nil
}

// MustRegister is Register, panicking on error. Builtin and test
// registrations use it.
func MustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// Get looks a scenario up by name. The returned scenario owns its fault
// plan: builder calls on it do not mutate the registered scenario and
// cannot race with sweeps executing it.
func Get(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sc, ok := scenarios[name]
	sc.Plan = sc.Plan.Clone()
	if sc.RandomFaults != nil {
		opt := *sc.RandomFaults
		sc.RandomFaults = &opt
	}
	if sc.Workload != nil {
		spec := *sc.Workload
		sc.Workload = &spec
	}
	return sc, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// T1Set is the ordered scenario list that generates Table T1's rows: the
// x-ability protocol through a nice run and three adversarial schedules,
// then the baselines through the runs that expose them.
func T1Set() []string {
	return []string{
		"nice",
		"crash-failover",
		"partition",
		"delay-storm",
		"pb-nice",
		"pb-crash-failover",
		"active-nice",
	}
}

// SweepSet is the ordered scenario list Table T7 sweeps over seeds: the
// x-ability protocol's rows of T1, whose verdicts the paper claims hold on
// every schedule.
func SweepSet() []string {
	return []string{"nice", "crash-failover", "partition", "delay-storm"}
}
