package scenario

import "testing"

// TestNiceRunAllocBudget pins the whole pipeline's allocation bill: one
// complete nice-scenario run — cluster construction, a request through the
// protocol, settle, verdicts. Measured at ~274 objects after PR 5's
// overhaul (interned simnet indexes, pooled clock events/waiters, struct
// consensus keys, allocation-free tag encoding); the budget gives ~35%
// headroom so drift fails loudly long before the pre-PR bill (4-digit
// object counts per run) creeps back. Alloc counts are deterministic, so
// the guard is exact where wall-clock ratios could never be.
func TestNiceRunAllocBudget(t *testing.T) {
	sc, ok := Get("nice")
	if !ok {
		t.Fatal("nice not registered")
	}
	Execute(sc, 1) // warm shared registries
	avg := testing.AllocsPerRun(20, func() { Execute(sc, 2) })
	if avg > 380 {
		t.Fatalf("nice run allocates %.0f objects, budget 380", avg)
	}
}

// TestNiceRunReusedAllocBudget pins the sweep path: the same run on a
// per-worker recycled network (reset-and-rerun) must allocate less than a
// fresh-world run — the substrate (endpoints, interning, pools) is the
// part reuse exists to amortize.
func TestNiceRunReusedAllocBudget(t *testing.T) {
	sc, ok := Get("nice")
	if !ok {
		t.Fatal("nice not registered")
	}
	scratch := &runScratch{}
	executeTracedWith(sc, 1, nil, nil, scratch)
	avg := testing.AllocsPerRun(20, func() { executeTracedWith(sc, 2, nil, nil, scratch) })
	if avg > 320 {
		t.Fatalf("reused-network nice run allocates %.0f objects, budget 320", avg)
	}
}
