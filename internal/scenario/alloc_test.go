package scenario

import "testing"

// TestNiceRunAllocBudget pins the whole pipeline's allocation bill: one
// complete nice-scenario run — cluster construction, a request through the
// protocol, settle, verdicts. Measured at ~274 objects after PR 5's
// overhaul (interned simnet indexes, pooled clock events/waiters, struct
// consensus keys, allocation-free tag encoding); the budget gives ~35%
// headroom so drift fails loudly long before the pre-PR bill (4-digit
// object counts per run) creeps back. Alloc counts are deterministic, so
// the guard is exact where wall-clock ratios could never be.
func TestNiceRunAllocBudget(t *testing.T) {
	sc, ok := Get("nice")
	if !ok {
		t.Fatal("nice not registered")
	}
	Execute(sc, 1) // warm shared registries
	avg := testing.AllocsPerRun(20, func() { Execute(sc, 2) })
	if avg > 380 {
		t.Fatalf("nice run allocates %.0f objects, budget 380", avg)
	}
}

// TestNiceRunReusedAllocBudget pins the sweep path: the same run on a
// per-worker recycled network (reset-and-rerun) must allocate less than a
// fresh-world run — the substrate (endpoints, interning, pools) is the
// part reuse exists to amortize.
func TestNiceRunReusedAllocBudget(t *testing.T) {
	sc, ok := Get("nice")
	if !ok {
		t.Fatal("nice not registered")
	}
	scratch := &runScratch{}
	executeTracedWith(sc, 1, nil, nil, scratch)
	avg := testing.AllocsPerRun(20, func() { executeTracedWith(sc, 2, nil, nil, scratch) })
	if avg > 320 {
		t.Fatalf("reused-network nice run allocates %.0f objects, budget 320", avg)
	}
}

// TestBatchedRunAllocBudget pins the slot plane's allocation bill: a full
// batch-nice run — 8 requests through batched submit, slot formation,
// pipelined commit, and per-request reply fan-out. Measured at ~731
// objects fresh / ~691 reused (≈91 per request, the whole run amortized);
// the budgets give ~30% headroom so fan-out allocations that scale with
// batch size fail loudly.
func TestBatchedRunAllocBudget(t *testing.T) {
	sc, ok := Get("batch-nice")
	if !ok {
		t.Fatal("batch-nice not registered")
	}
	Execute(sc, 1)
	avg := testing.AllocsPerRun(20, func() { Execute(sc, 2) })
	if avg > 950 {
		t.Fatalf("batched run allocates %.0f objects, budget 950", avg)
	}
	scratch := &runScratch{}
	executeTracedWith(sc, 1, nil, nil, scratch)
	avg = testing.AllocsPerRun(20, func() { executeTracedWith(sc, 2, nil, nil, scratch) })
	if avg > 900 {
		t.Fatalf("reused-network batched run allocates %.0f objects, budget 900", avg)
	}
}

// TestOpenLoopSessionAllocBudget pins the open-loop path's per-session
// bill: an open-loop-batch run divided by its session count. Measured at
// ~49 objects per session (station registration, submit, slot membership,
// reply demux, latency log); budget 65. Per-session cost is the number
// that must stay flat for 100k-session experiments to be routine.
func TestOpenLoopSessionAllocBudget(t *testing.T) {
	sc, ok := Get("open-loop-batch")
	if !ok {
		t.Fatal("open-loop-batch not registered")
	}
	sessions := Execute(sc, 2).Requests
	if sessions == 0 {
		t.Fatal("open-loop-batch generated no arrivals")
	}
	avg := testing.AllocsPerRun(10, func() { Execute(sc, 2) })
	if per := avg / float64(sessions); per > 65 {
		t.Fatalf("open-loop batched run allocates %.1f objects per session (%.0f over %d sessions), budget 65",
			per, avg, sessions)
	}
}
