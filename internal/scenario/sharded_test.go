package scenario

import (
	"reflect"
	"testing"
	"time"
)

// TestShardedSweepDeterministic pins the sharded runtime's replayability:
// the same sharded scenario over the same seed set yields a deeply equal
// VerdictDistribution at any worker count and on repetition. This is the
// strong claim behind the whole design — concurrent per-shard streams on
// one virtual clock, each group on its own network with its own delay
// stream, must leave no trace of host scheduling in the verdicts. CI runs
// it with -race -count=5.
func TestShardedSweepDeterministic(t *testing.T) {
	sc, ok := Get("shard-crash-failover")
	if !ok {
		t.Fatal("shard-crash-failover not registered")
	}
	seeds := Seeds(2000, 48)
	serial := Sweep(sc, seeds, 1)
	parallel := Sweep(sc, seeds, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker count observable in the sharded distribution:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	again := Sweep(sc, seeds, 8)
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("replay of the same sharded sweep differs:\nfirst:  %+v\nsecond: %+v", parallel, again)
	}
}

// TestShardedOutcomeDeterministic re-executes single sharded runs —
// including SimTime, which is where a scheduling leak would show first
// (the virtual span of concurrent streams) — and requires bit-equal
// outcomes.
func TestShardedOutcomeDeterministic(t *testing.T) {
	for _, name := range []string{"shard-nice", "shard-crash-failover", "shard-storm", "shard-random"} {
		sc, _ := Get(name)
		for seed := int64(1); seed <= 4; seed++ {
			a := Execute(sc, seed)
			b := Execute(sc, seed)
			a.History, b.History = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s seed %d: two executions differ:\n%+v\nvs\n%+v", name, seed, a, b)
			}
		}
	}
}

// TestShardedCTByteDeterministic byte-pins the CT-substrate sharded run —
// Messages and SimTime included. This is the 12-request sharded
// configuration that used to expose the wake-up-bubble RNG race (a CT
// node's receive loop and round loop sending concurrently inside one
// virtual-clock bubble, ~1/300 race runs): with per-sender delay streams a
// sender's draws no longer depend on how the host interleaved other
// processes' sends, so the whole outcome must now reproduce exactly. CI
// runs this under -race -count=5.
func TestShardedCTByteDeterministic(t *testing.T) {
	sc, _ := Get("shard-split-brain")
	for seed := int64(1); seed <= 4; seed++ {
		a := Execute(sc, seed)
		b := Execute(sc, seed)
		a.History, b.History = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: executions differ byte-for-byte:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
}

// TestShardedSweepRates holds every sharded scenario to the composition
// claim at population scale: x-able rate exactly 1.0, every request
// answered, every effect exactly once.
func TestShardedSweepRates(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 12
	}
	for _, name := range []string{"shard-nice", "shard-crash-failover", "shard-split-brain", "shard-storm", "shard-random"} {
		sc, _ := Get(name)
		d := Sweep(sc, Seeds(700, n), 0)
		if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
			t.Errorf("%s: x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
				name, d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
		}
		// Every run submits the 12-request workload; exactly-once means 12
		// effects in force per run.
		if d.Effects[12] != n {
			t.Errorf("%s: effects histogram %v, want all mass on 12", name, d.Effects)
		}
	}
}

// TestShardCrashFailoverRouterExactlyOnce is the router-failover check at
// the scenario level: every group's round-1 owner crashes mid-call, each
// group's cleaner takes over, and the merged checker must certify both
// per-shard exactly-once and exactly-once routing on every seed.
func TestShardCrashFailoverRouterExactlyOnce(t *testing.T) {
	sc, _ := Get("shard-crash-failover")
	for seed := int64(1); seed <= 8; seed++ {
		o := Execute(sc, seed)
		if !o.Replied || !o.XAble {
			t.Fatalf("seed %d: x-able=%v replied=%v: %+v", seed, o.XAble, o.Replied, o.ShardReports)
		}
		if !o.RoutingExact {
			t.Errorf("seed %d: routing audit failed", seed)
		}
		if len(o.ShardReports) != 4 {
			t.Fatalf("seed %d: %d shard reports, want 4", seed, len(o.ShardReports))
		}
		for s, rep := range o.ShardReports {
			if !rep.OK() {
				t.Errorf("seed %d shard %d: report not OK: %+v", seed, s, rep)
			}
		}
		if o.EffectsInForce != 12 {
			t.Errorf("seed %d: %d effects in force, want 12 (one per request)", seed, o.EffectsInForce)
		}
		// The crash must actually bite: with every owner crashed at 2ms,
		// failovers show up as extra submit attempts or extra executions.
		if o.Attempts <= o.Requests && o.Executions <= o.Requests {
			t.Errorf("seed %d: no failover evidence (attempts %d, executions %d over %d requests)",
				seed, o.Attempts, o.Executions, o.Requests)
		}
	}
}

// TestShardFaultIsolation pins the confinement claim: a crash addressed
// to one group (CrashShardAt) leaves the other groups' replica sets
// untouched.
func TestShardFaultIsolation(t *testing.T) {
	sc, _ := Get("shard-nice")
	sc.Plan = NewPlan().CrashShardAt(500*time.Microsecond, 1, 0)
	o := Execute(sc, 3)
	if !o.XAble || !o.Replied {
		t.Fatalf("confined crash broke the deployment: %+v", o)
	}
}
