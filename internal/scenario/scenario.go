package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xability/internal/action"
	"xability/internal/baseline"
	"xability/internal/core"
	"xability/internal/event"
	"xability/internal/obs"
	"xability/internal/reduce"
	"xability/internal/schedule"
	"xability/internal/simnet"
	"xability/internal/vclock"
	"xability/internal/verify"
	"xability/internal/workload"
)

// Protocol names the replication protocol a scenario attacks.
type Protocol string

const (
	// XAbility is the paper's protocol (internal/core).
	XAbility Protocol = "x-ability"
	// PrimaryBackup is the [BMST93]-style baseline.
	PrimaryBackup Protocol = "primary-backup"
	// Active is the [Sch93]-style baseline.
	Active Protocol = "active"
)

// Failure arms environment failure injection for one action: invocations
// fail with probability Prob until Budget failures have struck (eventual
// success, §5.2); AfterProb is the fraction of failures striking after the
// side effect applied. Failures stretch executions across virtual time so
// timed fault ops land mid-run.
type Failure struct {
	Action    action.Name
	Prob      float64
	Budget    int
	AfterProb float64
}

// Scenario is one complete adversarial experiment, declaratively: which
// protocol to deploy, on what network, with which injected environment
// failures, driven by which fault plan, submitting which requests. A
// Scenario is a value — register it once, then Execute it on any seed or
// Sweep it across thousands.
type Scenario struct {
	// Name identifies the scenario in the registry and on CLI flags.
	Name string
	// Label is the scenario column of the experiment tables; it defaults
	// to Name. Distinct scenarios of different protocols may share a
	// label ("nice", "crash-failover") so table rows align.
	Label string
	// Description is a one-line summary for listings.
	Description string

	// Protocol selects the stack under test (default XAbility).
	Protocol Protocol
	// Replicas is the replication degree (default 3).
	Replicas int
	// Shards, when positive, deploys the x-ability protocol on the sharded
	// runtime (internal/shard): Shards replica groups — each a full
	// cluster on its own network — behind the keyspace router, all on one
	// virtual clock, the workload routed by account key with per-shard
	// streams running concurrently. Zero keeps the single-cluster runtime
	// (1 is the one-group router deployment, the honest baseline for
	// shard-scaling comparisons). Baseline protocols ignore it. Sharded
	// runs sit outside the record/replay plane: the groups' private
	// networks would interleave one log nondeterministically.
	Shards int
	// Consensus selects the x-ability protocol's consensus substrate.
	Consensus core.ConsensusMode
	// Detector selects the x-ability protocol's failure detectors.
	Detector core.DetectorMode
	// Net tunes the simulated network. The seed is supplied per run; a
	// zero MaxDelay defaults to 200µs.
	Net simnet.Config
	// SyncDelay widens primary-backup's duplication window.
	SyncDelay time.Duration

	// Batch enables the x-ability protocol's batched/pipelined slot plane
	// on every replica (zero value: per-request protocol). Baselines
	// ignore it.
	Batch core.BatchConfig
	// Costs charges virtual CPU time per consensus proposal and per
	// execution attempt (zero value: free). Without costs the simulated
	// replicas have unbounded capacity and open-loop throughput never
	// saturates; with them the saturation experiments (T11) measure real
	// queueing.
	Costs core.CostModel

	// Durable gives every replica stable storage (internal/wal): servers
	// write-ahead request sightings, round claims, and finishes, CT
	// acceptors their estimates and decisions, and Plan.RestartAt can
	// revive a crashed replica from its log. Without it a crash is
	// permanent (the paper's §5.2 no-recovery model) and RestartAt is a
	// no-op. Sharded runs give every group its own store, recycled with
	// the group, so shard-scoped restarts (Plan.RestartShardAt) recover
	// from per-group logs. Baselines ignore it — they have no restart
	// surface.
	Durable bool
	// WALSync is the virtual-time sync tariff charged per WAL append when
	// Durable is set. Zero keeps stable storage schedule-invisible, so a
	// durable run with no restarts is byte-identical to its in-memory
	// twin; a positive tariff prices the paper's stable-storage writes
	// and shifts the whole schedule (T12's cost curve).
	WALSync time.Duration
	// WALSnapshotSync is the per-record sync tariff charged while writing
	// a compaction snapshot (zero: inherit WALSync). Snapshots write many
	// records back-to-back, so pricing them separately lets T14's cost
	// curve distinguish steady-state appends from compaction stalls.
	WALSnapshotSync time.Duration
	// WALCompact, when positive, compacts each replica's log whenever its
	// dead-record count reaches the threshold (see wal.Store). Zero never
	// compacts.
	WALCompact int

	// Accounts and Opening size the bank the replicas serve (defaults 1
	// account, 100 opening balance).
	Accounts int
	// Opening is the per-account opening balance (default 100).
	Opening int

	// Failures arms environment failure injection before the run starts.
	Failures []Failure
	// Plan is the timed fault schedule (may be nil for fault-free runs).
	Plan *Plan
	// RandomFaults, when set, draws a seeded random fault schedule from
	// the run's seed (Plan.Random) and merges it with Plan, so every seed
	// of a sweep fights a different schedule while each run stays a
	// replayable (scenario, seed) value. Zero-valued options default to
	// the scenario's replication degree and shard count.
	RandomFaults *RandomOptions

	// Requests is the submitted workload (default: one debit of acct-0).
	// Ignored when Workload is set.
	Requests []action.Request
	// Workload, when set, generates the request sequence from the run's
	// seed, so every seed of a sweep exercises a different sequence.
	Workload *workload.Spec
	// OpenLoop, when set, replaces the closed-loop workload entirely: the
	// run drives a seeded open-loop arrival schedule (many concurrent
	// single-request sessions through a core.Station) instead of one
	// sequential client session. Requests/Workload are ignored; the
	// verifier runs under the concurrent per-request relaxation
	// (verify.Run.Concurrent) because an open-loop completion log has no
	// sequential form. An unset Accounts in the spec defaults to the
	// scenario's Accounts.
	OpenLoop *workload.OpenLoopSpec

	// Settle extends the run past the last submit by this much virtual
	// time before verdicts are read, letting in-flight protocol activity
	// (a partitioned replica resolving its round after a heal, late
	// active-replication executions) finish. Runs always settle at least
	// 2ms past the plan's horizon.
	Settle time.Duration

	// HeartbeatInterval tunes the ◇P heartbeat detectors when Detector is
	// DetectorHeartbeat (zero selects the core default).
	HeartbeatInterval time.Duration

	// Deadline, when positive, caps the run at this much virtual time:
	// a watchdog closes the network, the client's retry obligation
	// lapses, and the outcome reports TimedOut. Zero means no cap. The
	// shrinker sets it so that edited schedules that would stall a client
	// await forever still terminate (and are then rejected, because a
	// hung run is not the recorded failure).
	Deadline time.Duration
}

// TableLabel returns the scenario's experiment-table label.
func (sc Scenario) TableLabel() string {
	if sc.Label != "" {
		return sc.Label
	}
	return sc.Name
}

// withDefaults resolves the zero values documented on the fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Protocol == "" {
		sc.Protocol = XAbility
	}
	if sc.Replicas <= 0 {
		sc.Replicas = 3
	}
	if sc.Net.MinDelay == 0 && sc.Net.MaxDelay == 0 {
		sc.Net.MaxDelay = 200 * time.Microsecond
	}
	if sc.Accounts <= 0 {
		sc.Accounts = 1
	}
	if sc.Opening == 0 {
		sc.Opening = 100
	}
	if len(sc.Requests) == 0 && sc.Workload == nil && sc.OpenLoop == nil {
		sc.Requests = []action.Request{action.NewRequest("debit", "acct-0")}
	}
	return sc
}

// Materialize resolves the seed-derived parts of a scenario into explicit
// values: with RandomFaults set, the drawn schedule is concatenated onto
// Plan and the knob cleared, so the result is a plain fixed-plan scenario
// for this seed. Execute does this implicitly; the shrinker does it
// explicitly so drawn fault ops are editable like hand-written ones.
// Idempotent; the receiver (and its registered plan) is not mutated.
func (sc Scenario) Materialize(seed int64) Scenario {
	if sc.RandomFaults == nil {
		return sc
	}
	sc = sc.withDefaults()
	opt := *sc.RandomFaults
	if opt.Replicas <= 0 {
		opt.Replicas = sc.Replicas
	}
	if opt.Shards < 1 {
		opt.Shards = sc.Shards
	}
	sc.Plan = sc.Plan.Concat(NewPlan().Random(seed, opt))
	sc.RandomFaults = nil
	return sc
}

// Outcome is the verdict of one scenario run: did the run look
// exactly-once to the checker and to the environment's audit, and what did
// it cost.
type Outcome struct {
	// Scenario and Seed identify the run.
	Scenario string
	Seed     int64

	// XAble is the checker's verdict on the observed history (strict or
	// per-request projection for the x-ability protocol; the charitable
	// idempotent reading for baselines).
	XAble bool
	// Replied reports whether every submitted request got an answer (R2).
	Replied bool
	// EffectsInForce is the environment audit for the first request's
	// action: applications of the side effect still in force across all
	// round tags. Exactly-once means 1 per request; the audit sums over
	// the run's requests.
	EffectsInForce int
	// Executions counts start events of the first request's action — 1
	// means the run stayed in the primary-backup flavor, more means
	// active-replication drift (or baseline duplication).
	Executions int
	// Cancels counts completed cancellation actions (the protocol's
	// cleanup work).
	Cancels int
	// ReplayDuplicates counts workload (action, input) pairs whose side
	// effect is in force more than once at the settle instant — the
	// duplicate-replay audit. A restarted replica that re-applied an
	// effect it had already applied before crashing shows up here even
	// when the client-visible verdicts all pass.
	ReplayDuplicates int

	// WALAppends and WALSyncTime report stable-storage activity for
	// durable runs (zero otherwise): records appended across all logs,
	// and total virtual time spent in sync tariffs. WALCompactions counts
	// compaction passes across all logs and WALLiveRecords the records
	// still live at the settle instant — together they pin that a
	// compacting log stays bounded by live state, not by history length.
	WALAppends     int
	WALSyncTime    time.Duration
	WALCompactions int
	WALLiveRecords int

	// Requests, Attempts, and Messages are the run's volume counters.
	Requests int
	Attempts int
	Messages int
	// SimTime is the virtual time the workload spanned (excluding
	// settling).
	SimTime time.Duration
	// Latency summarizes per-session submit→reply virtual latencies for
	// open-loop runs (zero value otherwise).
	Latency workload.LatencySummary

	// TimedOut reports that the scenario's Deadline watchdog killed the
	// run before the workload finished.
	TimedOut bool

	// Shards echoes Scenario.Shards for sharded runs (0 otherwise);
	// ShardReports carries each group's R2–R4 verdicts and RoutingExact
	// the router's global exactly-once-routing audit. XAble for a sharded
	// run is the merged verdict: every shard reduces and routing is exact.
	Shards       int
	ShardReports []verify.Report
	RoutingExact bool

	// Obs is the run's metrics snapshot, read at the same pinned settle
	// instant as the other observations. Nil unless the run was executed
	// with the observability plane armed (ExecuteObserved, or a sweep with
	// SweepOptions.Metrics).
	Obs *obs.Snapshot

	// History is the observed event trace (dropped by Sweep to bound
	// memory).
	History event.History
	// Report is the R2–R4 verdict; meaningful for the x-ability protocol
	// only (baselines are judged by XAble and the audit).
	Report verify.Report
	// Schedule is the recorded delivery log (ExecuteTraced runs only; nil
	// otherwise).
	Schedule *schedule.Log
	// Counterexample is the rendered minimal failing trace; the shrinker
	// (internal/shrink) fills it on the outcome of a minimized run.
	Counterexample string
}

// Execute runs one scenario on one seed and returns its outcome. Runs are
// deterministic: equal (scenario, seed) pairs yield equal outcomes, which
// is what makes sweep distributions replayable.
func Execute(sc Scenario, seed int64) Outcome {
	return ExecuteTraced(sc, seed, nil, nil)
}

// ExecuteTraced is Execute with the schedule plane armed: when record is
// non-nil the network logs every delivery decision into it (and the
// outcome carries it as Schedule); when replay is non-nil the run
// re-executes the given log instead of drawing delays from the seed —
// the record/replay/shrink pipeline's entry point. Either may be nil.
func ExecuteTraced(sc Scenario, seed int64, record *schedule.Log, replay *schedule.Replay) Outcome {
	return executeTracedWith(sc, seed, record, replay, nil)
}

// ExecuteObserved is Execute with the observability plane armed: the run's
// networks stamp counters and latency observations into run.Metrics and
// request-lifecycle spans into run.Trace (either may be nil), and the
// metrics snapshot — read at the same pinned settle-horizon instant as the
// run's other observations — lands in Outcome.Obs. Observation does not
// perturb the schedule: an observed run's verdict fields are byte-equal to
// its unobserved twin's.
func ExecuteObserved(sc Scenario, seed int64, run *obs.Run) Outcome {
	return executeObservedWith(sc, seed, nil, nil, nil, run)
}

// ExecuteReplayObserved is ExecuteTraced under observation: the run
// re-executes the given schedule log while stamping run's metrics and
// trace. The shrinker uses it to annotate a minimal counterexample with
// the request timeline of exactly the minimized schedule.
func ExecuteReplayObserved(sc Scenario, seed int64, replay *schedule.Replay, run *obs.Run) Outcome {
	return executeObservedWith(sc, seed, nil, replay, nil, run)
}

// runScratch is a sweep worker's reusable substrate: one network — with
// its endpoints, interning tables, and event pools — recycled across the
// worker's seeds via simnet.Reset, instead of allocating a fresh world per
// run. The protocol actors (servers, clients, machines, environment) are
// still rebuilt per seed: they are cheap and hold all run state, so reuse
// stays invisible to outcomes — the sweep determinism tests pin bit-equal
// results against fresh-world Execute runs.
type runScratch struct {
	net *simnet.Network
	// groups is the sharded analogue: one recycled network per replica
	// group, re-seeded and re-clocked per run via simnet.ResetShared (see
	// takeGroups in sharded.go).
	groups []*simnet.Network
}

// take returns a network ready for a seeded run: the recycled one when
// Reset succeeds, nil (build fresh) otherwise. A network whose previous
// run failed to wind down is abandoned rather than risked.
func (s *runScratch) take(cfg simnet.Config) *simnet.Network {
	if s == nil {
		return nil
	}
	if s.net != nil {
		if s.net.Reset(cfg) {
			return s.net
		}
		s.net = nil
		return nil
	}
	s.net = simnet.New(cfg)
	return s.net
}

// executeTracedWith is the common run path: ExecuteTraced with an optional
// per-worker scratch (sweep runs pass one; single runs pass nil).
func executeTracedWith(sc Scenario, seed int64, record *schedule.Log, replay *schedule.Replay, scratch *runScratch) Outcome {
	return executeObservedWith(sc, seed, record, replay, scratch, nil)
}

// executeObservedWith is executeTracedWith with the observability plane:
// run's metrics and trace are handed to the run's network(s) exactly as
// record/replay are (the sharded runtime keeps them — its groups share one
// clock, so one registry folds their deliveries deterministically — even
// though it drops the schedule hooks).
func executeObservedWith(sc Scenario, seed int64, record *schedule.Log, replay *schedule.Replay, scratch *runScratch, run *obs.Run) Outcome {
	sc = sc.withDefaults().Materialize(seed)
	sc.Net.Record, sc.Net.Replay = record, replay
	if run != nil {
		sc.Net.Metrics, sc.Net.Trace = run.Metrics, run.Trace
	}
	reqs := sc.Requests
	if sc.Workload != nil {
		reqs = workload.Generate(*sc.Workload, seed)
	}
	var o Outcome
	switch {
	case sc.Protocol == XAbility && sc.Shards > 0:
		// The sharded runtime is outside the record/replay plane (see
		// Scenario.Shards): drop the hooks rather than hand one log to
		// several racing networks. Reuse works per group: the scratch
		// recycles one network per shard via simnet.ResetShared.
		sc.Net.Record, sc.Net.Replay = nil, nil
		if sc.OpenLoop != nil {
			o = executeOpenLoopSharded(sc, seed, scratch)
		} else {
			o = executeSharded(sc, seed, reqs, scratch)
		}
	case sc.Protocol == XAbility && sc.OpenLoop != nil:
		o = executeOpenLoop(sc, seed, scratch)
	case sc.Protocol == XAbility:
		o = executeXAbility(sc, seed, reqs, scratch)
	default:
		o = executeBaseline(sc, seed, reqs, scratch)
	}
	o.Schedule = record
	return o
}

// watchdog arms the scenario's Deadline on a freshly started cluster: at
// the cap closeNets runs (closing the deployment's network, or every
// group's network of a sharded deployment), unblocking every client
// await. The cap guards the submit phase only — settling and audit
// stabilization always terminate on their own — so the caller disarms it
// once the workload is through. Call with the clock held; fired reports
// whether the watchdog killed the run.
func watchdog(sc Scenario, clk vclock.Clock, closeNets func()) (fired func() bool, disarm func()) {
	if sc.Deadline <= 0 {
		return func() bool { return false }, func() {}
	}
	var hit, done atomic.Bool
	clk.GoAfter(sc.Deadline, func() {
		if done.Load() {
			return
		}
		hit.Store(true)
		closeNets()
	})
	return hit.Load, func() { done.Store(true) }
}

// settleFor computes how long past the last reply a run keeps simulating
// before verdicts are read.
func settleFor(sc Scenario) time.Duration {
	settle := sc.Settle
	if sc.Plan != nil {
		if h := sc.Plan.Horizon() + 2*time.Millisecond; h > settle {
			settle = h
		}
	}
	return settle
}

// settleRun sleeps the settle horizon, then extends it in fixed steps
// while undoable transactions still await their decided commit or cancel.
// The protocol answers a client as soon as the outcome decision is fixed;
// executing that outcome can trail far behind a loaded executor (under
// open-loop overload, by a whole backlog). Snapshotting mid-drain would
// miss commit pairs the run will still produce and fail verification on a
// run that is exactly-once. The extension is deterministic — pending() at
// a virtual instant is a function of the schedule — and bounded, so a
// pathological run still settles.
func settleRun(sc Scenario, clk vclock.Clock, pending func() int) {
	clk.Sleep(settleFor(sc))
	for i := 0; i < 400 && pending() > 0; i++ {
		clk.Sleep(500 * time.Microsecond)
	}
}

func executeXAbility(sc Scenario, seed int64, reqs []action.Request, scratch *runScratch) Outcome {
	bank := workload.NewBank(sc.Accounts, sc.Opening)
	netcfg := netConfig(sc, seed)
	c := core.NewCluster(core.ClusterConfig{
		Replicas:  sc.Replicas,
		Seed:      seed,
		Net:       netcfg,
		Network:   scratch.take(netcfg),
		Consensus: sc.Consensus,
		Detector:  sc.Detector,
		Registry:  workload.Registry(),
		Setup:     bank.Setup(),
		Batch:     sc.Batch,
		Costs:     sc.Costs,
		Durable:   sc.Durable,
		WALSync:   sc.WALSync,

		WALSnapshotSync:   sc.WALSnapshotSync,
		WALCompact:        sc.WALCompact,
		HeartbeatInterval: sc.HeartbeatInterval,
	})
	defer c.Stop()
	for _, f := range sc.Failures {
		c.Env.SetFailures(f.Action, f.Prob, f.Budget, f.AfterProb)
	}

	clk := c.Clock()
	clk.Enter()
	timedOut, disarm := watchdog(sc, clk, c.Net.Close)
	if sc.Plan != nil {
		sc.Plan.Apply(c)
	}
	start := clk.Now()
	replied := true
	for _, r := range reqs {
		if c.Client.SubmitUntilSuccess(r) == "" {
			replied = false
		}
	}
	disarm()
	simTime := clk.Now() - start
	settleRun(sc, clk, c.Env.PendingOutcome)
	// Every observation — send counter, history, side-effect audit — is
	// snapshotted at the settle horizon, a fixed virtual instant, while
	// this goroutine is still attached: it was just woken by the pump, so
	// every protocol goroutine is blocked in a clock primitive and the
	// observed state cannot move. After Exit the clock free-runs, and
	// periodic activity (heartbeats, cleaner-paced cancellations) would
	// race the reads in wall time, making outcomes nondeterministic.
	msgs := c.Net.TotalSent()
	h := c.Observer.History()
	effects := auditEffects(reqs, c.Env.InForceTotal)
	dups := auditDuplicates(reqs, c.Env.InForceTotal)
	wstats := c.WALStats()
	snap := sc.Net.Metrics.Snapshot() // nil-safe; nil when unobserved
	// Stop the cluster while still attached: once this goroutine Exits, a
	// live cluster's periodic loops (cleaners, heartbeats) would free-run
	// on the virtual clock at CPU speed, racing the verdict computation
	// for the host's cores. Stopping first turns the post-Exit schedule
	// into a bounded exit cascade. (Stop is non-blocking and idempotent;
	// the deferred Stop becomes a no-op.)
	c.Stop()
	clk.Exit()
	c.Net.Quiesce()

	logged, replies := c.Client.Log()
	rep := verify.Check(verify.Run{
		Registry:       workload.Registry(),
		Requests:       logged,
		Replies:        replies,
		History:        h,
		SubmitAttempts: c.Client.Attempts(),
	})
	o := outcomeFrom(sc, seed, reqs, h, replied)
	o.TimedOut = timedOut()
	o.XAble = rep.R3Strict || rep.R3Projected
	o.Report = rep
	o.Attempts = c.Client.Attempts()
	o.Messages = msgs
	o.SimTime = simTime
	o.EffectsInForce = effects
	o.ReplayDuplicates = dups
	o.WALAppends = wstats.Appends
	o.WALSyncTime = wstats.SyncTime
	o.WALCompactions = wstats.Compactions
	o.WALLiveRecords = wstats.LiveRecords
	o.Obs = snap
	return o
}

func executeBaseline(sc Scenario, seed int64, reqs []action.Request, scratch *runScratch) Outcome {
	scheme := baseline.PrimaryBackup
	if sc.Protocol == Active {
		scheme = baseline.Active
	}
	netcfg := netConfig(sc, seed)
	c := baseline.NewCluster(baseline.ClusterConfig{
		Scheme:    scheme,
		Replicas:  sc.Replicas,
		Seed:      seed,
		Net:       netcfg,
		Network:   scratch.take(netcfg),
		Handler:   DivergingHandler(),
		SyncDelay: sc.SyncDelay,
	})
	defer c.Stop()

	clk := c.Clock()
	clk.Enter()
	timedOut, disarm := watchdog(sc, clk, c.Net.Close)
	if sc.Plan != nil {
		sc.Plan.Apply(c)
	}
	start := clk.Now()
	replied := true
	for _, r := range reqs {
		if c.Client.SubmitUntilSuccess(r) == "" {
			replied = false
		}
	}
	disarm()
	simTime := clk.Now() - start
	clk.Sleep(settleFor(sc))
	msgs := c.Net.TotalSent() // fixed virtual instant; see executeXAbility
	snap := sc.Net.Metrics.Snapshot()
	clk.Exit()
	c.Net.Quiesce()

	// Active replication keeps executing after the first reply returns to
	// the client; wait for the audit to stabilize so the outcome reports
	// the protocol's steady state.
	logged, _ := c.Client.Log()
	audit := func() int {
		total := 0
		for _, r := range logged {
			total += c.Env.InForce(r.Action, r.EffectiveInput())
		}
		return total
	}
	waitStable(clk, 2*time.Second, audit)

	// Snapshot history and audit at a pinned virtual instant: the
	// zero-length sleep returns via the pump, which only fires when every
	// other attached goroutine is blocked — so nothing is mid-step while
	// the snapshots are read (see executeXAbility).
	clk.Enter()
	clk.Sleep(0)
	trace := c.Observer.History()
	effects := audit()
	c.Stop() // while attached; see executeXAbility
	clk.Exit()
	o := outcomeFrom(sc, seed, reqs, trace, replied)
	o.TimedOut = timedOut()
	xable := len(logged) > 0
	for _, r := range logged {
		if !rawXAble(trace, r) {
			xable = false
		}
	}
	o.XAble = xable
	o.Attempts = c.Client.Attempts()
	o.Messages = msgs
	o.SimTime = simTime
	o.EffectsInForce = effects
	o.Obs = snap
	return o
}

// auditEffects sums the environment audit over the workload's distinct
// raw (action, input) pairs: inForce already sums over every round tag of
// a pair, so a repeated request must be counted once, not per submission —
// the dedup rule both the single-cluster and sharded audits share.
func auditEffects(reqs []action.Request, inForce func(action.Name, action.Value) int) int {
	type pair struct {
		a  action.Name
		iv action.Value
	}
	counted := make(map[pair]bool, len(reqs))
	total := 0
	for _, r := range reqs {
		p := pair{r.Action, r.Input}
		if !counted[p] {
			counted[p] = true
			total += inForce(r.Action, r.Input)
		}
	}
	return total
}

// auditDuplicates counts the workload's distinct (action, input) pairs
// whose effect is in force more than once — each such pair is a broken R2:
// some replica applied the effect a second time without cancelling the
// first. This is the restart plane's sharpest probe: a replica that
// replays its log wrongly (re-executing instead of re-folding) duplicates
// effects that the client-visible reply path never inspects.
func auditDuplicates(reqs []action.Request, inForce func(action.Name, action.Value) int) int {
	type pair struct {
		a  action.Name
		iv action.Value
	}
	counted := make(map[pair]bool, len(reqs))
	dups := 0
	for _, r := range reqs {
		p := pair{r.Action, r.Input}
		if !counted[p] {
			counted[p] = true
			if inForce(r.Action, r.Input) > 1 {
				dups++
			}
		}
	}
	return dups
}

// netConfig clones the scenario's network config for one seeded run.
func netConfig(sc Scenario, seed int64) simnet.Config {
	cfg := sc.Net
	cfg.Seed = seed
	cfg.Clock = nil // every run gets its own virtual clock
	return cfg
}

// outcomeFrom fills the history-derived fields shared by both stacks.
func outcomeFrom(sc Scenario, seed int64, reqs []action.Request, h event.History, replied bool) Outcome {
	o := Outcome{
		Scenario: sc.Name,
		Seed:     seed,
		Replied:  replied,
		Requests: len(reqs),
		History:  h,
	}
	if len(reqs) > 0 {
		a := reqs[0].Action
		for _, e := range h {
			if e.Type == event.Start && e.Action == a {
				o.Executions++
			}
			if e.Type == event.Complete && e.Action == action.Cancel(a) {
				o.Cancels++
			}
		}
	}
	return o
}

// waitStable polls probe on the cluster clock until its value has not
// changed for 20ms of simulated time (or the deadline passes). On the
// virtual clock the whole wait costs only the work it overlaps with.
func waitStable(clk vclock.Clock, d time.Duration, probe func() int) {
	clk.Enter()
	defer clk.Exit()
	deadline := clk.Now() + d
	last, since := probe(), clk.Now()
	for clk.Now() < deadline {
		clk.Sleep(2 * time.Millisecond)
		cur := probe()
		if cur != last {
			last, since = cur, clk.Now()
			continue
		}
		if clk.Now()-since > 20*time.Millisecond {
			return
		}
	}
}

// DivergingHandler returns the non-deterministic raw handler baselines
// run: duplicated executions produce diverging outputs ("v1", "v2", …),
// which is exactly what the x-ability checker catches. Each call returns
// a handler with an independent counter.
func DivergingHandler() baseline.Handler {
	var mu sync.Mutex
	n := 0
	return func(req action.Request) action.Value {
		mu.Lock()
		defer mu.Unlock()
		n++
		return action.Value(fmt.Sprintf("v%d", n))
	}
}

// rawXAble checks a baseline history against the request's failure-free
// target, classifying the action as idempotent (the most charitable
// reading for the baseline).
func rawXAble(h event.History, req action.Request) bool {
	reg := action.NewRegistry()
	reg.MustRegister(req.Action, action.KindIdempotent)
	n := reduce.New(reg)
	spec, err := reduce.SpecFor(reg, req)
	if err != nil {
		return false
	}
	ok, _ := n.XAbleTo(h, []reduce.TargetSpec{spec})
	return ok
}
