package scenario

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"xability/internal/simnet"
	"xability/internal/vclock"
)

// firing is one observed fault-op execution: what fired, at which virtual
// instant.
type firing struct {
	At   time.Duration
	Call string
}

// opRecorder is a fake fault-plan Target that timestamps every call on its
// own virtual clock.
type opRecorder struct {
	clk vclock.Clock
	net *simnet.Network

	mu    sync.Mutex
	fired []firing
}

func newOpRecorder() *opRecorder {
	clk := vclock.NewVirtual()
	return &opRecorder{clk: clk, net: simnet.New(simnet.Config{Clock: clk})}
}

func (r *opRecorder) note(call string) {
	r.mu.Lock()
	r.fired = append(r.fired, firing{At: r.clk.Now(), Call: call})
	r.mu.Unlock()
}

func (r *opRecorder) Clock() vclock.Clock       { return r.clk }
func (r *opRecorder) Network() *simnet.Network  { return r.net }
func (r *opRecorder) CrashServer(i int)         { r.note(fmt.Sprintf("crash(%d)", i)) }
func (r *opRecorder) SuspectEverywhere(p simnet.ProcessID, v bool) {
	r.note(fmt.Sprintf("suspect(%s,%v)", p, v))
}
func (r *opRecorder) ClientSuspect(p simnet.ProcessID, v bool) {
	r.note(fmt.Sprintf("clientSuspect(%s,%v)", p, v))
}

// applyAndCollect applies the plan on a fresh virtual clock and returns
// every op firing with its virtual-time instant.
func applyAndCollect(p *Plan) []firing {
	r := newOpRecorder()
	r.clk.Enter()
	p.Apply(r)
	r.clk.Sleep(p.Horizon() + time.Millisecond)
	r.clk.Exit()
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]firing(nil), r.fired...)
}

// opSpec is one generated builder call, applicable to any plan under
// construction.
type opSpec struct {
	apply func(*Plan)
}

// genSpecs draws n random builder calls from the seeded generator —
// crashes, suspicion pulses, client suspicions, recoveries, at times in
// [0, 4ms), including deliberate ties.
func genSpecs(rng *rand.Rand, n int) []opSpec {
	procs := []simnet.ProcessID{"replica-0", "replica-1", "replica-2"}
	specs := make([]opSpec, 0, n)
	for i := 0; i < n; i++ {
		// Quantized times force same-instant ties across specs.
		at := time.Duration(rng.Intn(8)) * 500 * time.Microsecond
		p := procs[rng.Intn(len(procs))]
		switch rng.Intn(4) {
		case 0:
			idx := rng.Intn(3)
			specs = append(specs, opSpec{func(pl *Plan) { pl.CrashAt(at, idx) }})
		case 1:
			specs = append(specs, opSpec{func(pl *Plan) { pl.SuspectAt(at, p) }})
		case 2:
			specs = append(specs, opSpec{func(pl *Plan) { pl.ClientSuspectAt(at, p) }})
		default:
			specs = append(specs, opSpec{func(pl *Plan) { pl.UnsuspectAt(at, p) }})
		}
	}
	return specs
}

func buildPlan(specs []opSpec) *Plan {
	p := NewPlan()
	for _, s := range specs {
		s.apply(p)
	}
	return p
}

// TestConcatEqualsHandMergedProperty is the Concat property test: for
// randomly generated plans A and B, A.Concat(B) must execute identically —
// op for op, at every virtual-time instant, same-instant ties included —
// to the plan built by hand from A's builder calls followed by B's.
func TestConcatEqualsHandMergedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		na, nb := 1+rng.Intn(5), 1+rng.Intn(5)
		specsA, specsB := genSpecs(rng, na), genSpecs(rng, nb)

		concat := buildPlan(specsA).Concat(buildPlan(specsB))
		merged := buildPlan(append(append([]opSpec{}, specsA...), specsB...))

		got, want := applyAndCollect(concat), applyAndCollect(merged)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: concat and hand-merged diverge\nconcat: %v\nmerged: %v\nplan:\n%s",
				trial, got, want, concat)
		}
		if len(got) == 0 {
			t.Fatalf("trial %d: no ops fired", trial)
		}
	}
}

// TestConcatVariadicAndEmpty pins the edge cases: multiple operands, empty
// and nil operands, and a nil receiver.
func TestConcatVariadicAndEmpty(t *testing.T) {
	a := NewPlan().CrashAt(time.Millisecond, 0)
	b := NewPlan().SuspectAt(2*time.Millisecond, "replica-1")
	c := NewPlan().HealAt(3 * time.Millisecond)

	all := a.Concat(b, nil, NewPlan(), c)
	if got := len(all.Ops()); got != 3 {
		t.Errorf("ops = %d, want 3", got)
	}
	if got := all.Horizon(); got != 3*time.Millisecond {
		t.Errorf("horizon = %v", got)
	}
	var nilPlan *Plan
	if got := nilPlan.Concat(a); len(got.Ops()) != 1 {
		t.Errorf("nil receiver concat = %d ops, want 1", len(got.Ops()))
	}
}

// TestConcatDoesNotMutate pins value semantics: the operands are unchanged
// and later builder calls on the result do not leak back.
func TestConcatDoesNotMutate(t *testing.T) {
	a := NewPlan().CrashAt(time.Millisecond, 0)
	b := NewPlan().SuspectAt(2*time.Millisecond, "replica-1")
	out := a.Concat(b)
	out.CrashAt(5*time.Millisecond, 2)
	if len(a.Ops()) != 1 || len(b.Ops()) != 1 {
		t.Errorf("operands mutated: a=%d b=%d ops", len(a.Ops()), len(b.Ops()))
	}
	if len(out.Ops()) != 3 {
		t.Errorf("result ops = %d, want 3", len(out.Ops()))
	}
}

// TestConcatPropagatesTopologyBound pins the flag: concatenating in a
// partition-bearing plan marks the result topology-bound.
func TestConcatPropagatesTopologyBound(t *testing.T) {
	plain := NewPlan().CrashAt(time.Millisecond, 0)
	parted := NewPlan().PartitionAt(time.Millisecond, []simnet.ProcessID{"replica-0"}, []simnet.ProcessID{"replica-1"})
	if plain.Concat(parted).TopologyBound() != true {
		t.Error("topology-bound flag lost in concat")
	}
	if plain.Concat(plain).TopologyBound() {
		t.Error("plain concat spuriously topology-bound")
	}
}

// TestConcatScenarioExecution is the end-to-end property: executing a
// scenario under a concatenated plan equals executing it under the
// hand-built merged plan — same outcome, same history.
func TestConcatScenarioExecution(t *testing.T) {
	crash := NewPlan().CrashAt(2*time.Millisecond, 0)
	storm := NewPlan().DelayStormAt(500*time.Microsecond, 2*time.Millisecond, 8)
	merged := NewPlan().
		CrashAt(2*time.Millisecond, 0).
		DelayStormAt(500*time.Microsecond, 2*time.Millisecond, 8)

	sc, _ := Get("crash-failover")
	sc.Name = "concat-test"
	scA, scB := sc, sc
	scA.Plan = crash.Concat(storm)
	scB.Plan = merged
	a, b := Execute(scA, 11), Execute(scB, 11)
	if len(a.History) != len(b.History) {
		t.Fatalf("histories differ: %d vs %d events", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history[%d]: %v vs %v", i, a.History[i], b.History[i])
		}
	}
	a.History, b.History = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("outcomes differ:\n%+v\n%+v", a, b)
	}
}
