package scenario

import (
	"reflect"
	"testing"
	"time"

	"xability/internal/core"
	"xability/internal/simnet"
)

// TestCTOrphanedProposerLiveness pins a CT consensus deadlock found by the
// restart-random sweep (seed 5, shrunk to the fixed schedule below): the
// round-2 owner executes, broadcasts its phase-1 estimate, and crashes
// before the commit — orphaning an instance every survivor discovered
// passively, with ⊥ estimates. The phase-2 coordinator gather requires at
// least one real estimate, and before the fix retransmissions resent the
// message snapshotted at round start (still ⊥) while the dedup ignored the
// late real Propose, so the gather wedged forever. The fix rebuilds
// retransmissions from live instance state and lets a later real estimate
// upgrade a ⊥ one in the gather. A regression shows up as TimedOut here,
// not as a hang, thanks to the Deadline watchdog.
func TestCTOrphanedProposerLiveness(t *testing.T) {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	sc := Scenario{
		Name:        "ct-orphaned-proposer",
		Description: "owner crashes after phase-1 broadcast; survivors must still decide",
		Consensus:   core.ConsensusCT,
		Durable:     true,
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			PartitionAt(us(701754), []simnet.ProcessID{"replica-0"}, []simnet.ProcessID{"replica-1", "replica-2", "client"}).
			SuspectAt(us(701754), "replica-0").
			ClientSuspectAt(us(701754), "replica-0").
			HealAt(us(2469558)).
			UnsuspectAt(us(2769558), "replica-0").
			CrashAt(us(2842150), 1),
		Settle:   20 * time.Millisecond,
		Deadline: 200 * time.Millisecond,
	}
	o := Execute(sc, 5)
	if o.TimedOut {
		t.Fatal("run hit the deadline watchdog: the crash-orphaned CT instance deadlocked again")
	}
	if !o.Replied || !o.XAble {
		t.Fatalf("replied=%v x-able=%v, want both: %+v", o.Replied, o.XAble, o.Report)
	}
	if o.EffectsInForce != 1 {
		t.Fatalf("effects in force = %d, want exactly 1", o.EffectsInForce)
	}
}

// TestRestartNeverCrashedIsNoOp pins RestartAt's contract on a live
// replica: RestartServer reports false and the run is bit-equal — SimTime
// and message counts included — to the same run without the op. The
// schedule gains one discrete no-op event and nothing else.
func TestRestartNeverCrashedIsNoOp(t *testing.T) {
	base := Scenario{
		Name:      "restart-live-noop",
		Consensus: core.ConsensusCT,
		Durable:   true,
		Failures:  []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Settle:    20 * time.Millisecond,
	}
	fired := false
	restarted := true
	withOp := base
	withOp.Plan = NewPlan().add(3*time.Millisecond, "restart live replica 1", func(tg Target) {
		fired = true
		restarted = tg.(Restarter).RestartServer(1)
	})
	for seed := int64(1); seed <= 3; seed++ {
		plain := Execute(base, seed)
		noop := Execute(withOp, seed)
		plain.History, noop.History = nil, nil
		if !reflect.DeepEqual(plain, noop) {
			t.Errorf("seed %d: restart-on-live run differs from plain run:\nplain: %+v\nnoop:  %+v",
				seed, plain, noop)
		}
	}
	if !fired {
		t.Fatal("the restart op never fired")
	}
	if restarted {
		t.Error("RestartServer on a never-crashed replica returned true, want false")
	}
}

// TestRestartMinoritySweepExactlyOnce is the claim-at-scale version of the
// restart-minority row: across a seed population, crash→restart of the
// owner keeps effects exactly once, the duplicate-replay audit stays
// clean, and the write-ahead log actually carried state (a durable run
// with zero appends would mean recovery was never exercised).
func TestRestartMinoritySweepExactlyOnce(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	sc, ok := Get("restart-minority")
	if !ok {
		t.Fatal("restart-minority not registered")
	}
	d := Sweep(sc, Seeds(1, n), 0)
	if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
		t.Errorf("x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
			d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
	}
	if d.Effects[1] != n {
		t.Errorf("effects histogram %v, want all mass on 1", d.Effects)
	}
	if d.ReplayDuplicates != 0 {
		t.Errorf("%d runs re-applied an already-in-force effect after restart, want 0", d.ReplayDuplicates)
	}
	if d.WALAppends == 0 {
		t.Error("no WAL appends across a durable sweep; stable storage was never written")
	}
}

// TestRestartOutcomesByteDeterministic extends the reset-and-rerun
// contract to the durable scenarios: a crash→restart run on a recycled
// network must be bit-equal to a fresh-world Execute of the same
// (scenario, seed) — reviving a process may not disturb the per-sender
// delay streams or the WAL accounting.
func TestRestartOutcomesByteDeterministic(t *testing.T) {
	for _, name := range []string{"restart-minority", "restart-random"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		scratch := &runScratch{}
		for seed := int64(1); seed <= 5; seed++ {
			fresh := Execute(sc, seed)
			reused := executeTracedWith(sc, seed, nil, nil, scratch)
			fresh.History, reused.History = nil, nil
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("%s seed %d: reused-network outcome differs from fresh run:\nfresh:  %+v\nreused: %+v",
					name, seed, fresh, reused)
			}
		}
		if scratch.net == nil {
			t.Errorf("%s: scratch abandoned its network (Reset failed); reuse never engaged", name)
		}
	}
}
