package scenario

import "testing"

// TestDelayStormHeartbeatRecoversXAbility is the end-to-end ◇P test: the
// delay-storm schedule runs against the *real* heartbeat failure detectors
// — no scripted suspicion pulses anywhere. The storm stretches heartbeat
// gaps past the suspicion timeout, so replicas and client genuinely
// (falsely) suspect each other mid-run, dragging the protocol toward its
// active flavor; each false suspicion doubles the suspected peer's timeout
// (the eventual-accuracy path), and once the timeout outgrows the storm
// the run must settle back to exactly-once.
func TestDelayStormHeartbeatRecoversXAbility(t *testing.T) {
	sc, ok := Get("delay-storm-hb")
	if !ok {
		t.Fatal("delay-storm-hb not registered")
	}
	stormBit := false
	for seed := int64(1); seed <= 8; seed++ {
		o := Execute(sc, seed)
		if !o.XAble || !o.Replied {
			t.Errorf("seed %d: x-able=%v replied=%v — accuracy did not recover: %+v",
				seed, o.XAble, o.Replied, o.Report)
		}
		if o.EffectsInForce != 1 {
			t.Errorf("seed %d: effects in force = %d, want exactly 1", seed, o.EffectsInForce)
		}
		// The storm must actually bite: concurrent executions (replica-side
		// false suspicions) or client failovers (client-side ones).
		if o.Executions >= 2 || o.Attempts >= 2 {
			stormBit = true
		}
	}
	if !stormBit {
		t.Error("no seed showed storm-induced suspicions; the scenario is not exercising the ◇P path")
	}
}

// TestPartitionHeartbeatRecoversXAbility closes the heartbeat-partition
// row: the owner is cut off under *real* ◇P detectors — no scripted
// suspicion anywhere — so the suspicion that lets the majority move on
// arises endogenously from starved heartbeats, and after the heal the
// resumed beats (with doubled timeouts) restore accuracy. X-ability must
// recover end to end on every seed.
func TestPartitionHeartbeatRecoversXAbility(t *testing.T) {
	sc, ok := Get("partition-hb")
	if !ok {
		t.Fatal("partition-hb not registered")
	}
	cutBit := false
	for seed := int64(1); seed <= 8; seed++ {
		o := Execute(sc, seed)
		if !o.XAble || !o.Replied {
			t.Errorf("seed %d: x-able=%v replied=%v — x-ability did not recover after heal: %+v",
				seed, o.XAble, o.Replied, o.Report)
		}
		if o.EffectsInForce != 1 {
			t.Errorf("seed %d: effects in force = %d, want exactly 1", seed, o.EffectsInForce)
		}
		// The cut must actually bite: the isolated owner forces client
		// failover (extra attempts) or a second executor.
		if o.Executions >= 2 || o.Attempts >= 2 {
			cutBit = true
		}
	}
	if !cutBit {
		t.Error("no seed showed partition-induced suspicion; the scenario is not exercising the ◇P path")
	}
}

// TestPartitionHeartbeatSweep is the claim-at-scale version of the
// heartbeat-partition row.
func TestPartitionHeartbeatSweep(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	sc, _ := Get("partition-hb")
	d := Sweep(sc, Seeds(900, n), 0)
	if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
		t.Errorf("x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
			d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
	}
	if d.Effects[1] != n {
		t.Errorf("effects histogram %v, want all mass on 1", d.Effects)
	}
}

// TestDelayStormHeartbeatSweep is the claim-at-scale version: a seed
// population of the heartbeat storm must hold at rate 1.0.
func TestDelayStormHeartbeatSweep(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	sc, _ := Get("delay-storm-hb")
	d := Sweep(sc, Seeds(300, n), 0)
	if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
		t.Errorf("x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
			d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
	}
	if d.Effects[1] != n {
		t.Errorf("effects histogram %v, want all mass on 1", d.Effects)
	}
}
