package scenario

import (
	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/shard"
	"xability/internal/simnet"
	"xability/internal/sm"
	"xability/internal/vclock"
	"xability/internal/workload"
)

// shardedTarget adapts a shard.Cluster to the fault plane. It satisfies
// Target — unqualified ops reach it and fan out per group via eachGroup —
// and Sharded, which is how shard-qualified ops find single groups.
type shardedTarget struct{ c *shard.Cluster }

func (t shardedTarget) Clock() vclock.Clock { return t.c.Clock() }

// Network returns the first group's network. Plan ops never call it on a
// sharded target (the link ops fan out through eachGroup / shardOf);
// direct callers wanting one group's fault plane should use
// ShardTarget(s).Network().
func (t shardedTarget) Network() *simnet.Network { return t.c.Group(0).Net }

func (t shardedTarget) CrashServer(i int) {
	for s := 0; s < t.c.Shards(); s++ {
		t.c.Group(s).CrashServer(i)
	}
}

func (t shardedTarget) SuspectEverywhere(target simnet.ProcessID, v bool) {
	for s := 0; s < t.c.Shards(); s++ {
		t.c.Group(s).SuspectEverywhere(target, v)
	}
}

func (t shardedTarget) ClientSuspect(target simnet.ProcessID, v bool) {
	for s := 0; s < t.c.Shards(); s++ {
		t.c.Group(s).ClientSuspect(target, v)
	}
}

func (t shardedTarget) NumShards() int           { return t.c.Shards() }
func (t shardedTarget) ShardTarget(s int) Target { return t.c.Group(s) }

// ApplySharded schedules the plan against a sharded deployment, with the
// same clock-held calling convention as Plan.Apply.
func (p *Plan) ApplySharded(c *shard.Cluster) { p.Apply(shardedTarget{c}) }

// executeSharded runs a scenario on the sharded runtime: Scenario.Shards
// replica groups behind the keyspace router, each group its own
// core.Cluster (own network, environment, bank) on one shared virtual
// clock. The workload is routed by account key and the per-shard streams
// run concurrently, so simulated time measures aggregate throughput. The
// verdict is the merged checker's: per-shard R2–R4 plus the global
// exactly-once-routing audit.
func executeSharded(sc Scenario, seed int64, reqs []action.Request) Outcome {
	banks := make([]*workload.Bank, sc.Shards)
	for s := range banks {
		banks[s] = workload.NewBank(sc.Accounts, sc.Opening)
	}
	c := shard.New(shard.Config{
		Shards:            sc.Shards,
		Replicas:          sc.Replicas,
		Seed:              seed,
		Net:               netConfig(sc, seed),
		Consensus:         sc.Consensus,
		Detector:          sc.Detector,
		HeartbeatInterval: sc.HeartbeatInterval,
		Registry:          workload.Registry(),
		Setup:             func(s int) func(m *sm.Machine) { return banks[s].Setup() },
	})
	defer c.Stop()
	for s := 0; s < c.Shards(); s++ {
		for _, f := range sc.Failures {
			c.Group(s).Env.SetFailures(f.Action, f.Prob, f.Budget, f.AfterProb)
		}
	}

	clk := c.Clock()
	clk.Enter()
	timedOut, disarm := watchdog(sc, clk, c.CloseNets)
	if sc.Plan != nil {
		sc.Plan.Apply(shardedTarget{c})
	}
	start := clk.Now()
	_, replied := c.Router.CallAll(reqs)
	disarm()
	simTime := clk.Now() - start
	clk.Sleep(settleFor(sc))
	// Observations — send counters, histories, the audit — are all read at
	// the settle horizon while still attached: the pump just woke this
	// goroutine, so every protocol goroutine in every group is blocked and
	// the snapshots are taken at one fixed virtual instant (see
	// executeXAbility).
	msgs := c.TotalSent()
	hs := c.Histories()
	// The audit spans every group's environment: the owner accounts for
	// the effect, and a mis-routed duplicate applied by a non-owner
	// inflates the count instead of hiding.
	effects := auditEffects(reqs, c.EffectsInForce)
	// Stop while attached so the groups' periodic loops cannot free-run
	// against the (expensive) merged verification below — see
	// executeXAbility.
	c.Stop()
	clk.Exit()
	c.Quiesce()

	rep := c.VerifyHistories(workload.Registry(), hs)
	var merged event.History
	for _, h := range hs {
		merged = append(merged, h...)
	}
	o := outcomeFrom(sc, seed, reqs, merged, replied)
	o.TimedOut = timedOut()
	o.Shards = sc.Shards
	o.ShardReports = rep.Shards
	o.RoutingExact = rep.RoutingExact
	o.XAble = rep.XAble()
	o.Attempts = c.Attempts()
	o.Messages = msgs
	o.SimTime = simTime
	o.EffectsInForce = effects
	return o
}
