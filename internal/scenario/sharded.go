package scenario

import (
	"xability/internal/action"
	"xability/internal/event"
	"xability/internal/shard"
	"xability/internal/simnet"
	"xability/internal/sm"
	"xability/internal/vclock"
	"xability/internal/workload"
)

// shardedTarget adapts a shard.Cluster to the fault plane. It satisfies
// Target — unqualified ops reach it and fan out per group via eachGroup —
// and Sharded, which is how shard-qualified ops find single groups.
type shardedTarget struct{ c *shard.Cluster }

func (t shardedTarget) Clock() vclock.Clock { return t.c.Clock() }

// Network returns the first group's network. Plan ops never call it on a
// sharded target (the link ops fan out through eachGroup / shardOf);
// direct callers wanting one group's fault plane should use
// ShardTarget(s).Network().
func (t shardedTarget) Network() *simnet.Network { return t.c.Group(0).Net }

func (t shardedTarget) CrashServer(i int) {
	for s := 0; s < t.c.Shards(); s++ {
		t.c.Group(s).CrashServer(i)
	}
}

func (t shardedTarget) SuspectEverywhere(target simnet.ProcessID, v bool) {
	for s := 0; s < t.c.Shards(); s++ {
		t.c.Group(s).SuspectEverywhere(target, v)
	}
}

func (t shardedTarget) ClientSuspect(target simnet.ProcessID, v bool) {
	for s := 0; s < t.c.Shards(); s++ {
		t.c.Group(s).ClientSuspect(target, v)
	}
}

func (t shardedTarget) NumShards() int           { return t.c.Shards() }
func (t shardedTarget) ShardTarget(s int) Target { return t.c.Group(s) }

// ApplySharded schedules the plan against a sharded deployment, with the
// same clock-held calling convention as Plan.Apply.
func (p *Plan) ApplySharded(c *shard.Cluster) { p.Apply(shardedTarget{c}) }

// takeGroups returns per-group networks ready for a seeded sharded run,
// plus the fresh shared clock they run on — the sharded extension of
// runScratch.take. On reuse each group's network is recycled in shard
// order via simnet.ResetShared (the first drain quiesces the old shared
// clock; the rest return immediately); the first call, or a shard-count
// change, builds fresh networks that later seeds then recycle. A nil
// return means build-from-scratch: the caller lets shard.New deploy its
// own world (a network whose previous run failed to wind down is
// abandoned rather than risked, mirroring take).
func (s *runScratch) takeGroups(base simnet.Config, seed int64, shards int) ([]*simnet.Network, vclock.Clock) {
	if s == nil {
		return nil, nil
	}
	clk := vclock.NewVirtual()
	cfgFor := func(g int) simnet.Config {
		cfg := base
		cfg.Clock = clk
		cfg.Seed = shard.GroupSeed(seed, int64(g))
		return cfg
	}
	if len(s.groups) == shards {
		for g, net := range s.groups {
			if !net.ResetShared(cfgFor(g)) {
				s.groups = nil
				return nil, nil
			}
		}
		return s.groups, clk
	}
	s.groups = make([]*simnet.Network, shards)
	for g := range s.groups {
		s.groups[g] = simnet.New(cfgFor(g))
	}
	return s.groups, clk
}

// shardConfig assembles one seeded sharded deployment config, with the
// scratch's recycled per-group networks when available. accounts sizes
// each group's bank (open-loop runs size it from the arrival spec).
func shardConfig(sc Scenario, seed int64, scratch *runScratch, accounts int) shard.Config {
	banks := make([]*workload.Bank, sc.Shards)
	for s := range banks {
		banks[s] = workload.NewBank(accounts, sc.Opening)
	}
	netCfg := netConfig(sc, seed)
	nets, sharedClk := scratch.takeGroups(netCfg, seed, sc.Shards)
	if sharedClk != nil {
		netCfg.Clock = sharedClk
	}
	return shard.Config{
		Shards:            sc.Shards,
		Replicas:          sc.Replicas,
		Seed:              seed,
		Net:               netCfg,
		Networks:          nets,
		Consensus:         sc.Consensus,
		Detector:          sc.Detector,
		HeartbeatInterval: sc.HeartbeatInterval,
		Registry:          workload.Registry(),
		Setup:             func(s int) func(m *sm.Machine) { return banks[s].Setup() },
		Batch:             sc.Batch,
		Costs:             sc.Costs,
		Durable:           sc.Durable,
		WALSync:           sc.WALSync,
		WALSnapshotSync:   sc.WALSnapshotSync,
		WALCompact:        sc.WALCompact,
	}
}

// executeSharded runs a scenario on the sharded runtime: Scenario.Shards
// replica groups behind the keyspace router, each group its own
// core.Cluster (own network, environment, bank) on one shared virtual
// clock. The workload is routed by account key and the per-shard streams
// run concurrently, so simulated time measures aggregate throughput. The
// verdict is the merged checker's: per-shard R2–R4 plus the global
// exactly-once-routing audit.
func executeSharded(sc Scenario, seed int64, reqs []action.Request, scratch *runScratch) Outcome {
	c := shard.New(shardConfig(sc, seed, scratch, sc.Accounts))
	defer c.Stop()
	for s := 0; s < c.Shards(); s++ {
		for _, f := range sc.Failures {
			c.Group(s).Env.SetFailures(f.Action, f.Prob, f.Budget, f.AfterProb)
		}
	}

	clk := c.Clock()
	clk.Enter()
	timedOut, disarm := watchdog(sc, clk, c.CloseNets)
	if sc.Plan != nil {
		sc.Plan.Apply(shardedTarget{c})
	}
	start := clk.Now()
	_, replied := c.Router.CallAll(reqs)
	disarm()
	simTime := clk.Now() - start
	settleRun(sc, clk, func() int {
		n := 0
		for s := 0; s < c.Shards(); s++ {
			n += c.Group(s).Env.PendingOutcome()
		}
		return n
	})
	// Observations — send counters, histories, the audit — are all read at
	// the settle horizon while still attached: the pump just woke this
	// goroutine, so every protocol goroutine in every group is blocked and
	// the snapshots are taken at one fixed virtual instant (see
	// executeXAbility).
	msgs := c.TotalSent()
	hs := c.Histories()
	// The audit spans every group's environment: the owner accounts for
	// the effect, and a mis-routed duplicate applied by a non-owner
	// inflates the count instead of hiding.
	effects := auditEffects(reqs, c.EffectsInForce)
	wstats := c.WALStats()
	snap := sc.Net.Metrics.Snapshot()
	// Stop while attached so the groups' periodic loops cannot free-run
	// against the (expensive) merged verification below — see
	// executeXAbility.
	c.Stop()
	clk.Exit()
	c.Quiesce()

	rep := c.VerifyHistories(workload.Registry(), hs)
	var merged event.History
	for _, h := range hs {
		merged = append(merged, h...)
	}
	o := outcomeFrom(sc, seed, reqs, merged, replied)
	o.TimedOut = timedOut()
	o.Shards = sc.Shards
	o.ShardReports = rep.Shards
	o.RoutingExact = rep.RoutingExact
	o.XAble = rep.XAble()
	o.Attempts = c.Attempts()
	o.Messages = msgs
	o.SimTime = simTime
	o.EffectsInForce = effects
	o.WALAppends = wstats.Appends
	o.WALSyncTime = wstats.SyncTime
	o.WALCompactions = wstats.Compactions
	o.WALLiveRecords = wstats.LiveRecords
	o.Obs = snap
	return o
}
