package scenario

import (
	"fmt"
	"sync"
	"time"

	"xability/internal/action"
	"xability/internal/core"
	"xability/internal/event"
	"xability/internal/shard"
	"xability/internal/verify"
	"xability/internal/workload"
)

// openLoopSpec resolves the scenario's arrival spec: an unset Accounts
// inherits the scenario's (already defaulted) account count, so the bank
// the replicas serve always covers the keys the generator draws.
func openLoopSpec(sc Scenario) workload.OpenLoopSpec {
	spec := *sc.OpenLoop
	if spec.Accounts <= 0 {
		spec.Accounts = sc.Accounts
	}
	return spec
}

// splitArrivals turns an arrival schedule into parallel offset/request
// slices (the Station.Drive calling convention).
func splitArrivals(arrivals []workload.Arrival) ([]time.Duration, []action.Request) {
	ats := make([]time.Duration, len(arrivals))
	reqs := make([]action.Request, len(arrivals))
	for i, a := range arrivals {
		ats[i], reqs[i] = a.At, a.Req
	}
	return ats, reqs
}

// executeOpenLoop runs an open-loop scenario on the single-cluster
// runtime: a seeded arrival schedule of independent single-request
// sessions driven through one core.Station, instead of the closed loop's
// one-at-a-time client. Offered load is therefore fixed by the spec, not
// by service latency — the run measures what the protocol does when work
// keeps arriving regardless of how fast it finishes (saturation, queueing,
// batching leverage). Verification runs under the concurrent per-request
// relaxation: completions interleave, so there is no sequential form to
// check, but every session must still be exactly-once on its own.
func executeOpenLoop(sc Scenario, seed int64, scratch *runScratch) Outcome {
	spec := openLoopSpec(sc)
	arrivals := workload.GenerateOpenLoop(spec, seed)
	ats, reqs := splitArrivals(arrivals)

	bank := workload.NewBank(spec.Accounts, sc.Opening)
	netcfg := netConfig(sc, seed)
	c := core.NewCluster(core.ClusterConfig{
		Replicas:  sc.Replicas,
		Seed:      seed,
		Net:       netcfg,
		Network:   scratch.take(netcfg),
		Consensus: sc.Consensus,
		Detector:  sc.Detector,
		Registry:  workload.Registry(),
		Setup:     bank.Setup(),
		Batch:     sc.Batch,
		Costs:     sc.Costs,

		HeartbeatInterval: sc.HeartbeatInterval,
	})
	defer c.Stop()
	for _, f := range sc.Failures {
		c.Env.SetFailures(f.Action, f.Prob, f.Budget, f.AfterProb)
	}
	st := c.OpenStation()

	clk := c.Clock()
	clk.Enter()
	timedOut, disarm := watchdog(sc, clk, c.Net.Close)
	if sc.Plan != nil {
		sc.Plan.Apply(c)
	}
	start := clk.Now()
	completed := st.Drive(ats, reqs)
	disarm()
	simTime := clk.Now() - start
	settleRun(sc, clk, c.Env.PendingOutcome)
	// Snapshots at the settle horizon, while attached — see
	// executeXAbility for why this pins determinism.
	msgs := c.Net.TotalSent()
	h := c.Observer.History()
	effects := auditEffects(reqs, c.Env.InForceTotal)
	lat := workload.SummarizeLatencies(st.Latencies())
	snap := sc.Net.Metrics.Snapshot()
	c.Stop()
	clk.Exit()
	c.Net.Quiesce()

	logged, replies := st.Log()
	rep := verify.Check(verify.Run{
		Registry:       workload.Registry(),
		Requests:       logged,
		Replies:        replies,
		History:        h,
		SubmitAttempts: st.Attempts(),
		Concurrent:     true,
	})
	o := outcomeFrom(sc, seed, reqs, h, completed == len(reqs))
	o.TimedOut = timedOut()
	o.XAble = rep.R3Strict || rep.R3Projected
	o.Report = rep
	o.Attempts = st.Attempts()
	o.Messages = msgs
	o.SimTime = simTime
	o.EffectsInForce = effects
	o.Latency = lat
	o.Obs = snap
	return o
}

// executeOpenLoopSharded is the sharded open-loop run: the arrival
// schedule is partitioned by ring owner up front and each group gets its
// own station, so sessions flow straight to their key's group without the
// router's per-request goroutine discipline serializing against the
// arrival pacing. The verdict is per-shard concurrent verification plus a
// routing audit over the completion logs (every session completed on its
// key's ring owner, no session in two groups).
func executeOpenLoopSharded(sc Scenario, seed int64, scratch *runScratch) Outcome {
	spec := openLoopSpec(sc)
	arrivals := workload.GenerateOpenLoop(spec, seed)

	c := shard.New(shardConfig(sc, seed, scratch, spec.Accounts))
	defer c.Stop()
	for s := 0; s < c.Shards(); s++ {
		for _, f := range sc.Failures {
			c.Group(s).Env.SetFailures(f.Action, f.Prob, f.Budget, f.AfterProb)
		}
	}

	shards := c.Shards()
	ats := make([][]time.Duration, shards)
	sreqs := make([][]action.Request, shards)
	all := make([]action.Request, 0, len(arrivals))
	for _, a := range arrivals {
		s := c.Ring().Owner(shard.InputKey(a.Req))
		ats[s] = append(ats[s], a.At)
		sreqs[s] = append(sreqs[s], a.Req)
		all = append(all, a.Req)
	}
	stations := make([]*core.Station, shards)
	for s := range stations {
		stations[s] = c.Group(s).OpenStation()
	}

	clk := c.Clock()
	clk.Enter()
	timedOut, disarm := watchdog(sc, clk, c.CloseNets)
	if sc.Plan != nil {
		sc.Plan.Apply(shardedTarget{c})
	}
	start := clk.Now()
	// One driver goroutine per group; join on the shared clock's condition
	// (the Drive goroutines always hold pending timers, so the untimed
	// wait cannot starve the virtual clock).
	var mu sync.Mutex
	cond := clk.NewCond(&mu)
	done, completed := 0, 0
	for s := range stations {
		s := s
		clk.Go(func() {
			n := stations[s].Drive(ats[s], sreqs[s])
			mu.Lock()
			done++
			completed += n
			mu.Unlock()
			cond.Broadcast()
		})
	}
	mu.Lock()
	for done < len(stations) {
		cond.Wait()
	}
	mu.Unlock()
	disarm()
	simTime := clk.Now() - start
	settleRun(sc, clk, func() int {
		n := 0
		for s := 0; s < c.Shards(); s++ {
			n += c.Group(s).Env.PendingOutcome()
		}
		return n
	})
	// Snapshots at the settle horizon, while attached (see
	// executeXAbility).
	msgs := c.TotalSent()
	hs := c.Histories()
	effects := auditEffects(all, c.EffectsInForce)
	var lats []time.Duration
	for _, st := range stations {
		lats = append(lats, st.Latencies()...)
	}
	snap := sc.Net.Metrics.Snapshot()
	c.Stop()
	clk.Exit()
	c.Quiesce()

	rep := openLoopShardReport(c, stations, hs)
	var merged event.History
	for _, h := range hs {
		merged = append(merged, h...)
	}
	o := outcomeFrom(sc, seed, all, merged, completed == len(arrivals))
	o.TimedOut = timedOut()
	o.Shards = sc.Shards
	o.ShardReports = rep.Shards
	o.RoutingExact = rep.RoutingExact
	o.XAble = rep.XAble()
	for _, st := range stations {
		o.Attempts += st.Attempts()
	}
	o.Messages = msgs
	o.SimTime = simTime
	o.EffectsInForce = effects
	o.Latency = workload.SummarizeLatencies(lats)
	o.Obs = snap
	return o
}

// openLoopShardReport is the sharded open-loop verdict: each group's
// history verified against its station's completion log under the
// concurrent relaxation, plus the routing audit. The router's Route log
// is empty for open-loop runs (sessions bypass the router), so the audit
// re-derives ownership from the ring: every completed session must have
// run on its key's owner, and no request ID may complete in two groups.
func openLoopShardReport(c *shard.Cluster, stations []*core.Station, hs []event.History) shard.Report {
	rep := shard.Report{RoutingExact: true}
	seen := make(map[string]int)
	for s, st := range stations {
		logged, replies := st.Log()
		rep.Shards = append(rep.Shards, verify.Check(verify.Run{
			Registry:       workload.Registry(),
			Requests:       logged,
			Replies:        replies,
			History:        hs[s],
			SubmitAttempts: st.Attempts(),
			Concurrent:     true,
		}))
		for _, req := range logged {
			if want := c.Ring().Owner(shard.InputKey(req)); want != s {
				rep.RoutingExact = false
				rep.Details = append(rep.Details, fmt.Sprintf(
					"routing: %s completed on shard %d, ring owner is %d", req.ID, s, want))
			}
			if prev, dup := seen[req.ID]; dup {
				rep.RoutingExact = false
				rep.Details = append(rep.Details, fmt.Sprintf(
					"routing: %s completed in shards %d and %d", req.ID, prev, s))
			} else {
				seen[req.ID] = s
			}
		}
	}
	return rep
}
