package scenario

import (
	"fmt"
	"strings"
	"time"

	"xability/internal/simnet"
)

// Shard-qualified plan operations: the group-scoped half of the fault
// plane (see the Sharded interface). Where the unqualified ops strike
// every group at once, these address single groups or k-of-N subsets —
// crash one group's owner, split-brain two groups of four, storm a subset
// — which is the adversarial vocabulary sharded deployments add.

// CrashShardAt crashes replica r of group shard at the given virtual time.
// The other groups keep serving: the scenario's claim is that a fault
// confined to one group stays confined — the deployment's other shards
// never notice.
func (p *Plan) CrashShardAt(at time.Duration, shard, replica int) *Plan {
	p.shardBound = true
	return p.addIdentified(at, fmt.Sprintf("shard %d: crash replica %d", shard, replica), OpCrash, shard, replica, func(t Target) {
		shardOf(t, shard).CrashServer(replica)
	})
}

// RestartShardAt revives crashed replica r of group shard at the given
// virtual time, on targets whose groups support it (see Restarter): the
// replica's endpoints reopen and a fresh incarnation recovers its durable
// state from the group's write-ahead log. Like RestartAt it is a no-op on
// a never-crashed replica and on groups without stable storage — so a
// whole-shard power cycle is just CrashShardAt × replicas followed by
// staggered RestartShardAts.
func (p *Plan) RestartShardAt(at time.Duration, shard, replica int) *Plan {
	p.shardBound = true
	return p.addIdentified(at, fmt.Sprintf("shard %d: restart replica %d", shard, replica), OpRestart, shard, replica, func(t Target) {
		if r, ok := shardOf(t, shard).(Restarter); ok {
			r.RestartServer(replica)
		}
	})
}

// PartitionShardsAt applies the same in-group partition to each listed
// shard at the given virtual time: sides name processes by their in-group
// IDs ("replica-0", "client", …), identical across groups because every
// group runs on its own network. The correlated form of the split-brain
// schedule: k of N groups lose their owner behind a cut at one instant.
func (p *Plan) PartitionShardsAt(at time.Duration, shards []int, sides ...[]simnet.ProcessID) *Plan {
	var parts []string
	for _, g := range sides {
		ids := make([]string, len(g))
		for i, id := range g {
			ids[i] = string(id)
		}
		parts = append(parts, "{"+strings.Join(ids, " ")+"}")
	}
	p.topologyBound = true
	p.shardBound = true
	name := fmt.Sprintf("shards %v: partition %s", shards, strings.Join(parts, " | "))
	return p.add(at, name, func(t Target) {
		for _, s := range shards {
			shardOf(t, s).Network().Partition(sides...)
		}
	})
}

// StormShardsAt multiplies every message delay by factor on the listed
// groups for a window of the given duration — the correlated delay storm
// hitting k of N groups. No shards listed means all groups (equivalent to
// DelayStormAt).
func (p *Plan) StormShardsAt(at, duration time.Duration, factor float64, shards ...int) *Plan {
	if len(shards) > 0 {
		p.shardBound = true
	}
	set := func(f float64) func(Target) {
		return func(t Target) {
			if len(shards) == 0 {
				eachGroup(t, func(g Target) { g.Network().SetDelayScale(f) })
				return
			}
			for _, s := range shards {
				shardOf(t, s).Network().SetDelayScale(f)
			}
		}
	}
	p.add(at, fmt.Sprintf("shards %v: delay storm ×%g", shards, factor), set(factor))
	return p.add(at+duration, fmt.Sprintf("shards %v: delay storm ends", shards), set(1))
}

// HealShardsAt repairs the link fault plane of the listed groups at the
// given virtual time; no shards listed heals every group.
func (p *Plan) HealShardsAt(at time.Duration, shards ...int) *Plan {
	if len(shards) > 0 {
		p.shardBound = true
	}
	return p.add(at, fmt.Sprintf("shards %v: heal", shards), func(t Target) {
		if len(shards) == 0 {
			eachGroup(t, func(g Target) { g.Network().Heal() })
			return
		}
		for _, s := range shards {
			shardOf(t, s).Network().Heal()
		}
	})
}

// OnShard re-addresses every op of sub to one group: the whole existing
// fault vocabulary — suspicion pulses, partitions, storms, crashes —
// becomes group-scoped without new builders. Ops keep their firing times;
// sub itself is not mutated and may be reused for several shards.
func (p *Plan) OnShard(shard int, sub *Plan) *Plan {
	p.shardBound = true
	if sub != nil {
		p.topologyBound = p.topologyBound || sub.topologyBound
	}
	for _, op := range sub.Ops() {
		op := op
		requalified := op
		requalified.Name = fmt.Sprintf("shard %d: %s", shard, op.Name)
		requalified.Do = func(t Target) { op.Do(shardOf(t, shard)) }
		// Re-addressing scopes the op's identity too: a crash that fanned
		// out to every group now names this one, so the shrinker pairs it
		// with restarts of the same scope only.
		if requalified.Kind != OpOther {
			requalified.Shard = shard
		}
		p.ops = append(p.ops, requalified)
	}
	return p
}

// ShardBound reports whether the plan names explicit shard indices. Such
// plans only make sense against the shard count they were written for;
// overriding the deployment's shard count under them silently changes the
// faults' meaning.
func (p *Plan) ShardBound() bool {
	if p == nil {
		return false
	}
	return p.shardBound
}
