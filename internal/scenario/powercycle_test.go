package scenario

import (
	"reflect"
	"testing"
)

// sweepExactlyOnce drives a registered durable scenario across a seed
// population and requires the full robustness contract: every run
// replies, every run verifies x-able, effects land exactly once, the
// duplicate-replay audit stays clean, and stable storage was actually
// written (a durable sweep with zero appends means recovery was never
// exercised).
func sweepExactlyOnce(t *testing.T, name string, n int) VerdictDistribution {
	t.Helper()
	sc, ok := Get(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	d := Sweep(sc, Seeds(1, n), 0)
	if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
		t.Errorf("%s: x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
			name, d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
	}
	if d.Effects[1] != n {
		t.Errorf("%s: effects histogram %v, want all mass on 1", name, d.Effects)
	}
	if d.ReplayDuplicates != 0 {
		t.Errorf("%s: %d runs re-applied an already-in-force effect after restart, want 0",
			name, d.ReplayDuplicates)
	}
	if d.WALAppends == 0 {
		t.Errorf("%s: no WAL appends across a durable sweep; stable storage was never written", name)
	}
	return d
}

// TestRestartMajoritySweepExactlyOnce: two of three replicas crash and
// restart. For the outage window only one replica is live — no quorum —
// so progress must stall and then resume exactly-once when the logs come
// back.
func TestRestartMajoritySweepExactlyOnce(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	sweepExactlyOnce(t, "restart-majority", n)
}

// TestPowerCycleSweepExactlyOnce is the total-loss claim at scale: all
// replicas crash at one instant, so every decision and applied effect
// must come back from the write-ahead logs alone, and the client's
// retries across the blackout must not double-apply.
func TestPowerCycleSweepExactlyOnce(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	sweepExactlyOnce(t, "power-cycle", n)
}

// TestRandomMajorityAndTotalLossSweeps covers the generator's lifted
// crash budgets: drawn schedules may take down a quorum (or everyone)
// as long as every crash pairs with a restart inside the horizon.
func TestRandomMajorityAndTotalLossSweeps(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	sweepExactlyOnce(t, "restart-random-majority", n)
	sweepExactlyOnce(t, "restart-random-total", n)
}

// TestPowerCycleByteDeterministic extends the reset-and-rerun contract
// to the total-loss scenarios: a power-cycle run on a recycled network
// must be bit-equal to a fresh-world Execute of the same (scenario,
// seed).
func TestPowerCycleByteDeterministic(t *testing.T) {
	for _, name := range []string{"power-cycle", "restart-majority", "restart-random-total"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		scratch := &runScratch{}
		for seed := int64(1); seed <= 5; seed++ {
			fresh := Execute(sc, seed)
			reused := executeTracedWith(sc, seed, nil, nil, scratch)
			fresh.History, reused.History = nil, nil
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("%s seed %d: reused-network outcome differs from fresh run:\nfresh:  %+v\nreused: %+v",
					name, seed, fresh, reused)
			}
		}
	}
}

// TestCompactionIsOutcomeInvariant runs the total-loss scenarios with
// automatic WAL compaction armed (zero snapshot tariff) and requires the
// client-visible outcome to be byte-identical to the uncompacted run:
// recovery replays snapshot-then-suffix instead of the full log, and the
// difference must be invisible everywhere except the storage counters —
// where compaction must actually have fired and reclaimed records.
func TestCompactionIsOutcomeInvariant(t *testing.T) {
	for _, name := range []string{"power-cycle", "restart-random-total"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		compacting := sc
		compacting.WALCompact = 8
		fired := false
		for seed := int64(1); seed <= 10; seed++ {
			plain := Execute(sc, seed)
			folded := Execute(compacting, seed)
			if folded.WALCompactions > 0 {
				fired = true
				if folded.WALLiveRecords >= plain.WALLiveRecords {
					t.Errorf("%s seed %d: compaction fired but reclaimed nothing (%d live vs %d uncompacted)",
						name, seed, folded.WALLiveRecords, plain.WALLiveRecords)
				}
			}
			// Storage counters legitimately differ; everything the client,
			// checker, or auditor sees must not.
			plain.History, folded.History = nil, nil
			plain.WALCompactions, folded.WALCompactions = 0, 0
			plain.WALLiveRecords, folded.WALLiveRecords = 0, 0
			if !reflect.DeepEqual(plain, folded) {
				t.Errorf("%s seed %d: compaction is schedule-visible:\nplain:  %+v\nfolded: %+v",
					name, seed, plain, folded)
			}
		}
		if !fired {
			t.Errorf("%s: no compaction fired across 10 seeds at threshold 8; the invariant was never exercised", name)
		}
	}
}
