package scenario

import (
	"reflect"
	"testing"
	"time"

	"xability/internal/schedule"
)

// TestRecordedReplayByteIdentical is the recorder's regression contract: a
// run replayed verbatim from its own log is byte-identical to the recorded
// run — same history, same effects, same reply log, same verdict, and the
// re-recorded schedule is the log itself. This is what makes a (scenario,
// seed, log) triple a complete, portable reproduction of a run.
func TestRecordedReplayByteIdentical(t *testing.T) {
	for _, name := range []string{"crash-failover", "partition", "pb-crash-failover"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		recLog := schedule.NewLog()
		rec := ExecuteTraced(sc, 17, recLog, nil)

		repLog := schedule.NewLog()
		rep := ExecuteTraced(sc, 17, repLog, &schedule.Replay{Log: recLog})

		if len(rec.History) != len(rep.History) {
			t.Fatalf("%s: history lengths differ: %d vs %d", name, len(rec.History), len(rep.History))
		}
		for i := range rec.History {
			if rec.History[i] != rep.History[i] {
				t.Fatalf("%s: history[%d] differs: %v vs %v", name, i, rec.History[i], rep.History[i])
			}
		}
		a, b := rec, rep
		a.History, b.History = nil, nil
		a.Schedule, b.Schedule = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: outcomes differ under verbatim replay:\nrecorded: %+v\nreplayed: %+v", name, a, b)
		}
		re, rp := recLog.Entries(), repLog.Entries()
		if len(re) != len(rp) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", name, len(re), len(rp))
		}
		for i := range re {
			if re[i] != rp[i] {
				t.Errorf("%s: schedule[%d] differs: %v vs %v", name, i, re[i], rp[i])
			}
		}
	}
}

// TestRecordedScheduleDeterminism pins the recorder itself: two recordings
// of the same (scenario, seed) produce identical logs.
func TestRecordedScheduleDeterminism(t *testing.T) {
	sc, _ := Get("delay-storm")
	l1, l2 := schedule.NewLog(), schedule.NewLog()
	ExecuteTraced(sc, 23, l1, nil)
	ExecuteTraced(sc, 23, l2, nil)
	e1, e2 := l1.Entries(), l2.Entries()
	if len(e1) != len(e2) {
		t.Fatalf("log lengths differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestDeadlineWatchdog pins the run cap: a scenario whose client can never
// be answered (every reply suppressed) terminates at the deadline with
// TimedOut set instead of spinning the virtual clock forever.
func TestDeadlineWatchdog(t *testing.T) {
	sc, _ := Get("nice")
	recLog := schedule.NewLog()
	base := ExecuteTraced(sc, 5, recLog, nil)
	if !base.Replied || base.TimedOut {
		t.Fatalf("baseline should reply in time: %+v", base)
	}

	// Suppress every result delivery to the client: no reply can arrive.
	drop := make(map[int]bool)
	for _, e := range recLog.Entries() {
		if e.To == "client" {
			drop[e.Index] = true
		}
	}
	if len(drop) == 0 {
		t.Fatal("no client-bound deliveries recorded")
	}
	sc.Deadline = 50 * time.Millisecond
	o := ExecuteTraced(sc, 5, nil, &schedule.Replay{Log: recLog, Edit: schedule.SuppressSet(drop)})
	if !o.TimedOut {
		t.Errorf("watchdog did not fire: %+v", o)
	}
	if o.Replied {
		t.Errorf("starved client still replied: %+v", o)
	}
}
