// Package scenario is the declarative adversarial-workload layer: fault
// plans (timed crash/partition/suspicion/delay-storm operations scheduled
// on the virtual clock), a named-scenario registry describing complete
// protocol-under-attack experiments, and a parallel seed-sweep runner that
// reports verdict distributions instead of single runs.
//
// The paper's central claim is that the x-ability protocol survives
// adversarial schedules — crashes, drifting primary/active modes,
// partitions, delay storms — that break primary-backup and active
// replication. This package makes those schedules first-class values: a
// Scenario says *what* to attack and how, Execute carries one seed through
// it, and Sweep replays it across thousands of seeds (runs are CPU-bound
// on the virtual clock) so a claim becomes a rate over a seed population
// rather than an anecdote.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"xability/internal/simnet"
	"xability/internal/vclock"
)

// Target is what a fault plan drives: the cluster surface shared by
// core.Cluster (the x-ability protocol) and baseline.Cluster (the
// primary-backup and active baselines). One plan therefore attacks every
// protocol the repository implements.
type Target interface {
	// Clock is the deployment's clock; ops are scheduled on it.
	Clock() vclock.Clock
	// Network exposes the link fault plane.
	Network() *simnet.Network
	// CrashServer crashes replica i (crash-stop; permanent unless the
	// target also implements Restarter and the plan restarts it).
	CrashServer(i int)
	// SuspectEverywhere injects or clears a suspicion of target at every
	// replica's scripted detector.
	SuspectEverywhere(target simnet.ProcessID, v bool)
	// ClientSuspect injects or clears a suspicion at the client's detector.
	ClientSuspect(target simnet.ProcessID, v bool)
}

// Restarter is the optional crash-recovery surface of a target: reviving a
// crashed replica from stable storage (core.Cluster implements it; the
// baselines, which have no durable state, do not). RestartServer reports
// whether a restart actually happened — false when replica i never
// crashed (RestartAt on a live replica is a no-op, mirroring the
// idempotence of Crash) or when the deployment has no stable storage to
// recover from.
type Restarter interface {
	RestartServer(i int) bool
}

// Sharded is the additional fault surface of a sharded deployment
// (internal/shard behind the scenario runner): many replica groups, each
// a full Target of its own, on one clock. Plans address it two ways:
//
//   - Unqualified ops (CrashAt, PartitionAt, DelayStormAt, …) fan out to
//     every group — a correlated fault striking the whole fleet at one
//     virtual instant.
//   - Shard-qualified ops (CrashShardAt, PartitionShardsAt, StormShardsAt,
//     HealShardsAt, OnShard) address single groups or k-of-N subsets.
//
// A plan using only unqualified ops therefore runs unchanged against a
// single cluster and against any shard count.
type Sharded interface {
	// NumShards is the number of replica groups.
	NumShards() int
	// ShardTarget is group s's own fault surface.
	ShardTarget(s int) Target
}

// eachGroup applies f to every replica group of a sharded target, or to
// the target itself when it is a single cluster — the fan-out primitive
// behind unqualified ops.
func eachGroup(t Target, f func(Target)) {
	if st, ok := t.(Sharded); ok {
		for s := 0; s < st.NumShards(); s++ {
			f(st.ShardTarget(s))
		}
		return
	}
	f(t)
}

// shardOf resolves a shard-qualified op's group. Shard 0 of a non-sharded
// target is the target itself (a single cluster is the 1-shard
// deployment); any other index against a non-sharded target is a plan
// misconfiguration.
func shardOf(t Target, s int) Target {
	if st, ok := t.(Sharded); ok {
		return st.ShardTarget(s)
	}
	if s == 0 {
		return t
	}
	panic(fmt.Sprintf("scenario: plan op addresses shard %d but the target is not sharded", s))
}

// Op is one timed fault operation of a plan.
type Op struct {
	// At is the operation's firing time, measured on the virtual clock
	// from the moment the plan is applied.
	At time.Duration
	// Name describes the operation for humans ("crash replica 0").
	Name string
	// Do performs the operation. It must not block: each op runs as a
	// single discrete event of the schedule.
	Do func(Target)
	// Kind, Replica, and Shard are the op's structural identity, set by
	// the builders for crash and restart ops (Kind is OpCrash or
	// OpRestart; zero for everything else). The shrinker reads them to
	// treat a crash and its paired restart as one edit unit: dropping a
	// crash but keeping its restart (or vice versa) would change the
	// schedule's liveness class, not just shrink it.
	Kind OpKind
	// Replica is the replica index a crash/restart addresses.
	Replica int
	// Shard is the group a crash/restart addresses, or AllShards for
	// unqualified ops that fan out to every group.
	Shard int
}

// OpKind classifies the ops the shrinker must edit structurally.
type OpKind uint8

const (
	// OpOther is every op without pairing semantics.
	OpOther OpKind = iota
	// OpCrash marks CrashAt / CrashShardAt ops.
	OpCrash
	// OpRestart marks RestartAt / RestartShardAt ops.
	OpRestart
)

// AllShards is the Op.Shard value of unqualified crash/restart ops,
// which strike replica i of every group.
const AllShards = -1

// Paired reports whether o and q are the two halves of one
// crash→restart pair: one crash and one restart addressing the same
// replica of the same shard scope. The shrinker removes such pairs as
// single edit units.
func (o Op) Paired(q Op) bool {
	if o.Kind == OpOther || q.Kind == OpOther || o.Kind == q.Kind {
		return false
	}
	return o.Replica == q.Replica && o.Shard == q.Shard
}

// Plan is an ordered fault schedule built with the *At methods and applied
// to a running cluster with Apply. Plans are declarative values: build one
// per scenario and reuse it across seeds — Apply schedules fresh events
// each time and never mutates the plan.
//
// Builder calls may be chained:
//
//	plan := scenario.NewPlan().
//		CrashAt(2*time.Millisecond, 0).
//		PartitionAt(4*time.Millisecond, []simnet.ProcessID{"replica-1"}, []simnet.ProcessID{"replica-2", "client"}).
//		HealAt(9*time.Millisecond)
type Plan struct {
	ops []Op
	// topologyBound marks plans whose ops name explicit process groups
	// (partitions, dropped links): their semantics only hold for the
	// replica set they were written against.
	topologyBound bool
	// shardBound marks plans whose ops name explicit shard indices: their
	// semantics only hold for the shard count they were written against.
	shardBound bool
}

// NewPlan returns an empty fault plan.
func NewPlan() *Plan { return &Plan{} }

func (p *Plan) add(at time.Duration, name string, do func(Target)) *Plan {
	p.ops = append(p.ops, Op{At: at, Name: name, Do: do, Shard: AllShards})
	return p
}

// addIdentified appends an op carrying structural identity (crash and
// restart builders route through it so the shrinker can pair them).
func (p *Plan) addIdentified(at time.Duration, name string, kind OpKind, shard, replica int, do func(Target)) *Plan {
	p.ops = append(p.ops, Op{At: at, Name: name, Do: do, Kind: kind, Replica: replica, Shard: shard})
	return p
}

// CrashAt crashes replica i at the given virtual time. Scripted detectors
// suspect crashed processes automatically (strong completeness), so no
// companion suspicion op is needed. On a sharded target the crash is
// correlated: replica i of every group crashes at that instant.
func (p *Plan) CrashAt(at time.Duration, replica int) *Plan {
	return p.addIdentified(at, fmt.Sprintf("crash replica %d", replica), OpCrash, AllShards, replica, func(t Target) {
		eachGroup(t, func(g Target) { g.CrashServer(replica) })
	})
}

// SuspectAt injects a (false) suspicion of target at every replica's
// detector at the given virtual time — the primitive that drags the
// protocol from its primary-backup flavor toward active replication.
func (p *Plan) SuspectAt(at time.Duration, target simnet.ProcessID) *Plan {
	return p.add(at, fmt.Sprintf("suspect %s", target), func(t Target) {
		eachGroup(t, func(g Target) { g.SuspectEverywhere(target, true) })
	})
}

// ClientSuspectAt injects a suspicion of target at the client's detector,
// making the client fail over to the next replica.
func (p *Plan) ClientSuspectAt(at time.Duration, target simnet.ProcessID) *Plan {
	return p.add(at, fmt.Sprintf("client suspects %s", target), func(t Target) {
		eachGroup(t, func(g Target) { g.ClientSuspect(target, true) })
	})
}

// UnsuspectAt clears suspicions of target everywhere — replicas and client
// — at the given virtual time, ending a false-suspicion pulse. It touches
// detectors only: a crashed process stays crashed (and scripted detectors
// keep suspecting it via strong completeness). Reviving a crashed replica
// is RestartAt's job — the two were once conflated under the name
// "RecoverAt", which read as if it brought processes back.
func (p *Plan) UnsuspectAt(at time.Duration, target simnet.ProcessID) *Plan {
	return p.add(at, fmt.Sprintf("unsuspect %s", target), func(t Target) {
		eachGroup(t, func(g Target) {
			g.SuspectEverywhere(target, false)
			g.ClientSuspect(target, false)
		})
	})
}

// RecoverAt is the deprecated name of UnsuspectAt, kept for existing
// plans.
//
// Deprecated: use UnsuspectAt, which says what the op does (it clears
// suspicions; it does not revive a crashed process — see RestartAt).
func (p *Plan) RecoverAt(at time.Duration, target simnet.ProcessID) *Plan {
	return p.UnsuspectAt(at, target)
}

// RestartAt revives crashed replica i at the given virtual time, on targets
// that support it (see Restarter): the replica's endpoints reopen and a
// fresh incarnation recovers its durable state from the write-ahead log.
// On a never-crashed replica the op is a no-op (the target's contract), so
// a plan may schedule a restart without proving the crash fired first. On
// targets without a restart surface — the baselines — the op does nothing.
// On a sharded target the restart, like CrashAt, is correlated: replica i
// of every group restarts at that instant.
func (p *Plan) RestartAt(at time.Duration, replica int) *Plan {
	return p.addIdentified(at, fmt.Sprintf("restart replica %d", replica), OpRestart, AllShards, replica, func(t Target) {
		eachGroup(t, func(g Target) {
			if r, ok := g.(Restarter); ok {
				r.RestartServer(replica)
			}
		})
	})
}

// PartitionAt splits the network into the given groups at the given
// virtual time: messages between groups are black-holed until a HealAt.
// Processes not listed in any group keep all their links; auxiliary
// endpoints ("p/fd", "p/cons") follow their base process.
func (p *Plan) PartitionAt(at time.Duration, groups ...[]simnet.ProcessID) *Plan {
	var parts []string
	for _, g := range groups {
		ids := make([]string, len(g))
		for i, id := range g {
			ids[i] = string(id)
		}
		parts = append(parts, "{"+strings.Join(ids, " ")+"}")
	}
	p.topologyBound = true
	return p.add(at, "partition "+strings.Join(parts, " | "), func(t Target) {
		eachGroup(t, func(g Target) { g.Network().Partition(groups...) })
	})
}

// DropLinkAt black-holes the link between two processes (both directions)
// at the given virtual time, until a HealAt.
func (p *Plan) DropLinkAt(at time.Duration, a, b simnet.ProcessID) *Plan {
	p.topologyBound = true
	return p.add(at, fmt.Sprintf("drop link %s—%s", a, b), func(t Target) {
		eachGroup(t, func(g Target) { g.Network().DropLink(a, b) })
	})
}

// HealAt repairs the link fault plane — active partition and dropped links
// — at the given virtual time. Traffic black-holed while the faults were
// in force stays lost.
func (p *Plan) HealAt(at time.Duration) *Plan {
	return p.add(at, "heal", func(t Target) {
		eachGroup(t, func(g Target) { g.Network().Heal() })
	})
}

// DelayStormAt multiplies every message delay by factor for a window of
// the given duration starting at the given virtual time, then restores
// calm.
func (p *Plan) DelayStormAt(at, duration time.Duration, factor float64) *Plan {
	p.add(at, fmt.Sprintf("delay storm ×%g", factor), func(t Target) {
		eachGroup(t, func(g Target) { g.Network().SetDelayScale(factor) })
	})
	return p.add(at+duration, "delay storm ends", func(t Target) {
		eachGroup(t, func(g Target) { g.Network().SetDelayScale(1) })
	})
}

// Ops returns a copy of the plan's operations in the order they were
// added. A nil plan has none.
func (p *Plan) Ops() []Op {
	if p == nil {
		return nil
	}
	return append([]Op(nil), p.ops...)
}

// Clone returns an independent copy of the plan: builder calls on the
// clone do not affect the original. The registry hands out clones so a
// fetched scenario can be tweaked without mutating the registered one.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	return &Plan{ops: p.Ops(), topologyBound: p.topologyBound, shardBound: p.shardBound}
}

// Concat returns a new plan holding this plan's ops followed by each given
// plan's ops, in order. Firing times are kept absolute, so concatenation is
// schedule merging, not sequencing: the result executes identically — at
// every virtual-time instant — to a plan whose builder calls were the
// concatenation of the operands' builder calls. Neither receiver nor
// arguments are mutated; nil plans are skipped.
func (p *Plan) Concat(others ...*Plan) *Plan {
	out := p.Clone()
	if out == nil {
		out = NewPlan()
	}
	for _, q := range others {
		if q == nil {
			continue
		}
		out.ops = append(out.ops, q.Ops()...)
		out.topologyBound = out.topologyBound || q.topologyBound
		out.shardBound = out.shardBound || q.shardBound
	}
	return out
}

// Without returns a copy of the plan with the ops at the given indices (in
// Ops() order) removed — the shrinker's plan-edit primitive. A nil plan
// stays nil.
func (p *Plan) Without(drop map[int]bool) *Plan {
	if p == nil {
		return nil
	}
	out := &Plan{topologyBound: p.topologyBound, shardBound: p.shardBound}
	for i, op := range p.ops {
		if !drop[i] {
			out.ops = append(out.ops, op)
		}
	}
	return out
}

// TopologyBound reports whether the plan names explicit process groups
// (PartitionAt, DropLinkAt). Such plans only make sense against the
// replica set they were written for; overriding the replication degree
// under them silently changes the fault's meaning.
func (p *Plan) TopologyBound() bool {
	if p == nil {
		return false
	}
	return p.topologyBound
}

// Horizon returns the firing time of the plan's latest operation. Runs
// that read verdicts should let the schedule settle past it.
func (p *Plan) Horizon() time.Duration {
	var h time.Duration
	for _, op := range p.ops {
		if op.At > h {
			h = op.At
		}
	}
	return h
}

// Apply schedules every operation of the plan on the target's clock,
// relative to the current virtual time. Call it while the schedule is held
// (clock Enter'd, before the workload is submitted) so ops land at the
// declared offsets. Ops added at the same instant fire in the order they
// were added to the plan; the whole schedule stays deterministic because
// each op is one discrete event of the virtual clock.
func (p *Plan) Apply(t Target) {
	clk := t.Clock()
	for _, op := range p.ops {
		do := op.Do
		clk.GoAfter(op.At, func() { do(t) })
	}
}

// String renders the plan as one op per line, sorted by firing time (ties
// keep insertion order), e.g. for xsim's scenario listing.
func (p *Plan) String() string {
	ops := p.Ops()
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	var b strings.Builder
	for i, op := range ops {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%8v  %s", op.At, op.Name)
	}
	return b.String()
}
