package scenario

import (
	"reflect"
	"testing"
)

// TestReusedNetworkBitEqualOutcomes pins the reset-and-rerun contract: a
// run on a recycled network (the sweep workers' per-worker scratch) must
// produce an outcome bit-equal — SimTime included — to a fresh-world
// Execute of the same (scenario, seed). The scenario list crosses the
// deployment shapes reuse must survive: plain scripted runs, the CT
// consensus substrate (extra /cons endpoints), heartbeat detectors (extra
// /fd endpoints), link faults that mutate the partition plane, and
// seed-drawn random fault schedules.
func TestReusedNetworkBitEqualOutcomes(t *testing.T) {
	for _, name := range []string{
		"nice", "crash-failover", "delay-storm", "partition",
		"delay-storm-hb", "random-faults", "pb-crash-failover",
	} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		scratch := &runScratch{}
		for seed := int64(1); seed <= 5; seed++ {
			fresh := Execute(sc, seed)
			reused := executeTracedWith(sc, seed, nil, nil, scratch)
			fresh.History, reused.History = nil, nil
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("%s seed %d: reused-network outcome differs from fresh run:\nfresh:  %+v\nreused: %+v",
					name, seed, fresh, reused)
			}
		}
		if scratch.net == nil {
			t.Errorf("%s: scratch abandoned its network (Reset failed); reuse never engaged", name)
		}
	}
}

// TestReusedShardedNetworksBitEqualOutcomes extends the reset-and-rerun
// contract to the sharded runtime: a sweep worker recycles one network
// per replica group (simnet.ResetShared onto a fresh shared clock), and a
// run on the recycled group set must be bit-equal to a fresh-world
// Execute. The list crosses the sharded shapes reuse must survive: the
// failure-free router path, correlated crashes, the storm's link-fault
// mutation, and the batched open-loop composition.
func TestReusedShardedNetworksBitEqualOutcomes(t *testing.T) {
	for _, name := range []string{
		"shard-nice", "shard-crash-failover", "shard-storm", "shard-open-loop",
	} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		scratch := &runScratch{}
		for seed := int64(1); seed <= 5; seed++ {
			fresh := Execute(sc, seed)
			reused := executeTracedWith(sc, seed, nil, nil, scratch)
			fresh.History, reused.History = nil, nil
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("%s seed %d: reused-network outcome differs from fresh run:\nfresh:  %+v\nreused: %+v",
					name, seed, fresh, reused)
			}
		}
		if scratch.groups == nil {
			t.Errorf("%s: scratch abandoned its group networks (ResetShared failed); reuse never engaged", name)
		}
	}
}

// TestSweepMatchesSingleRuns pins the same contract at the Sweep level:
// the distribution a parallel, network-reusing sweep folds must be exactly
// the one per-seed fresh Executes produce.
func TestSweepMatchesSingleRuns(t *testing.T) {
	sc, _ := Get("crash-failover")
	seeds := Seeds(300, 24)
	d := Sweep(sc, seeds, 4)
	if d.Runs != len(seeds) {
		t.Fatalf("runs = %d, want %d", d.Runs, len(seeds))
	}
	xable, replied := 0, 0
	for _, seed := range seeds {
		o := Execute(sc, seed)
		if o.XAble {
			xable++
		}
		if o.Replied {
			replied++
		}
	}
	if d.XAble != xable || d.Replied != replied {
		t.Errorf("sweep folded x-able %d replied %d; fresh runs give %d/%d",
			d.XAble, d.Replied, xable, replied)
	}
}
