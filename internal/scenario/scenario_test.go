package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"xability/internal/simnet"
)

func TestPlanBuilderAndString(t *testing.T) {
	p := NewPlan().
		CrashAt(2*time.Millisecond, 0).
		PartitionAt(time.Millisecond, []simnet.ProcessID{"replica-0"}, []simnet.ProcessID{"replica-1"}).
		HealAt(5*time.Millisecond).
		DelayStormAt(3*time.Millisecond, time.Millisecond, 10).
		SuspectAt(time.Millisecond, "replica-0").
		UnsuspectAt(4*time.Millisecond, "replica-0")

	// DelayStormAt contributes two ops (start and end of the window).
	if got := len(p.Ops()); got != 7 {
		t.Errorf("ops = %d, want 7", got)
	}
	if got := p.Horizon(); got != 5*time.Millisecond {
		t.Errorf("horizon = %v, want 5ms", got)
	}
	s := p.String()
	for _, want := range []string{"crash replica 0", "partition {replica-0} | {replica-1}", "heal", "delay storm ×10", "suspect replica-0", "unsuspect replica-0"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	// String sorts by firing time: the partition (1ms) precedes the crash
	// (2ms) even though it was added later.
	if crash, part := strings.Index(s, "crash"), strings.Index(s, "partition"); part > crash {
		t.Errorf("plan string not time-sorted:\n%s", s)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	if err := Register(Scenario{}); err == nil {
		t.Error("empty name registered")
	}
	if err := Register(Scenario{Name: "nice"}); err == nil {
		t.Error("duplicate name registered")
	}
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	byName := make(map[string]bool, len(names))
	for _, n := range names {
		byName[n] = true
	}
	for _, want := range append(T1Set(), "suspect", "failures", "sequence", "spectrum-0", "spectrum-3") {
		if !byName[want] {
			t.Errorf("builtin scenario %q not registered", want)
		}
	}
	for _, n := range T1Set() {
		if _, ok := Get(n); !ok {
			t.Errorf("T1 scenario %q not resolvable", n)
		}
	}
}

// TestAdversarialScenariosStayExactlyOnce pins the tentpole claim for the
// new T1 rows: under a partition and under a delay storm the protocol
// still answers the client with exactly one effect in force, and the
// history verifies x-able.
func TestAdversarialScenariosStayExactlyOnce(t *testing.T) {
	for _, name := range []string{"partition", "delay-storm"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		o := Execute(sc, 101)
		if !o.XAble || !o.Replied || o.EffectsInForce != 1 {
			t.Errorf("%s: %+v, want x-able, replied, exactly one effect", name, o)
		}
		if o.Executions < 2 {
			t.Errorf("%s: executions = %d; the schedule should force concurrent execution", name, o.Executions)
		}
		if len(o.History) == 0 {
			t.Errorf("%s: empty history", name)
		}
	}
}

// TestBaselineScenariosDuplicate pins the contrast rows: the same
// declarative machinery drives the baselines into their duplication bugs.
func TestBaselineScenariosDuplicate(t *testing.T) {
	sc, _ := Get("pb-crash-failover")
	o := Execute(sc, 101)
	if o.XAble || o.EffectsInForce < 2 {
		t.Errorf("primary-backup failover should duplicate: %+v", o)
	}
	sc, _ = Get("active-nice")
	o = Execute(sc, 101)
	if o.XAble || o.EffectsInForce != 3 {
		t.Errorf("active replication should apply the effect on all 3 replicas: %+v", o)
	}
}

// TestExecuteDeterministic pins per-run replayability: equal (scenario,
// seed) pairs yield equal outcomes, including the full history.
func TestExecuteDeterministic(t *testing.T) {
	sc, _ := Get("partition")
	a := Execute(sc, 7)
	b := Execute(sc, 7)
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history[%d] differs: %v vs %v", i, a.History[i], b.History[i])
		}
	}
	a.History, b.History = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("outcomes differ:\n%+v\n%+v", a, b)
	}
}
