package scenario

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xability/internal/obs"
)

// VerdictDistribution aggregates the outcomes of one scenario across a
// seed population. Where a single run answers "did this schedule stay
// exactly-once", a distribution answers "at what rate, over how many
// schedules" — the replication-at-scale view. Distributions fold outcomes
// in seed order, so equal (scenario, seeds) inputs produce deeply equal
// distributions regardless of worker count or interleaving.
type VerdictDistribution struct {
	// Scenario names the swept scenario.
	Scenario string
	// Runs is the number of seeds executed.
	Runs int
	// XAble counts runs whose history verified as x-able.
	XAble int
	// Replied counts runs where every request was answered (R2).
	Replied int
	// Effects histograms the environment audit: effects-in-force → run
	// count. An exactly-once protocol concentrates the mass on the
	// request count (1 for the standard single-request scenarios).
	Effects map[int]int
	// Executions histograms how many replicas executed the first
	// request's action: the primary-backup ↔ active drift, as a
	// distribution.
	Executions map[int]int
	// Attempts and Messages total the clients' submit attempts and the
	// networks' sends over the whole sweep.
	Attempts int
	Messages int
	// ReplayDuplicates counts runs whose duplicate-replay audit found any
	// (action, input) pair in force more than once — for a correct
	// protocol this is zero even under crash→restart schedules.
	ReplayDuplicates int
	// WALAppends totals stable-storage appends over the sweep (zero for
	// non-durable scenarios). WALCompactions totals compaction passes and
	// WALLiveRecords the per-run live-record counts at settle — the sweep
	// view of "a compacting log is bounded by live state".
	WALAppends     int
	WALCompactions int
	WALLiveRecords int
	// Failing lists the seeds whose run was not x-able or went
	// unanswered — the inputs a schedule-shrinking pass starts from.
	Failing []int64
	// Counterexamples maps failing seeds to their rendered minimal
	// counterexample traces. Filled only when sweeping with
	// SweepOptions.ShrinkFailing (and the shrinker is linked; see
	// RegisterShrinker).
	Counterexamples map[int64]string
	// Rollup folds the per-run metrics snapshots (p50/p99/max/mean per
	// counter, distinct interleaving-class coverage). Filled only when
	// sweeping with SweepOptions.Metrics.
	Rollup *obs.Rollup
	// Traces maps failing seeds to their exported Chrome trace-event JSON,
	// from a deterministic re-run under tracing. Filled only when sweeping
	// with SweepOptions.TraceFailing.
	Traces map[int64][]byte
}

// XAbleRate is the fraction of runs that verified x-able.
func (d VerdictDistribution) XAbleRate() float64 { return rate(d.XAble, d.Runs) }

// RepliedRate is the fraction of runs where every request was answered.
func (d VerdictDistribution) RepliedRate() float64 { return rate(d.Replied, d.Runs) }

func rate(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return float64(n) / float64(of)
}

// String renders the distribution as a compact multi-line summary.
func (d VerdictDistribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d runs  x-able %.4f  replied %.4f",
		d.Scenario, d.Runs, d.XAbleRate(), d.RepliedRate())
	fmt.Fprintf(&b, "\n  effects-in-force: %s", histogram(d.Effects))
	fmt.Fprintf(&b, "\n  executions:       %s", histogram(d.Executions))
	if d.Runs > 0 {
		fmt.Fprintf(&b, "\n  mean attempts %.2f  mean msgs %.1f",
			float64(d.Attempts)/float64(d.Runs), float64(d.Messages)/float64(d.Runs))
	}
	if d.WALAppends > 0 || d.ReplayDuplicates > 0 {
		fmt.Fprintf(&b, "\n  wal appends %d  duplicate-replay runs %d",
			d.WALAppends, d.ReplayDuplicates)
		if d.WALCompactions > 0 {
			fmt.Fprintf(&b, "  compactions %d  live records %d",
				d.WALCompactions, d.WALLiveRecords)
		}
	}
	if d.Rollup != nil {
		fmt.Fprintf(&b, "\n%s", indent(d.Rollup.String(), "  "))
	}
	if len(d.Failing) > 0 {
		n := len(d.Failing)
		show := d.Failing
		if n > 8 {
			show = show[:8]
		}
		fmt.Fprintf(&b, "\n  failing seeds (%d): %v", n, show)
	}
	// Counterexamples render in seed order (the map is keyed by seed, but
	// Failing preserves fold order).
	for _, seed := range d.Failing {
		if cx, ok := d.Counterexamples[seed]; ok {
			fmt.Fprintf(&b, "\n  minimal counterexample, seed %d:\n%s", seed, indent(cx, "    "))
		}
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

func histogram(h map[int]int) string {
	if len(h) == 0 {
		return "(empty)"
	}
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d×%d", k, h[k]))
	}
	return strings.Join(parts, "  ")
}

// Seeds returns n consecutive seeds starting at base — the standard seed
// population for a sweep.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// SweepOptions tunes a sweep beyond its seed population.
type SweepOptions struct {
	// Workers is the parallel worker count (0 selects GOMAXPROCS).
	Workers int
	// ShrinkFailing turns failing seeds into minimal counterexample
	// traces: after the fold, up to MaxCounterexamples failing seeds are
	// delta-debugged (record → ddmin-edited replays) and the rendered
	// minimal traces land in VerdictDistribution.Counterexamples. The
	// shrinker lives in internal/shrink and registers itself via
	// RegisterShrinker when linked (the root xability package and
	// cmd/xsim always link it); without it the knob is a no-op.
	ShrinkFailing bool
	// ShrinkBudget caps each shrink's Execute invocations (0 selects the
	// shrinker default).
	ShrinkBudget int
	// MaxCounterexamples bounds how many failing seeds are shrunk
	// (0 selects 3). Shrinking is sequential and costs many re-executions
	// per seed; a sweep with hundreds of failing seeds wants a bound.
	MaxCounterexamples int
	// Metrics arms the observability plane for every run: each worker
	// keeps one obs.Metrics registry, reset per seed, and the per-run
	// snapshots fold (in seed order, so deterministically) into
	// VerdictDistribution.Rollup.
	Metrics bool
	// TraceFailing re-runs up to MaxCounterexamples failing seeds under
	// request tracing and stores the exported Chrome trace-event JSON in
	// VerdictDistribution.Traces. The re-run is deterministic — same
	// (scenario, seed), observation does not perturb the schedule — so the
	// trace depicts exactly the failing run.
	TraceFailing bool
	// Progress, when non-nil, is called after each completed run with the
	// number of runs done so far and the total. Workers call it
	// concurrently; the callback must be safe for that (the CLI's is a
	// mutex-guarded rate-limited printer).
	Progress func(done, total int)
}

// shrinkHook is the registered shrinker (see RegisterShrinker). It returns
// the rendered minimal counterexample for (sc, seed) and whether shrinking
// succeeded.
var shrinkHook func(sc Scenario, seed int64, budget int) (string, bool)

// RegisterShrinker installs the schedule shrinker Sweep uses for
// SweepOptions.ShrinkFailing. internal/shrink calls it from its init; the
// indirection exists because the shrinker re-runs scenarios (it imports
// this package) and so cannot be imported from here.
func RegisterShrinker(fn func(sc Scenario, seed int64, budget int) (string, bool)) {
	shrinkHook = fn
}

// Sweep executes the scenario once per seed across parallel workers and
// folds the outcomes into a VerdictDistribution. Each run is an
// independent cluster on its own virtual clock, so runs are CPU-bound and
// embarrassingly parallel; workers of 0 selects GOMAXPROCS. The fold
// happens in seed order after all runs finish, so the distribution is
// deterministic for a given (scenario, seeds) pair however many workers
// execute it.
func Sweep(sc Scenario, seeds []int64, workers int) VerdictDistribution {
	return SweepWithOptions(sc, seeds, SweepOptions{Workers: workers})
}

// SweepWithOptions is Sweep with the full option set (worker count,
// shrink-failing-seeds). The distribution stays deterministic for a given
// (scenario, seeds, options) input regardless of worker count: runs fold
// in seed order and shrinking is a sequential post-pass over that order.
func SweepWithOptions(sc Scenario, seeds []int64, opts SweepOptions) VerdictDistribution {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	outcomes := make([]Outcome, len(seeds))
	idx := make(chan int)
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //xvet:ok baregoroutine wall-side sweep worker: each seed's run builds (or recycles) its own virtual clock; the worker is outside them all
			defer wg.Done()
			// Each worker recycles one network across its seeds
			// (reset-and-rerun): the substrate — endpoints, interned
			// process tables, event pools — survives between runs, the
			// protocol actors are rebuilt per seed, and outcomes stay
			// bit-equal to fresh-world runs (pinned by the determinism
			// regressions).
			scratch := &runScratch{}
			// One registry per worker, reset per seed: counters are read
			// only through the per-run snapshot, so reuse is invisible.
			var run *obs.Run
			if opts.Metrics {
				run = &obs.Run{Metrics: obs.NewMetrics()}
			}
			for i := range idx {
				if run != nil {
					run.Metrics.Reset()
				}
				o := executeObservedWith(sc, seeds[i], nil, nil, scratch, run)
				o.History = nil // bound sweep memory to the verdicts
				outcomes[i] = o
				if opts.Progress != nil {
					opts.Progress(int(done.Add(1)), len(seeds))
				}
			}
		}()
	}
	for i := range seeds {
		idx <- i
	}
	close(idx)
	wg.Wait() //xvet:ok detachedwait joins wall-side sweep workers; the sweeping goroutine is attached to no clock

	d := VerdictDistribution{
		Scenario:   sc.Name,
		Runs:       len(seeds),
		Effects:    make(map[int]int),
		Executions: make(map[int]int),
	}
	for _, o := range outcomes {
		if o.XAble {
			d.XAble++
		}
		if o.Replied {
			d.Replied++
		}
		d.Effects[o.EffectsInForce]++
		d.Executions[o.Executions]++
		d.Attempts += o.Attempts
		d.Messages += o.Messages
		if o.ReplayDuplicates > 0 {
			d.ReplayDuplicates++
		}
		d.WALAppends += o.WALAppends
		d.WALCompactions += o.WALCompactions
		d.WALLiveRecords += o.WALLiveRecords
		if !o.XAble || !o.Replied {
			d.Failing = append(d.Failing, o.Seed)
		}
	}
	if opts.Metrics {
		snaps := make([]*obs.Snapshot, len(outcomes))
		for i := range outcomes {
			snaps[i] = outcomes[i].Obs
		}
		d.Rollup = obs.NewRollup(snaps)
	}
	if opts.TraceFailing && len(d.Failing) > 0 {
		max := opts.MaxCounterexamples
		if max <= 0 {
			max = 3
		}
		d.Traces = make(map[int64][]byte)
		for _, seed := range d.Failing {
			if len(d.Traces) >= max {
				break
			}
			tr := obs.NewTrace(0)
			ExecuteObserved(sc, seed, &obs.Run{Trace: tr})
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err == nil {
				d.Traces[seed] = buf.Bytes()
			}
		}
	}
	if opts.ShrinkFailing && shrinkHook != nil && len(d.Failing) > 0 {
		max := opts.MaxCounterexamples
		if max <= 0 {
			max = 3
		}
		d.Counterexamples = make(map[int64]string)
		for _, seed := range d.Failing {
			if len(d.Counterexamples) >= max {
				break
			}
			if cx, ok := shrinkHook(sc, seed, opts.ShrinkBudget); ok {
				d.Counterexamples[seed] = cx
			}
		}
	}
	return d
}
