package scenario

import (
	"fmt"
	"time"

	"xability/internal/action"
	"xability/internal/core"
	"xability/internal/simnet"
	"xability/internal/workload"
)

// The builtin scenarios. Each is a declarative value: the experiment
// tables (internal/exper), the CLIs (cmd/xsim, cmd/xbench), and the root
// package's public registry all draw from here, so a new adversarial
// workload is a new Scenario literal — no inline fault code anywhere.
func init() {
	r0 := simnet.ProcessID("replica-0")
	sides := [][]simnet.ProcessID{
		{"replica-0"},
		{"replica-1", "replica-2", "client"},
	}

	// nice: the failure-free run. Round 1's owner executes alone — the
	// primary-backup flavor of §5.1.
	MustRegister(Scenario{
		Name:        "nice",
		Description: "failure-free run; the round-1 owner executes alone",
	})

	// crash-failover: the schedule that breaks primary-backup (T1's
	// centerpiece). Injected failures stretch the execution so the owner
	// crashes mid-run; the cleaner neutralizes its round and takes over.
	MustRegister(Scenario{
		Name:        "crash-failover",
		Description: "owner crashes mid-execution; the cleaner takes over",
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan:        NewPlan().CrashAt(2*time.Millisecond, 0),
	})

	// partition: the owner is cut off mid-execution — alive, executing,
	// but unreachable. The majority side suspects it, aborts its round,
	// and answers the client; after the heal the isolated owner learns the
	// abort and rolls its effect back. Runs over the message-passing
	// consensus substrate so the partition bites the agreement layer too
	// (the local-object substrate is shared memory and would tunnel
	// through the cut).
	MustRegister(Scenario{
		Name:        "partition",
		Description: "owner partitioned mid-execution; majority takes over, heal reconciles",
		Consensus:   core.ConsensusCT,
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			PartitionAt(time.Millisecond, sides...).
			SuspectAt(time.Millisecond, r0).
			ClientSuspectAt(time.Millisecond, r0).
			HealAt(8*time.Millisecond).
			UnsuspectAt(9*time.Millisecond, r0),
		Settle: 20 * time.Millisecond,
	})

	// delay-storm: a window where every delay is multiplied 24×, with two
	// false-suspicion pulses landing inside it — the drifting
	// primary/active schedule under heavily reordered, straggling
	// traffic.
	MustRegister(Scenario{
		Name:        "delay-storm",
		Description: "24× delay storm with false-suspicion pulses inside the window",
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			DelayStormAt(500*time.Microsecond, 4*time.Millisecond, 24).
			SuspectAt(time.Millisecond, r0).
			UnsuspectAt(1500*time.Microsecond, r0).
			SuspectAt(3500*time.Microsecond, r0).
			UnsuspectAt(4*time.Millisecond, r0),
		Settle: 20 * time.Millisecond,
	})

	// delay-storm-hb: the delay storm against *real* ◇P heartbeat
	// detectors instead of scripted suspicion pulses. The storm stretches
	// heartbeat gaps past the suspicion timeout, so false suspicions arise
	// endogenously (at replicas and client alike); each one doubles the
	// suspected peer's timeout, which is exactly the eventual-accuracy
	// path — once the timeout outgrows the storm's delays, accuracy
	// returns and the run must still verify x-able.
	MustRegister(Scenario{
		Name:              "delay-storm-hb",
		Description:       "24× delay storm against real heartbeat ◇P detectors; timeout doubling restores accuracy",
		Detector:          core.DetectorHeartbeat,
		HeartbeatInterval: 500 * time.Microsecond,
		Failures:          []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan:              NewPlan().DelayStormAt(500*time.Microsecond, 4*time.Millisecond, 24),
		Settle:            20 * time.Millisecond,
	})

	// partition-hb: the partition schedule against *real* ◇P heartbeat
	// detectors — no scripted suspicion anywhere. The cut starves
	// heartbeats from the isolated owner, so replicas and client suspect
	// it endogenously and the majority takes over; after the heal the
	// beats resume, accuracy returns (each false suspicion doubled the
	// peer's timeout), and the reconciled run must still verify x-able.
	// Runs over the message-passing consensus substrate so the cut bites
	// the agreement layer too.
	MustRegister(Scenario{
		Name:              "partition-hb",
		Description:       "owner partitioned under real heartbeat ◇P detectors; heal restores accuracy",
		Consensus:         core.ConsensusCT,
		Detector:          core.DetectorHeartbeat,
		HeartbeatInterval: 500 * time.Microsecond,
		Failures:          []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			PartitionAt(time.Millisecond, sides...).
			HealAt(8 * time.Millisecond),
		Settle: 30 * time.Millisecond,
	})

	// The sharded rows: 4 replica groups behind the keyspace router
	// (internal/shard), a debit workload spread across enough accounts to
	// load every group, environment failures stretching executions so
	// timed faults land mid-run.
	shardWL := &workload.Spec{Requests: 12, Mix: workload.Mix{Debits: 1}, Accounts: 16}
	shardFailures := []Failure{{Action: "debit", Prob: 1, Budget: 6}}

	// shard-nice: the failure-free sharded run — the throughput baseline
	// and the composition claim's happy path: every group reduces on its
	// own, the router routes exactly once.
	MustRegister(Scenario{
		Name:        "shard-nice",
		Description: "4-shard failure-free run through the keyspace router",
		Shards:      4,
		Workload:    shardWL,
	})

	// shard-crash-failover: the correlated form of T1's centerpiece —
	// every group's round-1 owner crashes mid-execution at one virtual
	// instant; each group's cleaner neutralizes its round and takes over,
	// and the deployment must still verify exactly-once per shard and
	// exactly-once-routed globally.
	MustRegister(Scenario{
		Name:        "shard-crash-failover",
		Description: "every group's round-1 owner crashes mid-execution; cleaners take over per shard",
		Shards:      4,
		Workload:    shardWL,
		Failures:    shardFailures,
		Plan:        NewPlan().CrashAt(2*time.Millisecond, 0),
	})

	// shard-split-brain: two of four groups lose their owner behind a cut
	// — alive, executing, unreachable — while scripted suspicion makes
	// their majority sides move on; the other two groups keep serving
	// undisturbed. Heals reconcile the isolated rounds. Runs over the
	// message-passing substrate so the cut bites the agreement layer.
	splitPulse := NewPlan().
		SuspectAt(time.Millisecond, r0).
		ClientSuspectAt(time.Millisecond, r0).
		UnsuspectAt(9*time.Millisecond, r0)
	MustRegister(Scenario{
		Name:        "shard-split-brain",
		Description: "owners of 2 of 4 groups partitioned mid-execution; majorities take over, heals reconcile",
		Shards:      4,
		Consensus:   core.ConsensusCT,
		Workload:    shardWL,
		Failures:    shardFailures,
		Plan: NewPlan().
			PartitionShardsAt(time.Millisecond, []int{0, 2}, sides...).
			OnShard(0, splitPulse).
			OnShard(2, splitPulse).
			HealShardsAt(8*time.Millisecond, 0, 2),
		Settle: 20 * time.Millisecond,
	})

	// shard-storm: a correlated 24× delay storm hitting 2 of 4 groups,
	// with false-suspicion pulses landing inside the stormed groups — the
	// drifting primary/active schedule, k-of-N.
	stormPulse := NewPlan().
		SuspectAt(time.Millisecond, r0).
		UnsuspectAt(1500*time.Microsecond, r0).
		SuspectAt(3500*time.Microsecond, r0).
		UnsuspectAt(4*time.Millisecond, r0)
	MustRegister(Scenario{
		Name:        "shard-storm",
		Description: "24× delay storm over 2 of 4 groups with suspicion pulses inside the window",
		Shards:      4,
		Workload:    shardWL,
		Failures:    shardFailures,
		Plan: NewPlan().
			StormShardsAt(500*time.Microsecond, 4*time.Millisecond, 24, 1, 3).
			OnShard(1, stormPulse).
			OnShard(3, stormPulse),
		Settle: 20 * time.Millisecond,
	})

	// restart-minority: the durable-state plane's centerpiece — the
	// round-1 owner crashes mid-execution (its CT acceptor vote and any
	// applied effect already on stable storage), the cleaner side takes
	// over, and the crashed replica later restarts from its log. The
	// restarted replica must re-fold — not re-execute — its effect log
	// (the duplicate-replay audit checks exactly that), and agreement
	// must still hold with the revived acceptor back in the quorum.
	MustRegister(Scenario{
		Name:        "restart-minority",
		Description: "owner crashes mid-execution, then restarts from stable storage; effects replay exactly once",
		Consensus:   core.ConsensusCT,
		Durable:     true,
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			CrashAt(2*time.Millisecond, 0).
			RestartAt(6*time.Millisecond, 0).
			UnsuspectAt(7*time.Millisecond, r0),
		Settle: 20 * time.Millisecond,
	})

	// restart-random: the generator's crash→restart schedule class —
	// every seed draws crashes that later revive from stable storage, on
	// top of the usual pulses, storms, and cuts.
	MustRegister(Scenario{
		Name:         "restart-random",
		Description:  "seeded random fault schedules with crash→restart pairs over stable storage",
		Consensus:    core.ConsensusCT,
		Durable:      true,
		Failures:     []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		RandomFaults: &RandomOptions{Ops: 4, Restarts: true},
		Settle:       20 * time.Millisecond,
	})

	// restart-majority: two of three replicas crash — a quorum is gone and
	// agreement stalls — then both restart from stable storage. The one
	// survivor bridges the outage in memory; the revived acceptors must
	// rejoin with their logged votes intact so the post-restart quorum
	// cannot contradict anything decided before the crashes.
	MustRegister(Scenario{
		Name:        "restart-majority",
		Description: "a majority crashes mid-execution and restarts from stable storage; one survivor bridges the outage",
		Consensus:   core.ConsensusCT,
		Durable:     true,
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			CrashAt(2*time.Millisecond, 0).
			CrashAt(2500*time.Microsecond, 1).
			RestartAt(6*time.Millisecond, 0).
			RestartAt(7*time.Millisecond, 1),
		Settle: 25 * time.Millisecond,
	})

	// power-cycle: the total-loss schedule — every replica crashes at one
	// virtual instant, so for a window the deployment exists only as bytes
	// on stable storage. Staggered restarts bring the replicas back one by
	// one; every decision, acceptor vote, and applied effect must come
	// back from the logs alone (no live replica bridged the outage), and
	// the client's retries across the blackout must still land
	// exactly-once.
	MustRegister(Scenario{
		Name:        "power-cycle",
		Description: "all replicas crash simultaneously and restart staggered from stable storage; no live state bridges the outage",
		Consensus:   core.ConsensusCT,
		Durable:     true,
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			CrashAt(2*time.Millisecond, 0).
			CrashAt(2*time.Millisecond, 1).
			CrashAt(2*time.Millisecond, 2).
			RestartAt(5*time.Millisecond, 2).
			RestartAt(6*time.Millisecond, 1).
			RestartAt(7*time.Millisecond, 0),
		Settle: 25 * time.Millisecond,
	})

	// restart-random-majority: the generator with the minority guard
	// lifted to all-but-one — drawn schedules may take down a quorum as
	// long as every crash pairs with a restart inside the horizon.
	MustRegister(Scenario{
		Name:         "restart-random-majority",
		Description:  "seeded random schedules that may crash a majority; paired restarts are the liveness guard",
		Consensus:    core.ConsensusCT,
		Durable:      true,
		Failures:     []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		RandomFaults: &RandomOptions{Ops: 5, MajorityCrashes: true},
		Settle:       25 * time.Millisecond,
	})

	// restart-random-total: the generator with the guard lifted entirely —
	// a drawn schedule may power-cycle the whole deployment.
	MustRegister(Scenario{
		Name:         "restart-random-total",
		Description:  "seeded random schedules that may crash every replica; recovery runs from the logs alone",
		Consensus:    core.ConsensusCT,
		Durable:      true,
		Failures:     []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		RandomFaults: &RandomOptions{Ops: 6, TotalLoss: true},
		Settle:       25 * time.Millisecond,
	})

	// random-faults: every seed draws its own fault schedule from the
	// generator (Plan.Random) — crashes, pulses, cuts, storms at random
	// instants — so a sweep covers a different adversarial schedule per
	// seed instead of one schedule per scenario. The generator respects
	// the protocol's liveness assumptions (minority crashes, healed cuts,
	// recovered suspicions), so a failing seed here is a protocol bug.
	MustRegister(Scenario{
		Name:         "random-faults",
		Description:  "seeded random fault schedule drawn fresh from each run's seed",
		Consensus:    core.ConsensusCT,
		Failures:     []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		RandomFaults: &RandomOptions{Ops: 4},
		Settle:       20 * time.Millisecond,
	})

	// shard-random: the sharded version — group-scoped random schedules
	// against the 4-shard deployment.
	MustRegister(Scenario{
		Name:         "shard-random",
		Description:  "4-shard deployment under seeded random group-scoped fault schedules",
		Shards:       4,
		Workload:     shardWL,
		Failures:     shardFailures,
		RandomFaults: &RandomOptions{Ops: 6},
		Settle:       20 * time.Millisecond,
	})

	// shard-restart-minority: the durable plane composed with sharding —
	// one group's round-1 owner crashes mid-execution and later restarts
	// from that group's own store, while the other three groups keep
	// serving undisturbed. Pins that per-group stable storage is really
	// per-group: the restarted replica recovers exactly its shard's state,
	// and the router's exactly-once audit still closes globally.
	MustRegister(Scenario{
		Name:        "shard-restart-minority",
		Description: "one group's owner crashes then restarts from its group's stable storage; other shards undisturbed",
		Shards:      4,
		Consensus:   core.ConsensusCT,
		Durable:     true,
		Workload:    shardWL,
		Failures:    shardFailures,
		Plan: NewPlan().
			CrashShardAt(2*time.Millisecond, 1, 0).
			RestartShardAt(6*time.Millisecond, 1, 0),
		Settle: 25 * time.Millisecond,
	})

	// shard-power-cycle: a whole group blacks out — every replica of
	// shard 2 crashes at one instant, so for a window that slice of the
	// keyspace exists only on stable storage — then restarts staggered.
	// The other groups serve their keys throughout (graceful degradation,
	// not cluster-wide stall), and the revived group must answer its
	// clients' retries exactly-once from the logs alone.
	MustRegister(Scenario{
		Name:        "shard-power-cycle",
		Description: "every replica of one group crashes simultaneously and restarts staggered; other shards serve throughout",
		Shards:      4,
		Consensus:   core.ConsensusCT,
		Durable:     true,
		Workload:    shardWL,
		Failures:    shardFailures,
		Plan: NewPlan().
			CrashShardAt(2*time.Millisecond, 2, 0).
			CrashShardAt(2*time.Millisecond, 2, 1).
			CrashShardAt(2*time.Millisecond, 2, 2).
			RestartShardAt(5*time.Millisecond, 2, 2).
			RestartShardAt(6*time.Millisecond, 2, 1).
			RestartShardAt(7*time.Millisecond, 2, 0),
		Settle: 25 * time.Millisecond,
	})

	// shard-restart-random: the generator's group-scoped crash→restart
	// class with the guard lifted entirely — a drawn schedule may
	// power-cycle whole groups (each on its own store), on top of the
	// usual group-scoped pulses, storms, and cuts.
	MustRegister(Scenario{
		Name:         "shard-restart-random",
		Description:  "4-shard deployment under random group-scoped schedules that may power-cycle whole groups",
		Shards:       4,
		Consensus:    core.ConsensusCT,
		Durable:      true,
		Workload:     shardWL,
		Failures:     shardFailures,
		RandomFaults: &RandomOptions{Ops: 6, TotalLoss: true},
		Settle:       25 * time.Millisecond,
	})

	// The throughput-plane rows: the batched/pipelined slot protocol
	// (internal/core, batch.go) under the same adversarial schedules as
	// the per-request plane, plus open-loop arrival scenarios where
	// offered load is fixed by the spec rather than by service latency.
	// The closed-loop batch-* scenarios keep the strict verifier (one
	// sequential session); the open-loop ones verify under the concurrent
	// per-request relaxation. Costs give each replica finite virtual
	// capacity — without them the simulated cluster never saturates and
	// batching has nothing to amortize.
	batchCfg := core.BatchConfig{Enabled: true, MaxSize: 8, Window: 100 * time.Microsecond, Pipeline: 4}
	batchWL := &workload.Spec{Requests: 8, Accounts: 4}

	MustRegister(Scenario{
		Name:        "batch-nice",
		Description: "failure-free multi-request run on the batched/pipelined slot plane",
		Batch:       batchCfg,
		Accounts:    4,
		Workload:    batchWL,
	})

	// batch-crash-failover: the T1 centerpiece against the slot plane —
	// the slot owner crashes mid-batch and the slot cleaner must abort its
	// round and re-propose the same batch, keeping batch-order effects
	// exactly-once.
	MustRegister(Scenario{
		Name:        "batch-crash-failover",
		Description: "slot owner crashes mid-batch; the slot cleaner re-proposes and takes over",
		Batch:       batchCfg,
		Accounts:    4,
		Workload:    batchWL,
		Failures:    []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan:        NewPlan().CrashAt(2*time.Millisecond, 0),
	})

	// batch-storm-hb: delay-storm-hb's endogenous false suspicions against
	// the slot plane — concurrent slot cleaners racing live slot owners.
	MustRegister(Scenario{
		Name:              "batch-storm-hb",
		Description:       "24× delay storm under heartbeat ◇P detectors on the batched slot plane",
		Batch:             batchCfg,
		Detector:          core.DetectorHeartbeat,
		HeartbeatInterval: 500 * time.Microsecond,
		Accounts:          4,
		Workload:          batchWL,
		Failures:          []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan:              NewPlan().DelayStormAt(500*time.Microsecond, 4*time.Millisecond, 24),
		Settle:            20 * time.Millisecond,
	})

	olCosts := core.CostModel{Consensus: 20 * time.Microsecond, Exec: 5 * time.Microsecond}
	olSpec := workload.OpenLoopSpec{Clients: 200, Rate: 20_000, Duration: 5 * time.Millisecond, Accounts: 8}

	// open-loop-nice: the unbatched saturation baseline — arrivals at a
	// fixed offered rate against per-request agreement, every request
	// paying the full consensus cost alone.
	MustRegister(Scenario{
		Name:        "open-loop-nice",
		Description: "open-loop arrivals at fixed offered rate; per-request protocol with costed replicas",
		Costs:       olCosts,
		OpenLoop:    &olSpec,
	})

	// open-loop-batch: the same offered load against the slot plane —
	// concurrent arrivals coalesce into batches, amortizing the consensus
	// cost across batch members.
	MustRegister(Scenario{
		Name:        "open-loop-batch",
		Description: "open-loop arrivals on the batched/pipelined slot plane with costed replicas",
		Costs:       olCosts,
		Batch:       core.BatchConfig{Enabled: true, MaxSize: 16, Window: 100 * time.Microsecond, Pipeline: 8},
		OpenLoop:    &olSpec,
	})

	// shard-open-loop: the composed form — Zipf-skewed keys over 4 groups,
	// each group batching its own arrival stream through its own station.
	MustRegister(Scenario{
		Name:        "shard-open-loop",
		Description: "4-shard open-loop run, Zipf-keyed arrivals through per-group stations",
		Shards:      4,
		Costs:       olCosts,
		Batch:       core.BatchConfig{Enabled: true, MaxSize: 16, Window: 100 * time.Microsecond, Pipeline: 8},
		OpenLoop:    &workload.OpenLoopSpec{Clients: 200, Rate: 20_000, Duration: 5 * time.Millisecond, Accounts: 16, ZipfS: 1.2},
	})

	// suspect: a permanent false suspicion of the round-1 owner makes a
	// second replica execute concurrently (the active flavor) over a
	// non-deterministic idempotent action.
	MustRegister(Scenario{
		Name:        "suspect",
		Description: "false suspicion forces concurrent execution of a token request",
		Failures:    []Failure{{Action: "token", Prob: 1, Budget: 5}},
		Plan:        NewPlan().SuspectAt(2*time.Millisecond, r0),
		Requests:    []action.Request{action.NewRequest("token", "t")},
	})

	// failures: no faults beyond the environment's own injected action
	// failures; execute-until-success absorbs them.
	MustRegister(Scenario{
		Name:        "failures",
		Description: "environment injects action failures; execute-until-success retries",
		Failures:    []Failure{{Action: "debit", Prob: 0.7, Budget: 6, AfterProb: 0.5}},
	})

	// sequence: a seeded multi-request session mixing reads, tokens, and
	// debits.
	MustRegister(Scenario{
		Name:        "sequence",
		Description: "multi-request session mixing reads, tokens, and debits",
		Accounts:    4,
		Workload:    &workload.Spec{Requests: 6, Accounts: 2},
	})

	// spectrum-N (T2's rows): N false-suspicion pulses of growing spacing
	// drag the run from the primary-backup flavor (one executor) toward
	// active replication (concurrent executors), over an undoable action.
	for pulses := 0; pulses <= 3; pulses++ {
		sc := Scenario{
			Name:        fmt.Sprintf("spectrum-%d", pulses),
			Label:       fmt.Sprintf("spectrum/%d-pulses", pulses),
			Description: fmt.Sprintf("%d false-suspicion pulses over an undoable request", pulses),
			Opening:     1000,
		}
		if pulses > 0 {
			sc.Failures = []Failure{{Action: "debit", Prob: 1, Budget: 3 * pulses}}
			plan := NewPlan()
			var t time.Duration
			for i := 0; i < pulses; i++ {
				t += time.Duration(1+i) * time.Millisecond
				plan.SuspectAt(t, r0)
				t += 500 * time.Microsecond
				plan.UnsuspectAt(t, r0)
			}
			sc.Plan = plan
		}
		MustRegister(sc)
	}

	// Baseline rows of T1.
	MustRegister(Scenario{
		Name:        "pb-nice",
		Label:       "nice",
		Description: "primary-backup, failure-free run",
		Protocol:    PrimaryBackup,
	})
	MustRegister(Scenario{
		Name:        "pb-crash-failover",
		Label:       "crash-failover",
		Description: "primary-backup; the primary crashes in the duplication window",
		Protocol:    PrimaryBackup,
		SyncDelay:   4 * time.Millisecond,
		Plan:        NewPlan().CrashAt(2*time.Millisecond, 0),
	})
	MustRegister(Scenario{
		Name:        "active-nice",
		Label:       "nice",
		Description: "active replication; every replica executes every request",
		Protocol:    Active,
	})
}
