package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"xability/internal/obs"
)

// TestObservedRunCounters sanity-checks the instrumented layers end to
// end: a nice closed-loop run must account for its submits, replies,
// consensus proposals, and per-request latencies.
func TestObservedRunCounters(t *testing.T) {
	sc, ok := Get("crash-failover")
	if !ok {
		t.Fatal("crash-failover not registered")
	}
	run := &obs.Run{Metrics: obs.NewMetrics(), Trace: obs.NewTrace(0)}
	o := ExecuteObserved(sc, 1, run)
	if !o.XAble || !o.Replied {
		t.Fatalf("crash-failover seed 1 regressed: %+v", o)
	}
	s := o.Obs
	if s == nil {
		t.Fatal("observed run carries no snapshot")
	}
	if s.Counters[obs.ReqSubmitted] == 0 || s.Counters[obs.ReqReplied] == 0 {
		t.Errorf("request lifecycle uncounted: submitted=%d replied=%d",
			s.Counters[obs.ReqSubmitted], s.Counters[obs.ReqReplied])
	}
	if s.Counters[obs.MsgSubmit] == 0 {
		t.Errorf("submit messages uncounted: %d", s.Counters[obs.MsgSubmit])
	}
	if s.Counters[obs.ConsProposals] == 0 {
		t.Errorf("consensus proposals uncounted (local substrate still proposes): %d",
			s.Counters[obs.ConsProposals])
	}
	if s.LatCount != s.Counters[obs.ReqReplied] {
		t.Errorf("latency observations (%d) != replies (%d)", s.LatCount, s.Counters[obs.ReqReplied])
	}
	if s.LatP50NS <= 0 || s.LatP99NS < s.LatP50NS {
		t.Errorf("latency quantiles implausible: p50=%d p99=%d", s.LatP50NS, s.LatP99NS)
	}
	if s.Coverage == 0 {
		t.Error("coverage fingerprint never folded a delivery")
	}
	if run.Trace.Len() == 0 {
		t.Error("trace recorded no spans")
	}

	// The CT substrate's counters only move on the message-passing
	// consensus; the partition scenario runs over it.
	ct, ok := Get("partition")
	if !ok {
		t.Fatal("partition not registered")
	}
	o = ExecuteObserved(ct, 1, &obs.Run{Metrics: obs.NewMetrics()})
	if !o.XAble || !o.Replied {
		t.Fatalf("partition seed 1 regressed: %+v", o)
	}
	s = o.Obs
	if s.Counters[obs.MsgCons] == 0 {
		t.Errorf("CT consensus messages uncounted: %d", s.Counters[obs.MsgCons])
	}
	if s.Counters[obs.ConsRounds] == 0 || s.Counters[obs.ConsDecisions] == 0 {
		t.Errorf("CT rounds/decisions uncounted: rounds=%d decisions=%d",
			s.Counters[obs.ConsRounds], s.Counters[obs.ConsDecisions])
	}
	if s.Counters[obs.FDSuspicions] == 0 {
		t.Errorf("FD suspicions uncounted: %d", s.Counters[obs.FDSuspicions])
	}
}

// TestObservedRunDeterministic pins the plane's two core guarantees at
// once: equal (scenario, seed) observed runs produce byte-equal trace
// exports and deeply equal snapshots, and observation does not perturb the
// schedule — the observed run's verdict fields match the unobserved twin's.
func TestObservedRunDeterministic(t *testing.T) {
	sc, _ := Get("crash-failover")
	export := func() ([]byte, *obs.Snapshot, Outcome) {
		run := &obs.Run{Metrics: obs.NewMetrics(), Trace: obs.NewTrace(0)}
		o := ExecuteObserved(sc, 7, run)
		var buf bytes.Buffer
		if err := run.Trace.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes(), o.Obs, o
	}
	j1, s1, o1 := export()
	j2, s2, o2 := export()
	if !bytes.Equal(j1, j2) {
		t.Error("trace JSON differs across equal-seed runs")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("snapshots differ across equal-seed runs:\n%+v\nvs\n%+v", s1, s2)
	}
	plain := Execute(sc, 7)
	for _, cmp := range []struct {
		name             string
		a, b             Outcome
		wantEqualHistory bool
	}{{"observed twins", o1, o2, false}, {"observed vs plain", o1, plain, false}} {
		a, b := cmp.a, cmp.b
		if a.XAble != b.XAble || a.Replied != b.Replied || a.Messages != b.Messages ||
			a.Attempts != b.Attempts || a.SimTime != b.SimTime || a.EffectsInForce != b.EffectsInForce {
			t.Errorf("%s: verdicts diverge:\n%+v\nvs\n%+v", cmp.name, a, b)
		}
	}
}

// TestObservedOpenLoopAndSharded exercises the remaining execute paths:
// the station's lifecycle taps and the sharded runtime's shared registry
// must both produce populated, deterministic snapshots.
func TestObservedOpenLoopAndSharded(t *testing.T) {
	for _, name := range []string{"open-loop-nice", "shard-nice"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		snap := func() *obs.Snapshot {
			run := &obs.Run{Metrics: obs.NewMetrics()}
			o := ExecuteObserved(sc, 3, run)
			if !o.XAble {
				t.Fatalf("%s seed 3 regressed: %+v", name, o)
			}
			return o.Obs
		}
		s1, s2 := snap(), snap()
		if s1.Counters[obs.ReqReplied] == 0 {
			t.Errorf("%s: no replies counted", name)
		}
		if s1.Coverage == 0 {
			t.Errorf("%s: no coverage folded", name)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: snapshots differ across equal-seed runs:\n%+v\nvs\n%+v", name, s1, s2)
		}
	}
}

// TestSweepMetricsRollup pins the sweep integration: Metrics arms the
// plane per worker, the snapshots fold in seed order, and the rollup is
// deterministic across worker counts (the reused-registry path must be
// invisible, like the recycled networks).
func TestSweepMetricsRollup(t *testing.T) {
	sc, _ := Get("crash-failover")
	seeds := Seeds(100, 32)
	serial := SweepWithOptions(sc, seeds, SweepOptions{Workers: 1, Metrics: true})
	parallel := SweepWithOptions(sc, seeds, SweepOptions{Workers: 8, Metrics: true})
	if serial.Rollup == nil || parallel.Rollup == nil {
		t.Fatal("Metrics sweep carries no rollup")
	}
	if !reflect.DeepEqual(serial.Rollup, parallel.Rollup) {
		t.Errorf("rollup differs across worker counts:\n%+v\nvs\n%+v", serial.Rollup, parallel.Rollup)
	}
	if serial.Rollup.Runs != len(seeds) {
		t.Errorf("rollup folded %d runs, want %d", serial.Rollup.Runs, len(seeds))
	}
	if serial.Rollup.Classes == 0 {
		t.Error("no interleaving classes observed")
	}
	if s := serial.String(); !strings.Contains(s, "interleaving classes") {
		t.Errorf("rendered distribution misses coverage:\n%s", s)
	}
	// Off by default: a plain sweep must carry no rollup.
	if d := Sweep(sc, Seeds(100, 4), 0); d.Rollup != nil {
		t.Error("unarmed sweep grew a rollup")
	}
}

// TestSweepTraceFailing pins the failing-seed re-run: a sweep over the
// planted primary-backup bug attaches valid, bounded trace exports for its
// failing seeds.
func TestSweepTraceFailing(t *testing.T) {
	sc, _ := Get("pb-crash-failover")
	d := SweepWithOptions(sc, Seeds(1, 6), SweepOptions{
		TraceFailing:       true,
		MaxCounterexamples: 2,
	})
	if len(d.Failing) != 6 {
		t.Fatalf("failing = %v, want all 6", d.Failing)
	}
	if len(d.Traces) != 2 {
		t.Fatalf("traces = %d, want 2 (bounded)", len(d.Traces))
	}
	for seed, j := range d.Traces {
		if !bytes.HasPrefix(j, []byte(`{"traceEvents":[`)) {
			t.Errorf("seed %d: export is not a trace-event JSON object: %.40s", seed, j)
		}
	}
}

// TestSweepProgress pins the progress callback: it observes every
// completed run and ends at (total, total).
func TestSweepProgress(t *testing.T) {
	sc, _ := Get("nice")
	var mu sync.Mutex
	calls, last := 0, 0
	SweepWithOptions(sc, Seeds(1, 10), SweepOptions{
		Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > last {
				last = done
			}
			if total != 10 {
				t.Errorf("total = %d, want 10", total)
			}
		},
	})
	if calls != 10 || last != 10 {
		t.Errorf("progress calls = %d (last %d), want 10 reaching 10", calls, last)
	}
}
