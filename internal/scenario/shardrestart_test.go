package scenario

import (
	"reflect"
	"testing"
)

// shardSweepExactlyOnce is sweepExactlyOnce for the 4-shard durable
// scenarios: the 12-request sharded workload means the exactly-once
// histogram concentrates on 12, and the duplicate-replay and WAL checks
// carry over unchanged (each group writes its own store).
func shardSweepExactlyOnce(t *testing.T, name string, n int) VerdictDistribution {
	t.Helper()
	sc, ok := Get(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	d := Sweep(sc, Seeds(1, n), 0)
	if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
		t.Errorf("%s: x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
			name, d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
	}
	if d.Effects[12] != n {
		t.Errorf("%s: effects histogram %v, want all mass on 12", name, d.Effects)
	}
	if d.ReplayDuplicates != 0 {
		t.Errorf("%s: %d runs re-applied an already-in-force effect after restart, want 0",
			name, d.ReplayDuplicates)
	}
	if d.WALAppends == 0 {
		t.Errorf("%s: no WAL appends across a durable sharded sweep; per-group stable storage was never written", name)
	}
	return d
}

// TestShardRestartSweepsExactlyOnce holds the durable sharded scenarios
// to the composition claim under restarts: a group-confined crash, a
// whole-group power cycle, and random group-scoped schedules that may
// power-cycle whole groups must all stay exactly-once per shard and
// exactly-once-routed globally, with recovery reading per-group logs.
func TestShardRestartSweepsExactlyOnce(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 12
	}
	shardSweepExactlyOnce(t, "shard-restart-minority", n)
	shardSweepExactlyOnce(t, "shard-power-cycle", n)
	shardSweepExactlyOnce(t, "shard-restart-random", n)
}

// TestShardPowerCycleDegradesGracefully pins the blackout's confinement:
// with every replica of shard 2 down for a window, the other three
// groups' reports stay clean, routing stays exact, and the revived group
// answers from its own log (per-shard reports all OK, effects exactly
// once).
func TestShardPowerCycleDegradesGracefully(t *testing.T) {
	sc, _ := Get("shard-power-cycle")
	for seed := int64(1); seed <= 8; seed++ {
		o := Execute(sc, seed)
		if !o.Replied || !o.XAble {
			t.Fatalf("seed %d: x-able=%v replied=%v: %+v", seed, o.XAble, o.Replied, o.ShardReports)
		}
		if !o.RoutingExact {
			t.Errorf("seed %d: routing audit failed", seed)
		}
		for s, rep := range o.ShardReports {
			if !rep.OK() {
				t.Errorf("seed %d shard %d: report not OK: %+v", seed, s, rep)
			}
		}
		if o.EffectsInForce != 12 {
			t.Errorf("seed %d: %d effects in force, want 12", seed, o.EffectsInForce)
		}
		if o.WALAppends == 0 {
			t.Errorf("seed %d: no WAL appends; the power-cycled group had nothing to recover from", seed)
		}
	}
}

// TestShardRestartByteDeterministic extends the reset-and-rerun contract
// to durable sharded runs: a run on recycled per-group networks must be
// bit-equal to a fresh-world Execute of the same (scenario, seed). This
// is where a leaked WAL would show — shard.New builds each group's store
// fresh even when the group's network is recycled, so a reused world
// must replay from the same empty logs as a fresh one.
func TestShardRestartByteDeterministic(t *testing.T) {
	for _, name := range []string{"shard-restart-minority", "shard-power-cycle", "shard-restart-random"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		scratch := &runScratch{}
		for seed := int64(1); seed <= 4; seed++ {
			fresh := Execute(sc, seed)
			reused := executeTracedWith(sc, seed, nil, nil, scratch)
			fresh.History, reused.History = nil, nil
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("%s seed %d: reused-group outcome differs from fresh run:\nfresh:  %+v\nreused: %+v",
					name, seed, fresh, reused)
			}
		}
	}
}
