package scenario

import (
	"reflect"
	"testing"
	"time"

	"xability/internal/simnet"
)

// TestRecoverAtAliasesUnsuspectAt pins the deprecated RecoverAt name as a
// pure forwarder: same rendered plan, same op identity (the shrink
// artifact matches ops by (At, Name), so the alias must not mint a
// distinct name), and the same run outcome. Existing plans and serialized
// shrink logs that used the old name keep replaying bit-for-bit.
func TestRecoverAtAliasesUnsuspectAt(t *testing.T) {
	r0 := simnet.ProcessID("replica-0")
	old := NewPlan().SuspectAt(time.Millisecond, r0).RecoverAt(3*time.Millisecond, r0)
	cur := NewPlan().SuspectAt(time.Millisecond, r0).UnsuspectAt(3*time.Millisecond, r0)

	if old.String() != cur.String() {
		t.Errorf("alias renders a different plan:\nRecoverAt:   %s\nUnsuspectAt: %s", old, cur)
	}
	oo, co := old.Ops(), cur.Ops()
	if len(oo) != len(co) {
		t.Fatalf("op counts differ: %d vs %d", len(oo), len(co))
	}
	for i := range oo {
		if oo[i].At != co[i].At || oo[i].Name != co[i].Name {
			t.Errorf("op %d identity differs: %v %q vs %v %q", i, oo[i].At, oo[i].Name, co[i].At, co[i].Name)
		}
	}

	mk := func(p *Plan) Scenario {
		return Scenario{
			Name:     "recoverat-alias",
			Failures: []Failure{{Action: "debit", Prob: 1, Budget: 6}},
			Plan:     p,
			Settle:   20 * time.Millisecond,
			Deadline: 200 * time.Millisecond,
		}
	}
	a, b := Execute(mk(old), 1), Execute(mk(cur), 1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("alias changes the run outcome:\nRecoverAt:   %+v\nUnsuspectAt: %+v", a, b)
	}
	if !a.Replied || !a.XAble {
		t.Errorf("alias scenario did not complete cleanly: %+v", a)
	}
}
