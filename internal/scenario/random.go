package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"xability/internal/simnet"
)

// RandomOptions tunes the seeded fault-schedule generator (Plan.Random).
type RandomOptions struct {
	// Ops is the number of fault operations to draw (default 4). A pulse,
	// storm, or partition counts as one op (its repair rides along).
	Ops int
	// Horizon bounds the schedule: every op fires, and every disruptive
	// op is repaired, strictly before it (default 6ms). Runs should settle
	// past it; settleFor does so automatically via Plan.Horizon.
	Horizon time.Duration
	// Replicas is the replication degree the plan is drawn for (default
	// 3). The generator never crashes more than a minority of a group, so
	// the protocol's quorum assumption survives any drawn schedule.
	Replicas int
	// Shards, when above 1, draws group-scoped ops addressed to random
	// groups of a sharded deployment (the plan becomes shard-bound).
	Shards int
	// MaxStormFactor bounds delay-storm multipliers (default 16).
	MaxStormFactor float64
	// Restarts pairs every drawn crash with a later restart inside the
	// horizon — the crash→restart schedule class. Meaningful only when the
	// scenario deploys stable storage (Scenario.Durable): on an in-memory
	// deployment RestartAt is a no-op and the crash stays permanent. A
	// restarted replica still counts against the crash budget, so the
	// minority guard stays conservative even before its restart fires.
	Restarts bool
	// MajorityCrashes lifts the minority guard to Replicas-1: a drawn
	// schedule may take down a majority of a group, as long as one
	// replica survives to bridge the outage. The liveness guard shifts
	// from "never crash a majority" to "every crash is paired with a
	// restart strictly inside the horizon" — so MajorityCrashes implies
	// Restarts, and it only makes sense on a durable deployment (without
	// stable storage a majority crash is a permanent quorum loss and no
	// schedule could be required to stay x-able).
	MajorityCrashes bool
	// TotalLoss lifts the guard entirely: every replica of a group may be
	// crashed, simultaneously — a full power cycle. Decisions must come
	// back from the logs alone. Implies MajorityCrashes and Restarts.
	TotalLoss bool
}

func (o RandomOptions) withDefaults() RandomOptions {
	if o.Ops <= 0 {
		o.Ops = 4
	}
	if o.Horizon <= 0 {
		o.Horizon = 6 * time.Millisecond
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.MaxStormFactor < 2 {
		o.MaxStormFactor = 16
	}
	if o.TotalLoss {
		o.MajorityCrashes = true
	}
	if o.MajorityCrashes {
		o.Restarts = true
	}
	return o
}

// crashBudget is the per-group cap on distinct crashed replicas: a strict
// minority by default, all-but-one under MajorityCrashes (the paired
// restarts are the liveness guard), everyone under TotalLoss.
func (o RandomOptions) crashBudget() int {
	switch {
	case o.TotalLoss:
		return o.Replicas
	case o.MajorityCrashes:
		return o.Replicas - 1
	default:
		return (o.Replicas - 1) / 2
	}
}

// Random appends a seeded random fault schedule: Ops operations drawn
// from the full adversarial vocabulary — crashes, false-suspicion pulses,
// owner-isolating partitions, delay storms — at random virtual times
// within the horizon, addressed to random groups when Shards is set.
// Equal (seed, options) pairs generate identical plans, so a scenario
// whose faults derive from the run seed stays a replayable value; see
// Scenario.RandomFaults for exactly that wiring.
//
// Drawn schedules respect the protocol's liveness assumptions, so
// x-ability is still *required* of every generated schedule (a failing
// seed is a bug, not an over-harsh plan): at most a minority of each
// group crashes, every partition heals, every storm calms, and every
// false suspicion is recovered — all strictly inside the horizon. The
// assumptions must also survive op *composition*: ops that own a
// replica's detector state (crashes, pulses, cuts) claim disjoint
// per-replica windows, so one op's recovery can never un-suspect a
// replica another op still severs.
func (p *Plan) Random(seed int64, opt RandomOptions) *Plan {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	crashed := make(map[int]map[int]bool) // group → crashed replicas
	maxCrash := opt.crashBudget()

	// claimed tracks, per (group, replica), the windows in which one drawn
	// op owns that replica's detector state. Each op keeps the liveness
	// assumptions within itself (a cut carries suspicion until its heal, a
	// pulse recovers), but two independently drawn ops can compose into a
	// model violation: a pulse's recovery un-suspects a replica that a
	// later-drawn cut still severs, the client trusts an unreachable
	// replica, and the await wedges forever (found by the
	// shard-restart-random sweep, seed 131 — before windows were claimed).
	// An op whose drawn window would overlap an existing claim for the
	// same replica is skipped; its op slot is spent, so Ops counts
	// attempted draws.
	type span struct{ from, to time.Duration }
	claimed := make(map[[2]int][]span)
	free := func(g, r int, from, to time.Duration) bool {
		for _, w := range claimed[[2]int{g, r}] {
			if from <= w.to && w.from <= to {
				return false
			}
		}
		return true
	}
	claim := func(g, r int, from, to time.Duration) {
		claimed[[2]int{g, r}] = append(claimed[[2]int{g, r}], span{from, to})
	}

	// at draws a firing instant in [5%, frac·95%] of the horizon.
	at := func(frac float64) time.Duration {
		span := float64(opt.Horizon) * 0.95 * frac
		lo := float64(opt.Horizon) * 0.05
		return time.Duration(lo + rng.Float64()*(span-lo))
	}

	for i := 0; i < opt.Ops; i++ {
		g := rng.Intn(opt.Shards)
		if crashed[g] == nil {
			crashed[g] = make(map[int]bool)
		}
		sub := NewPlan()
		switch kind := rng.Intn(4); {
		case kind == 0 && len(crashed[g]) < maxCrash:
			// Crash a not-yet-crashed replica of group g. The claim spans
			// crash→restart (crash→horizon when permanent): a restart
			// auto-trusts the replica, which must not land inside another
			// op's cut.
			r := rng.Intn(opt.Replicas)
			for crashed[g][r] {
				r = (r + 1) % opt.Replicas
			}
			ct := at(0.8)
			end := opt.Horizon
			var rt time.Duration
			if opt.Restarts {
				// Revive strictly inside the horizon: at least a quarter of
				// the remaining window after the crash, at most three
				// quarters, so the replica is verifiably down for a while
				// and verifiably back before settle. The replica stays in
				// the crash budget (see Restarts), so the guard holds.
				gap := opt.Horizon - ct
				rt = ct + gap/4 + time.Duration(rng.Int63n(int64(gap/2)+1))
				end = rt
			}
			if !free(g, r, ct, end) {
				continue
			}
			claim(g, r, ct, end)
			crashed[g][r] = true
			sub.CrashAt(ct, r)
			if opt.Restarts {
				sub.RestartAt(rt, r)
			}
		case kind == 1:
			// False-suspicion pulse: replicas (and sometimes the client)
			// wrongly suspect a peer for a window, then recover.
			ri := rng.Intn(opt.Replicas)
			start := at(0.6)
			width := opt.Horizon/20 + time.Duration(rng.Int63n(int64(opt.Horizon)/4))
			if !free(g, ri, start, start+width) {
				continue
			}
			claim(g, ri, start, start+width)
			r := simnet.ProcessID(fmt.Sprintf("replica-%d", ri))
			sub.SuspectAt(start, r)
			if rng.Intn(2) == 0 {
				sub.ClientSuspectAt(start, r)
			}
			sub.UnsuspectAt(start+width, r)
		case kind == 2:
			// Delay storm window.
			start := at(0.6)
			width := opt.Horizon/20 + time.Duration(rng.Int63n(int64(opt.Horizon)/4))
			factor := 2 + rng.Float64()*(opt.MaxStormFactor-2)
			sub.DelayStormAt(start, width, factor)
		default:
			// Isolate one replica behind a cut for a window, then heal.
			// The cut side is a single replica — always a minority — so
			// the majority side (which keeps the client) can move on. The
			// cut comes with matching suspicion for its duration: scripted
			// detectors play ◇P here, and a ◇P detector *would* suspect an
			// unreachable peer (without it, a reply black-holed by the cut
			// strands the client forever — the schedule would violate the
			// model's eventual-accuracy assumption, not test the
			// protocol). Recovery lands strictly after the heal so the
			// client never re-awaits a still-severed replica.
			r := rng.Intn(opt.Replicas)
			start := at(0.6)
			width := opt.Horizon/20 + time.Duration(rng.Int63n(int64(opt.Horizon)/4))
			// The claim runs through the post-heal recovery: the replica's
			// detector state is this op's until the final unsuspect.
			if !free(g, r, start, start+width+opt.Horizon/20) {
				continue
			}
			claim(g, r, start, start+width+opt.Horizon/20)
			rid := simnet.ProcessID(fmt.Sprintf("replica-%d", r))
			var rest []simnet.ProcessID
			for q := 0; q < opt.Replicas; q++ {
				if q != r {
					rest = append(rest, simnet.ProcessID(fmt.Sprintf("replica-%d", q)))
				}
			}
			rest = append(rest, "client")
			sub.PartitionAt(start, []simnet.ProcessID{rid}, rest)
			sub.SuspectAt(start, rid)
			sub.ClientSuspectAt(start, rid)
			sub.HealAt(start + width)
			sub.UnsuspectAt(start+width+opt.Horizon/20, rid)
		}
		if opt.Shards > 1 {
			p.OnShard(g, sub)
		} else {
			// Append the ops verbatim (not through add) so crash/restart
			// identity survives into the merged plan for the shrinker.
			p.ops = append(p.ops, sub.Ops()...)
			// Drawn partitions name explicit process sides, so the plan
			// inherits the sub-plan's topology binding (OnShard already
			// propagates it on the sharded branch).
			p.topologyBound = p.topologyBound || sub.topologyBound
		}
	}
	return p
}
