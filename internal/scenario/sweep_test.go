package scenario

import (
	"reflect"
	"testing"
)

func TestSeeds(t *testing.T) {
	s := Seeds(10, 3)
	if len(s) != 3 || s[0] != 10 || s[2] != 12 {
		t.Errorf("Seeds = %v", s)
	}
}

// TestSweepDeterministicReplay pins the sweep runner's replayability: the
// same scenario over the same seed set yields a deeply equal
// VerdictDistribution regardless of how many workers execute it. Runs are
// isolated clusters on isolated virtual clocks, so parallel execution must
// not be observable in the fold.
func TestSweepDeterministicReplay(t *testing.T) {
	sc, ok := Get("crash-failover")
	if !ok {
		t.Fatal("crash-failover not registered")
	}
	seeds := Seeds(1000, 64)
	serial := Sweep(sc, seeds, 1)
	parallel := Sweep(sc, seeds, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker count observable in the distribution:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	again := Sweep(sc, seeds, 8)
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("replay of the same sweep differs:\nfirst:  %+v\nsecond: %+v", parallel, again)
	}
	if serial.Runs != len(seeds) {
		t.Errorf("runs = %d, want %d", serial.Runs, len(seeds))
	}
}

// TestSweepCrashFailoverThousandSeeds is the acceptance sweep: one
// thousand crash-failover schedules, every one of which must stay x-able
// and answered. This is the claim-at-scale version of T1's centerpiece
// row.
func TestSweepCrashFailoverThousandSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-seed sweep skipped in -short mode")
	}
	sc, _ := Get("crash-failover")
	d := Sweep(sc, Seeds(1, 1000), 0)
	if d.Runs != 1000 {
		t.Fatalf("runs = %d", d.Runs)
	}
	if rate := d.XAbleRate(); rate != 1.0 {
		t.Errorf("x-able rate = %.4f over %d seeds, want 1.0; failing seeds: %v", rate, d.Runs, d.Failing)
	}
	if rate := d.RepliedRate(); rate != 1.0 {
		t.Errorf("replied rate = %.4f, want 1.0", rate)
	}
	if d.Effects[1] != 1000 {
		t.Errorf("effects-in-force histogram = %v, want all mass on 1", d.Effects)
	}
}

// TestSweepBatchedAdversarialRates sweeps the slot plane's adversarial
// scenarios: batching and pipelining must hold the x-able and replied
// rates at 1.0 under owner crashes and heartbeat-detector delay storms,
// seed after seed — the throughput plane buys speed, not a weaker
// correctness story. Failing seeds here feed the same record → shrink
// pipeline as the per-request plane (batched single-cluster runs stay
// inside the record/replay plane).
func TestSweepBatchedAdversarialRates(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 25
	}
	for _, name := range []string{"batch-crash-failover", "batch-storm-hb"} {
		sc, _ := Get(name)
		d := Sweep(sc, Seeds(700, n), 0)
		if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
			t.Errorf("%s: x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
				name, d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
		}
	}
}

// TestSweepAdversarialSetRates sweeps the partition and delay-storm
// scenarios over a smaller population: the new adversarial rows must hold
// at rate 1.0 too, not just on one lucky seed.
func TestSweepAdversarialSetRates(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 25
	}
	for _, name := range []string{"partition", "delay-storm"} {
		sc, _ := Get(name)
		d := Sweep(sc, Seeds(500, n), 0)
		if d.XAbleRate() != 1.0 || d.RepliedRate() != 1.0 {
			t.Errorf("%s: x-able %.4f replied %.4f over %d seeds, want 1.0; failing: %v",
				name, d.XAbleRate(), d.RepliedRate(), d.Runs, d.Failing)
		}
		if d.Effects[1] != n {
			t.Errorf("%s: effects histogram %v, want all mass on 1", name, d.Effects)
		}
	}
}
