package scenario

import (
	"testing"
	"time"

	"xability/internal/simnet"
)

// TestLostReplyResubmissionAnswered pins the submit-path watcher
// (core.Server.awaitFixed) against the liveness hole the seeded random
// fault generator found: the round owner's reply to the client is
// black-holed by the link plane, a transient client-side suspicion makes
// the client fail over and resubmit to a non-owner — which loses the
// round-1 ownership race — and by the time the owner's result is fixed,
// nobody suspects the owner, so the cleaner's re-reply path never fires.
// The resubmitted-to replica must watch the request's consensus state and
// forward the fixed result itself; without that the client awaits an
// unsuspected, silent replica forever.
func TestLostReplyResubmissionAnswered(t *testing.T) {
	r0 := simnet.ProcessID("replica-0")
	sc := Scenario{
		Name: "lost-reply-regression",
		// Stretch the owner's execution past the fault window so its
		// reply lands while the client⇄owner link is down.
		Failures: []Failure{{Action: "debit", Prob: 1, Budget: 6}},
		Plan: NewPlan().
			DropLinkAt(time.Millisecond, "client", r0).
			ClientSuspectAt(time.Millisecond, r0).
			UnsuspectAt(2*time.Millisecond, r0).
			HealAt(8 * time.Millisecond),
		Settle: 20 * time.Millisecond,
		// Fail fast instead of hanging the test if the watcher regresses.
		Deadline: 200 * time.Millisecond,
	}
	for seed := int64(1); seed <= 10; seed++ {
		o := Execute(sc, seed)
		if o.TimedOut || !o.Replied {
			t.Fatalf("seed %d: timedout=%v replied=%v — lost reply was never forwarded", seed, o.TimedOut, o.Replied)
		}
		if !o.XAble {
			t.Errorf("seed %d: run answered but not x-able: %+v", seed, o.Report)
		}
		if o.EffectsInForce != 1 {
			t.Errorf("seed %d: effects in force = %d, want exactly 1", seed, o.EffectsInForce)
		}
	}
}
