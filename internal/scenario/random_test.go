package scenario

import (
	"strings"
	"testing"
	"time"

	"xability/internal/simnet"
	"xability/internal/vclock"
)

// TestRandomPlanSameSeedIdentical pins the generator's contract: equal
// (seed, options) pairs generate identical plans — op for op, instant for
// instant — which is what makes RandomFaults scenarios replayable values.
func TestRandomPlanSameSeedIdentical(t *testing.T) {
	for _, opt := range []RandomOptions{
		{},
		{Ops: 8, Horizon: 10 * time.Millisecond},
		{Ops: 6, Shards: 4},
	} {
		for seed := int64(1); seed <= 50; seed++ {
			a := NewPlan().Random(seed, opt)
			b := NewPlan().Random(seed, opt)
			if a.String() != b.String() {
				t.Fatalf("seed %d opt %+v: two generations differ:\n%s\n--- vs ---\n%s", seed, opt, a, b)
			}
			if len(a.Ops()) != len(b.Ops()) || a.ShardBound() != b.ShardBound() {
				t.Fatalf("seed %d opt %+v: op count or shard binding differ", seed, opt)
			}
		}
	}
}

// TestRandomPlanSeedsDiffer checks the other direction: the generator
// actually varies with the seed (a sweep covers many schedules, not one).
func TestRandomPlanSeedsDiffer(t *testing.T) {
	seen := make(map[string]bool)
	for seed := int64(1); seed <= 20; seed++ {
		seen[NewPlan().Random(seed, RandomOptions{}).String()] = true
	}
	if len(seen) < 15 {
		t.Errorf("20 seeds produced only %d distinct plans", len(seen))
	}
}

// recordingTarget implements Target and counts what a plan does to it;
// sharded variants hand out one recorder per group.
type recordingTarget struct {
	clk      vclock.Clock
	net      *simnet.Network
	crashes  map[int]bool
	suspects map[simnet.ProcessID]bool
	clientS  map[simnet.ProcessID]bool
}

func newRecordingTarget(clk vclock.Clock) *recordingTarget {
	return &recordingTarget{
		clk:      clk,
		net:      simnet.New(simnet.Config{Clock: clk}),
		crashes:  map[int]bool{},
		suspects: map[simnet.ProcessID]bool{},
		clientS:  map[simnet.ProcessID]bool{},
	}
}

func (r *recordingTarget) Clock() vclock.Clock      { return r.clk }
func (r *recordingTarget) Network() *simnet.Network { return r.net }
func (r *recordingTarget) CrashServer(i int)        { r.crashes[i] = true }
func (r *recordingTarget) SuspectEverywhere(p simnet.ProcessID, v bool) {
	r.suspects[p] = v
}
func (r *recordingTarget) ClientSuspect(p simnet.ProcessID, v bool) {
	r.clientS[p] = v
}

type recordingSharded struct {
	clk    vclock.Clock
	groups []*recordingTarget
}

func (r *recordingSharded) Clock() vclock.Clock      { return r.clk }
func (r *recordingSharded) Network() *simnet.Network { return r.groups[0].net }
func (r *recordingSharded) NumShards() int           { return len(r.groups) }
func (r *recordingSharded) ShardTarget(s int) Target { return r.groups[s] }
func (r *recordingSharded) CrashServer(i int) {
	for _, g := range r.groups {
		g.CrashServer(i)
	}
}
func (r *recordingSharded) SuspectEverywhere(p simnet.ProcessID, v bool) {
	for _, g := range r.groups {
		g.SuspectEverywhere(p, v)
	}
}
func (r *recordingSharded) ClientSuspect(p simnet.ProcessID, v bool) {
	for _, g := range r.groups {
		g.ClientSuspect(p, v)
	}
}

// TestRandomPlanRespectsLiveness applies many generated schedules to a
// recording target, runs the virtual clock past the horizon, and asserts
// the generator's liveness guards semantically: at most a minority of
// each group crashed, and every suspicion — replica- and client-side —
// was recovered by the end. (Healed partitions and calmed storms are
// exercised against the real network fault plane in the sweep tests.)
func TestRandomPlanRespectsLiveness(t *testing.T) {
	const replicas = 3
	run := func(seed int64, opt RandomOptions) []*recordingTarget {
		clk := vclock.NewVirtual()
		shards := opt.Shards
		if shards < 1 {
			shards = 1
		}
		groups := make([]*recordingTarget, shards)
		for s := range groups {
			groups[s] = newRecordingTarget(clk)
		}
		var tgt Target = groups[0]
		if shards > 1 {
			tgt = &recordingSharded{clk: clk, groups: groups}
		}
		p := NewPlan().Random(seed, opt)
		clk.Enter()
		p.Apply(tgt)
		clk.Sleep(p.Horizon() + time.Millisecond)
		clk.Exit()
		return groups
	}
	for seed := int64(1); seed <= 100; seed++ {
		for _, opt := range []RandomOptions{{Ops: 6}, {Ops: 8, Shards: 4}} {
			for s, g := range run(seed, opt) {
				if len(g.crashes) > (replicas-1)/2 {
					t.Fatalf("seed %d shard %d: %d crashes exceed the minority bound", seed, s, len(g.crashes))
				}
				for p, v := range g.suspects {
					if v {
						t.Errorf("seed %d shard %d: suspicion of %s never recovered", seed, s, p)
					}
				}
				for p, v := range g.clientS {
					if v {
						t.Errorf("seed %d shard %d: client suspicion of %s never recovered", seed, s, p)
					}
				}
			}
		}
	}
}

// TestRandomPlanShardQualified checks that sharded draws actually address
// groups (the plan is shard-bound and names shards in its ops).
func TestRandomPlanShardQualified(t *testing.T) {
	p := NewPlan().Random(7, RandomOptions{Ops: 8, Shards: 4})
	if !p.ShardBound() {
		t.Fatal("sharded random plan is not shard-bound")
	}
	if !strings.Contains(p.String(), "shard ") {
		t.Fatalf("sharded random plan names no shards:\n%s", p)
	}
	if p2 := NewPlan().Random(7, RandomOptions{Ops: 8}); p2.ShardBound() {
		t.Fatal("unsharded random plan claims to be shard-bound")
	}
}

// TestRandomPlanPartitionIsTopologyBound guards the flag propagation on
// the unsharded branch: a drawn plan containing a partition names
// explicit process sides, so it must refuse replica-count overrides.
func TestRandomPlanPartitionIsTopologyBound(t *testing.T) {
	sawPartition := false
	for seed := int64(1); seed <= 40; seed++ {
		p := NewPlan().Random(seed, RandomOptions{Ops: 6})
		if strings.Contains(p.String(), "partition") {
			sawPartition = true
			if !p.TopologyBound() {
				t.Fatalf("seed %d: drawn plan partitions named processes but is not topology-bound:\n%s", seed, p)
			}
		}
	}
	if !sawPartition {
		t.Skip("no seed in range drew a partition; widen the range")
	}
}
