package scenario

import (
	"reflect"
	"testing"
)

// TestBatchedScenarioRates runs the closed-loop slot-plane scenarios
// across a handful of seeds: the batched/pipelined protocol must stay
// exactly-once under the same adversarial schedules the per-request plane
// survives, with the strict (sequential) verifier still in force.
func TestBatchedScenarios(t *testing.T) {
	for _, name := range []string{"batch-nice", "batch-crash-failover", "batch-storm-hb"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		for seed := int64(1); seed <= 5; seed++ {
			o := Execute(sc, seed)
			if !o.XAble || !o.Replied {
				t.Errorf("%s seed %d: xable=%v replied=%v report=%+v",
					name, seed, o.XAble, o.Replied, o.Report)
			}
		}
	}
}

// TestOpenLoopScenarios runs the open-loop scenarios: every arrival's
// session must complete with a reply, the run must verify under the
// concurrent per-request relaxation, and the latency summary must cover
// every completed session.
func TestOpenLoopScenarios(t *testing.T) {
	for _, name := range []string{"open-loop-nice", "open-loop-batch", "shard-open-loop"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		for seed := int64(1); seed <= 3; seed++ {
			o := Execute(sc, seed)
			if !o.XAble || !o.Replied {
				t.Errorf("%s seed %d: xable=%v replied=%v report=%+v routing=%v",
					name, seed, o.XAble, o.Replied, o.Report, o.RoutingExact)
			}
			if o.Requests == 0 {
				t.Errorf("%s seed %d: generated no arrivals", name, seed)
			}
			if o.Latency.Count != o.Requests {
				t.Errorf("%s seed %d: latency summary covers %d sessions, %d arrived",
					name, seed, o.Latency.Count, o.Requests)
			}
			if o.EffectsInForce != o.Requests {
				t.Errorf("%s seed %d: %d effects in force for %d requests",
					name, seed, o.EffectsInForce, o.Requests)
			}
		}
	}
}

// TestBatchedDeterministicReplay pins byte-determinism of the throughput
// plane: a seeded batched/pipelined run executed twice yields deeply equal
// outcomes — Messages, SimTime, latency percentiles, effects included.
// The list crosses the new planes: closed-loop batched, batched under
// endogenous suspicion storms, open-loop batched, and the sharded
// open-loop composition.
func TestBatchedDeterministicReplay(t *testing.T) {
	for _, name := range []string{"batch-nice", "batch-storm-hb", "open-loop-batch", "shard-open-loop"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		for seed := int64(1); seed <= 3; seed++ {
			a := Execute(sc, seed)
			b := Execute(sc, seed)
			a.History, b.History = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s seed %d: reruns diverge:\nfirst:  %+v\nsecond: %+v", name, seed, a, b)
			}
		}
	}
}
