package trace

import (
	"errors"
	"sync"
	"testing"

	"xability/internal/event"
)

func TestObserveOrder(t *testing.T) {
	o := New()
	o.Observe(event.S("a", "1"))
	o.Observe(event.C("a", "2"))
	h := o.History()
	want := event.History{event.S("a", "1"), event.C("a", "2")}
	if !h.Equal(want) {
		t.Errorf("history = %v", h)
	}
	if o.Len() != 2 {
		t.Errorf("Len = %d", o.Len())
	}
}

func TestHistorySnapshotIsolation(t *testing.T) {
	o := New()
	o.Observe(event.S("a", "1"))
	h := o.History()
	o.Observe(event.C("a", "2"))
	if len(h) != 1 {
		t.Error("snapshot grew after later observations")
	}
	h[0] = event.C("x", "y")
	if !o.History()[0].Equal(event.S("a", "1")) {
		t.Error("mutating snapshot affected observer")
	}
}

func TestObserveWithAtomicity(t *testing.T) {
	o := New()
	err := o.ObserveWith(event.C("a", "v"), func() error { return nil })
	if err != nil || o.Len() != 1 {
		t.Errorf("successful ObserveWith: err=%v len=%d", err, o.Len())
	}
	sentinel := errors.New("effect refused")
	err = o.ObserveWith(event.C("b", "v"), func() error { return sentinel })
	if err != sentinel {
		t.Errorf("err = %v", err)
	}
	if o.Len() != 1 {
		t.Error("failed effect still emitted its event")
	}
}

func TestConcurrentObserversTotalOrder(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Observe(event.S("a", "x"))
			}
		}()
	}
	wg.Wait()
	if o.Len() != writers*per {
		t.Errorf("observed %d events, want %d", o.Len(), writers*per)
	}
}

func TestReset(t *testing.T) {
	o := New()
	o.Observe(event.S("a", "1"))
	o.Reset()
	if o.Len() != 0 {
		t.Error("reset did not clear")
	}
}
