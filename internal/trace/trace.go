// Package trace implements the hypothetical event observer of §2.2: a
// single total order over the events produced by all processes of a run.
//
// The observer is the linearization point of the model: the environment
// (internal/env) emits an action's completion event under the observer's
// lock together with the application of the action's side effect, so the
// observed total order is consistent with the order in which side effects
// actually took place.
package trace

import (
	"sync"

	"xability/internal/event"
)

// Observer collects events in observation order. It is safe for concurrent
// use; the zero value is ready.
type Observer struct {
	mu     sync.Mutex
	events event.History
}

// New returns an empty observer.
func New() *Observer { return &Observer{} }

// Observe appends e to the history.
func (o *Observer) Observe(e event.Event) {
	o.mu.Lock()
	o.events = append(o.events, e)
	o.mu.Unlock()
}

// ObserveWith atomically runs fn and, if fn succeeds, appends e — the
// linearization primitive used by the environment to couple a side effect
// with its completion event. fn's error is returned and suppresses the
// event.
func (o *Observer) ObserveWith(e event.Event, fn func() error) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := fn(); err != nil {
		return err
	}
	o.events = append(o.events, e)
	return nil
}

// History returns a snapshot of the observed history.
func (o *Observer) History() event.History {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.events.Clone()
}

// Len returns the number of observed events.
func (o *Observer) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.events)
}

// Reset clears the history.
func (o *Observer) Reset() {
	o.mu.Lock()
	o.events = nil
	o.mu.Unlock()
}
