package baseline

import (
	"sync"
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/reduce"
)

// testHandler applies a transfer effect to a shared counter so duplication
// is observable both through the env audit and through application state.
type testHandler struct {
	mu    sync.Mutex
	total int
	// unique makes the handler non-deterministic: each execution returns a
	// distinct value, so duplicate executions produce diverging completion
	// events that no reduction rule can absorb.
	unique bool
	execs  int
}

func (h *testHandler) handle(req action.Request) action.Value {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total += 10
	h.execs++
	if h.unique {
		return action.Value("ok-" + string(rune('a'+h.execs)))
	}
	return "ok"
}

func (h *testHandler) sum() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func transferRegistry() *action.Registry {
	reg := action.NewRegistry()
	reg.MustRegister("transfer", action.KindIdempotent) // classification is
	// irrelevant to the baselines (they use the raw path); the registry is
	// only needed by the x-ability checker below.
	return reg
}

func TestPrimaryBackupNiceRun(t *testing.T) {
	h := &testHandler{}
	c := NewCluster(ClusterConfig{Scheme: PrimaryBackup, Replicas: 3, Seed: 1, Handler: h.handle})
	defer c.Stop()
	v := c.Client.SubmitUntilSuccess(action.NewRequest("transfer", "acct"))
	if v != "ok" {
		t.Fatalf("transfer = %q", v)
	}
	c.Net.Quiesce()
	if h.sum() != 10 {
		t.Errorf("effect applied %d times’ worth, want once", h.sum()/10)
	}
}

func TestPrimaryBackupDuplicatesOnFailover(t *testing.T) {
	h := &testHandler{unique: true}
	c := NewCluster(ClusterConfig{
		Scheme:    PrimaryBackup,
		Replicas:  3,
		Seed:      2,
		Handler:   h.handle,
		SyncDelay: 5 * time.Millisecond, // widen the execute→sync window
	})
	defer c.Stop()

	clk := c.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- c.Client.SubmitUntilSuccess(action.NewRequest("transfer", "acct")) })

	// Crash the primary inside the duplication window: it has executed but
	// neither synced to the backups nor replied.
	clk.Go(func() {
		clk.Sleep(2 * time.Millisecond)
		c.CrashServer(0)
		c.cdet.SetSuspected("replica-0", true)
	})

	v := <-done
	if v == "" {
		t.Fatal("no reply")
	}
	c.Net.Quiesce()
	if h.sum() != 20 {
		t.Fatalf("expected the classic primary-backup duplication (2 applications), got %d", h.sum()/10)
	}

	// The x-ability checker catches it: the duplicated executions of a
	// non-deterministic action produced diverging completion events, which
	// rule 18 (whose pattern shares the output value between attempt and
	// success) cannot absorb. The x-ability protocol avoids this with
	// result agreement; primary-backup has none.
	reqs, _ := c.Client.Log()
	n := reduce.New(transferRegistry())
	spec, err := reduce.SpecFor(transferRegistry(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := n.XAbleTo(c.Observer.History(), []reduce.TargetSpec{spec})
	if ok {
		t.Error("duplicated history must not be x-able")
	}
}

func TestActiveReplicationDuplicatesByConstruction(t *testing.T) {
	h := &testHandler{}
	c := NewCluster(ClusterConfig{Scheme: Active, Replicas: 3, Seed: 3, Handler: h.handle})
	defer c.Stop()
	v := c.Client.SubmitUntilSuccess(action.NewRequest("transfer", "acct"))
	if v != "ok" {
		t.Fatalf("transfer = %q", v)
	}
	c.Net.Quiesce()
	if h.sum() != 30 {
		t.Fatalf("active replication should apply the effect on every replica (3), got %d", h.sum()/10)
	}
	reqs, _ := c.Client.Log()
	if got := c.Env.Applied("transfer", reqs[0].EffectiveInput()); got != 3 {
		t.Errorf("audit: applied = %d, want 3", got)
	}
}

func TestActiveReplicationOrdersRequests(t *testing.T) {
	h := &testHandler{}
	c := NewCluster(ClusterConfig{Scheme: Active, Replicas: 3, Seed: 4, Handler: h.handle})
	defer c.Stop()
	for i := 0; i < 5; i++ {
		if v := c.Client.SubmitUntilSuccess(action.NewRequest("transfer", "acct")); v != "ok" {
			t.Fatalf("transfer %d = %q", i, v)
		}
	}
	c.Net.Quiesce()
	if h.sum() != 5*3*10 {
		t.Errorf("5 requests × 3 replicas expected, total %d", h.sum()/10)
	}
}

func TestPrimaryBackupResubmissionAfterSync(t *testing.T) {
	h := &testHandler{}
	c := NewCluster(ClusterConfig{Scheme: PrimaryBackup, Replicas: 3, Seed: 5, Handler: h.handle})
	defer c.Stop()
	v := c.Client.SubmitUntilSuccess(action.NewRequest("transfer", "acct"))
	if v != "ok" {
		t.Fatal(v)
	}
	c.Net.Quiesce() // let the processed-notice reach the backups

	// Fail over without a crash: the client suspects the primary wrongly
	// and retries at a backup, which has the processed record and must not
	// re-execute.
	reqs, _ := c.Client.Log()
	c.cdet.SetSuspected("replica-0", true)
	for _, srv := range c.pbs {
		_ = srv
	}
	c.dets["replica-1"].SetSuspected("replica-0", true) // backup believes itself primary
	v2, err := c.Client.Submit(reqs[0])
	if err != nil {
		// First attempt may hit the suspected primary and fail; retry.
		v2, err = c.Client.Submit(reqs[0])
	}
	if err != nil || v2 != "ok" {
		t.Fatalf("re-submission = (%q, %v)", v2, err)
	}
	c.Net.Quiesce()
	if h.sum() != 10 {
		t.Errorf("synced re-submission must not duplicate; total = %d", h.sum()/10)
	}
}
