package baseline

import (
	"errors"
	"fmt"
	"time"

	"xability/internal/action"
	"xability/internal/env"
	"xability/internal/fd"
	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/trace"
	"xability/internal/vclock"
)

// Scheme selects the baseline protocol.
type Scheme int

const (
	// PrimaryBackup runs the [BMST93]-style scheme.
	PrimaryBackup Scheme = iota
	// Active runs the [Sch93]-style scheme.
	Active
)

// ClusterConfig describes a baseline deployment.
type ClusterConfig struct {
	Scheme   Scheme
	Replicas int
	Seed     int64
	Net      simnet.Config
	Handler  Handler
	// SyncDelay widens primary-backup's duplication window (tests).
	SyncDelay time.Duration
	// Network, when non-nil, deploys onto an existing (Reset) network
	// instead of building one from Net — see core.ClusterConfig.Network.
	Network *simnet.Network
}

// Cluster is an assembled baseline service with the same observable
// surface as core.Cluster: a client, a shared environment, an observer.
type Cluster struct {
	Net      *simnet.Network
	Observer *trace.Observer
	Env      *env.Env
	Client   *Client

	pbs  []*PBServer
	acts []*ActiveServer
	dets map[simnet.ProcessID]*fd.Scripted
	cdet *fd.Scripted
}

// NewCluster assembles and starts a baseline service.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Net.Seed == 0 {
		cfg.Net.Seed = cfg.Seed
	}
	net := cfg.Network
	if net == nil {
		net = simnet.New(cfg.Net)
	}
	observer := trace.New()
	world := env.New(observer, cfg.Seed)
	c := &Cluster{Net: net, Observer: observer, Env: world, dets: make(map[simnet.ProcessID]*fd.Scripted)}

	ids := make([]simnet.ProcessID, cfg.Replicas)
	for i := range ids {
		ids[i] = simnet.ProcessID(fmt.Sprintf("replica-%d", i))
	}
	clientID := simnet.ProcessID("client")

	for _, id := range ids {
		ep := net.Register(id)
		det := fd.NewScripted(net)
		c.dets[id] = det
		switch cfg.Scheme {
		case Active:
			srv := NewActiveServer(ActiveConfig{
				ID: id, Endpoint: ep, Order: ids, Env: world, Handler: cfg.Handler, Network: net,
			})
			srv.Start()
			c.acts = append(c.acts, srv)
		default:
			srv := NewPBServer(PBConfig{
				ID: id, Endpoint: ep, Order: ids, Detector: det, Env: world,
				Handler: cfg.Handler, Network: net, SyncDelay: cfg.SyncDelay,
			})
			srv.Start()
			c.pbs = append(c.pbs, srv)
		}
	}

	c.cdet = fd.NewScripted(net)
	clientEP := net.Register(clientID)
	c.Client = &Client{
		id:       clientID,
		ep:       clientEP,
		clk:      clientEP.Clock(),
		replicas: ids,
		det:      c.cdet,
		poll:     200 * time.Microsecond,
		m:        clientEP.Metrics(),
		tr:       clientEP.Trace(),
	}
	return c
}

// Clock returns the cluster's clock (virtual by default; configure via
// ClusterConfig.Net.Clock). Scenario drivers schedule fault injection on it
// so injections land at fixed points of simulated time.
func (c *Cluster) Clock() vclock.Clock { return c.Net.Clock() }

// Network returns the cluster's simulated network. Scenario drivers reach
// through it to the link fault plane.
func (c *Cluster) Network() *simnet.Network { return c.Net }

// ClientDetector returns the client's scripted failure detector.
func (c *Cluster) ClientDetector() *fd.Scripted { return c.cdet }

// SuspectEverywhere injects (or clears) a suspicion of target at every
// replica's scripted detector (not the client's) — the same surface
// core.Cluster exposes, so one scenario fault plan drives both stacks.
func (c *Cluster) SuspectEverywhere(target simnet.ProcessID, v bool) {
	for id, d := range c.dets {
		if id != target {
			d.SetSuspected(target, v)
		}
	}
}

// ClientSuspect injects (or clears) a suspicion at the client's detector.
func (c *Cluster) ClientSuspect(target simnet.ProcessID, v bool) {
	c.cdet.SetSuspected(target, v)
}

// Detector returns the scripted detector of a replica.
func (c *Cluster) Detector(id simnet.ProcessID) *fd.Scripted { return c.dets[id] }

// CrashServer crashes replica i.
func (c *Cluster) CrashServer(i int) {
	if len(c.pbs) > 0 {
		c.pbs[i].Crash()
	} else {
		c.acts[i].Crash()
	}
}

// PB returns the primary-backup server i (nil for active clusters).
func (c *Cluster) PB(i int) *PBServer {
	if len(c.pbs) == 0 {
		return nil
	}
	return c.pbs[i]
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, s := range c.pbs {
		s.Stop()
	}
	for _, s := range c.acts {
		s.Stop()
	}
	c.Net.Close()
}

// Client is the baseline client stub: same retry discipline as the
// x-ability client (submit to replica i, fail over on suspicion), but
// without any idempotence guarantee from the service — which is the point.
type Client struct {
	id       simnet.ProcessID
	ep       *simnet.Endpoint
	clk      vclock.Clock
	replicas []simnet.ProcessID
	det      *fd.Scripted
	poll     time.Duration
	m        *obs.Metrics // nil-safe run metrics
	tr       *obs.Trace   // nil-safe span recorder

	i        int
	seq      int
	attempts int
	requests []action.Request
	replies  []action.Value
}

// ErrSubmitFailed mirrors core.ErrSubmitFailed for baselines.
var ErrSubmitFailed = errors.New("baseline: submit failed (replica suspected)")

// ErrClientClosed mirrors core.ErrClientClosed.
var ErrClientClosed = errors.New("baseline: client endpoint closed")

// Submit sends a tagged request to the current replica and awaits a result
// or a suspicion.
func (c *Client) Submit(req action.Request) (action.Value, error) {
	c.clk.Enter()
	defer c.clk.Exit()
	target := c.replicas[c.i]
	c.attempts++
	c.m.Inc(obs.ReqSubmitted)
	c.ep.Send(target, msgSubmit, submitPayload{Req: req, Client: c.id})
	for {
		for {
			msg, ok := c.ep.TryRecv()
			if !ok {
				break
			}
			if msg.Type != msgResult {
				continue
			}
			if p, ok := msg.Payload.(resultPayload); ok && p.ReqID == req.ID {
				return p.Value, nil
			}
		}
		if c.ep.Closed() {
			return "", ErrClientClosed
		}
		if c.det.Suspect(target) {
			c.i = (c.i + 1) % len(c.replicas)
			c.m.Inc(obs.ReqFailovers)
			return "", ErrSubmitFailed
		}
		// Event-driven await: a delivery wakes the wait immediately; the
		// poll period only bounds how stale the suspicion check may get.
		c.ep.Wait(c.poll)
	}
}

// SubmitUntilSuccess retries Submit until a reply arrives and logs the
// request/reply pair.
func (c *Client) SubmitUntilSuccess(req action.Request) action.Value {
	c.clk.Enter()
	defer c.clk.Exit()
	c.seq++
	req = req.WithID(fmt.Sprintf("%s-%d", c.id, c.seq))
	start := c.clk.Now()
	span := c.tr.Begin(start, string(c.id), "request", req.ID)
	for {
		v, err := c.Submit(req)
		if err == nil {
			c.requests = append(c.requests, req)
			c.replies = append(c.replies, v)
			now := c.clk.Now()
			c.m.Observe(now - start)
			c.m.Inc(obs.ReqReplied)
			c.tr.End(now, string(c.id), "request", span)
			return v
		}
		if errors.Is(err, ErrClientClosed) {
			return ""
		}
		// Pace the retry on the clock (see core.Client.SubmitUntilSuccess).
		c.clk.Sleep(c.poll)
	}
}

// Attempts reports submit attempts made.
func (c *Client) Attempts() int { return c.attempts }

// Log returns the request/reply log.
func (c *Client) Log() ([]action.Request, []action.Value) {
	return append([]action.Request(nil), c.requests...), append([]action.Value(nil), c.replies...)
}
