// Package baseline implements the two classical replication schemes the
// paper positions x-ability against (§1, §6): primary-backup [BMST93] and
// active replication [Sch93], both *without* x-ability's side-effect
// coordination.
//
// Both run on the same substrates as the x-ability protocol (simnet
// network, trace observer, env environment) but apply side effects through
// env.ExecRaw — the uncoordinated path — because neither scheme has the
// retry/cancel/agreement machinery to exploit idempotence or undoability.
// Experiment E7 submits the same workloads to these baselines and to
// internal/core and lets the x-ability checker and the environment's
// exactly-once audit expose the difference:
//
//   - Primary-backup duplicates a side effect when the primary crashes
//     after executing but before its processed-notice reaches the backups:
//     the client's retry makes the new primary execute again.
//   - Active replication duplicates every side effect n times by
//     construction: every replica executes every request.
package baseline

import (
	"sync"
	"time"

	"xability/internal/action"
	"xability/internal/env"
	"xability/internal/event"
	"xability/internal/fd"
	"xability/internal/simnet"
	"xability/internal/vclock"
)

// Handler executes a request's business logic and returns the output
// value. It runs under the environment lock (via env.ExecRaw).
type Handler func(req action.Request) action.Value

// Message types.
const (
	msgSubmit    = "pb-submit"
	msgResult    = "pb-result"
	msgProcessed = "pb-processed" // primary → backups: request done
	msgSequenced = "ab-sequenced" // sequencer → replicas: ordered request
)

type submitPayload struct {
	Req    action.Request
	Client simnet.ProcessID
}

type resultPayload struct {
	ReqID string
	Value action.Value
}

type processedPayload struct {
	ReqID string
	Value action.Value
}

type sequencedPayload struct {
	Seq    int
	Req    action.Request
	Client simnet.ProcessID
}

// PBServer is one primary-backup replica. The primary is the first live
// replica in the configured order; every replica answers submit messages
// (the client fails over by retrying the next replica), executing only if
// it believes itself primary.
type PBServer struct {
	id       simnet.ProcessID
	ep       *simnet.Endpoint
	order    []simnet.ProcessID
	det      fd.Detector
	world    *env.Env
	handler  Handler
	net      *simnet.Network
	clk      vclock.Clock
	crashGap time.Duration // test hook: delay between execute and processed-notice

	mu        sync.Mutex
	stopped   bool
	processed map[string]action.Value
}

// PBConfig assembles a primary-backup replica.
type PBConfig struct {
	ID       simnet.ProcessID
	Endpoint *simnet.Endpoint
	Order    []simnet.ProcessID
	Detector fd.Detector
	Env      *env.Env
	Handler  Handler
	Network  *simnet.Network
	// SyncDelay widens the window between executing a request and
	// propagating the processed-notice to backups — the window in which a
	// primary crash causes duplication. Zero keeps the window minimal (it
	// still exists).
	SyncDelay time.Duration
}

// NewPBServer builds a replica.
func NewPBServer(cfg PBConfig) *PBServer {
	return &PBServer{
		id:        cfg.ID,
		ep:        cfg.Endpoint,
		order:     append([]simnet.ProcessID(nil), cfg.Order...),
		det:       cfg.Detector,
		world:     cfg.Env,
		handler:   cfg.Handler,
		net:       cfg.Network,
		clk:       cfg.Network.Clock(),
		crashGap:  cfg.SyncDelay,
		processed: make(map[string]action.Value),
	}
}

// Start launches the receive loop on the network clock.
func (s *PBServer) Start() { s.clk.Go(s.loop) }

// Stop halts the server.
func (s *PBServer) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Crash crashes the replica.
func (s *PBServer) Crash() {
	s.Stop()
	s.net.Crash(s.id)
}

// primary reports whether this replica currently believes itself primary:
// the first replica in the order it does not suspect.
func (s *PBServer) primary() bool {
	for _, id := range s.order {
		if id == s.id {
			return true
		}
		if !s.det.Suspect(id) {
			return false
		}
	}
	return false
}

func (s *PBServer) loop() {
	for {
		msg, ok := s.ep.Recv()
		if !ok {
			return
		}
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			return
		}
		switch msg.Type {
		case msgSubmit:
			p, ok := msg.Payload.(submitPayload)
			if !ok {
				continue
			}
			s.handleSubmit(p)
		case msgProcessed:
			if p, ok := msg.Payload.(processedPayload); ok {
				s.mu.Lock()
				s.processed[p.ReqID] = p.Value
				s.mu.Unlock()
			}
		}
	}
}

func (s *PBServer) handleSubmit(p submitPayload) {
	s.mu.Lock()
	v, done := s.processed[p.Req.ID]
	s.mu.Unlock()
	if done {
		s.ep.Send(p.Client, msgResult, resultPayload{ReqID: p.Req.ID, Value: v})
		return
	}
	if !s.primary() {
		return // a backup stays silent; the client will fail over
	}
	// Execute the action — uncoordinated: the raw effect applies on every
	// execution, and there is no cancel/commit protocol.
	obs := s.world.Observer()
	tagged := p.Req // keep the ID tag so the checker can attribute events
	obs.Observe(event.S(tagged.Action, tagged.EffectiveInput()).WithAnnotation(string(s.id)))
	res, err := s.world.ExecRaw(tagged.Action, tagged.EffectiveInput(), func() action.Value {
		return s.handler(p.Req)
	})
	if err != nil {
		return // action failed; the client will retry
	}
	if s.crashGap > 0 {
		s.clk.Sleep(s.crashGap) // the duplication window, widened for tests
	}
	s.mu.Lock()
	stopped := s.stopped
	if !stopped {
		s.processed[p.Req.ID] = res
	}
	s.mu.Unlock()
	if stopped {
		return // crashed before syncing or replying
	}
	for _, id := range s.order {
		if id != s.id {
			s.ep.Send(id, msgProcessed, processedPayload{ReqID: p.Req.ID, Value: res})
		}
	}
	s.ep.Send(p.Client, msgResult, resultPayload{ReqID: p.Req.ID, Value: res})
}

// ActiveServer is one active-replication replica: a sequencer (the first
// replica) assigns a total order and every replica executes every request
// in that order [Sch93]. Correctness of active replication requires
// deterministic actions; side effects on third parties are executed by
// every replica — the duplication x-ability exists to rule out.
type ActiveServer struct {
	id        simnet.ProcessID
	ep        *simnet.Endpoint
	order     []simnet.ProcessID
	world     *env.Env
	handler   Handler
	net       *simnet.Network
	clk       vclock.Clock
	isSeq     bool
	replyOnly simnet.ProcessID // only the sequencer replies (clients dedup anyway)

	mu      sync.Mutex
	stopped bool
	nextSeq int
	buffer  map[int]sequencedPayload
	applied int
}

// ActiveConfig assembles an active-replication replica.
type ActiveConfig struct {
	ID       simnet.ProcessID
	Endpoint *simnet.Endpoint
	Order    []simnet.ProcessID
	Env      *env.Env
	Handler  Handler
	Network  *simnet.Network
}

// NewActiveServer builds a replica; the first replica in Order is the
// sequencer.
func NewActiveServer(cfg ActiveConfig) *ActiveServer {
	return &ActiveServer{
		id:      cfg.ID,
		ep:      cfg.Endpoint,
		order:   append([]simnet.ProcessID(nil), cfg.Order...),
		world:   cfg.Env,
		handler: cfg.Handler,
		net:     cfg.Network,
		clk:     cfg.Network.Clock(),
		isSeq:   cfg.ID == cfg.Order[0],
		buffer:  make(map[int]sequencedPayload),
	}
}

// Start launches the receive loop on the network clock.
func (s *ActiveServer) Start() { s.clk.Go(s.loop) }

// Stop halts the server.
func (s *ActiveServer) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Crash crashes the replica.
func (s *ActiveServer) Crash() {
	s.Stop()
	s.net.Crash(s.id)
}

func (s *ActiveServer) loop() {
	for {
		msg, ok := s.ep.Recv()
		if !ok {
			return
		}
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			return
		}
		switch msg.Type {
		case msgSubmit:
			p, ok := msg.Payload.(submitPayload)
			if !ok || !s.isSeq {
				continue // only the sequencer orders requests
			}
			s.mu.Lock()
			s.nextSeq++
			sp := sequencedPayload{Seq: s.nextSeq, Req: p.Req, Client: p.Client}
			s.mu.Unlock()
			for _, id := range s.order {
				if id == s.id {
					s.deliver(sp)
				} else {
					s.ep.Send(id, msgSequenced, sp)
				}
			}
		case msgSequenced:
			if sp, ok := msg.Payload.(sequencedPayload); ok {
				s.deliver(sp)
			}
		}
	}
}

// deliver executes sequenced requests in order, buffering gaps.
func (s *ActiveServer) deliver(sp sequencedPayload) {
	s.mu.Lock()
	s.buffer[sp.Seq] = sp
	var ready []sequencedPayload
	for {
		next, ok := s.buffer[s.applied+1]
		if !ok {
			break
		}
		delete(s.buffer, s.applied+1)
		s.applied++
		ready = append(ready, next)
	}
	s.mu.Unlock()
	for _, r := range ready {
		s.execute(r)
	}
}

func (s *ActiveServer) execute(sp sequencedPayload) {
	obs := s.world.Observer()
	obs.Observe(event.S(sp.Req.Action, sp.Req.EffectiveInput()).WithAnnotation(string(s.id)))
	res, err := s.world.ExecRaw(sp.Req.Action, sp.Req.EffectiveInput(), func() action.Value {
		return s.handler(sp.Req)
	})
	if err != nil {
		return
	}
	// Every replica replies; the client takes the first answer.
	s.ep.Send(sp.Client, msgResult, resultPayload{ReqID: sp.Req.ID, Value: res})
}
