package simnet

import "testing"

// BenchmarkSendRecv measures one message through the network with zero
// configured delay (pure substrate overhead).
func BenchmarkSendRecv(b *testing.B) {
	n := New(Config{Seed: 1})
	defer n.Close()
	a := n.Register("a")
	dst := n.Register("b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send("b", "m", i)
		if _, ok := dst.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
}

// BenchmarkBroadcast measures fan-out to 6 peers.
func BenchmarkBroadcast(b *testing.B) {
	n := New(Config{Seed: 1})
	defer n.Close()
	src := n.Register("src")
	var eps []*Endpoint
	for i := 0; i < 6; i++ {
		eps = append(eps, n.Register(ProcessID(rune('a'+i))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Broadcast("m", i)
		for _, ep := range eps {
			if _, ok := ep.Recv(); !ok {
				b.Fatal("recv failed")
			}
		}
	}
}
