package simnet

import (
	"testing"
	"time"

	"xability/internal/schedule"
)

// drain receives n messages and returns their payloads with the virtual
// receive times.
func drain(t *testing.T, ep *Endpoint, n int) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		msg, ok := ep.Recv()
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		out = append(out, msg)
	}
	return out
}

// TestRecordLogsEveryDecision pins the recorder: one entry per send, in
// send order, with the link, the deadline fixed at send time, and the
// final drop/deliver verdict.
func TestRecordLogsEveryDecision(t *testing.T) {
	log := schedule.NewLog()
	n := New(Config{Seed: 7, MaxDelay: 300 * time.Microsecond, Record: log})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	n.Register("c")

	a.Send("b", "m", 1)
	a.Send("c", "m", 2)
	n.Quiesce() // both deliveries settle before the link goes down
	n.DropLink("a", "c")
	a.Send("c", "m", 3) // black-holed at send
	drain(t, b, 1)
	n.Quiesce()

	es := log.Entries()
	if len(es) != 3 {
		t.Fatalf("logged %d entries, want 3:\n%s", len(es), log)
	}
	if es[0].From != "a" || es[0].To != "b" || es[0].Type != "m" || es[0].Verdict != schedule.Delivered {
		t.Errorf("entry 0 = %v", es[0])
	}
	if es[1].Verdict != schedule.Delivered {
		t.Errorf("entry 1 = %v", es[1])
	}
	if es[2].Verdict != schedule.DroppedSend {
		t.Errorf("entry 2 = %v, want dropped@send", es[2])
	}
	for i, e := range es {
		if e.Index != i {
			t.Errorf("entry %d has index %d", i, e.Index)
		}
		if e.Deadline < e.SendAt {
			t.Errorf("entry %d deadline %v before send %v", i, e.Deadline, e.SendAt)
		}
	}
}

// TestRecordInFlightDropResolves pins the delivery-instant verdict: a
// message in the pipe when its link is severed resolves to dropped@deliver.
func TestRecordInFlightDropResolves(t *testing.T) {
	log := schedule.NewLog()
	n := New(Config{Seed: 8, MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Record: log})
	defer n.Close()
	a := n.Register("a")
	n.Register("b")

	a.Send("b", "m", 1)
	n.DropLink("a", "b") // sever while in flight
	n.Quiesce()

	es := log.Entries()
	if len(es) != 1 || es[0].Verdict != schedule.DroppedDeliver {
		t.Fatalf("entries = %v, want one dropped@deliver", es)
	}
}

// TestReplayVerbatimReproducesSchedule pins the replayer's fidelity: a
// verbatim replay delivers every message at the recorded deadline.
func TestReplayVerbatimReproducesSchedule(t *testing.T) {
	run := func(cfg Config) (*schedule.Log, []time.Duration) {
		log := schedule.NewLog()
		cfg.Record = log
		n := New(cfg)
		defer n.Close()
		a := n.Register("a")
		b := n.Register("b")
		clk := n.Clock()
		clk.Enter() // hold the schedule so all sends share one instant
		for i := 0; i < 20; i++ {
			a.Send("b", "m", i)
		}
		clk.Exit()
		var at []time.Duration
		for i := 0; i < 20; i++ {
			if _, ok := b.Recv(); !ok {
				t.Fatal("recv failed")
			}
			at = append(at, clk.Now())
		}
		return log, at
	}

	base := Config{Seed: 9, MaxDelay: 500 * time.Microsecond}
	log1, at1 := run(base)

	replayed := base
	replayed.Seed = 424242 // the seed no longer matters: delays come from the log
	replayed.Replay = &schedule.Replay{Log: log1}
	log2, at2 := run(replayed)

	for i := range at1 {
		if at1[i] != at2[i] {
			t.Fatalf("delivery %d at %v under replay, %v recorded", i, at2[i], at1[i])
		}
	}
	// Re-recording the replayed run reproduces the log itself.
	es1, es2 := log1.Entries(), log2.Entries()
	if len(es1) != len(es2) {
		t.Fatalf("log lengths differ: %d vs %d", len(es1), len(es2))
	}
	for i := range es1 {
		if es1[i] != es2[i] {
			t.Errorf("entry %d: recorded %v, replayed %v", i, es1[i], es2[i])
		}
	}
}

// TestReplaySuppressAndRedelay pins the editor: a suppressed entry never
// arrives, a re-delayed entry arrives at the edited deadline, and the
// replayed run records the suppression for the next round.
func TestReplaySuppressAndRedelay(t *testing.T) {
	log := schedule.NewLog()
	n := New(Config{Seed: 10, MaxDelay: 500 * time.Microsecond, Record: log})
	a := n.Register("a")
	b := n.Register("b")
	n.Clock().Enter() // hold the schedule so all sends share one instant
	for i := 0; i < 3; i++ {
		a.Send("b", "m", i)
	}
	n.Clock().Exit()
	drain(t, b, 3)
	n.Close()

	relog := schedule.NewLog()
	edit := func(e schedule.Entry, d schedule.Decision) schedule.Decision {
		switch e.Index {
		case 1:
			d.Suppress = true
		case 2:
			d.Delay = 5 * time.Millisecond
		}
		return d
	}
	n2 := New(Config{Seed: 10, MaxDelay: 500 * time.Microsecond,
		Replay: &schedule.Replay{Log: log, Edit: edit}, Record: relog})
	defer n2.Close()
	a2 := n2.Register("a")
	b2 := n2.Register("b")
	n2.Clock().Enter()
	for i := 0; i < 3; i++ {
		a2.Send("b", "m", i)
	}
	n2.Clock().Exit()
	got := drain(t, b2, 2)
	if got[0].Payload.(int) != 0 || got[1].Payload.(int) != 2 {
		t.Errorf("payloads = %v %v, want 0 then 2 (1 suppressed)", got[0].Payload, got[1].Payload)
	}
	if now := n2.Clock().Now(); now != log.Entries()[0].SendAt+5*time.Millisecond {
		t.Errorf("last delivery at %v, want the edited 5ms deadline", now)
	}
	es := relog.Entries()
	if es[1].Verdict != schedule.Suppressed {
		t.Errorf("replayed log entry 1 = %v, want suppressed", es[1])
	}
	if es[2].Deadline-es[2].SendAt != 5*time.Millisecond {
		t.Errorf("replayed log entry 2 delay = %v, want 5ms", es[2].Deadline-es[2].SendAt)
	}
}

// TestReplayDivergenceFallsBack pins the fallback: sends beyond the
// recorded log draw from the seeded generator instead of panicking or
// stalling.
func TestReplayDivergenceFallsBack(t *testing.T) {
	log := schedule.NewLog()
	n := New(Config{Seed: 11, MaxDelay: 500 * time.Microsecond, Record: log})
	a := n.Register("a")
	b := n.Register("b")
	a.Send("b", "m", 0)
	drain(t, b, 1)
	n.Close()

	n2 := New(Config{Seed: 11, MaxDelay: 500 * time.Microsecond,
		Replay: &schedule.Replay{Log: log}})
	defer n2.Close()
	a2 := n2.Register("a")
	b2 := n2.Register("b")
	a2.Send("b", "m", 0) // matched
	a2.Send("b", "m", 1) // beyond the log: seeded fallback
	got := drain(t, b2, 2)
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
}
