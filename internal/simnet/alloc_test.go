package simnet

import (
	"testing"
	"time"
)

// TestSendRecvAllocBudget pins the network's hot path: one Send plus the
// matching Recv. With interned process indexes (dense crash/counter/stream
// slices instead of per-send map hashing), pooled delivery Runners, pooled
// clock events/waiters, and ring-buffer mailboxes, the steady state costs
// one allocation — the delivery goroutine spawn. The budget (1.5) fails
// loudly if a map, closure, or per-message envelope sneaks back in (the
// pre-PR path cost 11 allocations per round trip).
//
// The payload is pre-boxed: boxing a value into `any` is the caller's
// allocation, not the network's.
func TestSendRecvAllocBudget(t *testing.T) {
	n := New(Config{Seed: 1, MaxDelay: 10 * time.Microsecond})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	var payload any = "x"
	run := func() {
		a.Send("b", "m", payload)
		if _, ok := b.Recv(); !ok {
			t.Fatal("recv failed")
		}
	}
	for i := 0; i < 200; i++ {
		run() // warm pools and ring buffers
	}
	avg := testing.AllocsPerRun(1000, run)
	if avg > 1.5 {
		t.Fatalf("Send+Recv allocates %.2f objects/op in steady state, budget 1.5 (one goroutine spawn)", avg)
	}
}

// TestBroadcastAllocBudget pins fan-out: a 6-peer broadcast plus receives
// must stay at one allocation per delivery (the spawns), with no per-peer
// bookkeeping allocations — the registration-order snapshot is read
// without copying.
func TestBroadcastAllocBudget(t *testing.T) {
	n := New(Config{Seed: 1, MaxDelay: 10 * time.Microsecond})
	defer n.Close()
	src := n.Register("src")
	var eps []*Endpoint
	for i := 0; i < 6; i++ {
		eps = append(eps, n.Register(ProcessID(rune('a'+i))))
	}
	var payload any = "x"
	run := func() {
		src.Broadcast("m", payload)
		for _, ep := range eps {
			if _, ok := ep.Recv(); !ok {
				t.Fatal("recv failed")
			}
		}
	}
	for i := 0; i < 100; i++ {
		run()
	}
	avg := testing.AllocsPerRun(500, run)
	if avg > 7.5 {
		t.Fatalf("6-peer broadcast allocates %.2f objects/op in steady state, budget 7.5 (six spawns + slack)", avg)
	}
}
