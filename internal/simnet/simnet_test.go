package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	n := New(Config{Seed: 1})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	a.Send("b", "ping", 42)
	msg, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if msg.From != "a" || msg.To != "b" || msg.Type != "ping" || msg.Payload.(int) != 42 {
		t.Errorf("msg = %+v", msg)
	}
}

func TestReliableDelivery(t *testing.T) {
	n := New(Config{Seed: 2, MinDelay: 0, MaxDelay: 500 * time.Microsecond})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	const count = 200
	for i := 0; i < count; i++ {
		a.Send("b", "m", i)
	}
	seen := make(map[int]bool)
	for i := 0; i < count; i++ {
		msg, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed early")
		}
		v := msg.Payload.(int)
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
	if len(seen) != count {
		t.Errorf("delivered %d distinct messages, want %d", len(seen), count)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	n := New(Config{Seed: 3})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	n.Crash("b")
	a.Send("b", "m", 1) // silently dropped
	n.Quiesce()
	if _, ok := b.TryRecv(); ok {
		t.Error("crashed endpoint received a message")
	}
	// Crashed sender drops too.
	n.Crash("a")
	a.Send("b", "m", 2)
	if n.SentBy("a") != 1 {
		t.Errorf("crashed sender counted %d sends, want 1 (pre-crash only)", n.SentBy("a"))
	}
	if !n.Crashed("a") || !n.Crashed("b") {
		t.Error("crash flags wrong")
	}
}

func TestCrashUnblocksReceivers(t *testing.T) {
	n := New(Config{Seed: 4})
	defer n.Close()
	b := n.Register("b")
	done := make(chan bool, 1)
	go func() {
		_, ok := b.Recv()
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	n.Crash("b")
	select {
	case ok := <-done:
		if ok {
			t.Error("recv on crashed endpoint returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not unblock on crash")
	}
}

func TestBroadcast(t *testing.T) {
	n := New(Config{Seed: 5})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	c := n.Register("c")
	a.Broadcast("hello", "x")
	n.Quiesce()
	if _, ok := b.TryRecv(); !ok {
		t.Error("b missed broadcast")
	}
	if _, ok := c.TryRecv(); !ok {
		t.Error("c missed broadcast")
	}
	if _, ok := a.TryRecv(); ok {
		t.Error("broadcast echoed to sender")
	}
}

func TestCounters(t *testing.T) {
	n := New(Config{Seed: 6})
	defer n.Close()
	a := n.Register("a")
	n.Register("b")
	for i := 0; i < 5; i++ {
		a.Send("b", "m", i)
	}
	if n.SentBy("a") != 5 {
		t.Errorf("SentBy = %d", n.SentBy("a"))
	}
	if n.TotalSent() != 5 {
		t.Errorf("TotalSent = %d", n.TotalSent())
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register("a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate register did not panic")
		}
	}()
	n.Register("a")
}

func TestSendToUnknownPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register("a")
	defer func() {
		if recover() == nil {
			t.Error("send to unknown did not panic")
		}
	}()
	a.Send("ghost", "m", nil)
}

func TestConcurrentSenders(t *testing.T) {
	n := New(Config{Seed: 7, MaxDelay: 100 * time.Microsecond})
	defer n.Close()
	dst := n.Register("dst")
	var wg sync.WaitGroup
	const senders, per = 8, 50
	for s := 0; s < senders; s++ {
		ep := n.Register(ProcessID(rune('a' + s)))
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send("dst", "m", i)
			}
		}(ep)
	}
	wg.Wait()
	got := 0
	for got < senders*per {
		if _, ok := dst.Recv(); !ok {
			t.Fatal("recv failed")
		}
		got++
	}
	if n.TotalSent() != senders*per {
		t.Errorf("TotalSent = %d", n.TotalSent())
	}
}

func TestProcessesListing(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register("a")
	n.Register("b")
	if got := len(n.Processes()); got != 2 {
		t.Errorf("Processes = %d", got)
	}
}

func TestCloseUnblocksAll(t *testing.T) {
	n := New(Config{})
	a := n.Register("a")
	done := make(chan struct{})
	go func() {
		a.Recv()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	n.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock receiver")
	}
	n.Close() // idempotent
}
