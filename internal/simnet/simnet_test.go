package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	n := New(Config{Seed: 1})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	a.Send("b", "ping", 42)
	msg, ok := b.Recv()
	if !ok {
		t.Fatal("recv failed")
	}
	if msg.From != "a" || msg.To != "b" || msg.Type != "ping" || msg.Payload.(int) != 42 {
		t.Errorf("msg = %+v", msg)
	}
}

func TestReliableDelivery(t *testing.T) {
	n := New(Config{Seed: 2, MinDelay: 0, MaxDelay: 500 * time.Microsecond})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	const count = 200
	for i := 0; i < count; i++ {
		a.Send("b", "m", i)
	}
	seen := make(map[int]bool)
	for i := 0; i < count; i++ {
		msg, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed early")
		}
		v := msg.Payload.(int)
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
	if len(seen) != count {
		t.Errorf("delivered %d distinct messages, want %d", len(seen), count)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	n := New(Config{Seed: 3})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	n.Crash("b")
	a.Send("b", "m", 1) // silently dropped
	n.Quiesce()
	if _, ok := b.TryRecv(); ok {
		t.Error("crashed endpoint received a message")
	}
	// Crashed sender drops too.
	n.Crash("a")
	a.Send("b", "m", 2)
	if n.SentBy("a") != 1 {
		t.Errorf("crashed sender counted %d sends, want 1 (pre-crash only)", n.SentBy("a"))
	}
	if !n.Crashed("a") || !n.Crashed("b") {
		t.Error("crash flags wrong")
	}
}

func TestCrashIdempotentAndUnknownSafe(t *testing.T) {
	n := New(Config{Seed: 30})
	defer n.Close()
	a := n.Register("a")
	n.Register("b")

	// Crash of a process that was never registered must not panic, and the
	// crash must stick (a send to it would stay dropped).
	n.Crash("ghost")
	if !n.Crashed("ghost") {
		t.Error("crash of unknown process not recorded")
	}
	n.Crash("ghost") // double crash of unknown: still a no-op

	// Double crash of a live process is idempotent.
	a.Send("b", "m", 1)
	n.Crash("b")
	n.Crash("b")
	if !n.Crashed("b") {
		t.Error("b not crashed")
	}
	n.Quiesce()
	if _, ok := n.byName["b"].TryRecv(); ok {
		t.Error("crashed endpoint received a message")
	}

	// Concurrent double crash: must not race or panic.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Crash("a")
		}()
	}
	wg.Wait()
	if !n.Crashed("a") {
		t.Error("a not crashed")
	}
}

func TestPartitionBlackHolesAcrossGroups(t *testing.T) {
	n := New(Config{Seed: 31, MaxDelay: 100 * time.Microsecond})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	c := n.Register("c")

	n.Partition([]ProcessID{"a"}, []ProcessID{"b", "c"})
	a.Send("b", "m", 1) // crosses the cut: lost
	b.Send("c", "m", 2) // same side: delivered
	n.Quiesce()
	if _, ok := b.TryRecv(); ok {
		t.Error("message crossed the partition")
	}
	if _, ok := c.TryRecv(); !ok {
		t.Error("same-side message lost")
	}

	// Heal: traffic flows again, but the black-holed message stays lost.
	n.Heal()
	a.Send("b", "m", 3)
	n.Quiesce()
	msg, ok := b.TryRecv()
	if !ok || msg.Payload.(int) != 3 {
		t.Errorf("post-heal delivery = %+v, %v", msg, ok)
	}
}

func TestPartitionCoversAuxiliaryEndpoints(t *testing.T) {
	n := New(Config{Seed: 32})
	defer n.Close()
	n.Register("a")
	afd := n.Register("a/fd")
	bfd := n.Register("b/fd")
	n.Register("b")

	n.Partition([]ProcessID{"a"}, []ProcessID{"b"})
	afd.Send("b/fd", "hb", 1) // aux endpoints follow their base process
	n.Quiesce()
	if _, ok := bfd.TryRecv(); ok {
		t.Error("partition did not cover auxiliary endpoints")
	}
	// A process always reaches its own endpoints.
	afd.Send("a", "self", 1)
	n.Quiesce()
	if _, ok := n.byName["a"].TryRecv(); !ok {
		t.Error("self traffic blocked by partition")
	}
}

func TestPartitionDropsInFlightTraffic(t *testing.T) {
	// A message in the pipe when the cut lands is lost: the link is down at
	// its delivery instant.
	n := New(Config{Seed: 33, MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	a.Send("b", "m", 1)
	n.Partition([]ProcessID{"a"}, []ProcessID{"b"}) // before delivery fires
	n.Quiesce()
	if _, ok := b.TryRecv(); ok {
		t.Error("in-flight message survived the partition")
	}
}

func TestDropLinkIsBidirectionalAndHealable(t *testing.T) {
	n := New(Config{Seed: 34})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	c := n.Register("c")

	n.DropLink("a", "b")
	a.Send("b", "m", 1)
	b.Send("a", "m", 2)
	a.Send("c", "m", 3) // other links unaffected
	n.Quiesce()
	if _, ok := b.TryRecv(); ok {
		t.Error("a→b not black-holed")
	}
	if _, ok := a.TryRecv(); ok {
		t.Error("b→a not black-holed")
	}
	if _, ok := c.TryRecv(); !ok {
		t.Error("unrelated link affected")
	}
	n.Heal()
	a.Send("b", "m", 4)
	n.Quiesce()
	if _, ok := b.TryRecv(); !ok {
		t.Error("link not healed")
	}
}

func TestDelayScaleStretchesDeliveries(t *testing.T) {
	n := New(Config{Seed: 35, MinDelay: 100 * time.Microsecond, MaxDelay: 200 * time.Microsecond})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	clk := n.Clock()

	n.SetDelayScale(100)
	start := clk.Now()
	a.Send("b", "m", 1)
	if _, ok := b.Recv(); !ok {
		t.Fatal("recv failed")
	}
	if got := clk.Now() - start; got < 10*time.Millisecond {
		t.Errorf("stormed delivery took %v, want ≥ 10ms of simulated time", got)
	}

	n.SetDelayScale(1) // calm again
	start = clk.Now()
	a.Send("b", "m", 2)
	if _, ok := b.Recv(); !ok {
		t.Fatal("recv failed")
	}
	if got := clk.Now() - start; got > time.Millisecond {
		t.Errorf("calm delivery took %v, want < 1ms", got)
	}
}

func TestDelayDistributions(t *testing.T) {
	const sends = 400
	measure := func(cfg Config) []time.Duration {
		n := New(cfg)
		defer n.Close()
		a := n.Register("a")
		b := n.Register("b")
		clk := n.Clock()
		var delays []time.Duration
		for i := 0; i < sends; i++ {
			start := clk.Now()
			a.Send("b", "m", i)
			if _, ok := b.Recv(); !ok {
				t.Fatal("recv failed")
			}
			delays = append(delays, clk.Now()-start)
		}
		return delays
	}

	span := Config{Seed: 36, MinDelay: 100 * time.Microsecond, MaxDelay: 200 * time.Microsecond}

	t.Run("asymmetric-is-fixed-per-link", func(t *testing.T) {
		cfg := span
		cfg.Dist = DelayAsymmetric
		delays := measure(cfg)
		for _, d := range delays {
			if d != delays[0] {
				t.Fatalf("asymmetric link delay varies: %v vs %v", d, delays[0])
			}
		}
		if delays[0] < cfg.MinDelay || delays[0] >= cfg.MaxDelay {
			t.Errorf("asymmetric delay %v outside [%v, %v)", delays[0], cfg.MinDelay, cfg.MaxDelay)
		}
	})

	t.Run("asymmetric-differs-by-direction", func(t *testing.T) {
		cfg := span
		cfg.Dist = DelayAsymmetric
		n := New(cfg)
		defer n.Close()
		a := n.Register("a")
		b := n.Register("b")
		clk := n.Clock()
		start := clk.Now()
		a.Send("b", "m", 1)
		b.Recv()
		ab := clk.Now() - start
		start = clk.Now()
		b.Send("a", "m", 2)
		a.Recv()
		ba := clk.Now() - start
		if ab == ba {
			t.Errorf("a→b and b→a share delay %v; expected asymmetry", ab)
		}
	})

	t.Run("pareto-has-heavy-tail", func(t *testing.T) {
		cfg := span
		cfg.Dist = DelayPareto
		delays := measure(cfg)
		over := 0
		for _, d := range delays {
			if d < cfg.MinDelay {
				t.Fatalf("pareto delay %v below MinDelay", d)
			}
			if d > cfg.MaxDelay {
				over++
			}
		}
		if over == 0 {
			t.Error("no pareto draw exceeded MaxDelay; tail missing")
		}
		bound := cfg.MinDelay + 32*(cfg.MaxDelay-cfg.MinDelay)
		for _, d := range delays {
			if d > bound {
				t.Fatalf("pareto delay %v exceeds default cap %v", d, bound)
			}
		}
	})

	t.Run("seeded-replay", func(t *testing.T) {
		for _, dist := range []DelayDist{DelayUniform, DelayAsymmetric, DelayPareto} {
			cfg := span
			cfg.Dist = dist
			first := measure(cfg)
			second := measure(cfg)
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("dist %d: delay %d differs across replays: %v vs %v", dist, i, first[i], second[i])
				}
			}
		}
	})
}

func TestCrashUnblocksReceivers(t *testing.T) {
	n := New(Config{Seed: 4})
	defer n.Close()
	b := n.Register("b")
	done := make(chan bool, 1)
	go func() {
		_, ok := b.Recv()
		done <- ok
	}()
	time.Sleep(time.Millisecond)
	n.Crash("b")
	select {
	case ok := <-done:
		if ok {
			t.Error("recv on crashed endpoint returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not unblock on crash")
	}
}

func TestBroadcast(t *testing.T) {
	n := New(Config{Seed: 5})
	defer n.Close()
	a := n.Register("a")
	b := n.Register("b")
	c := n.Register("c")
	a.Broadcast("hello", "x")
	n.Quiesce()
	if _, ok := b.TryRecv(); !ok {
		t.Error("b missed broadcast")
	}
	if _, ok := c.TryRecv(); !ok {
		t.Error("c missed broadcast")
	}
	if _, ok := a.TryRecv(); ok {
		t.Error("broadcast echoed to sender")
	}
}

func TestCounters(t *testing.T) {
	n := New(Config{Seed: 6})
	defer n.Close()
	a := n.Register("a")
	n.Register("b")
	for i := 0; i < 5; i++ {
		a.Send("b", "m", i)
	}
	if n.SentBy("a") != 5 {
		t.Errorf("SentBy = %d", n.SentBy("a"))
	}
	if n.TotalSent() != 5 {
		t.Errorf("TotalSent = %d", n.TotalSent())
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register("a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate register did not panic")
		}
	}()
	n.Register("a")
}

func TestSendToUnknownPanics(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	a := n.Register("a")
	defer func() {
		if recover() == nil {
			t.Error("send to unknown did not panic")
		}
	}()
	a.Send("ghost", "m", nil)
}

func TestConcurrentSenders(t *testing.T) {
	n := New(Config{Seed: 7, MaxDelay: 100 * time.Microsecond})
	defer n.Close()
	dst := n.Register("dst")
	var wg sync.WaitGroup
	const senders, per = 8, 50
	for s := 0; s < senders; s++ {
		ep := n.Register(ProcessID(rune('a' + s)))
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send("dst", "m", i)
			}
		}(ep)
	}
	wg.Wait()
	got := 0
	for got < senders*per {
		if _, ok := dst.Recv(); !ok {
			t.Fatal("recv failed")
		}
		got++
	}
	if n.TotalSent() != senders*per {
		t.Errorf("TotalSent = %d", n.TotalSent())
	}
}

func TestProcessesListing(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	n.Register("a")
	n.Register("b")
	if got := len(n.Processes()); got != 2 {
		t.Errorf("Processes = %d", got)
	}
}

func TestCloseUnblocksAll(t *testing.T) {
	n := New(Config{})
	a := n.Register("a")
	done := make(chan struct{})
	go func() {
		a.Recv()
		close(done)
	}()
	time.Sleep(time.Millisecond)
	n.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock receiver")
	}
	n.Close() // idempotent
}
