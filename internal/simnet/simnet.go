// Package simnet is an in-memory asynchronous message-passing network with
// crash-stop processes, implementing the system model of §5.2:
//
//   - Processes fail by crashing and do not recover. A crashed process
//     silently stops sending and receiving.
//   - Channels are reliable between correct processes: every message sent
//     from a correct process to a correct process is eventually delivered,
//     exactly once. Delivery order is *not* FIFO: each message experiences
//     an independent random delay drawn from a seeded generator, which is
//     what makes the system asynchronous.
//
// Delays are measured on the network's clock (internal/vclock). By default
// that clock is virtual: deliveries are entries in a discrete-event queue,
// the simulation advances to the next pending deadline whenever every
// participating goroutine is blocked, and a run's wall-clock cost is the
// CPU it burns, not the delays it simulates. Passing vclock.NewReal() in
// Config.Clock restores wall-clock behavior.
//
// Delay draws come from per-sender seeded streams: each base process owns
// its own generator, seeded deterministically from (Config.Seed, base
// name). Concurrent sends from *different* processes inside one
// virtual-clock wake-up bubble therefore cannot race on a shared RNG — the
// delay a sender's nth message draws depends only on the seed and on that
// sender's own send order, never on how the host interleaved it with other
// processes' sends. (Two goroutines of one process racing their sends
// still share that process's stream; the protocol layers keep per-process
// send order deterministic.)
//
// Beyond crash-stop, the network exposes a link-level fault plane for
// adversarial scenarios: delay distributions other than uniform (fixed
// per-link asymmetry, heavy-tail Pareto) selected via Config.Dist, a
// delay-storm multiplier (SetDelayScale), and black-holed links —
// Partition splits processes into non-communicating groups, DropLink
// severs one link, Heal repairs everything. Link faults drop messages
// silently (at send time and at the delivery instant), which is exactly
// how the model's asynchrony lets an adversary behave; crashed-process
// semantics are untouched.
//
// The scheduler is also observable and steerable: Config.Record logs
// every delivery decision (link, deadline, drop/delay verdict) into a
// schedule.Log, making a run a replayable (scenario, seed, log) value, and
// Config.Replay re-executes a recorded log — optionally edited to
// suppress, stretch, or reorder individual deliveries — which is the
// substrate the delta-debugging shrinker (internal/shrink) minimizes
// failing schedules on. Both planes cost nothing when disabled: the hot
// send path touches them only behind nil checks.
//
// The network is built for seed sweeps: process identities are interned at
// Register into dense indexes, so the per-send state (crash flags, send
// counters, partition groups, delay streams) lives in slices rather than
// hash maps, and delivery events are pooled Runners on the virtual clock —
// a steady-state Send/Recv round trip performs no heap allocation. Reset
// recycles a quiesced network (endpoints, interning tables, pools) for the
// next seed of a sweep instead of rebuilding the world.
//
// The network also keeps per-process send counters so experiments can
// report message complexity.
package simnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"xability/internal/obs"
	"xability/internal/schedule"
	"xability/internal/vclock"
)

// ProcessID names a process on the network.
type ProcessID string

// Message is a tagged payload in flight. Payloads are shared by reference
// (the network is in-memory); senders must not mutate a payload after
// sending.
type Message struct {
	From    ProcessID
	To      ProcessID
	Type    string
	Payload any
}

// DelayDist selects the per-message delay distribution drawn over
// [MinDelay, MaxDelay).
type DelayDist int

const (
	// DelayUniform draws every message's delay uniformly from the
	// [MinDelay, MaxDelay) interval (the default).
	DelayUniform DelayDist = iota
	// DelayAsymmetric gives each directed link a fixed delay in
	// [MinDelay, MaxDelay), derived deterministically from the link's
	// endpoint names: a→b and b→a generally differ, and fast links stay
	// fast for the whole run. It models persistent topology asymmetry
	// rather than per-message jitter.
	DelayAsymmetric
	// DelayPareto draws heavy-tailed delays: most messages arrive near
	// MinDelay, a few straggle far beyond MaxDelay (bounded by ParetoCap).
	// It models congestion spikes and stresses reordering far more than
	// the uniform distribution.
	DelayPareto
)

// Config tunes the network.
type Config struct {
	// Seed drives the per-sender delay generators; runs with equal seeds
	// and equal per-sender send sequences see equal delays.
	Seed int64
	// MinDelay and MaxDelay bound the per-message delay span. Zero
	// values mean immediate handoff (still asynchronous: delivery is a
	// separate scheduled event).
	MinDelay, MaxDelay time.Duration
	// Dist selects the delay distribution over the span (default
	// DelayUniform).
	Dist DelayDist
	// ParetoAlpha is the tail index for DelayPareto: smaller means a
	// heavier tail. Zero selects 1.5.
	ParetoAlpha float64
	// ParetoCap bounds DelayPareto draws above MinDelay. Zero selects
	// 32× the MinDelay..MaxDelay span.
	ParetoCap time.Duration
	// Clock supplies the network's notion of time. Nil selects a fresh
	// virtual clock (vclock.NewVirtual); pass vclock.NewReal() for
	// wall-clock delays.
	Clock vclock.Clock
	// Record, when non-nil, receives one schedule.Entry per send: the
	// message's link, virtual-time deadline, and drop/delay verdict. The
	// recorded log plus (scenario, seed) fully determines the run, and can
	// be replayed or edited — see Replay.
	Record *schedule.Log
	// Replay, when non-nil, re-executes a recorded schedule: each send is
	// matched (per link-and-type stream) against the log and uses the
	// recorded delay instead of the seeded draw, after the spec's Edit —
	// which may suppress or re-delay individual deliveries — has been
	// applied. Sends beyond the log (the run diverged under edits) fall
	// back to the seeded generator. Record and Replay compose: recording a
	// replayed run yields the effective schedule of the edited run.
	Replay *schedule.Replay
	// Metrics, when non-nil, receives per-message counters (type counts,
	// drops) and the delivery-order coverage fingerprint. Components built
	// on the network pull the registry via Network.Metrics so one Config
	// choice instruments the whole deployment. Nil costs nothing.
	Metrics *obs.Metrics
	// Trace, when non-nil, records message-delivery flow edges (and, via
	// Network.Trace, the protocol layers' request spans) into the run's
	// span recorder. Nil costs nothing.
	Trace *obs.Trace
}

// Network connects endpoints. Create with New, then Register each process.
type Network struct {
	cfg  Config
	clk  vclock.Clock
	virt *vclock.Virtual // clk when it is virtual, for pooled-Runner scheduling

	mu           sync.Mutex
	idle         vclock.Cond // signaled when inflight returns to zero
	byName       map[ProcessID]*Endpoint
	eps          []*Endpoint        // dense, by endpoint index (registration order)
	order        []ProcessID        // registration order, for deterministic iteration
	crashed      []bool             // by endpoint index
	sent         []int              // by endpoint index
	crashedNames map[ProcessID]bool // crashes recorded for never-registered IDs
	inflight     int
	closed       bool

	// Interned base processes (the ID up to the first '/'): link faults
	// and delay streams act on bases, so partitioning "replica-0" also
	// severs and co-seeds its auxiliary "/fd" and "/cons" endpoints.
	bases   []ProcessID
	baseIdx map[ProcessID]int32
	streams []*rand.Rand // per-sender delay streams, by base index

	// Link fault plane.
	delayScale float64           // storm multiplier on drawn delays (1 = calm)
	partition  []int32           // base index → partition group; nil = whole; -1 = ungrouped
	dropped    map[[2]int32]bool // black-holed links by base index (both directions)

	// Schedule record/replay plane (cfg.Record / cfg.Replay).
	record *schedule.Log
	replay *schedule.Cursor

	// Observability plane (cfg.Metrics / cfg.Trace); both nil-safe.
	metrics *obs.Metrics
	trace   *obs.Trace

	// Pools.
	dfree []*delivery // recycled delivery events

	reviveLeft int // endpoints awaiting re-registration after Reset
}

// New returns an empty network.
func New(cfg Config) *Network {
	n := &Network{
		byName:       make(map[ProcessID]*Endpoint),
		baseIdx:      make(map[ProcessID]int32),
		crashedNames: make(map[ProcessID]bool),
		dropped:      make(map[[2]int32]bool),
	}
	n.apply(cfg)
	return n
}

// apply installs a run configuration: clock, seed-derived stream state, and
// the record/replay hooks. Shared by New and Reset; callers guarantee no
// concurrent use.
func (n *Network) apply(cfg Config) {
	clk := cfg.Clock
	if clk == nil {
		clk = vclock.NewVirtual()
	}
	n.cfg = cfg
	n.clk = clk
	n.virt, _ = clk.(*vclock.Virtual)
	// The idle cond lives on the run's clock (it changes across Reset) so
	// Quiesce waits inside the virtual schedule: a sync.Cond here would
	// re-admit the waiter at an instant the schedule doesn't order — the
	// detached-wait class behind PR 4's router bug.
	n.idle = clk.NewCond(&n.mu)
	n.delayScale = 1
	n.record = cfg.Record
	n.replay = schedule.NewCursor(cfg.Replay)
	n.metrics = cfg.Metrics
	n.trace = cfg.Trace
	for i, base := range n.bases {
		n.streams[i].Seed(streamSeed(cfg.Seed, base))
	}
}

// streamSeed derives a sender's delay-stream seed from the run seed and the
// sender's base name. Mixing by name (not by registration index) keeps a
// sender's delay sequence stable under deployments that register additional,
// unrelated processes.
func streamSeed(seed int64, base ProcessID) int64 {
	h := fnv.New64a()
	h.Write([]byte(base))
	x := uint64(seed) ^ h.Sum64()
	// splitmix64 finalizer: disperse related (seed, name) pairs.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// baseOf strips the auxiliary-endpoint suffix from a process ID:
// "replica-0/fd" and "replica-0/cons" both belong to base "replica-0".
// Link faults act on base IDs, so partitioning a process severs all of
// its endpoints at once.
func baseOf(id ProcessID) ProcessID {
	if i := strings.IndexByte(string(id), '/'); i >= 0 {
		return id[:i]
	}
	return id
}

// ensureBaseLocked interns a base process name, creating its delay stream.
func (n *Network) ensureBaseLocked(base ProcessID) int32 {
	if b, ok := n.baseIdx[base]; ok {
		return b
	}
	b := int32(len(n.bases))
	n.baseIdx[base] = b
	n.bases = append(n.bases, base)
	n.streams = append(n.streams, rand.New(rand.NewSource(streamSeed(n.cfg.Seed, base))))
	if n.partition != nil {
		n.partition = append(n.partition, -1)
	}
	return b
}

// Clock returns the network's clock. Components that live on the network
// (failure detectors, servers, clients) take their time from here, so one
// Config.Clock choice switches the whole deployment between virtual and
// real time.
func (n *Network) Clock() vclock.Clock { return n.clk }

// Metrics returns the run's metrics registry (nil when observability is
// off — every registry method is nil-safe, so components store the
// result and call through unconditionally). Like Clock, one Config
// choice instruments the whole deployment.
func (n *Network) Metrics() *obs.Metrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metrics
}

// Trace returns the run's span recorder (nil when tracing is off).
func (n *Network) Trace() *obs.Trace {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.trace
}

// Endpoint is one process's attachment to the network: an unbounded mailbox
// with blocking receive. The mailbox is a ring buffer, so steady-state
// receive traffic reuses its storage.
type Endpoint struct {
	id   ProcessID
	net  *Network
	idx  int32 // dense endpoint index
	base int32 // dense base-process index

	mu     sync.Mutex
	cond   vclock.Cond
	q      []Message // ring buffer
	head   int
	count  int
	closed bool
}

// push appends to the mailbox ring; callers hold e.mu.
func (e *Endpoint) push(m Message) {
	if e.count == len(e.q) {
		size := 2 * len(e.q)
		if size < 8 {
			size = 8
		}
		nq := make([]Message, size)
		for i := 0; i < e.count; i++ {
			nq[i] = e.q[(e.head+i)%len(e.q)]
		}
		e.q, e.head = nq, 0
	}
	e.q[(e.head+e.count)%len(e.q)] = m
	e.count++
}

// pop removes the oldest message; callers hold e.mu and guarantee count>0.
func (e *Endpoint) pop() Message {
	m := e.q[e.head]
	e.q[e.head] = Message{} // release the payload reference
	e.head = (e.head + 1) % len(e.q)
	e.count--
	return m
}

// clearLocked empties the ring, releasing payload references; callers hold
// e.mu.
func (e *Endpoint) clearLocked() {
	for i := 0; i < e.count; i++ {
		e.q[(e.head+i)%len(e.q)] = Message{}
	}
	e.head, e.count = 0, 0
}

// Register attaches a process and returns its endpoint. Registering the
// same ID twice panics: process identities are fixed for a run. After
// Reset, Register revives the recycled endpoints instead — the deployment
// must re-register the same IDs in the same order.
func (n *Network) Register(id ProcessID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reviveLeft > 0 {
		i := len(n.eps) - n.reviveLeft
		ep := n.eps[i]
		if ep.id != id {
			panic(fmt.Sprintf("simnet: Reset deployment shape changed: re-registration %d is %q, was %q", i, id, ep.id))
		}
		n.reviveLeft--
		return ep
	}
	if _, dup := n.byName[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate process %q", id))
	}
	ep := &Endpoint{id: id, net: n, idx: int32(len(n.eps)), base: n.ensureBaseLocked(baseOf(id))}
	ep.cond = n.clk.NewCond(&ep.mu)
	n.byName[id] = ep
	n.eps = append(n.eps, ep)
	n.order = append(n.order, id)
	n.crashed = append(n.crashed, n.crashedNames[id])
	n.sent = append(n.sent, 0)
	return ep
}

// Crash marks a process as crashed: its outstanding and future messages are
// dropped, and its pending receives unblock with ok=false. Crash is
// idempotent (crashing a crashed process is a no-op) and safe for process
// IDs that were never registered (the crash is recorded, so a send to that
// ID — were it ever registered — stays dropped). A crash lasts until
// Restart revives the process; without one it is permanent (§5.2's
// no-recovery model is a plan that never restarts).
func (n *Network) Crash(id ProcessID) {
	n.mu.Lock()
	ep := n.byName[id]
	if ep == nil {
		n.crashedNames[id] = true
		n.mu.Unlock()
		return
	}
	if n.crashed[ep.idx] {
		n.mu.Unlock()
		return
	}
	n.crashed[ep.idx] = true
	n.mu.Unlock()
	ep.mu.Lock()
	ep.closed = true
	ep.clearLocked()
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

// Restart revives a crashed process: sends to it flow again and a fresh
// incarnation can attach to the reopened endpoint. The endpoint comes back
// empty — messages dropped while crashed stay lost, as they would on a real
// host whose kernel buffers died with it — and with a fresh cond, so
// receivers of the dead incarnation still unwinding from Crash's wake can
// never steal the new incarnation's messages. Per-sender delay streams are
// untouched: they advance only on delivered draws, so a crash/restart pair
// perturbs no other link's schedule. Restarting a process that never
// crashed (or was never registered) is a no-op returning false, the mirror
// of Crash's idempotence. Callers must ensure the dead incarnation's
// goroutines have observed the crash (drain the clock) before restarting.
func (n *Network) Restart(id ProcessID) bool {
	n.mu.Lock()
	ep := n.byName[id]
	if ep == nil {
		if !n.crashedNames[id] {
			n.mu.Unlock()
			return false
		}
		delete(n.crashedNames, id)
		n.mu.Unlock()
		return true
	}
	if !n.crashed[ep.idx] {
		n.mu.Unlock()
		return false
	}
	n.crashed[ep.idx] = false
	clk := n.clk
	n.mu.Unlock()
	ep.mu.Lock()
	ep.closed = false
	ep.clearLocked()
	ep.cond = clk.NewCond(&ep.mu)
	ep.mu.Unlock()
	return true
}

// Partition splits the network: messages between base process IDs in
// different groups are black-holed until Heal. IDs not listed in any group
// keep all of their links. Auxiliary endpoints ("p/fd", "p/cons") follow
// their base process. Calling Partition again replaces the previous
// grouping.
func (n *Network) Partition(groups ...[]ProcessID) {
	n.mu.Lock()
	for _, members := range groups {
		for _, id := range members {
			n.ensureBaseLocked(baseOf(id))
		}
	}
	p := n.partition
	if cap(p) < len(n.bases) {
		p = make([]int32, len(n.bases))
	}
	p = p[:len(n.bases)]
	for i := range p {
		p[i] = -1
	}
	n.partition = p
	for g, members := range groups {
		for _, id := range members {
			n.partition[n.baseIdx[baseOf(id)]] = int32(g)
		}
	}
	n.mu.Unlock()
}

// DropLink black-holes the link between two base process IDs in both
// directions until Heal. Dropping an already dropped link is a no-op.
func (n *Network) DropLink(a, b ProcessID) {
	n.mu.Lock()
	ai := n.ensureBaseLocked(baseOf(a))
	bi := n.ensureBaseLocked(baseOf(b))
	n.dropped[[2]int32{ai, bi}] = true
	n.dropped[[2]int32{bi, ai}] = true
	n.mu.Unlock()
}

// Heal repairs the link fault plane: it clears the active partition and
// every dropped link. Messages black-holed while the faults were in force
// stay lost; only future traffic flows again.
func (n *Network) Heal() {
	n.mu.Lock()
	n.partition = nil
	clear(n.dropped)
	n.mu.Unlock()
}

// SetDelayScale multiplies every subsequently drawn delay by f — the delay
// storm primitive. f of 1 restores calm; values below 1 are clamped to 1 so
// a storm can only slow the network down. The underlying random draws are
// unaffected, so a storm window does not perturb the delay sequence of the
// traffic around it.
func (n *Network) SetDelayScale(f float64) {
	if f < 1 {
		f = 1
	}
	n.mu.Lock()
	n.delayScale = f
	n.mu.Unlock()
}

// blockedLocked reports whether the link fault plane severs the link
// between two base indexes. Callers hold n.mu.
func (n *Network) blockedLocked(from, to int32) bool {
	if from == to {
		return false // a process always reaches its own endpoints
	}
	if len(n.dropped) > 0 && n.dropped[[2]int32{from, to}] {
		return true
	}
	if p := n.partition; p != nil {
		gf, gt := p[from], p[to]
		if gf >= 0 && gt >= 0 && gf != gt {
			return true
		}
	}
	return false
}

// drawDelayLocked draws one message delay from the sender's stream per the
// configured distribution and applies the current delay scale. Callers
// hold n.mu. A sender's stream advances only when it actually draws
// (uniform and Pareto draw once per send; asymmetric never draws), so runs
// with equal seeds and equal per-sender send sequences see equal delays —
// regardless of how concurrent senders interleave.
func (n *Network) drawDelayLocked(e, dst *Endpoint) time.Duration {
	span := n.cfg.MaxDelay - n.cfg.MinDelay
	d := n.cfg.MinDelay
	switch n.cfg.Dist {
	case DelayAsymmetric:
		if span > 0 {
			h := fnv.New64a()
			h.Write([]byte(e.id))
			h.Write([]byte{0})
			h.Write([]byte(dst.id))
			d += time.Duration(h.Sum64() % uint64(span))
		}
	case DelayPareto:
		if span > 0 {
			alpha := n.cfg.ParetoAlpha
			if alpha <= 0 {
				alpha = 1.5
			}
			bound := n.cfg.ParetoCap
			if bound <= 0 {
				bound = 32 * span
			}
			// Bounded Pareto over the span: u near 1 is the common case
			// (delay near MinDelay), u near 0 the straggler tail.
			u := 1 - n.streams[e.base].Float64() // (0, 1]
			tail := time.Duration(float64(span) * (math.Pow(u, -1/alpha) - 1))
			if tail > bound {
				tail = bound
			}
			d += tail
		}
	default:
		if span > 0 {
			d += time.Duration(n.streams[e.base].Int63n(int64(span)))
		}
	}
	if n.delayScale > 1 {
		d = time.Duration(float64(d) * n.delayScale)
	}
	return d
}

// Crashed reports whether a process has crashed.
func (n *Network) Crashed(id ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep := n.byName[id]; ep != nil {
		return n.crashed[ep.idx]
	}
	return n.crashedNames[id]
}

// Processes returns the registered process IDs in registration order. The
// fixed order keeps broadcasts deterministic across runs.
func (n *Network) Processes() []ProcessID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]ProcessID(nil), n.order...)
}

// SentBy reports how many messages a process has sent.
func (n *Network) SentBy(id ProcessID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep := n.byName[id]; ep != nil {
		return n.sent[ep.idx]
	}
	return 0
}

// TotalSent reports the number of messages sent on the network.
func (n *Network) TotalSent() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, c := range n.sent {
		total += c
	}
	return total
}

// Quiesce blocks until all in-flight deliveries have settled. Useful at the
// end of a scenario before reading counters. Safe from goroutines attached
// to the clock and from external (test) goroutines alike: the caller is
// attached for the duration (Enter/Exit nest), and the wait itself runs on
// the clock's cond, so the wake is a scheduled event rather than an OS
// scheduling race.
func (n *Network) Quiesce() {
	n.clk.Enter()
	defer n.clk.Exit()
	for {
		n.mu.Lock()
		for n.inflight > 0 {
			n.idle.Wait()
		}
		n.mu.Unlock()
		// Broadcast wakes are scheduled events now, not instant
		// runnability: a receiver whose delivery just landed may still be
		// waiting its turn in the heap. Drain the current instant so every
		// woken receiver has processed its mailbox, then re-check — the
		// processing may have put new messages in flight.
		n.clk.Drain()
		n.mu.Lock()
		settled := n.inflight == 0
		n.mu.Unlock()
		if settled {
			return
		}
	}
}

// delivery is one scheduled delivery event: a pooled vclock.Runner, so the
// per-message schedule entry costs no allocation. fromBase is carried for
// the delivery-instant link check; entry is the message's schedule-log
// index (-1 when not recording).
type delivery struct {
	n        *Network
	dst      *Endpoint
	msg      Message
	fromBase int32
	entry    int32
	class    uint8 // obs coverage class (0 when metrics are off)
	flow     int64 // obs trace flow ID (0 when tracing is off)
}

// Run implements vclock.Runner: it completes one scheduled delivery. A
// message whose link is down at the delivery instant is black-holed: a
// partition or dropped link kills the traffic already in the pipe, not only
// future sends.
func (d *delivery) Run() {
	n := d.n
	dst, msg, fromBase, entry := d.dst, d.msg, d.fromBase, d.entry
	class, flow := d.class, d.flow
	n.mu.Lock()
	d.dst, d.msg, d.class, d.flow = nil, Message{}, 0, 0
	n.dfree = append(n.dfree, d)
	dead := n.crashed[dst.idx] || n.closed || n.blockedLocked(fromBase, dst.base)
	if n.record != nil && entry >= 0 {
		if dead {
			n.record.Resolve(int(entry), schedule.DroppedDeliver)
		} else {
			n.record.Resolve(int(entry), schedule.Delivered)
		}
	}
	if dead {
		n.metrics.Inc(obs.MsgDropped)
	} else {
		// The coverage fingerprint folds actual deliveries in execution
		// order — deliveries run one at a time on the virtual clock's
		// pump, so the fold order (and the fingerprint) is a pure
		// function of the seed.
		n.metrics.Cover(fromBase, dst.base, class)
		n.trace.FlowEnd(n.clk.Now(), string(dst.id), msg.Type, flow)
	}
	n.mu.Unlock()
	if !dead {
		dst.mu.Lock()
		if !dst.closed {
			dst.push(msg)
			dst.cond.Broadcast()
		}
		dst.mu.Unlock()
	}
	n.mu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
	n.mu.Unlock()
}

// Send transmits a message. Sends from or to crashed processes are silently
// dropped (a crashed process does nothing; messages to a crashed process
// can never be received). Delivery is scheduled on the network clock after
// a seeded random delay; the delivery's heap position is fixed at send
// time. Schedule determinism therefore reduces to per-sender send-order
// determinism: delays come from the sender's own stream, the virtual clock
// wakes one event at a time, and the brief windows where two protocol
// goroutines are runnable at once (a spawn returning to Recv, a broadcast
// waking several waiters) do not perturb other senders' draws.
func (e *Endpoint) Send(to ProcessID, typ string, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed || n.crashed[e.idx] {
		n.mu.Unlock()
		return
	}
	dst, ok := n.byName[to]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("simnet: send to unknown process %q", to))
	}
	n.sent[e.idx]++
	// Classify once for the type counter (send side) and the coverage
	// fold (delivery side). The switch is a few constant-string compares;
	// with observability off this is one branch.
	var class uint8
	if n.metrics != nil || n.trace != nil {
		var ctr obs.Counter
		class, ctr = obs.ClassOf(typ)
		n.metrics.Inc(ctr)
	}
	delay := n.drawDelayLocked(e, dst)
	// Replay plane: a send matched against the recorded log takes the
	// log's (possibly edited) decision instead of the seeded draw. The
	// draw above still happened, so unmatched sends of a diverged run see
	// the same delay stream a recording run would.
	suppressed := false
	if n.replay != nil {
		if dec, ok := n.replay.Next(string(e.id), string(to), typ); ok {
			if dec.Suppress {
				suppressed = true
			} else {
				delay = dec.Delay
			}
		}
	}
	blocked := n.blockedLocked(e.base, dst.base)
	entry := -1
	if n.record != nil {
		verdict := schedule.Scheduled
		switch {
		case suppressed:
			verdict = schedule.Suppressed
		case blocked:
			verdict = schedule.DroppedSend
		}
		now := n.clk.Now()
		entry = n.record.Append(schedule.Entry{
			From: string(e.id), To: string(to), Type: typ,
			SendAt: now, Deadline: now + delay, Verdict: verdict,
		})
	}
	if suppressed || blocked {
		// The message is black-holed: by the link fault plane at send
		// time, or by a replay edit (the shrinker suppressing one
		// delivery).
		n.metrics.Inc(obs.MsgDropped)
		n.mu.Unlock()
		return
	}
	// Trace a delivery edge for protocol traffic (submit/result/announce);
	// heartbeat and consensus fan-out would flood the ring without adding
	// request-lifecycle causality.
	var flow int64
	if n.trace != nil && class >= 1 && class <= 3 {
		flow = n.trace.FlowStart(n.clk.Now(), string(e.id), typ)
	}
	n.inflight++
	var d *delivery
	if k := len(n.dfree); k > 0 {
		d = n.dfree[k-1]
		n.dfree[k-1] = nil
		n.dfree = n.dfree[:k-1]
	} else {
		d = &delivery{n: n}
	}
	d.dst, d.fromBase, d.entry = dst, e.base, int32(entry)
	d.class, d.flow = class, flow
	d.msg = Message{From: e.id, To: to, Type: typ, Payload: payload}
	n.mu.Unlock()

	if v := n.virt; v != nil {
		v.GoAfterRunner(delay, d)
	} else {
		n.clk.GoAfter(delay, d.Run)
	}
}

// Broadcast sends the message to every registered process except the
// sender. The registration-order snapshot is read without copying:
// registrations only append, so an earlier slice header stays valid.
func (e *Endpoint) Broadcast(typ string, payload any) {
	n := e.net
	n.mu.Lock()
	ids := n.order
	n.mu.Unlock()
	for _, id := range ids {
		if id != e.id {
			e.Send(id, typ, payload)
		}
	}
}

// Recv blocks until a message arrives and returns it. ok is false when the
// endpoint's process has crashed (or the network shut down), after which no
// further messages will ever arrive.
func (e *Endpoint) Recv() (Message, bool) {
	clk := e.net.clk
	clk.Enter()
	defer clk.Exit()
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.count == 0 && !e.closed {
		e.cond.Wait()
	}
	if e.closed {
		return Message{}, false
	}
	return e.pop(), true
}

// TryRecv returns a queued message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.count == 0 {
		return Message{}, false
	}
	return e.pop(), true
}

// Wait blocks until the mailbox is non-empty, the endpoint is closed, or d
// has elapsed on the network clock, whichever comes first. Await loops use
// it to sleep event-driven between polls: a delivery wakes the waiter
// immediately instead of costing a full poll period.
func (e *Endpoint) Wait(d time.Duration) {
	clk := e.net.clk
	clk.Enter()
	defer clk.Exit()
	e.mu.Lock()
	if e.count == 0 && !e.closed {
		e.cond.WaitTimeout(d)
	}
	e.mu.Unlock()
}

// Closed reports whether the endpoint can no longer receive: its process
// crashed or the network shut down. Await loops check it to avoid spinning
// on a mailbox that will never fill again.
func (e *Endpoint) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// ID returns the endpoint's process ID.
func (e *Endpoint) ID() ProcessID { return e.id }

// Clock returns the network clock this endpoint lives on.
func (e *Endpoint) Clock() vclock.Clock { return e.net.clk }

// Metrics returns the run's metrics registry (nil when off); components
// constructed around an endpoint pull their instrumentation from here.
func (e *Endpoint) Metrics() *obs.Metrics { return e.net.Metrics() }

// Trace returns the run's span recorder (nil when off).
func (e *Endpoint) Trace() *obs.Trace { return e.net.Trace() }

// Close shuts the whole network down, unblocking all receivers. Intended
// for the end of a run.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := n.eps
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}

// drainSpinBudget bounds how many scheduler yields resetDrained grants the
// previous run's goroutines to unwind before giving up on reuse. The
// budget is counted in yields, not wall time: the reset path stays free of
// wall-clock reads, and a yield only matters when there is still an
// unwinding goroutine to hand the processor to. Giving up is the
// exceptional path (a wedged old world); the caller then builds a fresh
// network, which is correct either way.
const drainSpinBudget = 5_000_000

// Reset recycles a closed network for a new run: the endpoint structures,
// interning tables, dense fault/counter state, and event pools are kept;
// the clock, seeds, and record/replay hooks are replaced per cfg. It
// reports whether the network is ready for reuse — false means the caller
// must build a fresh network (reuse requires the virtual clock, and the
// previous run must wind down within a bounded wait).
//
// Reset first drains the old clock to full quiescence: stopped deployments
// still have goroutines unwinding (a cleaner finishing its last virtual
// sleep, a consensus round loop observing its stop), and those goroutines
// hold references to the endpoints being recycled. Only when no attached
// goroutine and no pending event remains is the old world provably inert,
// and the endpoints can be reopened for the next seed. The subsequent
// deployment must Register the same process IDs in the same order (the
// sweep contract: one scenario shape per worker).
func (n *Network) Reset(cfg Config) bool {
	if cfg.Clock != nil || n.virt == nil {
		return false
	}
	return n.resetDrained(cfg)
}

// ResetShared is Reset for deployments whose networks share one virtual
// clock (the sharded runtime): cfg.Clock must carry the *new* shared
// virtual clock the recycled network will run on. Each group's network is
// Reset with the same new clock; draining the *old* shared clock is
// idempotent across the group set — the first group's drain leaves it
// quiescent, the remaining groups' drains return immediately — so callers
// simply ResetShared every group in shard order.
func (n *Network) ResetShared(cfg Config) bool {
	if _, ok := cfg.Clock.(*vclock.Virtual); !ok || n.virt == nil {
		return false
	}
	return n.resetDrained(cfg)
}

// resetDrained drains the previous run's clock to quiescence, then
// reinstalls configuration and reopens endpoints (the shared tail of Reset
// and ResetShared).
func (n *Network) resetDrained(cfg Config) bool {
	for spin := 0; !n.virt.Quiesced(); spin++ {
		if spin > drainSpinBudget {
			return false
		}
		runtime.Gosched()
	}
	n.mu.Lock()
	n.apply(cfg)
	n.closed = false
	n.inflight = 0
	for i := range n.crashed {
		n.crashed[i] = false
	}
	for i := range n.sent {
		n.sent[i] = 0
	}
	clear(n.crashedNames)
	n.partition = nil
	clear(n.dropped)
	n.reviveLeft = len(n.eps)
	eps := n.eps
	clk := n.clk
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = false
		ep.clearLocked()
		ep.cond = clk.NewCond(&ep.mu)
		ep.mu.Unlock()
	}
	return true
}
