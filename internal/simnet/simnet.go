// Package simnet is an in-memory asynchronous message-passing network with
// crash-stop processes, implementing the system model of §5.2:
//
//   - Processes fail by crashing and do not recover. A crashed process
//     silently stops sending and receiving.
//   - Channels are reliable between correct processes: every message sent
//     from a correct process to a correct process is eventually delivered,
//     exactly once. Delivery order is *not* FIFO: each message experiences
//     an independent random delay drawn from a seeded generator, which is
//     what makes the system asynchronous.
//
// Delays are measured on the network's clock (internal/vclock). By default
// that clock is virtual: deliveries are entries in a discrete-event queue,
// the simulation advances to the next pending deadline whenever every
// participating goroutine is blocked, and a run's wall-clock cost is the
// CPU it burns, not the delays it simulates. Passing vclock.NewReal() in
// Config.Clock restores wall-clock behavior.
//
// Beyond crash-stop, the network exposes a link-level fault plane for
// adversarial scenarios: delay distributions other than uniform (fixed
// per-link asymmetry, heavy-tail Pareto) selected via Config.Dist, a
// delay-storm multiplier (SetDelayScale), and black-holed links —
// Partition splits processes into non-communicating groups, DropLink
// severs one link, Heal repairs everything. Link faults drop messages
// silently (at send time and at the delivery instant), which is exactly
// how the model's asynchrony lets an adversary behave; crashed-process
// semantics are untouched.
//
// The scheduler is also observable and steerable: Config.Record logs
// every delivery decision (link, deadline, drop/delay verdict) into a
// schedule.Log, making a run a replayable (scenario, seed, log) value, and
// Config.Replay re-executes a recorded log — optionally edited to
// suppress, stretch, or reorder individual deliveries — which is the
// substrate the delta-debugging shrinker (internal/shrink) minimizes
// failing schedules on.
//
// The network also keeps per-process send counters so experiments can
// report message complexity.
package simnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"xability/internal/schedule"
	"xability/internal/vclock"
)

// ProcessID names a process on the network.
type ProcessID string

// Message is a tagged payload in flight. Payloads are shared by reference
// (the network is in-memory); senders must not mutate a payload after
// sending.
type Message struct {
	From    ProcessID
	To      ProcessID
	Type    string
	Payload any
}

// DelayDist selects the per-message delay distribution drawn over
// [MinDelay, MaxDelay).
type DelayDist int

const (
	// DelayUniform draws every message's delay uniformly from the
	// [MinDelay, MaxDelay) interval (the default).
	DelayUniform DelayDist = iota
	// DelayAsymmetric gives each directed link a fixed delay in
	// [MinDelay, MaxDelay), derived deterministically from the link's
	// endpoint names: a→b and b→a generally differ, and fast links stay
	// fast for the whole run. It models persistent topology asymmetry
	// rather than per-message jitter.
	DelayAsymmetric
	// DelayPareto draws heavy-tailed delays: most messages arrive near
	// MinDelay, a few straggle far beyond MaxDelay (bounded by ParetoCap).
	// It models congestion spikes and stresses reordering far more than
	// the uniform distribution.
	DelayPareto
)

// Config tunes the network.
type Config struct {
	// Seed drives the delay generator; runs with equal seeds and equal
	// send sequences see equal delays.
	Seed int64
	// MinDelay and MaxDelay bound the per-message delay span. Zero
	// values mean immediate handoff (still asynchronous: delivery is a
	// separate scheduled event).
	MinDelay, MaxDelay time.Duration
	// Dist selects the delay distribution over the span (default
	// DelayUniform).
	Dist DelayDist
	// ParetoAlpha is the tail index for DelayPareto: smaller means a
	// heavier tail. Zero selects 1.5.
	ParetoAlpha float64
	// ParetoCap bounds DelayPareto draws above MinDelay. Zero selects
	// 32× the MinDelay..MaxDelay span.
	ParetoCap time.Duration
	// Clock supplies the network's notion of time. Nil selects a fresh
	// virtual clock (vclock.NewVirtual); pass vclock.NewReal() for
	// wall-clock delays.
	Clock vclock.Clock
	// Record, when non-nil, receives one schedule.Entry per send: the
	// message's link, virtual-time deadline, and drop/delay verdict. The
	// recorded log plus (scenario, seed) fully determines the run, and can
	// be replayed or edited — see Replay.
	Record *schedule.Log
	// Replay, when non-nil, re-executes a recorded schedule: each send is
	// matched (per link-and-type stream) against the log and uses the
	// recorded delay instead of the seeded draw, after the spec's Edit —
	// which may suppress or re-delay individual deliveries — has been
	// applied. Sends beyond the log (the run diverged under edits) fall
	// back to the seeded generator. Record and Replay compose: recording a
	// replayed run yields the effective schedule of the edited run.
	Replay *schedule.Replay
}

// Network connects endpoints. Create with New, then Register each process.
type Network struct {
	cfg Config
	clk vclock.Clock

	mu        sync.Mutex
	idle      *sync.Cond // signaled when inflight returns to zero
	rng       *rand.Rand
	endpoints map[ProcessID]*Endpoint
	order     []ProcessID // registration order, for deterministic iteration
	crashed   map[ProcessID]bool
	sent      map[ProcessID]int
	inflight  int
	closed    bool

	// Link fault plane. All three are keyed by *base* process IDs (the ID
	// up to the first '/'), so partitioning "replica-0" also severs its
	// auxiliary "/fd" and "/cons" endpoints.
	delayScale float64           // storm multiplier on drawn delays (1 = calm)
	partition  map[ProcessID]int // base ID → partition group; nil = whole
	dropped    map[linkKey]bool  // black-holed links (stored both directions)

	// Schedule record/replay plane (cfg.Record / cfg.Replay).
	record *schedule.Log
	replay *schedule.Cursor
}

// linkKey names a directed link between two base process IDs.
type linkKey struct{ from, to ProcessID }

// New returns an empty network.
func New(cfg Config) *Network {
	clk := cfg.Clock
	if clk == nil {
		clk = vclock.NewVirtual()
	}
	n := &Network{
		cfg:        cfg,
		clk:        clk,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		endpoints:  make(map[ProcessID]*Endpoint),
		crashed:    make(map[ProcessID]bool),
		sent:       make(map[ProcessID]int),
		delayScale: 1,
		dropped:    make(map[linkKey]bool),
		record:     cfg.Record,
		replay:     schedule.NewCursor(cfg.Replay),
	}
	n.idle = sync.NewCond(&n.mu)
	return n
}

// baseOf strips the auxiliary-endpoint suffix from a process ID:
// "replica-0/fd" and "replica-0/cons" both belong to base "replica-0".
// Link faults act on base IDs, so partitioning a process severs all of
// its endpoints at once.
func baseOf(id ProcessID) ProcessID {
	if i := strings.IndexByte(string(id), '/'); i >= 0 {
		return id[:i]
	}
	return id
}

// Clock returns the network's clock. Components that live on the network
// (failure detectors, servers, clients) take their time from here, so one
// Config.Clock choice switches the whole deployment between virtual and
// real time.
func (n *Network) Clock() vclock.Clock { return n.clk }

// Endpoint is one process's attachment to the network: an unbounded mailbox
// with blocking receive.
type Endpoint struct {
	id  ProcessID
	net *Network

	mu     sync.Mutex
	cond   vclock.Cond
	queue  []Message
	closed bool
}

// Register attaches a process and returns its endpoint. Registering the
// same ID twice panics: process identities are fixed for a run.
func (n *Network) Register(id ProcessID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate process %q", id))
	}
	ep := &Endpoint{id: id, net: n}
	ep.cond = n.clk.NewCond(&ep.mu)
	n.endpoints[id] = ep
	n.order = append(n.order, id)
	return ep
}

// Crash marks a process as crashed: its outstanding and future messages are
// dropped, and its pending receives unblock with ok=false. Crash is
// permanent (§5.2: no recovery), idempotent (crashing a crashed process is
// a no-op), and safe for process IDs that were never registered (the crash
// is recorded, so a send to that ID — were it ever registered — stays
// dropped).
func (n *Network) Crash(id ProcessID) {
	n.mu.Lock()
	if n.crashed[id] {
		n.mu.Unlock()
		return
	}
	ep := n.endpoints[id]
	n.crashed[id] = true
	n.mu.Unlock()
	if ep != nil {
		ep.mu.Lock()
		ep.closed = true
		ep.queue = nil
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}

// Partition splits the network: messages between base process IDs in
// different groups are black-holed until Heal. IDs not listed in any group
// keep all of their links. Auxiliary endpoints ("p/fd", "p/cons") follow
// their base process. Calling Partition again replaces the previous
// grouping.
func (n *Network) Partition(groups ...[]ProcessID) {
	m := make(map[ProcessID]int)
	for g, members := range groups {
		for _, id := range members {
			m[baseOf(id)] = g
		}
	}
	n.mu.Lock()
	n.partition = m
	n.mu.Unlock()
}

// DropLink black-holes the link between two base process IDs in both
// directions until Heal. Dropping an already dropped link is a no-op.
func (n *Network) DropLink(a, b ProcessID) {
	a, b = baseOf(a), baseOf(b)
	n.mu.Lock()
	n.dropped[linkKey{a, b}] = true
	n.dropped[linkKey{b, a}] = true
	n.mu.Unlock()
}

// Heal repairs the link fault plane: it clears the active partition and
// every dropped link. Messages black-holed while the faults were in force
// stay lost; only future traffic flows again.
func (n *Network) Heal() {
	n.mu.Lock()
	n.partition = nil
	n.dropped = make(map[linkKey]bool)
	n.mu.Unlock()
}

// SetDelayScale multiplies every subsequently drawn delay by f — the delay
// storm primitive. f of 1 restores calm; values below 1 are clamped to 1 so
// a storm can only slow the network down. The underlying random draws are
// unaffected, so a storm window does not perturb the delay sequence of the
// traffic around it.
func (n *Network) SetDelayScale(f float64) {
	if f < 1 {
		f = 1
	}
	n.mu.Lock()
	n.delayScale = f
	n.mu.Unlock()
}

// blockedLocked reports whether the link fault plane severs from→to.
// Callers hold n.mu.
func (n *Network) blockedLocked(from, to ProcessID) bool {
	from, to = baseOf(from), baseOf(to)
	if from == to {
		return false // a process always reaches its own endpoints
	}
	if n.dropped[linkKey{from, to}] {
		return true
	}
	if n.partition != nil {
		gf, okf := n.partition[from]
		gt, okt := n.partition[to]
		if okf && okt && gf != gt {
			return true
		}
	}
	return false
}

// drawDelayLocked draws one message delay per the configured distribution
// and applies the current delay scale. Callers hold n.mu. Every
// distribution consumes the same generator stream only when it actually
// draws (uniform and Pareto draw once per send; asymmetric never draws),
// so runs with equal seeds and equal send sequences see equal delays.
func (n *Network) drawDelayLocked(from, to ProcessID) time.Duration {
	span := n.cfg.MaxDelay - n.cfg.MinDelay
	d := n.cfg.MinDelay
	switch n.cfg.Dist {
	case DelayAsymmetric:
		if span > 0 {
			h := fnv.New64a()
			h.Write([]byte(from))
			h.Write([]byte{0})
			h.Write([]byte(to))
			d += time.Duration(h.Sum64() % uint64(span))
		}
	case DelayPareto:
		if span > 0 {
			alpha := n.cfg.ParetoAlpha
			if alpha <= 0 {
				alpha = 1.5
			}
			bound := n.cfg.ParetoCap
			if bound <= 0 {
				bound = 32 * span
			}
			// Bounded Pareto over the span: u near 1 is the common case
			// (delay near MinDelay), u near 0 the straggler tail.
			u := 1 - n.rng.Float64() // (0, 1]
			tail := time.Duration(float64(span) * (math.Pow(u, -1/alpha) - 1))
			if tail > bound {
				tail = bound
			}
			d += tail
		}
	default:
		if span > 0 {
			d += time.Duration(n.rng.Int63n(int64(span)))
		}
	}
	if n.delayScale > 1 {
		d = time.Duration(float64(d) * n.delayScale)
	}
	return d
}

// Crashed reports whether a process has crashed.
func (n *Network) Crashed(id ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Processes returns the registered process IDs in registration order. The
// fixed order keeps broadcasts — and with them the seeded delay draws —
// deterministic across runs.
func (n *Network) Processes() []ProcessID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]ProcessID(nil), n.order...)
}

// SentBy reports how many messages a process has sent.
func (n *Network) SentBy(id ProcessID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent[id]
}

// TotalSent reports the number of messages sent on the network.
func (n *Network) TotalSent() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, c := range n.sent {
		total += c
	}
	return total
}

// Quiesce blocks until all in-flight deliveries have settled. Useful at the
// end of a scenario before reading counters. Safe from goroutines attached
// to the clock and from external (test) goroutines alike.
func (n *Network) Quiesce() {
	n.clk.Detached(func() {
		n.mu.Lock()
		for n.inflight > 0 {
			n.idle.Wait()
		}
		n.mu.Unlock()
	})
}

// Send transmits a message. Sends from or to crashed processes are silently
// dropped (a crashed process does nothing; messages to a crashed process
// can never be received). Delivery is scheduled on the network clock after
// a seeded random delay; the delivery's heap position is fixed at send
// time. Schedule determinism therefore reduces to send-order determinism:
// the virtual clock wakes one event at a time, and the brief windows where
// two protocol goroutines are runnable at once (a spawn returning to Recv,
// a broadcast waking several waiters) do not themselves send, which the
// determinism regression test pins for the protocol paths.
func (e *Endpoint) Send(to ProcessID, typ string, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed || n.crashed[e.id] {
		n.mu.Unlock()
		return
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("simnet: send to unknown process %q", to))
	}
	n.sent[e.id]++
	delay := n.drawDelayLocked(e.id, to)
	// Replay plane: a send matched against the recorded log takes the
	// log's (possibly edited) decision instead of the seeded draw. The
	// draw above still happened, so unmatched sends of a diverged run see
	// the same delay stream a recording run would.
	suppressed := false
	if d, ok := n.replay.Next(string(e.id), string(to), typ); ok {
		if d.Suppress {
			suppressed = true
		} else {
			delay = d.Delay
		}
	}
	blocked := n.blockedLocked(e.id, to)
	entry := -1
	if n.record != nil {
		verdict := schedule.Scheduled
		switch {
		case suppressed:
			verdict = schedule.Suppressed
		case blocked:
			verdict = schedule.DroppedSend
		}
		now := n.clk.Now()
		entry = n.record.Append(schedule.Entry{
			From: string(e.id), To: string(to), Type: typ,
			SendAt: now, Deadline: now + delay, Verdict: verdict,
		})
	}
	if suppressed || blocked {
		// The message is black-holed: by the link fault plane at send
		// time, or by a replay edit (the shrinker suppressing one
		// delivery).
		n.mu.Unlock()
		return
	}
	msg := Message{From: e.id, To: to, Type: typ, Payload: payload}
	n.inflight++
	n.mu.Unlock()

	n.clk.GoAfter(delay, func() { n.deliver(dst, msg, entry) })
}

// deliver completes one scheduled delivery. A message whose link is down at
// the delivery instant is black-holed: a partition or dropped link kills the
// traffic already in the pipe, not only future sends. entry is the message's
// schedule-log index (-1 when not recording); the verdict resolves here.
func (n *Network) deliver(dst *Endpoint, msg Message, entry int) {
	n.mu.Lock()
	dead := n.crashed[msg.To] || n.closed || n.blockedLocked(msg.From, msg.To)
	if n.record != nil && entry >= 0 {
		if dead {
			n.record.Resolve(entry, schedule.DroppedDeliver)
		} else {
			n.record.Resolve(entry, schedule.Delivered)
		}
	}
	n.mu.Unlock()
	if !dead {
		dst.mu.Lock()
		if !dst.closed {
			dst.queue = append(dst.queue, msg)
			dst.cond.Broadcast()
		}
		dst.mu.Unlock()
	}
	n.mu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
	n.mu.Unlock()
}

// Broadcast sends the message to every registered process except the
// sender.
func (e *Endpoint) Broadcast(typ string, payload any) {
	for _, id := range e.net.Processes() {
		if id != e.id {
			e.Send(id, typ, payload)
		}
	}
}

// Recv blocks until a message arrives and returns it. ok is false when the
// endpoint's process has crashed (or the network shut down), after which no
// further messages will ever arrive.
func (e *Endpoint) Recv() (Message, bool) {
	clk := e.net.clk
	clk.Enter()
	defer clk.Exit()
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if e.closed {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// TryRecv returns a queued message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || len(e.queue) == 0 {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// Wait blocks until the mailbox is non-empty, the endpoint is closed, or d
// has elapsed on the network clock, whichever comes first. Await loops use
// it to sleep event-driven between polls: a delivery wakes the waiter
// immediately instead of costing a full poll period.
func (e *Endpoint) Wait(d time.Duration) {
	clk := e.net.clk
	clk.Enter()
	defer clk.Exit()
	e.mu.Lock()
	if len(e.queue) == 0 && !e.closed {
		e.cond.WaitTimeout(d)
	}
	e.mu.Unlock()
}

// Closed reports whether the endpoint can no longer receive: its process
// crashed or the network shut down. Await loops check it to avoid spinning
// on a mailbox that will never fill again.
func (e *Endpoint) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// ID returns the endpoint's process ID.
func (e *Endpoint) ID() ProcessID { return e.id }

// Clock returns the network clock this endpoint lives on.
func (e *Endpoint) Clock() vclock.Clock { return e.net.clk }

// Close shuts the whole network down, unblocking all receivers. Intended
// for the end of a run.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}
