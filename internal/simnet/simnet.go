// Package simnet is an in-memory asynchronous message-passing network with
// crash-stop processes, implementing the system model of §5.2:
//
//   - Processes fail by crashing and do not recover. A crashed process
//     silently stops sending and receiving.
//   - Channels are reliable between correct processes: every message sent
//     from a correct process to a correct process is eventually delivered,
//     exactly once. Delivery order is *not* FIFO: each message experiences
//     an independent random delay drawn from a seeded generator, which is
//     what makes the system asynchronous.
//
// The network also keeps per-process send counters so experiments can
// report message complexity.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ProcessID names a process on the network.
type ProcessID string

// Message is a tagged payload in flight. Payloads are shared by reference
// (the network is in-memory); senders must not mutate a payload after
// sending.
type Message struct {
	From    ProcessID
	To      ProcessID
	Type    string
	Payload any
}

// Config tunes the network.
type Config struct {
	// Seed drives the delay generator; runs with equal seeds and equal
	// send sequences see equal delays.
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message delay. Zero
	// values mean immediate handoff (still asynchronous: delivery happens
	// on a separate goroutine).
	MinDelay, MaxDelay time.Duration
}

// Network connects endpoints. Create with New, then Register each process.
type Network struct {
	cfg Config

	mu        sync.Mutex
	idle      *sync.Cond // signaled when inflight returns to zero
	rng       *rand.Rand
	endpoints map[ProcessID]*Endpoint
	crashed   map[ProcessID]bool
	sent      map[ProcessID]int
	inflight  int
	closed    bool
}

// New returns an empty network.
func New(cfg Config) *Network {
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		endpoints: make(map[ProcessID]*Endpoint),
		crashed:   make(map[ProcessID]bool),
		sent:      make(map[ProcessID]int),
	}
	n.idle = sync.NewCond(&n.mu)
	return n
}

// Endpoint is one process's attachment to the network: an unbounded mailbox
// with blocking receive.
type Endpoint struct {
	id  ProcessID
	net *Network

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

// Register attaches a process and returns its endpoint. Registering the
// same ID twice panics: process identities are fixed for a run.
func (n *Network) Register(id ProcessID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate process %q", id))
	}
	ep := &Endpoint{id: id, net: n}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[id] = ep
	return ep
}

// Crash marks a process as crashed: its outstanding and future messages are
// dropped, and its pending receives unblock with ok=false. Crash is
// permanent (§5.2: no recovery).
func (n *Network) Crash(id ProcessID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.crashed[id] = true
	n.mu.Unlock()
	if ep != nil {
		ep.mu.Lock()
		ep.closed = true
		ep.queue = nil
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}

// Crashed reports whether a process has crashed.
func (n *Network) Crashed(id ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Processes returns the registered process IDs.
func (n *Network) Processes() []ProcessID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ProcessID, 0, len(n.endpoints))
	for id := range n.endpoints {
		out = append(out, id)
	}
	return out
}

// SentBy reports how many messages a process has sent.
func (n *Network) SentBy(id ProcessID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent[id]
}

// TotalSent reports the number of messages sent on the network.
func (n *Network) TotalSent() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, c := range n.sent {
		total += c
	}
	return total
}

// Quiesce blocks until all in-flight deliveries have settled. Useful at the
// end of a scenario before reading counters.
func (n *Network) Quiesce() {
	n.mu.Lock()
	for n.inflight > 0 {
		n.idle.Wait()
	}
	n.mu.Unlock()
}

// Send transmits a message. Sends from or to crashed processes are silently
// dropped (a crashed process does nothing; messages to a crashed process
// can never be received). Delivery happens asynchronously after a random
// delay.
func (e *Endpoint) Send(to ProcessID, typ string, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed || n.crashed[e.id] {
		n.mu.Unlock()
		return
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("simnet: send to unknown process %q", to))
	}
	n.sent[e.id]++
	var delay time.Duration
	if n.cfg.MaxDelay > n.cfg.MinDelay {
		delay = n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay-n.cfg.MinDelay)))
	} else {
		delay = n.cfg.MinDelay
	}
	msg := Message{From: e.id, To: to, Type: typ, Payload: payload}
	n.inflight++
	n.mu.Unlock()

	go func() {
		defer func() {
			n.mu.Lock()
			n.inflight--
			if n.inflight == 0 {
				n.idle.Broadcast()
			}
			n.mu.Unlock()
		}()
		if delay > 0 {
			time.Sleep(delay)
		}
		n.mu.Lock()
		dead := n.crashed[to] || n.closed
		n.mu.Unlock()
		if dead {
			return
		}
		dst.mu.Lock()
		if !dst.closed {
			dst.queue = append(dst.queue, msg)
			dst.cond.Broadcast()
		}
		dst.mu.Unlock()
	}()
}

// Broadcast sends the message to every registered process except the
// sender.
func (e *Endpoint) Broadcast(typ string, payload any) {
	for _, id := range e.net.Processes() {
		if id != e.id {
			e.Send(id, typ, payload)
		}
	}
}

// Recv blocks until a message arrives and returns it. ok is false when the
// endpoint's process has crashed (or the network shut down), after which no
// further messages will ever arrive.
func (e *Endpoint) Recv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if e.closed {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// TryRecv returns a queued message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || len(e.queue) == 0 {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// ID returns the endpoint's process ID.
func (e *Endpoint) ID() ProcessID { return e.id }

// Close shuts the whole network down, unblocking all receivers. Intended
// for the end of a run.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}
