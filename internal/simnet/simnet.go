// Package simnet is an in-memory asynchronous message-passing network with
// crash-stop processes, implementing the system model of §5.2:
//
//   - Processes fail by crashing and do not recover. A crashed process
//     silently stops sending and receiving.
//   - Channels are reliable between correct processes: every message sent
//     from a correct process to a correct process is eventually delivered,
//     exactly once. Delivery order is *not* FIFO: each message experiences
//     an independent random delay drawn from a seeded generator, which is
//     what makes the system asynchronous.
//
// Delays are measured on the network's clock (internal/vclock). By default
// that clock is virtual: deliveries are entries in a discrete-event queue,
// the simulation advances to the next pending deadline whenever every
// participating goroutine is blocked, and a run's wall-clock cost is the
// CPU it burns, not the delays it simulates. Passing vclock.NewReal() in
// Config.Clock restores wall-clock behavior.
//
// The network also keeps per-process send counters so experiments can
// report message complexity.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"xability/internal/vclock"
)

// ProcessID names a process on the network.
type ProcessID string

// Message is a tagged payload in flight. Payloads are shared by reference
// (the network is in-memory); senders must not mutate a payload after
// sending.
type Message struct {
	From    ProcessID
	To      ProcessID
	Type    string
	Payload any
}

// Config tunes the network.
type Config struct {
	// Seed drives the delay generator; runs with equal seeds and equal
	// send sequences see equal delays.
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message delay. Zero
	// values mean immediate handoff (still asynchronous: delivery is a
	// separate scheduled event).
	MinDelay, MaxDelay time.Duration
	// Clock supplies the network's notion of time. Nil selects a fresh
	// virtual clock (vclock.NewVirtual); pass vclock.NewReal() for
	// wall-clock delays.
	Clock vclock.Clock
}

// Network connects endpoints. Create with New, then Register each process.
type Network struct {
	cfg Config
	clk vclock.Clock

	mu        sync.Mutex
	idle      *sync.Cond // signaled when inflight returns to zero
	rng       *rand.Rand
	endpoints map[ProcessID]*Endpoint
	order     []ProcessID // registration order, for deterministic iteration
	crashed   map[ProcessID]bool
	sent      map[ProcessID]int
	inflight  int
	closed    bool
}

// New returns an empty network.
func New(cfg Config) *Network {
	clk := cfg.Clock
	if clk == nil {
		clk = vclock.NewVirtual()
	}
	n := &Network{
		cfg:       cfg,
		clk:       clk,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		endpoints: make(map[ProcessID]*Endpoint),
		crashed:   make(map[ProcessID]bool),
		sent:      make(map[ProcessID]int),
	}
	n.idle = sync.NewCond(&n.mu)
	return n
}

// Clock returns the network's clock. Components that live on the network
// (failure detectors, servers, clients) take their time from here, so one
// Config.Clock choice switches the whole deployment between virtual and
// real time.
func (n *Network) Clock() vclock.Clock { return n.clk }

// Endpoint is one process's attachment to the network: an unbounded mailbox
// with blocking receive.
type Endpoint struct {
	id  ProcessID
	net *Network

	mu     sync.Mutex
	cond   vclock.Cond
	queue  []Message
	closed bool
}

// Register attaches a process and returns its endpoint. Registering the
// same ID twice panics: process identities are fixed for a run.
func (n *Network) Register(id ProcessID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate process %q", id))
	}
	ep := &Endpoint{id: id, net: n}
	ep.cond = n.clk.NewCond(&ep.mu)
	n.endpoints[id] = ep
	n.order = append(n.order, id)
	return ep
}

// Crash marks a process as crashed: its outstanding and future messages are
// dropped, and its pending receives unblock with ok=false. Crash is
// permanent (§5.2: no recovery).
func (n *Network) Crash(id ProcessID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.crashed[id] = true
	n.mu.Unlock()
	if ep != nil {
		ep.mu.Lock()
		ep.closed = true
		ep.queue = nil
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}

// Crashed reports whether a process has crashed.
func (n *Network) Crashed(id ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Processes returns the registered process IDs in registration order. The
// fixed order keeps broadcasts — and with them the seeded delay draws —
// deterministic across runs.
func (n *Network) Processes() []ProcessID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]ProcessID(nil), n.order...)
}

// SentBy reports how many messages a process has sent.
func (n *Network) SentBy(id ProcessID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent[id]
}

// TotalSent reports the number of messages sent on the network.
func (n *Network) TotalSent() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, c := range n.sent {
		total += c
	}
	return total
}

// Quiesce blocks until all in-flight deliveries have settled. Useful at the
// end of a scenario before reading counters. Safe from goroutines attached
// to the clock and from external (test) goroutines alike.
func (n *Network) Quiesce() {
	n.clk.Detached(func() {
		n.mu.Lock()
		for n.inflight > 0 {
			n.idle.Wait()
		}
		n.mu.Unlock()
	})
}

// Send transmits a message. Sends from or to crashed processes are silently
// dropped (a crashed process does nothing; messages to a crashed process
// can never be received). Delivery is scheduled on the network clock after
// a seeded random delay; the delivery's heap position is fixed at send
// time. Schedule determinism therefore reduces to send-order determinism:
// the virtual clock wakes one event at a time, and the brief windows where
// two protocol goroutines are runnable at once (a spawn returning to Recv,
// a broadcast waking several waiters) do not themselves send, which the
// determinism regression test pins for the protocol paths.
func (e *Endpoint) Send(to ProcessID, typ string, payload any) {
	n := e.net
	n.mu.Lock()
	if n.closed || n.crashed[e.id] {
		n.mu.Unlock()
		return
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("simnet: send to unknown process %q", to))
	}
	n.sent[e.id]++
	var delay time.Duration
	if n.cfg.MaxDelay > n.cfg.MinDelay {
		delay = n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay-n.cfg.MinDelay)))
	} else {
		delay = n.cfg.MinDelay
	}
	msg := Message{From: e.id, To: to, Type: typ, Payload: payload}
	n.inflight++
	n.mu.Unlock()

	n.clk.GoAfter(delay, func() { n.deliver(dst, msg) })
}

// deliver completes one scheduled delivery.
func (n *Network) deliver(dst *Endpoint, msg Message) {
	n.mu.Lock()
	dead := n.crashed[msg.To] || n.closed
	n.mu.Unlock()
	if !dead {
		dst.mu.Lock()
		if !dst.closed {
			dst.queue = append(dst.queue, msg)
			dst.cond.Broadcast()
		}
		dst.mu.Unlock()
	}
	n.mu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
	n.mu.Unlock()
}

// Broadcast sends the message to every registered process except the
// sender.
func (e *Endpoint) Broadcast(typ string, payload any) {
	for _, id := range e.net.Processes() {
		if id != e.id {
			e.Send(id, typ, payload)
		}
	}
}

// Recv blocks until a message arrives and returns it. ok is false when the
// endpoint's process has crashed (or the network shut down), after which no
// further messages will ever arrive.
func (e *Endpoint) Recv() (Message, bool) {
	clk := e.net.clk
	clk.Enter()
	defer clk.Exit()
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if e.closed {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// TryRecv returns a queued message without blocking.
func (e *Endpoint) TryRecv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || len(e.queue) == 0 {
		return Message{}, false
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m, true
}

// Wait blocks until the mailbox is non-empty, the endpoint is closed, or d
// has elapsed on the network clock, whichever comes first. Await loops use
// it to sleep event-driven between polls: a delivery wakes the waiter
// immediately instead of costing a full poll period.
func (e *Endpoint) Wait(d time.Duration) {
	clk := e.net.clk
	clk.Enter()
	defer clk.Exit()
	e.mu.Lock()
	if len(e.queue) == 0 && !e.closed {
		e.cond.WaitTimeout(d)
	}
	e.mu.Unlock()
}

// Closed reports whether the endpoint can no longer receive: its process
// crashed or the network shut down. Await loops check it to avoid spinning
// on a mailbox that will never fill again.
func (e *Endpoint) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// ID returns the endpoint's process ID.
func (e *Endpoint) ID() ProcessID { return e.id }

// Clock returns the network clock this endpoint lives on.
func (e *Endpoint) Clock() vclock.Clock { return e.net.clk }

// Close shuts the whole network down, unblocking all receivers. Intended
// for the end of a run.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		ep.cond.Broadcast()
		ep.mu.Unlock()
	}
}
