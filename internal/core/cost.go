package core

import (
	"sync"
	"time"

	"xability/internal/vclock"
)

// CostModel charges virtual-clock time for the protocol's two expensive
// primitives, per server. The simulated network is an infinite-server
// queue — any number of deliveries and executions overlap in virtual time —
// so without a cost model a replica has unbounded capacity and open-loop
// throughput curves never saturate. Charging a fixed virtual cost per
// consensus proposal and per action execution on a serialized per-replica
// CPU gives each replica a finite service rate, which is exactly what T11's
// saturation experiments measure: batching amortizes the Consensus charge
// over the batch, pipelining overlaps agreement with execution.
//
// The zero value disables charging entirely: no sleeps, no serialization,
// and every existing scenario runs bit-identically to the uncharged build.
type CostModel struct {
	// Consensus is charged once per consensus proposal a server issues
	// (ownership, result, and outcome agreement alike, in both the
	// per-request and the batched plane).
	Consensus time.Duration
	// Exec is charged once per action execution attempt (including
	// cancel/commit derived actions and replayed applies stay free — they
	// are local bookkeeping in both planes).
	Exec time.Duration
}

// enabled reports whether any charge is non-zero.
func (cm CostModel) enabled() bool { return cm.Consensus > 0 || cm.Exec > 0 }

// vcpu serializes charged work on one replica: a ticket-FIFO queue on the
// virtual clock. Arrival order under the deterministic scheduler is
// deterministic, so the service order — and therefore every run metric —
// is too.
type vcpu struct {
	clk  vclock.Clock
	mu   sync.Mutex
	cond vclock.Cond
	next uint64 // next ticket to hand out
	serv uint64 // ticket currently being served
}

func newVCPU(clk vclock.Clock) *vcpu {
	c := &vcpu{clk: clk}
	c.cond = clk.NewCond(&c.mu)
	return c
}

// charge occupies the CPU for d of virtual time, FIFO among contenders.
func (c *vcpu) charge(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	t := c.next
	c.next++
	for c.serv != t {
		c.cond.Wait()
	}
	c.mu.Unlock()
	c.clk.Sleep(d)
	c.mu.Lock()
	c.serv++
	c.mu.Unlock()
	c.cond.Broadcast()
}
