package core

import (
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/event"
)

// seededRun captures everything a replay must reproduce bit-for-bit.
type seededRun struct {
	history  event.History
	sent     int
	attempts int
	replies  []action.Value
}

// runSeededScenario executes one fully seeded cluster scenario on the
// virtual clock and returns its observable outcome. With crash set, the
// run's first replica crashes at a fixed point of simulated time while the
// request is stretched by injected failures (the T1 crash-failover shape);
// otherwise it is a nice multi-request run.
func runSeededScenario(t *testing.T, seed int64, crash bool) seededRun {
	t.Helper()
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: seed})
	clk := tc.Clock()
	clk.Enter()
	if crash {
		tc.Env.SetFailures("debit", 1.0, 6, 0)
		clk.Go(func() {
			clk.Sleep(2 * time.Millisecond)
			tc.CrashServer(0)
			tc.ClientSuspect("replica-0", true)
		})
		tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	} else {
		tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
		tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct"))
		tc.Client.SubmitUntilSuccess(action.NewRequest("token", "t"))
	}
	clk.Exit()
	tc.Net.Quiesce()
	_, replies := tc.Client.Log()
	return seededRun{
		history:  tc.Observer.History(),
		sent:     tc.Net.TotalSent(),
		attempts: tc.Client.Attempts(),
		replies:  replies,
	}
}

// TestDeterministicReplay pins the virtual-time scheduler's replayability
// guarantee: running the same seeded scenario twice yields identical
// observed histories, message counts, submit attempts, and replies — for a
// nice run and for a crash-failover run alike. Timing jitter of the host
// must not be observable.
func TestDeterministicReplay(t *testing.T) {
	for _, tt := range []struct {
		name  string
		crash bool
		seed  int64
	}{
		{"nice", false, 4242},
		{"crash-failover", true, 4242},
	} {
		t.Run(tt.name, func(t *testing.T) {
			a := runSeededScenario(t, tt.seed, tt.crash)
			b := runSeededScenario(t, tt.seed, tt.crash)
			if !a.history.Equal(b.history) {
				t.Errorf("histories diverged between identically seeded runs:\nrun 1: %v\nrun 2: %v", a.history, b.history)
			}
			if a.sent != b.sent {
				t.Errorf("TotalSent diverged: %d vs %d", a.sent, b.sent)
			}
			if a.attempts != b.attempts {
				t.Errorf("submit attempts diverged: %d vs %d", a.attempts, b.attempts)
			}
			if len(a.replies) != len(b.replies) {
				t.Fatalf("reply counts diverged: %d vs %d", len(a.replies), len(b.replies))
			}
			for i := range a.replies {
				if a.replies[i] != b.replies[i] {
					t.Errorf("reply %d diverged: %q vs %q", i, a.replies[i], b.replies[i])
				}
			}
		})
	}
}

// TestDeterministicSeedsDiffer is the sanity complement: different seeds
// must be able to produce different schedules (otherwise the replay test
// would be vacuous). Message delays differ, so at minimum the virtual
// timeline differs; we check the weakest observable — that the runs are not
// forced into a single schedule — without demanding any particular
// divergence.
func TestDeterministicSeedsDiffer(t *testing.T) {
	a := runSeededScenario(t, 1, true)
	b := runSeededScenario(t, 99, true)
	if a.history.Equal(b.history) && a.sent == b.sent && a.attempts == b.attempts {
		t.Log("seeds 1 and 99 happened to coincide on every observable; not an error, but worth a look")
	}
}
