package core

import (
	"testing"

	"xability/internal/action"
)

// TestConcurrentSubmitsShareOneMailbox pins the client stub's reply-stash
// contract: two Submits in flight on one client share one mailbox, so
// whichever drains first routinely pulls the other's reply out. Before the
// stash, that reply was dropped as "stale" and the other Submit waited for
// a suspicion that never comes — the hang the first fault plan against
// examples/threetier flushed out (every middle-tier replica submits
// through the one shared back-end stub, and active-replication drift makes
// those submits concurrent). With the stash, each Submit finds its reply
// either in the mailbox or left for it by a sibling.
func TestConcurrentSubmitsShareOneMailbox(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 9})
	clk := tc.Net.Clock()
	type reply struct {
		acct string
		v    action.Value
	}
	done := make(chan reply, 4)
	for _, acct := range []string{"acct", "acct2", "acct3", "acct4"} {
		acct := acct
		clk.Go(func() {
			done <- reply{acct, tc.Client.SubmitUntilSuccess(action.NewRequest("read", action.Value(acct)))}
		})
	}
	want := map[string]action.Value{"acct": "100", "acct2": "0", "acct3": "0", "acct4": "0"}
	for i := 0; i < 4; i++ {
		r := <-done
		if r.v != want[r.acct] {
			t.Errorf("read(%s) = %q, want %q", r.acct, r.v, want[r.acct])
		}
	}
}
