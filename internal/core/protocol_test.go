package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/sm"
	"xability/internal/verify"
)

// bankWorld is the test service: an env-backed account store with an
// idempotent read, a non-deterministic idempotent token generator, and an
// undoable debit.
type bankWorld struct {
	mu      sync.Mutex
	balance map[string]int
}

func (w *bankWorld) get(acct string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.balance[acct]
}

func bankRegistry() *action.Registry {
	reg := action.NewRegistry()
	reg.MustRegister("read", action.KindIdempotent)
	reg.MustRegister("token", action.KindIdempotent)
	reg.MustRegister("debit", action.KindUndoable)
	return reg
}

// bankSetup returns a Setup function closing over a shared world.
func bankSetup(w *bankWorld) func(m *sm.Machine) {
	return func(m *sm.Machine) {
		mustNoErr(m.HandleIdempotent("read", func(ctx *sm.Ctx) action.Value {
			w.mu.Lock()
			defer w.mu.Unlock()
			return action.Value(fmt.Sprintf("%d", w.balance[string(ctx.Req.Input)]))
		}))
		mustNoErr(m.HandleIdempotent("token", func(ctx *sm.Ctx) action.Value {
			// Non-deterministic: each execution draws a fresh token; the
			// environment's resolve-once semantics fixes the first.
			return action.Value(fmt.Sprintf("tok-%d", ctx.Rand.Int63()))
		}))
		mustNoErr(m.HandleUndoable("debit",
			func(ctx *sm.Ctx) action.Value {
				w.mu.Lock()
				defer w.mu.Unlock()
				w.balance[string(ctx.Req.Input)] -= 10
				return "debited"
			},
			func(ctx *sm.Ctx) {
				w.mu.Lock()
				defer w.mu.Unlock()
				w.balance[string(ctx.Req.Input)] += 10
			}))
	}
}

func mustNoErr(err error) {
	if err != nil {
		panic(err)
	}
}

type testCluster struct {
	*Cluster
	world *bankWorld
}

func newBankCluster(t testing.TB, cfg ClusterConfig) *testCluster {
	t.Helper()
	world := &bankWorld{balance: map[string]int{"acct": 100}}
	cfg.Registry = bankRegistry()
	cfg.Setup = bankSetup(world)
	if cfg.Net.MaxDelay == 0 {
		cfg.Net.MaxDelay = 200 * time.Microsecond
	}
	c := NewCluster(cfg)
	t.Cleanup(c.Stop)
	return &testCluster{Cluster: c, world: world}
}

// checkRun runs the verifier over the cluster's client log and observer
// history.
func (tc *testCluster) checkRun(t *testing.T) verify.Report {
	t.Helper()
	tc.Net.Quiesce()
	reqs, replies := tc.Client.Log()
	rep := verify.Check(verify.Run{
		Registry:       bankRegistry(),
		Requests:       reqs,
		Replies:        replies,
		History:        tc.Observer.History(),
		SubmitAttempts: tc.Client.Attempts(),
	})
	if !rep.OK() {
		t.Errorf("run verification failed: %+v\nhistory:\n%v", rep, tc.Observer.History())
	}
	return rep
}

func TestNiceRunIdempotent(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 1})
	v := tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct"))
	if v != "100" {
		t.Errorf("read = %q, want 100", v)
	}
	rep := tc.checkRun(t)
	if !rep.R3Strict {
		t.Error("nice run should satisfy strict R3")
	}
}

func TestNiceRunUndoable(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 2})
	v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	if v != "debited" {
		t.Errorf("debit = %q", v)
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90 (exactly one debit)", got)
	}
	rep := tc.checkRun(t)
	if !rep.R3Strict {
		t.Error("nice run should satisfy strict R3")
	}
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force debit effects = %d, want 1", n)
	}
}

func TestNiceRunSequence(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 3})
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")); v != "90" {
		t.Errorf("read after debit = %q, want 90", v)
	}
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
		t.Fatalf("second debit = %q", v)
	}
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")); v != "80" {
		t.Errorf("read after second debit = %q, want 80", v)
	}
	rep := tc.checkRun(t)
	if !rep.R3Strict {
		t.Error("sequential nice run should satisfy strict R3")
	}
}

func TestCrashBeforeDelivery(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 4})
	tc.CrashServer(0) // the client contacts replica-0 first
	v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	if v != "debited" {
		t.Errorf("debit = %q", v)
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90", got)
	}
	if tc.Client.Attempts() < 2 {
		t.Error("client should have retried after suspecting the crashed replica")
	}
	tc.checkRun(t)
}

func TestCrashDuringExecution(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 5})
	// Make the action fail repeatedly so replica-0 is stuck retrying when
	// it crashes; a cleaner must cancel round 1 and run a later round.
	tc.Env.SetFailures("debit", 1.0, 8, 0)

	clk := tc.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")) })
	clk.Go(func() {
		clk.Sleep(3 * time.Millisecond) // let replica-0 start and hit failures
		tc.CrashServer(0)
		tc.ClientSuspect("replica-0", true)
	})

	select {
	case v := <-done:
		if v != "debited" {
			t.Errorf("debit = %q", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submit did not terminate after crash (R2 violated)")
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90 (exactly-once across crash+retry)", got)
	}
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force debit effects = %d, want 1", n)
	}
	tc.checkRun(t)
}

func TestFalseSuspicionIdempotent(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 6})
	// Slow the owner down with injected failures, then make replica-1
	// falsely suspect replica-0: both end up executing (active flavor).
	tc.Env.SetFailures("token", 1.0, 5, 0)
	clk := tc.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("token", "t1")) })
	clk.Go(func() {
		clk.Sleep(2 * time.Millisecond)
		tc.Suspect("replica-1", "replica-0", true)
	})

	v := <-done
	if v == "" || v == EmptyResult {
		t.Fatalf("token = %q", v)
	}
	tc.checkRun(t)
}

func TestFalseSuspicionUndoable(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 7})
	tc.Env.SetFailures("debit", 1.0, 5, 0)
	clk := tc.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")) })
	clk.Go(func() {
		clk.Sleep(2 * time.Millisecond)
		tc.Suspect("replica-1", "replica-0", true)
		tc.Suspect("replica-2", "replica-0", true)
	})

	v := <-done
	if v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	tc.Net.Quiesce()
	waitFor(t, 5*time.Second, func() bool { return tc.world.get("acct") == 90 })
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force debit effects = %d, want 1 (cancelled rounds rolled back)", n)
	}
	tc.checkRun(t)
}

func TestActionFailuresRetryToSuccess(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 8})
	// Failures both before and after the effect: execute-until-success
	// must cancel and retry undoable actions (Figure 7).
	tc.Env.SetFailures("debit", 0.7, 6, 0.5)
	v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	if v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	waitFor(t, 5*time.Second, func() bool { return tc.world.get("acct") == 90 })
	tc.checkRun(t)
}

func TestCommitAndCancelFailuresRetry(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 9})
	tc.Env.SetFailures(action.Commit("debit"), 0.8, 4, 0)
	tc.Env.SetFailures(action.Cancel("debit"), 0.8, 4, 0)
	tc.Env.SetFailures("debit", 0.6, 4, 0.5)
	v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	if v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	waitFor(t, 5*time.Second, func() bool { return tc.world.get("acct") == 90 })
	tc.checkRun(t)
}

func TestResubmissionIsIdempotentR1(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 10})
	req := tc.Client.Tag(action.NewRequest("debit", "acct"))
	v1, err := tc.Client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Re-submit the same tagged request: the reply must repeat and the
	// effect must not duplicate (R1).
	v2, err := tc.Client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("re-submission reply %q differs from original %q", v2, v1)
	}
	waitFor(t, 5*time.Second, func() bool { return tc.world.get("acct") == 90 })
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force effects after re-submission = %d, want 1", n)
	}
}

func TestCTConsensusNiceRun(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 11, Consensus: ConsensusCT})
	v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	if v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	waitFor(t, 5*time.Second, func() bool { return tc.world.get("acct") == 90 })
	tc.checkRun(t)
}

func TestCTConsensusCrash(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 12, Consensus: ConsensusCT})
	tc.CrashServer(0)
	done := make(chan action.Value, 1)
	go func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")) }()
	select {
	case v := <-done:
		if v != "100" {
			t.Errorf("read = %q, want 100", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("submit did not terminate with CT consensus after crash")
	}
	tc.checkRun(t)
}

func TestHeartbeatDetectorCrash(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{
		Replicas:          3,
		Seed:              13,
		Detector:          DetectorHeartbeat,
		HeartbeatInterval: time.Millisecond,
	})
	tc.CrashServer(0)
	done := make(chan action.Value, 1)
	go func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")) }()
	select {
	case v := <-done:
		if v != "100" {
			t.Errorf("read = %q", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("submit did not terminate with heartbeat detector after crash")
	}
	tc.checkRun(t)
}

func TestManySequentialRequests(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 14})
	for i := 0; i < 8; i++ {
		if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
			t.Fatalf("debit %d = %q", i, v)
		}
	}
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")); v != "20" {
		t.Errorf("final read = %q, want 20", v)
	}
	rep := tc.checkRun(t)
	if !rep.R3Strict {
		t.Error("sequential requests without failures should satisfy strict R3")
	}
}

func TestSpectrumDuplicationUnderSuspicion(t *testing.T) {
	// §5.1's run-time spectrum: without suspicion exactly one replica
	// executes; with aggressive suspicion several do. The event history
	// shows it via duplicate start events.
	nice := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 15})
	nice.Client.SubmitUntilSuccess(action.NewRequest("token", "t"))
	nice.Net.Quiesce()
	niceStarts := countStarts(nice, "token")
	if niceStarts != 1 {
		t.Errorf("nice run: %d executions of token, want 1 (primary-backup flavor)", niceStarts)
	}

	busy := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 16})
	busy.Env.SetFailures("token", 1.0, 6, 0)
	clk := busy.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- busy.Client.SubmitUntilSuccess(action.NewRequest("token", "t")) })
	clk.Go(func() {
		clk.Sleep(2 * time.Millisecond)
		busy.Suspect("replica-1", "replica-0", true)
		busy.Suspect("replica-2", "replica-0", true)
	})
	<-done
	busy.Net.Quiesce()
	if got := countStarts(busy, "token"); got < 2 {
		t.Errorf("suspicious run: %d executions of token, want ≥ 2 (active flavor)", got)
	}
	busy.checkRun(t)
}

func countStarts(tc *testCluster, a action.Name) int {
	n := 0
	for _, e := range tc.Observer.History() {
		if e.Type == 0 && e.Action == a { // event.Start
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
