package core

import (
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/simnet"
)

// Stress scenarios for E4: wider clusters, double crashes, sustained
// failure injection across multi-request sequences, and combined
// substrate stress (CT consensus under false suspicion).

func TestFiveReplicasDoubleCrash(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 5, Seed: 31})
	tc.Env.SetFailures("debit", 1.0, 10, 0)

	clk := tc.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")) })
	clk.Go(func() {
		clk.Sleep(2 * time.Millisecond)
		tc.CrashServer(0)
		tc.ClientSuspect("replica-0", true)
		clk.Sleep(2 * time.Millisecond)
		tc.CrashServer(1)
		tc.ClientSuspect("replica-1", true)
	})

	select {
	case v := <-done:
		if v != "debited" {
			t.Fatalf("debit = %q", v)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("submit did not survive a double crash with 5 replicas")
	}
	waitFor(t, 5*time.Second, func() bool { return tc.world.get("acct") == 90 })
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force effects = %d, want 1", n)
	}
	tc.checkRun(t)
}

func TestSequenceWithSustainedFailures(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 32})
	// Every action type fails intermittently for the whole run.
	tc.Env.SetFailures("debit", 0.5, 8, 0.5)
	tc.Env.SetFailures("read", 0.5, 8, 0.3)
	tc.Env.SetFailures(action.Cancel("debit"), 0.5, 6, 0)
	tc.Env.SetFailures(action.Commit("debit"), 0.5, 6, 0)

	for i := 0; i < 5; i++ {
		if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
			t.Fatalf("debit %d = %q", i, v)
		}
	}
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")); v != "50" {
		t.Errorf("read = %q, want 50", v)
	}
	tc.checkRun(t)
}

func TestCTWithFalseSuspicion(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 33, Consensus: ConsensusCT})
	tc.Env.SetFailures("debit", 1.0, 4, 0)
	clk := tc.Clock()
	done := make(chan action.Value, 1)
	clk.Go(func() { done <- tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")) })
	clk.Go(func() {
		clk.Sleep(3 * time.Millisecond)
		tc.Suspect("replica-1", "replica-0", true)
		tc.Suspect("replica-2", "replica-0", true)
	})
	select {
	case v := <-done:
		if v != "debited" {
			t.Fatalf("debit = %q", v)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("CT + false suspicion did not terminate")
	}
	waitFor(t, 10*time.Second, func() bool { return tc.world.get("acct") == 90 })
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force effects = %d, want 1", n)
	}
	tc.checkRun(t)
}

func TestSuspicionStormStaysExactlyOnce(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 34})
	tc.Env.SetFailures("debit", 0.8, 12, 0.3)

	clk := tc.Clock()
	stop := make(chan struct{})
	clk.Go(func() {
		// Rotate false suspicions of whichever replica owns the request.
		targets := []string{"replica-0", "replica-1", "replica-2"}
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			target := simnet.ProcessID(targets[i%3])
			tc.SuspectEverywhere(target, true)
			clk.Sleep(time.Millisecond)
			tc.SuspectEverywhere(target, false)
			i++
			clk.Sleep(500 * time.Microsecond)
		}
	})

	for i := 0; i < 3; i++ {
		if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
			t.Fatalf("debit %d = %q", i, v)
		}
	}
	close(stop)
	waitFor(t, 10*time.Second, func() bool { return tc.world.get("acct") == 70 })
	if n := tc.Env.InForceTotal("debit", "acct"); n != 3 {
		t.Errorf("in-force effects = %d, want 3 (one per request)", n)
	}
	tc.checkRun(t)
}

func TestManyAccountsInterleaved(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 35})
	accounts := []string{"acct", "acct2", "acct3"}
	tc.world.mu.Lock()
	tc.world.balance["acct2"] = 100
	tc.world.balance["acct3"] = 100
	tc.world.mu.Unlock()

	for round := 0; round < 3; round++ {
		for _, a := range accounts {
			if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", action.Value(a))); v != "debited" {
				t.Fatalf("debit %s = %q", a, v)
			}
		}
	}
	for _, a := range accounts {
		if got := tc.world.get(a); got != 70 {
			t.Errorf("%s = %d, want 70", a, got)
		}
	}
	rep := tc.checkRun(t)
	if len(rep.Outputs) != 9 {
		t.Errorf("outputs = %d, want 9", len(rep.Outputs))
	}
}

func TestClientAttemptAccounting(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 36})
	tc.CrashServer(0)
	tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct"))
	if tc.Client.Attempts() < 2 {
		t.Errorf("attempts = %d, want ≥ 2 (crashed first target)", tc.Client.Attempts())
	}
	reqs, replies := tc.Client.Log()
	if len(reqs) != 1 || len(replies) != 1 {
		t.Errorf("log: %d requests, %d replies", len(reqs), len(replies))
	}
}

func TestSubmitRequiresTaggedRequest(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 37})
	if _, err := tc.Client.Submit(action.NewRequest("read", "acct")); err == nil {
		t.Error("untagged Submit should error")
	}
}

func TestServerStopIsIdempotent(t *testing.T) {
	tc := newBankCluster(t, ClusterConfig{Replicas: 3, Seed: 38})
	tc.Servers[0].Stop()
	tc.Servers[0].Stop()
	tc.Servers[0].Crash()
}
