// Package core implements the paper's general asynchronous replication
// algorithm (§5, Figures 5–7): a client stub whose submit is idempotent and
// eventually successful (R1, R2), and a set of server replicas that execute
// non-deterministic, side-effecting actions with exactly-once semantics
// (R3, R4).
//
// The algorithm is asynchronous in the paper's sense: in a nice run the
// replica that receives the request executes alone (a primary-backup
// flavor); under (possibly false) failure suspicion, other replicas start
// new rounds and execute concurrently (an active-replication flavor), with
// three consensus arrays arbitrating:
//
//	owner-agreement[round]    — who owns a round            (key "owner/…")
//	result-agreement[request] — result of idempotent action (key "result/…")
//	outcome-agreement[request]— commit/abort of undoable    (key "outcome/…")
//
// Differences from the paper's pseudo-code, each forced by a gap the
// figures elide (see DESIGN.md §2):
//
//   - Multi-request support: consensus instances are namespaced by request
//     ID; replicas replay agreed results of earlier requests through the
//     machine's Apply hook before executing a later one.
//   - Request gossip: the figures give every replica access to the shared
//     owner-agreement array; here servers broadcast an announce message on
//     first sight of a request so every cleaner knows which instances to
//     read.
//   - Cleaner re-reply: when the cleaner finds a suspected owner whose
//     round already fixed a result, it forwards that result to the client —
//     without this, an owner crashing between deciding and replying would
//     leave the client waiting forever and R2 would not hold.
//   - Round tagging: undoable executions and their cancel/commit actions
//     carry (request ID, round) in their event values, so a cancellation
//     for round n cannot cancel round n+1 (§5.4); idempotent executions
//     carry only the request ID, so retries in later rounds collapse under
//     rule 18.
package core

import (
	"errors"
	"sync"
	"time"

	"xability/internal/action"
	"xability/internal/consensus"
	"xability/internal/env"
	"xability/internal/fd"
	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/sm"
	"xability/internal/vclock"
	"xability/internal/wal"
)

// WAL record kinds for the server's durable state (DESIGN.md §9). A
// restarted replica replays these to remember which requests it saw, which
// (request, round) pairs it attempted — the duplicate-execution guard must
// survive a crash, or a restarted owner re-proposes its round, reads back
// its own ownership and executes twice — and which results it fixed.
const (
	recRequest = "req"   // Key=request ID, Str=client, Val=action.Request
	recRound   = "round" // Key=request ID, Round=attempted round
	recFinish  = "fin"   // Key=request ID, Str=fixed result
)

// EmptyResult is the paper's empty-result sentinel: the value the cleaner
// proposes in cleaning mode to prevent a suspected owner from enforcing its
// result.
const EmptyResult action.Value = "\x00empty-result"

// MaxRound bounds the owner-agreement array (the paper's max-round).
const MaxRound = 64

// execRetryDelay is the backoff between attempts of a failing action in
// execute-until-success. Measured on the cluster clock: failure-stretched
// executions span simulated time (so suspicions and crashes injected at
// virtual instants can land mid-execution, as in a real deployment where
// retries are paced), yet cost no wall time under the virtual clock.
const execRetryDelay = 500 * time.Microsecond

// Message types exchanged between client stubs and servers.
const (
	MsgSubmit   = "submit"   // client → server: SubmitPayload
	MsgResult   = "result"   // server → client: ResultPayload
	MsgAnnounce = "announce" // server → server: SubmitPayload (request gossip)
)

// SubmitPayload carries a request and the client to reply to.
type SubmitPayload struct {
	Req    action.Request
	Client simnet.ProcessID
}

// ResultPayload carries a reply.
type ResultPayload struct {
	ReqID string
	Value action.Value
}

type ownerDecision struct {
	Owner  simnet.ProcessID
	Req    action.Request
	Client simnet.ProcessID
	// Batch carries the slot's ordered members in the batched plane
	// (see batch.go); nil in the per-request plane. Deciding the batch
	// content inside the ownership decision is what fixes the batch across
	// rounds: a cleaner taking over round r+1 re-proposes the round-1 batch
	// verbatim, so every round of a slot executes the same members.
	Batch []SubmitPayload
}

type outcomeDecision struct {
	Outcome string // "commit" or "abort"
	Value   action.Value
}

// Keys of the three consensus arrays: comparable struct values, built by
// literal — the protocol's inner loops (ownership races, the cleaner's
// largest-defined-index scans) key instances without formatting strings.
func ownerKey(reqID string, round int) consensus.Key {
	return consensus.Key{Space: consensus.SpaceOwner, ID: reqID, Round: int32(round)}
}
func resultKey(reqID string, round int) consensus.Key {
	return consensus.Key{Space: consensus.SpaceResult, ID: reqID, Round: int32(round)}
}
func outcomeKey(reqID string, round int) consensus.Key {
	return consensus.Key{Space: consensus.SpaceOutcome, ID: reqID, Round: int32(round)}
}

// Server is one replica of the replicated service (Figure 6).
type Server struct {
	id   simnet.ProcessID
	ep   *simnet.Endpoint
	mach *sm.Machine
	det  fd.Detector
	cons consensus.Provider
	net  *simnet.Network
	clk  vclock.Clock

	cleanInterval time.Duration
	costs         CostModel
	cpu           *vcpu
	batch         BatchConfig
	log           *wal.Log     // stable storage; nil runs in-memory (no restart)
	m             *obs.Metrics // nil-safe run metrics
	tr            *obs.Trace   // nil-safe span recorder

	mu      sync.Mutex
	stopped bool
	active  map[string]*requestState
	order   []string // request IDs in arrival order, for replay
	// rounds is durable state (xvet:durable): the (request, round) pairs
	// this replica has processed. Writers must persist the pair first —
	// the durablewrite analyzer flags any write in a function that never
	// persists.
	rounds map[consensus.Key]bool //xvet:durable
	// inflight marks (request, round) pairs this incarnation is currently
	// driving through execute/coordinate. Deliberately NOT durable: a
	// restarted incarnation starts with it empty, which is exactly how the
	// cleaner's resume path tells "the owner goroutine died with the crash"
	// from "the owner goroutine is still working".
	inflight map[consensus.Key]bool
	stop     chan struct{}
	wg       sync.WaitGroup

	// Batched plane (nil/zero unless batch.Enabled; see batch.go).
	slots *slotState
}

type requestState struct {
	req    action.Request // untagged except ID
	client simnet.ProcessID
	// done and result are durable (xvet:durable): a fixed result must
	// survive restart so re-submissions stay idempotent (R1).
	done     bool         //xvet:durable
	result   action.Value //xvet:durable
	applied  bool         // replayed into the local machine state
	watching bool         // an awaitFixed watcher is already running here
	direct   bool         // this replica received the client's submit itself
	queued   bool         // enqueued in this replica's pending batch or a known slot
	doneSlot int          // slot that finished it (batched plane; -1 otherwise)
}

// ServerConfig assembles a server's dependencies.
type ServerConfig struct {
	ID        simnet.ProcessID
	Endpoint  *simnet.Endpoint
	Machine   *sm.Machine
	Detector  fd.Detector
	Consensus consensus.Provider
	Network   *simnet.Network
	// CleanInterval is the cleaner's polling period (default 1ms).
	CleanInterval time.Duration
	// Costs charges virtual time per protocol primitive (see CostModel);
	// the zero value disables charging.
	Costs CostModel
	// Batch enables the batched/pipelined slot plane (see BatchConfig);
	// the zero value keeps the per-request protocol.
	Batch BatchConfig
	// Log is the replica's write-ahead log on stable storage; nil (the
	// default) runs fully in-memory, where a crash is final.
	Log *wal.Log
}

// NewServer builds a replica.
func NewServer(cfg ServerConfig) *Server {
	ci := cfg.CleanInterval
	if ci <= 0 {
		ci = time.Millisecond
	}
	s := &Server{
		id:            cfg.ID,
		ep:            cfg.Endpoint,
		mach:          cfg.Machine,
		det:           cfg.Detector,
		cons:          cfg.Consensus,
		net:           cfg.Network,
		clk:           cfg.Network.Clock(),
		cleanInterval: ci,
		costs:         cfg.Costs,
		batch:         cfg.Batch.withDefaults(),
		log:           cfg.Log,
		m:             cfg.Network.Metrics(),
		tr:            cfg.Network.Trace(),
		active:        make(map[string]*requestState),
		rounds:        make(map[consensus.Key]bool),
		inflight:      make(map[consensus.Key]bool),
		stop:          make(chan struct{}),
	}
	if s.costs.enabled() {
		s.cpu = newVCPU(s.clk)
	}
	if s.batch.Enabled {
		s.slots = newSlotState(s.clk)
	}
	if s.log != nil {
		s.log.SetCompactor(serverCompact)
	}
	return s
}

// serverCompact is the server's snapshot fold (wal.Compactor): the
// durable state per request is its first req record, then — for an
// unfinished request — the round records guarding re-attempts, or — for
// a finished one — just its fin record. Round records of a finished
// request are dead weight: the guard exists to stop a restarted replica
// from re-attempting a round and double-executing, and a recovered
// done/result answers every later touch of the request before any round
// is attempted. Request order is preserved (it is the replay order of
// s.order); replaying the fold's output yields state the server cannot
// distinguish from replaying the full prefix.
func serverCompact(prefix []wal.Record) []wal.Record {
	fin := make(map[string]int, len(prefix)) // last fin index per request
	for i, r := range prefix {
		if r.Kind == recFinish {
			fin[r.Key] = i
		}
	}
	out := make([]wal.Record, 0, len(prefix))
	seenReq := make(map[string]bool, len(prefix))
	type roundKey struct {
		id    string
		round int32
	}
	seenRound := make(map[roundKey]bool)
	for i, r := range prefix {
		switch r.Kind {
		case recRequest:
			if seenReq[r.Key] {
				continue
			}
			seenReq[r.Key] = true
			out = append(out, r)
			if fi, done := fin[r.Key]; done {
				out = append(out, prefix[fi])
			}
		case recRound:
			if _, done := fin[r.Key]; done {
				continue
			}
			rk := roundKey{r.Key, r.Round}
			if seenRound[rk] {
				continue
			}
			seenRound[rk] = true
			out = append(out, r)
		case recFinish:
			// Emitted beside its req above. A fin whose req record is
			// missing is unreachable on replay (Recover ignores it) — and
			// cannot occur, since persistRequest precedes every finish.
			_ = i
		}
	}
	return out
}

// propose issues a consensus proposal, charging the cost model's per-proposal
// CPU time first. Both planes (per-request and batched) fund every proposal
// through here, so T11's before/after comparison charges them identically.
func (s *Server) propose(key consensus.Key, val any) any {
	s.cpu.charge(s.costs.Consensus)
	s.m.Inc(obs.ConsProposals)
	return s.cons.Object(key).Propose(val)
}

// Start launches the request loop and the cleaner (the cobegin of
// Figure 6) on the network clock. With batching enabled the cobegin gains
// the batcher (window-driven slot formation) and the follower (in-order
// slot application; see batch.go).
func (s *Server) Start() {
	s.wg.Add(2)
	s.clk.Go(func() { defer s.wg.Done(); s.mainLoop() })
	s.clk.Go(func() { defer s.wg.Done(); s.cleaner() })
	if s.batch.Enabled {
		s.wg.Add(2)
		s.clk.Go(func() { defer s.wg.Done(); s.batcher() })
		s.clk.Go(func() { defer s.wg.Done(); s.follower() })
	}
}

// Stop terminates the server's goroutines without simulating a crash.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stop)
	s.mu.Unlock()
}

// Crash simulates a crash (§5.2: crash-stop): the process's endpoints go
// silent and all its activities cease at the next step boundary.
func (s *Server) Crash() {
	s.Stop()
	s.net.Crash(s.id)
	s.net.Crash(fd.FDEndpoint(s.id))
	s.net.Crash(consensus.ConsEndpoint(s.id))
}

// ID returns the replica's process ID.
func (s *Server) ID() simnet.ProcessID { return s.id }

// persistRequest forces a first-seen request to stable storage. Callers
// must not hold s.mu: the sync wait is a clock event, and goroutines
// blocked on a held mutex count as runnable to the clock.
func (s *Server) persistRequest(req action.Request, client simnet.ProcessID) {
	if s.log != nil {
		s.log.Append(wal.Record{Kind: recRequest, Key: req.ID, Str: string(client), Val: req})
	}
}

// persistRound forces a (request, round) attempt to stable storage —
// write-ahead of the ownership proposal, so a restarted replica cannot
// re-attempt a round it already entered. Callers must not hold s.mu.
func (s *Server) persistRound(key consensus.Key) {
	if s.log != nil {
		s.log.Append(wal.Record{Kind: recRound, Key: key.ID, Round: key.Round})
	}
}

// persistFinish forces a fixed result to stable storage. Callers must not
// hold s.mu.
func (s *Server) persistFinish(reqID string, res action.Value) {
	if s.log != nil {
		s.log.Append(wal.Record{Kind: recFinish, Key: reqID, Str: string(res)})
	}
}

// Recover rebuilds the replica's durable state from its write-ahead log.
// Call it on a fresh Server before Start, with the log of the crashed
// incarnation. Replay is idempotent by construction: requests re-create
// their entry only on first sight, round records re-arm the
// (request, round) guard, and finish records overwrite with the same fixed
// value. Recovered requests come back with applied=false — the machine
// state died with the process, so the first round this replica owns after
// restart re-folds earlier results through replayEarlier, which reuses the
// normal Apply path (a pure state fold: no environment effects re-fire).
func (s *Server) Recover() {
	if s.log == nil {
		return
	}
	replayed := int64(0)
	s.log.Replay(func(r wal.Record) {
		if r.Kind != recRequest && r.Kind != recRound && r.Kind != recFinish {
			return // snapshot markers carry no server state
		}
		replayed++
		s.mu.Lock()
		defer s.mu.Unlock()
		switch r.Kind {
		case recRequest:
			req, ok := r.Val.(action.Request)
			if !ok {
				return
			}
			if _, seen := s.active[r.Key]; !seen {
				s.active[r.Key] = &requestState{req: req, client: simnet.ProcessID(r.Str), doneSlot: -1}
				s.order = append(s.order, r.Key)
			}
		case recRound:
			s.rounds[consensus.Key{Space: consensus.SpaceOwner, ID: r.Key, Round: r.Round}] = true //xvet:ok durablewrite recovery replays the log; re-persisting here would double every record
		case recFinish:
			if st := s.active[r.Key]; st != nil {
				st.done = true                  //xvet:ok durablewrite recovery replays the log; re-persisting here would double every record
				st.result = action.Value(r.Str) //xvet:ok durablewrite recovery replays the log; re-persisting here would double every record
			}
		}
	})
	s.m.Add(obs.WALReplayed, replayed)
}

func (s *Server) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

func (s *Server) mainLoop() {
	for {
		msg, ok := s.ep.Recv()
		if !ok {
			return
		}
		switch msg.Type {
		case MsgSubmit:
			p, ok := msg.Payload.(SubmitPayload)
			if !ok {
				continue
			}
			if s.batch.Enabled {
				// Batched plane: no per-request announce gossip (the batch
				// content rides in the slot's ownership decision, which is
				// where cleaners discover it) and no per-request ownership
				// race — the request joins this replica's pending batch.
				s.enqueue(p)
				continue
			}
			st, first := s.noteRequest(p.Req, p.Client)
			if first {
				s.persistRequest(p.Req, p.Client)
				s.ep.Broadcast(MsgAnnounce, p)
			}
			s.mu.Lock()
			done, res := st.done, st.result
			s.mu.Unlock()
			if done {
				// Re-submission of a completed request: replying with the
				// fixed result keeps submit idempotent (R1) without
				// re-executing anything.
				s.ep.Send(p.Client, MsgResult, ResultPayload{ReqID: p.Req.ID, Value: res})
				continue
			}
			// req.round := 1 (Figure 6).
			s.wg.Add(1)
			s.clk.Go(func() {
				defer s.wg.Done()
				if !s.processRequest(p.Req, 1, p.Client) {
					// This replica accepted the submission but did not
					// answer it — it lost the ownership race, or the
					// round guard suppressed a re-attempt. The original
					// owner's reply may be black-holed by the link plane,
					// and the cleaner only re-replies while that owner is
					// *suspected*; without a watcher the client can await
					// an unsuspected, already-answered replica forever
					// (found by the seeded random fault generator).
					// Replies are idempotent, so forwarding the fixed
					// result is always safe.
					s.awaitFixed(p.Req, p.Client)
				}
			})
		case MsgAnnounce:
			if p, ok := msg.Payload.(SubmitPayload); ok {
				if _, first := s.noteRequest(p.Req, p.Client); first {
					s.tr.Instant(s.clk.Now(), string(s.id), "announce", p.Req.ID)
					s.persistRequest(p.Req, p.Client)
				}
			}
		}
	}
}

// noteRequest records a request for the cleaner; reports whether it was
// previously unknown to this replica.
func (s *Server) noteRequest(req action.Request, client simnet.ProcessID) (*requestState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.active[req.ID]
	if !ok {
		st = &requestState{req: req, client: client, doneSlot: -1}
		s.active[req.ID] = st
		s.order = append(s.order, req.ID)
	}
	return st, !ok
}

// taggedFor returns the request as executed in a round: undoable actions
// (and, through Request.Cancel/Commit, their derived actions) carry the
// round; idempotent actions carry only the request ID so that executions
// from different rounds collapse under rule 18.
func (s *Server) taggedFor(req action.Request, round int) action.Request {
	if s.mach.IsUndoable(req) {
		return req.WithRound(round)
	}
	return req.WithRound(0)
}

// processRequest is Figure 6's process-request: propose ownership of the
// round; the winner executes, coordinates the result, and replies. It
// reports whether it sent the client a result itself — callers on the
// submit path fall back to awaitFixed when it did not.
func (s *Server) processRequest(req action.Request, round int, client simnet.ProcessID) bool {
	if s.isStopped() || round > MaxRound {
		return false
	}
	// Each replica attempts a (request, round) pair at most once. Without
	// this, a re-submission of an in-progress request to the replica that
	// owns its round would read back its own ownership decision and
	// execute the round a second time — a duplicate committed execution
	// the calculus cannot reduce away. (A storm-tossed heartbeat client
	// wraps its failover cycle back to the owner and triggers exactly
	// that; scripted-suspicion schedules never do.)
	s.mu.Lock()
	key := ownerKey(req.ID, round)
	if s.rounds[key] {
		s.mu.Unlock()
		return false
	}
	s.rounds[key] = true
	s.mu.Unlock()
	// Write-ahead of the proposal: a replica that crashes between here and
	// the decision must come back remembering the attempt, or it would
	// re-propose, read back its own ownership, and execute the round twice.
	s.persistRound(key)
	decided := s.propose(key, ownerDecision{Owner: s.id, Req: req, Client: client})
	od, ok := decided.(ownerDecision)
	if !ok || od.Owner != s.id {
		return false // another replica owns this round; the cleaner watches it
	}
	// Mark the round in flight so the cleaner's resume path (for rounds we
	// own but are no longer driving — the post-restart gap) leaves this
	// live execution alone.
	s.mu.Lock()
	s.inflight[key] = true
	s.mu.Unlock()
	span := s.tr.Begin(s.clk.Now(), string(s.id), "own-round", req.ID)
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		s.tr.End(s.clk.Now(), string(s.id), "own-round", span)
	}()
	s.replayEarlier(req.ID)
	exec := s.taggedFor(req, round)
	eSpan := s.tr.Begin(s.clk.Now(), string(s.id), "execute", req.ID)
	res, ok := s.executeUntilSuccess(exec)
	s.tr.End(s.clk.Now(), string(s.id), "execute", eSpan)
	if !ok {
		// Crashed mid-execution, or a cleaner fenced the round (decided
		// abort) while we retried — either way the aborting side owns the
		// request's progress from here.
		return false
	}
	res = s.resultCoordination(req, round, res)
	if res != EmptyResult && !s.isStopped() {
		s.finish(req.ID, res)
		s.ep.Send(client, MsgResult, ResultPayload{ReqID: req.ID, Value: res})
		return true
	}
	return false
}

// awaitFixed watches a request this replica accepted but could not answer
// (lost ownership race, or the round guard suppressed a duplicate
// attempt) and forwards the result once some round fixes one. Without it
// there is a liveness hole: the owning replica's reply can be black-holed
// by the link plane, and once suspicion of that owner has recovered the
// cleaner's re-reply path never fires again — the client then awaits an
// unsuspected replica that will never speak. Polling runs on the clock at
// the cleaner's period; under the model's assumptions some round
// eventually fixes a result (owners execute until success; aborted rounds
// are always succeeded by the aborting cleaner), so the watch terminates.
func (s *Server) awaitFixed(req action.Request, client simnet.ProcessID) {
	s.mu.Lock()
	st := s.active[req.ID]
	if st == nil || st.watching {
		s.mu.Unlock()
		return
	}
	st.watching = true
	s.mu.Unlock()
	for {
		if s.isStopped() {
			return
		}
		s.mu.Lock()
		done, res := st.done, st.result
		s.mu.Unlock()
		if done {
			s.ep.Send(client, MsgResult, ResultPayload{ReqID: req.ID, Value: res})
			return
		}
		if v, ok := s.resultFixed(req); ok {
			s.finish(req.ID, v)
			s.ep.Send(client, MsgResult, ResultPayload{ReqID: req.ID, Value: v})
			return
		}
		s.clk.Sleep(s.cleanInterval)
	}
}

// resultFixed scans the request's rounds, read-only, for a committed
// result: the fixed value of an idempotent round, or the committed
// outcome of an undoable one. Aborted rounds are skipped.
func (s *Server) resultFixed(req action.Request) (action.Value, bool) {
	for r := 1; r <= MaxRound; r++ {
		if _, decided := s.cons.Object(ownerKey(req.ID, r)).Read(); !decided {
			return EmptyResult, false // no further rounds exist yet
		}
		if s.mach.IsIdempotent(req) {
			if v, ok := s.cons.Object(resultKey(req.ID, r)).Read(); ok {
				if val, good := v.(action.Value); good && val != EmptyResult {
					return val, true
				}
			}
		} else if s.mach.IsUndoable(req) {
			if v, ok := s.cons.Object(outcomeKey(req.ID, r)).Read(); ok {
				if dec, good := v.(outcomeDecision); good && dec.Outcome == "commit" {
					return dec.Value, true
				}
			}
		}
	}
	return EmptyResult, false
}

// cleaner is Figure 6's cleaner thread: when the owner of a request's
// latest round is suspected, neutralize that round (cleaning-mode result
// coordination) and, if no result was fixed, start the next round as its
// owner.
func (s *Server) cleaner() {
	// The first pass is offset by a per-replica phase so symmetric cleaner
	// loops never share a virtual deadline (the deterministic schedule then
	// never needs to tie-break between replicas).
	s.clk.Sleep(s.cleanInterval + vclock.Stagger(string(s.id), s.cleanInterval/4+1))
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.batch.Enabled {
			s.cleanSlot()
		} else {
			for _, st := range s.snapshotActive() {
				s.cleanRequest(st)
			}
		}
		s.clk.Sleep(s.cleanInterval)
	}
}

func (s *Server) snapshotActive() []*requestState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*requestState, 0, len(s.order))
	for _, id := range s.order {
		if st := s.active[id]; st != nil && !st.done {
			out = append(out, st)
		}
	}
	return out
}

func (s *Server) cleanRequest(st *requestState) {
	reqID := st.req.ID
	// "let last-round be the largest defined index in owner-agreement".
	lastRound := 0
	var od ownerDecision
	for r := 1; r <= MaxRound; r++ {
		v, decided := s.cons.Object(ownerKey(reqID, r)).Read()
		if !decided {
			break
		}
		lastRound = r
		od = v.(ownerDecision)
	}
	// An attempt record for the round after last-round is an ownership
	// proposal some incarnation of this replica wrote ahead and then never
	// learned the decision of — it crashed inside the propose. The quorum
	// may have decided the round — possibly electing this replica owner —
	// while the restarted replica's consensus state knows nothing of it.
	// Nobody else will resolve that: correct detectors never suspect a
	// live restarted replica, so every other cleaner defers forever to an
	// owner that does not know it owns the round (found by the
	// restart-majority sweep, seed 12; pinned by
	// TestRestartForgottenOwnershipResolved). Re-proposing the recovered
	// attempt makes this node learn — or, if the quorum never formed,
	// force — the round's decision; the next cleaner pass then acts on it
	// through the normal resume/takeover paths.
	if lastRound < MaxRound {
		key := ownerKey(reqID, lastRound+1)
		s.mu.Lock()
		dangling := s.rounds[key] && !s.inflight[key]
		s.mu.Unlock()
		if dangling {
			s.propose(key, ownerDecision{Owner: s.id, Req: st.req, Client: st.client})
			return
		}
	}
	if lastRound == 0 {
		return // nobody owns round 1 yet; the client's retry handles it
	}
	if od.Owner == s.id {
		// A round we own but are not driving is a round our previous
		// incarnation was driving when it crashed: the goroutine died, the
		// WAL replay recovered the attempt record, and no other cleaner
		// will ever touch it — correct detectors do not suspect a live,
		// restarted replica. Resume it; a still-live execution is guarded
		// by the in-flight mark.
		s.resumeOwnRound(od, lastRound)
		return
	}
	if !s.det.Suspect(od.Owner) {
		return
	}
	// Cleaning mode: prevent the suspected owner from enforcing a result.
	s.m.Inc(obs.Takeovers)
	s.tr.Instant(s.clk.Now(), string(s.id), "takeover", reqID)
	res := s.resultCoordination(od.Req, lastRound, EmptyResult)
	if s.isStopped() {
		return
	}
	if res == EmptyResult {
		s.processRequest(od.Req, lastRound+1, od.Client)
		return
	}
	// A result was already fixed; the suspected owner may have crashed
	// before replying. Forward the result so the client terminates (R2).
	s.finish(reqID, res)
	s.ep.Send(od.Client, MsgResult, ResultPayload{ReqID: reqID, Value: res})
}

// resumeOwnRound settles a round this replica owns but has no live
// goroutine for — the crash-recovery gap the write-ahead log alone cannot
// close. Recovery restores the round-attempt record, but the executing
// goroutine died with the old incarnation, and cleanRequest's takeover
// path requires suspicion of the owner, which a live restarted replica
// never draws. The resume acts as this round's own cleaner: forward a
// result the quorum already fixed, or abort the round and drive a
// successor — never re-execute the round itself (see the comment at the
// coordination call below).
func (s *Server) resumeOwnRound(od ownerDecision, round int) {
	req := od.Req
	key := ownerKey(req.ID, round)
	s.mu.Lock()
	if s.inflight[key] {
		s.mu.Unlock()
		return // a live execution is driving this round
	}
	s.inflight[key] = true
	s.mu.Unlock()
	s.tr.Instant(s.clk.Now(), string(s.id), "resume", req.ID)
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
	}()
	// The crash may have hit between the outcome decision and the reply:
	// forward a fixed result rather than re-driving the round.
	if v, ok := s.resultFixed(req); ok {
		s.finish(req.ID, v)
		s.ep.Send(od.Client, MsgResult, ResultPayload{ReqID: req.ID, Value: v})
		return
	}
	// The crash may have hit anywhere between execution and the reply, and
	// the local consensus state cannot tell: the old incarnation may have
	// executed, proposed commit, and died in the narrow window before
	// learning the decision — which the quorum then fixed and applied
	// while this replica was down. Re-executing on local evidence would
	// put a second completed execution of an already-committed round into
	// the history, a duplicate the calculus cannot reduce (found by the
	// restart-random-majority sweep, seed 114; pinned by the power-cycle
	// sweeps). So resume cleans its own round instead: coordination in
	// cleaning mode learns a fixed result if one exists — the reply then
	// goes out — and otherwise aborts the round like any cleaner would,
	// letting the successor round re-execute under a fresh tag.
	res := s.resultCoordination(req, round, EmptyResult)
	if s.isStopped() {
		return
	}
	if res == EmptyResult {
		s.processRequest(req, round+1, od.Client)
		return
	}
	s.finish(req.ID, res)
	s.ep.Send(od.Client, MsgResult, ResultPayload{ReqID: req.ID, Value: res})
}

// resultCoordination is Figure 7's result-coordination: agreement on the
// result of idempotent actions, and on the outcome (commit/abort) of
// undoable actions. val == EmptyResult selects cleaning mode.
func (s *Server) resultCoordination(req action.Request, round int, val action.Value) action.Value {
	if s.mach.IsIdempotent(req) {
		decided := s.propose(resultKey(req.ID, round), val)
		v, ok := decided.(action.Value)
		if !ok {
			return EmptyResult
		}
		return v
	}
	if s.mach.IsUndoable(req) {
		var proposal outcomeDecision
		if val == EmptyResult {
			proposal = outcomeDecision{Outcome: "abort", Value: EmptyResult}
		} else {
			proposal = outcomeDecision{Outcome: "commit", Value: val}
		}
		decided := s.propose(outcomeKey(req.ID, round), proposal)
		dec, ok := decided.(outcomeDecision)
		if !ok {
			return EmptyResult
		}
		exec := s.taggedFor(req, round)
		if dec.Outcome == "abort" {
			s.tr.Instant(s.clk.Now(), string(s.id), "cancel", req.ID)
			// Fence before cancelling (testcancel, §5.3): the abort decision
			// means this round's effect must never be in force. The cancel
			// alone only rolls back — without the fence, an owner still
			// inside execute-until-success reactivates the cancelled
			// transaction on its next retry and re-applies the effect; if it
			// then crashes before reading the abort decision, that effect is
			// orphaned in force next to the succeeding round's commit.
			s.mach.Env().FenceUndoable(exec.Action, exec.EffectiveInput())
			s.executeUntilSuccess(exec.Cancel())
			return EmptyResult
		}
		s.tr.Instant(s.clk.Now(), string(s.id), "commit", req.ID)
		s.executeUntilSuccess(exec.Commit())
		return dec.Value
	}
	return EmptyResult
}

// executeUntilSuccess is Figure 7's execute-until-success: retry an action
// until it succeeds; a failed undoable action is cancelled before the
// retry. Returns ok=false when the server stopped (crashed) before
// succeeding, or when the transaction was fenced by an abort decision —
// in both cases the action will never succeed here.
func (s *Server) executeUntilSuccess(req action.Request) (action.Value, bool) {
	for attempt := 0; ; attempt++ {
		if s.isStopped() {
			return "", false
		}
		if attempt > 0 {
			s.clk.Sleep(execRetryDelay)
			if s.isStopped() {
				return "", false
			}
		}
		s.cpu.charge(s.costs.Exec)
		res, err := s.mach.Execute(req)
		if err == nil {
			return res, true
		}
		if errors.Is(err, env.ErrFenced) {
			// A cleaner neutralized this round while we were retrying: the
			// abort is decided, the fence makes re-execution impossible, and
			// the aborting cleaner owns the next round. Cancel once — the
			// fenced attempt emitted a start event, and the checker can only
			// erase a dangling start through a later cancel pair — then give
			// up instead of spinning on the fence.
			if s.mach.Registry().IsUndoable(req.Action) {
				s.executeUntilSuccess(req.Cancel())
			}
			return "", false
		}
		if s.mach.Registry().IsUndoable(req.Action) {
			if _, ok := s.executeUntilSuccess(req.Cancel()); !ok {
				return "", false
			}
		}
		// Idempotent (including cancel/commit) actions simply retry.
	}
}

// replayEarlier folds the agreed results of requests that arrived before
// reqID into the local machine state (the multi-request extension). Results
// are read from the result/outcome arrays; requests without a decided
// result yet are skipped — the protocol's sequencing (a client submits
// Rᵢ₊₁ only after Rᵢ succeeded) makes that benign.
func (s *Server) replayEarlier(reqID string) {
	s.mu.Lock()
	var todo []*requestState
	for _, id := range s.order {
		if id == reqID {
			break
		}
		st := s.active[id]
		if st != nil && !st.applied {
			todo = append(todo, st)
		}
	}
	s.mu.Unlock()
	for _, st := range todo {
		if res, ok := s.decidedResult(st.req); ok {
			s.mach.Apply(st.req, res)
			s.mu.Lock()
			st.applied = true
			s.mu.Unlock()
		}
	}
}

// decidedResult scans a request's rounds for a fixed, non-empty result.
func (s *Server) decidedResult(req action.Request) (action.Value, bool) {
	for r := 1; r <= MaxRound; r++ {
		if _, ok := s.cons.Object(ownerKey(req.ID, r)).Read(); !ok {
			break
		}
		if s.mach.IsIdempotent(req) {
			if v, ok := s.cons.Object(resultKey(req.ID, r)).Read(); ok {
				if res, ok2 := v.(action.Value); ok2 && res != EmptyResult {
					return res, true
				}
			}
		} else if v, ok := s.cons.Object(outcomeKey(req.ID, r)).Read(); ok {
			if dec, ok2 := v.(outcomeDecision); ok2 && dec.Outcome == "commit" {
				return dec.Value, true
			}
		}
	}
	return "", false
}

// finish marks a request complete, remembering its result for
// re-submissions. The executing replica also folds its own result into the
// applied set so later replays skip it. The result is persisted before the
// in-memory mark (and so before any reply built on it), keeping R1's
// fixed-result promise across a crash directly after the reply.
func (s *Server) finish(reqID string, res action.Value) {
	s.mu.Lock()
	st := s.active[reqID]
	if st == nil || st.done {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.persistFinish(reqID, res)
	s.mu.Lock()
	defer s.mu.Unlock()
	st.done = true
	st.result = res
	st.applied = true
}
