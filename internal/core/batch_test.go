package core

import (
	"testing"
	"time"

	"xability/internal/action"
)

// batchedCfg is the base configuration of the batched-plane tests: slot
// batching on with a short window so single-client tests form singleton
// batches quickly.
func batchedCfg(seed int64) ClusterConfig {
	return ClusterConfig{
		Replicas: 3,
		Seed:     seed,
		Batch:    BatchConfig{Enabled: true, MaxSize: 8, Window: 50 * time.Microsecond, Pipeline: 4},
	}
}

func TestBatchedNiceRunIdempotent(t *testing.T) {
	tc := newBankCluster(t, batchedCfg(1))
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("read", "acct")); v != "100" {
		t.Errorf("read = %q, want 100", v)
	}
	rep := tc.checkRun(t)
	if !rep.R3Strict {
		t.Error("batched nice run should satisfy strict R3")
	}
}

func TestBatchedNiceRunUndoable(t *testing.T) {
	tc := newBankCluster(t, batchedCfg(2))
	if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
		t.Errorf("debit = %q", v)
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90 (exactly one debit)", got)
	}
	rep := tc.checkRun(t)
	if !rep.R3Strict {
		t.Error("batched nice run should satisfy strict R3")
	}
	if n := tc.Env.InForceTotal("debit", "acct"); n != 1 {
		t.Errorf("in-force debit effects = %d, want 1", n)
	}
}

func TestBatchedSequence(t *testing.T) {
	tc := newBankCluster(t, batchedCfg(3))
	for i := 0; i < 6; i++ {
		if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
			t.Fatalf("debit %d = %q", i, v)
		}
	}
	if got := tc.world.get("acct"); got != 40 {
		t.Errorf("balance = %d, want 40 (six debits)", got)
	}
	tc.checkRun(t)
}

func TestBatchedCrashFailover(t *testing.T) {
	tc := newBankCluster(t, batchedCfg(4))
	done := make(chan action.Value, 1)
	clk := tc.Clock()
	clk.Go(func() {
		done <- tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	})
	clk.GoAfter(30*time.Microsecond, func() {
		tc.CrashServer(0)
		tc.ClientSuspect("replica-0", true)
		tc.SuspectEverywhere("replica-0", true)
	})
	v := <-done
	if v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90", got)
	}
	tc.checkRun(t)
}

func TestBatchedFalseSuspicion(t *testing.T) {
	tc := newBankCluster(t, batchedCfg(5))
	done := make(chan action.Value, 1)
	clk := tc.Clock()
	clk.Go(func() {
		done <- tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
	})
	// The owner stays alive; every replica (but not the client) falsely
	// suspects it mid-slot, forcing a cleaning-mode abort and a round-2
	// takeover of the same batch.
	clk.GoAfter(120*time.Microsecond, func() {
		tc.SuspectEverywhere("replica-0", true)
	})
	clk.GoAfter(3*time.Millisecond, func() {
		tc.SuspectEverywhere("replica-0", false)
	})
	if v := <-done; v != "debited" {
		t.Fatalf("debit = %q", v)
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90 (exactly one debit in force)", got)
	}
	tc.checkRun(t)
}

func TestBatchedCTConsensus(t *testing.T) {
	cfg := batchedCfg(6)
	cfg.Consensus = ConsensusCT
	tc := newBankCluster(t, cfg)
	for i := 0; i < 3; i++ {
		if v := tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct")); v != "debited" {
			t.Fatalf("debit %d = %q", i, v)
		}
	}
	if got := tc.world.get("acct"); got != 70 {
		t.Errorf("balance = %d, want 70", got)
	}
	tc.checkRun(t)
}

func TestBatchedResubmissionIdempotent(t *testing.T) {
	tc := newBankCluster(t, batchedCfg(7))
	req := tc.Client.Tag(action.NewRequest("debit", "acct"))
	v1, err := tc.Client.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v2, err := tc.Client.Submit(req) // same ID: must not duplicate effects
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if v1 != v2 {
		t.Errorf("resubmission reply %q differs from original %q", v2, v1)
	}
	if got := tc.world.get("acct"); got != 90 {
		t.Errorf("balance = %d, want 90 (R1)", got)
	}
}

func TestCostModelChargesVirtualTime(t *testing.T) {
	mk := func(costs CostModel) time.Duration {
		cfg := ClusterConfig{Replicas: 3, Seed: 8, Costs: costs}
		tc := newBankCluster(t, cfg)
		clk := tc.Clock()
		clk.Enter()
		for i := 0; i < 4; i++ {
			tc.Client.SubmitUntilSuccess(action.NewRequest("debit", "acct"))
		}
		d := clk.Now()
		clk.Exit()
		return d
	}
	free := mk(CostModel{})
	charged := mk(CostModel{Consensus: 200 * time.Microsecond, Exec: 100 * time.Microsecond})
	if charged <= free {
		t.Errorf("charged run took %v, free run %v: cost model should stretch virtual time", charged, free)
	}
}
