package core

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"xability/internal/action"
	"xability/internal/fd"
	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/vclock"
)

// ErrSubmitFailed is the error value a single submit attempt returns when
// the contacted replica is suspected before a result arrives (Figure 5's
// "return failure"). Submit is idempotent, so the caller simply retries —
// SubmitUntilSuccess does exactly that.
var ErrSubmitFailed = errors.New("core: submit failed (replica suspected)")

// ErrClientClosed is returned when the client's endpoint is closed (the
// network shut down or the client process crashed): no reply can ever
// arrive, so retrying is meaningless.
var ErrClientClosed = errors.New("core: client endpoint closed")

// Client is the client-side stub of Figure 5. The paper's model is a
// single client issuing one request at a time (§4), but concurrent Submits
// are safe: a composed service (examples/threetier) shares one back-end
// stub across every middle-tier replica, and active-replication drift
// there means two handlers submit through it at once. Replies drained by
// one Submit on behalf of another are stashed by request ID, not dropped.
type Client struct {
	id       simnet.ProcessID
	ep       *simnet.Endpoint
	clk      vclock.Clock
	replicas []simnet.ProcessID
	det      fd.Detector
	poll     time.Duration
	m        *obs.Metrics // nil-safe run metrics
	tr       *obs.Trace   // nil-safe span recorder

	mu       sync.Mutex
	i        int // next replica to contact (Figure 5's i)
	seq      int // request ID generator
	attempts int

	// awaiting tracks the request IDs with a Submit in flight; stash holds
	// replies one Submit drained while another was awaiting them. Without
	// the stash, whichever Submit drains the shared mailbox first discards
	// the other's reply and that Submit hangs until a (possibly never
	// coming) suspicion.
	awaiting map[string]bool
	stash    map[string]action.Value

	// run log for the verifier
	requests []action.Request
	replies  []action.Value
}

// ClientConfig assembles a client stub.
type ClientConfig struct {
	ID       simnet.ProcessID
	Endpoint *simnet.Endpoint
	Replicas []simnet.ProcessID
	Detector fd.Detector
	// Poll is the await-loop polling period (default 200µs).
	Poll time.Duration
}

// NewClient builds a client stub.
func NewClient(cfg ClientConfig) *Client {
	poll := cfg.Poll
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	return &Client{
		id:       cfg.ID,
		ep:       cfg.Endpoint,
		clk:      cfg.Endpoint.Clock(),
		replicas: append([]simnet.ProcessID(nil), cfg.Replicas...),
		det:      cfg.Detector,
		poll:     poll,
		m:        cfg.Endpoint.Metrics(),
		tr:       cfg.Endpoint.Trace(),
		awaiting: make(map[string]bool),
		stash:    make(map[string]action.Value),
	}
}

// nextID assigns a fresh request ID. Request identity is what makes a
// retried submit join the same consensus instances instead of becoming a
// new request.
func (c *Client) nextID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return string(c.id) + "-" + strconv.Itoa(c.seq)
}

// Submit is Figure 5's submit: send the request to one replica, await a
// result or a suspicion, and on suspicion advance to the next replica and
// report failure. The same tagged request must be passed to a retry (use
// Tag once, or call SubmitUntilSuccess).
func (c *Client) Submit(req action.Request) (action.Value, error) {
	if req.ID == "" {
		return "", errors.New("core: request must be tagged with an ID (use Tag)")
	}
	c.clk.Enter()
	defer c.clk.Exit()
	c.mu.Lock()
	target := c.replicas[c.i]
	c.attempts++
	c.awaiting[req.ID] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.awaiting, req.ID)
		delete(c.stash, req.ID)
		c.mu.Unlock()
	}()

	c.m.Inc(obs.ReqSubmitted)
	c.ep.Send(target, MsgSubmit, SubmitPayload{Req: req, Client: c.id})
	for {
		// A concurrent Submit may have drained this request's reply on our
		// behalf (the mailbox is shared); check the stash before the
		// mailbox so that reply is never lost.
		c.mu.Lock()
		v, stashed := c.stash[req.ID]
		c.mu.Unlock()
		if stashed {
			return v, nil
		}
		// Drain the mailbox: a result for this request from any replica —
		// including a late reply to an earlier attempt — satisfies the
		// await (the paper's client awaits any [Result] message).
		for {
			msg, ok := c.ep.TryRecv()
			if !ok {
				break
			}
			if msg.Type != MsgResult {
				continue
			}
			p, ok := msg.Payload.(ResultPayload)
			if !ok {
				continue
			}
			if p.ReqID != req.ID {
				// Another in-flight Submit's reply: stash it for that
				// Submit's next await iteration. Replies to requests no
				// Submit is awaiting are stale duplicates and drop.
				c.mu.Lock()
				if c.awaiting[p.ReqID] {
					if _, dup := c.stash[p.ReqID]; !dup {
						c.stash[p.ReqID] = p.Value
					}
				}
				c.mu.Unlock()
				continue
			}
			return p.Value, nil
		}
		if c.ep.Closed() {
			// The mailbox will never fill again; without this check the
			// await loop would spin (and pin the virtual clock).
			return "", ErrClientClosed
		}
		if c.det.Suspect(target) {
			c.mu.Lock()
			c.i = (c.i + 1) % len(c.replicas)
			c.mu.Unlock()
			c.m.Inc(obs.ReqFailovers)
			return "", ErrSubmitFailed
		}
		// Event-driven await: a delivery wakes the wait immediately; the
		// poll period only bounds how stale the suspicion check may get.
		c.ep.Wait(c.poll)
	}
}

// Tag assigns a fresh request ID, fixing the request's identity across
// submit retries.
func (c *Client) Tag(req action.Request) action.Request {
	return req.WithID(c.nextID())
}

// SubmitUntilSuccess retries Submit until it succeeds (the client behavior
// R1 and R2 license: submit is idempotent and cannot fail forever) and logs
// the request and reply for verification.
func (c *Client) SubmitUntilSuccess(req action.Request) action.Value {
	c.clk.Enter()
	defer c.clk.Exit()
	req = c.Tag(req)
	start := c.clk.Now()
	span := c.tr.Begin(start, string(c.id), "request", req.ID)
	for {
		v, err := c.Submit(req)
		if err == nil {
			c.mu.Lock()
			c.requests = append(c.requests, req)
			c.replies = append(c.replies, v)
			c.mu.Unlock()
			now := c.clk.Now()
			c.m.Observe(now - start)
			c.m.Inc(obs.ReqReplied)
			c.tr.End(now, string(c.id), "request", span)
			return v
		}
		if errors.Is(err, ErrClientClosed) {
			// R2 presumes a live network; once it is gone the retry
			// obligation lapses. Zero value signals the aborted call.
			return ""
		}
		// Pace the retry on the clock: a client that hot-loops through
		// suspected replicas would otherwise never yield, and on the
		// virtual clock that would stall the very deliveries (a late
		// reply, a heartbeat) that let it make progress.
		c.clk.Sleep(c.poll)
	}
}

// Attempts reports how many submit attempts the client has made.
func (c *Client) Attempts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// Log returns the successfully submitted requests and their replies, in
// order — the inputs to requirement R3/R4 verification.
func (c *Client) Log() ([]action.Request, []action.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]action.Request(nil), c.requests...), append([]action.Value(nil), c.replies...)
}
