package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"xability/internal/action"
	"xability/internal/consensus"
	"xability/internal/vclock"
	"xability/internal/wal"
)

// serverRecoveredState runs the real recovery path over a log and
// extracts the state a restarted server acts on. Round guards of
// finished requests are excluded deliberately: the fold drops them as
// dead weight (a recovered fin answers every later touch before any
// round is attempted), so they are exactly the state a server cannot
// distinguish — the equivalence claim is over the distinguishable rest.
type srvReqState struct {
	ID     string
	Client string
	Done   bool
	Result action.Value
}

type srvState struct {
	Order    []string
	Requests map[string]srvReqState
	Rounds   map[consensus.Key]bool
}

func serverRecoveredState(l *wal.Log) srvState {
	s := &Server{
		active:   make(map[string]*requestState),
		rounds:   make(map[consensus.Key]bool),
		inflight: make(map[consensus.Key]bool),
		log:      l,
	}
	s.Recover()
	st := srvState{
		Order:    append([]string(nil), s.order...),
		Requests: make(map[string]srvReqState, len(s.active)),
		Rounds:   make(map[consensus.Key]bool),
	}
	for id, rs := range s.active {
		st.Requests[id] = srvReqState{
			ID:     rs.req.ID,
			Client: string(rs.client),
			Done:   rs.done,
			Result: rs.result,
		}
	}
	for k := range s.rounds {
		if rs := s.active[k.ID]; rs != nil && rs.done {
			continue
		}
		st.Rounds[k] = true
	}
	return st
}

// randomServerStream draws a plausible server record stream over a
// bounded request pool: each request's req record precedes its rounds
// and finishes (persistRequest runs before anything else touches the
// request), rounds climb, and a finish may be re-persisted.
func randomServerStream(rng *rand.Rand, n int) []wal.Record {
	recs := make([]wal.Record, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("req-%d", rng.Intn(5))
		if !seen[id] {
			seen[id] = true
			recs = append(recs, wal.Record{
				Kind: recRequest, Key: id, Str: "client",
				Val: action.Request{ID: id, Action: "debit", Input: action.Value("acct-0:1")},
			})
			continue
		}
		if rng.Intn(3) == 0 {
			recs = append(recs, wal.Record{Kind: recFinish, Key: id, Str: fmt.Sprintf("res-%d", rng.Intn(4))})
			continue
		}
		recs = append(recs, wal.Record{Kind: recRound, Key: id, Round: int32(1 + rng.Intn(4))})
	}
	return recs
}

// TestServerCompactReplayEquivalence is serverCompact's contract as a
// property test: for random request histories and random compaction
// points, recovery from a log that compacted mid-stream (through the
// real Log.Compact machinery, snapshot marker included) must rebuild the
// same distinguishable server state as recovery from the full log.
func TestServerCompactReplayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stream := randomServerStream(rng, 30+rng.Intn(120))
		cuts := map[int]bool{}
		for c := 0; c < 1+rng.Intn(3); c++ {
			cuts[rng.Intn(len(stream))] = true
		}

		store := wal.NewStore(vclock.NewVirtual(), wal.Config{})
		full := store.Log("full")
		fold := store.Log("fold")
		fold.SetCompactor(serverCompact)
		for i, r := range stream {
			full.Append(r)
			fold.Append(r)
			if cuts[i] {
				fold.Compact()
			}
		}

		want := serverRecoveredState(full)
		got := serverRecoveredState(fold)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: compacted recovery diverges from full-log recovery\nfull: %+v\nfold: %+v",
				seed, want, got)
		}
	}
}

// TestServerCompactBoundsLiveLog pins the size claim for the server's
// log: under automatic compaction an unbounded history over a bounded
// request pool stays O(live state).
func TestServerCompactBoundsLiveLog(t *testing.T) {
	const (
		appends   = 2000
		threshold = 16
	)
	rng := rand.New(rand.NewSource(11))
	store := wal.NewStore(vclock.NewVirtual(), wal.Config{CompactThreshold: threshold})
	l := store.Log("server")
	l.SetCompactor(serverCompact)

	stream := randomServerStream(rng, appends)
	// Live state: one req record per request, plus its fin or its
	// distinct round guards — bounded by the pools in the generator
	// (5 requests × (1 req + 4 rounds + 1 fin)).
	const liveBound = 5 * 6
	for _, r := range stream {
		l.Append(r)
		if bound := liveBound + threshold + 2; l.Len() > bound {
			t.Fatalf("live log grew to %d records (bound %d): compaction is not holding", l.Len(), bound)
		}
	}
	if l.Installs() == 0 {
		t.Fatal("no snapshot installed across the stream; the threshold never triggered")
	}
	l.Compact()
	if l.Len() > liveBound+1 {
		t.Errorf("fully compacted log holds %d records, want at most live state plus the marker (%d)",
			l.Len(), liveBound+1)
	}
}
