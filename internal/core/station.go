package core

import (
	"sync"
	"time"

	"xability/internal/action"
	"xability/internal/fd"
	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/vclock"
)

// Station is the open-loop client multiplexer: it drives many concurrent
// single-request sessions over one endpoint, where the closed-loop Client
// of client.go drives exactly one session at a time. A background pump
// drains the endpoint and demultiplexes MsgResult by request ID to the
// per-request waiters, so thousands of in-flight submissions share one
// mailbox (and one delay stream — the Station reuses the cluster's
// existing "client" endpoint, keeping the network's seeded delay plan
// identical whether a run is open- or closed-loop).
//
// Each session follows Figure 5's submit discipline independently: send to
// a replica, await a result or a suspicion, fail over on suspicion. A
// paced re-send covers the open-loop-specific hole that a dropped submit
// of a session nobody is watching would otherwise never be retried.
type Station struct {
	id       simnet.ProcessID
	ep       *simnet.Endpoint
	clk      vclock.Clock
	replicas []simnet.ProcessID
	det      fd.Detector
	poll     time.Duration
	resend   time.Duration
	m        *obs.Metrics // nil-safe run metrics
	tr       *obs.Trace   // nil-safe span recorder

	mu       sync.Mutex
	cond     vclock.Cond
	waiting  map[string]*stationCall
	open     int // sessions in flight
	attempts int
	stopped  bool

	// completion log for the verifier, in completion order (deterministic
	// under the virtual clock)
	requests  []action.Request
	replies   []action.Value
	latencies []time.Duration
}

type stationCall struct {
	done bool
	val  action.Value
}

// StationConfig assembles a station.
type StationConfig struct {
	ID       simnet.ProcessID
	Endpoint *simnet.Endpoint
	Replicas []simnet.ProcessID
	Detector fd.Detector
	// Poll bounds the staleness of the suspicion check (default 200µs).
	Poll time.Duration
	// Resend is the per-session submit re-send period (default 4ms).
	Resend time.Duration
}

// NewStation builds a station and starts its demultiplexing pump. The
// endpoint must not be concurrently drained by a Client.
func NewStation(cfg StationConfig) *Station {
	poll := cfg.Poll
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	resend := cfg.Resend
	if resend <= 0 {
		resend = 4 * time.Millisecond
	}
	st := &Station{
		id:       cfg.ID,
		ep:       cfg.Endpoint,
		clk:      cfg.Endpoint.Clock(),
		replicas: append([]simnet.ProcessID(nil), cfg.Replicas...),
		det:      cfg.Detector,
		poll:     poll,
		resend:   resend,
		m:        cfg.Endpoint.Metrics(),
		tr:       cfg.Endpoint.Trace(),
		waiting:  make(map[string]*stationCall),
	}
	st.cond = st.clk.NewCond(&st.mu)
	st.clk.Go(st.pump)
	return st
}

// pump drains the endpoint, resolving waiters. It exits when the endpoint
// closes (network shutdown).
func (st *Station) pump() {
	for {
		msg, ok := st.ep.Recv()
		if !ok {
			st.mu.Lock()
			st.stopped = true
			st.mu.Unlock()
			st.cond.Broadcast()
			return
		}
		if msg.Type != MsgResult {
			continue
		}
		p, ok := msg.Payload.(ResultPayload)
		if !ok {
			continue
		}
		st.mu.Lock()
		c := st.waiting[p.ReqID]
		if c != nil && !c.done {
			c.done = true
			c.val = p.Value
		}
		st.mu.Unlock()
		st.cond.Broadcast()
	}
}

// Submit runs one open-loop session to completion: the request must
// already carry a unique ID. It returns the reply, or ok=false if the
// network closed first. Safe for arbitrary concurrency.
func (st *Station) Submit(req action.Request) (action.Value, bool) {
	start := st.clk.Now()
	st.m.Inc(obs.ReqSubmitted)
	span := st.tr.Begin(start, string(st.id), "request", req.ID)
	c := &stationCall{}
	st.mu.Lock()
	st.open++
	st.waiting[req.ID] = c
	i := 0
	st.mu.Unlock()

	defer func() {
		st.mu.Lock()
		delete(st.waiting, req.ID)
		st.open--
		st.mu.Unlock()
		st.cond.Broadcast()
	}()

	for {
		target := st.replicas[i%len(st.replicas)]
		st.mu.Lock()
		st.attempts++
		st.mu.Unlock()
		st.ep.Send(target, MsgSubmit, SubmitPayload{Req: req, Client: st.id})
		deadline := st.clk.Now() + st.resend
		for {
			st.mu.Lock()
			if c.done {
				val := c.val
				now := st.clk.Now()
				st.requests = append(st.requests, req)
				st.replies = append(st.replies, val)
				st.latencies = append(st.latencies, now-start)
				st.mu.Unlock()
				st.m.Observe(now - start)
				st.m.Inc(obs.ReqReplied)
				st.tr.End(now, string(st.id), "request", span)
				return val, true
			}
			if st.stopped {
				st.mu.Unlock()
				return "", false
			}
			st.mu.Unlock()
			if st.det.Suspect(target) {
				i++
				st.m.Inc(obs.ReqFailovers)
				break // fail over (Figure 5's advance)
			}
			if st.clk.Now() >= deadline {
				break // re-send to the same replica (submit is idempotent)
			}
			st.mu.Lock()
			st.cond.WaitTimeout(st.poll)
			st.mu.Unlock()
		}
	}
}

// Drive schedules one session per (ats[i], reqs[i]) pair on the virtual
// clock and blocks until every session finishes (reply received, or the
// network closed under it). It reports how many completed with a reply.
// The caller must be attached to the clock; the session goroutines are
// attached via GoAfter and the join waits on a virtual-time condition
// variable (the Router.CallAll discipline), so the whole drive is
// deterministic.
func (st *Station) Drive(ats []time.Duration, reqs []action.Request) int {
	completed, finished := 0, 0
	for i := range reqs {
		req := reqs[i]
		st.clk.GoAfter(ats[i], func() {
			_, ok := st.Submit(req)
			st.mu.Lock()
			finished++
			if ok {
				completed++
			}
			st.mu.Unlock()
			st.cond.Broadcast()
		})
	}
	st.mu.Lock()
	for finished < len(reqs) && !st.stopped {
		st.cond.WaitTimeout(st.poll)
	}
	n := completed
	st.mu.Unlock()
	return n
}

// Attempts reports the total submit attempts.
func (st *Station) Attempts() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.attempts
}

// Log returns the completed requests and replies in completion order.
func (st *Station) Log() ([]action.Request, []action.Value) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]action.Request(nil), st.requests...), append([]action.Value(nil), st.replies...)
}

// Latencies returns the per-session submit→reply virtual durations, in
// completion order.
func (st *Station) Latencies() []time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]time.Duration(nil), st.latencies...)
}
