package core

import (
	"fmt"
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/sm"
	"xability/internal/verify"
)

// Composition (§1, §4, claim E6): a replicated service S2 that invokes an
// x-able replicated service S1 may treat the nested submit as one
// idempotent action of its own state machine — R1 makes it idempotent, R2
// makes it eventually successful — and S2's x-ability then follows
// locally, without reasoning about S1's internals.
//
// The tests build two independent clusters (own network, environment,
// observer per tier) and verify each tier against its own history, also
// while the inner tier is crashing and being falsely suspected.

func innerRegistry() *action.Registry {
	reg := action.NewRegistry()
	reg.MustRegister("reserve", action.KindIdempotent)
	return reg
}

func outerRegistry() *action.Registry {
	reg := action.NewRegistry()
	reg.MustRegister("order", action.KindIdempotent)
	return reg
}

// newInner builds the tier-1 (database) cluster.
func newInner(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c := NewCluster(ClusterConfig{
		Replicas: 3,
		Seed:     seed,
		Registry: innerRegistry(),
		Setup: func(m *sm.Machine) {
			mustNoErr(m.HandleIdempotent("reserve", func(ctx *sm.Ctx) action.Value {
				// Non-deterministic reservation token: replicas must agree.
				return action.Value(fmt.Sprintf("rsv-%x", ctx.Rand.Int63()))
			}))
		},
	})
	t.Cleanup(c.Stop)
	return c
}

// newOuter builds the tier-2 (orders) cluster whose action invokes the
// inner cluster's submit.
func newOuter(t *testing.T, seed int64, inner *Cluster) *Cluster {
	t.Helper()
	c := NewCluster(ClusterConfig{
		Replicas: 3,
		Seed:     seed,
		Registry: outerRegistry(),
		Setup: func(m *sm.Machine) {
			mustNoErr(m.HandleIdempotent("order", func(ctx *sm.Ctx) action.Value {
				nested := inner.Client.SubmitUntilSuccess(action.NewRequest("reserve", ctx.Req.Input))
				return "ok(" + nested + ")"
			}))
		},
	})
	t.Cleanup(c.Stop)
	return c
}

func verifyTier(t *testing.T, name string, c *Cluster, reg *action.Registry) verify.Report {
	t.Helper()
	c.Net.Quiesce()
	reqs, replies := c.Client.Log()
	rep := verify.Check(verify.Run{
		Registry: reg,
		Requests: reqs,
		Replies:  replies,
		History:  c.Observer.History(),
	})
	if !rep.OK() {
		t.Errorf("%s tier verification failed: %+v\nhistory: %v", name, rep, c.Observer.History())
	}
	return rep
}

func TestCompositionNiceRun(t *testing.T) {
	inner := newInner(t, 21)
	outer := newOuter(t, 22, inner)

	v := outer.Client.SubmitUntilSuccess(action.NewRequest("order", "sku-1"))
	if v == "" {
		t.Fatal("no reply")
	}
	repInner := verifyTier(t, "inner", inner, innerRegistry())
	repOuter := verifyTier(t, "outer", outer, outerRegistry())
	if !repInner.R3Strict || !repOuter.R3Strict {
		t.Error("nice composed run should verify strictly at both tiers")
	}
}

func TestCompositionInnerCrash(t *testing.T) {
	inner := newInner(t, 23)
	outer := newOuter(t, 24, inner)

	// The inner tier's first replica crashes while slow; the outer tier's
	// nested call must still terminate (R2 of the inner tier) and both
	// tiers must stay x-able.
	inner.Env.SetFailures("reserve", 1.0, 5, 0)
	iclk := inner.Clock()
	iclk.Go(func() {
		iclk.Sleep(2 * time.Millisecond)
		inner.CrashServer(0)
		inner.ClientSuspect("replica-0", true)
	})

	done := make(chan action.Value, 1)
	go func() { done <- outer.Client.SubmitUntilSuccess(action.NewRequest("order", "sku-2")) }()
	select {
	case v := <-done:
		if v == "" {
			t.Fatal("empty reply")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("composed call did not terminate across inner-tier crash")
	}
	verifyTier(t, "inner", inner, innerRegistry())
	verifyTier(t, "outer", outer, outerRegistry())
}

func TestCompositionOuterSuspicion(t *testing.T) {
	inner := newInner(t, 25)
	outer := newOuter(t, 26, inner)

	// Slow the outer action via inner-tier failures, then falsely suspect
	// the outer owner: two outer replicas execute, each performing the
	// nested call. R1 of the inner tier makes the duplicate nested submits
	// harmless; both tiers must verify.
	inner.Env.SetFailures("reserve", 1.0, 4, 0)
	oclk := outer.Clock()
	oclk.Go(func() {
		oclk.Sleep(2 * time.Millisecond)
		outer.SuspectEverywhere("replica-0", true)
	})

	v := outer.Client.SubmitUntilSuccess(action.NewRequest("order", "sku-3"))
	if v == "" {
		t.Fatal("empty reply")
	}
	verifyTier(t, "inner", inner, innerRegistry())
	verifyTier(t, "outer", outer, outerRegistry())
}

func TestCompositionSequence(t *testing.T) {
	inner := newInner(t, 27)
	outer := newOuter(t, 28, inner)

	for i := 0; i < 4; i++ {
		sku := action.Value(fmt.Sprintf("sku-%d", i))
		if v := outer.Client.SubmitUntilSuccess(action.NewRequest("order", sku)); v == "" {
			t.Fatalf("order %d failed", i)
		}
	}
	repInner := verifyTier(t, "inner", inner, innerRegistry())
	repOuter := verifyTier(t, "outer", outer, outerRegistry())
	if len(repInner.Outputs) != 4 || len(repOuter.Outputs) != 4 {
		t.Errorf("outputs: inner=%d outer=%d, want 4 each", len(repInner.Outputs), len(repOuter.Outputs))
	}
}
