package core

import (
	"testing"
	"time"

	"xability/internal/action"
	"xability/internal/verify"
	"xability/internal/workload"
)

// driveOpenLoop runs an open-loop workload against a freshly assembled
// bank cluster and returns the completed count and the verifier's report
// under the concurrent relaxation.
func driveOpenLoop(t *testing.T, cfg ClusterConfig, spec workload.OpenLoopSpec, seed int64) (int, verify.Report) {
	t.Helper()
	world := &bankWorld{balance: map[string]int{}}
	cfg.Registry = bankRegistry()
	cfg.Setup = bankSetup(world)
	if cfg.Net.MaxDelay == 0 {
		cfg.Net.MaxDelay = 200 * time.Microsecond
	}
	cfg.Seed = seed
	c := NewCluster(cfg)
	t.Cleanup(c.Stop)

	st := NewStation(StationConfig{
		ID:       c.Client.id,
		Endpoint: c.Client.ep,
		Replicas: c.Client.replicas,
		Detector: c.Client.det,
	})
	arrivals := workload.GenerateOpenLoop(spec, seed)
	ats := make([]time.Duration, len(arrivals))
	reqs := make([]action.Request, len(arrivals))
	for i, a := range arrivals {
		ats[i], reqs[i] = a.At, a.Req
	}

	clk := c.Clock()
	clk.Enter()
	completed := st.Drive(ats, reqs)
	clk.Exit()
	c.Net.Quiesce()

	logReqs, logReplies := st.Log()
	rep := verify.Check(verify.Run{
		Registry:       bankRegistry(),
		Requests:       logReqs,
		Replies:        logReplies,
		History:        c.Observer.History(),
		SubmitAttempts: st.Attempts(),
		Concurrent:     true,
	})
	return completed, rep
}

func TestOpenLoopUnbatched(t *testing.T) {
	spec := workload.OpenLoopSpec{Clients: 100, Rate: 50_000, Duration: 4 * time.Millisecond, Accounts: 8}
	n, rep := driveOpenLoop(t, ClusterConfig{Replicas: 3}, spec, 11)
	if n == 0 {
		t.Fatal("no open-loop sessions completed")
	}
	if !rep.OK() {
		t.Errorf("open-loop run failed verification: %+v", rep)
	}
}

func TestOpenLoopBatched(t *testing.T) {
	spec := workload.OpenLoopSpec{Clients: 100, Rate: 50_000, Duration: 4 * time.Millisecond, Accounts: 8}
	cfg := ClusterConfig{
		Replicas: 3,
		Batch:    BatchConfig{Enabled: true, MaxSize: 16, Window: 100 * time.Microsecond, Pipeline: 4},
	}
	n, rep := driveOpenLoop(t, cfg, spec, 12)
	if n == 0 {
		t.Fatal("no open-loop sessions completed")
	}
	if !rep.OK() {
		t.Errorf("batched open-loop run failed verification: %+v", rep)
	}
}

func TestOpenLoopBatchedWithCosts(t *testing.T) {
	spec := workload.OpenLoopSpec{Clients: 100, Rate: 20_000, Duration: 4 * time.Millisecond, Accounts: 8}
	cfg := ClusterConfig{
		Replicas: 3,
		Batch:    BatchConfig{Enabled: true, MaxSize: 16, Window: 100 * time.Microsecond, Pipeline: 8},
		Costs:    CostModel{Consensus: 20 * time.Microsecond, Exec: 5 * time.Microsecond},
	}
	n, rep := driveOpenLoop(t, cfg, spec, 13)
	if n == 0 {
		t.Fatal("no open-loop sessions completed")
	}
	if !rep.OK() {
		t.Errorf("charged batched open-loop run failed verification: %+v", rep)
	}
}
