// Batched agreement and pipelined slots: the throughput plane.
//
// The per-request protocol of protocol.go pays one ownership agreement and
// one result/outcome agreement per request. The batched plane amortizes
// that: concurrently submitted requests coalesce into one *slot* — a
// deterministic ordered batch decided as a single agreement value — and
// slots form an RSM-style log. Agreement on later slots proceeds while
// earlier slots are still executing (pipelining, bounded by
// BatchConfig.Pipeline); effects commit strictly in slot order, so the
// replicated machines stay in the same state they would reach executing
// the batch members one at a time.
//
// Fault tolerance reuses the per-request round machinery at slot
// granularity, so the cleaner story of DESIGN.md §2 carries over verbatim:
//
//	owner-agreement[slot][round]   — who owns a round of a slot, and the
//	                                 slot's member batch (ownerDecision.Batch)
//	outcome-agreement[slot][round] — commit (with the per-member result
//	                                 vector) or abort of the round
//
// The batch content is part of the round-1 ownership decision and is
// re-proposed verbatim by any cleaner that takes over a later round, so
// every round of a slot executes the same members. Undoable members are
// tagged (request ID, round) exactly as in the per-request plane: an
// aborted round's executions are cancelled under that round's tag and the
// next round re-executes under its own, so the reduction argument of §5.4
// is unchanged — per member. Idempotent members carry round 0 and collapse
// across rounds under rule 18.
//
// Exactly-once across slots: a member can be batched twice (a client retry
// landing at a second replica while the first replica's slot is still in
// flight). Slots execute in order, so when slot n executes, the requests
// finished by slots < n are known and identical at every replica; a member
// already finished by an earlier slot is not re-executed — its fixed result
// rides in the slot's result vector and is simply re-replied.
package core

import (
	"strconv"
	"sync"
	"time"

	"xability/internal/action"
	"xability/internal/obs"
	"xability/internal/vclock"
)

// BatchConfig tunes the batched/pipelined plane. The zero value disables
// it entirely (the per-request protocol runs unchanged).
type BatchConfig struct {
	// Enabled switches the plane on.
	Enabled bool
	// MaxSize caps members per slot (default 16).
	MaxSize int
	// Window is the batching window: after the first pending request, the
	// batcher waits this long on the virtual clock for the batch to fill
	// before claiming a slot (default 100µs).
	Window time.Duration
	// Pipeline bounds how many slots this replica keeps in flight —
	// claimed but not yet applied — concurrently (default 1: batched but
	// unpipelined).
	Pipeline int
}

func (b BatchConfig) withDefaults() BatchConfig {
	if !b.Enabled {
		return BatchConfig{}
	}
	if b.MaxSize <= 0 {
		b.MaxSize = 16
	}
	if b.Window <= 0 {
		b.Window = 100 * time.Microsecond
	}
	if b.Pipeline <= 0 {
		b.Pipeline = 1
	}
	return b
}

// slotOutcome is the outcome-agreement value of one (slot, round): commit
// with the per-member result vector (parallel to the decided batch), or a
// cleaning-mode abort.
type slotOutcome struct {
	Outcome string // "commit" or "abort"
	Values  []action.Value
}

// slotID names a slot's consensus instances. The "slot#" prefix keeps the
// namespace disjoint from client request IDs ("<client>-<seq>").
func slotID(n int) string { return "slot#" + strconv.Itoa(n) }

// slotState is a replica's view of the slot log.
type slotState struct {
	mu   sync.Mutex
	cond vclock.Cond

	pending  []SubmitPayload // arrival-ordered candidates for the next batch
	next     int             // next slot index this replica will claim
	known    int             // lowest slot index not known decided elsewhere
	execNext int             // first slot not yet applied locally
	inflight int             // slots claimed here and not yet resolved
}

func newSlotState(clk vclock.Clock) *slotState {
	ss := &slotState{}
	ss.cond = clk.NewCond(&ss.mu)
	return ss
}

// enqueue admits a submitted request to this replica's batched plane:
// note it (for re-reply bookkeeping), answer immediately if already
// finished, otherwise add it to the pending batch unless some batch or
// slot already holds it.
func (s *Server) enqueue(p SubmitPayload) {
	st, _ := s.noteRequest(p.Req, p.Client)
	s.mu.Lock()
	st.direct = true
	if st.done {
		res := st.result
		s.mu.Unlock()
		s.ep.Send(p.Client, MsgResult, ResultPayload{ReqID: p.Req.ID, Value: res})
		return
	}
	if st.queued {
		s.mu.Unlock()
		return // already pending here or riding in a known slot
	}
	st.queued = true
	s.mu.Unlock()

	ss := s.slots
	ss.mu.Lock()
	ss.pending = append(ss.pending, p)
	ss.mu.Unlock()
	ss.cond.Broadcast()
}

// batcher forms slots: wait for a pending request, let the window fill the
// batch, wait for a pipeline slot, claim the next log index, and launch the
// slot's round 1 as prospective owner.
func (s *Server) batcher() {
	ss := s.slots
	for {
		if s.isStopped() {
			return
		}
		ss.mu.Lock()
		for len(ss.pending) == 0 {
			ss.cond.WaitTimeout(s.cleanInterval)
			if s.isStopped() {
				ss.mu.Unlock()
				return
			}
		}
		ss.mu.Unlock()

		// Batching window: accumulate concurrent arrivals.
		s.clk.Sleep(s.batch.Window)

		ss.mu.Lock()
		for ss.inflight >= s.batch.Pipeline {
			ss.cond.WaitTimeout(s.cleanInterval)
			if s.isStopped() {
				ss.mu.Unlock()
				return
			}
		}
		// Drain up to MaxSize members, skipping ones an earlier slot
		// already finished (their clients were answered at apply time).
		batch := make([]SubmitPayload, 0, s.batch.MaxSize)
		rest := ss.pending[:0]
		for _, m := range ss.pending {
			if len(batch) >= s.batch.MaxSize {
				rest = append(rest, m)
				continue
			}
			if s.finishedReq(m.Req.ID) {
				continue
			}
			batch = append(batch, m)
		}
		ss.pending = rest
		if len(batch) == 0 {
			ss.mu.Unlock()
			continue
		}
		if ss.next < ss.known {
			ss.next = ss.known
		}
		n := ss.next
		ss.next++
		ss.inflight++
		depth := ss.inflight
		ss.mu.Unlock()
		s.m.Inc(obs.BatchSlots)
		s.m.Add(obs.BatchReqs, int64(len(batch)))
		s.m.SetMax(obs.GaugeBatchMax, int64(len(batch)))
		s.m.SetMax(obs.GaugePipelineDepth, int64(depth))

		s.wg.Add(1)
		s.clk.Go(func() {
			defer s.wg.Done()
			s.runSlot(n, 1, batch)
			ss.mu.Lock()
			ss.inflight--
			ss.mu.Unlock()
			ss.cond.Broadcast()
		})
	}
}

func (s *Server) finishedReq(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.active[id]
	return st != nil && st.done
}

// runSlot is process-request at slot granularity: propose ownership of the
// round (carrying the batch), and if we win, wait for the in-order
// execution gate, execute members in batch order, coordinate the slot's
// outcome, and apply/reply.
func (s *Server) runSlot(n, round int, batch []SubmitPayload) {
	if s.isStopped() || round > MaxRound {
		return
	}
	id := slotID(n)
	key := ownerKey(id, round)
	s.mu.Lock()
	if s.rounds[key] {
		s.mu.Unlock()
		return
	}
	s.rounds[key] = true //xvet:ok durablewrite batched plane is an in-memory baseline: restart is unsupported there, nothing to persist
	s.mu.Unlock()

	decided := s.propose(key, ownerDecision{Owner: s.id, Batch: batch})
	od, ok := decided.(ownerDecision)
	if !ok {
		return
	}
	if od.Owner != s.id {
		// Lost the log-index race. Members of our proposal absent from the
		// winning batch go back to pending for the next slot; the winner's
		// slot is watched by the follower and the cleaner.
		s.noteKnown(n + 1)
		s.requeueMissing(batch, od.Batch)
		return
	}

	// In-order execution gate: effects commit in slot order, so we execute
	// only once every earlier slot has been applied locally.
	if !s.waitExec(n) {
		return
	}

	vals := make([]action.Value, len(od.Batch))
	fresh := make([]bool, len(od.Batch))
	for i, m := range od.Batch {
		if j := firstIndex(od.Batch, i); j >= 0 {
			vals[i] = vals[j] // duplicate within the batch
			continue
		}
		if res, done := s.finishedBefore(m.Req.ID, n); done {
			vals[i] = res // finished by an earlier slot: re-reply only
			continue
		}
		res, ok := s.executeUntilSuccess(s.taggedFor(m.Req, round))
		if !ok {
			return // crashed mid-execution
		}
		vals[i] = res
		fresh[i] = true
	}

	out := s.slotCoordination(n, round, od.Batch, fresh, slotOutcome{Outcome: "commit", Values: vals})
	if out.Outcome == "commit" && !s.isStopped() {
		s.applySlot(n, od.Batch, out.Values, true)
	}
}

// firstIndex returns the index of an earlier member with the same request
// ID, or -1 if members[i] is its batch's first occurrence.
func firstIndex(members []SubmitPayload, i int) int {
	for j := 0; j < i; j++ {
		if members[j].Req.ID == members[i].Req.ID {
			return j
		}
	}
	return -1
}

// finishedBefore reports the fixed result of a request finished by a slot
// earlier than n. Slots apply in order, so this classification is the same
// at every replica evaluating slot n.
func (s *Server) finishedBefore(id string, n int) (action.Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.active[id]
	if st != nil && st.done && st.doneSlot >= 0 && st.doneSlot < n {
		return st.result, true
	}
	return "", false
}

func (s *Server) noteKnown(n int) {
	ss := s.slots
	ss.mu.Lock()
	if ss.known < n {
		ss.known = n
	}
	ss.mu.Unlock()
}

// requeueMissing returns members of a losing batch proposal that the
// winning batch does not carry to the pending queue.
func (s *Server) requeueMissing(ours, winners []SubmitPayload) {
	ss := s.slots
	added := false
	ss.mu.Lock()
	for _, m := range ours {
		carried := false
		for _, w := range winners {
			if w.Req.ID == m.Req.ID {
				carried = true
				break
			}
		}
		if !carried {
			ss.pending = append(ss.pending, m)
			added = true
		}
	}
	ss.mu.Unlock()
	if added {
		ss.cond.Broadcast()
	}
}

// waitExec blocks until every slot below n has been applied locally.
// Reports false if the server stopped while waiting.
func (s *Server) waitExec(n int) bool {
	ss := s.slots
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for ss.execNext < n {
		if s.isStopped() {
			return false
		}
		ss.cond.WaitTimeout(s.cleanInterval)
	}
	return ss.execNext == n // a later apply already passed n: stale round
}

// slotCoordination is result-coordination at slot granularity: agree on
// commit (with the result vector) or abort for one round of a slot. On a
// decided abort every undoable member this round may have executed is
// cancelled under the round's tag — at the losing owner and at the
// aborting cleaner alike, mirroring the per-request plane. On a decided
// commit the undoable members executed this round get their commit action;
// fresh tells which those are (nil means "assume all non-duplicate
// members", the cleaner's conservative view — safe because a commit
// decision proves the owner executed every fresh member this round).
func (s *Server) slotCoordination(n, round int, batch []SubmitPayload, fresh []bool, proposal slotOutcome) slotOutcome {
	decided := s.propose(outcomeKey(slotID(n), round), proposal)
	out, ok := decided.(slotOutcome)
	if !ok {
		return slotOutcome{Outcome: "abort"}
	}
	if out.Outcome == "abort" {
		for _, m := range batch {
			if s.mach.IsUndoable(m.Req) {
				// Fence before cancelling (testcancel, §5.3), exactly as on
				// the per-request plane: without it a losing owner's retry
				// loop can reactivate the cancelled member and re-apply its
				// effect after this neutralization.
				exec := s.taggedFor(m.Req, round)
				s.mach.Env().FenceUndoable(exec.Action, exec.EffectiveInput())
				s.executeUntilSuccess(exec.Cancel())
			}
		}
		return out
	}
	for i, m := range batch {
		if !s.mach.IsUndoable(m.Req) {
			continue
		}
		isFresh := fresh == nil && firstIndex(batch, i) < 0
		if fresh != nil {
			isFresh = fresh[i]
		}
		if fresh == nil {
			if _, done := s.finishedBefore(m.Req.ID, n); done {
				isFresh = false
			}
		}
		if isFresh {
			s.executeUntilSuccess(s.taggedFor(m.Req, round).Commit())
		}
	}
	return out
}

// applySlot folds a committed slot into the local replica in slot order:
// apply each first-occurrence member not finished by an earlier slot
// (owners already executed, so they skip the apply), record results for
// re-submissions, reply, and open the gate for the next slot.
//
// Replies: the committing owner answers every member's client; a
// non-owner answers only members whose submit it received directly —
// that is exactly the replica a client may be awaiting, which closes the
// black-holed-reply liveness hole without per-request watcher goroutines
// (the batched plane's analogue of awaitFixed).
func (s *Server) applySlot(n int, batch []SubmitPayload, vals []action.Value, owner bool) {
	for i, m := range batch {
		if firstIndex(batch, i) >= 0 {
			if owner {
				s.ep.Send(m.Client, MsgResult, ResultPayload{ReqID: m.Req.ID, Value: vals[i]})
			}
			continue
		}
		st, _ := s.noteRequest(m.Req, m.Client)
		s.mu.Lock()
		dupEarlier := st.done && st.doneSlot >= 0 && st.doneSlot < n
		if !dupEarlier {
			st.done = true      //xvet:ok durablewrite batched plane is an in-memory baseline: restart is unsupported there, nothing to persist
			st.result = vals[i] //xvet:ok durablewrite batched plane is an in-memory baseline: restart is unsupported there, nothing to persist
			st.applied = true
			st.doneSlot = n
		}
		direct := st.direct
		s.mu.Unlock()
		if !dupEarlier && !owner {
			s.mach.Apply(m.Req, vals[i])
		}
		if owner || direct {
			s.ep.Send(m.Client, MsgResult, ResultPayload{ReqID: m.Req.ID, Value: vals[i]})
		}
	}
	ss := s.slots
	ss.mu.Lock()
	if ss.execNext == n {
		ss.execNext = n + 1
	}
	if ss.known < n+1 {
		ss.known = n + 1
	}
	ss.mu.Unlock()
	ss.cond.Broadcast()
}

// follower advances the local slot log through slots decided elsewhere:
// poll the consensus arrays for the first unapplied slot, and once some
// round of it commits, apply it in order. Owners apply their own slots
// directly; the follower is how the other replicas' machines and re-reply
// state keep up, and how a stalled client's replica learns results it did
// not compute (the batched plane has no per-request announce gossip).
func (s *Server) follower() {
	ss := s.slots
	for {
		if s.isStopped() {
			return
		}
		advanced := s.advanceSlot()
		if !advanced {
			ss.mu.Lock()
			ss.cond.WaitTimeout(s.cleanInterval)
			ss.mu.Unlock()
		}
	}
}

// advanceSlot tries to apply the first unapplied slot; reports whether it
// advanced the gate.
func (s *Server) advanceSlot() bool {
	ss := s.slots
	ss.mu.Lock()
	n := ss.execNext
	ss.mu.Unlock()

	id := slotID(n)
	for r := 1; r <= MaxRound; r++ {
		ov, decided := s.cons.Object(ownerKey(id, r)).Read()
		if !decided {
			return false // slot n has no round r (yet)
		}
		out, ok := s.cons.Object(outcomeKey(id, r)).Read()
		if !ok {
			return false // round r unresolved; commit/abort pending
		}
		so, good := out.(slotOutcome)
		if !good {
			return false
		}
		if so.Outcome != "commit" {
			continue // aborted round; a later round re-runs the batch
		}
		od, good := ov.(ownerDecision)
		if !good {
			return false
		}
		ss.mu.Lock()
		stale := ss.execNext != n
		ss.mu.Unlock()
		if !stale {
			s.applySlot(n, od.Batch, so.Values, false)
		}
		return true
	}
	return false
}

// cleanSlot is the cleaner's batched-plane pass: watch the first
// unapplied slot only — in-order execution means only it gates progress —
// and when the latest round's owner is suspected, neutralize that round
// (cleaning-mode abort) and run the next round of the same batch as owner.
func (s *Server) cleanSlot() {
	ss := s.slots
	ss.mu.Lock()
	n := ss.execNext
	ss.mu.Unlock()

	id := slotID(n)
	lastRound := 0
	var od ownerDecision
	for r := 1; r <= MaxRound; r++ {
		v, decided := s.cons.Object(ownerKey(id, r)).Read()
		if !decided {
			break
		}
		lastRound = r
		od = v.(ownerDecision)
	}
	if lastRound == 0 {
		return // no such slot yet; nothing to clean
	}
	if out, ok := s.cons.Object(outcomeKey(id, lastRound)).Read(); ok {
		if so, good := out.(slotOutcome); good && so.Outcome == "commit" {
			return // resolved; the follower applies and re-replies
		}
	}
	if od.Owner == s.id || !s.det.Suspect(od.Owner) {
		return
	}
	// Cleaning mode: prevent the suspected owner from enforcing a commit.
	s.m.Inc(obs.Takeovers)
	s.tr.Instant(s.clk.Now(), string(s.id), "takeover", id)
	out := s.slotCoordination(n, lastRound, od.Batch, nil, slotOutcome{Outcome: "abort"})
	if s.isStopped() {
		return
	}
	if out.Outcome == "abort" {
		s.runSlot(n, lastRound+1, od.Batch)
	}
	// On commit the follower path applies the slot and answers clients.
}
