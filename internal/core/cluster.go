package core

import (
	"fmt"
	"time"

	"xability/internal/action"
	"xability/internal/consensus"
	"xability/internal/env"
	"xability/internal/fd"
	"xability/internal/obs"
	"xability/internal/simnet"
	"xability/internal/sm"
	"xability/internal/trace"
	"xability/internal/vclock"
	"xability/internal/wal"
)

// ConsensusMode selects the consensus substrate.
type ConsensusMode int

const (
	// ConsensusLocal uses the linearizable shared objects the paper assumes
	// (§5.2): one LocalProvider shared by all replicas.
	ConsensusLocal ConsensusMode = iota
	// ConsensusCT uses the message-passing rotating-coordinator protocol
	// over the simulated network (internal/consensus, ct.go).
	ConsensusCT
)

// DetectorMode selects the failure-detector substrate.
type DetectorMode int

const (
	// DetectorScripted wires a Scripted detector per process; tests inject
	// suspicions deterministically via Cluster.Suspect.
	DetectorScripted DetectorMode = iota
	// DetectorHeartbeat wires heartbeat-driven ◇P detectors.
	DetectorHeartbeat
)

// ClusterConfig describes a full replicated service for tests, examples,
// and benchmarks.
type ClusterConfig struct {
	Replicas  int
	Seed      int64
	Net       simnet.Config
	Consensus ConsensusMode
	Detector  DetectorMode
	// Network, when non-nil, deploys onto an existing network instead of
	// building one from Net — the sweep runner passes a Reset network here
	// so consecutive seeds reuse the substrate (endpoints, interning,
	// event pools) instead of allocating a fresh world. The network must
	// have been Reset with the run's config; Net is ignored.
	Network *simnet.Network
	// Registry is the service's action vocabulary.
	Registry *action.Registry
	// Setup registers action bodies on each replica's machine.
	Setup func(m *sm.Machine)
	// CleanInterval overrides the cleaner period.
	CleanInterval time.Duration
	// HeartbeatInterval tunes DetectorHeartbeat.
	HeartbeatInterval time.Duration
	// Batch enables the batched/pipelined slot plane on every replica
	// (zero value: per-request protocol).
	Batch BatchConfig
	// Costs charges virtual CPU time per protocol primitive (zero value:
	// free, as before — see CostModel).
	Costs CostModel
	// Durable gives every replica stable storage (internal/wal): servers
	// and CT acceptors write-ahead their state and RestartServer can revive
	// a crashed replica by replay. Off (the default), a crash is final.
	Durable bool
	// WALSync is the per-append sync tariff charged on the clock when
	// Durable is set (zero: appends are free and schedule-invisible).
	WALSync time.Duration
	// WALSnapshotSync is the per-record tariff for compaction snapshot
	// writes (zero derives WALSync/4; negative is explicitly free).
	WALSnapshotSync time.Duration
	// WALCompact triggers log compaction once a log has grown this many
	// synced records past its last snapshot (zero: logs grow unboundedly,
	// the pre-compaction behavior).
	WALCompact int
}

// Cluster is an assembled service: n server replicas, one client stub, a
// shared environment, and the run's event observer.
type Cluster struct {
	Net      *simnet.Network
	Observer *trace.Observer
	Env      *env.Env
	Servers  []*Server
	Client   *Client

	scripted  map[simnet.ProcessID]*fd.Scripted
	clientDet *fd.Scripted
	nodes     []*consensus.Node
	hbs       []*fd.Heartbeat

	// Rebuild state for RestartServer: the pieces a revived replica is
	// reassembled from. The WAL store is the deployment's disk — it, the
	// environment, and the network survive a replica's crash.
	cfg       ClusterConfig
	ids       []simnet.ProcessID
	serverEPs []*simnet.Endpoint
	fdEPs     []*simnet.Endpoint // heartbeat mode only
	consEPs   []*simnet.Endpoint // CT mode only
	detFor    map[simnet.ProcessID]fd.Detector
	localCons consensus.Provider // shared provider in ConsensusLocal mode
	walStore  *wal.Store         // nil unless cfg.Durable
	crashAt   []time.Duration    // virtual crash instant per replica; -1 when live
}

// NewCluster assembles and starts a service.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Net.Seed == 0 {
		cfg.Net.Seed = cfg.Seed
	}
	net := cfg.Network
	if net == nil {
		net = simnet.New(cfg.Net)
	}
	observer := trace.New()
	world := env.New(observer, cfg.Seed)

	c := &Cluster{
		Net:      net,
		Observer: observer,
		Env:      world,
		scripted: make(map[simnet.ProcessID]*fd.Scripted),
		cfg:      cfg,
	}
	if cfg.Durable {
		c.walStore = wal.NewStore(net.Clock(), wal.Config{
			SyncLatency:      cfg.WALSync,
			SnapshotSync:     cfg.WALSnapshotSync,
			CompactThreshold: cfg.WALCompact,
			Metrics:          net.Metrics(),
		})
	}
	c.crashAt = make([]time.Duration, cfg.Replicas)
	for i := range c.crashAt {
		c.crashAt[i] = -1
	}

	ids := make([]simnet.ProcessID, cfg.Replicas)
	for i := range ids {
		ids[i] = simnet.ProcessID(fmt.Sprintf("replica-%d", i))
	}
	c.ids = ids
	clientID := simnet.ProcessID("client")

	// Endpoints.
	serverEPs := make([]*simnet.Endpoint, cfg.Replicas)
	for i, id := range ids {
		serverEPs[i] = net.Register(id)
	}
	c.serverEPs = serverEPs
	clientEP := net.Register(clientID)

	// Failure detectors.
	detFor := make(map[simnet.ProcessID]fd.Detector)
	var clientDet fd.Detector
	switch cfg.Detector {
	case DetectorHeartbeat:
		for _, id := range ids {
			ep := net.Register(fd.FDEndpoint(id))
			c.fdEPs = append(c.fdEPs, ep)
			hb := fd.NewHeartbeat(id, ep, ids, fd.HeartbeatConfig{Interval: cfg.HeartbeatInterval})
			hb.Start()
			c.hbs = append(c.hbs, hb)
			detFor[id] = hb
		}
		cep := net.Register(fd.FDEndpoint(clientID))
		chb := fd.NewHeartbeat(clientID, cep, ids, fd.HeartbeatConfig{Interval: cfg.HeartbeatInterval})
		chb.Start()
		c.hbs = append(c.hbs, chb)
		clientDet = chb
	default:
		for _, id := range ids {
			d := fd.NewScripted(net)
			c.scripted[id] = d
			detFor[id] = d
		}
		cd := fd.NewScripted(net)
		c.clientDet = cd
		clientDet = cd
	}

	// Consensus.
	c.detFor = detFor
	var providerFor func(i int) consensus.Provider
	switch cfg.Consensus {
	case ConsensusCT:
		for _, id := range ids {
			ep := net.Register(consensus.ConsEndpoint(id))
			c.consEPs = append(c.consEPs, ep)
			node := consensus.NewNode(id, ep, ids, detFor[id])
			if c.walStore != nil {
				node.SetLog(c.walStore.Log(consLogName(id)))
			}
			node.Start()
			c.nodes = append(c.nodes, node)
		}
		providerFor = func(i int) consensus.Provider { return c.nodes[i] }
	default:
		shared := consensus.NewLocalProvider()
		c.localCons = shared
		providerFor = func(int) consensus.Provider { return shared }
	}

	// Servers.
	for i, id := range ids {
		mach := sm.New(string(id), cfg.Registry, world, cfg.Seed+int64(i)*7919+1)
		if cfg.Setup != nil {
			cfg.Setup(mach)
		}
		var slog *wal.Log
		if c.walStore != nil {
			slog = c.walStore.Log(string(id))
		}
		srv := NewServer(ServerConfig{
			ID:            id,
			Endpoint:      serverEPs[i],
			Machine:       mach,
			Detector:      detFor[id],
			Consensus:     providerFor(i),
			Network:       net,
			CleanInterval: cfg.CleanInterval,
			Batch:         cfg.Batch,
			Costs:         cfg.Costs,
			Log:           slog,
		})
		srv.Start()
		c.Servers = append(c.Servers, srv)
	}

	c.Client = NewClient(ClientConfig{
		ID:       clientID,
		Endpoint: clientEP,
		Replicas: ids,
		Detector: clientDet,
	})
	return c
}

// Clock returns the cluster's clock (virtual by default; configure via
// ClusterConfig.Net.Clock). Scenario drivers schedule fault injection on it
// — Clock().Go with a Clock().Sleep — so injections land at fixed points of
// simulated time regardless of how fast the host executes the run.
func (c *Cluster) Clock() vclock.Clock { return c.Net.Clock() }

// Network returns the cluster's simulated network. Scenario drivers reach
// through it to the link fault plane (Partition, Heal, DropLink,
// SetDelayScale).
func (c *Cluster) Network() *simnet.Network { return c.Net }

// Suspect injects (or clears) a suspicion at one replica's scripted
// detector. It panics in heartbeat mode.
func (c *Cluster) Suspect(observer, target simnet.ProcessID, v bool) {
	d, ok := c.scripted[observer]
	if !ok {
		panic(fmt.Sprintf("core: no scripted detector for %s", observer))
	}
	d.SetSuspected(target, v)
}

// SuspectEverywhere injects a suspicion of target at every replica's
// scripted detector (not the client's).
func (c *Cluster) SuspectEverywhere(target simnet.ProcessID, v bool) {
	for id, d := range c.scripted {
		if id != target {
			d.SetSuspected(target, v)
		}
	}
}

// ClientSuspect injects a suspicion at the client's scripted detector.
func (c *Cluster) ClientSuspect(target simnet.ProcessID, v bool) {
	c.clientDet.SetSuspected(target, v)
}

// CrashServer crashes replica i. Scripted detectors treat crashed
// processes as suspected automatically (strong completeness). With
// stable storage, the crash instant also tears the replica's unsynced
// WAL suffix: a record whose sync was still in flight was never durable
// (torn-tail semantics), so the next incarnation must not replay it.
func (c *Cluster) CrashServer(i int) {
	id := c.ids[i]
	first := !c.Net.Crashed(id)
	c.Servers[i].Crash()
	if c.walStore != nil {
		c.walStore.Crash(string(id), consLogName(id))
	}
	if first && c.crashAt != nil {
		c.crashAt[i] = c.Clock().Now()
	}
}

// consLogName names a replica's consensus-acceptor log in the WAL store,
// kept distinct from the server log so the two layers replay independently.
func consLogName(id simnet.ProcessID) string { return string(id) + "/cons" }

// RestartServer revives crashed replica i from stable storage: a fresh
// incarnation (machine, consensus node, detector, server) is rebuilt on the
// reopened endpoints and recovers its durable state by replaying the WAL.
// It reports false — and does nothing — when the replica never crashed
// (mirroring simnet.Crash's idempotence in the other direction) or when the
// cluster has no stable storage, where a restart would resurrect a replica
// with amnesia: worse than leaving it dead, it could re-execute effects.
//
// The in-memory state of the crashed incarnation is deliberately not
// consulted: everything the new incarnation knows, it learned from the log.
func (c *Cluster) RestartServer(i int) bool {
	if i < 0 || i >= len(c.Servers) || c.walStore == nil {
		return false
	}
	id := c.ids[i]
	if !c.Net.Crashed(id) {
		return false
	}
	// Tear down the dead incarnation's remaining goroutines (Crash already
	// stopped the Server; the consensus node and heartbeat are per-replica
	// processes that died with it), then drain the clock so every goroutine
	// of the old incarnation has observed the stop and unwound. Reopening
	// endpoints before that would let a zombie receiver re-attach and steal
	// the new incarnation's messages.
	if c.nodes != nil {
		c.nodes[i].Stop()
	}
	if len(c.hbs) > i {
		c.hbs[i].Stop()
	}
	c.Servers[i].Stop()
	c.Clock().Drain()
	c.Net.Restart(id)
	c.Net.Restart(fd.FDEndpoint(id))
	c.Net.Restart(consensus.ConsEndpoint(id))
	c.Net.Metrics().Inc(obs.Restarts)
	c.Net.Trace().Instant(c.Clock().Now(), string(id), "restart", "")

	det := c.detFor[id]
	if len(c.hbs) > i {
		hb := fd.NewHeartbeat(id, c.fdEPs[i], c.ids, fd.HeartbeatConfig{Interval: c.cfg.HeartbeatInterval})
		hb.Start()
		c.hbs[i] = hb
		c.detFor[id] = hb
		det = hb
	}

	prov := c.localCons
	if c.nodes != nil {
		node := consensus.NewNode(id, c.consEPs[i], c.ids, det)
		node.SetLog(c.walStore.Log(consLogName(id)))
		node.Recover()
		node.Start()
		c.nodes[i] = node
		prov = node
	}

	// Same machine seed as the original incarnation: recovery must not
	// re-roll the replica's nondeterminism, or replayed folds diverge.
	mach := sm.New(string(id), c.cfg.Registry, c.Env, c.cfg.Seed+int64(i)*7919+1)
	if c.cfg.Setup != nil {
		c.cfg.Setup(mach)
	}
	srv := NewServer(ServerConfig{
		ID:            id,
		Endpoint:      c.serverEPs[i],
		Machine:       mach,
		Detector:      det,
		Consensus:     prov,
		Network:       c.Net,
		CleanInterval: c.cfg.CleanInterval,
		Batch:         c.cfg.Batch,
		Costs:         c.cfg.Costs,
		Log:           c.walStore.Log(string(id)),
	})
	srv.Recover()
	srv.Start()
	c.Servers[i] = srv
	if c.crashAt != nil && c.crashAt[i] >= 0 {
		c.Net.Metrics().ObserveRecovery(c.Clock().Now() - c.crashAt[i])
		c.crashAt[i] = -1
	}
	return true
}

// WALStats reports the stable-storage activity of the run (zero when the
// cluster is not durable) for T12's sync-tariff cost curves.
func (c *Cluster) WALStats() wal.Stats {
	if c.walStore == nil {
		return wal.Stats{}
	}
	return c.walStore.Stats()
}

// Durable reports whether the cluster was built with stable storage.
func (c *Cluster) Durable() bool { return c.walStore != nil }

// Machine returns replica i's state machine.
func (c *Cluster) Machine(i int) *sm.Machine { return c.Servers[i].mach }

// OpenStation builds the open-loop station over the cluster's client
// endpoint and detector (the closed-loop Client must then stay unused for
// the run: both would drain the same mailbox).
func (c *Cluster) OpenStation() *Station {
	return NewStation(StationConfig{
		ID:       c.Client.id,
		Endpoint: c.Client.ep,
		Replicas: c.Client.replicas,
		Detector: c.Client.det,
	})
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	for _, s := range c.Servers {
		s.Stop()
	}
	for _, hb := range c.hbs {
		hb.Stop()
	}
	for _, n := range c.nodes {
		n.Stop()
	}
	c.Net.Close()
}
